(* Emit the chains-32x8 instance (examples/chains_32x8.pref) to stdout:
   32 disjoint chain components of 8 tuples each over R(A,B,C,D) with
   F = {A -> B; C -> D}, plus a preference orienting every A -> B
   conflict. Many small components — the regime where component-sharded
   evaluation shines — and the instance the CI profile smoke test runs
   `prefdb profile` against.

   Regenerate with:  dune exec examples/gen_chains.exe > examples/chains_32x8.pref *)

module IF = Dbio.Instance_format

let () =
  let relation, fds =
    Workload.Generator.chain_components ~components:32 ~size:8
  in
  let spec =
    {
      IF.relation;
      fds;
      denials = [];
      provenance = Relational.Provenance.empty;
      prefs = [ IF.Attribute ("B", `Larger) ];
    }
  in
  print_string (IF.print spec)
