(* A walkthrough of every worked example and figure of the paper.

   Run with:  dune exec examples/paper_examples.exe

   Each section builds the instance, prints the conflict graph (the
   textual rendering of Figures 1-4) and reports what each family of
   preferred repairs selects. Example 9 is shown twice: as printed (where
   the formal definitions contradict the prose — see EXPERIMENTS.md), and
   in the corrected mutual-conflict form that exhibits the intended
   S-vs-G separation. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family

let section title = Format.printf "@.=== %s ===@." title

let show_families c p =
  List.iter
    (fun f ->
      let repairs = Family.repairs f c p in
      Format.printf "%-6s: " (Family.name_to_string f);
      List.iter (fun s -> Format.printf "%a " Vset.pp s) repairs;
      Format.printf "@.")
    Family.all_names

let () =
  section "Example 4 / Figure 1: the ladder instance r_n";
  let rel, fds = Workload.Generator.ladder 4 in
  let c = Conflict.build fds rel in
  Format.printf "%a@." Conflict.pp c;
  Format.printf "repairs of r_4: %d (= 2^4)@." (Core.Repair.count c);
  List.iter
    (fun n ->
      let rel, fds = Workload.Generator.ladder n in
      let c = Conflict.build fds rel in
      Format.printf "  n = %2d: %5d repairs@." n (Core.Repair.count c))
    [ 1; 2; 4; 8; 12 ];

  section "Example 7 / Figure 2: local optimality with one key";
  let c7, p7 = Workload.Paper.example7 () in
  Format.printf "%a@.priority: %a@." Conflict.pp c7 Priority.pp p7;
  show_families c7 p7;
  Format.printf "L-Rep keeps only {ta}: the priority is fully used.@.";

  section "Example 8 / Figure 3: L-Rep is not categorical";
  let c8, p8 = Workload.Paper.example8 () in
  Format.printf "%a@.priority (total): %a@." Conflict.pp c8 Priority.pp p8;
  show_families c8 p8;
  Format.printf
    "Both repairs are locally optimal despite the total priority;@.";
  Format.printf "semi-global optimality decides for {tc}.@.";

  section "Example 9 / Figure 4: the two-FD chain, as printed";
  let c9, p9 = Workload.Paper.example9 () in
  Format.printf "%a@.priority (total, as printed): %a@." Conflict.pp c9
    Priority.pp p9;
  show_families c9 p9;
  Format.printf
    "The path has FOUR repairs (the paper lists two), and S-Rep is a@.";
  Format.printf
    "singleton under every total priority — see EXPERIMENTS.md.@.";

  section "The mutual-conflict cycle: S-Rep vs G-Rep (the intended point)";
  let rel, fds = Workload.Generator.mutual_cycle 2 in
  let cc = Conflict.build fds rel in
  let pc = Workload.Generator.mutual_cycle_priority cc in
  Format.printf "%a@.priority (partial, A->B edges only): %a@." Conflict.pp cc
    Priority.pp pc;
  show_families cc pc;
  Format.printf
    "S-Rep keeps both alternating repairs; G-Rep (and C-Rep) use the@.";
  Format.printf "priority globally and reject the dominated one.@.";

  section "Example 6 and 10: why optimality AND monotonicity both matter";
  let report_trivial =
    Core.Properties.check_all Core.Properties.trivial_family c7 p7
  in
  Format.printf "trivial family (Example 6) on Example 7's instance: %a@."
    Core.Properties.pp_report report_trivial;
  let report_t_rep = Core.Properties.check_all Core.Properties.t_rep c7 p7 in
  Format.printf "T-Rep (Example 10) on the same instance: %a@."
    Core.Properties.pp_report report_t_rep;
  Format.printf
    "T-Rep selects globally optimal repairs yet fails monotonicity (P2):@.";
  Format.printf
    "optimality without monotonicity permits groundless elimination (§3.4).@."
