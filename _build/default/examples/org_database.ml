(* A multi-relation organisation database — the §2 extension "along the
   lines of [7]".

   Run with:  dune exec examples/org_database.exe

   Three relations: the paper's inconsistent Mgr table, a consistent Dept
   directory and an inconsistent Emp assignment table. Conflicts stay
   inside each relation, so a repair of the database picks a repair per
   relation — but queries join across relations, and preferred consistent
   answering spans the whole database. *)

open Relational
module Multi = Core.Multi
module Family = Core.Family
module Cqa = Core.Cqa

let section title = Format.printf "@.== %s ==@." title
let parse = Query.Parser.parse_exn

let () =
  let mgr, mgr_fds, prov = Workload.Generator.mgr_example () in
  let dept =
    Relation.of_rows
      (Schema.make "Dept" [ ("DName", Schema.TName); ("Floor", Schema.TInt) ])
      [
        [ Value.name "R&D"; Value.int 3 ];
        [ Value.name "IT"; Value.int 1 ];
        [ Value.name "PR"; Value.int 2 ];
      ]
  in
  let emp =
    Relation.of_rows
      (Schema.make "Emp" [ ("EName", Schema.TName); ("EDept", Schema.TName) ])
      [
        [ Value.name "Ann"; Value.name "R&D" ];
        [ Value.name "Ann"; Value.name "IT" ];
        [ Value.name "Bob"; Value.name "PR" ];
        [ Value.name "Cle"; Value.name "R&D" ];
      ]
  in
  let db = Database.of_relations [ mgr; dept; emp ] in
  let m =
    Multi.build
      ~fds:
        [
          ("Mgr", mgr_fds);
          ("Emp", [ Constraints.Fd.make [ "EName" ] [ "EDept" ] ]);
        ]
      db
  in

  section "The database";
  Format.printf "%a@." Database.pp (Multi.database m);
  List.iter
    (fun name ->
      Format.printf "%s: %d conflict(s)@." name
        (List.length (Core.Conflict.conflict_pairs (Multi.conflict m name))))
    (Multi.relation_names m);
  Format.printf "database repairs: %d (product of per-relation repairs)@."
    (Multi.repair_count Family.Rep m);

  section "Joins under consistent query answering";
  let show label family q =
    Format.printf "%-52s [%s] %s@." label
      (Family.name_to_string family)
      (Cqa.certainty_to_string (Multi.certainty family m q))
  in
  let q_floor3_managed =
    parse "exists n, d, s, r. Mgr(n, d, s, r) and Dept(d, 3)"
  in
  show "\"is the floor-3 department managed?\"" Family.Rep q_floor3_managed;
  let q_ann_managed =
    parse
      "exists d, n, s, r. Emp('Ann', d) and Mgr(n, d, s, r)"
  in
  show "\"is Ann in a managed department?\"" Family.Rep q_ann_managed;

  section "Preferences on Mgr change database-wide answers";
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let m = Result.get_ok (Multi.set_rule m "Mgr" rule) in
  Format.printf "preferred database repairs (C-Rep): %d@."
    (Multi.repair_count Family.C m);
  let show' label family q =
    Format.printf "%-52s [%s] %s@." label
      (Family.name_to_string family)
      (Cqa.certainty_to_string (Multi.certainty family m q))
  in
  show' "\"is the floor-3 department managed?\"" Family.Rep q_floor3_managed;
  show' "\"is the floor-3 department managed?\"" Family.C q_floor3_managed;
  Format.printf
    "(the reliability information excludes the repair where R&D is@.";
  Format.printf " unmanaged, so the join query becomes certain)@.";

  section "Ground queries through the factorized engine";
  let q =
    parse "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  Format.printf "\"Mary or John manages R&D\" under C-Rep: %s@."
    (Cqa.certainty_to_string
       (Result.get_ok (Multi.certainty_ground Family.C m q)));
  Format.printf
    "@.The factorized engine decides this per conflict component — it@.";
  Format.printf "never materializes the product repair space.@."
