(* Quickstart: the paper's running example (Examples 1-3), end to end.

   Run with:  dune exec examples/quickstart.exe

   An inconsistent Mgr relation is integrated from three sources; plain
   consistent query answering cannot decide the user's queries, and
   cleaning with partial reliability information leaves an inconsistent
   instance — but preference-driven consistent query answering extracts
   the certain answer. *)

open Relational
module Conflict = Core.Conflict
module Family = Core.Family
module Cqa = Core.Cqa

let section title = Format.printf "@.== %s ==@." title

let () =
  (* Example 1: integrate three consistent sources into one instance. *)
  let relation, fds, provenance = Workload.Generator.mgr_example () in
  section "The integrated (inconsistent) instance";
  Format.printf "%a@." Relation.pp relation;
  List.iter (fun fd -> Format.printf "fd: %a@." Constraints.Fd.pp fd) fds;

  let c = Conflict.build fds relation in
  Format.printf "conflicts: %d@."
    (List.length (Conflict.conflict_pairs c));
  List.iter
    (fun (t1, t2) -> Format.printf "  %a  <->  %a@." Tuple.pp t1 Tuple.pp t2)
    (Conflict.conflict_pairs c);

  (* Example 2: the three repairs; Q1 has no consistent answer. *)
  section "Repairs and plain consistent query answers";
  List.iteri
    (fun i r -> Format.printf "repair r%d:@.%a@." (i + 1) Relation.pp r)
    (Core.Repair.all_relations c);
  let q1 =
    Query.Parser.parse_exn
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and \
       Mgr('John',x2,y2,z2) and y1 < y2"
  in
  let no_prefs = Core.Priority.empty c in
  Format.printf "Q1 (does John earn more than Mary?) in the raw instance: %b@."
    (Query.Eval.holds_relation relation q1);
  Format.printf "Q1 under consistent query answering: %s@."
    (Cqa.certainty_to_string (Cqa.certainty Family.Rep c no_prefs q1));

  (* Example 3: reliability preferences select the preferred repairs. *)
  section "Preference-driven consistent query answers";
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability provenance
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let p = Core.Pref_rules.apply_exn c rule in
  Format.printf "priority (source reliability s1, s2 > s3): %a@."
    Core.Priority.pp p;
  let q2 =
    Query.Parser.parse_exn
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and \
       Mgr('John',x2,y2,z2) and y1 > y2 and z1 < z2"
  in
  Format.printf
    "Q2 (Mary earns more with fewer reports?) without preferences: %s@."
    (Cqa.certainty_to_string (Cqa.certainty Family.Rep c no_prefs q2));
  List.iter
    (fun family ->
      Format.printf "Q2 under %s: %s@."
        (Family.name_to_string family)
        (Cqa.certainty_to_string (Cqa.certainty family c p q2)))
    [ Family.L; Family.S; Family.G; Family.C ];

  (* Contrast with physical cleaning (§1): the cleaned instance loses the
     certainty that preferred CQA recovers. *)
  section "Contrast: physical cleaning";
  (match Core.Clean.run fds relation rule with
  | Ok report ->
    Format.printf "%a@.%a@." Core.Clean.pp_report report Relation.pp
      report.Core.Clean.cleaned
  | Error e -> Format.printf "cleaning failed: %s@." e);
  Format.printf
    "@.Preferred CQA answered Q2 with certainty without deleting a single \
     tuple.@."
