(* Conflict resolution by recency: a sensor registry with stale updates.

   Run with:  dune exec examples/sensor_cleaning.exe

   A table Sensor(Id, Location, Status) receives updates that are not
   fully propagated (the paper's "long running operations" motivation,
   §1): several readings per sensor survive, violating the key
   Id → Location Status. Timestamps order most conflicts — "the conflicts
   can be resolved by removing from consideration old, outdated tuples"
   (§1) — but two readings of one sensor carry the same timestamp, so the
   priority is partial and cleaning alone cannot finish the job. *)

open Relational
module Conflict = Core.Conflict
module Family = Core.Family
module Cqa = Core.Cqa

let section title = Format.printf "@.== %s ==@." title

let schema =
  Schema.make "Sensor"
    [ ("Id", Schema.TInt); ("Location", Schema.TName); ("Status", Schema.TInt) ]

let reading id location status ts =
  (Tuple.make [ Value.int id; Value.name location; Value.int status ], ts)

let () =
  let readings =
    [
      (* sensor 1: three generations of updates *)
      reading 1 "hall" 0 100;
      reading 1 "hall" 1 200;
      reading 1 "roof" 1 300;
      (* sensor 2: two updates, clearly ordered *)
      reading 2 "gate" 1 150;
      reading 2 "gate" 0 250;
      (* sensor 3: two readings with the SAME timestamp — a genuine tie *)
      reading 3 "lab" 1 180;
      reading 3 "yard" 1 180;
      (* sensor 4: consistent *)
      reading 4 "dock" 1 400;
    ]
  in
  let relation = Relation.of_tuples schema (List.map fst readings) in
  let provenance =
    Provenance.of_list
      (List.map (fun (t, ts) -> (t, Provenance.info ~timestamp:ts ())) readings)
  in
  let fds = [ Constraints.Fd.make [ "Id" ] [ "Location"; "Status" ] ] in

  section "The registry";
  Format.printf "%a@." Relation.pp relation;

  let c = Conflict.build fds relation in
  Format.printf "conflicts: %d@." (List.length (Conflict.conflict_pairs c));

  let p = Core.Pref_rules.apply_exn c (Core.Pref_rules.newest_first provenance) in
  Format.printf "oriented by recency: %d (the sensor-3 tie stays open)@."
    (Core.Priority.arc_count p);

  section "Cleaning by recency (Algorithm 1)";
  (match Core.Clean.run fds relation (Core.Pref_rules.newest_first provenance) with
  | Ok report ->
    Format.printf "%a@.%a@." Core.Clean.pp_report report Relation.pp
      report.Core.Clean.cleaned
  | Error e -> Format.printf "cleaning failed: %s@." e);

  section "Queries the cleaned instance cannot answer faithfully";
  let certainty q = Cqa.certainty_to_string (Cqa.certainty Family.C c p q) in
  let q_s1 = Query.Parser.parse_exn "exists s. Sensor(1, 'roof', s)" in
  Format.printf "\"is sensor 1 on the roof?\"        -> %s@." (certainty q_s1);
  let q_s3 = Query.Parser.parse_exn "exists l. Sensor(3, l, 1)" in
  Format.printf "\"is sensor 3 active somewhere?\"   -> %s@." (certainty q_s3);
  let q_s3_lab = Query.Parser.parse_exn "exists s. Sensor(3, 'lab', s)" in
  Format.printf "\"is sensor 3 in the lab?\"         -> %s@." (certainty q_s3_lab);
  Format.printf
    "@.The tie on sensor 3 keeps both common repairs alive: facts the@.";
  Format.printf
    "repairs agree on are certain, the lab/yard split stays ambiguous —@.";
  Format.printf "exactly the disjunctive information cleaning would destroy.@.";

  section "How many sensors are online? (range-consistent COUNT)";
  let active =
    Relation.filter
      (fun t -> Value.equal (Tuple.get t 2) (Value.int 1))
      relation
  in
  let c_active = Conflict.build fds active in
  (match Core.Aggregate.range c_active Core.Aggregate.Count_all with
  | Ok r -> Format.printf "COUNT over repairs of the active slice: %a@." Core.Aggregate.pp_range r
  | Error e -> Format.printf "error: %s@." e)
