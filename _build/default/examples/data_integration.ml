(* Data integration at scale: the paper's motivating scenario (§1) on a
   synthetic employee directory merged from tiered sources.

   Run with:  dune exec examples/data_integration.exe

   Three sources (two top-tier, one lower-tier) report overlapping,
   partially disagreeing employee records. The key Name → Dept Salary is
   violated wherever sources disagree. Because the key is Name, conflicts
   never cross employees: the conflict graph is a disjoint union of
   per-employee components, and every preferred-repair family factorizes
   over components — so certainty can be decided employee by employee even
   though the full instance has an astronomical number of repairs. *)

open Relational
open Graphs
module Conflict = Core.Conflict
module Family = Core.Family

let section title = Format.printf "@.== %s ==@." title

(* Preferred repairs of one employee's sub-instance. *)
let employee_repairs family fds rule relation name =
  let sub =
    Relation.filter
      (fun t -> Value.equal (Tuple.get t 0) (Value.name name))
      relation
  in
  let c = Conflict.build fds sub in
  let p = Core.Pref_rules.apply_exn c rule in
  (c, Family.repairs family c p)

let dept_of c s =
  (* the set of departments appearing in a repair (vertex set) *)
  List.sort_uniq compare
    (List.filter_map
       (fun v -> Value.as_name (Tuple.get (Conflict.tuple c v) 1))
       (Vset.elements s))

let () =
  let rng = Workload.Prng.create 2006 in
  let s =
    Workload.Scenario.integration rng ~employees:60 ~sources_per_tier:[ 2; 1 ]
      ~overlap:0.6
  in
  let relation = s.Workload.Scenario.relation in
  let fds = s.Workload.Scenario.fds in
  section "Integrated instance";
  Format.printf "tuples: %d, sources: %s@."
    (Relation.cardinality relation)
    (String.concat ", " s.Workload.Scenario.sources);
  List.iter
    (fun (hi, lo) -> Format.printf "reliability: %s > %s@." hi lo)
    s.Workload.Scenario.reliability;

  let c = Conflict.build fds relation in
  Format.printf "conflicting tuples: %d (of %d), conflict edges: %d@."
    (Workload.Scenario.conflicting_tuples s)
    (Conflict.size c)
    (List.length (Conflict.conflict_pairs c));

  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability s.Workload.Scenario.provenance
         ~more_reliable_than:s.Workload.Scenario.reliability)
  in
  let p = Core.Pref_rules.apply_exn c rule in
  Format.printf "conflicts oriented by reliability: %d of %d@."
    (Core.Priority.arc_count p)
    (List.length (Conflict.conflict_pairs c));

  (* For each employee: is the department certain, i.e. do all preferred
     repairs of the employee's component agree on it? *)
  section "Certainty gained per employee";
  let employees =
    List.sort_uniq compare
      (List.filter_map (fun t -> Value.as_name (Tuple.get t 0)) (Relation.tuples relation))
  in
  let dept_certain family name =
    let sub_c, repairs = employee_repairs family fds rule relation name in
    match List.concat_map (dept_of sub_c) repairs |> List.sort_uniq compare with
    | [ _ ] -> true
    | _ -> false
  in
  let count family = List.length (List.filter (dept_certain family) employees) in
  let plain =
    (* no preferences: certain iff all variants agree *)
    List.length
      (List.filter
         (fun name ->
           let sub_c, repairs =
             employee_repairs Family.Rep fds (fun _ _ -> false) relation name
           in
           match
             List.concat_map (dept_of sub_c) repairs |> List.sort_uniq compare
           with
           | [ _ ] -> true
           | _ -> false)
         employees)
  in
  Format.printf "certain department, no preferences:        %3d / %d@." plain
    (List.length employees);
  List.iter
    (fun family ->
      Format.printf "certain department, %-5s preferences:     %3d / %d@."
        (Family.name_to_string family) (count family) (List.length employees))
    [ Family.L; Family.G; Family.C ];

  (* Payroll bounds: the key makes the conflict graph a cluster graph, so
     SUM ranges have a closed form; the preferred range sums the
     per-employee preferred ranges (components are independent). *)
  section "Payroll bounds (range-consistent aggregation)";
  (match Core.Aggregate.range c (Core.Aggregate.Sum "Salary") with
  | Ok r ->
    Format.printf "SUM(Salary) over all repairs:    %a@." Core.Aggregate.pp_range r
  | Error e -> Format.printf "error: %s@." e);
  let preferred_sum =
    List.fold_left
      (fun (glb, lub) name ->
        let sub_c, repairs = employee_repairs Family.C fds rule relation name in
        let salaries s =
          List.fold_left
            (fun acc v ->
              acc
              + Option.value ~default:0
                  (Value.as_int (Tuple.get (Conflict.tuple sub_c v) 2)))
            0 (Vset.elements s)
        in
        let sums = List.map salaries repairs in
        ( glb + List.fold_left min max_int sums,
          lub + List.fold_left max min_int sums ))
      (0, 0) employees
  in
  Format.printf "SUM(Salary) over common repairs: [%d, %d]@." (fst preferred_sum)
    (snd preferred_sum);

  (* And the cleaning alternative. *)
  section "Physical cleaning, for contrast";
  match Core.Clean.run fds relation rule with
  | Ok report -> Format.printf "%a@." Core.Clean.pp_report report
  | Error e -> Format.printf "cleaning failed: %s@." e
