examples/org_database.ml: Constraints Core Database Format List Query Relation Relational Result Schema Value Workload
