examples/paper_examples.ml: Core Format Graphs List Vset Workload
