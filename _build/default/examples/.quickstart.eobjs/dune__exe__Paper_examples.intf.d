examples/paper_examples.mli:
