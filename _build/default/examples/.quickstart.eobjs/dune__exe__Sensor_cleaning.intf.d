examples/sensor_cleaning.mli:
