examples/org_database.mli:
