examples/data_integration.ml: Core Format Graphs List Option Relation Relational Result String Tuple Value Vset Workload
