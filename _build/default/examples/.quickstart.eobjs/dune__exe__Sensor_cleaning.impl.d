examples/sensor_cleaning.ml: Constraints Core Format List Provenance Query Relation Relational Schema Tuple Value
