examples/quickstart.ml: Constraints Core Format List Query Relation Relational Result Tuple Workload
