examples/quickstart.mli:
