test/test_edge_cases.ml: Alcotest Array Constraints Core Graphs List Option Printf Query Relational Vset Workload
