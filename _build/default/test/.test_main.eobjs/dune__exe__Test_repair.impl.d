test/test_repair.ml: Alcotest Constraints Core Graphs List Printf Relation Relational Result Schema Testlib Tuple Value Vset Workload
