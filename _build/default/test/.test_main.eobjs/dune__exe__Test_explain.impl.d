test/test_explain.ml: Alcotest Constraints Core Format List Query Relation Relational Result Schema String Testlib Tuple Value
