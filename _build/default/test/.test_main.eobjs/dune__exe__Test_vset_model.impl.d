test/test_vset_model.ml: Fun Graphs Hashtbl Int List Mis Printf QCheck2 QCheck_alcotest Set Undirected Vset Workload
