test/test_decompose.ml: Alcotest Array Core Format Fun Graphs List Query Relational Result Testlib Vset Workload
