test/test_priority.ml: Alcotest Core Graphs List Relational Result Testlib Vset Workload
