test/test_dbio.ml: Alcotest Constraints Core Dbio List Provenance Query Relation Relational Result String Testlib Tuple Value Workload
