test/testlib.ml: Alcotest Fmt Graphs List Relational Vset Workload
