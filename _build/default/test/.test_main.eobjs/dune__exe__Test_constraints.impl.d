test/test_constraints.ml: Alcotest Constraints List Relation Relational Result Schema Testlib Tuple Value
