test/test_query.ml: Alcotest Database List Printf Query Relation Relational Result Schema Testlib Value
