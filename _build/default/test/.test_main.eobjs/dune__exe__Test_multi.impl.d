test/test_multi.ml: Alcotest Constraints Core Database Format List Query Relation Relational Result Schema Testlib Value
