test/test_pref_formula.ml: Alcotest Constraints Core Dbio List Printf Relation Relational Result Schema Tuple Value
