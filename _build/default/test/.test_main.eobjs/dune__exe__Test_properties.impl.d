test/test_properties.ml: Alcotest Core Format List Testlib Workload
