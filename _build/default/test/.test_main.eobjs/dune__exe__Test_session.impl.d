test/test_session.ml: Alcotest Core Dbio Filename Out_channel Shell String Testlib
