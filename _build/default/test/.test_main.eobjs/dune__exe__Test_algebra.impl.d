test/test_algebra.ml: Alcotest Algebra Char Database List Printf Query Relation Relational Result Schema String Value Workload
