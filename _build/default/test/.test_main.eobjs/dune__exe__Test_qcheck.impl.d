test/test_qcheck.ml: Array Constraints Core Digraph Graphs List Printf QCheck2 QCheck_alcotest Query Relational Vset Workload
