test/test_hyper.ml: Alcotest Constraints Core Format Fun Graphs Hypergraph List Printf Query Relation Relational Result Schema Testlib Value Vset Workload
