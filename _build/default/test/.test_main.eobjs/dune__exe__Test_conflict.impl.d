test/test_conflict.ml: Alcotest Constraints Core Graphs List Relation Relational Schema Testlib Tuple Undirected Value Vset Workload
