test/test_aggregate.ml: Alcotest Constraints Core List Relation Relational Result Schema Value Workload
