test/test_graphs.ml: Alcotest Array Digraph Fun Graphs Hypergraph List Mis Printf Testlib Undirected Vset Workload
