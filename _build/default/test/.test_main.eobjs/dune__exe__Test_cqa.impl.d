test/test_cqa.ml: Alcotest Core Format List Printf Query Result Testlib Workload
