test/test_optimality.ml: Alcotest Constraints Core Fun Graphs List Relation Relational Schema Testlib Undirected Value Vset Workload
