test/test_stats_trace.ml: Alcotest Constraints Core Format Graphs List Relational Result String Testlib Vset Workload
