test/test_relational.ml: Alcotest Array Database Fun List Provenance Relation Relational Result Schema Testlib Tuple Value
