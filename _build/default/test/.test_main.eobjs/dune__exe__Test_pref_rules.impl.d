test/test_pref_rules.ml: Alcotest Constraints Core List Option Provenance Relation Relational Result Schema Testlib Tuple Value
