(* Tests for multi-relation databases (Core.Multi) — the §2 extension
   "along the lines of [7]". *)

open Relational
module Multi = Core.Multi
module Family = Core.Family
module Cqa = Core.Cqa

let check = Alcotest.check
let parse = Query.Parser.parse_exn

let certainty =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Cqa.certainty_to_string c))
    (fun a b -> a = b)

(* Mgr (the paper's instance) + a consistent Dept relation + an
   inconsistent Emp relation. *)
let setup () =
  let mgr, mgr_fds, _ = Testlib.mgr () in
  let dept_schema =
    Schema.make "Dept" [ ("DName", Schema.TName); ("Floor", Schema.TInt) ]
  in
  let dept =
    Relation.of_rows dept_schema
      [
        [ Value.name "R&D"; Value.int 3 ];
        [ Value.name "IT"; Value.int 1 ];
        [ Value.name "PR"; Value.int 2 ];
      ]
  in
  let emp_schema =
    Schema.make "Emp" [ ("EName", Schema.TName); ("EDept", Schema.TName) ]
  in
  let emp =
    Relation.of_rows emp_schema
      [
        [ Value.name "Ann"; Value.name "R&D" ];
        [ Value.name "Ann"; Value.name "IT" ];
        [ Value.name "Bob"; Value.name "PR" ];
      ]
  in
  let db = Database.of_relations [ mgr; dept; emp ] in
  Multi.build
    ~fds:
      [
        ("Mgr", mgr_fds);
        ("Emp", [ Constraints.Fd.make [ "EName" ] [ "EDept" ] ]);
      ]
    db

let test_build_structure () =
  let m = setup () in
  check Alcotest.(list string) "relations" [ "Dept"; "Emp"; "Mgr" ]
    (Multi.relation_names m);
  Alcotest.(check bool) "Dept consistent" true
    (Core.Conflict.is_consistent (Multi.conflict m "Dept"));
  Alcotest.(check bool) "Emp inconsistent" false
    (Core.Conflict.is_consistent (Multi.conflict m "Emp"));
  Alcotest.(check bool) "unknown relation rejected" true
    (try
       ignore (Multi.build ~fds:[ ("Nope", []) ] Database.empty);
       false
     with Invalid_argument _ -> true)

let test_repair_product () =
  let m = setup () in
  (* Mgr has 3 repairs, Dept 1, Emp 2 -> 6 database repairs *)
  check Alcotest.int "count" 6 (Multi.repair_count Family.Rep m);
  let repairs = Multi.repairs Family.Rep m in
  check Alcotest.int "materialized" 6 (List.length repairs);
  List.iter
    (fun db ->
      (* each database repair restricts every relation to a repair *)
      List.iter
        (fun name ->
          let c = Multi.conflict m name in
          let rel = Database.find_exn db name in
          Alcotest.(check bool) "relation-wise repair" true
            (Core.Repair.is_repair c (Multi.vset_of m name rel)))
        (Multi.relation_names m))
    repairs

let test_join_query () =
  let m = setup () in
  (* is some manager on floor 2? PR is on floor 2; John-PR present in
     some repairs only *)
  let q =
    parse
      "exists n, d, s, r. Mgr(n, d, s, r) and Dept(d, 2)"
  in
  check certainty "join ambiguous" Cqa.Ambiguous (Multi.certainty Family.Rep m q);
  (* every repair keeps a manager on some floor *)
  let q2 = parse "exists n, d, s, r, f. Mgr(n, d, s, r) and Dept(d, f)" in
  check certainty "join certain" Cqa.Certainly_true
    (Multi.certainty Family.Rep m q2)

let test_preferences_per_relation () =
  let m = setup () in
  let _, _, prov = Testlib.mgr () in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let m = Result.get_ok (Multi.set_rule m "Mgr" rule) in
  (* Mgr now has 2 preferred repairs; Emp still 2; Dept 1 -> 4 *)
  check Alcotest.int "preferred count" 4 (Multi.repair_count Family.C m);
  (* Example 3's Q2 holds across the whole database now *)
  let q2 =
    parse
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and \
       Mgr('John',x2,y2,z2) and y1 > y2 and z1 < z2"
  in
  Alcotest.(check bool) "Q2 certain" true (Multi.consistent_answer Family.C m q2)

let test_ground_factorized_matches_naive () =
  let m = setup () in
  let queries =
    [
      "Mgr('Mary', 'R&D', 40000, 3)";
      "Dept('R&D', 3)";
      "Emp('Ann', 'IT') or Emp('Ann', 'R&D')";
      "Mgr('John', 'PR', 30000, 4) and Emp('Bob', 'PR')";
      "not Emp('Ann', 'IT') and Dept('IT', 1)";
      "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)";
    ]
  in
  List.iter
    (fun family ->
      List.iter
        (fun qs ->
          let q = parse qs in
          let naive = Multi.certainty family m q in
          match Multi.certainty_ground family m q with
          | Error e -> Alcotest.fail e
          | Ok fast ->
            check certainty (Family.name_to_string family ^ " " ^ qs) naive fast)
        queries)
    Family.all_names

let test_ground_factorized_with_preferences () =
  let m = setup () in
  let _, _, prov = Testlib.mgr () in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let m = Result.get_ok (Multi.set_rule m "Mgr" rule) in
  let q = parse "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)" in
  check certainty "preference-certified disjunction" Cqa.Certainly_true
    (Result.get_ok (Multi.certainty_ground Family.C m q));
  check certainty "matches the product engine" (Multi.certainty Family.C m q)
    (Result.get_ok (Multi.certainty_ground Family.C m q))

let test_ground_unknown_relation () =
  let m = setup () in
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (Multi.certainty_ground Family.Rep m (parse "Zzz(1)")))

let suite =
  [
    ("build and structure", `Quick, test_build_structure);
    ("database repairs = product of relation repairs", `Quick, test_repair_product);
    ("joins across relations", `Quick, test_join_query);
    ("per-relation preferences", `Quick, test_preferences_per_relation);
    ("factorized ground engine = product engine", `Quick, test_ground_factorized_matches_naive);
    ("factorized engine with preferences", `Quick, test_ground_factorized_with_preferences);
    ("unknown relations rejected", `Quick, test_ground_unknown_relation);
  ]
