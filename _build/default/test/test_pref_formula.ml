(* Tests for intrinsic preference formulas (after [5]). *)

open Relational
module PF = Core.Pref_formula
module Conflict = Core.Conflict
module Priority = Core.Priority

let check = Alcotest.check

let schema () =
  Schema.make "R"
    [ ("A", Schema.TInt); ("B", Schema.TInt); ("Name", Schema.TName) ]

let tuple a b n = Tuple.make [ Value.int a; Value.int b; Value.name n ]

let test_parse_and_holds () =
  let f = PF.parse_exn "t1.B > t2.B" in
  let s = schema () in
  Alcotest.(check bool) "larger B preferred" true
    (PF.holds s f (tuple 1 5 "x") (tuple 1 3 "y"));
  Alcotest.(check bool) "not the reverse" false
    (PF.holds s f (tuple 1 3 "x") (tuple 1 5 "y"))

let test_parse_connectives () =
  let f = PF.parse_exn "t1.B > t2.B and (t1.Name = 'fresh' or not t2.A = 0)" in
  let s = schema () in
  Alcotest.(check bool) "conjunction left" true
    (PF.holds s f (tuple 1 9 "fresh") (tuple 0 1 "old"));
  Alcotest.(check bool) "fails when both disjuncts fail" false
    (PF.holds s f (tuple 0 9 "stale") (tuple 0 1 "old"))

let test_parse_constants () =
  let f = PF.parse_exn "t1.B >= 100 and t2.B < 100" in
  let s = schema () in
  Alcotest.(check bool) "threshold" true
    (PF.holds s f (tuple 1 100 "x") (tuple 1 99 "y"))

let test_parse_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" text)
        true
        (Result.is_error (PF.parse text)))
    [
      "t3.A > t2.A"; "t1.A >"; "t1.A"; "t1.A > t2.A and"; "";
      "t1 > t2"; "exists x. t1.A = x";
    ]

let test_wf () =
  let s = schema () in
  Alcotest.(check bool) "unknown attribute" true
    (Result.is_error (PF.wf s (PF.parse_exn "t1.Z > t2.Z")));
  Alcotest.(check bool) "order on names" true
    (Result.is_error (PF.wf s (PF.parse_exn "t1.Name < t2.Name")));
  Alcotest.(check bool) "name equality fine" true
    (Result.is_ok (PF.wf s (PF.parse_exn "t1.Name = t2.Name")));
  Alcotest.(check bool) "cross-type comparison" true
    (Result.is_error (PF.wf s (PF.parse_exn "t1.Name = t2.A")))

let test_pp_roundtrip () =
  List.iter
    (fun text ->
      let f = PF.parse_exn text in
      let f' = PF.parse_exn (PF.to_string f) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %S" text) true (f = f'))
    [
      "t1.A > t2.A";
      "t1.A > t2.A and t1.B <= t2.B";
      "not (t1.A = t2.A or t1.B != 3)";
      "t1.Name = 'R&D' or true";
    ]

let test_to_rule_orients () =
  let s = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel =
    Relation.of_rows s
      [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 20 ] ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  let rule = Result.get_ok (PF.to_rule s (PF.parse_exn "t1.B > t2.B")) in
  let p = Core.Pref_rules.apply_exn c rule in
  check Alcotest.int "one arc" 1 (Priority.arc_count p);
  let hi = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 20 ]) in
  let lo = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 10 ]) in
  Alcotest.(check bool) "20 dominates 10" true (Priority.dominates p hi lo)

let test_symmetric_formula_orients_nothing () =
  let s = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel =
    Relation.of_rows s
      [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 20 ] ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  (* true in both directions -> no orientation *)
  let rule = Result.get_ok (PF.to_rule s (PF.parse_exn "t1.A = t2.A")) in
  let p = Core.Pref_rules.apply_exn c rule in
  check Alcotest.int "no arcs" 0 (Priority.arc_count p)

let test_instance_format_formula () =
  let text =
    "relation R(A:int, B:int)\n\
     fd A -> B\n\
     tuple 1 10\n\
     tuple 1 20\n\
     prefer formula t1.B > t2.B\n"
  in
  let spec = Result.get_ok (Dbio.Instance_format.parse text) in
  (match spec.Dbio.Instance_format.prefs with
  | [ Dbio.Instance_format.Formula _ ] -> ()
  | _ -> Alcotest.fail "expected one formula preference");
  let c =
    Conflict.build spec.Dbio.Instance_format.fds spec.Dbio.Instance_format.relation
  in
  let rule = Result.get_ok (Dbio.Instance_format.to_rule spec) in
  let p = Core.Pref_rules.apply_exn c rule in
  check Alcotest.int "edge oriented" 1 (Priority.arc_count p);
  (* and the spec round-trips through print *)
  let spec' =
    Result.get_ok (Dbio.Instance_format.parse (Dbio.Instance_format.print spec))
  in
  Alcotest.(check bool) "roundtrip prefs" true
    (spec.Dbio.Instance_format.prefs = spec'.Dbio.Instance_format.prefs)

let test_instance_format_bad_formula () =
  let text = "relation R(A:int)\nprefer formula t9.A > t2.A\n" in
  Alcotest.(check bool) "bad designator rejected" true
    (Result.is_error (Dbio.Instance_format.parse text))

let suite =
  [
    ("parse and evaluate", `Quick, test_parse_and_holds);
    ("connectives", `Quick, test_parse_connectives);
    ("constants", `Quick, test_parse_constants);
    ("parse errors", `Quick, test_parse_errors);
    ("well-formedness", `Quick, test_wf);
    ("pretty-print roundtrip", `Quick, test_pp_roundtrip);
    ("formula rules orient conflicts", `Quick, test_to_rule_orients);
    ("symmetric formulas orient nothing", `Quick, test_symmetric_formula_orients_nothing);
    ("instance-format integration", `Quick, test_instance_format_formula);
    ("instance-format rejects bad formulas", `Quick, test_instance_format_bad_formula);
  ]
