(* Tests for range-consistent aggregation (§6 / [2]). *)

open Relational
module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family
module Aggregate = Core.Aggregate

let check = Alcotest.check

let range =
  Alcotest.testable Aggregate.pp_range (fun a b ->
      a.Aggregate.glb = b.Aggregate.glb && a.Aggregate.lub = b.Aggregate.lub)

let r = Aggregate.{ glb = None; lub = None }
let mk glb lub = Aggregate.{ glb = Some glb; lub = Some lub }
let _ = r

(* one key, two clusters:
   A=1: (1, 10, 100), (1, 20, 200)
   A=2: (2, 5, 500) *)
let two_clusters () =
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let rel =
    Relation.of_rows schema
      [
        [ Value.int 1; Value.int 10; Value.int 100 ];
        [ Value.int 1; Value.int 20; Value.int 200 ];
        [ Value.int 2; Value.int 5; Value.int 500 ];
      ]
  in
  Conflict.build [ Constraints.Fd.make [ "A" ] [ "B"; "C" ] ] rel

let test_cluster_detection () =
  Alcotest.(check bool) "key graph is cluster graph" true
    (Aggregate.is_cluster_graph (two_clusters ()));
  let rel, fds = Workload.Generator.chain 5 in
  Alcotest.(check bool) "path is not" false
    (Aggregate.is_cluster_graph (Conflict.build fds rel))

let test_count () =
  let c = two_clusters () in
  check range "COUNT = #clusters" (mk 2 2)
    (Result.get_ok (Aggregate.range c Aggregate.Count_all))

let test_sum () =
  let c = two_clusters () in
  check range "SUM(B) in [15, 25]" (mk 15 25)
    (Result.get_ok (Aggregate.range c (Aggregate.Sum "B")));
  check range "SUM(C) in [600, 700]" (mk 600 700)
    (Result.get_ok (Aggregate.range c (Aggregate.Sum "C")))

let test_min_max () =
  let c = two_clusters () in
  check range "MIN(B): glb 5, lub 5" (mk 5 5)
    (Result.get_ok (Aggregate.range c (Aggregate.Min "B")));
  check range "MAX(B): glb 10, lub 20" (mk 10 20)
    (Result.get_ok (Aggregate.range c (Aggregate.Max "B")));
  check range "MIN(C): glb 100, lub 200" (mk 100 200)
    (Result.get_ok (Aggregate.range c (Aggregate.Min "C")))

let test_errors () =
  let c = two_clusters () in
  Alcotest.(check bool) "unknown attribute" true
    (Result.is_error (Aggregate.range c (Aggregate.Sum "Z")));
  let schema = Schema.make "R" [ ("A", Schema.TName); ("B", Schema.TName) ] in
  let rel = Relation.of_rows schema [ [ Value.name "x"; Value.name "y" ] ] in
  let c2 = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  Alcotest.(check bool) "name attribute rejected" true
    (Result.is_error (Aggregate.range c2 (Aggregate.Sum "B")))

let test_closed_form_matches_enumeration () =
  let rng = Workload.Prng.create 71 in
  for _ = 1 to 20 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:10 ~key_values:4 ~payload_values:5
    in
    let c = Conflict.build fds rel in
    List.iter
      (fun agg ->
        let closed = Result.get_ok (Aggregate.range c agg) in
        let enum =
          Result.get_ok
            (Aggregate.range_preferred Family.Rep c (Priority.empty c) agg)
        in
        check range (Aggregate.agg_to_string agg) enum closed)
      [ Aggregate.Count_all; Aggregate.Sum "B"; Aggregate.Min "B"; Aggregate.Max "C" ]
  done

let test_non_cluster_fallback () =
  (* chain: not a cluster graph; enumeration fallback used. 5-path has
     repairs of sizes 2 or 3, so COUNT ranges over [2, 3]. *)
  let rel, fds = Workload.Generator.chain 5 in
  let c = Conflict.build fds rel in
  check range "COUNT on path" (mk 2 3)
    (Result.get_ok (Aggregate.range c Aggregate.Count_all))

let test_preferred_range_collapses () =
  (* with a total priority and X = C, the preferred range is a point
     (P4: a single preferred repair). *)
  let c = two_clusters () in
  let p = Priority.totalize c (Priority.empty c) in
  let pref = Result.get_ok (Aggregate.range_preferred Family.C c p (Aggregate.Sum "B")) in
  Alcotest.(check bool) "point range" true (pref.Aggregate.glb = pref.Aggregate.lub);
  (* and it lies within the unpreferred range *)
  let full = Result.get_ok (Aggregate.range c (Aggregate.Sum "B")) in
  let within =
    match (pref.Aggregate.glb, full.Aggregate.glb, full.Aggregate.lub) with
    | Some v, Some lo, Some hi -> lo <= v && v <= hi
    | _ -> false
  in
  Alcotest.(check bool) "inside full range" true within

let test_empty_instance () =
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel = Relation.of_rows schema [] in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  check range "COUNT of empty" (mk 0 0)
    (Result.get_ok (Aggregate.range c Aggregate.Count_all));
  let minr = Result.get_ok (Aggregate.range c (Aggregate.Min "B")) in
  Alcotest.(check bool) "MIN undefined" true (minr.Aggregate.glb = None)

let suite =
  [
    ("cluster graph detection", `Quick, test_cluster_detection);
    ("COUNT range", `Quick, test_count);
    ("SUM range", `Quick, test_sum);
    ("MIN/MAX ranges", `Quick, test_min_max);
    ("error conditions", `Quick, test_errors);
    ("closed form = enumeration", `Quick, test_closed_form_matches_enumeration);
    ("non-cluster fallback", `Quick, test_non_cluster_fallback);
    ("preferred range collapses under P4", `Quick, test_preferred_range_collapses);
    ("empty instance", `Quick, test_empty_instance);
  ]
