(* Unit tests for repair optimality (§3) and the preferred families.

   Ground truth is the paper's worked examples. Note on Example 9: as
   printed it is internally inconsistent — the 5-tuple chain instance has
   four repairs (maximal independent sets of a 5-path), not the two the
   paper lists, and under the printed total priority the §4.2
   characterization of semi-global optimality leaves a single repair. The
   tests below (a) verify what the definitions actually imply on that
   instance, (b) verify the intended S-vs-G separation on the corrected
   partial-priority variant, and (c) verify exhaustively that no total
   priority on that instance makes S-Rep non-categorical. See
   EXPERIMENTS.md. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Repair = Core.Repair
module Optimality = Core.Optimality
module Family = Core.Family

let check = Alcotest.check
let vs = Testlib.vs

(* --- Example 7: local optimality on one key ------------------------------- *)

let test_example7_lrep () =
  let c, p = Testlib.example7 () in
  Testlib.check_vsets "Rep = three singletons"
    [ vs [ 0 ]; vs [ 1 ]; vs [ 2 ] ]
    (Repair.all c);
  Testlib.check_vsets "only r1 = {ta} locally optimal" [ vs [ 0 ] ]
    (Family.repairs Family.L c p);
  (* one key dependency: L and S coincide (Prop. 3) *)
  Testlib.check_vsets "L = S on one key"
    (Family.repairs Family.L c p)
    (Family.repairs Family.S c p)

let test_example7_witness () =
  let c, p = Testlib.example7 () in
  (match Optimality.improving_swap c p (vs [ 1 ]) with
  | Some (y, x) ->
    check Alcotest.int "y = ta" 0 y;
    check Alcotest.int "x = tb" 1 x
  | None -> Alcotest.fail "expected an improving swap");
  Alcotest.(check bool) "r1 has no witness" true
    (Optimality.improving_swap c p (vs [ 0 ]) = None)

(* --- Example 8: L non-categorical, S decides ------------------------------- *)

let test_example8 () =
  let c, p = Testlib.example8 () in
  Testlib.check_vsets "two repairs" [ vs [ 0; 1 ]; vs [ 2 ] ] (Repair.all c);
  (* both are locally optimal: tc conflicts with two tuples of r1, no
     single swap applies *)
  Testlib.check_vsets "L-Rep = all repairs (non-categorical, total priority!)"
    [ vs [ 0; 1 ]; vs [ 2 ] ]
    (Family.repairs Family.L c p);
  Alcotest.(check bool) "priority is total" true (Priority.is_total c p);
  (* S rejects r1: tc dominates both of its neighbours there *)
  Testlib.check_vsets "S-Rep = {r2}" [ vs [ 2 ] ] (Family.repairs Family.S c p);
  (* one FD: S and G coincide (Prop. 4) *)
  Testlib.check_vsets "G = S on one FD"
    (Family.repairs Family.S c p)
    (Family.repairs Family.G c p)

(* --- Example 9 as printed --------------------------------------------------- *)

let test_example9_as_printed () =
  let c, p = Testlib.example9 () in
  let order = Testlib.chain_order c in
  let pick idxs = vs (List.map (List.nth order) idxs) in
  (* the chain instance has FOUR repairs, not the two listed in the paper *)
  Testlib.check_vsets "four repairs of the 5-path"
    [ pick [ 0; 2; 4 ]; pick [ 0; 3 ]; pick [ 1; 3 ]; pick [ 1; 4 ] ]
    (Repair.all c);
  Alcotest.(check bool) "printed priority is total" true (Priority.is_total c p);
  (* under Definition §3.2, only r1 = {ta, tc, te} survives *)
  Testlib.check_vsets "S-Rep = {r1} (categorical, contra the paper's text)"
    [ pick [ 0; 2; 4 ] ]
    (Family.repairs Family.S c p);
  Testlib.check_vsets "G-Rep likewise" [ pick [ 0; 2; 4 ] ]
    (Family.repairs Family.G c p)

let test_example9_no_total_priority_splits_s () =
  (* Exhaustive: every total priority over the 5-path yields |S-Rep| = 1,
     so Example 9 cannot demonstrate non-categoricity of S-Rep. *)
  let c, _ = Testlib.example9 () in
  let edges = Undirected.edges (Conflict.graph c) in
  let n_edges = List.length edges in
  let count = ref 0 in
  for mask = 0 to (1 lsl n_edges) - 1 do
    let arcs =
      List.mapi
        (fun i (u, v) -> if mask land (1 lsl i) <> 0 then (u, v) else (v, u))
        edges
    in
    match Priority.of_arcs c arcs with
    | Error _ -> () (* cyclic orientation *)
    | Ok p ->
      incr count;
      check Alcotest.int "S-Rep singleton under every total priority" 1
        (List.length (Family.repairs Family.S c p))
  done;
  Alcotest.(check bool) "some acyclic total orientations exist" true (!count > 0)

(* --- Example 9 with a partial priority -------------------------------------- *)

let test_example9_partial_priority () =
  let c, p = Testlib.example9_partial () in
  let order = Testlib.chain_order c in
  let pick idxs = vs (List.map (List.nth order) idxs) in
  Alcotest.(check bool) "priority is partial" false (Priority.is_total c p);
  (* On a path even a partial priority leaves S categorical here — the
     single-tuple witnesses of §4.2 are as strong as ≪ on paths. *)
  Testlib.check_vsets "S-Rep = {{ta, tc, te}}"
    [ pick [ 0; 2; 4 ] ]
    (Family.repairs Family.S c p);
  Testlib.check_vsets "G-Rep agrees" [ pick [ 0; 2; 4 ] ]
    (Family.repairs Family.G c p);
  Testlib.check_vsets "C-Rep agrees" [ pick [ 0; 2; 4 ] ]
    (Family.repairs Family.C c p)

(* --- §3.3's mutual-conflict regime: S and G genuinely differ ----------------- *)

let test_mutual_cycle_separates_s_from_g () =
  (* C4 from two FDs, A->B edges oriented even-over-odd: both the even and
     the odd repair are semi-globally optimal, but the even repair
     ≪-dominates the odd one, so G (and C) reject it. This realizes the
     phenomenon Example 9 was intended to illustrate. *)
  let rel, fds = Workload.Generator.mutual_cycle 2 in
  let c = Conflict.build fds rel in
  let p = Workload.Generator.mutual_cycle_priority c in
  Alcotest.(check bool) "priority is partial" false (Priority.is_total c p);
  let evens, odds =
    let even_set =
      Vset.of_list
        (List.filter_map
           (fun v ->
             match Relational.Value.as_int (Relational.Tuple.get (Conflict.tuple c v) 1) with
             | Some 0 -> Some v
             | _ -> None)
           (List.init (Conflict.size c) Fun.id))
    in
    (even_set, Vset.diff (Vset.of_range (Conflict.size c)) even_set)
  in
  Testlib.check_vsets "Rep = {evens, odds}" [ evens; odds ] (Repair.all c);
  Testlib.check_vsets "S-Rep keeps both (non-categorical!)" [ evens; odds ]
    (Family.repairs Family.S c p);
  Testlib.check_vsets "G-Rep decides for the dominating repair" [ evens ]
    (Family.repairs Family.G c p);
  Testlib.check_vsets "C-Rep agrees with G here" [ evens ]
    (Family.repairs Family.C c p);
  Alcotest.(check bool) "odds << evens" true (Optimality.preferred_to c p odds evens)

let test_mutual_cycle_larger () =
  (* C8: S keeps both alternating repairs, G rejects the odd one. *)
  let rel, fds = Workload.Generator.mutual_cycle 4 in
  let c = Conflict.build fds rel in
  let p = Workload.Generator.mutual_cycle_priority c in
  let s = Family.repairs Family.S c p in
  let g = Family.repairs Family.G c p in
  Alcotest.(check bool) "S strictly larger than G" true
    (List.length s > List.length g);
  let evens =
    Vset.of_list
      (List.filter_map
         (fun v ->
           match Relational.Value.as_int (Relational.Tuple.get (Conflict.tuple c v) 1) with
           | Some 0 -> Some v
           | _ -> None)
         (List.init (Conflict.size c) Fun.id))
  in
  Alcotest.(check bool) "evens globally optimal" true
    (List.exists (Vset.equal evens) g)

(* --- erratum: Prop 4's "one FD ⇒ S = G" fails with duplicates --------------- *)

let test_one_fd_duplicates_separate_s_from_g () =
  (* One non-key FD A -> B over R(A,B,C); two tuples with B=0 and two with
     B=1 in the same key group form a K_{2,2} conflict graph (the
     duplicate regime of §3.2). Priority t3 > t2, t4 > t1: no single
     tuple improves either side (S keeps both repairs), but the pair
     {t3, t4} jointly dominates {t1, t2}, so G rejects one. Found by the
     property-based suite; see EXPERIMENTS.md erratum 3. *)
  let open Relational in
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let row a b cc = [ Value.int a; Value.int b; Value.int cc ] in
  let rel =
    Relation.of_rows schema [ row 1 0 0; row 1 0 2; row 1 1 1; row 1 1 2 ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  (* canonical order: t0=(1,0,0) t1=(1,0,2) t2=(1,1,1) t3=(1,1,2);
     edges 0-2, 0-3, 1-2, 1-3 *)
  let p = Priority.of_arcs_exn c [ (2, 1); (3, 0) ] in
  Testlib.check_vsets "two repairs" [ vs [ 0; 1 ]; vs [ 2; 3 ] ] (Repair.all c);
  Testlib.check_vsets "S keeps both (single FD!)"
    [ vs [ 0; 1 ]; vs [ 2; 3 ] ]
    (Family.repairs Family.S c p);
  Testlib.check_vsets "G rejects the dominated side" [ vs [ 2; 3 ] ]
    (Family.repairs Family.G c p)

(* --- the ≪ relation (Prop. 5) ---------------------------------------------- *)

let test_preferred_to () =
  let c, p = Testlib.example9_partial () in
  let order = Testlib.chain_order c in
  let pick idxs = vs (List.map (List.nth order) idxs) in
  let r1 = pick [ 0; 2; 4 ] and r_alt = pick [ 0; 3 ] in
  Alcotest.(check bool) "r_alt << r1" true (Optimality.preferred_to c p r_alt r1);
  Alcotest.(check bool) "not r1 << r_alt" false (Optimality.preferred_to c p r1 r_alt);
  Alcotest.(check bool) "reflexive" true (Optimality.preferred_to c p r1 r1)

let test_dominating_witness () =
  let c, p = Testlib.example9_partial () in
  let order = Testlib.chain_order c in
  let pick idxs = vs (List.map (List.nth order) idxs) in
  (match Optimality.dominating_witness c p (pick [ 0; 3 ]) with
  | Some w -> check Testlib.vset "witness is r1" (pick [ 0; 2; 4 ]) w
  | None -> Alcotest.fail "expected a dominating repair");
  Alcotest.(check bool) "r1 undominated" true
    (Optimality.dominating_witness c p (pick [ 0; 2; 4 ]) = None)

(* --- Prop. 5: ≪-maximality = replacement definition ------------------------- *)

let test_prop5_equivalence () =
  let rng = Workload.Prng.create 41 in
  for _ = 1 to 30 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:7 ~a_values:2 ~c_values:2
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.6 c in
    List.iter
      (fun r' ->
        Alcotest.(check bool) "Prop 5"
          (Optimality.is_globally_optimal c p r')
          (Optimality.is_globally_optimal_by_replacement c p r'))
      (Repair.all c)
  done

(* --- containments C ⊆ G ⊆ S ⊆ L ⊆ Rep --------------------------------------- *)

let test_containments () =
  let rng = Workload.Prng.create 43 in
  let subset l1 l2 = List.for_all (fun s -> List.exists (Vset.equal s) l2) l1 in
  for _ = 1 to 25 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:9 ~a_values:3 ~c_values:3
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.5 c in
    let rep = Family.repairs Family.Rep c p in
    let l = Family.repairs Family.L c p in
    let s = Family.repairs Family.S c p in
    let g = Family.repairs Family.G c p in
    let cr = Family.repairs Family.C c p in
    Alcotest.(check bool) "C ⊆ G" true (subset cr g);
    Alcotest.(check bool) "G ⊆ S" true (subset g s);
    Alcotest.(check bool) "S ⊆ L" true (subset s l);
    Alcotest.(check bool) "L ⊆ Rep" true (subset l rep);
    (* every family non-empty (P1; for G via C ⊆ G) *)
    Alcotest.(check bool) "all non-empty" true
      (List.for_all (fun f -> f <> []) [ rep; l; s; g; cr ])
  done

(* --- family checks agree with enumeration ------------------------------------ *)

let test_check_agrees_with_enumeration () =
  let rng = Workload.Prng.create 47 in
  for _ = 1 to 20 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:8 ~a_values:3 ~c_values:2
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.5 c in
    let all = Repair.all c in
    List.iter
      (fun family ->
        let selected = Family.repairs family c p in
        List.iter
          (fun r' ->
            let expected = List.exists (Vset.equal r') selected in
            Alcotest.(check bool)
              (Family.name_to_string family)
              expected
              (Family.check family c p r'))
          all)
      Family.all_names
  done

let test_family_one () =
  let c, p = Testlib.example9_partial () in
  List.iter
    (fun family ->
      match Family.one family c p with
      | Some r' ->
        Alcotest.(check bool)
          (Family.name_to_string family ^ " one is member")
          true
          (Family.check family c p r')
      | None -> Alcotest.fail "family unexpectedly empty")
    Family.all_names

let test_family_names () =
  List.iter
    (fun f ->
      check
        (Alcotest.option
           (Alcotest.testable Family.pp_name (fun a b -> a = b)))
        "roundtrip" (Some f)
        (Family.name_of_string (Family.name_to_string f)))
    Family.all_names

let suite =
  [
    ("Example 7: L-Rep on one key", `Quick, test_example7_lrep);
    ("Example 7: improving swap witness", `Quick, test_example7_witness);
    ("Example 8: L fails P4, S decides, S = G", `Quick, test_example8);
    ("Example 9 as printed: definitions disagree with the text", `Quick, test_example9_as_printed);
    ("Example 9: no total priority splits S-Rep", `Quick, test_example9_no_total_priority_splits_s);
    ("Example 9 with partial priority", `Quick, test_example9_partial_priority);
    ("mutual-conflict cycle separates S from G (§3.3)", `Quick, test_mutual_cycle_separates_s_from_g);
    ("mutual-conflict C8", `Quick, test_mutual_cycle_larger);
    ("erratum: one non-key FD separates S from G", `Quick, test_one_fd_duplicates_separate_s_from_g);
    ("the << relation", `Quick, test_preferred_to);
    ("dominating witnesses", `Quick, test_dominating_witness);
    ("Prop 5: two G definitions agree", `Quick, test_prop5_equivalence);
    ("containments C ⊆ G ⊆ S ⊆ L ⊆ Rep", `Quick, test_containments);
    ("family checking = enumeration membership", `Quick, test_check_agrees_with_enumeration);
    ("Family.one returns members", `Quick, test_family_one);
    ("family name round-trips", `Quick, test_family_names);
  ]
