(* Shared helpers for the test suites. *)

open Graphs

let vset = Alcotest.testable Vset.pp Vset.equal

let vset_list =
  Alcotest.testable
    (Fmt.Dump.list Vset.pp)
    (fun l1 l2 -> List.equal Vset.equal l1 l2)

let vs = Vset.of_list

(* Vertex-set lists in canonical order for equality checks. *)
let sorted sets = List.sort Vset.compare sets

let value = Alcotest.testable Relational.Value.pp Relational.Value.equal
let tuple = Alcotest.testable Relational.Tuple.pp Relational.Tuple.equal

let relation =
  Alcotest.testable Relational.Relation.pp Relational.Relation.equal

let check_vsets msg expected actual =
  Alcotest.check vset_list msg (sorted expected) (sorted actual)

(* Paper instances used across suites. *)

let mgr () = Workload.Generator.mgr_example ()

(* Paper example builders are shared with examples/ and bench/ via
   Workload.Paper; re-exported here for the test suites. *)
let example7 = Workload.Paper.example7
let example8 = Workload.Paper.example8
let example9 = Workload.Paper.example9
let example9_partial = Workload.Paper.example9_partial
let chain_order = Workload.Paper.chain_order
let chain_total_priority = Workload.Paper.chain_total_priority
