(* Unit tests for functional dependencies and denial constraints. *)

open Relational
module Fd = Constraints.Fd
module Denial = Constraints.Denial

let check = Alcotest.check

let schema_abc () =
  Schema.make "R"
    [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]

let rel rows = Relation.of_rows (schema_abc ()) (List.map (List.map Value.int) rows)

(* --- FDs: construction and parsing -------------------------------------- *)

let test_fd_make_normalizes () =
  let fd = Fd.make [ "B"; "A"; "A" ] [ "C" ] in
  check Alcotest.(list string) "lhs sorted dedup" [ "A"; "B" ] (Fd.lhs fd);
  Alcotest.(check bool) "empty side rejected" true
    (try
       ignore (Fd.make [] [ "C" ]);
       false
     with Invalid_argument _ -> true)

let test_fd_of_string () =
  (match Fd.of_string "A B -> C" with
  | Ok fd ->
    check Alcotest.(list string) "lhs" [ "A"; "B" ] (Fd.lhs fd);
    check Alcotest.(list string) "rhs" [ "C" ] (Fd.rhs fd)
  | Error e -> Alcotest.fail e);
  (match Fd.of_string "A,B -> C,D" with
  | Ok fd -> check Alcotest.(list string) "commas ok" [ "A"; "B" ] (Fd.lhs fd)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (Fd.of_string "A B C"));
  Alcotest.(check bool) "empty rhs rejected" true (Result.is_error (Fd.of_string "A -> "))

let test_fd_wf () =
  let s = schema_abc () in
  Alcotest.(check bool) "wf ok" true (Result.is_ok (Fd.wf s (Fd.make [ "A" ] [ "B" ])));
  Alcotest.(check bool) "unknown attr" true
    (Result.is_error (Fd.wf s (Fd.make [ "A" ] [ "Z" ])))

(* --- FDs: conflicts ------------------------------------------------------ *)

let test_fd_conflicting () =
  let s = schema_abc () in
  let fd = Fd.make [ "A" ] [ "B" ] in
  let t1 = Tuple.make [ Value.int 1; Value.int 1; Value.int 1 ] in
  let t2 = Tuple.make [ Value.int 1; Value.int 2; Value.int 1 ] in
  let t3 = Tuple.make [ Value.int 1; Value.int 1; Value.int 9 ] in
  let t4 = Tuple.make [ Value.int 2; Value.int 5; Value.int 1 ] in
  Alcotest.(check bool) "same key, different B" true (Fd.conflicting s fd t1 t2);
  Alcotest.(check bool) "duplicate B values do not conflict" false
    (Fd.conflicting s fd t1 t3);
  Alcotest.(check bool) "different keys" false (Fd.conflicting s fd t1 t4);
  Alcotest.(check bool) "no self conflict" false (Fd.conflicting s fd t1 t1)

let test_fd_violations () =
  let fd = Fd.make [ "A" ] [ "B" ] in
  let r = rel [ [ 1; 1; 1 ]; [ 1; 2; 2 ]; [ 1; 2; 3 ]; [ 2; 1; 1 ] ] in
  let s = schema_abc () in
  let pairs = Fd.violations s fd r in
  (* group A=1: (1,1,1)-(1,2,2) and (1,1,1)-(1,2,3) conflict on B;
     (1,2,2)-(1,2,3) agree on B (duplicates). *)
  check Alcotest.int "two conflicting pairs" 2 (List.length pairs);
  Alcotest.(check bool) "consistent check" false (Fd.satisfied s fd r);
  Alcotest.(check bool) "all_satisfied on consistent subset" true
    (Fd.all_satisfied s [ fd ] (rel [ [ 1; 1; 1 ]; [ 2; 1; 1 ] ]))

let test_fd_violation_order () =
  let fd = Fd.make [ "A" ] [ "B" ] in
  let s = schema_abc () in
  let r = rel [ [ 1; 2; 0 ]; [ 1; 1; 0 ] ] in
  match Fd.violations s fd r with
  | [ (a, b) ] -> Alcotest.(check bool) "smaller first" true (Tuple.compare a b < 0)
  | l -> Alcotest.failf "expected one pair, got %d" (List.length l)

(* --- FDs: dependency theory ---------------------------------------------- *)

let test_fd_closure () =
  let s = schema_abc () in
  let fds = [ Fd.make [ "A" ] [ "B" ]; Fd.make [ "B" ] [ "C" ] ] in
  check Alcotest.(list string) "A+ = ABC" [ "A"; "B"; "C" ] (Fd.closure s fds [ "A" ]);
  check Alcotest.(list string) "B+ = BC" [ "B"; "C" ] (Fd.closure s fds [ "B" ]);
  Alcotest.(check bool) "implies A->C" true (Fd.implies s fds (Fd.make [ "A" ] [ "C" ]));
  Alcotest.(check bool) "not C->A" false (Fd.implies s fds (Fd.make [ "C" ] [ "A" ]))

let test_fd_keys () =
  let s = schema_abc () in
  let fds = [ Fd.make [ "A" ] [ "B" ]; Fd.make [ "B" ] [ "C" ] ] in
  Alcotest.(check bool) "A is a key" true (Fd.is_key s fds [ "A" ]);
  Alcotest.(check bool) "B is not" false (Fd.is_key s fds [ "B" ]);
  check
    Alcotest.(list (list string))
    "candidate keys" [ [ "A" ] ] (Fd.candidate_keys s fds)

let test_fd_candidate_keys_composite () =
  let s =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt); ("D", Schema.TInt) ]
  in
  (* AB -> C, CD -> A: candidate keys are ABD and BCD. *)
  let fds = [ Fd.make [ "A"; "B" ] [ "C" ]; Fd.make [ "C"; "D" ] [ "A" ] ] in
  check
    Alcotest.(list (list string))
    "two composite keys"
    [ [ "A"; "B"; "D" ]; [ "B"; "C"; "D" ] ]
    (Fd.candidate_keys s fds)

let test_fd_bcnf () =
  let s = schema_abc () in
  Alcotest.(check bool) "key schema is BCNF" true
    (Fd.is_bcnf s [ Fd.make [ "A" ] [ "B"; "C" ] ]);
  Alcotest.(check bool) "non-key lhs violates BCNF" false
    (Fd.is_bcnf s [ Fd.make [ "A" ] [ "B" ]; Fd.make [ "B" ] [ "C" ] ]);
  Alcotest.(check bool) "trivial FDs fine" true (Fd.is_bcnf s [ Fd.make [ "A"; "B" ] [ "A" ] ])

let test_fd_key_helper () =
  let s = schema_abc () in
  let fd = Fd.key s [ "A" ] in
  check Alcotest.(list string) "key rhs is U" [ "A"; "B"; "C" ] (Fd.rhs fd);
  Alcotest.(check bool) "trivial on lhs" false (Fd.is_trivial fd)

(* --- Denial constraints --------------------------------------------------- *)

let test_denial_fd_encoding () =
  let s = schema_abc () in
  let fd = Fd.make [ "A" ] [ "B"; "C" ] in
  let dcs = Denial.of_fd s fd in
  check Alcotest.int "one dc per rhs attribute" 2 (List.length dcs);
  let r = rel [ [ 1; 1; 1 ]; [ 1; 2; 1 ]; [ 2; 1; 1 ] ] in
  let all_violations = List.concat_map (fun dc -> Denial.violations s dc r) dcs in
  check Alcotest.int "same pair found once (per dc)" 1
    (List.length (List.sort_uniq compare all_violations))

let test_denial_single_tuple () =
  let s = schema_abc () in
  (* no C above 100 *)
  let dc =
    Denial.make ~label:"cap" ~nvars:1
      [ { Denial.left = Denial.Attr (0, "C"); op = Denial.Gt; right = Denial.Const (Value.int 100) } ]
  in
  let r = rel [ [ 1; 1; 50 ]; [ 2; 1; 200 ] ] in
  (match Denial.violations s dc r with
  | [ [ t ] ] -> check Testlib.value "offender" (Value.int 200) (Tuple.get t 2)
  | other -> Alcotest.failf "expected one singleton witness, got %d" (List.length other));
  Alcotest.(check bool) "satisfied on clean data" true
    (Denial.satisfied s dc (rel [ [ 1; 1; 50 ] ]))

let test_denial_three_tuples () =
  let s = schema_abc () in
  (* forbid three tuples with the same A: t1.A=t2.A ∧ t2.A=t3.A ∧ pairwise
     distinct via B ordering to avoid counting permutations twice *)
  let atom l op r = { Denial.left = l; op; right = r } in
  let dc =
    Denial.make ~label:"no-triple" ~nvars:3
      [
        atom (Denial.Attr (0, "A")) Denial.Eq (Denial.Attr (1, "A"));
        atom (Denial.Attr (1, "A")) Denial.Eq (Denial.Attr (2, "A"));
        atom (Denial.Attr (0, "B")) Denial.Lt (Denial.Attr (1, "B"));
        atom (Denial.Attr (1, "B")) Denial.Lt (Denial.Attr (2, "B"));
      ]
  in
  let r = rel [ [ 1; 1; 0 ]; [ 1; 2; 0 ]; [ 1; 3; 0 ]; [ 2; 1; 0 ] ] in
  match Denial.violations s dc r with
  | [ witness ] -> check Alcotest.int "three tuples involved" 3 (List.length witness)
  | other -> Alcotest.failf "expected one witness, got %d" (List.length other)

let test_denial_wf () =
  let s = schema_abc () in
  let name_schema = Schema.make "R" [ ("A", Schema.TName) ] in
  let dc =
    Denial.make ~nvars:1
      [ { Denial.left = Denial.Attr (0, "A"); op = Denial.Lt; right = Denial.Const (Value.name "x") } ]
  in
  Alcotest.(check bool) "order on names rejected" true
    (Result.is_error (Denial.wf name_schema dc));
  let bad_attr =
    Denial.make ~nvars:1
      [ { Denial.left = Denial.Attr (0, "Z"); op = Denial.Eq; right = Denial.Const (Value.int 0) } ]
  in
  Alcotest.(check bool) "unknown attribute" true (Result.is_error (Denial.wf s bad_attr));
  let mixed =
    Denial.make ~nvars:1
      [ { Denial.left = Denial.Attr (0, "A"); op = Denial.Eq; right = Denial.Const (Value.name "x") } ]
  in
  Alcotest.(check bool) "cross-type comparison rejected" true
    (Result.is_error (Denial.wf s mixed))

let test_denial_make_validation () =
  Alcotest.(check bool) "nvars 0 rejected" true
    (try
       ignore (Denial.make ~nvars:0 [ { Denial.left = Denial.Const (Value.int 0); op = Denial.Eq; right = Denial.Const (Value.int 0) } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "var out of range" true
    (try
       ignore
         (Denial.make ~nvars:1
            [ { Denial.left = Denial.Attr (3, "A"); op = Denial.Eq; right = Denial.Const (Value.int 0) } ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("fd: normalization", `Quick, test_fd_make_normalizes);
    ("fd: parsing", `Quick, test_fd_of_string);
    ("fd: well-formedness", `Quick, test_fd_wf);
    ("fd: conflict detection", `Quick, test_fd_conflicting);
    ("fd: violations with duplicates", `Quick, test_fd_violations);
    ("fd: violation pair order", `Quick, test_fd_violation_order);
    ("fd: attribute closure and implication", `Quick, test_fd_closure);
    ("fd: keys", `Quick, test_fd_keys);
    ("fd: composite candidate keys", `Quick, test_fd_candidate_keys_composite);
    ("fd: BCNF conformance", `Quick, test_fd_bcnf);
    ("fd: key helper", `Quick, test_fd_key_helper);
    ("denial: FD encoding", `Quick, test_denial_fd_encoding);
    ("denial: single-tuple constraint", `Quick, test_denial_single_tuple);
    ("denial: three-tuple constraint", `Quick, test_denial_three_tuples);
    ("denial: typing", `Quick, test_denial_wf);
    ("denial: construction validation", `Quick, test_denial_make_validation);
  ]
