(* Model-based equivalence tests for the packed bitset [Graphs.Vset]
   against the reference implementation it replaced, [Set.Make (Int)].

   A random operation sequence is applied in lockstep to a bitset and to
   the model, checking after every step that all observables agree —
   including [compare], whose bitset implementation must reproduce the
   stdlib's lexicographic order on sorted element sequences so that
   sorted enumerations ([Mis.enumerate], [Family.repairs]) are unchanged
   from the tree-backed seed. Element values span several 63-bit words
   to exercise the multi-word paths that the unit tests' small instances
   never reach.

   The same style of oracle pins down [Mis.enumerate]: on random graphs
   it must equal a brute-force enumeration of all maximal independent
   sets. *)

open Graphs
module M = Set.Make (Int)

type vcase = { seed : int; len : int }

let vcase_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* len = int_range 1 40 in
    return { seed; len })

let vcase_print c = Printf.sprintf "{seed=%d; len=%d}" c.seed c.len

(* Elements up to 200 span four packed words and keep sets sparse enough
   that remove/diff/filter regularly produce trailing zero words. *)
let elt_bound = 200

let random_list rng =
  List.init (Workload.Prng.int rng 12) (fun _ ->
      Workload.Prng.int rng elt_bound)

let model_of_range n = M.of_list (List.init n Fun.id)

(* One random operation applied to both representations. *)
let step rng (s, m) =
  match Workload.Prng.int rng 8 with
  | 0 ->
    let v = Workload.Prng.int rng elt_bound in
    (Vset.add v s, M.add v m)
  | 1 ->
    let v = Workload.Prng.int rng elt_bound in
    (Vset.remove v s, M.remove v m)
  | 2 ->
    let l = random_list rng in
    (Vset.union s (Vset.of_list l), M.union m (M.of_list l))
  | 3 ->
    let l = random_list rng in
    (Vset.inter s (Vset.of_list l), M.inter m (M.of_list l))
  | 4 ->
    let l = random_list rng in
    (Vset.diff s (Vset.of_list l), M.diff m (M.of_list l))
  | 5 ->
    let r = Workload.Prng.int rng 2 in
    (Vset.filter (fun v -> v mod 2 = r) s, M.filter (fun v -> v mod 2 = r) m)
  | 6 ->
    let k = Workload.Prng.int rng 5 in
    (Vset.map (fun v -> v + k) s, M.map (fun v -> v + k) m)
  | _ ->
    let n = Workload.Prng.int rng 70 in
    (Vset.of_range n, model_of_range n)

let run_ops seed len =
  let rng = Workload.Prng.create seed in
  let rec go k acc = if k = 0 then acc else go (k - 1) (step rng acc) in
  go len (Vset.empty, M.empty)

let agree (s, m) =
  Vset.cardinal s = M.cardinal m
  && Vset.is_empty s = M.is_empty m
  && Vset.elements s = M.elements m
  && Vset.min_elt_opt s = M.min_elt_opt m
  && Vset.max_elt_opt s = (if M.is_empty m then None else Some (M.max_elt m))
  && Vset.fold (fun v acc -> v :: acc) s []
     = M.fold (fun v acc -> v :: acc) m []

let prop name ?(count = 200) f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:vcase_print vcase_gen f)

let unary_observables =
  prop "unary observables agree with Set.Make(Int) after every op"
    (fun c ->
      let rng = Workload.Prng.create c.seed in
      let rec go k acc =
        agree acc && (k = 0 || go (k - 1) (step rng acc))
      in
      go c.len (Vset.empty, M.empty))

let sign x = compare x 0

let binary_observables =
  prop "binary observables agree on independent random sets" (fun c ->
      let s1, m1 = run_ops c.seed c.len in
      let s2, m2 = run_ops (c.seed + 524287) (1 + (c.len / 2)) in
      sign (Vset.compare s1 s2) = sign (M.compare m1 m2)
      && Vset.equal s1 s2 = M.equal m1 m2
      && Vset.subset s1 s2 = M.subset m1 m2
      && Vset.subset s2 s1 = M.subset m2 m1
      && Vset.disjoint s1 s2 = M.is_empty (M.inter m1 m2)
      && Vset.inter_cardinal s1 s2 = M.cardinal (M.inter m1 m2)
      && Vset.elements (Vset.union s1 s2) = M.elements (M.union m1 m2)
      && Vset.elements (Vset.inter s1 s2) = M.elements (M.inter m1 m2)
      && Vset.elements (Vset.diff s1 s2) = M.elements (M.diff m1 m2))

let membership_probes =
  prop "mem / exists / for_all agree under random probes" (fun c ->
      let s, m = run_ops c.seed c.len in
      let rng = Workload.Prng.create (c.seed + 104729) in
      let probes = List.init 20 (fun _ -> Workload.Prng.int rng elt_bound) in
      List.for_all (fun v -> Vset.mem v s = M.mem v m) probes
      && (not (Vset.mem (-1) s))
      && Vset.exists (fun v -> v mod 3 = 0) s = M.exists (fun v -> v mod 3 = 0) m
      && Vset.for_all (fun v -> v mod 3 = 0) s
         = M.for_all (fun v -> v mod 3 = 0) m)

let equal_sets_indistinguishable =
  (* equal sets built along different op paths must agree on the
     structure-sensitive observables: equality, compare = 0, hash *)
  prop "equal sets have equal hash and compare 0" (fun c ->
      let s1, m1 = run_ops c.seed c.len in
      let s2 = Vset.of_list (M.elements m1) in
      Vset.equal s1 s2
      && Vset.compare s1 s2 = 0
      && Vset.hash s1 = Vset.hash s2
      && Hashtbl.hash s1 = Hashtbl.hash s2)

let words_roundtrip =
  prop "to_words / of_words round-trips" (fun c ->
      let s, _ = run_ops c.seed c.len in
      let width = 1 + (elt_bound + 4) / Vset.word_size in
      Vset.equal s (Vset.of_words (Vset.to_words ~width s)))

(* --- Mis.enumerate against a brute-force oracle ------------------------- *)

type gcase = { gseed : int; gn : int; edge_pct : int }

let gcase_gen =
  QCheck2.Gen.(
    let* gseed = int_bound 1_000_000 in
    let* gn = int_range 1 12 in
    let* edge_pct = int_bound 100 in
    return { gseed; gn; edge_pct })

let gcase_print c =
  Printf.sprintf "{seed=%d; n=%d; edges=%d%%}" c.gseed c.gn c.edge_pct

let random_graph c =
  let rng = Workload.Prng.create c.gseed in
  let edges = ref [] in
  for u = 0 to c.gn - 1 do
    for v = u + 1 to c.gn - 1 do
      if Workload.Prng.int rng 100 < c.edge_pct then edges := (u, v) :: !edges
    done
  done;
  Undirected.create c.gn !edges

(* All maximal independent sets by subset enumeration: n <= 12 keeps
   this at 4096 subsets, each checked directly against the graph. *)
let brute_force_mis g =
  let n = Undirected.size g in
  let subsets = List.init (1 lsl n) Fun.id in
  let to_set mask =
    Vset.of_list
      (List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id))
  in
  subsets
  |> List.map to_set
  |> List.filter (Undirected.is_maximal_independent g)
  |> List.sort Vset.compare

let mis_matches_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Mis.enumerate = brute-force maximal sets"
       ~count:80 ~print:gcase_print gcase_gen (fun c ->
         let g = random_graph c in
         let reference = brute_force_mis g in
         let enumerated = Mis.enumerate g in
         List.length enumerated = List.length reference
         && List.for_all2 Vset.equal enumerated reference
         && Mis.count g = List.length reference))

let suite =
  [
    unary_observables;
    binary_observables;
    membership_probes;
    equal_sets_indistinguishable;
    words_roundtrip;
    mis_matches_brute_force;
  ]
