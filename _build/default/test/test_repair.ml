(* Unit tests for repairs (Definition 1) and Algorithm 1 / C-Rep. *)

open Graphs
open Relational
module Conflict = Core.Conflict
module Priority = Core.Priority
module Repair = Core.Repair
module Winnow = Core.Winnow

let check = Alcotest.check
let vs = Testlib.vs

let test_example2_repairs () =
  (* Example 2: the Mgr instance has exactly the repairs r1, r2, r3. *)
  let rel, fds, _ = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let repairs = Repair.all_relations c in
  check Alcotest.int "three repairs" 3 (List.length repairs);
  let t name dept salary reports =
    Tuple.make
      [ Value.name name; Value.name dept; Value.int salary; Value.int reports ]
  in
  let expect tuples =
    let r = Relation.of_tuples (Relation.schema rel) tuples in
    Alcotest.(check bool)
      (Printf.sprintf "repair present")
      true
      (List.exists (Relation.equal r) repairs)
  in
  expect [ t "Mary" "R&D" 40000 3; t "John" "PR" 30000 4 ];
  expect [ t "John" "R&D" 10000 2; t "Mary" "IT" 20000 1 ];
  expect [ t "Mary" "IT" 20000 1; t "John" "PR" 30000 4 ]

let test_example4_count () =
  (* Example 4: r_n has 2^n repairs. *)
  List.iter
    (fun n ->
      let rel, fds = Workload.Generator.ladder n in
      let c = Conflict.build fds rel in
      check Alcotest.int (Printf.sprintf "2^%d" n) (1 lsl n) (Repair.count c))
    [ 0; 1; 3; 6; 10 ]

let test_consistent_relation_single_repair () =
  (* "the set of repairs of a consistent relation r contains only r" *)
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel =
    Relation.of_rows schema
      [ [ Value.int 1; Value.int 1 ]; [ Value.int 2; Value.int 2 ] ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  match Repair.all_relations c with
  | [ r ] -> check Testlib.relation "repair = r" rel r
  | l -> Alcotest.failf "expected 1 repair, got %d" (List.length l)

let test_repair_checking () =
  let rel, fds, _ = Testlib.mgr () in
  let c = Conflict.build fds rel in
  List.iter
    (fun s -> Alcotest.(check bool) "enumerated are repairs" true (Repair.is_repair c s))
    (Repair.all c);
  Alcotest.(check bool) "non-maximal rejected" false (Repair.is_repair c Vset.empty);
  Alcotest.(check bool) "conflicting rejected" false
    (Repair.is_repair c (Vset.of_range (Conflict.size c)));
  let sub = Relation.filter (fun t -> Value.equal (Tuple.get t 0) (Value.name "Mary")) rel in
  (* {Mary-R&D, Mary-IT} is conflicting, not a repair *)
  Alcotest.(check bool) "relation-level check" false (Repair.is_repair_relation c sub)

let test_repairs_are_subsets_consistent () =
  let rng = Workload.Prng.create 3 in
  for _ = 1 to 15 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:10 ~a_values:3 ~c_values:3
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let schema = Relation.schema rel in
    List.iter
      (fun s ->
        let r = Repair.to_relation c s in
        Alcotest.(check bool) "subset" true (Relation.subset r rel);
        Alcotest.(check bool) "consistent" true
          (Constraints.Fd.all_satisfied schema fds r);
        (* maximality: adding any removed tuple breaks consistency *)
        Relation.iter
          (fun t ->
            if not (Relation.mem r t) then
              Alcotest.(check bool) "maximal" false
                (Constraints.Fd.all_satisfied schema fds (Relation.add r t)))
          rel)
      (Repair.all c)
  done

(* --- Algorithm 1 --------------------------------------------------------- *)

let test_clean_is_repair () =
  let rng = Workload.Prng.create 17 in
  for _ = 1 to 20 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:14 ~key_values:4 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.5 c in
    Alcotest.(check bool) "clean yields a repair" true
      (Repair.is_repair c (Winnow.clean c p))
  done

let test_prop1_total_priority_unique () =
  (* Prop. 1: with a total priority every choice sequence gives the same
     repair. Exercise several tie-breaking strategies. *)
  let rng = Workload.Prng.create 23 in
  for _ = 1 to 20 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:12 ~key_values:3 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:1.0 c in
    let by_min = Winnow.clean ~choose:Vset.min_elt c p in
    let by_max = Winnow.clean ~choose:Vset.max_elt c p in
    check Testlib.vset "choice-independent" by_min by_max;
    match Winnow.all_results c p with
    | [ unique ] -> check Testlib.vset "all_results singleton" by_min unique
    | l -> Alcotest.failf "total priority gave %d results" (List.length l)
  done

let test_all_results_no_priority () =
  (* With the empty priority Algorithm 1 can produce every repair. *)
  let rel, fds = Workload.Generator.ladder 3 in
  let c = Conflict.build fds rel in
  Testlib.check_vsets "C-Rep with empty priority = Rep" (Repair.all c)
    (Winnow.all_results c (Priority.empty c))

let test_is_result_agrees_with_enumeration () =
  let rng = Workload.Prng.create 31 in
  for _ = 1 to 25 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:9 ~a_values:3 ~c_values:3
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.5 c in
    let c_rep = Winnow.all_results c p in
    List.iter
      (fun r' ->
        let expected = List.exists (Vset.equal r') c_rep in
        Alcotest.(check bool) "membership agrees" expected (Winnow.is_result c p r'))
      (Repair.all c)
  done

let test_is_result_rejects_non_repairs () =
  let rel, fds = Workload.Generator.ladder 2 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  Alcotest.(check bool) "conflicting set" false
    (Winnow.is_result c p (vs [ 0; 1 ]));
  Alcotest.(check bool) "non-maximal set" false (Winnow.is_result c p (vs [ 0 ]))

let test_incremental_clean_matches_reference () =
  (* the incremental Algorithm 1 must coincide with the literal
     restatement for every choice strategy *)
  let rng = Workload.Prng.create 37 in
  for _ = 1 to 25 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:14 ~a_values:4 ~c_values:4
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.6 c in
    List.iter
      (fun choose ->
        check Testlib.vset "incremental = naive"
          (Winnow.clean_naive ~choose c p)
          (Winnow.clean ~choose c p))
      [ Vset.min_elt; Vset.max_elt ]
  done

let test_mgr_crep () =
  (* Example 3: with s1,s2 > s3 the common repairs are exactly r1, r2. *)
  let rel, fds, prov = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let p = Core.Pref_rules.apply_exn c rule in
  let c_rep = Winnow.all_results c p in
  check Alcotest.int "two common repairs" 2 (List.length c_rep);
  let t name dept salary reports =
    Tuple.make
      [ Value.name name; Value.name dept; Value.int salary; Value.int reports ]
  in
  let as_vset tuples = Conflict.vset_of_relation c (Relation.of_tuples (Relation.schema rel) tuples) in
  let r1 = as_vset [ t "Mary" "R&D" 40000 3; t "John" "PR" 30000 4 ] in
  let r2 = as_vset [ t "John" "R&D" 10000 2; t "Mary" "IT" 20000 1 ] in
  Testlib.check_vsets "C-Rep = {r1, r2}" [ r1; r2 ] c_rep

let suite =
  [
    ("Example 2: the three Mgr repairs", `Quick, test_example2_repairs);
    ("Example 4: 2^n repairs", `Quick, test_example4_count);
    ("consistent relation repairs to itself", `Quick, test_consistent_relation_single_repair);
    ("repair checking", `Quick, test_repair_checking);
    ("repairs are maximal consistent subsets", `Quick, test_repairs_are_subsets_consistent);
    ("Algorithm 1 returns a repair", `Quick, test_clean_is_repair);
    ("Prop 1: total priority, unique result", `Quick, test_prop1_total_priority_unique);
    ("C-Rep with no priorities = Rep", `Quick, test_all_results_no_priority);
    ("PTIME C-check = enumeration (Prop 7)", `Quick, test_is_result_agrees_with_enumeration);
    ("C-check rejects non-repairs", `Quick, test_is_result_rejects_non_repairs);
    ("incremental Algorithm 1 = reference", `Quick, test_incremental_clean_matches_reference);
    ("Example 3: common repairs of Mgr", `Quick, test_mgr_crep);
  ]
