(* Edge cases and combinatorial cross-checks across the stack. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family

let check = Alcotest.check

(* --- known MIS counts on structured graphs ---------------------------------- *)

let test_path_mis_padovan () =
  (* maximal independent sets of the path P_n obey
     M(n) = M(n-2) + M(n-3), M(1) = 1, M(2) = 2, M(3) = 2 *)
  let expected = [| 0; 1; 2; 2; 3; 4; 5; 7; 9; 12; 16 |] in
  for n = 1 to 10 do
    let rel, fds = Workload.Generator.chain n in
    let c = Conflict.build fds rel in
    check Alcotest.int
      (Printf.sprintf "path P_%d" n)
      expected.(n) (Core.Repair.count c)
  done

let test_cycle_mis_perrin () =
  (* maximal independent sets of the cycle C_n are the Perrin numbers:
     C4 -> 2, C6 -> 5, C8 -> 10, C10 -> 17 *)
  List.iter
    (fun (k, expected) ->
      let rel, fds = Workload.Generator.mutual_cycle k in
      let c = Conflict.build fds rel in
      check Alcotest.int (Printf.sprintf "cycle C_%d" (2 * k)) expected
        (Core.Repair.count c))
    [ (2, 2); (3, 5); (4, 10); (5, 17) ]

let test_clique_mis () =
  (* a width-w clique has w repairs, each a singleton *)
  List.iter
    (fun w ->
      let rel, fds = Workload.Generator.key_clusters ~groups:1 ~width:w in
      let c = Conflict.build fds rel in
      check Alcotest.int (Printf.sprintf "K_%d" w) w (Core.Repair.count c))
    [ 1; 2; 5; 9 ]

(* --- empty and tiny instances ------------------------------------------------- *)

let empty_instance () =
  let schema =
    Relational.Schema.make "R"
      [ ("A", Relational.Schema.TInt); ("B", Relational.Schema.TInt) ]
  in
  Conflict.build
    [ Constraints.Fd.make [ "A" ] [ "B" ] ]
    (Relational.Relation.of_rows schema [])

let test_empty_instance () =
  let c = empty_instance () in
  let p = Priority.empty c in
  Alcotest.(check bool) "consistent" true (Conflict.is_consistent c);
  List.iter
    (fun family ->
      match Family.repairs family c p with
      | [ s ] -> Alcotest.(check bool) "empty repair" true (Vset.is_empty s)
      | l -> Alcotest.failf "expected exactly 1 repair, got %d" (List.length l))
    Family.all_names;
  (* queries over the empty instance *)
  let q = Query.Parser.parse_exn "exists a, b. R(a, b)" in
  Alcotest.(check bool) "existential false" false
    (Core.Cqa.consistent_answer Family.Rep c p q);
  let q2 = Query.Parser.parse_exn "forall a, b. R(a, b) implies a = b" in
  Alcotest.(check bool) "universal vacuously true" true
    (Core.Cqa.consistent_answer Family.Rep c p q2);
  (* statistics *)
  let s = Core.Stats.compute Family.C c p in
  check Alcotest.int "zero tuples" 0 s.Core.Stats.tuples;
  check Alcotest.int "one (empty) repair" 1 s.Core.Stats.repair_count

let test_single_tuple () =
  let schema = Relational.Schema.make "R" [ ("A", Relational.Schema.TInt) ] in
  let rel = Relational.Relation.of_rows schema [ [ Relational.Value.int 7 ] ] in
  let c = Conflict.build [] rel in
  Alcotest.(check bool) "no FDs, consistent" true (Conflict.is_consistent c);
  check Alcotest.int "one repair" 1 (Core.Repair.count c);
  let q = Query.Parser.parse_exn "R(7)" in
  Alcotest.(check bool) "fact certain" true
    (Core.Cqa.consistent_answer Family.Rep c (Priority.empty c) q)

let test_all_conflicting () =
  (* one big clique: every pair conflicts; repairs are singletons and a
     score rule yields one winner *)
  let rel, fds = Workload.Generator.key_clusters ~groups:1 ~width:6 in
  let c = Conflict.build fds rel in
  let score t =
    Option.get (Relational.Value.as_int (Relational.Tuple.get t 1))
  in
  let p = Core.Pref_rules.apply_exn c (Core.Pref_rules.by_score score) in
  Alcotest.(check bool) "total" true (Priority.is_total c p);
  (match Family.repairs Family.C c p with
  | [ s ] ->
    check Alcotest.int "singleton repair" 1 (Vset.cardinal s);
    let winner = Conflict.tuple c (Vset.min_elt s) in
    check Alcotest.int "the max-score tuple wins" 5 (score winner)
  | l -> Alcotest.failf "expected 1 repair, got %d" (List.length l))

(* --- evaluator corners ---------------------------------------------------------- *)

let test_eval_leq_geq_names () =
  let schema = Relational.Schema.make "R" [ ("A", Relational.Schema.TName) ] in
  let rel = Relational.Relation.of_rows schema [ [ Relational.Value.name "a" ] ] in
  let parse = Query.Parser.parse_exn in
  Alcotest.(check bool) "'a' <= 'a' (reflexive)" true
    (Query.Eval.holds_relation rel (parse "'a' <= 'a'"));
  Alcotest.(check bool) "'a' <= 'b' undefined-false" false
    (Query.Eval.holds_relation rel (parse "'a' <= 'b'"));
  Alcotest.(check bool) "'a' >= 'a'" true
    (Query.Eval.holds_relation rel (parse "'a' >= 'a'"))

let test_eval_implies_edge () =
  let schema = Relational.Schema.make "R" [ ("A", Relational.Schema.TInt) ] in
  let rel = Relational.Relation.of_rows schema [ [ Relational.Value.int 1 ] ] in
  let parse = Query.Parser.parse_exn in
  Alcotest.(check bool) "false implies anything" true
    (Query.Eval.holds_relation rel (parse "false implies R(9)"));
  Alcotest.(check bool) "chained implication parses right" true
    (Query.Eval.holds_relation rel (parse "R(9) implies R(8) implies R(7)"))

(* --- priorities on conflict-free instances ---------------------------------------- *)

let test_priority_on_consistent_instance () =
  let c = empty_instance () in
  Alcotest.(check bool) "empty priority total (no edges)" true
    (Priority.is_total c (Priority.empty c));
  check Alcotest.int "no extensions" 0
    (List.length (Priority.one_step_extensions c (Priority.empty c)))

(* --- big ladder through the factorized paths --------------------------------------- *)

let test_large_ladder_factorized () =
  (* 2^40 repairs globally; everything component-wise stays exact *)
  let rel, fds = Workload.Generator.ladder 40 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  let d = Core.Decompose.make c p in
  check Alcotest.int "count 2^40" (1 lsl 40) (Core.Decompose.count Family.Rep d);
  check Alcotest.int "no certain tuple" 0
    (Vset.cardinal (Core.Decompose.certain_tuples Family.Rep d));
  check Alcotest.int "all possible" 80
    (Vset.cardinal (Core.Decompose.possible_tuples Family.Rep d));
  (* orienting every edge pins a unique repair *)
  let total = Priority.totalize c p in
  let d2 = Core.Decompose.make c total in
  check Alcotest.int "one preferred repair" 1 (Core.Decompose.count Family.C d2);
  check Alcotest.int "40 certain tuples" 40
    (Vset.cardinal (Core.Decompose.certain_tuples Family.C d2))

let suite =
  [
    ("MIS counts on paths (Padovan)", `Quick, test_path_mis_padovan);
    ("MIS counts on cycles (Perrin)", `Quick, test_cycle_mis_perrin);
    ("MIS counts on cliques", `Quick, test_clique_mis);
    ("empty instance", `Quick, test_empty_instance);
    ("single tuple, no constraints", `Quick, test_single_tuple);
    ("one big clique with a total score", `Quick, test_all_conflicting);
    ("name comparisons at the boundary", `Quick, test_eval_leq_geq_names);
    ("implication corners", `Quick, test_eval_implies_edge);
    ("priorities without conflicts", `Quick, test_priority_on_consistent_instance);
    ("2^40 repairs, factorized", `Quick, test_large_ladder_factorized);
  ]
