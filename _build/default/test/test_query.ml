(* Unit tests for the query language: AST utilities, lexer, parser,
   evaluator, transforms. *)

open Relational
module Ast = Query.Ast
module Parser = Query.Parser
module Eval = Query.Eval
module Transform = Query.Transform

let check = Alcotest.check

let parse s = Parser.parse_exn s

(* --- AST utilities -------------------------------------------------------- *)

let test_free_vars () =
  let q = parse "exists x. R(x, y) and x < z" in
  check Alcotest.(list string) "free vars" [ "y"; "z" ] (Ast.free_vars q);
  Alcotest.(check bool) "open" false (Ast.is_closed q);
  Alcotest.(check bool) "closed" true
    (Ast.is_closed (parse "exists x,y,z. R(x, y) and x < z"))

let test_shadowing () =
  let q = parse "exists x. R(x, x) and exists x. S(x)" in
  check Alcotest.(list string) "no free vars" [] (Ast.free_vars q);
  let q2 = Ast.substitute [ ("x", Value.int 5) ] (parse "R(x) and exists x. S(x)") in
  (match q2 with
  | Ast.And (Ast.Atom (_, [ Ast.Const v ]), Ast.Exists ([ "x" ], Ast.Atom (_, [ Ast.Var "x" ]))) ->
    check Testlib.value "substituted free occurrence" (Value.int 5) v
  | _ -> Alcotest.fail "unexpected substitution result")

let test_classes () =
  Alcotest.(check bool) "qf" true (Ast.is_quantifier_free (parse "R(1, 2) or not R(2, 1)"));
  Alcotest.(check bool) "not qf" false (Ast.is_quantifier_free (parse "exists x. R(x, x)"));
  Alcotest.(check bool) "ground" true (Ast.is_ground (parse "R(1, 'a') and 1 < 2"));
  Alcotest.(check bool) "not ground" false (Ast.is_ground (parse "R(x, 1)"))

let test_constants_size () =
  let q = parse "R(1, 'a') and 2 < 3" in
  check Alcotest.int "constants" 4 (List.length (Ast.constants q));
  check Alcotest.int "size" 3 (Ast.size q)

(* --- Lexer ----------------------------------------------------------------- *)

let test_lexer_tokens () =
  match Query.Lexer.tokenize "exists x . R(x,'R&D') and x <= 10 or x <> 2" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
    check Alcotest.int "token count" 18 (List.length toks);
    Alcotest.(check bool) "has NAME" true
      (List.mem (Query.Lexer.NAME "R&D") toks);
    Alcotest.(check bool) "<> becomes NEQ" true (List.mem Query.Lexer.NEQ toks)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated quote" true
    (Result.is_error (Query.Lexer.tokenize "R('abc"));
  Alcotest.(check bool) "stray char" true (Result.is_error (Query.Lexer.tokenize "R(x) % 2"));
  Alcotest.(check bool) "bang without equals" true
    (Result.is_error (Query.Lexer.tokenize "x ! y"))

(* --- Parser ----------------------------------------------------------------- *)

let test_parser_precedence () =
  (* and binds tighter than or; or tighter than implies *)
  (match parse "R(1) or R(2) and R(3)" with
  | Ast.Or (Ast.Atom ("R", _), Ast.And _) -> ()
  | _ -> Alcotest.fail "or/and precedence");
  (match parse "R(1) implies R(2) implies R(3)" with
  | Ast.Implies (_, Ast.Implies (_, _)) -> ()
  | _ -> Alcotest.fail "implies right-assoc");
  match parse "not R(1) and R(2)" with
  | Ast.And (Ast.Not _, _) -> ()
  | _ -> Alcotest.fail "not binds tightest"

let test_parser_quantifier_scope () =
  match parse "exists x, y. R(x, y) and x = y" with
  | Ast.Exists ([ "x"; "y" ], Ast.And (_, _)) -> ()
  | _ -> Alcotest.fail "quantifier extends right"

let test_parser_paper_q1 () =
  let q =
    parse
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and Mgr('John',x2,y2,z2) \
       and y1 < y2"
  in
  Alcotest.(check bool) "closed" true (Ast.is_closed q);
  match q with
  | Ast.Exists (vars, _) -> check Alcotest.int "six vars" 6 (List.length vars)
  | _ -> Alcotest.fail "expected exists"

let test_parser_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Result.is_error (Parser.parse s)))
    [ "R(x" ; "exists . R(x)"; "R(x) and"; "R(x) R(y)"; ""; "exists x R(x)" ]

let test_parser_roundtrip () =
  List.iter
    (fun s ->
      let q = parse s in
      let q' = parse (Query.Pretty.to_string q) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %S" s) true (Ast.equal q q'))
    [
      "exists x, y. R(x, y) and (x < y or not R(y, x))";
      "forall x. R(x, x) implies false";
      "R(1, 'a') or true";
      "not not R(1, 2)";
      "forall a. exists b. R(a, b) and a != b";
    ]

(* --- Evaluator ---------------------------------------------------------------- *)

let db () =
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let r =
    Relation.of_rows schema
      [
        [ Value.int 1; Value.int 10 ];
        [ Value.int 2; Value.int 20 ];
        [ Value.int 3; Value.int 20 ];
      ]
  in
  Database.of_relations [ r ]

let test_eval_atoms () =
  let db = db () in
  Alcotest.(check bool) "fact present" true (Eval.holds db (parse "R(1, 10)"));
  Alcotest.(check bool) "fact absent" false (Eval.holds db (parse "R(1, 20)"));
  Alcotest.(check bool) "negation" true (Eval.holds db (parse "not R(1, 20)"))

let test_eval_quantifiers () =
  let db = db () in
  Alcotest.(check bool) "exists" true (Eval.holds db (parse "exists x. R(x, 20)"));
  Alcotest.(check bool) "forall fails" false
    (Eval.holds db (parse "forall x, y. R(x, y) implies y = 10"));
  Alcotest.(check bool) "forall holds" true
    (Eval.holds db (parse "forall x, y. R(x, y) implies x < y"));
  Alcotest.(check bool) "nested" true
    (Eval.holds db (parse "exists x, y. R(x, y) and forall u, v. R(u, v) implies y >= v"))

let test_eval_comparisons () =
  let db = db () in
  Alcotest.(check bool) "lt" true (Eval.holds db (parse "1 < 2"));
  Alcotest.(check bool) "leq equal" true (Eval.holds db (parse "2 <= 2"));
  Alcotest.(check bool) "names unordered" false (Eval.holds db (parse "'a' < 'b'"));
  Alcotest.(check bool) "name equality" true (Eval.holds db (parse "'a' = 'a'"));
  Alcotest.(check bool) "cross-domain equality" false (Eval.holds db (parse "'1' = 1"))

let test_eval_open_queries () =
  let db = db () in
  let free, rows = Eval.answers db (parse "R(x, 20)") in
  check Alcotest.(list string) "free" [ "x" ] free;
  check Alcotest.int "two answers" 2 (List.length rows);
  let _, rows2 = Eval.answers db (parse "R(x, y) and y > 15") in
  check Alcotest.int "pairs" 2 (List.length rows2)

let test_eval_errors () =
  let db = db () in
  Alcotest.(check bool) "unknown relation" true
    (try
       ignore (Eval.holds db (parse "S(1)"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (Eval.holds db (parse "R(1)"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "free variable" true
    (try
       ignore (Eval.holds db (parse "R(x, 10)"));
       false
     with Invalid_argument _ -> true)

let test_eval_example1_q1 () =
  (* Q1 over the inconsistent Mgr instance is (misleadingly) true. *)
  let rel, _, _ = Testlib.mgr () in
  let q1 =
    parse
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and Mgr('John',x2,y2,z2) \
       and y1 < y2"
  in
  Alcotest.(check bool) "Q1 true in r" true (Eval.holds_relation rel q1)

(* --- Transform ------------------------------------------------------------------ *)

let test_nnf () =
  let q = parse "not (R(1, 2) and not R(2, 1))" in
  (match Transform.nnf q with
  | Ast.Or (Ast.Not (Ast.Atom _), Ast.Atom _) -> ()
  | _ -> Alcotest.fail "nnf shape");
  (* nnf preserves truth on a database *)
  let db = db () in
  List.iter
    (fun s ->
      let q = parse s in
      Alcotest.(check bool) (Printf.sprintf "nnf equivalent: %s" s)
        (Eval.holds db q)
        (Eval.holds db (Transform.nnf q)))
    [
      "not (R(1, 10) implies R(1, 20))";
      "not (exists x. R(x, 10) and x > 1)";
      "not (forall x. R(x, 10))";
      "not (1 < 2)";
      "not not not R(1, 10)";
    ]

let test_ground_dnf () =
  let q = parse "R(1, 10) and (not R(2, 20) or 1 < 0)" in
  match Transform.ground_dnf q with
  | Error e -> Alcotest.fail e
  | Ok [ clause ] ->
    check Alcotest.int "one positive" 1 (List.length clause.Transform.positive);
    check Alcotest.int "one negative" 1 (List.length clause.Transform.negative)
  | Ok l -> Alcotest.failf "expected 1 clause, got %d" (List.length l)

let test_ground_dnf_simplification () =
  (* contradictory clause dropped; tautology keeps empty clause *)
  (match Transform.ground_dnf (parse "R(1, 1) and not R(1, 1)") with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "contradiction should yield no clauses"
  | Error e -> Alcotest.fail e);
  (match Transform.ground_dnf (parse "1 < 2 or R(1, 1)") with
  | Ok clauses ->
    Alcotest.(check bool) "tautologous clause present" true
      (List.exists
         (fun c -> c.Transform.positive = [] && c.Transform.negative = [])
         clauses)
  | Error e -> Alcotest.fail e);
  match Transform.ground_dnf (parse "R(x, 1)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-ground must be rejected"

let test_ground_dnf_faithful () =
  (* the DNF predicts evaluation on concrete instances *)
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let facts = [ (1, 10); (2, 20); (3, 30) ] in
  let queries =
    [
      "R(1, 10) and not R(2, 20)";
      "R(1, 10) or (R(2, 20) and R(3, 30))";
      "not (R(1, 10) implies R(2, 20))";
      "(R(1, 10) or R(2, 20)) and not (R(3, 30) and R(1, 10))";
    ]
  in
  (* all 8 sub-instances of facts *)
  let rec sublists = function
    | [] -> [ [] ]
    | x :: rest ->
      let t = sublists rest in
      t @ List.map (fun l -> x :: l) t
  in
  List.iter
    (fun qs ->
      let q = Parser.parse_exn qs in
      let clauses = Result.get_ok (Transform.ground_dnf q) in
      List.iter
        (fun sub ->
          let r =
            Relation.of_rows schema
              (List.map (fun (a, b) -> [ Value.int a; Value.int b ]) sub)
          in
          let direct = Eval.holds_relation r q in
          let via_dnf =
            List.exists
              (fun c ->
                List.for_all (fun (_, t) -> Relation.mem r t) c.Transform.positive
                && List.for_all
                     (fun (_, t) -> not (Relation.mem r t))
                     c.Transform.negative)
              clauses
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %d facts" qs (List.length sub))
            direct via_dnf)
        (sublists facts))
    queries

let suite =
  [
    ("ast: free variables", `Quick, test_free_vars);
    ("ast: shadowing and substitution", `Quick, test_shadowing);
    ("ast: syntactic classes", `Quick, test_classes);
    ("ast: constants and size", `Quick, test_constants_size);
    ("lexer: tokens", `Quick, test_lexer_tokens);
    ("lexer: errors", `Quick, test_lexer_errors);
    ("parser: precedence", `Quick, test_parser_precedence);
    ("parser: quantifier scope", `Quick, test_parser_quantifier_scope);
    ("parser: the paper's Q1", `Quick, test_parser_paper_q1);
    ("parser: rejects malformed input", `Quick, test_parser_errors);
    ("parser: pretty-print roundtrip", `Quick, test_parser_roundtrip);
    ("eval: ground atoms", `Quick, test_eval_atoms);
    ("eval: quantifiers", `Quick, test_eval_quantifiers);
    ("eval: comparison semantics", `Quick, test_eval_comparisons);
    ("eval: open queries", `Quick, test_eval_open_queries);
    ("eval: error conditions", `Quick, test_eval_errors);
    ("eval: Example 1 Q1 misleading answer", `Quick, test_eval_example1_q1);
    ("transform: nnf", `Quick, test_nnf);
    ("transform: ground dnf", `Quick, test_ground_dnf);
    ("transform: dnf simplification", `Quick, test_ground_dnf_simplification);
    ("transform: dnf faithful on all sub-instances", `Quick, test_ground_dnf_faithful);
  ]
