(* Unit tests for conflict graph construction (paper §2.1). *)

open Relational
open Graphs
module Conflict = Core.Conflict

let check = Alcotest.check
let vs = Testlib.vs

let test_mgr_conflicts () =
  (* Example 1: exactly three conflicts. *)
  let rel, fds, _ = Testlib.mgr () in
  let c = Conflict.build fds rel in
  check Alcotest.int "4 vertices" 4 (Conflict.size c);
  check Alcotest.int "3 conflicts" 3 (Undirected.edge_count (Conflict.graph c));
  Alcotest.(check bool) "inconsistent" false (Conflict.is_consistent c);
  (* the conflicts are exactly the ones listed in Example 1 *)
  let t name dept salary reports =
    Tuple.make
      [ Value.name name; Value.name dept; Value.int salary; Value.int reports ]
  in
  let mary_rd = Conflict.index_exn c (t "Mary" "R&D" 40000 3) in
  let john_rd = Conflict.index_exn c (t "John" "R&D" 10000 2) in
  let mary_it = Conflict.index_exn c (t "Mary" "IT" 20000 1) in
  let john_pr = Conflict.index_exn c (t "John" "PR" 30000 4) in
  let g = Conflict.graph c in
  Alcotest.(check bool) "conflict 1 (fd1)" true (Undirected.mem_edge g mary_rd john_rd);
  Alcotest.(check bool) "conflict 2 (fd2)" true (Undirected.mem_edge g mary_rd mary_it);
  Alcotest.(check bool) "conflict 3 (fd2)" true (Undirected.mem_edge g john_rd john_pr);
  Alcotest.(check bool) "no other conflict" false (Undirected.mem_edge g mary_it john_pr)

let test_mgr_conflicting_fds () =
  let rel, fds, _ = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let t name dept salary reports =
    Tuple.make
      [ Value.name name; Value.name dept; Value.int salary; Value.int reports ]
  in
  let mary_rd = Conflict.index_exn c (t "Mary" "R&D" 40000 3) in
  let john_rd = Conflict.index_exn c (t "John" "R&D" 10000 2) in
  (* Mary-R&D vs John-R&D violate fd1 (Dept -> ...) only. *)
  check Alcotest.int "one witnessing fd" 1
    (List.length (Conflict.conflicting_fds c mary_rd john_rd));
  check Alcotest.int "non-adjacent: none" 0
    (List.length
       (Conflict.conflicting_fds c mary_rd (Conflict.index_exn c (t "John" "PR" 30000 4))))

let test_ladder_structure () =
  (* Figure 1: the conflict graph of r_4 is 4 disjoint edges. *)
  let rel, fds = Workload.Generator.ladder 4 in
  let c = Conflict.build fds rel in
  check Alcotest.int "8 tuples" 8 (Conflict.size c);
  check Alcotest.int "4 edges" 4 (Undirected.edge_count (Conflict.graph c));
  List.iter
    (fun comp -> check Alcotest.int "components are edges" 2 (Vset.cardinal comp))
    (Undirected.connected_components (Conflict.graph c))

let test_chain_structure () =
  (* Example 9's conflict graph is a path (Figure 4). *)
  let rel, fds = Workload.Generator.chain 5 in
  let c = Conflict.build fds rel in
  check Alcotest.int "5 tuples" 5 (Conflict.size c);
  check Alcotest.int "4 edges" 4 (Undirected.edge_count (Conflict.graph c));
  let degrees =
    List.sort compare
      (List.init 5 (fun v -> Undirected.degree (Conflict.graph c) v))
  in
  check Alcotest.(list int) "path degrees" [ 1; 1; 2; 2; 2 ] degrees

let test_consistent_instance () =
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel = Relation.of_rows schema [ [ Value.int 1; Value.int 1 ]; [ Value.int 2; Value.int 1 ] ] in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  Alcotest.(check bool) "consistent" true (Conflict.is_consistent c);
  check Alcotest.int "no edges" 0 (Undirected.edge_count (Conflict.graph c))

let test_vset_relation_roundtrip () =
  let rel, fds, _ = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let s = vs [ 0; 2 ] in
  let r = Conflict.relation_of_vset c s in
  check Testlib.vset "roundtrip" s (Conflict.vset_of_relation c r);
  Alcotest.(check bool) "foreign tuple rejected" true
    (try
       let other = Relation.of_tuples (Relation.schema rel)
         [ Tuple.make [ Value.name "X"; Value.name "Y"; Value.int 0; Value.int 0 ] ] in
       ignore (Conflict.vset_of_relation c other);
       false
     with Invalid_argument _ -> true)

let test_bad_fd_rejected () =
  let rel, _, _ = Testlib.mgr () in
  Alcotest.(check bool) "unknown attribute in FD" true
    (try
       ignore (Conflict.build [ Constraints.Fd.make [ "Phone" ] [ "Name" ] ] rel);
       false
     with Invalid_argument _ -> true)

let test_duplicates_no_conflict () =
  (* §3.2's duplicate phenomenon: tuples equal on the FD's attributes but
     different elsewhere are NOT conflicting. *)
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let rel =
    Relation.of_rows schema
      [
        [ Value.int 1; Value.int 1; Value.int 1 ];
        [ Value.int 1; Value.int 1; Value.int 2 ];
        [ Value.int 1; Value.int 2; Value.int 3 ];
      ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  check Alcotest.int "two edges (star around tc)" 2
    (Undirected.edge_count (Conflict.graph c))

let suite =
  [
    ("mgr: Example 1's three conflicts", `Quick, test_mgr_conflicts);
    ("mgr: witnessing FDs per edge", `Quick, test_mgr_conflicting_fds);
    ("ladder: Figure 1 structure", `Quick, test_ladder_structure);
    ("chain: Figure 4 path structure", `Quick, test_chain_structure);
    ("consistent instance: empty graph", `Quick, test_consistent_instance);
    ("vertex set <-> relation roundtrip", `Quick, test_vset_relation_roundtrip);
    ("ill-formed FDs rejected", `Quick, test_bad_fd_rejected);
    ("duplicates do not conflict (Example 8 shape)", `Quick, test_duplicates_no_conflict);
  ]
