(* Unit tests for the graph substrate: Vset, Undirected, Digraph, Mis,
   Hypergraph. *)

open Graphs

let check = Alcotest.check
let vset = Testlib.vset
let vs = Testlib.vs

(* --- Vset --------------------------------------------------------------- *)

let test_vset_of_range () =
  check vset "range 4" (vs [ 0; 1; 2; 3 ]) (Vset.of_range 4);
  check vset "range 0" Vset.empty (Vset.of_range 0);
  check Alcotest.string "pp" "{0, 2}" (Vset.to_string (vs [ 2; 0 ]))

let test_vset_hash_stable () =
  Alcotest.(check bool)
    "equal sets hash equal" true
    (Vset.hash (vs [ 3; 1; 2 ]) = Vset.hash (vs [ 1; 2; 3 ]))

(* --- Undirected --------------------------------------------------------- *)

let path4 () = Undirected.create 4 [ (0, 1); (1, 2); (2, 3) ]

let test_undirected_basics () =
  let g = path4 () in
  check Alcotest.int "size" 4 (Undirected.size g);
  check Alcotest.int "edges" 3 (Undirected.edge_count g);
  check vset "neighbors of 1" (vs [ 0; 2 ]) (Undirected.neighbors g 1);
  check vset "vicinity of 1" (vs [ 0; 1; 2 ]) (Undirected.vicinity g 1);
  Alcotest.(check bool) "mem edge" true (Undirected.mem_edge g 2 1);
  Alcotest.(check bool) "no edge" false (Undirected.mem_edge g 0 3);
  check Alcotest.int "degree" 1 (Undirected.degree g 0)

let test_undirected_dedup_and_errors () =
  let g = Undirected.create 3 [ (0, 1); (1, 0); (0, 1) ] in
  check Alcotest.int "duplicate edges collapse" 1 (Undirected.edge_count g);
  Alcotest.check_raises "self-loop" (Invalid_argument "Undirected.create: self-loop")
    (fun () -> ignore (Undirected.create 2 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Undirected: vertex 5 out of range [0,3)") (fun () ->
      ignore (Undirected.create 3 [ (0, 5) ]))

let test_undirected_independence () =
  let g = path4 () in
  Alcotest.(check bool) "independent" true (Undirected.is_independent g (vs [ 0; 2 ]));
  Alcotest.(check bool) "not independent" false
    (Undirected.is_independent g (vs [ 0; 1 ]));
  Alcotest.(check bool) "maximal" true
    (Undirected.is_maximal_independent g (vs [ 0; 2 ]));
  Alcotest.(check bool) "not maximal" false
    (Undirected.is_maximal_independent g (vs [ 0 ]));
  Alcotest.(check bool) "maximal {1,3}" true
    (Undirected.is_maximal_independent g (vs [ 1; 3 ]));
  Alcotest.(check bool) "empty set not maximal in nonempty graph" false
    (Undirected.is_maximal_independent g Vset.empty)

let test_undirected_components () =
  let g = Undirected.create 6 [ (0, 1); (1, 2); (4, 5) ] in
  Testlib.check_vsets "components"
    [ vs [ 0; 1; 2 ]; vs [ 3 ]; vs [ 4; 5 ] ]
    (Undirected.connected_components g);
  check vset "isolated" (vs [ 3 ]) (Undirected.isolated g)

let test_undirected_induced () =
  let g = path4 () in
  let sub, mapping = Undirected.induced g (vs [ 0; 1; 3 ]) in
  check Alcotest.int "induced size" 3 (Undirected.size sub);
  check Alcotest.int "induced edges" 1 (Undirected.edge_count sub);
  check Alcotest.(list int) "mapping" [ 0; 1; 3 ] (Array.to_list mapping)

let test_undirected_clique_union () =
  let g = Undirected.create 3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "triangle clique" true (Undirected.is_clique g (vs [ 0; 1; 2 ]));
  let h = Undirected.create 3 [ (0, 1) ] in
  Alcotest.(check bool) "not clique" false (Undirected.is_clique h (vs [ 0; 1; 2 ]));
  Alcotest.(check bool) "singleton clique" true (Undirected.is_clique h (vs [ 2 ]));
  let u = Undirected.union h (Undirected.create 3 [ (1, 2) ]) in
  check Alcotest.int "union edges" 2 (Undirected.edge_count u)

(* --- Digraph ------------------------------------------------------------ *)

let test_digraph_basics () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (0, 2) ] in
  check Alcotest.int "arcs" 3 (Digraph.arc_count g);
  check vset "succ 0" (vs [ 1; 2 ]) (Digraph.succ g 0);
  check vset "pred 2" (vs [ 0; 1 ]) (Digraph.pred g 2);
  Alcotest.(check bool) "mem" true (Digraph.mem_arc g 0 1);
  Alcotest.(check bool) "directed" false (Digraph.mem_arc g 1 0);
  let g' = Digraph.add_arc g 3 0 in
  Alcotest.(check bool) "functional add" false (Digraph.mem_arc g 3 0);
  Alcotest.(check bool) "added" true (Digraph.mem_arc g' 3 0)

let test_digraph_cycles () =
  let acyclic = Digraph.create 3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "dag" false (Digraph.has_cycle acyclic);
  let cyclic = Digraph.create 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "cycle" true (Digraph.has_cycle cyclic);
  let two_cycle = Digraph.create 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "2-cycle" true (Digraph.has_cycle two_cycle)

let test_digraph_topological () =
  let g = Digraph.create 4 [ (3, 1); (1, 0); (2, 0) ] in
  (match Digraph.topological_order g with
  | None -> Alcotest.fail "expected an order"
  | Some order ->
    let pos v =
      let rec find i = function
        | [] -> Alcotest.fail "vertex missing from order"
        | x :: rest -> if x = v then i else find (i + 1) rest
      in
      find 0 order
    in
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "order respects arcs" true (pos u < pos v))
      (Digraph.arcs g));
  let cyclic = Digraph.create 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "no order on cycle" true
    (Digraph.topological_order cyclic = None)

let test_digraph_closure_reachable () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (2, 3) ] in
  check vset "reachable from 0" (vs [ 1; 2; 3 ]) (Digraph.reachable g 0);
  check vset "reachable from 3" Vset.empty (Digraph.reachable g 3);
  let tc = Digraph.transitive_closure g in
  Alcotest.(check bool) "closure arc" true (Digraph.mem_arc tc 0 3);
  Alcotest.(check bool) "no inverse" false (Digraph.mem_arc tc 3 0);
  check Alcotest.int "closure arc count" 6 (Digraph.arc_count tc)

let test_digraph_restrict () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (2, 3) ] in
  let r = Digraph.restrict g (vs [ 0; 1; 3 ]) in
  check Alcotest.int "restricted arcs" 1 (Digraph.arc_count r);
  Alcotest.(check bool) "kept" true (Digraph.mem_arc r 0 1)

(* --- Mis ---------------------------------------------------------------- *)

let test_mis_path () =
  let g = path4 () in
  Testlib.check_vsets "path4 MIS"
    [ vs [ 0; 2 ]; vs [ 0; 3 ]; vs [ 1; 3 ] ]
    (Mis.enumerate g)

let test_mis_empty_and_isolated () =
  Testlib.check_vsets "empty graph" [ Vset.empty ] (Mis.enumerate (Undirected.create 0 []));
  Testlib.check_vsets "3 isolated vertices"
    [ vs [ 0; 1; 2 ] ]
    (Mis.enumerate (Undirected.create 3 []))

let test_mis_ladder_count () =
  (* n disjoint edges: 2^n maximal independent sets (Example 4). *)
  let ladder n =
    Undirected.create (2 * n) (List.init n (fun i -> (2 * i, (2 * i) + 1)))
  in
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "2^%d repairs" n)
        (1 lsl n)
        (Mis.count (ladder n)))
    [ 0; 1; 2; 3; 4; 5; 8 ]

let test_mis_triangle () =
  let g = Undirected.create 3 [ (0, 1); (1, 2); (0, 2) ] in
  Testlib.check_vsets "triangle"
    [ vs [ 0 ]; vs [ 1 ]; vs [ 2 ] ]
    (Mis.enumerate g)

let test_mis_all_results_are_maximal () =
  let rng = Workload.Prng.create 42 in
  for _ = 1 to 20 do
    let n = 2 + Workload.Prng.int rng 8 in
    let edges =
      List.concat_map
        (fun u ->
          List.filter_map
            (fun v ->
              if v > u && Workload.Prng.int rng 3 = 0 then Some (u, v) else None)
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    let g = Undirected.create n edges in
    let sets = Mis.enumerate g in
    Alcotest.(check bool) "at least one MIS" true (sets <> []);
    List.iter
      (fun s ->
        Alcotest.(check bool) "maximal independent" true
          (Undirected.is_maximal_independent g s))
      sets;
    (* no duplicates *)
    check Alcotest.int "distinct"
      (List.length sets)
      (List.length (List.sort_uniq Vset.compare sets))
  done

let test_mis_first_exists_forall () =
  let g = path4 () in
  Alcotest.(check bool) "first maximal" true
    (Undirected.is_maximal_independent g (Mis.first g));
  Alcotest.(check bool) "exists with 0" true
    (Mis.exists (fun s -> Vset.mem 0 s) g);
  Alcotest.(check bool) "not all with 0" false
    (Mis.for_all (fun s -> Vset.mem 0 s) g);
  Alcotest.(check bool) "all size 2" true
    (Mis.for_all (fun s -> Vset.cardinal s = 2) g)

(* --- Hypergraph --------------------------------------------------------- *)

let test_hypergraph_build () =
  let h = Hypergraph.create 4 [ vs [ 0; 1; 2 ]; vs [ 0; 1 ]; vs [ 2; 3 ] ] in
  (* {0,1,2} is a superset of {0,1} and gets dropped *)
  check Alcotest.int "minimal edges" 2 (List.length (Hypergraph.edges h));
  Alcotest.check_raises "empty edge"
    (Invalid_argument "Hypergraph.create: empty edge") (fun () ->
      ignore (Hypergraph.create 2 [ Vset.empty ]))

let test_hypergraph_independence () =
  let h = Hypergraph.create 4 [ vs [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "partial edge ok" true
    (Hypergraph.is_independent h (vs [ 0; 1; 3 ]));
  Alcotest.(check bool) "full edge bad" false
    (Hypergraph.is_independent h (vs [ 0; 1; 2; 3 ]));
  Alcotest.(check bool) "maximal" true
    (Hypergraph.is_maximal_independent h (vs [ 0; 1; 3 ]))

let test_hypergraph_enumerate_triangle_edge () =
  let h = Hypergraph.create 3 [ vs [ 0; 1; 2 ] ] in
  Testlib.check_vsets "drop one vertex each"
    [ vs [ 0; 1 ]; vs [ 0; 2 ]; vs [ 1; 2 ] ]
    (Hypergraph.enumerate h)

let test_hypergraph_singleton_edge () =
  (* A 1-element hyperedge bans its vertex from every repair. *)
  let h = Hypergraph.create 3 [ vs [ 0 ]; vs [ 1; 2 ] ] in
  Testlib.check_vsets "vertex 0 banned"
    [ vs [ 1 ]; vs [ 2 ] ]
    (Hypergraph.enumerate h)

let test_hypergraph_matches_graph () =
  (* On 2-element edges, hypergraph MIS = graph MIS. *)
  let rng = Workload.Prng.create 7 in
  for _ = 1 to 10 do
    let n = 2 + Workload.Prng.int rng 6 in
    let edges =
      List.concat_map
        (fun u ->
          List.filter_map
            (fun v ->
              if v > u && Workload.Prng.int rng 2 = 0 then Some (u, v) else None)
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    let g = Undirected.create n edges in
    Testlib.check_vsets "hypergraph = graph"
      (Mis.enumerate g)
      (Hypergraph.enumerate (Hypergraph.of_graph g))
  done

let suite =
  [
    ("vset: of_range and pp", `Quick, test_vset_of_range);
    ("vset: hash stability", `Quick, test_vset_hash_stable);
    ("undirected: basics", `Quick, test_undirected_basics);
    ("undirected: dedup and errors", `Quick, test_undirected_dedup_and_errors);
    ("undirected: independence", `Quick, test_undirected_independence);
    ("undirected: components", `Quick, test_undirected_components);
    ("undirected: induced subgraph", `Quick, test_undirected_induced);
    ("undirected: cliques and union", `Quick, test_undirected_clique_union);
    ("digraph: basics", `Quick, test_digraph_basics);
    ("digraph: cycle detection", `Quick, test_digraph_cycles);
    ("digraph: topological order", `Quick, test_digraph_topological);
    ("digraph: closure and reachability", `Quick, test_digraph_closure_reachable);
    ("digraph: restrict", `Quick, test_digraph_restrict);
    ("mis: path", `Quick, test_mis_path);
    ("mis: empty and isolated", `Quick, test_mis_empty_and_isolated);
    ("mis: ladder counts 2^n", `Quick, test_mis_ladder_count);
    ("mis: triangle", `Quick, test_mis_triangle);
    ("mis: random graphs all maximal", `Quick, test_mis_all_results_are_maximal);
    ("mis: first/exists/for_all", `Quick, test_mis_first_exists_forall);
    ("hypergraph: build and minimality", `Quick, test_hypergraph_build);
    ("hypergraph: independence", `Quick, test_hypergraph_independence);
    ("hypergraph: 3-edge enumeration", `Quick, test_hypergraph_enumerate_triangle_edge);
    ("hypergraph: singleton edge", `Quick, test_hypergraph_singleton_edge);
    ("hypergraph: agrees with graph MIS", `Quick, test_hypergraph_matches_graph);
  ]
