(* Unit tests for priorities (paper, Definition 2). *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority

let check = Alcotest.check
let vs = Testlib.vs

(* A triangle of mutually conflicting tuples (key violation, Example 7). *)
let triangle () =
  let c, _ = Testlib.example7 () in
  c

let test_validation_only_conflicting () =
  let rel, fds = Workload.Generator.ladder 2 in
  let c = Conflict.build fds rel in
  (* vertices 0-1 and 2-3 are the two conflict edges *)
  (match Priority.of_arcs c [ (0, 2) ] with
  | Error (Priority.Not_conflicting _) -> ()
  | Error Priority.Cyclic -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "non-conflict arc accepted");
  Alcotest.(check bool) "conflict arc fine" true
    (Result.is_ok (Priority.of_arcs c [ (0, 1); (3, 2) ]))

let test_validation_acyclic () =
  let c = triangle () in
  (match Priority.of_arcs c [ (0, 1); (1, 2); (2, 0) ] with
  | Error Priority.Cyclic -> ()
  | _ -> Alcotest.fail "cycle accepted");
  (* transitivity is NOT assumed: 0>1, 1>2 without 0>2 is fine (the §5
     discussion of non-transitive priorities) *)
  Alcotest.(check bool) "non-transitive chain ok" true
    (Result.is_ok (Priority.of_arcs c [ (0, 1); (1, 2) ]))

let test_dominates_and_winnow () =
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 2); (0, 1) ] in
  Alcotest.(check bool) "0 > 2" true (Priority.dominates p 0 2);
  Alcotest.(check bool) "not 2 > 0" false (Priority.dominates p 2 0);
  check Testlib.vset "dominators of 2" (vs [ 0 ]) (Priority.dominators p 2);
  check Testlib.vset "dominated by 0" (vs [ 1; 2 ]) (Priority.dominated p 0);
  check Testlib.vset "winnow keeps undominated" (vs [ 0 ])
    (Priority.winnow p (vs [ 0; 1; 2 ]));
  check Testlib.vset "winnow of subset" (vs [ 1; 2 ])
    (Priority.winnow p (vs [ 1; 2 ]))

let test_winnow_nonempty () =
  (* Acyclicity => winnow of a non-empty set is non-empty. *)
  let rng = Workload.Prng.create 11 in
  for _ = 1 to 25 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:12 ~key_values:4 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.7 c in
    let all = Vset.of_range (Conflict.size c) in
    if not (Vset.is_empty all) then
      Alcotest.(check bool) "nonempty winnow" false
        (Vset.is_empty (Priority.winnow p all))
  done

let test_totality () =
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 2); (0, 1) ] in
  Alcotest.(check bool) "partial" false (Priority.is_total c p);
  check Alcotest.int "one unoriented edge" 1 (List.length (Priority.unoriented c p));
  let total = Priority.of_arcs_exn c [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "total" true (Priority.is_total c total);
  Alcotest.(check bool) "empty not total here" false
    (Priority.is_total c (Priority.empty c))

let test_extend () =
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 1) ] in
  (match Priority.extend c p [ (1, 2) ] with
  | Ok p' ->
    Alcotest.(check bool) "extension" true (Priority.is_extension_of p' p);
    Alcotest.(check bool) "not the other way" false (Priority.is_extension_of p p')
  | Error _ -> Alcotest.fail "valid extension rejected");
  (match Priority.extend c p [ (1, 0) ] with
  | Error Priority.Cyclic -> ()
  | _ -> Alcotest.fail "2-cycle extension accepted")

let test_one_step_extensions () =
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 1); (1, 2) ] in
  (* remaining edge {0,2}: orientation (2,0) creates the cycle 0>1>2>0;
     only (0,2) is acyclic. *)
  let exts = Priority.one_step_extensions c p in
  check Alcotest.int "one acyclic completion" 1 (List.length exts);
  List.iter
    (fun p' -> Alcotest.(check bool) "is extension" true (Priority.is_extension_of p' p))
    exts;
  (* empty priority on the triangle: 3 edges x 2 directions, all acyclic *)
  check Alcotest.int "six one-step extensions" 6
    (List.length (Priority.one_step_extensions c (Priority.empty c)))

let test_totalize () =
  let rng = Workload.Prng.create 5 in
  for _ = 1 to 25 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:10 ~key_values:3 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.4 c in
    let total = Priority.totalize c p in
    Alcotest.(check bool) "total" true (Priority.is_total c total);
    Alcotest.(check bool) "extends" true (Priority.is_extension_of total p)
  done;
  (* deterministic *)
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 1) ] in
  Alcotest.(check bool) "deterministic" true
    (Priority.arcs (Priority.totalize c p) = Priority.arcs (Priority.totalize c p))

let test_of_tuple_pairs () =
  let rel, fds, prov = Testlib.mgr () in
  ignore prov;
  let c = Conflict.build fds rel in
  let t name dept salary reports =
    Relational.Tuple.make
      [
        Relational.Value.name name; Relational.Value.name dept;
        Relational.Value.int salary; Relational.Value.int reports;
      ]
  in
  match
    Priority.of_tuple_pairs c
      [ (t "Mary" "R&D" 40000 3, t "Mary" "IT" 20000 1) ]
  with
  | Ok p -> check Alcotest.int "one arc" 1 (Priority.arc_count p)
  | Error e -> Alcotest.fail (Priority.error_to_string e)

let test_restrict () =
  let c = triangle () in
  let p = Priority.of_arcs_exn c [ (0, 1); (1, 2) ] in
  let p' = Priority.restrict p (vs [ 0; 1 ]) in
  check Alcotest.int "restricted" 1 (Priority.arc_count p')

let suite =
  [
    ("arcs must join conflicting tuples", `Quick, test_validation_only_conflicting);
    ("acyclicity enforced", `Quick, test_validation_acyclic);
    ("domination and winnow", `Quick, test_dominates_and_winnow);
    ("winnow never empties a non-empty set", `Quick, test_winnow_nonempty);
    ("totality", `Quick, test_totality);
    ("extension", `Quick, test_extend);
    ("one-step extensions", `Quick, test_one_step_extensions);
    ("totalize: total, extending, deterministic", `Quick, test_totalize);
    ("priorities from tuple pairs", `Quick, test_of_tuple_pairs);
    ("restriction", `Quick, test_restrict);
  ]
