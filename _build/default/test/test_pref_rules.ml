(* Tests for preference rules and the cleaning pipeline. *)

open Relational
module Conflict = Core.Conflict
module Priority = Core.Priority
module Pref_rules = Core.Pref_rules
module Clean = Core.Clean

let check = Alcotest.check

let schema () =
  Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ]

let key_pair b1 b2 =
  (* two tuples conflicting on the key A *)
  let rel =
    Relation.of_rows (schema ())
      [ [ Value.int 1; Value.int b1 ]; [ Value.int 1; Value.int b2 ] ]
  in
  Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel

let test_by_score () =
  let c = key_pair 10 20 in
  let score t = Option.get (Value.as_int (Tuple.get t 1)) in
  let p = Pref_rules.apply_exn c (Pref_rules.by_score score) in
  check Alcotest.int "one arc" 1 (Priority.arc_count p);
  (* the B=20 tuple dominates *)
  let hi = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 20 ]) in
  let lo = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 10 ]) in
  Alcotest.(check bool) "larger wins" true (Priority.dominates p hi lo)

let test_by_score_ties_unoriented () =
  let c = key_pair 10 20 in
  let p = Pref_rules.apply_exn c (Pref_rules.by_score (fun _ -> 0)) in
  check Alcotest.int "tie leaves edge unoriented" 0 (Priority.arc_count p)

let test_timestamps () =
  let c = key_pair 1 2 in
  let t1 = Tuple.make [ Value.int 1; Value.int 1 ] in
  let t2 = Tuple.make [ Value.int 1; Value.int 2 ] in
  let prov =
    Provenance.of_list
      [
        (t1, Provenance.info ~timestamp:100 ());
        (t2, Provenance.info ~timestamp:200 ());
      ]
  in
  let newest = Pref_rules.apply_exn c (Pref_rules.newest_first prov) in
  Alcotest.(check bool) "newest wins" true
    (Priority.dominates newest (Conflict.index_exn c t2) (Conflict.index_exn c t1));
  let oldest = Pref_rules.apply_exn c (Pref_rules.oldest_first prov) in
  Alcotest.(check bool) "oldest wins" true
    (Priority.dominates oldest (Conflict.index_exn c t1) (Conflict.index_exn c t2));
  (* missing timestamps: incomparable *)
  let partial = Provenance.of_list [ (t1, Provenance.info ~timestamp:100 ()) ] in
  let p = Pref_rules.apply_exn c (Pref_rules.newest_first partial) in
  check Alcotest.int "no orientation" 0 (Priority.arc_count p)

let test_source_reliability_transitive () =
  let c = key_pair 1 2 in
  let t1 = Tuple.make [ Value.int 1; Value.int 1 ] in
  let t2 = Tuple.make [ Value.int 1; Value.int 2 ] in
  let prov =
    Provenance.of_list
      [
        (t1, Provenance.info ~source:"a" ());
        (t2, Provenance.info ~source:"c" ());
      ]
  in
  (* a > b > c: transitively a > c *)
  let rule =
    Result.get_ok
      (Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("a", "b"); ("b", "c") ])
  in
  let p = Pref_rules.apply_exn c rule in
  Alcotest.(check bool) "transitive closure" true
    (Priority.dominates p (Conflict.index_exn c t1) (Conflict.index_exn c t2))

let test_source_reliability_cycle () =
  let prov = Provenance.empty in
  Alcotest.(check bool) "cyclic order rejected" true
    (Result.is_error
       (Pref_rules.source_reliability prov
          ~more_reliable_than:[ ("a", "b"); ("b", "a") ]))

let test_on_attribute () =
  let c = key_pair 10 20 in
  let rule =
    Result.get_ok (Pref_rules.on_attribute (schema ()) "B" ~prefer:`Smaller)
  in
  let p = Pref_rules.apply_exn c rule in
  let lo = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 10 ]) in
  let hi = Conflict.index_exn c (Tuple.make [ Value.int 1; Value.int 20 ]) in
  Alcotest.(check bool) "smaller wins" true (Priority.dominates p lo hi);
  Alcotest.(check bool) "unknown attr" true
    (Result.is_error (Pref_rules.on_attribute (schema ()) "Z" ~prefer:`Larger));
  let name_schema = Schema.make "R" [ ("A", Schema.TName) ] in
  Alcotest.(check bool) "name attr rejected" true
    (Result.is_error (Pref_rules.on_attribute name_schema "A" ~prefer:`Larger))

let test_lexicographic () =
  let c = key_pair 10 20 in
  let t_lo = Tuple.make [ Value.int 1; Value.int 10 ] in
  let t_hi = Tuple.make [ Value.int 1; Value.int 20 ] in
  let silent _ _ = false in
  let prefer_lo x _ = Tuple.equal x t_lo in
  let prefer_hi x _ = Tuple.equal x t_hi in
  (* the first opinionated rule decides; later rules cannot override *)
  let rule = Pref_rules.lexicographic [ silent; prefer_hi; prefer_lo ] in
  let p = Pref_rules.apply_exn c rule in
  Alcotest.(check bool) "second rule decides" true
    (Priority.dominates p (Conflict.index_exn c t_hi) (Conflict.index_exn c t_lo))

let test_cyclic_rule_detected () =
  (* a rule producing a priority cycle across a conflict triangle *)
  let rel =
    Relation.of_rows (schema ())
      [ [ Value.int 1; Value.int 0 ]; [ Value.int 1; Value.int 1 ]; [ Value.int 1; Value.int 2 ] ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  let rotation x y =
    (* 0 beats 1 beats 2 beats 0 *)
    let b t = Option.get (Value.as_int (Tuple.get t 1)) in
    (b x + 1) mod 3 = b y
  in
  match Pref_rules.apply c rotation with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cyclic rule accepted"

(* --- cleaning pipeline ----------------------------------------------------- *)

let test_clean_pipeline () =
  let rel, fds, prov = Testlib.mgr () in
  let rule =
    Result.get_ok
      (Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  match Clean.run fds rel rule with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check Alcotest.int "3 conflicts" 3 report.Clean.conflicts;
    check Alcotest.int "2 oriented" 2 report.Clean.oriented;
    Alcotest.(check bool) "partial: nondeterministic warning" false
      report.Clean.deterministic;
    check Alcotest.int "2 tuples kept" 2 (Relation.cardinality report.Clean.cleaned);
    check Alcotest.int "2 removed" 2 (List.length report.Clean.removed);
    (* the cleaned instance is one of the two common repairs *)
    let c = Conflict.build fds rel in
    let p = Pref_rules.apply_exn c rule in
    Alcotest.(check bool) "cleaned is a common repair" true
      (Core.Winnow.is_result c p (Conflict.vset_of_relation c report.Clean.cleaned))

let test_clean_total () =
  let c = key_pair 10 20 in
  let p = Priority.totalize c (Priority.empty c) in
  let report = Clean.run_with_priority c p in
  Alcotest.(check bool) "deterministic" true report.Clean.deterministic;
  check Alcotest.int "one tuple" 1 (Relation.cardinality report.Clean.cleaned)

let suite =
  [
    ("by_score", `Quick, test_by_score);
    ("score ties leave edges unoriented", `Quick, test_by_score_ties_unoriented);
    ("timestamp rules", `Quick, test_timestamps);
    ("source reliability is transitive", `Quick, test_source_reliability_transitive);
    ("cyclic source order rejected", `Quick, test_source_reliability_cycle);
    ("attribute preference", `Quick, test_on_attribute);
    ("lexicographic combination", `Quick, test_lexicographic);
    ("cyclic rules rejected at apply", `Quick, test_cyclic_rule_detected);
    ("cleaning pipeline on Mgr", `Quick, test_clean_pipeline);
    ("cleaning with a total priority", `Quick, test_clean_total);
  ]
