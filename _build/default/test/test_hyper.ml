(* Tests for the conflict-hypergraph extension (§6, after [6]). *)

open Relational
open Graphs
module Denial = Constraints.Denial
module Hyper = Core.Hyper
module Cqa = Core.Cqa

let check = Alcotest.check
let parse = Query.Parser.parse_exn

let certainty =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Cqa.certainty_to_string c))
    (fun a b -> a = b)

let schema () =
  Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ]

let atom l op r = { Denial.left = l; op; right = r }

(* "no three tuples share the same A": a genuinely ternary constraint *)
let no_triple () =
  Denial.make ~label:"no-triple" ~nvars:3
    [
      atom (Denial.Attr (0, "A")) Denial.Eq (Denial.Attr (1, "A"));
      atom (Denial.Attr (1, "A")) Denial.Eq (Denial.Attr (2, "A"));
      atom (Denial.Attr (0, "B")) Denial.Lt (Denial.Attr (1, "B"));
      atom (Denial.Attr (1, "B")) Denial.Lt (Denial.Attr (2, "B"));
    ]

let test_hyper_build () =
  let rel =
    Relation.of_rows (schema ())
      [
        [ Value.int 1; Value.int 0 ]; [ Value.int 1; Value.int 1 ];
        [ Value.int 1; Value.int 2 ]; [ Value.int 2; Value.int 0 ];
      ]
  in
  let h = Hyper.build [ no_triple () ] rel in
  check Alcotest.int "4 vertices" 4 (Hyper.size h);
  check Alcotest.int "one 3-edge" 1 (List.length (Hypergraph.edges (Hyper.hypergraph h)));
  Alcotest.(check bool) "inconsistent" false (Hyper.is_consistent h)

let test_hyper_repairs_drop_one_of_three () =
  let rel =
    Relation.of_rows (schema ())
      [
        [ Value.int 1; Value.int 0 ]; [ Value.int 1; Value.int 1 ];
        [ Value.int 1; Value.int 2 ]; [ Value.int 2; Value.int 0 ];
      ]
  in
  let h = Hyper.build [ no_triple () ] rel in
  let repairs = Hyper.repairs h in
  check Alcotest.int "three repairs" 3 (List.length repairs);
  List.iter
    (fun s ->
      check Alcotest.int "each keeps 3 of 4 tuples" 3 (Vset.cardinal s);
      Alcotest.(check bool) "is repair" true (Hyper.is_repair h s))
    repairs

let test_hyper_of_fds_matches_graph () =
  (* FDs through the hypergraph encoding give the same repairs as the
     conflict-graph route. *)
  let rng = Workload.Prng.create 57 in
  for _ = 1 to 10 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:8 ~a_values:3 ~c_values:3
        ~v_values:2
    in
    let h = Hyper.of_fds fds rel in
    let c = Core.Conflict.build fds rel in
    Testlib.check_vsets "same repairs" (Core.Repair.all c) (Hyper.repairs h)
  done

let test_hyper_ground_cqa_matches_enumeration () =
  let rel =
    Relation.of_rows (schema ())
      [
        [ Value.int 1; Value.int 0 ]; [ Value.int 1; Value.int 1 ];
        [ Value.int 1; Value.int 2 ]; [ Value.int 2; Value.int 0 ];
      ]
  in
  let h = Hyper.build [ no_triple () ] rel in
  let naive q =
    let truths =
      List.map (fun s -> Query.Eval.holds_relation (Hyper.to_relation h s) q)
        (Hyper.repairs h)
    in
    if List.for_all Fun.id truths then Cqa.Certainly_true
    else if List.for_all not truths then Cqa.Certainly_false
    else Cqa.Ambiguous
  in
  List.iter
    (fun qs ->
      let q = parse qs in
      check certainty qs (naive q) (Result.get_ok (Hyper.ground_certainty h q)))
    [
      "R(2, 0)";
      "R(1, 0)";
      "R(1, 0) and R(1, 1) and R(1, 2)";
      "R(1, 0) or R(1, 1)";
      "R(1, 0) or R(1, 1) or R(1, 2)";
      "not R(1, 0)";
      "not (R(1, 0) and R(1, 1))";
      "R(9, 9)";
    ]

let test_hyper_singleton_constraint () =
  (* one-tuple denial constraint: the offending tuple is in no repair *)
  let cap =
    Denial.make ~label:"cap" ~nvars:1
      [ atom (Denial.Attr (0, "B")) Denial.Gt (Denial.Const (Value.int 10)) ]
  in
  let rel =
    Relation.of_rows (schema ())
      [ [ Value.int 1; Value.int 5 ]; [ Value.int 2; Value.int 50 ] ]
  in
  let h = Hyper.build [ cap ] rel in
  (match Hyper.repairs h with
  | [ s ] -> check Alcotest.int "one tuple survives" 1 (Vset.cardinal s)
  | l -> Alcotest.failf "expected 1 repair, got %d" (List.length l));
  check certainty "banned fact certainly false" Cqa.Certainly_false
    (Result.get_ok (Hyper.ground_certainty h (parse "R(2, 50)")));
  check certainty "clean fact certainly true" Cqa.Certainly_true
    (Result.get_ok (Hyper.ground_certainty h (parse "R(1, 5)")))

let test_hyper_random_cqa_cross_validation () =
  let rng = Workload.Prng.create 59 in
  let dc = no_triple () in
  for _ = 1 to 15 do
    let rows =
      List.init 7 (fun _ ->
          [ Value.int (Workload.Prng.int rng 2); Value.int (Workload.Prng.int rng 4) ])
    in
    let rel = Relation.of_rows (schema ()) rows in
    let h = Hyper.build [ dc ] rel in
    let repairs = Hyper.repairs h in
    let q =
      parse
        (Printf.sprintf "R(%d, %d) and not R(%d, %d)" (Workload.Prng.int rng 2)
           (Workload.Prng.int rng 4) (Workload.Prng.int rng 2)
           (Workload.Prng.int rng 4))
    in
    let truths =
      List.map (fun s -> Query.Eval.holds_relation (Hyper.to_relation h s) q) repairs
    in
    let naive =
      if List.for_all Fun.id truths then Cqa.Certainly_true
      else if List.for_all not truths then Cqa.Certainly_false
      else Cqa.Ambiguous
    in
    check certainty "hyper CQA cross-validation" naive
      (Result.get_ok (Hyper.ground_certainty h q))
  done

let suite =
  [
    ("hypergraph construction from denial constraints", `Quick, test_hyper_build);
    ("ternary conflicts: drop one of three", `Quick, test_hyper_repairs_drop_one_of_three);
    ("FD encoding matches conflict graph", `Quick, test_hyper_of_fds_matches_graph);
    ("ground CQA over hyperedges = enumeration", `Quick, test_hyper_ground_cqa_matches_enumeration);
    ("single-tuple constraints", `Quick, test_hyper_singleton_constraint);
    ("random cross-validation of hyper CQA", `Quick, test_hyper_random_cqa_cross_validation);
  ]
