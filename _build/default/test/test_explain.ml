(* Tests for answer explanations. *)

open Relational
module Explain = Core.Explain
module Family = Core.Family
module Cqa = Core.Cqa
module Conflict = Core.Conflict

let check = Alcotest.check
let parse = Query.Parser.parse_exn

let mgr_with_priority () =
  let rel, fds, prov = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  (c, Core.Pref_rules.apply_exn c rule)

let test_query_witnesses () =
  let c, p = mgr_with_priority () in
  (* Mary-IT is ambiguous under C: one witness each way *)
  let v = Explain.query Family.C c p (parse "Mgr('Mary', 'IT', 20000, 1)") in
  Alcotest.(check bool) "ambiguous" true (v.Explain.certainty = Cqa.Ambiguous);
  Alcotest.(check bool) "has supporting witness" true (v.Explain.supporting <> None);
  Alcotest.(check bool) "has refuting witness" true (v.Explain.refuting <> None);
  (* a certainly-true query has no refuting witness *)
  let v2 =
    Explain.query Family.C c p
      (parse "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)")
  in
  Alcotest.(check bool) "certain" true (v2.Explain.certainty = Cqa.Certainly_true);
  Alcotest.(check bool) "no refuter" true (v2.Explain.refuting = None)

let test_witnesses_are_preferred_repairs () =
  let c, p = mgr_with_priority () in
  let v = Explain.query Family.G c p (parse "Mgr('John', 'PR', 30000, 4)") in
  List.iter
    (fun w ->
      match w with
      | Some s ->
        Alcotest.(check bool) "witness is preferred" true (Family.check Family.G c p s)
      | None -> ())
    [ v.Explain.supporting; v.Explain.refuting ]

let test_verdict_matches_certainty () =
  let c, p = mgr_with_priority () in
  List.iter
    (fun qs ->
      let q = parse qs in
      List.iter
        (fun family ->
          let v = Explain.query family c p q in
          check
            (Alcotest.testable
               (fun ppf x -> Format.pp_print_string ppf (Cqa.certainty_to_string x))
               ( = ))
            (qs ^ " / " ^ Family.name_to_string family)
            (Cqa.certainty family c p q) v.Explain.certainty)
        Family.all_names)
    [
      "Mgr('Mary', 'IT', 20000, 1)";
      "exists d, s, r. Mgr('Mary', d, s, r)";
      "false";
    ]

let test_tuple_status () =
  let c, p = mgr_with_priority () in
  let t name dept salary reports =
    Tuple.make
      [ Value.name name; Value.name dept; Value.int salary; Value.int reports ]
  in
  (* Mary-R&D: conflicts with John-R&D and Mary-IT, dominates Mary-IT *)
  let st = Explain.tuple_status Family.C c p (t "Mary" "R&D" 40000 3) in
  check Alcotest.int "two conflicts" 2 (List.length st.Explain.conflicts_with);
  check Alcotest.int "dominates one" 1 (List.length st.Explain.dominates);
  check Alcotest.int "dominated by none" 0 (List.length st.Explain.dominated_by);
  Alcotest.(check bool) "disputed" true
    (st.Explain.in_some && not st.Explain.in_all);
  (* Mary-IT is dominated but still appears in r2 *)
  let st2 = Explain.tuple_status Family.C c p (t "Mary" "IT" 20000 1) in
  check Alcotest.int "dominated by Mary-R&D" 1 (List.length st2.Explain.dominated_by);
  Alcotest.(check bool) "still in some" true st2.Explain.in_some;
  Alcotest.(check bool) "unknown tuple raises" true
    (try
       ignore (Explain.tuple_status Family.C c p (t "Zoe" "HR" 1 1));
       false
     with Invalid_argument _ -> true)

let test_tuple_status_consistent_tuple () =
  (* a conflict-free tuple is in every repair *)
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel =
    Relation.of_rows schema
      [ [ Value.int 1; Value.int 1 ]; [ Value.int 2; Value.int 1 ];
        [ Value.int 2; Value.int 2 ] ]
  in
  let c = Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  let st =
    Explain.tuple_status Family.Rep c (Core.Priority.empty c)
      (Tuple.make [ Value.int 1; Value.int 1 ])
  in
  Alcotest.(check bool) "in all" true st.Explain.in_all;
  check Alcotest.int "no conflicts" 0 (List.length st.Explain.conflicts_with)

let test_pp_smoke () =
  let c, p = mgr_with_priority () in
  let v = Explain.query Family.C c p (parse "Mgr('Mary', 'IT', 20000, 1)") in
  let rendered = Format.asprintf "%a" (Explain.pp_verdict c) v in
  Alcotest.(check bool) "mentions ambiguity" true
    (String.length rendered > 10);
  let st =
    Explain.tuple_status Family.C c p
      (Tuple.make [ Value.name "Mary"; Value.name "IT"; Value.int 20000; Value.int 1 ])
  in
  Alcotest.(check bool) "status renders" true
    (String.length (Format.asprintf "%a" Explain.pp_tuple_status st) > 10)

let suite =
  [
    ("query witnesses", `Quick, test_query_witnesses);
    ("witnesses are preferred repairs", `Quick, test_witnesses_are_preferred_repairs);
    ("verdict matches certainty", `Quick, test_verdict_matches_certainty);
    ("tuple status on the Mgr instance", `Quick, test_tuple_status);
    ("conflict-free tuples are certain", `Quick, test_tuple_status_consistent_tuple);
    ("printers render", `Quick, test_pp_smoke);
  ]
