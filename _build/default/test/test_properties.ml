(* Tests for the axioms P1-P4 (§1, §3.4, §3.5): which families satisfy
   which axioms, on the paper's instances and on random ones. *)

module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family
module Properties = Core.Properties

let check = Alcotest.check

let random_case rng =
  let rel, fds =
    Workload.Generator.random_two_fd_instance rng ~n:8 ~a_values:3 ~c_values:3
      ~v_values:2
  in
  let c = Conflict.build fds rel in
  let p = Workload.Generator.random_priority rng ~density:0.4 c in
  (c, p)

let test_p1_all_families () =
  let rng = Workload.Prng.create 301 in
  for _ = 1 to 20 do
    let c, p = random_case rng in
    List.iter
      (fun f ->
        Alcotest.(check bool)
          (Family.name_to_string f ^ " non-empty")
          true
          (Properties.p1_nonempty (Properties.of_name f) c p))
      Family.all_names
  done

let test_p2_monotone_families () =
  (* L, S, G are monotone step-wise; C is monotone as well (narrowing the
     winnow choices only removes runs). *)
  let rng = Workload.Prng.create 303 in
  for _ = 1 to 12 do
    let c, p = random_case rng in
    List.iter
      (fun f ->
        Alcotest.(check bool)
          (Family.name_to_string f ^ " monotone")
          true
          (Properties.p2_monotone (Properties.of_name f) c p))
      Family.all_names
  done

let test_p3_all_families () =
  let rng = Workload.Prng.create 305 in
  for _ = 1 to 12 do
    let c, _ = random_case rng in
    List.iter
      (fun f ->
        Alcotest.(check bool)
          (Family.name_to_string f ^ " no discrimination")
          true
          (Properties.p3_no_discrimination (Properties.of_name f) c))
      Family.all_names
  done

let test_p4_g_and_c () =
  (* Prop. 4 / Prop. 6: G and C are categorical under total priorities. *)
  let rng = Workload.Prng.create 307 in
  for _ = 1 to 12 do
    let c, p = random_case rng in
    List.iter
      (fun f ->
        Alcotest.(check bool)
          (Family.name_to_string f ^ " categorical")
          true
          (Properties.p4_categorical (Properties.of_name f) c p))
      [ Family.G; Family.C ]
  done

let test_p4_fails_for_l () =
  (* Example 8 witnesses the failure of P4 for L-Rep. *)
  let c, p = Testlib.example8 () in
  Alcotest.(check bool) "L-Rep not categorical on Example 8" false
    (Properties.p4_categorical (Properties.of_name Family.L) c p)

let test_p4_s_no_counterexample_found () =
  (* The paper claims S fails P4 (Example 9), but under the formal
     definitions S-Rep = {Algorithm 1's result} for every total priority
     (see EXPERIMENTS.md for the argument); a random search agrees. *)
  let rng = Workload.Prng.create 309 in
  for _ = 1 to 40 do
    let c, p = random_case rng in
    Alcotest.(check bool) "S categorical under total priorities" true
      (Properties.p4_categorical (Properties.of_name Family.S) c p)
  done

(* --- the cautionary families of Examples 6 and 10 -------------------------- *)

let test_example6_trivial_family () =
  (* satisfies P1-P4 while ignoring partial priorities *)
  let rng = Workload.Prng.create 311 in
  for _ = 1 to 10 do
    let c, p = random_case rng in
    let r = Properties.check_all Properties.trivial_family c p in
    Alcotest.(check bool) "P1" true r.Properties.p1;
    Alcotest.(check bool) "P3" true r.Properties.p3;
    Alcotest.(check bool) "P4" true r.Properties.p4;
    (* and indeed it makes no use of a partial priority *)
    if not (Priority.is_total c p) then
      Testlib.check_vsets "ignores the priority"
        (Core.Repair.all c)
        (Properties.trivial_family c p)
  done

let test_example6_trivial_family_p2 () =
  (* The trivial family is monotone: a one-step extension either leaves
     the priority partial (all repairs kept) or completes it (and the
     algorithm-1 repair is among all repairs). *)
  let rng = Workload.Prng.create 313 in
  for _ = 1 to 10 do
    let c, p = random_case rng in
    Alcotest.(check bool) "P2" true
      (Properties.p2_monotone Properties.trivial_family c p)
  done

let test_example10_t_rep () =
  (* Example 10's T-Rep: always the single Algorithm-1 repair under a
     fixed totalization. P1 and P4 hold by construction; crucially P2
     fails — the paper's argument that monotonicity is what rules out
     groundless elimination. (The paper also credits T-Rep with P3, which
     cannot hold for a family that is always a singleton; another small
     erratum, recorded in EXPERIMENTS.md.) *)
  let c, _ = Testlib.example7 () in
  (* P1, P4 hold by construction *)
  Alcotest.(check bool) "P1" true
    (Properties.p1_nonempty Properties.t_rep c (Priority.empty c));
  Alcotest.(check bool) "P4" true
    (Properties.p4_categorical Properties.t_rep c (Priority.empty c));
  (* P2 fails somewhere: find an instance and extension chain where the
     fixed totalization disagrees with the user's own extension. *)
  let rng = Workload.Prng.create 317 in
  let found = ref false in
  (try
     for _ = 1 to 60 do
       let c, p = random_case rng in
       if not (Properties.p2_monotone Properties.t_rep c p) then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "P2 fails for T-Rep on some instance" true !found

let test_t_rep_globally_optimal () =
  (* §3.4: the repair obtained by Algorithm 1 under a total priority is
     globally optimal, so T-Rep is a family of globally optimal repairs. *)
  let rng = Workload.Prng.create 319 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    match Properties.t_rep c p with
    | [ r' ] ->
      Alcotest.(check bool) "T-Rep result globally optimal" true
        (Core.Optimality.is_globally_optimal c (Priority.totalize c p) r')
    | _ -> Alcotest.fail "T-Rep must be a singleton"
  done

let test_report_pp () =
  let r = Properties.{ p1 = true; p2 = false; p3 = true; p4 = true } in
  check Alcotest.string "render" "P1 holds, P2 FAILS, P3 holds, P4 holds"
    (Format.asprintf "%a" Properties.pp_report r)

let suite =
  [
    ("P1 holds for all five families", `Quick, test_p1_all_families);
    ("P2 holds for Rep, L, S, G, C", `Quick, test_p2_monotone_families);
    ("P3 holds for all five families", `Quick, test_p3_all_families);
    ("P4 holds for G and C (Props 4, 6)", `Quick, test_p4_g_and_c);
    ("P4 fails for L (Example 8)", `Quick, test_p4_fails_for_l);
    ("P4 for S: no counterexample exists", `Quick, test_p4_s_no_counterexample_found);
    ("Example 6: trivial family satisfies the axioms", `Quick, test_example6_trivial_family);
    ("Example 6: trivial family is monotone", `Quick, test_example6_trivial_family_p2);
    ("Example 10: T-Rep fails monotonicity", `Quick, test_example10_t_rep);
    ("Algorithm 1 results are globally optimal", `Quick, test_t_rep_globally_optimal);
    ("report rendering", `Quick, test_report_pp);
  ]
