bench/main.ml: Analyze Bechamel Bechamel_notty Benchmark Constraints Core Format Graphs Harness List Measure Notty_unix Printf Query Relational Result Staged Test Time Toolkit Unix Vset Workload
