bench/main.mli:
