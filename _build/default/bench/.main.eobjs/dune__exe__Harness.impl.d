bench/harness.ml: Format List String Unix
