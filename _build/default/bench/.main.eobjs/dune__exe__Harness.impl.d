bench/harness.ml: Format List Printf String Unix
