bench/baseline.ml: Array Graphs Int List Set
