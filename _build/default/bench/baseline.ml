(* Tree-backed reference kernels for the VSET before/after benchmark.

   These are the seed implementations of the hot algorithms — Bron–
   Kerbosch MIS enumeration, the ≪-maximality filter behind G-Rep, and
   the ground-CQA clause kernel — kept verbatim over [Set.Make (Int)],
   the representation [Graphs.Vset] used before it became a packed
   bitset. Measuring them in the same run as the bitset versions makes
   the speedup in BENCH_vset.json an apples-to-apples comparison. *)

module ISet = Set.Make (Int)

type graph = { n : int; adj : ISet.t array }

let of_undirected g =
  let n = Graphs.Undirected.size g in
  let adj = Array.make n ISet.empty in
  List.iter
    (fun (u, v) ->
      adj.(u) <- ISet.add v adj.(u);
      adj.(v) <- ISet.add u adj.(v))
    (Graphs.Undirected.edges g);
  { n; adj }

let of_vset s = ISet.of_list (Graphs.Vset.elements s)

let of_range n =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (ISet.add i acc) in
  loop (n - 1) ISet.empty

(* --- Bron–Kerbosch with pivoting, as in the seed Mis ------------------- *)

let mis_iter f g =
  let vicinity v = ISet.add v g.adj.(v) in
  let compatible p v = ISet.remove v (ISet.diff p g.adj.(v)) in
  let pick_pivot p x =
    let score u = ISet.cardinal (ISet.inter p (vicinity u)) in
    let best u acc =
      match acc with
      | Some (_, s) when s <= score u -> acc
      | _ -> Some (u, score u)
    in
    match ISet.fold best p (ISet.fold best x None) with
    | Some (u, _) -> u
    | None -> assert false
  in
  let rec extend r p x =
    if ISet.is_empty p && ISet.is_empty x then f r
    else begin
      let pivot = pick_pivot p x in
      let branch = ISet.inter p (vicinity pivot) in
      let step v (p, x) =
        extend (ISet.add v r) (compatible p v) (compatible x v);
        (ISet.remove v p, ISet.add v x)
      in
      ignore (ISet.fold step branch (p, x))
    end
  in
  extend ISet.empty (of_range g.n) ISet.empty

let mis_count g =
  let k = ref 0 in
  mis_iter (fun _ -> incr k) g;
  !k

let mis_enumerate g =
  let acc = ref [] in
  mis_iter (fun s -> acc := s :: !acc) g;
  List.sort ISet.compare !acc

(* --- ≪-maximality filtering, as in the seed Optimality/Family ---------- *)

let preferred_to dominates r1 r2 =
  ISet.for_all
    (fun x -> ISet.exists (fun y -> dominates y x) (ISet.diff r2 r1))
    (ISet.diff r1 r2)

let globally_optimal_among dominates all =
  List.filter
    (fun r' ->
      not
        (List.exists
           (fun r'' ->
             (not (ISet.equal r' r'')) && preferred_to dominates r' r'')
           all))
    all

let g_rep dominates g = globally_optimal_among dominates (mis_enumerate g)

(* --- the ground-CQA clause kernel, as in the seed Cqa ------------------ *)

let is_independent g s =
  ISet.for_all (fun v -> ISet.is_empty (ISet.inter g.adj.(v) s)) s

let demand_satisfiable g ~required ~forbidden =
  if not (ISet.is_empty (ISet.inter required forbidden)) then false
  else if not (is_independent g required) then false
  else begin
    let needs_blocker =
      ISet.filter
        (fun b -> ISet.is_empty (ISet.inter g.adj.(b) required))
        forbidden
    in
    let compatible chosen v =
      (not (ISet.mem v forbidden))
      && (not (ISet.mem v chosen))
      && ISet.is_empty (ISet.inter g.adj.(v) required)
      && ISet.is_empty (ISet.inter g.adj.(v) chosen)
    in
    let rec assign chosen = function
      | [] -> true
      | b :: rest ->
        if not (ISet.is_empty (ISet.inter g.adj.(b) chosen)) then
          assign chosen rest
        else
          ISet.exists
            (fun v -> compatible chosen v && assign (ISet.add v chosen) rest)
            g.adj.(b)
    in
    assign ISet.empty (ISet.elements needs_blocker)
  end
