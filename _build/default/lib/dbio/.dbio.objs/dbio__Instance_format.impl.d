lib/dbio/instance_format.ml: Buffer Constraints Core In_channel List Printf Provenance Relation Relational Schema String Tuple Value
