lib/dbio/instance_format.mli: Constraints Core Provenance Relation Relational
