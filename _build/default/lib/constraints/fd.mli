(** Functional dependencies.

    An FD X → Y over schema R(U) states that tuples agreeing on X agree on
    Y (paper, eq. (1), §2.1). Two tuples are {e conflicting} w.r.t. X → Y
    when they agree on X but differ somewhere on Y; an instance is
    inconsistent with a set F iff it contains a conflicting pair.

    Beyond violation detection the module implements the classical
    dependency theory needed by the paper's future-work directions (§6):
    attribute-set closure, implication, candidate keys and BCNF
    conformance (the complexity refinement suggested via [2]). *)

open Relational

type t

val make : string list -> string list -> t
(** [make lhs rhs] is the FD [lhs → rhs]. Raises [Invalid_argument] when
    either side is empty. Attribute lists are de-duplicated. *)

val of_string : string -> (t, string) result
(** Parses ["A B -> C D"] (also accepts commas between attributes). *)

val lhs : t -> string list
val rhs : t -> string list
val equal : t -> t -> bool
val compare : t -> t -> int

val attributes : t -> string list
(** All attributes mentioned, de-duplicated. *)

val wf : Schema.t -> t -> (unit, string) result
(** Every mentioned attribute exists in the schema. *)

val wf_all : Schema.t -> t list -> (unit, string) result

val conflicting : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** Whether the two tuples form a conflict w.r.t. this FD: they agree on
    the left-hand side and differ on some right-hand-side attribute. A
    tuple never conflicts with itself. *)

val violations : Schema.t -> t -> Relation.t -> (Tuple.t * Tuple.t) list
(** All conflicting pairs, each reported once with the smaller tuple
    first. Grouping on the left-hand-side projection keeps this close to
    O(n) on consistent data. *)

val satisfied : Schema.t -> t -> Relation.t -> bool

val all_satisfied : Schema.t -> t list -> Relation.t -> bool
(** The paper's consistency: no conflicting pair for any FD in the set. *)

val is_trivial : t -> bool
(** X → Y with Y ⊆ X. *)

val closure : Schema.t -> t list -> string list -> string list
(** Attribute-set closure X⁺ under F, sorted. *)

val implies : Schema.t -> t list -> t -> bool
(** F ⊨ X → Y, by closure. *)

val is_key : Schema.t -> t list -> string list -> bool
(** X⁺ = U (superkey test). *)

val candidate_keys : Schema.t -> t list -> string list list
(** All minimal superkeys, each sorted, in increasing size order.
    Exponential in the arity (fine: schemas are small and fixed — the
    paper's data-complexity setting). *)

val is_bcnf : Schema.t -> t list -> bool
(** Every non-trivial FD in F has a superkey left-hand side. *)

val key : Schema.t -> string list -> t
(** [key schema x] is the key dependency X → U (like fd1, fd2 of
    Example 1). *)

val pp : Format.formatter -> t -> unit
(** Prints as [A B -> C]. *)

val to_string : t -> string
