lib/constraints/denial.ml: Array Fd Format List Printf Relation Relational Schema Tuple Value
