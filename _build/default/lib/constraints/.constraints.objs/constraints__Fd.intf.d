lib/constraints/fd.mli: Format Relation Relational Schema Tuple
