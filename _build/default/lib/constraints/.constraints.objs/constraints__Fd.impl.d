lib/constraints/fd.ml: Array Format Fun Hashtbl List Option Printf Relation Relational Schema Stdlib String Tuple
