lib/constraints/denial.mli: Fd Format Relation Relational Schema Tuple Value
