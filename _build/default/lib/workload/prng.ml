type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy s = { state = s.state }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next64 s =
  s.state <- Int64.add s.state 0x9E3779B97F4A7C15L;
  let z = s.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int s bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Drop two bits so the value fits OCaml's 63-bit native int without
     wrapping negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 s) 2) in
  v mod bound

let bool s = Int64.logand (next64 s) 1L = 1L

let pick s = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int s (List.length l))

let shuffle s a =
  for i = Array.length a - 1 downto 1 do
    let j = int s (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
