(** Deterministic pseudo-random numbers (splitmix64).

    Workloads must be reproducible across runs and machines, so the
    generators take an explicit seeded state rather than using the global
    [Random]. Splitmix64 is small, fast and statistically adequate for
    workload synthesis. *)

type t

val create : int -> t
(** A fresh state from a seed. Equal seeds yield equal streams. *)

val copy : t -> t

val next64 : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int s bound] is uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
