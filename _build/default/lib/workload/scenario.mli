(** A data-integration scenario at adjustable scale.

    The paper's motivating scenario (§1, Examples 1–3): several
    autonomous, individually consistent sources are unioned into one
    inconsistent instance, and partial reliability information orders some
    of the conflicts. This module synthesizes such workloads: an employee
    directory integrated from k sources where sources may disagree on a
    person's department and salary.

    The reliability order is deliberately partial (as in Example 3):
    sources come in tiers, tiers are totally ordered, sources inside a
    tier are incomparable. *)

open Relational

type t = {
  relation : Relation.t;  (** the integrated instance *)
  fds : Constraints.Fd.t list;  (** the key: Name → Dept Salary *)
  provenance : Provenance.t;  (** which source contributed each tuple *)
  reliability : (string * string) list;
      (** source pairs (more, less) spanning the tier order *)
  sources : string list;
}

val integration :
  Prng.t -> employees:int -> sources_per_tier:int list -> overlap:float -> t
(** [employees] people; one source tier list, e.g. [[2; 1]] = two
    top-tier sources and one lower-tier source (Example 3's shape);
    [overlap] is the probability that a given source also reports a given
    employee (every employee is reported by at least one source).
    Disagreeing reports create key conflicts on Name. *)

val conflicting_tuples : t -> int
(** Number of tuples involved in at least one conflict. *)
