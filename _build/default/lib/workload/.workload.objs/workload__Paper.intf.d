lib/workload/paper.mli: Core Graphs Vset
