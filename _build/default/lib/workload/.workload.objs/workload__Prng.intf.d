lib/workload/prng.mli:
