lib/workload/scenario.mli: Constraints Prng Provenance Relation Relational
