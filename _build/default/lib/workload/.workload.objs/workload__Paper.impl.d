lib/workload/paper.ml: Constraints Core Fun Generator Graphs List Relation Relational Schema Tuple Undirected Value Vset
