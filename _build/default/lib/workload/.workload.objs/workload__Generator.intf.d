lib/workload/generator.mli: Constraints Core Graphs Prng Provenance Relation Relational Vset
