lib/workload/scenario.ml: Array Constraints Core Fun Graphs List Printf Prng Provenance Relation Relational Schema Tuple Value
