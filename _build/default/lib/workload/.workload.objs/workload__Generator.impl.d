lib/workload/generator.ml: Array Constraints Core Fun Graphs List Prng Provenance Relation Relational Schema Tuple Undirected Value Vset
