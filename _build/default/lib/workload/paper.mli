(** The paper's worked examples as ready-made conflict structures.

    Shared by the test suite, the runnable examples and the benchmark
    harness so that every consumer agrees on the exact instances. Vertex
    ids refer to the canonical (sorted) tuple order of the instance. *)

open Graphs

val example7 : unit -> Core.Conflict.t * Core.Priority.t
(** Example 7 / Figure 2: R(A, B) with key A → B, three mutually
    conflicting tuples ta = (1,1), tb = (1,2), tc = (1,3) (vertices 0, 1,
    2), priority ta ≻ tc, ta ≻ tb. *)

val example8 : unit -> Core.Conflict.t * Core.Priority.t
(** Example 8 / Figure 3: R(A, B, C) with A → B; ta = (1,1,1),
    tb = (1,1,2) (duplicates on B), tc = (1,2,3); total priority tc ≻ ta,
    tc ≻ tb. *)

val chain_order : Core.Conflict.t -> int list
(** The vertex sequence of a path-shaped conflict graph, starting from its
    smaller endpoint (used to address the chain instances positionally). *)

val chain_total_priority : Core.Conflict.t -> Core.Priority.t
(** t1 ≻ t2 ≻ … along {!chain_order} — Example 9's printed priority. *)

val example9 : unit -> Core.Conflict.t * Core.Priority.t
(** Example 9 / Figure 4 as printed: the 5-tuple two-FD chain with the
    total path priority. NOTE: the paper's prose about this example is
    inconsistent with its own definitions; see EXPERIMENTS.md. *)

val example9_partial : unit -> Core.Conflict.t * Core.Priority.t
(** The same instance with priority only on the A → B conflicts. *)

val s_vs_g_counterexample : unit -> Core.Conflict.t * Core.Priority.t
(** The K₂,₂ duplicate-regime instance witnessing that one non-key FD
    already separates S-Rep from G-Rep (EXPERIMENTS.md erratum 3). *)

val evens_odds : Core.Conflict.t -> Vset.t * Vset.t
(** For {!Workload.Generator.mutual_cycle} instances: the two alternating
    repairs (tuples with B = 0 and with B = 1). *)
