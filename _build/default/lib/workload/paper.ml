open Relational
open Graphs

let example7 () =
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let row a b = [ Value.Int a; Value.Int b ] in
  let r = Relation.of_rows schema [ row 1 1; row 1 2; row 1 3 ] in
  let fds = [ Constraints.Fd.make [ "A" ] [ "B" ] ] in
  let c = Core.Conflict.build fds r in
  (* canonical order: ta = 0, tb = 1, tc = 2 *)
  (c, Core.Priority.of_arcs_exn c [ (0, 2); (0, 1) ])

let example8 () =
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let row a b c = [ Value.Int a; Value.Int b; Value.Int c ] in
  let r = Relation.of_rows schema [ row 1 1 1; row 1 1 2; row 1 2 3 ] in
  let fds = [ Constraints.Fd.make [ "A" ] [ "B" ] ] in
  let c = Core.Conflict.build fds r in
  (c, Core.Priority.of_arcs_exn c [ (2, 0); (2, 1) ])

let chain_order c =
  let g = Core.Conflict.graph c in
  let n = Core.Conflict.size c in
  if n = 0 then []
  else if n = 1 then [ 0 ]
  else begin
    let ends =
      List.filter (fun v -> Undirected.degree g v = 1) (List.init n Fun.id)
    in
    let start = List.fold_left min (List.hd ends) ends in
    let rec walk prev v acc =
      let next =
        Vset.elements (Undirected.neighbors g v)
        |> List.filter (fun w -> Some w <> prev)
      in
      match next with
      | [] -> List.rev (v :: acc)
      | w :: _ -> walk (Some v) w (v :: acc)
    in
    walk None start []
  end

let chain_total_priority c =
  let rec arcs = function
    | a :: (b :: _ as rest) -> (a, b) :: arcs rest
    | [ _ ] | [] -> []
  in
  Core.Priority.of_arcs_exn c (arcs (chain_order c))

let example9 () =
  let rel, fds = Generator.chain 5 in
  let c = Core.Conflict.build fds rel in
  (c, chain_total_priority c)

let example9_partial () =
  let rel, fds = Generator.chain 5 in
  let c = Core.Conflict.build fds rel in
  match chain_order c with
  | [ t1; t2; t3; t4; _t5 ] ->
    (c, Core.Priority.of_arcs_exn c [ (t1, t2); (t3, t4) ])
  | _ -> assert false

let s_vs_g_counterexample () =
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TInt); ("C", Schema.TInt) ]
  in
  let row a b c = [ Value.Int a; Value.Int b; Value.Int c ] in
  let rel =
    Relation.of_rows schema [ row 1 0 0; row 1 0 2; row 1 1 1; row 1 1 2 ]
  in
  let c = Core.Conflict.build [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  (* K_{2,2} between {0,1} (B = 0) and {2,3} (B = 1) *)
  (c, Core.Priority.of_arcs_exn c [ (2, 1); (3, 0) ])

let evens_odds c =
  let evens =
    Vset.of_list
      (List.filter_map
         (fun v ->
           match Value.as_int (Tuple.get (Core.Conflict.tuple c v) 1) with
           | Some 0 -> Some v
           | Some _ | None -> None)
         (List.init (Core.Conflict.size c) Fun.id))
  in
  (evens, Vset.diff (Vset.of_range (Core.Conflict.size c)) evens)
