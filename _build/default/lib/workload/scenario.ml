open Relational

type t = {
  relation : Relation.t;
  fds : Constraints.Fd.t list;
  provenance : Provenance.t;
  reliability : (string * string) list;
  sources : string list;
}

let departments = [| "R&D"; "IT"; "PR"; "Sales"; "HR"; "Legal" |]

let integration rng ~employees ~sources_per_tier ~overlap =
  if employees < 0 then invalid_arg "Scenario.integration: negative employees";
  if sources_per_tier = [] then
    invalid_arg "Scenario.integration: no source tiers";
  let schema =
    Schema.make "Emp"
      [ ("Name", Schema.TName); ("Dept", Schema.TName); ("Salary", Schema.TInt) ]
  in
  (* Tiered source names: s<tier>_<index>. *)
  let tiers =
    List.mapi
      (fun tier count ->
        List.init count (fun i -> Printf.sprintf "s%d_%d" (tier + 1) i))
      sources_per_tier
  in
  let sources = List.concat tiers in
  let reliability =
    (* Every source of a tier is more reliable than every source of all
       later tiers; tiers are incomparable inside. *)
    let rec spans = function
      | [] | [ _ ] -> []
      | tier :: rest ->
        List.concat_map
          (fun hi -> List.map (fun lo -> (hi, lo)) (List.concat rest))
          tier
        @ spans rest
    in
    spans tiers
  in
  (* Each employee has a "true" record; a source either reports it
     faithfully or garbles department/salary. *)
  let contributions = ref [] in
  let report person =
    let name = Printf.sprintf "emp%04d" person in
    let true_dept = departments.(Prng.int rng (Array.length departments)) in
    let true_salary = 30_000 + (1000 * Prng.int rng 70) in
    let reporters =
      let chosen =
        List.filter
          (fun _ -> float_of_int (Prng.int rng 1000) < overlap *. 1000.)
          sources
      in
      if chosen = [] then [ Prng.pick rng sources ] else chosen
    in
    List.iter
      (fun src ->
        let garbled = Prng.int rng 100 < 40 in
        let dept =
          if garbled && Prng.bool rng then
            departments.(Prng.int rng (Array.length departments))
          else true_dept
        in
        let salary =
          if garbled then true_salary + (1000 * (1 + Prng.int rng 10))
          else true_salary
        in
        let tuple =
          Tuple.make [ Value.Name name; Value.Name dept; Value.Int salary ]
        in
        contributions := (tuple, src) :: !contributions)
      reporters
  in
  List.iter report (List.init employees Fun.id);
  let relation = Relation.of_tuples schema (List.map fst !contributions) in
  let provenance =
    (* Set semantics: when two sources contribute the same tuple, the
       later [set] wins; conflicts only matter between distinct tuples, so
       any single witness source is adequate. *)
    Provenance.of_list
      (List.map
         (fun (t, src) -> (t, Provenance.info ~source:src ()))
         !contributions)
  in
  let fds = [ Constraints.Fd.make [ "Name" ] [ "Dept"; "Salary" ] ] in
  { relation; fds; provenance; reliability; sources }

let conflicting_tuples t =
  let c = Core.Conflict.build t.fds t.relation in
  let g = Core.Conflict.graph c in
  Graphs.Vset.cardinal
    (Graphs.Vset.filter
       (fun v -> not (Graphs.Vset.is_empty (Graphs.Undirected.neighbors g v)))
       (Graphs.Undirected.vertices g))
