include Set.Make (Int)

let of_range n =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (add i acc) in
  loop (n - 1) empty

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements s)

let to_string s = Format.asprintf "%a" pp s

let hash s = fold (fun v acc -> (acc * 1000003) + v + 1) s 0
