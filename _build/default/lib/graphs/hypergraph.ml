type t = { n : int; edges : Vset.t list; incident : Vset.t list array }

let create n raw_edges =
  if n < 0 then invalid_arg "Hypergraph.create: negative size";
  List.iter
    (fun e ->
      if Vset.is_empty e then invalid_arg "Hypergraph.create: empty edge";
      Vset.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Hypergraph.create: vertex out of range")
        e)
    raw_edges;
  let distinct = List.sort_uniq Vset.compare raw_edges in
  (* Drop edges implied by a subset: if e ⊂ e' then any set containing e'
     contains e, so e' never matters for independence. *)
  let minimal =
    List.filter
      (fun e ->
        not
          (List.exists
             (fun e' -> (not (Vset.equal e e')) && Vset.subset e' e)
             distinct))
      distinct
  in
  let incident = Array.make n [] in
  List.iter
    (fun e -> Vset.iter (fun v -> incident.(v) <- e :: incident.(v)) e)
    minimal;
  { n; edges = minimal; incident }

let size h = h.n
let edges h = h.edges

let edges_containing h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.edges_containing";
  h.incident.(v)

let is_independent h s =
  not (List.exists (fun e -> Vset.subset e s) h.edges)

(* v can be added to independent s iff no edge becomes fully contained. *)
let addable h s v =
  not (Vset.mem v s)
  && not
       (List.exists
          (fun e -> Vset.subset (Vset.remove v e) s)
          h.incident.(v))

let is_maximal_independent h s =
  is_independent h s
  && not (List.exists (fun v -> addable h s v) (List.init h.n Fun.id))

let enumerate h =
  (* Branch on an uncovered edge, excluding one of its vertices; at each
     leaf the excluded set is a transversal, so its complement is
     independent; keep only the maximal ones and de-duplicate. Every
     maximal independent set M is reached along the branch that always
     excludes a vertex of V \ M. *)
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let all = Vset.of_range h.n in
  let rec go excluded = function
    | [] ->
      let candidate = Vset.diff all excluded in
      if
        is_maximal_independent h candidate
        && not (Hashtbl.mem seen candidate)
      then begin
        Hashtbl.replace seen candidate ();
        results := candidate :: !results
      end
    | e :: rest ->
      if Vset.is_empty (Vset.inter e excluded) then
        Vset.iter (fun v -> go (Vset.add v excluded) rest) e
      else go excluded rest
  in
  (* Rescan the full edge list until every edge is hit: an edge skipped as
     "already hit" stays hit because [excluded] only grows. *)
  go Vset.empty h.edges;
  List.sort Vset.compare !results

let of_graph g =
  let edges =
    List.map (fun (u, v) -> Vset.of_list [ u; v ]) (Undirected.edges g)
  in
  create (Undirected.size g) edges

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph on %d vertices:@," h.n;
  List.iter (fun e -> Format.fprintf ppf "  %a@," Vset.pp e) h.edges;
  Format.fprintf ppf "@]"
