(** Conflict hypergraphs.

    The paper's §6 points to the generalization of conflict graphs to
    hypergraphs [6], which handle denial constraints: a single conflict may
    involve more than two tuples, so a conflict becomes a hyperedge and a
    repair becomes a maximal set containing no hyperedge in full. *)

type t

val create : int -> Vset.t list -> t
(** [create n edges] builds a hypergraph on vertices [0 .. n-1]. Edges of
    cardinality 0 are rejected ([Invalid_argument]: an empty conflict would
    make every subset inconsistent). Edges of cardinality 1 are allowed and
    mean the vertex alone is inconsistent (e.g. a tuple violating a
    one-tuple denial constraint). Duplicate edges are collapsed; an edge
    that is a superset of another is dropped (it is implied). *)

val size : t -> int
val edges : t -> Vset.t list

val edges_containing : t -> int -> Vset.t list

val is_independent : t -> Vset.t -> bool
(** No hyperedge is fully contained in the set. *)

val is_maximal_independent : t -> Vset.t -> bool

val enumerate : t -> Vset.t list
(** All maximal independent sets, sorted by [Vset.compare]. Exponential in
    the worst case, like its graph counterpart. *)

val of_graph : Undirected.t -> t
(** Each graph edge becomes a 2-element hyperedge. *)

val pp : Format.formatter -> t -> unit
