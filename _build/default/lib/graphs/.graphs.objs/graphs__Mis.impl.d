lib/graphs/mis.ml: List Undirected Vset
