lib/graphs/mis.ml: Array List Undirected Vset
