lib/graphs/mis.mli: Undirected Vset
