lib/graphs/undirected.ml: Array Format Hashtbl List Printf Vset
