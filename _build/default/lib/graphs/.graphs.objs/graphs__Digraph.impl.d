lib/graphs/digraph.ml: Array Format List Printf Vset
