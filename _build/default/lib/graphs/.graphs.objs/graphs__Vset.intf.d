lib/graphs/vset.mli: Format
