lib/graphs/vset.mli: Format Set
