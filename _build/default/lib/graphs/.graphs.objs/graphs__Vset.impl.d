lib/graphs/vset.ml: Format Int Set
