lib/graphs/vset.ml: Array Format List
