lib/graphs/digraph.mli: Format Vset
