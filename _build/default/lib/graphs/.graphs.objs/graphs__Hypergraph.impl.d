lib/graphs/hypergraph.ml: Array Format Fun Hashtbl List Undirected Vset
