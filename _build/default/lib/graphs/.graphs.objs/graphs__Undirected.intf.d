lib/graphs/undirected.mli: Format Vset
