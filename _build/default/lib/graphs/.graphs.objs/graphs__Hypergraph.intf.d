lib/graphs/hypergraph.mli: Format Undirected Vset
