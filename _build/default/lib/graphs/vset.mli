(** Sets of graph vertices (non-negative integers).

    This is the set representation shared by every graph structure in the
    repository: vertices of conflict graphs are indices into a tuple array,
    and repairs are vertex sets. *)

include Set.S with type elt = int

val of_range : int -> t
(** [of_range n] is [{0, 1, ..., n-1}]. [of_range 0] is [empty]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 5}]. *)

val to_string : t -> string

val hash : t -> int
(** A structural hash, usable to memoize on vertex sets. *)
