(* Bron–Kerbosch with pivoting, phrased for independent sets.

   In clique terms on the complement graph: the complement-neighbourhood of
   a vertex [v] is co(v) = V \ ({v} ∪ n(v)).  The branch set at a node with
   candidates P and excluded X is P \ co(u) = P ∩ ({u} ∪ n(u)) for the
   pivot u, so a pivot with few conflict-neighbours inside P is best; in
   particular an isolated pivot yields a single branch. *)

exception Stop

let iter f g =
  let n = Undirected.size g in
  (* P ∩ co(v): candidates compatible with picking v. *)
  let compatible p v = Vset.remove v (Vset.diff p (Undirected.neighbors g v)) in
  let pick_pivot p x =
    (* Minimize |P ∩ ({u} ∪ n(u))| over u ∈ P ∪ X. *)
    let score u =
      Vset.cardinal (Vset.inter p (Undirected.vicinity g u))
    in
    let best u acc =
      match acc with
      | Some (_, s) when s <= score u -> acc
      | _ -> Some (u, score u)
    in
    match Vset.fold best p (Vset.fold best x None) with
    | Some (u, _) -> u
    | None -> assert false
  in
  let rec extend r p x =
    if Vset.is_empty p && Vset.is_empty x then f r
    else begin
      let pivot = pick_pivot p x in
      let branch = Vset.inter p (Undirected.vicinity g pivot) in
      let step v (p, x) =
        extend (Vset.add v r) (compatible p v) (compatible x v);
        (Vset.remove v p, Vset.add v x)
      in
      ignore (Vset.fold step branch (p, x))
    end
  in
  extend Vset.empty (Vset.of_range n) Vset.empty

let fold f g acc =
  let acc = ref acc in
  iter (fun s -> acc := f s !acc) g;
  !acc

let enumerate g = List.sort Vset.compare (fold (fun s acc -> s :: acc) g [])
let count g = fold (fun _ acc -> acc + 1) g 0

let first g =
  let n = Undirected.size g in
  let rec loop v acc =
    if v >= n then acc
    else if Vset.is_empty (Vset.inter (Undirected.neighbors g v) acc) then
      loop (v + 1) (Vset.add v acc)
    else loop (v + 1) acc
  in
  loop 0 Vset.empty

let exists p g =
  try
    iter (fun s -> if p s then raise Stop) g;
    false
  with Stop -> true

let for_all p g = not (exists (fun s -> not (p s)) g)
