lib/shell/session.ml: Buffer Constraints Core Dbio Format Graphs List Out_channel Printf Query Relation Relational Schema String Tuple Value
