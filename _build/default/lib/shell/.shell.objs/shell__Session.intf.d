lib/shell/session.mli: Core Dbio
