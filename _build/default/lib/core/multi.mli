(** Multi-relation databases under preferred repairs.

    The paper restricts the presentation to a single relation and notes
    (§2) that the framework extends to multiple relations along the lines
    of [7]. The extension is structural: functional dependencies only
    relate tuples of one relation, so the conflict graph of a database is
    the disjoint union of the per-relation conflict graphs, a repair of
    the database chooses one repair per relation, and every preferred
    family factorizes relation-wise (the same argument as the
    component-wise factorization in {!Decompose}, one level up).

    Queries, however, may join relations — so consistent query answering
    is genuinely multi-relation: the generic engine evaluates the query
    over combinations of per-relation preferred repairs, and the ground
    engine factorizes a clause's demands per relation (and further per
    component, via {!Decompose}). *)

open Relational
open Graphs

type t

val build : fds:(string * Constraints.Fd.t list) list -> Database.t -> t
(** [fds] maps relation names to their FD sets; relations not listed are
    constraint-free (always consistent). Raises [Invalid_argument] when a
    listed relation is absent from the database or an FD is ill-formed.
    All priorities start empty. *)

val database : t -> Database.t
val relation_names : t -> string list

val conflict : t -> string -> Conflict.t
(** The conflict context of one relation. *)

val priority : t -> string -> Priority.t

val set_priority : t -> string -> Priority.t -> t
(** Functional update of one relation's priority. *)

val set_rule : t -> string -> Pref_rules.rule -> (t, string) result
(** Derive the relation's priority from a preference rule. *)

val repair_count : Family.name -> t -> int
(** Product over relations of per-relation preferred-repair counts
    (computed component-wise; subject to the same overflow caveat as
    {!Decompose.count}). *)

val repairs : Family.name -> t -> Database.t list
(** All preferred repairs of the database, materialized — the product of
    the per-relation families. Exponential; meant for small instances. *)

val consistent_answer : Family.name -> t -> Query.Ast.t -> bool
(** Closed-query preferred consistent answer by product enumeration. *)

val certainty : Family.name -> t -> Query.Ast.t -> Cqa.certainty

val certainty_ground : Family.name -> t -> Query.Ast.t -> (Cqa.certainty, string) result
(** The factorized ground engine: polynomial whenever conflict-graph
    components are bounded, even across many relations. *)

val vset_of : t -> string -> Relation.t -> Vset.t
(** Vertex set of a sub-instance of the named relation, for repair
    checking via [Family.check (conflict m name) (priority m name)]. *)
