(** Resolving ground DNF clauses against an instance.

    Shared by every ground-query engine (monolithic, hypergraph,
    factorized, multi-relation): a clause of the query's DNF demands some
    facts present and some absent; against a concrete instance this
    normalizes to vertex sets, with two short-circuits — a demanded fact
    missing from the instance kills the clause, a forbidden fact missing
    is vacuous. *)

open Graphs

type demand = { required : Vset.t; forbidden : Vset.t }

val of_clause :
  rel_name:string ->
  index:(Relational.Tuple.t -> int option) ->
  Query.Transform.ground_clause ->
  (demand option, string) result
(** [Ok None] when the clause is unsatisfiable against the instance
    (a positive fact is absent); [Error] when the clause mentions a
    relation other than [rel_name]. *)
