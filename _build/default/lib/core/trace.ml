open Graphs

type step = { picked : int; winnow : Vset.t; removed : Vset.t }

type t = { steps : step list; result : Vset.t }

let clean ?(choose = Vset.min_elt) c p =
  let rec loop remaining steps acc =
    if Vset.is_empty remaining then
      { steps = List.rev steps; result = acc }
    else begin
      let w = Priority.winnow p remaining in
      let x = choose w in
      let removed =
        Vset.inter (Conflict.neighbors c x) remaining
      in
      loop
        (Vset.diff remaining (Conflict.vicinity c x))
        ({ picked = x; winnow = w; removed } :: steps)
        (Vset.add x acc)
    end
  in
  loop (Vset.of_range (Conflict.size c)) [] Vset.empty

let pp c ppf t =
  let pp_tuple ppf v = Relational.Tuple.pp ppf (Conflict.tuple c v) in
  let pp_set ppf s =
    if Vset.is_empty s then Format.pp_print_string ppf "(none)"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_tuple ppf (Vset.elements s)
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i step ->
      Format.fprintf ppf "step %d: keep %a@," (i + 1) pp_tuple step.picked;
      if Vset.cardinal step.winnow > 1 then
        Format.fprintf ppf "        (also undominated: %a)@," pp_set
          (Vset.remove step.picked step.winnow);
      if not (Vset.is_empty step.removed) then
        Format.fprintf ppf "        discards %a@," pp_set step.removed)
    t.steps;
  Format.fprintf ppf "kept %d tuple(s)@]" (Vset.cardinal t.result)
