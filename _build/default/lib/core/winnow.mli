(** Algorithm 1 of the paper: cleaning through iterated winnow.

    The algorithm repeatedly selects an undominated tuple, adds it to the
    result, and discards the tuple together with its conflict
    neighbourhood. For a total priority the result is a single repair
    independent of the choices (Prop. 1); for a partial priority the set of
    results over all choice sequences is exactly the family C-Rep of
    common repairs (Prop. 7). *)

open Graphs

val clean : ?choose:(Vset.t -> int) -> Conflict.t -> Priority.t -> Vset.t
(** One run of Algorithm 1; [choose] resolves Step 3 (default:
    smallest vertex id, making the run deterministic). The result is
    always a repair, and a globally optimal one (§3.4). The winnow set is
    maintained incrementally, so a run costs O((V + E + A) log V). *)

val clean_naive : ?choose:(Vset.t -> int) -> Conflict.t -> Priority.t -> Vset.t
(** The literal restatement of Algorithm 1, recomputing ω≻ from scratch
    on every iteration — quadratic. Kept as the reference implementation:
    the test suite checks [clean] against it, and the benchmark harness
    measures the gap (ablation of the incremental winnow). *)

val all_results : Conflict.t -> Priority.t -> Vset.t list
(** All outcomes of Algorithm 1 over every choice sequence = C-Rep
    (Prop. 7), sorted. Memoizes on the set of remaining tuples; worst-case
    exponential, like the repair space itself. *)

val is_result : Conflict.t -> Priority.t -> Vset.t -> bool
(** Polynomial-time C-Rep membership: simulate Algorithm 1 with Step-3
    choices restricted to ω≻(r) ∩ r' (§4.2). Any greedy choice decides
    membership — an exchange argument shows order independence. *)
