(** Explanations for preferred consistent answers.

    "Ambiguous" is an unsatisfying answer without evidence. This module
    produces witnesses: for a query, a preferred repair supporting it and
    one refuting it (whichever exist); for a tuple, its conflict and
    domination situation and whether it survives in all, some or none of
    the preferred repairs. Tuple status is computed on the tuple's
    conflict component only (families factorize — see {!Decompose}), so
    it stays cheap on large instances. *)

open Relational
open Graphs

type verdict = {
  certainty : Cqa.certainty;
  supporting : Vset.t option;  (** a preferred repair satisfying the query *)
  refuting : Vset.t option;  (** a preferred repair falsifying it *)
}

val query : Family.name -> Conflict.t -> Priority.t -> Query.Ast.t -> verdict
(** Evaluates the closed query over the preferred repairs, keeping one
    witness of each truth value. Enumerative — intended for instances
    whose preferred repairs are enumerable; use {!Decompose} for scale. *)

val pp_verdict : Conflict.t -> Format.formatter -> verdict -> unit

type tuple_status = {
  tuple : Tuple.t;
  conflicts_with : Tuple.t list;  (** its conflict neighbourhood *)
  dominated_by : Tuple.t list;  (** tuples preferred over it *)
  dominates : Tuple.t list;  (** tuples it is preferred over *)
  in_all : bool;  (** member of every preferred repair *)
  in_some : bool;  (** member of at least one preferred repair *)
}

val tuple_status :
  Family.name -> Conflict.t -> Priority.t -> Tuple.t -> tuple_status
(** Raises [Invalid_argument] when the tuple is not in the instance. *)

val pp_tuple_status : Format.formatter -> tuple_status -> unit
