(** Repair optimality (paper, §3).

    Three increasingly aggressive ways a priority can disqualify a repair,
    ordered by implication: globally optimal ⇒ semi-globally optimal ⇒
    locally optimal. All predicates below assume the candidate is a repair
    (checked by the callers in {!Family}); on non-repairs their value is
    unspecified. *)

open Graphs

val improving_swap : Conflict.t -> Priority.t -> Vset.t -> (int * int) option
(** A witness [(y, x)] against local optimality: [y ∉ r'] whose single
    conflict-neighbour in [r'] is [x], with [y ≻ x] — swapping [x] for
    [y] keeps consistency and improves the repair. [None] iff the repair
    is locally optimal. Polynomial time. *)

val is_locally_optimal : Conflict.t -> Priority.t -> Vset.t -> bool
(** L-repair checking — PTIME (Theorem 4). *)

val improving_tuple : Conflict.t -> Priority.t -> Vset.t -> int option
(** A witness against semi-global optimality: [y ∉ r'] dominating every
    one of its conflict-neighbours in [r'] (§4.2). *)

val is_semi_globally_optimal : Conflict.t -> Priority.t -> Vset.t -> bool
(** S-repair checking — PTIME (Corollary 1). *)

val preferred_to : Conflict.t -> Priority.t -> Vset.t -> Vset.t -> bool
(** [preferred_to c p r1 r2] is the paper's r1 ≪ r2 (Prop. 5):
    every tuple lost from r1 is dominated by some tuple gained in r2.
    Reflexive; antisymmetric on distinct repairs thanks to acyclicity. *)

val is_globally_optimal : Conflict.t -> Priority.t -> Vset.t -> bool
(** G-repair checking: no {e other} repair is ≪-above the candidate.
    Implemented as a witness search through repair enumeration —
    the problem is co-NP-complete (Theorem 5), so exponential worst-case
    behaviour is expected and measured in the benchmarks. *)

val dominating_witness : Conflict.t -> Priority.t -> Vset.t -> Vset.t option
(** The repair r'' with r' ≪ r'', if any ([None] iff globally optimal). *)

val is_globally_optimal_by_replacement :
  Conflict.t -> Priority.t -> Vset.t -> bool
(** The literal §3 definition: no non-empty X ⊆ r' can be replaced by a
    set Y of instance tuples, each x ∈ X dominated by some y ∈ Y, keeping
    consistency. Doubly exponential subset search — test-scale only; used
    to cross-validate Prop. 5. *)
