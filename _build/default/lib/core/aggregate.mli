(** Range-consistent answers to scalar aggregation queries.

    The paper's §6 points to [2] (Arenas et al., {e Scalar Aggregation in
    Inconsistent Databases}) as the complexity-refinement companion line of
    work. An aggregation query has no single consistent answer when repairs
    disagree; following [2], the consistent answer is the {e range}
    [(glb, lub)] of the aggregate's value over the repairs.

    When the constraints are one key dependency, the conflict graph is a
    disjoint union of cliques ("clusters": the groups of key-equal tuples)
    and every repair picks exactly one tuple per clique. COUNT, SUM,
    MIN and MAX ranges then have closed forms computed in linear time;
    this module applies them whenever the conflict graph is a cluster
    graph (which the one-key case guarantees) and falls back to repair
    enumeration otherwise. A preferred-family variant restricts the range
    to X-preferred repairs. *)

type agg =
  | Count_all  (** COUNT(all) *)
  | Sum of string  (** SUM over a numeric attribute *)
  | Min of string
  | Max of string

type range = { glb : int option; lub : int option }
(** [None] bounds arise only for MIN/MAX over instances where some repair
    is empty (no tuples at all): the aggregate is undefined there. COUNT
    and SUM of an empty repair are 0. *)

val agg_to_string : agg -> string

val range : Conflict.t -> agg -> (range, string) result
(** Range over {e all} repairs. Closed-form on cluster graphs, otherwise
    enumeration. [Error] when the attribute is missing or non-numeric. *)

val range_preferred :
  Family.name -> Conflict.t -> Priority.t -> agg -> (range, string) result
(** Range over the X-preferred repairs, by enumeration. With a total
    priority and X ∈ {G, C} the range collapses to a point (P4). *)

val is_cluster_graph : Conflict.t -> bool
(** Every connected component of the conflict graph is a clique — true in
    particular whenever the FDs reduce to one key dependency. *)

val pp_range : Format.formatter -> range -> unit
