(** Repairs (paper, Definition 1).

    A repair of r w.r.t. F is a maximal subset of r consistent with F —
    equivalently, a maximal independent set of the conflict graph. Repairs
    are represented as vertex sets of a {!Conflict.t}. *)

open Relational
open Graphs

val all : Conflict.t -> Vset.t list
(** All repairs, sorted. Exponential in the worst case (Example 4:
    2ⁿ repairs on 2n tuples); prefer {!iter}/{!exists} for searches. *)

val iter : (Vset.t -> unit) -> Conflict.t -> unit
val fold : (Vset.t -> 'a -> 'a) -> Conflict.t -> 'a -> 'a
val exists : (Vset.t -> bool) -> Conflict.t -> bool
val for_all : (Vset.t -> bool) -> Conflict.t -> bool

val count : Conflict.t -> int

val one : Conflict.t -> Vset.t
(** A single repair, greedily (polynomial). *)

val is_repair : Conflict.t -> Vset.t -> bool
(** Repair checking for the family Rep — PTIME (Figure 5, first row). *)

val is_repair_relation : Conflict.t -> Relation.t -> bool
(** Same, for a candidate given as a sub-instance. Raises
    [Invalid_argument] when the candidate contains tuples not in the
    original instance. *)

val to_relation : Conflict.t -> Vset.t -> Relation.t

val all_relations : Conflict.t -> Relation.t list
(** All repairs materialized as instances (Example 2's r1, r2, r3). *)
