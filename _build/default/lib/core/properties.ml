open Graphs

type family_fn = Conflict.t -> Priority.t -> Vset.t list

let of_name name c p = Family.repairs name c p

let subset_of l1 l2 =
  List.for_all (fun s -> List.exists (Vset.equal s) l2) l1

let p1_nonempty family c p = family c p <> []

let p2_monotone family c p =
  let selected = family c p in
  List.for_all
    (fun p' -> subset_of (family c p') selected)
    (Priority.one_step_extensions c p)

let p3_no_discrimination family c =
  let selected = family c (Priority.empty c) in
  let all = Repair.all c in
  subset_of selected all && subset_of all selected

let p4_categorical family c p =
  List.length (family c (Priority.totalize c p)) = 1

type report = { p1 : bool; p2 : bool; p3 : bool; p4 : bool }

let check_all family c p =
  {
    p1 = p1_nonempty family c p;
    p2 = p2_monotone family c p;
    p3 = p3_no_discrimination family c;
    p4 = p4_categorical family c p;
  }

let trivial_family c p =
  if Priority.is_total c p then [ Winnow.clean c p ] else Repair.all c

let t_rep c p = [ Winnow.clean c (Priority.totalize c p) ]

let pp_report ppf r =
  let mark b = if b then "holds" else "FAILS" in
  Format.fprintf ppf "P1 %s, P2 %s, P3 %s, P4 %s" (mark r.p1) (mark r.p2)
    (mark r.p3) (mark r.p4)
