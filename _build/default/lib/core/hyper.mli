(** Conflict hypergraphs for denial constraints — the paper's §6
    generalization, after [6].

    Under denial constraints a conflict may involve any number of tuples,
    so the conflict graph becomes a hypergraph whose hyperedges are the
    minimal violation sets; repairs are the maximal subsets containing no
    hyperedge. Priorities have no agreed meaning here (the paper leaves
    that open), so the preferred families are not lifted; the classical
    Rep machinery — repair enumeration, repair checking and the
    polynomial ground-query CQA — is. *)

open Relational
open Graphs

type t

val build : Constraints.Denial.t list -> Relation.t -> t
(** Raises [Invalid_argument] on ill-typed constraints. Cost O(nᵏ) for
    arity-k constraints (k fixed by the schema). *)

val of_fds : Constraints.Fd.t list -> Relation.t -> t
(** FDs encoded as denial constraints; the resulting hypergraph has the
    conflict graph's edges (as 2-element hyperedges). *)

val relation : t -> Relation.t
val denials : t -> Constraints.Denial.t list
val hypergraph : t -> Hypergraph.t
val size : t -> int
val tuple : t -> int -> Tuple.t
val index : t -> Tuple.t -> int option

val is_consistent : t -> bool

val repairs : t -> Vset.t list
(** All repairs (maximal independent sets of the hypergraph), sorted. *)

val is_repair : t -> Vset.t -> bool

val to_relation : t -> Vset.t -> Relation.t

val ground_certainty : t -> Query.Ast.t -> (Cqa.certainty, string) result
(** The polynomial ground-query algorithm of {!Cqa.ground_certainty}
    generalized to hyperedges: a forbidden fact b is blocked by choosing a
    hyperedge e ∋ b and placing e \ {b} into the repair. *)

val pp : Format.formatter -> t -> unit
