(** Executable checkers for the paper's axioms P1–P4 (§1, §3).

    A family of preferred repairs is abstracted as a function from an
    instance (as a {!Conflict.t}) and a priority to a set of repairs. The
    checkers decide each axiom on a {e concrete} instance — they validate
    behaviour on given inputs (as the test suite does on many instances),
    they are not proofs.

    The module also constructs the paper's cautionary families: the
    trivial family of Example 6 and T-Rep of Example 10, which satisfy
    most axioms while making degenerate use of the priority — the reason
    the paper pairs the axioms with optimality notions (§3.4). *)

open Graphs

type family_fn = Conflict.t -> Priority.t -> Vset.t list

val of_name : Family.name -> family_fn

val p1_nonempty : family_fn -> Conflict.t -> Priority.t -> bool
(** RepΦ ≠ ∅. *)

val p2_monotone : family_fn -> Conflict.t -> Priority.t -> bool
(** RepΨ ⊆ RepΦ for every one-step extension Ψ of Φ. Monotonicity for
    arbitrary extensions follows by induction on oriented edges whenever
    it holds step-wise along every chain — the tests exercise multi-step
    chains separately. *)

val p3_no_discrimination : family_fn -> Conflict.t -> bool
(** Rep∅ = Rep. *)

val p4_categorical : family_fn -> Conflict.t -> Priority.t -> bool
(** |RepΦ'| = 1 for Φ' a total extension of Φ (via {!Priority.totalize};
    the tests also quantify over other total extensions). *)

type report = { p1 : bool; p2 : bool; p3 : bool; p4 : bool }

val check_all : family_fn -> Conflict.t -> Priority.t -> report

val trivial_family : family_fn
(** Example 6: all repairs unless the priority is total, in which case the
    single repair produced by Algorithm 1. Satisfies P1–P4 on every
    instance while ignoring non-total priorities entirely. *)

val t_rep : family_fn
(** Example 10: always the single result of Algorithm 1 under a fixed
    total extension of the priority ({!Priority.totalize}). A family of
    globally optimal repairs satisfying P1, P3, P4 — but not P2. *)

val pp_report : Format.formatter -> report -> unit
