(** Component-wise evaluation of preferred repairs.

    Conflicts never leave a connected component of the conflict graph, and
    every one of the paper's families factorizes over components:

    - repairs of r = unions of one repair per component;
    - an L/S-improving witness y acts inside y's component;
    - ≪-domination pairs each lost tuple with a dominator it conflicts
      with, hence in the same component, so global optimality is
      equivalent to component-wise global optimality;
    - Algorithm 1's winnow is component-local and runs on different
      components interleave freely (Prop. 7 per component).

    The global repair space is the product of the component spaces — often
    astronomically large while every component stays small. This module
    exploits that: counting preferred repairs, deciding ground-query
    certainty and computing aggregate ranges all become tractable whenever
    components are small, even for the families whose global problems are
    co-NP- or Π₂ᵖ-complete (the hardness constructions need components
    that grow with the instance).

    Correctness of the factorization is cross-validated against the
    monolithic engines in the test suite. *)

open Graphs

type t

val make : Conflict.t -> Priority.t -> t
(** Precomputes the components. O(V + E). *)

val conflict : t -> Conflict.t
val components : t -> Vset.t list

val component_of : t -> int -> Vset.t
(** The component containing the given vertex. *)

val preferred_within :
  Family.name -> t -> Vset.t -> Vset.t list
(** The family's preferred repairs of one component, as subsets of the
    original vertex ids. Cost is exponential only in the component size. *)

val count : Family.name -> t -> int
(** Number of preferred repairs of the whole instance — the product of
    the per-component counts. Never materializes the product. Beware that
    the true count can exceed [max_int] (Example 4 at n ≥ 62); the
    product is then taken modulo the native integer width. *)

val certainty_ground :
  Family.name -> t -> Query.Ast.t -> (Cqa.certainty, string) result
(** Certainty of a ground query w.r.t. the family's preferred repairs,
    decided component-wise: a DNF clause is satisfiable by a preferred
    repair iff its per-component demands are each satisfiable by a
    preferred repair of that component (untouched components are free by
    P1). Exponential only in the largest component touched by the
    query. *)

val certain_tuples : Family.name -> t -> Vset.t
(** Tuples belonging to {e every} preferred repair — the certain answers
    to the identity query, computed per component. A conflict-free tuple
    is always certain. *)

val possible_tuples : Family.name -> t -> Vset.t
(** Tuples belonging to at least one preferred repair. The complement
    consists of tuples the preferences rule out entirely. *)

val aggregate_range :
  Family.name -> t -> Aggregate.agg -> (Aggregate.range, string) result
(** Aggregate ranges over the preferred repairs, summed/combined across
    components: SUM and COUNT ranges add; MIN/MAX combine monotonically.
    Exponential only in component sizes. *)
