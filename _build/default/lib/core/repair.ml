open Graphs

let all c = Mis.enumerate (Conflict.graph c)
let iter f c = Mis.iter f (Conflict.graph c)
let fold f c acc = Mis.fold f (Conflict.graph c) acc
let exists p c = Mis.exists p (Conflict.graph c)
let for_all p c = Mis.for_all p (Conflict.graph c)
let count c = Mis.count (Conflict.graph c)
let one c = Mis.first (Conflict.graph c)
let is_repair c s = Undirected.is_maximal_independent (Conflict.graph c) s

let is_repair_relation c r = is_repair c (Conflict.vset_of_relation c r)

let to_relation c s = Conflict.relation_of_vset c s

let all_relations c = List.map (to_relation c) (all c)
