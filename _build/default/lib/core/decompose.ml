open Relational
open Graphs

type t = {
  conflict : Conflict.t;
  priority : Priority.t;
  components : Vset.t array;
      (* indexed by component id, so [component_of] is O(1) *)
  comp_index : int array;
  cache : (Family.name * int, Vset.t list) Hashtbl.t;
      (* (family, component id) -> preferred repairs in original ids *)
}

let make conflict priority =
  let components =
    Array.of_list (Undirected.connected_components (Conflict.graph conflict))
  in
  let comp_index = Array.make (Conflict.size conflict) 0 in
  Array.iteri
    (fun i comp -> Vset.iter (fun v -> comp_index.(v) <- i) comp)
    components;
  { conflict; priority; components; comp_index; cache = Hashtbl.create 16 }

let conflict d = d.conflict
let components d = Array.to_list d.components

let component_of d v =
  if v < 0 || v >= Conflict.size d.conflict then
    invalid_arg "Decompose.component_of";
  d.components.(d.comp_index.(v))

(* The sub-instance of one component. Tuples keep their relative order
   under restriction, so new vertex i is the i-th smallest original id. *)
let sub_context d comp =
  let rel = Conflict.relation_of_vset d.conflict comp in
  let sub = Conflict.build (Conflict.fds d.conflict) rel in
  let mapping = Array.of_list (Vset.elements comp) in
  let back = Hashtbl.create (Array.length mapping) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) mapping;
  let arcs =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt back u, Hashtbl.find_opt back v) with
        | Some u', Some v' -> Some (u', v')
        | _, _ -> None)
      (Priority.arcs d.priority)
  in
  (sub, Priority.of_arcs_exn sub arcs, mapping)

let preferred_within family d comp =
  let key = (family, d.comp_index.(Vset.min_elt comp)) in
  match Hashtbl.find_opt d.cache key with
  | Some repairs -> repairs
  | None ->
    let sub, p, mapping = sub_context d comp in
    let repairs =
      List.map
        (fun s -> Vset.map (fun v -> mapping.(v)) s)
        (Family.repairs family sub p)
    in
    Hashtbl.replace d.cache key repairs;
    repairs

let count family d =
  Array.fold_left
    (fun acc comp -> acc * List.length (preferred_within family d comp))
    1 d.components

(* --- ground certainty --------------------------------------------------- *)

let demand_of_clause d clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Conflict.schema d.conflict))
    ~index:(Conflict.index d.conflict) clause

(* A clause is satisfiable by a preferred repair iff each touched
   component has a preferred repair meeting the clause's demands there
   (P1 supplies arbitrary preferred repairs for untouched components, and
   the family factorizes). *)
let clause_satisfiable family d { Ground.required; forbidden } =
  let touched =
    Vset.fold
      (fun v acc -> Vset.add d.comp_index.(v) acc)
      (Vset.union required forbidden)
      Vset.empty
  in
  Vset.for_all
    (fun ci ->
      let comp = d.components.(ci) in
      let req = Vset.inter required comp and forb = Vset.inter forbidden comp in
      List.exists
        (fun r -> Vset.subset req r && Vset.is_empty (Vset.inter forb r))
        (preferred_within family d comp))
    touched

let some_preferred_satisfies family d q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause d clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some demand) -> Ok (clause_satisfiable family d demand)))
      (Ok false) clauses

let certainty_ground family d q =
  if not (Query.Ast.is_ground q) then
    Error "certainty_ground: query is not ground"
  else
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_preferred_satisfies family d q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

let certain_tuples family d =
  Array.fold_left
    (fun acc comp ->
      match preferred_within family d comp with
      | [] -> acc
      | first :: rest ->
        Vset.union acc (List.fold_left Vset.inter first rest))
    Vset.empty d.components

let possible_tuples family d =
  Array.fold_left
    (fun acc comp ->
      List.fold_left Vset.union acc (preferred_within family d comp))
    Vset.empty d.components

(* --- aggregates ----------------------------------------------------------- *)

let attr_position d attr =
  let schema = Conflict.schema d.conflict in
  match Schema.position schema attr with
  | None ->
    Error
      (Printf.sprintf "schema %s has no attribute %S" (Schema.name schema) attr)
  | Some i ->
    if Schema.ty_at schema i <> Schema.TInt then
      Error (Printf.sprintf "attribute %S is not numeric" attr)
    else Ok i

let aggregate_range family d agg =
  let pos =
    match agg with
    | Aggregate.Count_all -> Ok (-1)
    | Aggregate.Sum a | Aggregate.Min a | Aggregate.Max a -> attr_position d a
  in
  match pos with
  | Error e -> Error e
  | Ok pos ->
    let value_of v =
      match Value.as_int (Tuple.get (Conflict.tuple d.conflict v) pos) with
      | Some n -> n
      | None -> assert false
    in
    (* the aggregate's value inside one component repair *)
    let local s =
      match agg with
      | Aggregate.Count_all -> Some (Vset.cardinal s)
      | Aggregate.Sum _ ->
        Some (Vset.fold (fun v acc -> acc + value_of v) s 0)
      | Aggregate.Min _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> min m (value_of v)))
          s None
      | Aggregate.Max _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> max m (value_of v)))
          s None
    in
    (* per-component extremes of the local value *)
    let extremes comp =
      let values =
        List.filter_map local (preferred_within family d comp)
      in
      match values with
      | [] -> None
      | v :: vs -> Some (List.fold_left min v vs, List.fold_left max v vs)
    in
    let per_component =
      List.filter_map extremes (Array.to_list d.components)
    in
    let range =
      match agg with
      | Aggregate.Count_all | Aggregate.Sum _ ->
        (* additive across components *)
        let glb = List.fold_left (fun a (lo, _) -> a + lo) 0 per_component in
        let lub = List.fold_left (fun a (_, hi) -> a + hi) 0 per_component in
        Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Min _ ->
        (* global MIN = min over components of the chosen local MIN *)
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> min a lo) max_int in
        let lub = fold (fun a (_, hi) -> min a hi) max_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Max _ ->
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> max a lo) min_int in
        let lub = fold (fun a (_, hi) -> max a hi) min_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
    in
    Ok range
