open Relational
open Graphs

type t = {
  denials : Constraints.Denial.t list;
  relation : Relation.t;
  tuples : Tuple.t array;
  hyper : Hypergraph.t;
  index : (Tuple.t, int) Hashtbl.t;
}

let build denials relation =
  let schema = Relation.schema relation in
  List.iter
    (fun dc ->
      match Constraints.Denial.wf schema dc with
      | Ok () -> ()
      | Error e -> invalid_arg e)
    denials;
  let tuples = Relation.tuple_array relation in
  let n = Array.length tuples in
  let index = Hashtbl.create n in
  Array.iteri (fun i t -> Hashtbl.replace index t i) tuples;
  let edges =
    List.concat_map
      (fun dc ->
        List.map
          (fun witness ->
            Vset.of_list (List.map (Hashtbl.find index) witness))
          (Constraints.Denial.violations schema dc relation))
      denials
  in
  { denials; relation; tuples; hyper = Hypergraph.create n edges; index }

let of_fds fds relation =
  let schema = Relation.schema relation in
  build (List.concat_map (Constraints.Denial.of_fd schema) fds) relation

let relation h = h.relation
let denials h = h.denials
let hypergraph h = h.hyper
let size h = Array.length h.tuples

let tuple h i =
  if i < 0 || i >= size h then invalid_arg "Hyper.tuple: out of range";
  h.tuples.(i)

let index h t = Hashtbl.find_opt h.index t

let is_consistent h = Hypergraph.edges h.hyper = []

let repairs h = Hypergraph.enumerate h.hyper
let is_repair h s = Hypergraph.is_maximal_independent h.hyper s

let to_relation h s =
  Relation.of_tuples
    (Relation.schema h.relation)
    (List.map (tuple h) (Vset.elements s))

(* --- polynomial ground CQA over hyperedges ----------------------------- *)

let demand_of_clause h clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Relation.schema h.relation))
    ~index:(index h) clause

(* A repair ⊇ required avoiding forbidden exists iff some independent
   S ⊇ required, S ∩ forbidden = ∅, blocks every forbidden vertex b: a
   hyperedge e ∋ b with e \ {b} ⊆ S (then b can never be added, and a
   maximal extension inside V \ forbidden is maximal overall). *)
let demand_satisfiable h { Ground.required; forbidden } =
  let hg = h.hyper in
  if not (Vset.is_empty (Vset.inter required forbidden)) then false
  else if not (Hypergraph.is_independent hg required) then false
  else begin
    let rec assign s = function
      | [] -> Hypergraph.is_independent hg s
      | b :: rest ->
        List.exists
          (fun e ->
            let blockers = Vset.remove b e in
            Vset.is_empty (Vset.inter blockers forbidden)
            && begin
                 let s' = Vset.union s blockers in
                 Hypergraph.is_independent hg s' && assign s' rest
               end)
          (Hypergraph.edges_containing hg b)
    in
    assign required (Vset.elements forbidden)
  end

let some_repair_satisfies h q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause h clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some d) -> Ok (demand_satisfiable h d)))
      (Ok false) clauses

let ground_certainty h q =
  if not (Query.Ast.is_ground q) then
    Error "ground_certainty: query is not ground"
  else
    match some_repair_satisfies h (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_repair_satisfies h q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

let pp ppf h =
  Format.fprintf ppf "@[<v>hyper-conflict structure:@,";
  Array.iteri (fun i t -> Format.fprintf ppf "  t%d = %a@," i Tuple.pp t) h.tuples;
  Format.fprintf ppf "%a@]" Hypergraph.pp h.hyper
