lib/core/stats.mli: Conflict Family Format Priority
