lib/core/optimality.mli: Conflict Graphs Priority Vset
