lib/core/repair.ml: Conflict Graphs List Mis Undirected
