lib/core/trace.mli: Conflict Format Graphs Priority Vset
