lib/core/multi.ml: Conflict Cqa Database Decompose Family Fun Graphs Lazy List Map Option Pref_rules Printf Priority Query Relation Relational Repair Schema String Vset
