lib/core/pref_formula.mli: Format Pref_rules Query Relational Schema Tuple Value
