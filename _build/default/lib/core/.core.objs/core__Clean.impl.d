lib/core/clean.ml: Conflict Format Graphs List Pref_rules Priority Relation Relational Repair Tuple Undirected Vset Winnow
