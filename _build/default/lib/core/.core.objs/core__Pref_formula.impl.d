lib/core/pref_formula.ml: Format Printf Query Relational Schema String Tuple Value
