lib/core/explain.ml: Conflict Cqa Decompose Family Format Graphs List Priority Relational Tuple Vset
