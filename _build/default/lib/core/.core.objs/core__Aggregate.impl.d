lib/core/aggregate.ml: Conflict Family Format Graphs List Option Printf Relational Repair Schema Tuple Undirected Value Vset
