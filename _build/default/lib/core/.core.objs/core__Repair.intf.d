lib/core/repair.mli: Conflict Graphs Relation Relational Vset
