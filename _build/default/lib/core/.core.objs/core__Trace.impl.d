lib/core/trace.ml: Conflict Format Graphs List Priority Relational Vset
