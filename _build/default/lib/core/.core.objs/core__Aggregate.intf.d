lib/core/aggregate.mli: Conflict Family Format Priority
