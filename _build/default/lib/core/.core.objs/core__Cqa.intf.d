lib/core/cqa.mli: Conflict Family Graphs Ground Priority Query Relational Value Vset
