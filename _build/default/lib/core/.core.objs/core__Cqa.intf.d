lib/core/cqa.mli: Conflict Family Graphs Priority Query Relational Value Vset
