lib/core/hyper.ml: Array Constraints Cqa Format Graphs Ground Hashtbl Hypergraph List Query Relation Relational Schema Tuple Vset
