lib/core/ground.mli: Graphs Query Relational Vset
