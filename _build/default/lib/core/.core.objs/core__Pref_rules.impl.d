lib/core/pref_rules.ml: Conflict Graphs List Map Printf Priority Provenance Relational Schema String Tuple Value
