lib/core/multi.mli: Conflict Constraints Cqa Database Family Graphs Pref_rules Priority Query Relation Relational Vset
