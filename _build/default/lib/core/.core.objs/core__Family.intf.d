lib/core/family.mli: Conflict Format Graphs Priority Relation Relational Vset
