lib/core/cqa.ml: Conflict Family Fun Graphs Ground List Query Relational Repair Schema Undirected Vset
