lib/core/cqa.ml: Conflict Family Graphs Ground Hashtbl List Query Relational Repair Schema Undirected Vset
