lib/core/pref_rules.mli: Conflict Priority Provenance Relational Schema Tuple
