lib/core/optimality.ml: Conflict Graphs List Priority Repair Undirected Vset
