lib/core/ground.ml: Graphs List Printf Query String Vset
