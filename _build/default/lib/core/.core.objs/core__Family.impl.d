lib/core/family.ml: Conflict Format Graphs List Optimality Repair String Vset Winnow
