lib/core/conflict.mli: Constraints Format Graphs Relation Relational Schema Tuple Undirected Vset
