lib/core/properties.mli: Conflict Family Format Graphs Priority Vset
