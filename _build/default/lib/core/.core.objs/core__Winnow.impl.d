lib/core/winnow.ml: Array Conflict Graphs Hashtbl List Priority Undirected Vset
