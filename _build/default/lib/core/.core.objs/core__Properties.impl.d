lib/core/properties.ml: Conflict Family Format Graphs List Priority Repair Vset Winnow
