lib/core/clean.mli: Conflict Constraints Format Pref_rules Priority Relation Relational Tuple
