lib/core/priority.mli: Conflict Format Graphs Relational Vset
