lib/core/stats.ml: Conflict Decompose Family Format Graphs List Priority Undirected Vset
