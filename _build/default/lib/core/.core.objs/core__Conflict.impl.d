lib/core/conflict.ml: Array Constraints Format Graphs Hashtbl List Printf Relation Relational Schema Tuple Undirected Vset
