lib/core/decompose.ml: Aggregate Array Conflict Cqa Family Graphs Ground Hashtbl List Printf Priority Query Relational Schema Tuple Undirected Value Vset
