lib/core/winnow.mli: Conflict Graphs Priority Vset
