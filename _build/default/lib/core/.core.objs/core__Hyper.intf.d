lib/core/hyper.mli: Constraints Cqa Format Graphs Hypergraph Query Relation Relational Tuple Vset
