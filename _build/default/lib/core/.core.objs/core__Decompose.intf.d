lib/core/decompose.mli: Aggregate Conflict Cqa Family Graphs Priority Query Vset
