lib/core/explain.mli: Conflict Cqa Family Format Graphs Priority Query Relational Tuple Vset
