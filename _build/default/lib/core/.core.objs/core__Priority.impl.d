lib/core/priority.ml: Array Conflict Digraph Format Graphs List Printf Undirected Vset
