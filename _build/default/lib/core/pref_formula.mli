(** Intrinsic preference formulas.

    The paper builds its cleaning operator on the winnow operator of [5]
    (Chomicki, {e Preference Formulas in Relational Queries}), where
    preferences between tuples are stated as first-order formulas over the
    two tuples' attributes. This module implements that fragment: a
    quantifier-free formula over designators [t1] (the preferred tuple)
    and [t2] (the dominated one), e.g.

    {v t1.Salary > t2.Salary and t1.Dept = t2.Dept v}

    A formula induces a {!Pref_rules.rule}; as with any rule, the edge is
    oriented only when the formula holds in exactly one direction, and
    {!Pref_rules.apply} re-validates acyclicity of the induced priority. *)

open Relational

type operand =
  | Fst of string  (** attribute of t1, the preferred tuple *)
  | Snd of string  (** attribute of t2, the dominated tuple *)
  | Const of Value.t

type t =
  | True
  | False
  | Cmp of Query.Ast.cmp * operand * operand
  | Not of t
  | And of t * t
  | Or of t * t

val parse : string -> (t, string) result
(** Concrete syntax: comparisons [t1.A op t2.B], [t1.A op const] with
    [op ∈ {=, !=, <>, <, >, <=, >=}], combined with [and], [or], [not]
    and parentheses; [true]/[false] literals. Tuple designators must be
    exactly [t1] and [t2]. *)

val parse_exn : string -> t

val wf : Schema.t -> t -> (unit, string) result
(** Attributes exist; order comparisons only between number-typed
    operands. *)

val holds : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** [holds schema f x y]: does [f] prefer [x] over [y]? The formula's
    [t1] reads from [x], [t2] from [y]. Comparison semantics matches the
    query evaluator ([<] on numbers only). *)

val to_rule : Schema.t -> t -> (Pref_rules.rule, string) result
(** Well-formedness-checked rule. *)

val pp : Format.formatter -> t -> unit
(** Prints in the concrete syntax; output re-parses to an equal
    formula. *)

val to_string : t -> string
