open Graphs

type t = {
  tuples : int;
  conflict_edges : int;
  conflicting_tuples : int;
  components : int;
  nontrivial_components : int;
  largest_component : int;
  oriented_edges : int;
  total_priority : bool;
  repair_count : int;
  preferred_count : int;
  certain : int;
  disputed : int;
  excluded : int;
}

let compute family c p =
  let g = Conflict.graph c in
  let n = Conflict.size c in
  let d = Decompose.make c p in
  let comps = Decompose.components d in
  let certain = Decompose.certain_tuples family d in
  let possible = Decompose.possible_tuples family d in
  let conflicting =
    Vset.filter
      (fun v -> not (Vset.is_empty (Undirected.neighbors g v)))
      (Vset.of_range n)
  in
  {
    tuples = n;
    conflict_edges = Undirected.edge_count g;
    conflicting_tuples = Vset.cardinal conflicting;
    components = List.length comps;
    nontrivial_components =
      List.length (List.filter (fun comp -> Vset.cardinal comp > 1) comps);
    largest_component =
      List.fold_left (fun acc comp -> max acc (Vset.cardinal comp)) 0 comps;
    oriented_edges = Priority.arc_count p;
    total_priority = Priority.is_total c p;
    repair_count = Decompose.count Family.Rep d;
    preferred_count = Decompose.count family d;
    certain = Vset.cardinal certain;
    disputed = Vset.cardinal (Vset.diff possible certain);
    excluded = n - Vset.cardinal possible;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>tuples:                 %d@,\
     conflict edges:         %d (%d tuples involved)@,\
     components:             %d (%d non-trivial, largest %d)@,\
     priority:               %d/%d edges oriented%s@,\
     repairs:                %d@,\
     preferred repairs:      %d@,\
     tuple fates:            %d certain, %d disputed, %d excluded@]"
    s.tuples s.conflict_edges s.conflicting_tuples s.components
    s.nontrivial_components s.largest_component s.oriented_edges
    s.conflict_edges
    (if s.total_priority then " (total)" else "")
    s.repair_count s.preferred_count s.certain s.disputed s.excluded
