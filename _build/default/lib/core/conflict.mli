(** Conflict graphs (paper, §2.1).

    Given an instance r and a set F of functional dependencies, the
    conflict graph has the tuples of r as vertices and an edge between
    every pair of tuples conflicting w.r.t. some FD in F. It is the compact
    representation of the repair space: repairs are exactly the maximal
    independent sets.

    A value of type [t] packages the instance, the constraints and the
    graph, with a stable tuple numbering (tuple order in the canonical
    tuple array). All core algorithms speak vertex ids; conversion to and
    from relations lives here. *)

open Relational
open Graphs

type t

val build : Constraints.Fd.t list -> Relation.t -> t
(** Raises [Invalid_argument] when an FD mentions attributes absent from
    the relation's schema. Cost: pairwise comparison inside groups sharing
    an FD's left-hand-side projection. *)

val schema : t -> Schema.t
val fds : t -> Constraints.Fd.t list
val relation : t -> Relation.t
val graph : t -> Undirected.t
val size : t -> int
(** Number of tuples (= vertices). *)

val tuple : t -> int -> Tuple.t
val tuples : t -> Tuple.t array
(** A fresh copy of the vertex-indexed tuple array. *)

val index : t -> Tuple.t -> int option
val index_exn : t -> Tuple.t -> int

val vset_of_relation : t -> Relation.t -> Vset.t
(** Vertex set of a sub-instance. Raises [Invalid_argument] when some
    tuple does not belong to the original instance. *)

val relation_of_vset : t -> Vset.t -> Relation.t

val is_consistent : t -> bool
(** No conflicts at all: the instance satisfies F. *)

val conflicting_fds : t -> int -> int -> Constraints.Fd.t list
(** The FDs witnessing the conflict on an edge (empty if not adjacent). *)

val neighbors : t -> int -> Vset.t
(** The paper's n(t), by vertex id. *)

val vicinity : t -> int -> Vset.t
(** The paper's v(t) = {t} ∪ n(t). *)

val conflict_pairs : t -> (Tuple.t * Tuple.t) list
(** All conflicting pairs as tuples, smaller first. *)

val pp : Format.formatter -> t -> unit
(** Lists vertices with their tuples and the conflict edges — a textual
    rendering of the paper's Figures 1–4. *)
