(** End-to-end cleaning pipeline.

    The paper contrasts querying under preferred repairs with physical
    data cleaning (§1): cleaning removes tuples for good and loses the
    disjunctive information carried by unresolved conflicts. This module
    implements that alternative — Algorithm 1 driven by a preference rule
    — both for users who do want a cleaned instance and for experiments
    comparing the two approaches (Example 3 shows cleaning yielding an
    instance that is still inconsistent-looking to the user while
    preferred CQA extracts the right answer). *)

open Relational

type report = {
  cleaned : Relation.t;  (** the surviving tuples — one C-repair *)
  removed : Tuple.t list;  (** tuples deleted by the cleaning *)
  conflicts : int;  (** conflict edges in the original instance *)
  oriented : int;  (** how many of them the rule resolved *)
  deterministic : bool;
      (** the priority was total, so every choice sequence yields this
          same result (Prop. 1) *)
}

val run :
  Constraints.Fd.t list -> Relation.t -> Pref_rules.rule -> (report, string) result
(** Build the conflict graph, derive the priority from the rule, run
    Algorithm 1. [Error] when the rule induces a cyclic priority. *)

val run_with_priority : Conflict.t -> Priority.t -> report

val pp_report : Format.formatter -> report -> unit
