open Relational
open Graphs

type verdict = {
  certainty : Cqa.certainty;
  supporting : Vset.t option;
  refuting : Vset.t option;
}

let query family c p q =
  let supporting = ref None and refuting = ref None in
  List.iter
    (fun r' ->
      if Cqa.evaluate_in_repair c r' q then begin
        if !supporting = None then supporting := Some r'
      end
      else if !refuting = None then refuting := Some r')
    (Family.repairs family c p);
  let certainty =
    match (!supporting, !refuting) with
    | Some _, None -> Cqa.Certainly_true
    | None, Some _ -> Cqa.Certainly_false
    | Some _, Some _ -> Cqa.Ambiguous
    | None, None -> Cqa.Certainly_true (* no preferred repairs: vacuous *)
  in
  { certainty; supporting = !supporting; refuting = !refuting }

let pp_repair c ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tuple.pp)
    (List.map (Conflict.tuple c) (Vset.elements s))

let pp_verdict c ppf v =
  Format.fprintf ppf "@[<v>%s@," (Cqa.certainty_to_string v.certainty);
  (match v.supporting with
  | Some s -> Format.fprintf ppf "  holds in:  %a@," (pp_repair c) s
  | None -> ());
  (match v.refuting with
  | Some s -> Format.fprintf ppf "  fails in:  %a@," (pp_repair c) s
  | None -> ());
  Format.fprintf ppf "@]"

type tuple_status = {
  tuple : Tuple.t;
  conflicts_with : Tuple.t list;
  dominated_by : Tuple.t list;
  dominates : Tuple.t list;
  in_all : bool;
  in_some : bool;
}

let tuple_status family c p t =
  let v = Conflict.index_exn c t in
  let to_tuples s = List.map (Conflict.tuple c) (Vset.elements s) in
  (* families factorize over components: membership across all preferred
     repairs is decided inside the tuple's component *)
  let d = Decompose.make c p in
  let comp = Decompose.component_of d v in
  let repairs = Decompose.preferred_within family d comp in
  {
    tuple = t;
    conflicts_with = to_tuples (Conflict.neighbors c v);
    dominated_by = to_tuples (Priority.dominators p v);
    dominates = to_tuples (Priority.dominated p v);
    in_all = List.for_all (fun r' -> Vset.mem v r') repairs;
    in_some = List.exists (fun r' -> Vset.mem v r') repairs;
  }

let pp_tuple_status ppf st =
  let pp_tuples ppf = function
    | [] -> Format.pp_print_string ppf "(none)"
    | ts ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Tuple.pp ppf ts
  in
  Format.fprintf ppf
    "@[<v>tuple %a@,  conflicts with: %a@,  dominated by:   %a@,  dominates:      \
     %a@,  status: %s@]"
    Tuple.pp st.tuple pp_tuples st.conflicts_with pp_tuples st.dominated_by
    pp_tuples st.dominates
    (if st.in_all then "kept in every preferred repair"
     else if st.in_some then "kept in some preferred repairs (disputed)"
     else "removed from every preferred repair")
