open Relational
open Graphs

type t = {
  fds : Constraints.Fd.t list;
  relation : Relation.t;
  tuples : Tuple.t array;
  graph : Undirected.t;
  index : (Tuple.t, int) Hashtbl.t;
}

let build fds relation =
  let schema = Relation.schema relation in
  (match Constraints.Fd.wf_all schema fds with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  let tuples = Relation.tuple_array relation in
  let n = Array.length tuples in
  let index = Hashtbl.create n in
  Array.iteri (fun i t -> Hashtbl.replace index t i) tuples;
  let edge_of_pair (t1, t2) =
    (Hashtbl.find index t1, Hashtbl.find index t2)
  in
  let edges =
    List.concat_map
      (fun fd ->
        List.map edge_of_pair (Constraints.Fd.violations schema fd relation))
      fds
  in
  { fds; relation; tuples; graph = Undirected.create n edges; index }

let schema c = Relation.schema c.relation
let fds c = c.fds
let relation c = c.relation
let graph c = c.graph
let size c = Array.length c.tuples

let tuple c i =
  if i < 0 || i >= size c then invalid_arg "Conflict.tuple: out of range";
  c.tuples.(i)

let tuples c = Array.copy c.tuples
let index c t = Hashtbl.find_opt c.index t

let index_exn c t =
  match index c t with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "tuple %s is not part of the instance" (Tuple.to_string t))

let vset_of_relation c r =
  Relation.fold (fun t acc -> Vset.add (index_exn c t) acc) r Vset.empty

let relation_of_vset c s =
  Relation.of_tuples (schema c)
    (List.map (fun i -> tuple c i) (Vset.elements s))

let is_consistent c = Undirected.edge_count c.graph = 0

let conflicting_fds c i j =
  let t1 = tuple c i and t2 = tuple c j in
  List.filter (fun fd -> Constraints.Fd.conflicting (schema c) fd t1 t2) c.fds

let neighbors c i = Undirected.neighbors c.graph i
let vicinity c i = Undirected.vicinity c.graph i

let conflict_pairs c =
  List.map (fun (i, j) -> (tuple c i, tuple c j)) (Undirected.edges c.graph)

let pp ppf c =
  Format.fprintf ppf "@[<v>conflict graph of %a with {%a}:@,"
    Schema.pp (schema c)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Constraints.Fd.pp)
    c.fds;
  Array.iteri (fun i t -> Format.fprintf ppf "  t%d = %a@," i Tuple.pp t) c.tuples;
  List.iter
    (fun (i, j) -> Format.fprintf ppf "  t%d -- t%d@," i j)
    (Undirected.edges c.graph);
  Format.fprintf ppf "@]"
