open Relational
open Graphs

type agg = Count_all | Sum of string | Min of string | Max of string

type range = { glb : int option; lub : int option }

let agg_to_string = function
  | Count_all -> "COUNT(*)"
  | Sum a -> Printf.sprintf "SUM(%s)" a
  | Min a -> Printf.sprintf "MIN(%s)" a
  | Max a -> Printf.sprintf "MAX(%s)" a

let attr_position c attr =
  let schema = Conflict.schema c in
  match Schema.position schema attr with
  | None ->
    Error (Printf.sprintf "schema %s has no attribute %S" (Schema.name schema) attr)
  | Some i ->
    if Schema.ty_at schema i <> Schema.TInt then
      Error (Printf.sprintf "attribute %S is not numeric" attr)
    else Ok i

let value_at c pos v =
  match Value.as_int (Tuple.get (Conflict.tuple c v) pos) with
  | Some n -> n
  | None -> assert false (* typed instances: TInt position holds Int *)

let is_cluster_graph c =
  let g = Conflict.graph c in
  List.for_all (fun comp -> Undirected.is_clique g comp)
    (Undirected.connected_components g)

(* --- aggregate of one repair ------------------------------------------- *)

let eval_agg c pos_opt agg s =
  let values () =
    List.map (value_at c (Option.get pos_opt)) (Vset.elements s)
  in
  match agg with
  | Count_all -> Some (Vset.cardinal s)
  | Sum _ -> Some (List.fold_left ( + ) 0 (values ()))
  | Min _ -> (
    match values () with [] -> None | v :: vs -> Some (List.fold_left min v vs))
  | Max _ -> (
    match values () with [] -> None | v :: vs -> Some (List.fold_left max v vs))

(* --- closed forms on cluster graphs ------------------------------------ *)

(* Every repair selects exactly one vertex per clique component. *)
let cluster_range c pos_opt agg =
  let comps = Undirected.connected_components (Conflict.graph c) in
  let per_clique f =
    List.map
      (fun comp -> f (List.map (value_at c (Option.get pos_opt)) (Vset.elements comp)))
      comps
  in
  let list_min = function [] -> None | v :: vs -> Some (List.fold_left min v vs) in
  let list_max = function [] -> None | v :: vs -> Some (List.fold_left max v vs) in
  match agg with
  | Count_all ->
    let k = List.length comps in
    { glb = Some k; lub = Some k }
  | Sum _ ->
    let mins = per_clique (fun vs -> List.fold_left min max_int vs) in
    let maxs = per_clique (fun vs -> List.fold_left max min_int vs) in
    {
      glb = Some (List.fold_left ( + ) 0 mins);
      lub = Some (List.fold_left ( + ) 0 maxs);
    }
  | Min _ ->
    (* glb: the overall smallest value can always be selected; lub: pick
       each clique's largest, the repair's MIN is the smallest of those. *)
    let clique_maxs = per_clique (fun vs -> List.fold_left max min_int vs) in
    let all = per_clique (fun vs -> List.fold_left min max_int vs) in
    { glb = list_min all; lub = list_min clique_maxs }
  | Max _ ->
    let clique_mins = per_clique (fun vs -> List.fold_left min max_int vs) in
    let all = per_clique (fun vs -> List.fold_left max min_int vs) in
    { glb = list_max clique_mins; lub = list_max all }

(* --- enumeration fallback ---------------------------------------------- *)

(* Bounds over the repairs where the aggregate is defined (MIN/MAX are
   undefined exactly on the empty repair, which exists only for the empty
   instance). *)
let range_over_repairs c pos_opt agg repairs =
  match List.filter_map (eval_agg c pos_opt agg) repairs with
  | [] -> { glb = None; lub = None }
  | v :: vs ->
    {
      glb = Some (List.fold_left min v vs);
      lub = Some (List.fold_left max v vs);
    }

let with_position c agg k =
  match agg with
  | Count_all -> k None
  | Sum a | Min a | Max a -> (
    match attr_position c a with Error e -> Error e | Ok i -> k (Some i))

let range c agg =
  with_position c agg (fun pos_opt ->
      if is_cluster_graph c then Ok (cluster_range c pos_opt agg)
      else Ok (range_over_repairs c pos_opt agg (Repair.all c)))

let range_preferred family c p agg =
  with_position c agg (fun pos_opt ->
      Ok (range_over_repairs c pos_opt agg (Family.repairs family c p)))

let pp_range ppf { glb; lub } =
  let pp_bound ppf = function
    | None -> Format.pp_print_string ppf "undefined"
    | Some v -> Format.pp_print_int ppf v
  in
  Format.fprintf ppf "[%a, %a]" pp_bound glb pp_bound lub
