(** Step-by-step traces of Algorithm 1.

    For auditing a cleaning decision: which tuple was kept at each step,
    what the winnow set offered at that moment (every other choice would
    have been legitimate — the other common repairs), and which
    conflicting tuples the choice discarded. Traces exist for human
    consumption; the plain {!Winnow.clean} is the fast path. *)

open Graphs

type step = {
  picked : int;  (** the tuple kept at this step *)
  winnow : Vset.t;  (** the undominated choices available (ω≻) *)
  removed : Vset.t;  (** conflict neighbours discarded with the pick *)
}

type t = { steps : step list; result : Vset.t }

val clean : ?choose:(Vset.t -> int) -> Conflict.t -> Priority.t -> t
(** Same semantics as {!Winnow.clean} (and the same default tie-break);
    the [result] equals [Winnow.clean ~choose c p]. *)

val pp : Conflict.t -> Format.formatter -> t -> unit
(** Renders each step with actual tuples. *)
