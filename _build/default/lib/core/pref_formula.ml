open Relational

type operand = Fst of string | Snd of string | Const of Value.t

type t =
  | True
  | False
  | Cmp of Query.Ast.cmp * operand * operand
  | Not of t
  | And of t * t
  | Or of t * t

(* --- parsing, on top of the query lexer -------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_operand = function
  | Query.Lexer.IDENT d :: Query.Lexer.DOT :: Query.Lexer.IDENT a :: rest -> (
    match String.lowercase_ascii d with
    | "t1" -> (Fst a, rest)
    | "t2" -> (Snd a, rest)
    | _ -> fail "tuple designator must be t1 or t2, not %S" d)
  | Query.Lexer.INT n :: rest -> (Const (Value.Int n), rest)
  | Query.Lexer.NAME s :: rest -> (Const (Value.Name s), rest)
  | tok :: _ ->
    fail "expected t1.Attr, t2.Attr or a constant, found %s"
      (Query.Lexer.token_to_string tok)
  | [] -> fail "unexpected end of input"

let parse_cmp = function
  | Query.Lexer.EQ :: rest -> (Query.Ast.Eq, rest)
  | Query.Lexer.NEQ :: rest -> (Query.Ast.Neq, rest)
  | Query.Lexer.LT :: rest -> (Query.Ast.Lt, rest)
  | Query.Lexer.GT :: rest -> (Query.Ast.Gt, rest)
  | Query.Lexer.LEQ :: rest -> (Query.Ast.Leq, rest)
  | Query.Lexer.GEQ :: rest -> (Query.Ast.Geq, rest)
  | tok :: _ ->
    fail "expected a comparison operator, found %s"
      (Query.Lexer.token_to_string tok)
  | [] -> fail "unexpected end of input"

let rec parse_disj tokens =
  let first, rest = parse_conj tokens in
  match rest with
  | Query.Lexer.KW_OR :: rest ->
    let next, rest = parse_disj rest in
    (Or (first, next), rest)
  | _ -> (first, rest)

and parse_conj tokens =
  let first, rest = parse_neg tokens in
  match rest with
  | Query.Lexer.KW_AND :: rest ->
    let next, rest = parse_conj rest in
    (And (first, next), rest)
  | _ -> (first, rest)

and parse_neg tokens =
  match tokens with
  | Query.Lexer.KW_NOT :: rest ->
    let f, rest = parse_neg rest in
    (Not f, rest)
  | Query.Lexer.KW_TRUE :: rest -> (True, rest)
  | Query.Lexer.KW_FALSE :: rest -> (False, rest)
  | Query.Lexer.LPAREN :: rest -> (
    let f, rest = parse_disj rest in
    match rest with
    | Query.Lexer.RPAREN :: rest -> (f, rest)
    | _ -> fail "expected ')'")
  | _ ->
    let left, rest = parse_operand tokens in
    let op, rest = parse_cmp rest in
    let right, rest = parse_operand rest in
    (Cmp (op, left, right), rest)

let parse text =
  match Query.Lexer.tokenize text with
  | Error e -> Error e
  | Ok tokens -> (
    try
      match parse_disj tokens with
      | f, [ Query.Lexer.EOF ] -> Ok f
      | _, tok :: _ ->
        Error
          (Printf.sprintf "parse error: trailing input at %s"
             (Query.Lexer.token_to_string tok))
      | _, [] -> Error "parse error: missing EOF"
    with Parse_error m -> Error (Printf.sprintf "parse error: %s" m))

let parse_exn text =
  match parse text with Ok f -> f | Error e -> invalid_arg e

(* --- typing -------------------------------------------------------------- *)

let operand_ty schema = function
  | Const (Value.Int _) -> Ok `Int
  | Const (Value.Name _) -> Ok `Name
  | Fst a | Snd a -> (
    match Schema.position schema a with
    | None -> Error (Printf.sprintf "unknown attribute %S" a)
    | Some i -> Ok (Schema.ty_to_poly (Schema.ty_at schema i)))

let rec wf schema = function
  | True | False -> Ok ()
  | Not f -> wf schema f
  | And (f, g) | Or (f, g) -> (
    match wf schema f with Ok () -> wf schema g | Error _ as e -> e)
  | Cmp (op, l, r) -> (
    match (operand_ty schema l, operand_ty schema r) with
    | Error e, _ | _, Error e -> Error e
    | Ok tl, Ok tr ->
      if tl <> tr then Error "comparison between a name and a number"
      else if tl = `Name && op <> Query.Ast.Eq && op <> Query.Ast.Neq then
        Error "order comparison on name-typed operands"
      else Ok ())

(* --- evaluation ------------------------------------------------------------ *)

let eval_operand schema x y = function
  | Const v -> v
  | Fst a -> Tuple.get x (Schema.position_exn schema a)
  | Snd a -> Tuple.get y (Schema.position_exn schema a)

let eval_cmp op l r =
  let both_ints =
    match (l, r) with Value.Int _, Value.Int _ -> true | _, _ -> false
  in
  match op with
  | Query.Ast.Eq -> Value.equal l r
  | Query.Ast.Neq -> not (Value.equal l r)
  | Query.Ast.Lt -> both_ints && Value.compare l r < 0
  | Query.Ast.Gt -> both_ints && Value.compare l r > 0
  | Query.Ast.Leq -> Value.equal l r || (both_ints && Value.compare l r < 0)
  | Query.Ast.Geq -> Value.equal l r || (both_ints && Value.compare l r > 0)

let rec holds schema f x y =
  match f with
  | True -> true
  | False -> false
  | Not g -> not (holds schema g x y)
  | And (g, h) -> holds schema g x y && holds schema h x y
  | Or (g, h) -> holds schema g x y || holds schema h x y
  | Cmp (op, l, r) ->
    eval_cmp op (eval_operand schema x y l) (eval_operand schema x y r)

let to_rule schema f =
  match wf schema f with
  | Error e -> Error e
  | Ok () -> Ok (fun x y -> holds schema f x y)

(* --- printing --------------------------------------------------------------- *)

let pp_operand ppf = function
  | Fst a -> Format.fprintf ppf "t1.%s" a
  | Snd a -> Format.fprintf ppf "t2.%s" a
  | Const (Value.Name s) -> Format.fprintf ppf "'%s'" s
  | Const (Value.Int n) -> Format.pp_print_int ppf n

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, l, r) ->
    Format.fprintf ppf "%a %a %a" pp_operand l Query.Pretty.pp_cmp op pp_operand r
  | Not f -> Format.fprintf ppf "not %a" pp_protected f
  | And (f, g) -> Format.fprintf ppf "%a and %a" pp_protected f pp_protected g
  | Or (f, g) -> Format.fprintf ppf "%a or %a" pp_protected f pp_protected g

and pp_protected ppf f =
  match f with
  | True | False | Cmp _ -> pp ppf f
  | Not _ | And _ | Or _ -> Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
