open Graphs

type demand = { required : Vset.t; forbidden : Vset.t }

let of_clause ~rel_name ~index (clause : Query.Transform.ground_clause) =
  let resolve (r, t) =
    if not (String.equal r rel_name) then
      Error (Printf.sprintf "query mentions unknown relation %S" r)
    else Ok (index t)
  in
  let rec build required forbidden = function
    | [] -> Ok (Some { required; forbidden })
    | `Pos f :: rest -> (
      match resolve f with
      | Error e -> Error e
      | Ok None -> Ok None (* demanded fact not in the instance *)
      | Ok (Some v) -> build (Vset.add v required) forbidden rest)
    | `Neg f :: rest -> (
      match resolve f with
      | Error e -> Error e
      | Ok None -> build required forbidden rest (* vacuous *)
      | Ok (Some v) -> build required (Vset.add v forbidden) rest)
  in
  build Vset.empty Vset.empty
    (List.map (fun f -> `Pos f) clause.Query.Transform.positive
    @ List.map (fun f -> `Neg f) clause.Query.Transform.negative)
