type ty = TName | TInt

type attribute = { attr_name : string; attr_ty : ty }

type t = { name : string; attrs : attribute array }

let make name attributes =
  if attributes = [] then invalid_arg "Schema.make: no attributes";
  let names = List.map fst attributes in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Schema.make: duplicate attribute names";
  let attrs =
    Array.of_list
      (List.map (fun (attr_name, attr_ty) -> { attr_name; attr_ty }) attributes)
  in
  { name; attrs }

let name s = s.name
let arity s = Array.length s.attrs
let attributes s = Array.to_list s.attrs
let attribute_names s = List.map (fun a -> a.attr_name) (attributes s)

let position s attr =
  let rec loop i =
    if i >= Array.length s.attrs then None
    else if String.equal s.attrs.(i).attr_name attr then Some i
    else loop (i + 1)
  in
  loop 0

let position_exn s attr =
  match position s attr with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "schema %s has no attribute named %S" s.name attr)

let positions_exn s attrs = List.map (position_exn s) attrs

let pp_ty ppf = function
  | TName -> Format.pp_print_string ppf "name"
  | TInt -> Format.pp_print_string ppf "int"

let ty_at s i =
  if i < 0 || i >= Array.length s.attrs then invalid_arg "Schema.ty_at";
  s.attrs.(i).attr_ty

let attr_at s i =
  if i < 0 || i >= Array.length s.attrs then invalid_arg "Schema.attr_at";
  s.attrs.(i)

let equal s1 s2 =
  String.equal s1.name s2.name
  && Array.length s1.attrs = Array.length s2.attrs
  && Array.for_all2
       (fun a b -> String.equal a.attr_name b.attr_name && a.attr_ty = b.attr_ty)
       s1.attrs s2.attrs

let ty_to_poly = function TName -> `Name | TInt -> `Int

let pp ppf s =
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%a" a.attr_name pp_ty a.attr_ty))
    (attributes s)
