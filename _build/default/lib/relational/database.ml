module Smap = Map.Make (String)

type t = Relation.t Smap.t

let empty = Smap.empty

let add db r =
  let name = Schema.name (Relation.schema r) in
  if Smap.mem name db then
    invalid_arg (Printf.sprintf "Database.add: relation %s already present" name)
  else Smap.add name r db

let replace db r = Smap.add (Schema.name (Relation.schema r)) r db
let of_relations rs = List.fold_left add empty rs
let find db name = Smap.find_opt name db

let find_exn db name =
  match find db name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database: no relation named %S" name)

let mem db name = Smap.mem name db
let relations db = List.map snd (Smap.bindings db)
let names db = List.map fst (Smap.bindings db)

let total_tuples db =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations db)

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  List.iter (fun r -> Format.fprintf ppf "%a@," Relation.pp r) (relations db);
  Format.fprintf ppf "@]"
