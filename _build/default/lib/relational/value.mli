(** Attribute values.

    The paper works with two disjoint domains (§2): uninterpreted names D
    and natural numbers N. Constants with different names are different;
    [=], [≠], [<], [>] have their natural interpretation over N only. *)

type t =
  | Name of string  (** a constant from the uninterpreted domain D *)
  | Int of int  (** a natural number from N *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** A total order used for canonical storage; [Name _ < Int _] by
    convention. This is *not* the query-language [<], which is defined on
    numbers only — see {!lt}. *)

val lt : t -> t -> bool option
(** The query-language strict order: defined on numbers, undefined
    ([None]) when either side is a name. *)

val ty_matches : [ `Name | `Int ] -> t -> bool
val name : string -> t
val int : int -> t
val as_int : t -> int option
val as_name : t -> string option
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : [ `Name | `Int ] -> string -> (t, string) result
(** Parses according to the expected type; [Error] explains a mismatch
    (e.g. non-numeric text for [`Int]). *)

val hash : t -> int
