(** Multi-relation databases.

    The paper restricts itself to a single relation for clarity and notes
    (§2) that the framework extends to multiple relations along the lines
    of [7]: conflicts created by functional dependencies are always between
    tuples of the same relation, so the conflict graph of a database is the
    disjoint union of the per-relation conflict graphs. This module
    supplies the container; [Core.Conflict.build_database] exploits the
    disjointness. *)

type t

val empty : t

val add : t -> Relation.t -> t
(** Raises [Invalid_argument] when a relation with the same name is
    already present. *)

val replace : t -> Relation.t -> t
(** Adds, overwriting any same-named relation. *)

val of_relations : Relation.t list -> t

val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
val mem : t -> string -> bool
val relations : t -> Relation.t list
(** Sorted by relation name. *)

val names : t -> string list
val total_tuples : t -> int
val pp : Format.formatter -> t -> unit
