(** Relation instances.

    An instance is a finite set of tuples over a schema (set semantics, as
    in the paper). Insertion validates tuples against the schema, so a
    well-typed instance is an invariant of the type. *)

type t

val empty : Schema.t -> t

val of_tuples : Schema.t -> Tuple.t list -> t
(** Duplicates are collapsed. Raises [Invalid_argument] when a tuple does
    not conform to the schema. *)

val of_rows : Schema.t -> Value.t list list -> t
(** Convenience: each row becomes a tuple. *)

val schema : t -> Schema.t
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val add : t -> Tuple.t -> t
val remove : t -> Tuple.t -> t

val tuples : t -> Tuple.t list
(** In increasing {!Tuple.compare} order (canonical). *)

val tuple_array : t -> Tuple.t array
(** Same order as {!tuples}; a fresh array. The index of a tuple in this
    array is its vertex id in the conflict graph built from the instance. *)

val union : t -> t -> t
(** Set union; schemas must be equal ([Invalid_argument] otherwise).
    Models the source integration of Example 1, r = s1 ∪ s2 ∪ s3. *)

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val filter : (Tuple.t -> bool) -> t -> t
val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit

val restrict : t -> Tuple.t list -> t
(** Keep only the listed tuples (used to materialize a repair). *)

val active_domain : t -> Value.t list
(** All values occurring in the instance, de-duplicated and sorted. *)

val pp : Format.formatter -> t -> unit
