type t = Name of string | Int of int

let equal a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Name _, Int _ | Int _, Name _ -> false

let compare a b =
  match (a, b) with
  | Name x, Name y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Name _, Int _ -> -1
  | Int _, Name _ -> 1

let lt a b =
  match (a, b) with
  | Int x, Int y -> Some (x < y)
  | Name _, _ | _, Name _ -> None

let ty_matches ty v =
  match (ty, v) with
  | `Name, Name _ | `Int, Int _ -> true
  | `Name, Int _ | `Int, Name _ -> false

let name s = Name s
let int n = Int n
let as_int = function Int n -> Some n | Name _ -> None
let as_name = function Name s -> Some s | Int _ -> None

let pp ppf = function
  | Name s -> Format.fprintf ppf "'%s'" s
  | Int n -> Format.pp_print_int ppf n

let to_string = function Name s -> s | Int n -> string_of_int n

let of_string ty s =
  match ty with
  | `Name -> Ok (Name s)
  | `Int -> (
    match int_of_string_opt s with
    | Some n -> Ok (Int n)
    | None -> Error (Printf.sprintf "expected an integer, got %S" s))

let hash = function
  | Name s -> Hashtbl.hash (0, s)
  | Int n -> Hashtbl.hash (1, n)
