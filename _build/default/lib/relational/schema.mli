(** Relation schemas.

    A schema names a relation and lists its typed attributes (the paper's
    set U of attributes, each typed over D or N, §2). Attribute names are
    unique within a schema. *)

type ty = TName | TInt

type attribute = { attr_name : string; attr_ty : ty }

type t

val make : string -> (string * ty) list -> t
(** [make rel_name attributes]. Raises [Invalid_argument] on an empty
    attribute list or duplicate attribute names. *)

val name : t -> string
val arity : t -> int
val attributes : t -> attribute list
val attribute_names : t -> string list

val position : t -> string -> int option
(** Index of the named attribute, 0-based. *)

val position_exn : t -> string -> int
(** Like {!position}; raises [Invalid_argument] with context otherwise. *)

val positions_exn : t -> string list -> int list

val ty_at : t -> int -> ty

val attr_at : t -> int -> attribute

val equal : t -> t -> bool

val ty_to_poly : ty -> [ `Name | `Int ]

val pp : Format.formatter -> t -> unit
(** Prints as [R(A:name, B:int)]. *)
