module Tset = Set.Make (Tuple)

type t = { schema : Schema.t; tuples : Tset.t }

let empty schema = { schema; tuples = Tset.empty }

let check_tuple schema t =
  if not (Tuple.conforms schema t) then
    invalid_arg
      (Printf.sprintf "tuple %s does not conform to schema %s"
         (Tuple.to_string t) (Schema.name schema))

let add r t =
  check_tuple r.schema t;
  { r with tuples = Tset.add t r.tuples }

let of_tuples schema ts = List.fold_left add (empty schema) ts
let of_rows schema rows = of_tuples schema (List.map Tuple.make rows)
let schema r = r.schema
let cardinality r = Tset.cardinal r.tuples
let is_empty r = Tset.is_empty r.tuples
let mem r t = Tset.mem t r.tuples
let remove r t = { r with tuples = Tset.remove t r.tuples }
let tuples r = Tset.elements r.tuples
let tuple_array r = Array.of_list (tuples r)

let check_same_schema r1 r2 =
  if not (Schema.equal r1.schema r2.schema) then
    invalid_arg "Relation: schema mismatch"

let union r1 r2 =
  check_same_schema r1 r2;
  { r1 with tuples = Tset.union r1.tuples r2.tuples }

let inter r1 r2 =
  check_same_schema r1 r2;
  { r1 with tuples = Tset.inter r1.tuples r2.tuples }

let diff r1 r2 =
  check_same_schema r1 r2;
  { r1 with tuples = Tset.diff r1.tuples r2.tuples }

let subset r1 r2 =
  check_same_schema r1 r2;
  Tset.subset r1.tuples r2.tuples

let equal r1 r2 = Schema.equal r1.schema r2.schema && Tset.equal r1.tuples r2.tuples
let compare r1 r2 = Tset.compare r1.tuples r2.tuples
let filter p r = { r with tuples = Tset.filter p r.tuples }
let for_all p r = Tset.for_all p r.tuples
let exists p r = Tset.exists p r.tuples
let fold f r acc = Tset.fold f r.tuples acc
let iter f r = Tset.iter f r.tuples
let restrict r ts = of_tuples r.schema ts

let active_domain r =
  let values =
    fold (fun t acc -> List.rev_append (Tuple.values t) acc) r []
  in
  List.sort_uniq Value.compare values

let pp ppf r =
  Format.fprintf ppf "@[<v>%a = {@," Schema.pp r.schema;
  iter (fun t -> Format.fprintf ppf "  %a@," Tuple.pp t) r;
  Format.fprintf ppf "}@]"
