lib/relational/provenance.mli: Format Relation Tuple
