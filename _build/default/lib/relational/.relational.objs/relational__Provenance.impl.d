lib/relational/provenance.ml: Format List Map Option Relation Tuple
