lib/relational/database.mli: Format Relation
