lib/relational/value.ml: Format Hashtbl Int Printf String
