lib/relational/tuple.ml: Array Format Int List Schema Value
