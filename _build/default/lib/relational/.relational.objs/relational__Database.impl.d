lib/relational/database.ml: Format List Map Printf Relation Schema String
