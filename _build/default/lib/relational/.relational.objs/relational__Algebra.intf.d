lib/relational/algebra.mli: Format Relation Tuple Value
