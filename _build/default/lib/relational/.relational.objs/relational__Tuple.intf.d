lib/relational/tuple.mli: Format Schema Value
