lib/relational/value.mli: Format
