lib/relational/relation.ml: Array Format List Printf Schema Set Tuple Value
