lib/relational/algebra.ml: Array Format Hashtbl List Option Printf Relation Schema String Tuple Value
