lib/relational/schema.ml: Array Format List Printf String
