type t = Value.t array

let make values = Array.of_list values
let of_array a = Array.copy a
let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Tuple.get: out of range";
  t.(i)

let values t = Array.to_list t
let project t positions = List.map (get t) positions

let agree_on t1 t2 positions =
  List.for_all (fun i -> Value.equal (get t1 i) (get t2 i)) positions

let conforms schema t =
  Array.length t = Schema.arity schema
  && Array.for_all
       (fun ok -> ok)
       (Array.mapi
          (fun i v ->
            Value.ty_matches (Schema.ty_to_poly (Schema.ty_at schema i)) v)
          t)

let equal t1 t2 =
  Array.length t1 = Array.length t2
  && Array.for_all2 Value.equal t1 t2

let compare t1 t2 =
  let c = Int.compare (Array.length t1) (Array.length t2) in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= Array.length t1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Array.fold_left (fun acc v -> (acc * 1000003) + Value.hash v) 0 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (values t)

let to_string t = Format.asprintf "%a" pp t
