(** Tuples.

    A tuple is an immutable vector of values. Tuples are compared
    structurally; the order is the lexicographic lift of {!Value.compare},
    used for canonical storage in relations and for assigning stable vertex
    ids in conflict graphs. *)

type t

val make : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied. *)

val arity : t -> int

val get : t -> int -> Value.t
(** [get t i] is the value of the [i]-th attribute (0-based).
    Raises [Invalid_argument] when out of range. *)

val values : t -> Value.t list

val project : t -> int list -> Value.t list
(** [project t [i; j]] is [[get t i; get t j]] — the paper's t[X]. *)

val agree_on : t -> t -> int list -> bool
(** Whether two tuples coincide on every listed position. *)

val conforms : Schema.t -> t -> bool
(** Arity matches and every value has the attribute's type. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Prints as [('Mary', 'R&D', 40000, 3)]. *)
