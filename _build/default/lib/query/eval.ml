open Relational

module Smap = Map.Make (String)

let active_domain db q =
  let db_values =
    List.concat_map Relation.active_domain (Database.relations db)
  in
  List.sort_uniq Value.compare (Ast.constants q @ db_values)

let check db q =
  let rec go = function
    | Ast.True | Ast.False | Ast.Cmp _ -> Ok ()
    | Ast.Atom (r, ts) -> (
      match Database.find db r with
      | None -> Error (Printf.sprintf "unknown relation %S" r)
      | Some rel ->
        let arity = Schema.arity (Relation.schema rel) in
        if List.length ts <> arity then
          Error
            (Printf.sprintf "atom %s has %d terms but the relation has arity %d"
               r (List.length ts) arity)
        else Ok ())
    | Ast.Not f | Ast.Exists (_, f) | Ast.Forall (_, f) -> go f
    | Ast.And (f, g) | Ast.Or (f, g) | Ast.Implies (f, g) -> (
      match go f with Ok () -> go g | Error _ as e -> e)
  in
  go q

let resolve env = function
  | Ast.Const v -> v
  | Ast.Var x -> (
    match Smap.find_opt x env with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "unbound variable %S" x))

(* Order predicates are the natural order on N; names are unordered. *)
let eval_cmp op l r =
  let both_ints =
    match (l, r) with Value.Int _, Value.Int _ -> true | _, _ -> false
  in
  match op with
  | Ast.Eq -> Value.equal l r
  | Ast.Neq -> not (Value.equal l r)
  | Ast.Lt -> both_ints && Value.compare l r < 0
  | Ast.Gt -> both_ints && Value.compare l r > 0
  | Ast.Leq -> Value.equal l r || (both_ints && Value.compare l r < 0)
  | Ast.Geq -> Value.equal l r || (both_ints && Value.compare l r > 0)

let rec eval db dom env = function
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Atom (r, ts) ->
    let rel = Database.find_exn db r in
    let row = List.map (resolve env) ts in
    let tuple = Tuple.make row in
    Tuple.conforms (Relation.schema rel) tuple && Relation.mem rel tuple
  | Ast.Cmp (op, a, b) -> eval_cmp op (resolve env a) (resolve env b)
  | Ast.Not f -> not (eval db dom env f)
  | Ast.And (f, g) -> eval db dom env f && eval db dom env g
  | Ast.Or (f, g) -> eval db dom env f || eval db dom env g
  | Ast.Implies (f, g) -> (not (eval db dom env f)) || eval db dom env g
  | Ast.Exists (xs, f) -> eval_exists db dom env xs f
  | Ast.Forall (xs, f) ->
    not (eval_exists db dom env xs (Ast.Not f))

and eval_exists db dom env xs f =
  match xs with
  | [] -> eval db dom env f
  | x :: rest ->
    List.exists (fun v -> eval_exists db dom (Smap.add x v env) rest f) dom

let holds db q =
  (match check db q with Ok () -> () | Error e -> invalid_arg e);
  match Ast.free_vars q with
  | [] -> eval db (active_domain db q) Smap.empty q
  | v :: _ ->
    invalid_arg (Printf.sprintf "Eval.holds: query has free variable %S" v)

let answers db q =
  (match check db q with Ok () -> () | Error e -> invalid_arg e);
  let dom = active_domain db q in
  let free = Ast.free_vars q in
  let rec assignments = function
    | [] -> [ Smap.empty ]
    | x :: rest ->
      let tails = assignments rest in
      List.concat_map (fun v -> List.map (Smap.add x v) tails) dom
  in
  let rows =
    List.filter_map
      (fun env ->
        if eval db dom env q then
          Some (List.map (fun x -> Smap.find x env) free)
        else None)
      (assignments free)
  in
  (free, List.sort_uniq (List.compare Value.compare) rows)

let as_db r = Database.of_relations [ r ]
let holds_relation r q = holds (as_db r) q
let answers_relation r q = answers (as_db r) q
