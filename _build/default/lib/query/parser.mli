(** Recursive-descent parser for first-order queries.

    Grammar (lowest to highest precedence; [implies] is right-associative,
    quantifiers extend as far right as possible):

    {v
    formula    ::= quantified
    quantified ::= ("exists" | "forall") var ("," var)* "." quantified
                 | implication
    implication::= disjunction ["implies" implication]
    disjunction::= conjunction ("or" conjunction)*
    conjunction::= negation ("and" negation)*
    negation   ::= "not" negation | quantified | atom
    atom       ::= "true" | "false" | "(" formula ")"
                 | IDENT "(" term ("," term)* ")"
                 | term cmp term
    term       ::= IDENT | INT | "'" chars "'"
    cmp        ::= "=" | "!=" | "<>" | "<" | ">" | "<=" | ">="
    v}

    Bare identifiers are variables; name constants must be quoted. Example
    (the paper's Q1):

    {[ "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and \
        Mgr('John',x2,y2,z2) and y1 < y2" ]} *)

val parse : string -> (Ast.t, string) result

val parse_exn : string -> Ast.t
(** Raises [Invalid_argument] with the parse error. Convenient in examples
    and tests where the query text is a trusted literal. *)
