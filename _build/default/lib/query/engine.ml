open Relational

let holds db q =
  match Plan.holds db q with Some answer -> answer | None -> Eval.holds db q

let answers db q =
  match Plan.answers db q with Some result -> result | None -> Eval.answers db q

let as_db r = Database.of_relations [ r ]
let holds_relation r q = holds (as_db r) q
let answers_relation r q = answers (as_db r) q
let planned db q = Plan.supported db q
