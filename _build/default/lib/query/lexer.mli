(** Lexer for the concrete query syntax.

    Tokens: identifiers (variables and relation names), quoted name
    constants ['Mary'], integer literals, punctuation, comparison
    operators, and the case-insensitive keywords [exists], [forall],
    [and], [or], [not], [implies], [true], [false]. *)

type token =
  | IDENT of string
  | NAME of string  (** quoted constant, quotes stripped *)
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | GT
  | LEQ
  | GEQ
  | KW_EXISTS
  | KW_FORALL
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IMPLIES
  | KW_TRUE
  | KW_FALSE
  | EOF

val tokenize : string -> (token list, string) result
(** Errors carry a character position, e.g.
    ["lexical error at offset 12: unexpected character '%'"]. *)

val token_to_string : token -> string
