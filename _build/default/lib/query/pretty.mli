(** Printing queries in the concrete syntax accepted by {!Parser}. *)

val pp_term : Format.formatter -> Ast.term -> unit
val pp_cmp : Format.formatter -> Ast.cmp -> unit

val pp : Format.formatter -> Ast.t -> unit
(** Fully parenthesizes binary connectives, so output always re-parses to
    an equal AST. *)

val to_string : Ast.t -> string
