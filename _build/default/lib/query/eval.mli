(** Model-theoretic query evaluation.

    An instance is a finite first-order structure (paper, §2); [r ⊨ Q] is
    evaluated with quantifiers ranging over the {e active domain}: every
    value occurring in the database plus every constant of the query. For
    the generic queries of the paper this coincides with the natural
    semantics; it is the standard finite-model evaluation used by CQA
    systems. The order predicates [<], [>] hold only between numbers
    (names are unordered, per §2), and [=] across the two domains is
    false. *)

open Relational

val holds : Database.t -> Ast.t -> bool
(** [holds db q] is [db ⊨ q] for a closed query. Raises
    [Invalid_argument] when [q] has free variables, mentions an unknown
    relation, or uses an atom with the wrong arity. *)

val holds_relation : Relation.t -> Ast.t -> bool
(** Single-relation convenience (the paper's setting): the relation is
    addressed by its schema name. *)

val answers : Database.t -> Ast.t -> string list * Value.t list list
(** Open-query evaluation: returns the free variables (sorted) and the
    list of satisfying assignments, each listing values in the same order,
    sorted and de-duplicated. A closed query yields [([], [[]])] when it
    holds and [([], [])] otherwise. *)

val answers_relation : Relation.t -> Ast.t -> string list * Value.t list list

val active_domain : Database.t -> Ast.t -> Value.t list
(** The evaluation range: database values plus query constants. *)

val check : Database.t -> Ast.t -> (unit, string) result
(** Static well-formedness: every atom names an existing relation with
    matching arity. *)
