type token =
  | IDENT of string
  | NAME of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | GT
  | LEQ
  | GEQ
  | KW_EXISTS
  | KW_FORALL
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IMPLIES
  | KW_TRUE
  | KW_FALSE
  | EOF

let keyword s =
  match String.lowercase_ascii s with
  | "exists" -> Some KW_EXISTS
  | "forall" -> Some KW_FORALL
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "implies" -> Some KW_IMPLIES
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let error i msg = Error (Printf.sprintf "lexical error at offset %d: %s" i msg) in
  let rec loop i acc =
    if i >= n then Ok (List.rev (EOF :: acc))
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1) acc
      else if c = '(' then loop (i + 1) (LPAREN :: acc)
      else if c = ')' then loop (i + 1) (RPAREN :: acc)
      else if c = ',' then loop (i + 1) (COMMA :: acc)
      else if c = '.' then loop (i + 1) (DOT :: acc)
      else if c = '=' then loop (i + 1) (EQ :: acc)
      else if c = '!' then
        if i + 1 < n && input.[i + 1] = '=' then loop (i + 2) (NEQ :: acc)
        else error i "expected '=' after '!'"
      else if c = '<' then
        if i + 1 < n && input.[i + 1] = '=' then loop (i + 2) (LEQ :: acc)
        else if i + 1 < n && input.[i + 1] = '>' then loop (i + 2) (NEQ :: acc)
        else loop (i + 1) (LT :: acc)
      else if c = '>' then
        if i + 1 < n && input.[i + 1] = '=' then loop (i + 2) (GEQ :: acc)
        else loop (i + 1) (GT :: acc)
      else if c = '\'' then
        let rec scan j =
          if j >= n then error i "unterminated quoted name"
          else if input.[j] = '\'' then begin
            let s = String.sub input (i + 1) (j - i - 1) in
            loop (j + 1) (NAME s :: acc)
          end
          else scan (j + 1)
        in
        scan (i + 1)
      else if is_digit c then
        let rec scan j = if j < n && is_digit input.[j] then scan (j + 1) else j in
        let j = scan i in
        loop j (INT (int_of_string (String.sub input i (j - i))) :: acc)
      else if is_ident_start c then
        let rec scan j =
          if j < n && is_ident_char input.[j] then scan (j + 1) else j
        in
        let j = scan i in
        let word = String.sub input i (j - i) in
        let tok = match keyword word with Some k -> k | None -> IDENT word in
        loop j (tok :: acc)
      else error i (Printf.sprintf "unexpected character %C" c)
  in
  loop 0 []

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NAME s -> Printf.sprintf "'%s'" s
  | INT n -> string_of_int n
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | GT -> ">"
  | LEQ -> "<="
  | GEQ -> ">="
  | KW_EXISTS -> "exists"
  | KW_FORALL -> "forall"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_IMPLIES -> "implies"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | EOF -> "end of input"
