open Relational

type compiled = Plan of Algebra.t * string list | Always_false

(* --- flattening the fragment ---------------------------------------------- *)

type conjunct = CAtom of string * Ast.term list | CCmp of Ast.cmp * Ast.term * Ast.term

exception Unsupported of string

let rec flatten bound = function
  | Ast.Exists (xs, f) -> flatten (xs @ bound) f
  | f ->
    let rec conjuncts = function
      | Ast.And (f, g) -> conjuncts f @ conjuncts g
      | Ast.Atom (r, ts) -> [ CAtom (r, ts) ]
      | Ast.Cmp (op, a, b) -> [ CCmp (op, a, b) ]
      | Ast.True -> []
      | Ast.False | Ast.Or _ | Ast.Not _ | Ast.Implies _ | Ast.Exists _
      | Ast.Forall _ ->
        raise (Unsupported "not an existential-conjunctive query")
    in
    (bound, conjuncts f)

(* --- type bookkeeping ------------------------------------------------------- *)

let term_ty schema i = Schema.ty_to_poly (Schema.ty_at schema i)

let cmp_to_algebra = function
  | Ast.Eq -> Algebra.Eq
  | Ast.Neq -> Algebra.Neq
  | Ast.Lt -> Algebra.Lt
  | Ast.Gt -> Algebra.Gt
  | Ast.Leq -> Algebra.Leq
  | Ast.Geq -> Algebra.Geq

(* --- compiling one atom ------------------------------------------------------ *)

(* Leaf plan for R(t̄): constant selections and intra-atom repeated
   variables pushed into a Select; returns the variable→column map and the
   column types. *)
let compile_atom db r ts =
  let rel =
    match Database.find db r with
    | Some rel -> rel
    | None -> raise (Unsupported (Printf.sprintf "unknown relation %S" r))
  in
  let schema = Relation.schema rel in
  if List.length ts <> Schema.arity schema then
    raise
      (Unsupported
         (Printf.sprintf "atom %s has arity %d, expected %d" r (List.length ts)
            (Schema.arity schema)));
  let sels = ref [] in
  let var_cols = Hashtbl.create 8 in
  let unsat = ref false in
  List.iteri
    (fun i t ->
      match t with
      | Ast.Const v ->
        let v_ty = match v with Value.Name _ -> `Name | Value.Int _ -> `Int in
        if term_ty schema i <> v_ty then unsat := true
        else sels := Algebra.Const_cmp (Algebra.Eq, i, v) :: !sels
      | Ast.Var x -> (
        match Hashtbl.find_opt var_cols x with
        | None -> Hashtbl.replace var_cols x i
        | Some j -> sels := Algebra.Attr_cmp (Algebra.Eq, i, j) :: !sels))
    ts;
  let plan =
    if !sels = [] then Algebra.Rel rel
    else Algebra.Select (Algebra.Conj !sels, Algebra.Rel rel)
  in
  let types = List.init (Schema.arity schema) (fun i -> term_ty schema i) in
  (plan, var_cols, types, !unsat)

(* --- joining atoms ------------------------------------------------------------ *)

type acc = {
  plan : Algebra.t;
  cols : (string, int) Hashtbl.t;  (* variable -> column in [plan] *)
  types : [ `Name | `Int ] list;
}

let join_step acc (plan, var_cols, types, _) =
  let pairs =
    Hashtbl.fold
      (fun x j pairs ->
        match Hashtbl.find_opt acc.cols x with
        | Some i -> (i, j) :: pairs
        | None -> pairs)
      var_cols []
  in
  let offset = List.length acc.types in
  let cols = Hashtbl.copy acc.cols in
  Hashtbl.iter
    (fun x j -> if not (Hashtbl.mem cols x) then Hashtbl.replace cols x (offset + j))
    var_cols;
  { plan = Algebra.Join (pairs, acc.plan, plan); cols; types = acc.types @ types }

(* --- comparisons ---------------------------------------------------------------- *)

(* Adding a comparison to the accumulated plan. Cross-domain and
   name-ordering cases simplify statically:
   - Eq/Lt/Gt/Leq/Geq across domains: unsatisfiable;
   - Neq across domains: vacuous;
   - Lt/Gt between names: unsatisfiable; Leq/Geq between names: = / =. *)
exception Clause_false

let operand acc = function
  | Ast.Const v ->
    `Const (v, match v with Value.Name _ -> `Name | Value.Int _ -> `Int)
  | Ast.Var x -> (
    match Hashtbl.find_opt acc.cols x with
    | Some i -> `Col (i, List.nth acc.types i)
    | None ->
      raise
        (Unsupported
           (Printf.sprintf "variable %S occurs only in comparisons (unsafe)" x)))

let static_cmp op l r =
  let c = Value.compare l r in
  match op with
  | Ast.Eq -> Value.equal l r
  | Ast.Neq -> not (Value.equal l r)
  | Ast.Lt -> c < 0
  | Ast.Gt -> c > 0
  | Ast.Leq -> c <= 0
  | Ast.Geq -> c >= 0

let add_comparison acc (op, a, b) =
  let name_order op =
    (* comparisons between two name-typed operands *)
    match op with
    | Ast.Lt | Ast.Gt -> raise Clause_false
    | Ast.Leq | Ast.Geq -> Ast.Eq
    | Ast.Eq | Ast.Neq -> op
  in
  let cross_domain op =
    match op with
    | Ast.Neq -> None (* vacuously true *)
    | Ast.Eq | Ast.Lt | Ast.Gt | Ast.Leq | Ast.Geq -> raise Clause_false
  in
  let sel =
    match (operand acc a, operand acc b) with
    | `Const (l, _), `Const (r, _) ->
      let truth =
        match (l, r) with
        | Value.Int _, Value.Name _ | Value.Name _, Value.Int _ -> (
          match op with Ast.Neq -> true | _ -> false)
        | Value.Name _, Value.Name _ -> (
          match op with
          | Ast.Lt | Ast.Gt -> false
          | Ast.Leq | Ast.Geq -> Value.equal l r
          | _ -> static_cmp op l r)
        | Value.Int _, Value.Int _ -> static_cmp op l r
      in
      if truth then None else raise Clause_false
    | `Col (i, ti), `Col (j, tj) ->
      if ti <> tj then cross_domain op
      else
        let op = if ti = `Name then name_order op else op in
        Some (Algebra.Attr_cmp (cmp_to_algebra op, i, j))
    | `Col (i, ti), `Const (v, tv) ->
      if ti <> tv then cross_domain op
      else
        let op = if ti = `Name then name_order op else op in
        Some (Algebra.Const_cmp (cmp_to_algebra op, i, v))
    | `Const (v, tv), `Col (i, ti) ->
      if ti <> tv then cross_domain op
      else
        let flip = function
          | Ast.Lt -> Ast.Gt
          | Ast.Gt -> Ast.Lt
          | Ast.Leq -> Ast.Geq
          | Ast.Geq -> Ast.Leq
          | (Ast.Eq | Ast.Neq) as o -> o
        in
        let op = flip op in
        let op = if ti = `Name then name_order op else op in
        Some (Algebra.Const_cmp (cmp_to_algebra op, i, v))
  in
  match sel with
  | None -> acc
  | Some sel -> { acc with plan = Algebra.Select (sel, acc.plan) }

(* --- putting it together ----------------------------------------------------------- *)

let compile db q =
  try
    let bound, conjuncts = flatten [] q in
    ignore bound;
    let atoms =
      List.filter_map (function CAtom (r, ts) -> Some (r, ts) | CCmp _ -> None)
        conjuncts
    in
    let cmps =
      List.filter_map
        (function CCmp (op, a, b) -> Some (op, a, b) | CAtom _ -> None)
        conjuncts
    in
    if atoms = [] then raise (Unsupported "no relational atoms");
    let compiled_atoms = List.map (fun (r, ts) -> compile_atom db r ts) atoms in
    if List.exists (fun (_, _, _, unsat) -> unsat) compiled_atoms then Ok Always_false
    else begin
      (* greedy join order: start from the first atom, repeatedly pick an
         atom sharing a variable with the accumulated plan (cartesian
         product only when the query is disconnected) *)
      let shares_var acc (_, var_cols, _, _) =
        Hashtbl.fold (fun x _ found -> found || Hashtbl.mem acc.cols x) var_cols false
      in
      match compiled_atoms with
      | [] -> assert false
      | (plan, var_cols, types, _) :: rest ->
        let acc = ref { plan; cols = Hashtbl.copy var_cols; types } in
        let pending = ref rest in
        while !pending <> [] do
          let connected, others =
            List.partition (shares_var !acc) !pending
          in
          let next, others =
            match (connected, others) with
            | next :: more, others -> (next, more @ others)
            | [], next :: more -> (next, more)
            | [], [] -> assert false
          in
          acc := join_step !acc next;
          pending := others
        done;
        let acc = List.fold_left add_comparison !acc cmps in
        let free = Ast.free_vars q in
        let missing =
          List.filter (fun x -> not (Hashtbl.mem acc.cols x)) free
        in
        (match missing with
        | x :: _ ->
          raise (Unsupported (Printf.sprintf "free variable %S not bound by an atom" x))
        | [] -> ());
        if free = [] then Ok (Plan (acc.plan, []))
        else begin
          let projection = List.map (fun x -> Hashtbl.find acc.cols x) free in
          Ok (Plan (Algebra.Project (projection, acc.plan), free))
        end
    end
  with
  | Unsupported m -> Error m
  | Clause_false -> Ok Always_false

let holds db q =
  if not (Ast.is_closed q) then None
  else
    match compile db q with
    | Error _ -> None
    | Ok Always_false -> Some false
    | Ok (Plan (plan, _)) -> Some (not (Algebra.is_empty plan))

let answers db q =
  match compile db q with
  | Error _ -> None
  | Ok Always_false -> Some (Ast.free_vars q, [])
  | Ok (Plan (plan, [])) ->
    (* closed query: one empty row iff it holds, as in Eval.answers *)
    Some ([], if Algebra.is_empty plan then [] else [ [] ])
  | Ok (Plan (plan, free)) ->
    let result = Algebra.eval plan in
    let rows =
      Relation.fold (fun t acc -> Tuple.values t :: acc) result []
    in
    Some (free, List.sort_uniq (List.compare Value.compare) rows)

let supported db q = Result.is_ok (compile db q)
