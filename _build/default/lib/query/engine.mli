(** The query engine: planner with evaluator fallback.

    Safe existential-conjunctive queries run through the algebraic
    {!Plan} (hash joins); everything else falls back to the active-domain
    {!Eval}. Both agree on the fragment (cross-validated by the test
    suite), so callers get one semantics and the best available speed. *)

open Relational

val holds : Database.t -> Ast.t -> bool
(** Closed queries; raises like {!Eval.holds} on ill-formed input. *)

val holds_relation : Relation.t -> Ast.t -> bool

val answers : Database.t -> Ast.t -> string list * Value.t list list

val answers_relation : Relation.t -> Ast.t -> string list * Value.t list list

val planned : Database.t -> Ast.t -> bool
(** Whether the query runs through the planner (diagnostics). *)
