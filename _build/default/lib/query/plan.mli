(** Compiling conjunctive queries to relational algebra.

    The naive evaluator ranges quantifiers over the active domain — fine
    for the theory, wasteful for the common case. This planner compiles
    the {e safe existential-conjunctive fragment}

    {v [exists x̄.] A₁ and … and Aₖ and c₁ and … and cₘ v}

    (atoms Aᵢ, comparisons cⱼ whose variables all occur in atoms) into an
    {!Relational.Algebra} expression: one leaf per atom with pushed-down
    constant selections, greedy join ordering along shared variables, and
    a final projection onto the free variables. Everything outside the
    fragment is rejected so callers can fall back to {!Eval}; inside the
    fragment the plan computes exactly the active-domain semantics
    (every variable is bound by an atom). *)

open Relational

type compiled =
  | Plan of Algebra.t * string list
      (** algebra expression whose columns are the sorted free variables *)
  | Always_false
      (** the conjunction contains an unsatisfiable comparison (e.g. an
          order comparison between name-typed attributes) *)

val compile : Database.t -> Ast.t -> (compiled, string) result
(** [Error] when the query lies outside the supported fragment or
    mentions unknown relations / wrong arities. *)

val holds : Database.t -> Ast.t -> bool option
(** [Some answer] for closed queries in the fragment, [None] otherwise. *)

val answers : Database.t -> Ast.t -> (string list * Value.t list list) option
(** Open-query evaluation in the fragment: sorted free variables and the
    sorted, de-duplicated satisfying rows. *)

val supported : Database.t -> Ast.t -> bool
