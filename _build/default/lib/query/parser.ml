open Relational

exception Parse_error of string

(* The token stream is threaded explicitly; each production returns the
   parsed value and the remaining tokens. *)

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let expect tok = function
  | t :: rest when t = tok -> rest
  | t :: _ ->
    fail "expected %s but found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string t)
  | [] -> fail "unexpected end of token stream"

let parse_var = function
  | Lexer.IDENT x :: rest -> (x, rest)
  | t :: _ -> fail "expected a variable but found %s" (Lexer.token_to_string t)
  | [] -> fail "unexpected end of token stream"

let parse_term = function
  | Lexer.IDENT x :: rest -> (Ast.Var x, rest)
  | Lexer.INT n :: rest -> (Ast.Const (Value.Int n), rest)
  | Lexer.NAME s :: rest -> (Ast.Const (Value.Name s), rest)
  | t :: _ -> fail "expected a term but found %s" (Lexer.token_to_string t)
  | [] -> fail "unexpected end of token stream"

let parse_cmp = function
  | Lexer.EQ :: rest -> (Ast.Eq, rest)
  | Lexer.NEQ :: rest -> (Ast.Neq, rest)
  | Lexer.LT :: rest -> (Ast.Lt, rest)
  | Lexer.GT :: rest -> (Ast.Gt, rest)
  | Lexer.LEQ :: rest -> (Ast.Leq, rest)
  | Lexer.GEQ :: rest -> (Ast.Geq, rest)
  | t :: _ ->
    fail "expected a comparison operator but found %s" (Lexer.token_to_string t)
  | [] -> fail "unexpected end of token stream"

let rec parse_formula tokens = parse_quantified tokens

and parse_quantified tokens =
  match tokens with
  | Lexer.KW_EXISTS :: rest ->
    let xs, rest = parse_var_list rest in
    let rest = expect Lexer.DOT rest in
    let body, rest = parse_quantified rest in
    (Ast.Exists (xs, body), rest)
  | Lexer.KW_FORALL :: rest ->
    let xs, rest = parse_var_list rest in
    let rest = expect Lexer.DOT rest in
    let body, rest = parse_quantified rest in
    (Ast.Forall (xs, body), rest)
  | _ -> parse_implication tokens

and parse_var_list tokens =
  let x, rest = parse_var tokens in
  match rest with
  | Lexer.COMMA :: rest ->
    let xs, rest = parse_var_list rest in
    (x :: xs, rest)
  | _ -> ([ x ], rest)

and parse_implication tokens =
  let lhs, rest = parse_disjunction tokens in
  match rest with
  | Lexer.KW_IMPLIES :: rest ->
    let rhs, rest = parse_implication rest in
    (Ast.Implies (lhs, rhs), rest)
  | _ -> (lhs, rest)

and parse_disjunction tokens =
  let first, rest = parse_conjunction tokens in
  let rec loop acc tokens =
    match tokens with
    | Lexer.KW_OR :: rest ->
      let next, rest = parse_conjunction rest in
      loop (Ast.Or (acc, next)) rest
    | _ -> (acc, tokens)
  in
  loop first rest

and parse_conjunction tokens =
  let first, rest = parse_negation tokens in
  let rec loop acc tokens =
    match tokens with
    | Lexer.KW_AND :: rest ->
      let next, rest = parse_negation rest in
      loop (Ast.And (acc, next)) rest
    | _ -> (acc, tokens)
  in
  loop first rest

and parse_negation tokens =
  match tokens with
  | Lexer.KW_NOT :: rest ->
    let f, rest = parse_negation rest in
    (Ast.Not f, rest)
  (* Quantifiers may start an operand and then extend as far right as
     possible: [A and exists x. B or C] is [A and (exists x. (B or C))]. *)
  | Lexer.KW_EXISTS :: _ | Lexer.KW_FORALL :: _ -> parse_quantified tokens
  | _ -> parse_atom tokens

and parse_atom tokens =
  match tokens with
  | Lexer.KW_TRUE :: rest -> (Ast.True, rest)
  | Lexer.KW_FALSE :: rest -> (Ast.False, rest)
  | Lexer.LPAREN :: rest ->
    let f, rest = parse_formula rest in
    (f, expect Lexer.RPAREN rest)
  | Lexer.IDENT r :: Lexer.LPAREN :: rest ->
    let ts, rest = parse_term_list rest in
    (Ast.Atom (r, ts), expect Lexer.RPAREN rest)
  | _ ->
    let left, rest = parse_term tokens in
    let op, rest = parse_cmp rest in
    let right, rest = parse_term rest in
    (Ast.Cmp (op, left, right), rest)

and parse_term_list tokens =
  let t, rest = parse_term tokens in
  match rest with
  | Lexer.COMMA :: rest ->
    let ts, rest = parse_term_list rest in
    (t :: ts, rest)
  | _ -> ([ t ], rest)

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
    try
      let f, rest = parse_formula tokens in
      match rest with
      | [ Lexer.EOF ] -> Ok f
      | t :: _ ->
        Error
          (Printf.sprintf "parse error: trailing input starting at %s"
             (Lexer.token_to_string t))
      | [] -> Error "parse error: token stream ended without EOF"
    with Parse_error msg -> Error (Printf.sprintf "parse error: %s" msg))

let parse_exn input =
  match parse input with Ok f -> f | Error e -> invalid_arg e
