open Relational

let pp_term ppf = function
  | Ast.Var x -> Format.pp_print_string ppf x
  | Ast.Const (Value.Name s) -> Format.fprintf ppf "'%s'" s
  | Ast.Const (Value.Int n) -> Format.pp_print_int ppf n

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Ast.Eq -> "="
    | Ast.Neq -> "!="
    | Ast.Lt -> "<"
    | Ast.Gt -> ">"
    | Ast.Leq -> "<="
    | Ast.Geq -> ">=")

let pp_vars ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Format.pp_print_string ppf xs

let rec pp ppf = function
  | Ast.True -> Format.pp_print_string ppf "true"
  | Ast.False -> Format.pp_print_string ppf "false"
  | Ast.Atom (r, ts) ->
    Format.fprintf ppf "%s(%a)" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_term)
      ts
  | Ast.Cmp (op, a, b) ->
    Format.fprintf ppf "%a %a %a" pp_term a pp_cmp op pp_term b
  | Ast.Not f -> Format.fprintf ppf "not %a" pp_protected f
  | Ast.And (f, g) ->
    Format.fprintf ppf "%a and %a" pp_protected f pp_protected g
  | Ast.Or (f, g) -> Format.fprintf ppf "%a or %a" pp_protected f pp_protected g
  | Ast.Implies (f, g) ->
    Format.fprintf ppf "%a implies %a" pp_protected f pp_protected g
  | Ast.Exists (xs, f) ->
    Format.fprintf ppf "exists %a. %a" pp_vars xs pp f
  | Ast.Forall (xs, f) ->
    Format.fprintf ppf "forall %a. %a" pp_vars xs pp f

and pp_protected ppf f =
  match f with
  | Ast.True | Ast.False | Ast.Atom _ | Ast.Cmp _ -> pp ppf f
  | Ast.Not _ | Ast.And _ | Ast.Or _ | Ast.Implies _ | Ast.Exists _
  | Ast.Forall _ ->
    Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
