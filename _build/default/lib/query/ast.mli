(** First-order queries.

    The paper's query language (§2): first-order formulas over the alphabet
    of relation symbols and the binary relation symbols [=], [≠], [<], [>]
    (we also provide [≤], [≥] as derived forms). Closed queries are the
    object of (preferred) consistent query answering; open queries are
    supported along the lines of [1, 7] — see {!Eval.answers}. *)

open Relational

type term = Var of string | Const of Value.t

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type t =
  | True
  | False
  | Atom of string * term list  (** [Atom (r, ts)] is the atom r(ts) *)
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

val free_vars : t -> string list
(** Sorted, de-duplicated. *)

val is_closed : t -> bool

val is_quantifier_free : t -> bool
(** No [Exists]/[Forall] — the paper's {∀,∃}-free class (Figure 5). *)

val is_ground : t -> bool
(** Quantifier-free and without variables. *)

val constants : t -> Value.t list
(** Sorted, de-duplicated. *)

val substitute : (string * Value.t) list -> t -> t
(** Capture is impossible since substituends are constants; bound
    variables shadow the substitution. *)

val conj : t list -> t
(** [conj []] is [True]. *)

val disj : t list -> t
(** [disj []] is [False]. *)

val exists : string list -> t -> t
(** [exists [] f] is [f]. *)

val forall : string list -> t -> t

val negate_cmp : cmp -> cmp
(** [¬(a op b)] as a comparison: e.g. [negate_cmp Lt = Geq]. *)

val equal : t -> t -> bool

val size : t -> int
(** Number of AST nodes. *)
