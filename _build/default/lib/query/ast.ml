open Relational

type term = Var of string | Const of Value.t

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type t =
  | True
  | False
  | Atom of string * term list
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

let term_vars = function Var x -> [ x ] | Const _ -> []

let rec vars = function
  | True | False -> []
  | Atom (_, ts) -> List.concat_map term_vars ts
  | Cmp (_, a, b) -> term_vars a @ term_vars b
  | Not f -> vars f
  | And (f, g) | Or (f, g) | Implies (f, g) -> vars f @ vars g
  | Exists (xs, f) | Forall (xs, f) ->
    List.filter (fun v -> not (List.mem v xs)) (vars f)

let free_vars f = List.sort_uniq String.compare (vars f)
let is_closed f = free_vars f = []

let rec is_quantifier_free = function
  | True | False | Atom _ | Cmp _ -> true
  | Not f -> is_quantifier_free f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
    is_quantifier_free f && is_quantifier_free g
  | Exists _ | Forall _ -> false

let rec has_vars = function
  | True | False -> false
  | Atom (_, ts) -> List.exists (function Var _ -> true | Const _ -> false) ts
  | Cmp (_, a, b) ->
    (match (a, b) with Var _, _ | _, Var _ -> true | Const _, Const _ -> false)
  | Not f -> has_vars f
  | And (f, g) | Or (f, g) | Implies (f, g) -> has_vars f || has_vars g
  | Exists _ | Forall _ -> true

let is_ground f = is_quantifier_free f && not (has_vars f)

let term_consts = function Var _ -> [] | Const v -> [ v ]

let rec consts = function
  | True | False -> []
  | Atom (_, ts) -> List.concat_map term_consts ts
  | Cmp (_, a, b) -> term_consts a @ term_consts b
  | Not f -> consts f
  | And (f, g) | Or (f, g) | Implies (f, g) -> consts f @ consts g
  | Exists (_, f) | Forall (_, f) -> consts f

let constants f = List.sort_uniq Value.compare (consts f)

let subst_term env = function
  | Const _ as t -> t
  | Var x as t -> (
    match List.assoc_opt x env with Some v -> Const v | None -> t)

let rec substitute env = function
  | (True | False) as f -> f
  | Atom (r, ts) -> Atom (r, List.map (subst_term env) ts)
  | Cmp (op, a, b) -> Cmp (op, subst_term env a, subst_term env b)
  | Not f -> Not (substitute env f)
  | And (f, g) -> And (substitute env f, substitute env g)
  | Or (f, g) -> Or (substitute env f, substitute env g)
  | Implies (f, g) -> Implies (substitute env f, substitute env g)
  | Exists (xs, f) ->
    Exists (xs, substitute (List.filter (fun (x, _) -> not (List.mem x xs)) env) f)
  | Forall (xs, f) ->
    Forall (xs, substitute (List.filter (fun (x, _) -> not (List.mem x xs)) env) f)

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists xs f = if xs = [] then f else Exists (xs, f)
let forall xs f = if xs = [] then f else Forall (xs, f)

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Geq
  | Geq -> Lt
  | Gt -> Leq
  | Leq -> Gt

let equal (f : t) (g : t) = f = g

let rec size = function
  | True | False | Atom _ | Cmp _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f
