lib/query/ast.mli: Relational Value
