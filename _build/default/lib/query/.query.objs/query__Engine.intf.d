lib/query/engine.mli: Ast Database Relation Relational Value
