lib/query/eval.mli: Ast Database Relation Relational Value
