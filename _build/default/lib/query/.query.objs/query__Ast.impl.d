lib/query/ast.ml: List Relational String Value
