lib/query/parser.mli: Ast
