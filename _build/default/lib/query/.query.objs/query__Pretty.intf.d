lib/query/pretty.mli: Ast Format
