lib/query/plan.ml: Algebra Ast Database Hashtbl List Printf Relation Relational Result Schema Tuple Value
