lib/query/transform.ml: Ast Format List Option Relational String Tuple Value
