lib/query/transform.mli: Ast Format Relational Tuple
