lib/query/plan.mli: Algebra Ast Database Relational Value
