lib/query/lexer.ml: List Printf String
