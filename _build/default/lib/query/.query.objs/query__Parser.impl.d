lib/query/parser.ml: Ast Lexer Printf Relational Value
