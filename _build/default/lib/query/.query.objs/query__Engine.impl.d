lib/query/engine.ml: Database Eval Plan Relational
