lib/query/lexer.mli:
