lib/query/eval.ml: Ast Database List Map Printf Relation Relational Schema String Tuple Value
