lib/query/pretty.ml: Ast Format Relational Value
