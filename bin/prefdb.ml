(* prefdb — preference-driven querying of inconsistent relational data.

   A command-line front end to the library: load an instance file (see
   lib/dbio/instance_format.mli for the format), inspect its conflicts,
   enumerate or check preferred repairs, clean it, and compute preferred
   consistent query answers and aggregate ranges. *)

open Cmdliner
module IF = Dbio.Instance_format
module Family = Core.Family

(* --- shared helpers ------------------------------------------------------- *)

let load path =
  match IF.parse_file path with
  | Ok spec -> Ok spec
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let context spec =
  let c = Core.Conflict.build spec.IF.fds spec.IF.relation in
  match IF.to_rule spec with
  | Error e -> Error e
  | Ok rule -> (
    match Core.Pref_rules.apply c rule with
    | Error e -> Error e
    | Ok p -> Ok (c, p))

let with_context path f =
  match load path with
  | Error e ->
    Format.eprintf "error: %s@." e;
    1
  | Ok spec -> (
    match context spec with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok (c, p) -> f spec c p)

(* Parse VALUES with the instance-file tuple syntax, against a one-line
   document carrying just the loaded schema. *)
let parse_tuple spec values =
  let schema = Relational.Relation.schema spec.IF.relation in
  let schema_line =
    Printf.sprintf "relation %s(%s)"
      (Relational.Schema.name schema)
      (String.concat ", "
         (List.map
            (fun a ->
              Printf.sprintf "%s:%s" a.Relational.Schema.attr_name
                (match a.Relational.Schema.attr_ty with
                | Relational.Schema.TName -> "name"
                | Relational.Schema.TInt -> "int"))
            (Relational.Schema.attributes schema)))
  in
  match IF.parse (Printf.sprintf "%s\ntuple %s\n" schema_line values) with
  | Error e -> Error e
  | Ok s -> (
    match Relational.Relation.tuples s.IF.relation with
    | [ t ] -> Ok t
    | _ -> Error "expected exactly one tuple")

(* --- tracing ---------------------------------------------------------------- *)

let write_trace path events =
  let data =
    if Filename.check_suffix path ".jsonl" then Obs.Export.jsonl_string events
    else Obs.Export.chrome_string events
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc data)

(* Collect the run's spans into a memory sink and write them to [path]
   on the way out (also on error paths: the stream is balanced anyway). *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
    let buf = Obs.Sink.Memory.create () in
    Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
    let finish () =
      Obs.Span.set_sink None;
      write_trace path (Obs.Sink.Memory.events buf);
      if Obs.Sink.Memory.dropped buf > 0 then
        Format.eprintf "trace: %d event(s) dropped (buffer full)@."
          (Obs.Sink.Memory.dropped buf)
    in
    (match f () with
    | code ->
      finish ();
      code
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt)

(* --- arguments ------------------------------------------------------------- *)

(* Every subcommand accepts -j/--jobs; the pool width is fixed before
   the command body runs. [with_jobs run] relies on cmdliner applying
   term arguments left to right: the flag's value is consumed (and the
   width set) before the remaining arguments reach [run]. *)
let jobs_arg =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ ->
      Error (`Msg (Printf.sprintf "invalid jobs count %S (expected N >= 1)" s))
  in
  Arg.(value & opt (some (conv (parse, Format.pp_print_int))) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:
             "Evaluate repair/CQA kernels with $(docv) domains (default: the \
              PREFDB_JOBS environment variable, else the host's recommended \
              domain count). 1 disables parallelism.")

let with_jobs run jobs =
  (match jobs with Some n -> Core.Pool.set_jobs n | None -> ());
  run

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:
             "Write a machine-readable trace of the run to $(docv): Chrome \
              trace-event JSON (open in chrome://tracing or Perfetto), or \
              one JSON event per line when $(docv) ends in .jsonl.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Instance file (see the repository README for the format).")

let family_arg =
  let parse s =
    match Family.name_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown family %S (use rep|l|s|g|c)" s))
  in
  let print ppf f = Family.pp_name ppf f in
  Arg.(value & opt (conv (parse, print)) Family.C
       & info [ "f"; "family" ] ~docv:"FAMILY"
           ~doc:"Preferred-repair family: rep, l, s, g or c (default c).")

let limit_arg =
  Arg.(value & opt int 20
       & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) repairs.")

(* --- info ------------------------------------------------------------------- *)

let info_cmd =
  let run path =
    with_context path (fun spec c p ->
        let schema = Relational.Relation.schema spec.IF.relation in
        Format.printf "relation: %a@." Relational.Schema.pp schema;
        Format.printf "tuples:   %d@."
          (Relational.Relation.cardinality spec.IF.relation);
        List.iter
          (fun fd -> Format.printf "fd:       %a@." Constraints.Fd.pp fd)
          spec.IF.fds;
        Format.printf "candidate keys: %s@."
          (String.concat ", "
             (List.map
                (fun k -> "{" ^ String.concat " " k ^ "}")
                (Constraints.Fd.candidate_keys schema spec.IF.fds)));
        Format.printf "BCNF:     %b@."
          (Constraints.Fd.is_bcnf schema spec.IF.fds);
        Format.printf "domains:  %d@." (Core.Pool.jobs ());
        let edges = Core.Conflict.conflict_pairs c in
        Format.printf "conflicts: %d (%d oriented by the preferences)@."
          (List.length edges)
          (Core.Priority.arc_count p);
        List.iter
          (fun (t1, t2) ->
            Format.printf "  %a  <->  %a@." Relational.Tuple.pp t1
              Relational.Tuple.pp t2)
          edges;
        0)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show schema, constraints, conflicts and preferences.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run path family trace_out =
    with_trace trace_out @@ fun () ->
    with_context path (fun _spec c p ->
        Format.printf "%a@." Core.Stats.pp (Core.Stats.compute family c p);
        0)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Inconsistency summary: conflicts, components, repair counts and \
          tuple fates under the family's preferences.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ trace_out_arg)

(* --- repairs ---------------------------------------------------------------- *)

let repairs_cmd =
  let run path family limit =
    with_context path (fun _spec c p ->
        let repairs = Family.repairs family c p in
        Format.printf "%s: %d preferred repair(s)@."
          (Family.name_to_string family)
          (List.length repairs);
        List.iteri
          (fun i s ->
            if i < limit then begin
              Format.printf "--- repair %d ---@." (i + 1);
              Relational.Relation.iter
                (fun t -> Format.printf "  %a@." Relational.Tuple.pp t)
                (Core.Repair.to_relation c s)
            end)
          repairs;
        if List.length repairs > limit then
          Format.printf "... (%d more; raise --limit)@."
            (List.length repairs - limit);
        0)
  in
  Cmd.v
    (Cmd.info "repairs"
       ~doc:"Enumerate the preferred repairs of the given family.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ limit_arg)

(* --- check ------------------------------------------------------------------ *)

let check_cmd =
  let candidate_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CANDIDATE"
             ~doc:"Instance file holding the candidate repair (same schema).")
  in
  let run path candidate family =
    with_context path (fun _spec c p ->
        match load candidate with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok cand -> (
          match
            Core.Conflict.vset_of_relation c cand.IF.relation
          with
          | exception Invalid_argument m ->
            Format.eprintf "error: %s@." m;
            1
          | s ->
            let ok = Family.check family c p s in
            Format.printf "%s-repair check: %s@."
              (Family.name_to_string family)
              (if ok then "YES" else "NO");
            if ok then 0 else 2))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "X-repair checking: is the candidate a preferred repair of the \
          family? Exits 0 for yes, 2 for no.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ candidate_arg $ family_arg)

(* --- clean ------------------------------------------------------------------ *)

let clean_cmd =
  let trace_arg =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Show each Algorithm 1 step and its choices.")
  in
  let run path trace trace_out =
    with_trace trace_out @@ fun () ->
    with_context path (fun _spec c p ->
        if trace then
          Format.printf "%a@." (Core.Trace.pp c) (Core.Trace.clean c p)
        else begin
          let report = Core.Clean.run_with_priority c p in
          Format.printf "%a@." Core.Clean.pp_report report;
          Relational.Relation.iter
            (fun t -> Format.printf "  %a@." Relational.Tuple.pp t)
            report.Core.Clean.cleaned
        end;
        0)
  in
  Cmd.v
    (Cmd.info "clean"
       ~doc:
         "Clean the instance with Algorithm 1 under the declared \
          preferences (keeps one common repair).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ trace_arg $ trace_out_arg)

(* --- count ------------------------------------------------------------------ *)

let count_cmd =
  let run path family trace_out =
    with_trace trace_out @@ fun () ->
    with_context path (fun _spec c p ->
        let d = Core.Decompose.make c p in
        Format.printf "%s: %d preferred repair(s) across %d conflict component(s)@."
          (Family.name_to_string family)
          (Core.Decompose.count family d)
          (Core.Decompose.component_count d);
        0)
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:
         "Count the preferred repairs without enumerating them \
          (component-factorized; fast whenever conflict components are \
          small).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ trace_out_arg)

(* --- query ------------------------------------------------------------------ *)

(* The planner's view of the loaded instance: the (dirty) relation as a
   one-relation database, costed with exact column statistics from one
   scan. *)
let planner_report spec q =
  let s = Planner.Stats.scan spec.IF.relation in
  let name = Planner.Stats.relation_name s in
  let stats r = if String.equal r name then Some s else None in
  Planner.Explain.run ~stats
    (Relational.Database.of_relations [ spec.IF.relation ])
    q

(* Collect the run's spans into a fresh buffer, teeing onto whatever
   sink is already live (e.g. --trace-out), so the slow-query log sees
   the same phases a trace would. *)
let with_span_capture f =
  let buf = Obs.Sink.Memory.create () in
  let prev = Obs.Span.sink () in
  let sink =
    match prev with
    | None -> Obs.Sink.Memory.sink buf
    | Some s -> Obs.Sink.tee s (Obs.Sink.Memory.sink buf)
  in
  Obs.Span.set_sink (Some sink);
  let r = Fun.protect ~finally:(fun () -> Obs.Span.set_sink prev) f in
  (r, Obs.Sink.Memory.events buf)

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let slow_query_ms_arg =
  let parse s =
    match float_of_string_opt s with
    | Some t when Float.is_finite t && t >= 0.0 -> Ok t
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid threshold %S (expected a number of milliseconds >= 0)" s))
  in
  Arg.(value & opt (some (conv (parse, Format.pp_print_float))) None
       & info [ "slow-query-ms" ] ~docv:"MS"
           ~doc:
             "Capture any query slower than $(docv) milliseconds as one \
              JSONL record (query text, verdict, wall time, per-phase \
              spans, and the planner report with estimated vs. actual \
              cardinalities) in the slow-query log. 0 captures \
              everything.")

let slow_log_arg =
  Arg.(value & opt (some string) None
       & info [ "slow-query-log" ] ~docv:"FILE"
           ~doc:
             "Where --slow-query-ms appends its records (default: \
              slow.jsonl under the store directory when serving, \
              ./slow.jsonl otherwise).")

let query_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"First-order query text.")
  in
  let trace_arg =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:
               "Also report what the component decomposition did: \
                per-component repair counts, cache traffic, combinations \
                streamed, early exits.")
  in
  let run path family qtext trace slow_ms slow_log trace_out =
    with_trace trace_out @@ fun () ->
    with_context path (fun spec c p ->
        match Query.Parser.parse qtext with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok q ->
          (* every route goes through the component decomposition: ground
             queries hit the clause engine, quantified ones the streaming
             deviation scan — exponential only in the largest component *)
          let d = Core.Decompose.make c p in
          let answer () =
            if Query.Ast.is_closed q then
              if trace then
                Format.asprintf "%a" Core.Trace.pp_cqa
                  (Core.Trace.certainty family d q)
              else
                Format.asprintf "%s-consistent answer: %s"
                  (Family.name_to_string family)
                  (Core.Cqa.certainty_to_string
                     (Core.Decompose.certainty family d q))
            else begin
              let free, rows =
                Core.Decompose.consistent_answers_open family d q
              in
              Format.asprintf "%t" (fun ppf ->
                  Format.fprintf ppf "certain answers (%s):@,"
                    (String.concat ", " free);
                  List.iter
                    (fun row ->
                      Format.fprintf ppf "  (%s)@,"
                        (String.concat ", "
                           (List.map Relational.Value.to_string row)))
                    rows;
                  Format.fprintf ppf "%d certain answer(s)"
                    (List.length rows);
                  if trace then
                    Format.fprintf ppf "@,%a" Core.Decompose.pp_counters
                      (Core.Decompose.counters d))
            end
          in
          let t0 = Unix.gettimeofday () in
          let output, events =
            match slow_ms with
            | None -> (answer (), [])
            | Some _ -> with_span_capture answer
          in
          let wall = Unix.gettimeofday () -. t0 in
          print_endline output;
          (match slow_ms with
          | Some thr when (wall *. 1000.0) +. 1e-9 >= thr ->
            let explain =
              match planner_report spec q with
              | report ->
                Some
                  ( Format.asprintf "%a" Planner.Explain.pp report,
                    Planner.Explain.to_json report )
              | exception Invalid_argument _ -> None
            in
            let record =
              {
                Shell.Slowlog.ts = Unix.gettimeofday ();
                cmd = "query";
                query = qtext;
                verdict = first_line output;
                wall_ms = wall *. 1000.0;
                phases = Obs.Profile.flat (Obs.Profile.tree events);
                explain;
              }
            in
            let log = Option.value slow_log ~default:"slow.jsonl" in
            (match Shell.Slowlog.append ~path:log record with
            | Ok () -> Format.eprintf "slow query logged to %s@." log
            | Error e -> Format.eprintf "slow-query log: %s@." e)
          | _ -> ());
          0)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Compute the preferred consistent answer to a closed query, or \
          the certain bindings of an open one. Answers are computed \
          through the conflict-component decomposition.")
    Term.(
      const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ query_arg
      $ trace_arg $ slow_query_ms_arg $ slow_log_arg $ trace_out_arg)

(* --- facts ------------------------------------------------------------------- *)

let facts_cmd =
  let run path family =
    with_context path (fun _spec c p ->
        let d = Core.Decompose.make c p in
        let certain = Core.Decompose.certain_tuples family d in
        let possible = Core.Decompose.possible_tuples family d in
        let all = Core.Conflict.live c in
        let show label s =
          Format.printf "%s (%d):@." label (Graphs.Vset.cardinal s);
          Graphs.Vset.iter
            (fun v ->
              Format.printf "  %a@." Relational.Tuple.pp (Core.Conflict.tuple c v))
            s
        in
        show "certain (in every preferred repair)" certain;
        show "disputed (in some preferred repairs)" (Graphs.Vset.diff possible certain);
        show "excluded (in no preferred repair)" (Graphs.Vset.diff all possible);
        0)
  in
  Cmd.v
    (Cmd.info "facts"
       ~doc:
         "Classify every tuple as certain, disputed or excluded under the \
          family's preferred repairs (component-factorized).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg)

(* --- explain / plan ----------------------------------------------------------- *)

let explain_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"Closed first-order query text.")
  in
  let run path family qtext =
    with_context path (fun spec c p ->
        match Query.Parser.parse qtext with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok q ->
          if not (Query.Ast.is_closed q) then begin
            Format.eprintf "error: explain requires a closed query@.";
            1
          end
          else begin
            (* the plan every per-repair certainty check executes, shown
               over the current instance *)
            Format.printf "%a@." Planner.Explain.pp_plan_only
              (planner_report spec q);
            let v = Core.Explain.query family c p q in
            Format.printf "%a@." (Core.Explain.pp_verdict c) v;
            0
          end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Answer a closed query and show witness repairs supporting and \
          refuting it, prefixed with the physical plan the per-repair \
          checks execute (cost-based join order, access paths, estimated \
          vs. actual cardinalities).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ query_arg)

let plan_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"First-order query text.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let run path qtext json =
    with_context path (fun spec _c _p ->
        match Query.Parser.parse qtext with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok q -> (
          match planner_report spec q with
          | report ->
            if json then
              print_endline (Obs.Json.to_string (Planner.Explain.to_json report))
            else Format.printf "%a@." Planner.Explain.pp report;
            0
          | exception Invalid_argument m ->
            Format.eprintf "error: %s@." m;
            1))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Show the cost-based physical plan for a query over the instance \
          (not its repairs): chosen join order, access paths (index, range \
          and merge scans), estimated vs. actual cardinalities — or the \
          fallback reason when the query is outside the compilable \
          fragment.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ query_arg $ json_arg)

(* --- status ------------------------------------------------------------------- *)

let status_cmd =
  let tuple_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TUPLE"
             ~doc:
               "The tuple's values, space-separated, as on a 'tuple' line \
                of the instance file (quote the whole argument).")
  in
  let run path family tuple_text =
    with_context path (fun spec c p ->
        match parse_tuple spec tuple_text with
        | Error e ->
          Format.eprintf "error: cannot parse tuple: %s@." e;
          1
        | Ok t -> (
          match Core.Explain.tuple_status family c p t with
          | st ->
            Format.printf "%a@." Core.Explain.pp_tuple_status st;
            0
          | exception Invalid_argument m ->
            Format.eprintf "error: %s@." m;
            1))
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show a tuple's conflicts, its domination situation and whether \
          the preferred repairs keep it.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ tuple_arg)

(* --- aggregate ---------------------------------------------------------------- *)

let aggregate_cmd =
  let agg_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"AGG"
             ~doc:"Aggregate: count, sum:ATTR, min:ATTR or max:ATTR.")
  in
  let parse_agg s =
    match String.split_on_char ':' s with
    | [ "count" ] -> Ok Core.Aggregate.Count_all
    | [ "sum"; a ] -> Ok (Core.Aggregate.Sum a)
    | [ "min"; a ] -> Ok (Core.Aggregate.Min a)
    | [ "max"; a ] -> Ok (Core.Aggregate.Max a)
    | _ -> Error (Printf.sprintf "cannot parse aggregate %S" s)
  in
  let run path family agg_text =
    with_context path (fun _spec c p ->
        match parse_agg agg_text with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok agg -> (
          let result =
            if family = Family.Rep then Core.Aggregate.range c agg
            else Core.Aggregate.range_preferred family c p agg
          in
          match result with
          | Error e ->
            Format.eprintf "error: %s@." e;
            1
          | Ok r ->
            Format.printf "%s over %s repairs: %a@."
              (Core.Aggregate.agg_to_string agg)
              (Family.name_to_string family)
              Core.Aggregate.pp_range r;
            0))
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Range-consistent answer to a scalar aggregation query.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ agg_arg)

(* --- update ------------------------------------------------------------------ *)

let update_cmd =
  let insert_arg =
    Arg.(value & opt_all string []
         & info [ "i"; "insert" ] ~docv:"VALUES"
             ~doc:
               "Insert a tuple (values as on a 'tuple' line of the instance \
                file; quote the whole argument). Repeatable.")
  in
  let delete_arg =
    Arg.(value & opt_all string []
         & info [ "d"; "delete" ] ~docv:"VALUES"
             ~doc:"Delete a tuple. Repeatable; deletions run before insertions.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"OUT"
             ~doc:"Write the updated instance (with its preferences) to $(docv).")
  in
  let run path family inserts deletes save trace_out =
    with_trace trace_out @@ fun () ->
    match load path with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok spec -> (
      match IF.to_rule spec with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok rule -> (
        match Core.Delta.create ~rule spec.IF.fds spec.IF.relation with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok eng -> (
          let parse_ops mk = function
            | [] -> Ok []
            | texts ->
              List.fold_left
                (fun acc text ->
                  match (acc, parse_tuple spec text) with
                  | Error e, _ -> Error e
                  | Ok _, Error e -> Error e
                  | Ok ops, Ok t -> Ok (mk t :: ops))
                (Ok []) texts
              |> Result.map List.rev
          in
          let ops =
            match parse_ops (fun t -> Core.Delta.Delete t) deletes with
            | Error e -> Error e
            | Ok dels -> (
              match parse_ops (fun t -> Core.Delta.Insert t) inserts with
              | Error e -> Error e
              | Ok inss -> Ok (dels @ inss))
          in
          match ops with
          | Error e ->
            Format.eprintf "error: %s@." e;
            1
          | Ok [] ->
            Format.eprintf "error: nothing to do (use --insert/--delete)@.";
            1
          | Ok ops -> (
            match Core.Delta.apply eng ops with
            | Error e ->
              Format.eprintf "error: %s@." e;
              1
            | Ok report ->
              let d = Core.Delta.decompose eng in
              Format.printf "%a@." Core.Delta.pp_report report;
              Format.printf
                "%s: %d preferred repair(s) across %d conflict component(s)@."
                (Family.name_to_string family)
                (Core.Decompose.count family d)
                (Core.Decompose.component_count d);
              Format.printf "%a@." Core.Decompose.pp_counters
                (Core.Decompose.counters d);
              (match save with
              | None -> 0
              | Some out -> (
                let spec' =
                  { spec with IF.relation = Core.Delta.relation eng }
                in
                match IF.save out spec' with
                | Ok () ->
                  Format.printf "saved %s@." out;
                  0
                | Error m ->
                  Format.eprintf "error: %s@." m;
                  1))))))
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply a batch of tuple insertions and deletions through the \
          incremental engine: the conflict graph is maintained by delta, \
          only the components the batch touches are re-decomposed, and the \
          work report shows what was dirtied, evicted and retained.")
    Term.(
      const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ insert_arg
      $ delete_arg $ save_arg $ trace_out_arg)

(* --- shell ------------------------------------------------------------------- *)

let shell_cmd =
  let file_opt =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Instance file to load on startup.")
  in
  let run path trace_out =
    with_trace trace_out @@ fun () ->
    (* scripted runs (piped stdin) must fail loudly: remember whether any
       command errored and exit non-zero at EOF. An interactive session
       keeps exiting 0 — errors were already shown to the human. *)
    let interactive = Unix.isatty Unix.stdin in
    let errored = ref false in
    let note output =
      if Shell.Session.is_error_output output then errored := true
    in
    let state =
      match path with
      | None -> Shell.Session.initial
      | Some path ->
        let st, msg = Shell.Session.exec Shell.Session.initial ("load " ^ path) in
        print_endline msg;
        note msg;
        st
    in
    print_endline "prefdb shell — 'help' lists commands, 'quit' leaves.";
    let exit_code () = if (not interactive) && !errored then 1 else 0 in
    let rec loop state =
      print_string "prefdb> ";
      match In_channel.input_line In_channel.stdin with
      | None -> exit_code ()
      | Some line -> (
        match String.lowercase_ascii (String.trim line) with
        | "quit" | "exit" -> exit_code ()
        | _ ->
          let state, output = Shell.Session.exec state line in
          if output <> "" then print_endline output;
          note output;
          loop state)
    in
    loop state
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive session over an instance file.")
    Term.(const (with_jobs run) $ jobs_arg $ file_opt $ trace_out_arg)

(* --- profile ------------------------------------------------------------------ *)

let pp_seconds ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.2f us" (s *. 1e6)
  else if s < 1. then Format.fprintf ppf "%.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%.3f s" s

let profile_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"First-order query text.")
  in
  let run path family qtext trace_out =
    match Query.Parser.parse qtext with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok q ->
      let buf = Obs.Sink.Memory.create () in
      Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
      let t0 = Unix.gettimeofday () in
      let code =
        (* one root span brackets everything measured, so the profile
           tree accounts for (almost) all of the wall time below *)
        Obs.Span.with_span "profile" @@ fun () ->
        with_context path (fun _spec c p ->
            let d = Core.Decompose.make c p in
            if Query.Ast.is_closed q then begin
              Format.printf "%s-consistent answer: %s@."
                (Family.name_to_string family)
                (Core.Cqa.certainty_to_string
                   (Core.Decompose.certainty family d q));
              0
            end
            else begin
              let _free, rows =
                Core.Decompose.consistent_answers_open family d q
              in
              Format.printf "%d certain answer(s)@." (List.length rows);
              0
            end)
      in
      let wall = Unix.gettimeofday () -. t0 in
      Obs.Span.set_sink None;
      let events = Obs.Sink.Memory.events buf in
      let nodes = Obs.Profile.tree events in
      let covered = Obs.Profile.total nodes in
      Format.printf "@.%a@." Obs.Profile.pp nodes;
      Format.printf "wall time %a; spans cover %.1f%% (%d event(s))@."
        pp_seconds wall
        (if wall > 0. then 100. *. covered /. wall else 100.)
        (List.length events);
      (match trace_out with
      | None -> ()
      | Some out ->
        write_trace out events;
        Format.printf "trace written to %s@." out);
      code
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Answer a query and print a hierarchical time profile of the \
          whole run: conflict-graph construction, preference orientation, \
          per-component repair enumeration and the CQA route taken \
          (ground clause engine, deviation scan or full product), with \
          counter deltas attached to each span.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ family_arg $ query_arg $ trace_out_arg)

(* --- validate-trace ----------------------------------------------------------- *)

let validate_trace_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"Trace file written by --trace-out or 'profile'.")
  in
  let run path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error m ->
      Format.eprintf "error: %s@." m;
      1
    | text -> (
      let result =
        if Filename.check_suffix path ".jsonl" then
          Obs.Export.validate_jsonl text
        else
          match Obs.Json.of_string text with
          | Error e -> Error e
          | Ok j -> Obs.Export.validate j
      in
      match result with
      | Ok n ->
        Format.printf
          "%s: valid (%d event(s); timestamps monotone, spans balanced)@."
          path n;
        0
      | Error e ->
        Format.eprintf "%s: INVALID: %s@." path e;
        1)
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:
         "Check a trace file's invariants: well-formed JSON, monotone \
          non-decreasing timestamps and balanced begin/end span pairs with \
          matching names. Exits non-zero on violation.")
    Term.(const (with_jobs run) $ jobs_arg $ trace_file_arg)

(* --- the durable store: init + serve lifecycle -------------------------------- *)

module Server = Shell.Server

let dir_arg =
  Arg.(value & opt string ".prefdb"
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Store directory (snapshot, write-ahead log, server files).")

let request_timeout_arg =
  let parse s =
    match float_of_string_opt s with
    | Some t when Float.is_finite t && t > 0.0 -> Ok t
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid timeout %S (expected a positive number of seconds)" s))
  in
  Arg.(value & opt (some (conv (parse, Format.pp_print_float))) None
       & info [ "request-timeout" ] ~docv:"SEC"
           ~doc:
             "Drop an accepted connection whose reads or writes stall for \
              $(docv) seconds (default: the PREFDB_REQUEST_TIMEOUT \
              environment variable, else 10).")

(* The served config: defaults (including PREFDB_REQUEST_TIMEOUT),
   overridden by whichever flags were given. *)
let serve_config timeout slow_ms slow_log =
  let c = Server.default_config () in
  {
    Server.request_timeout =
      Option.value timeout ~default:c.Server.request_timeout;
    slow_query_ms =
      (match slow_ms with Some _ -> slow_ms | None -> c.Server.slow_query_ms);
    slow_log =
      (match slow_log with Some _ -> slow_log | None -> c.Server.slow_log);
  }

let init_cmd =
  let run file dir =
    match load file with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok spec -> (
      match Dbio.Store.init dir spec with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok () ->
        Format.printf "initialized %s: %d tuple(s), %d fd(s), %d preference(s)%s@."
          dir
          (Relational.Relation.cardinality spec.IF.relation)
          (List.length spec.IF.fds)
          (List.length spec.IF.prefs)
          (match spec.IF.denials with
          | [] -> ""
          | ds -> Printf.sprintf ", %d denial(s)" (List.length ds));
        0)
  in
  Cmd.v
    (Cmd.info "init"
       ~doc:
         "Create a durable store from an instance file: a binary snapshot \
          (versioned, checksummed, loaded without re-parsing) plus an empty \
          write-ahead log. The store is what 'serve' processes own.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ dir_arg)

let serve_start_cmd =
  let run dir timeout slow_ms slow_log =
    let config = serve_config timeout slow_ms slow_log in
    if not (Sys.file_exists (Dbio.Store.snapshot_path dir)) then begin
      Format.eprintf "error: %s: no store (run 'prefdb init' first)@." dir;
      1
    end
    else if Server.ping dir then begin
      Format.eprintf "error: %s: a server is already running@." dir;
      1
    end
    else
      match Unix.fork () with
      | 0 ->
        (* the daemon: its own session, stdio to the log file *)
        ignore (Unix.setsid ());
        let log =
          Unix.openfile (Server.log_path dir)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
        Unix.dup2 devnull Unix.stdin;
        Unix.dup2 log Unix.stdout;
        Unix.dup2 log Unix.stderr;
        Unix.close devnull;
        Unix.close log;
        (match Server.serve ~config dir with
        | Ok () -> Stdlib.exit 0
        | Error e ->
          prerr_endline ("error: " ^ e);
          Stdlib.exit 1)
      | pid ->
        let rec wait n =
          if Server.ping dir then begin
            Format.printf "server started (pid %d, socket %s)@." pid
              (Server.socket_path dir);
            0
          end
          else if n = 0 then begin
            Format.eprintf "error: server did not come up (see %s)@."
              (Server.log_path dir);
            1
          end
          else begin
            Unix.sleepf 0.1;
            wait (n - 1)
          end
        in
        wait 100
  in
  Cmd.v
    (Cmd.info "start"
       ~doc:
         "Start a server in the background (fork + setsid, stdio to \
          serve.log) and wait until it answers on the socket.")
    Term.(
      const (with_jobs run) $ jobs_arg $ dir_arg $ request_timeout_arg
      $ slow_query_ms_arg $ slow_log_arg)

let read_pid dir =
  match In_channel.with_open_text (Server.pid_path dir) In_channel.input_all with
  | s -> int_of_string_opt (String.trim s)
  | exception Sys_error _ -> None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

let serve_stop_cmd =
  let run dir =
    let pid = read_pid dir in
    match Server.request dir "shutdown" with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok _ ->
      let gone () =
        match pid with
        | Some p -> not (pid_alive p)
        | None -> not (Sys.file_exists (Server.socket_path dir))
      in
      let rec wait n =
        if gone () then begin
          Format.printf "server stopped@.";
          0
        end
        else if n = 0 then begin
          Format.eprintf "error: server acknowledged shutdown but did not exit@.";
          1
        end
        else begin
          Unix.sleepf 0.1;
          wait (n - 1)
        end
      in
      wait 100
  in
  Cmd.v
    (Cmd.info "stop"
       ~doc:"Ask the server to shut down and wait until its process exits.")
    Term.(const (with_jobs run) $ jobs_arg $ dir_arg)

let serve_status_cmd =
  let run dir =
    let file_size path =
      match Unix.stat path with
      | st -> Some st.Unix.st_size
      | exception Unix.Unix_error _ -> None
    in
    (match file_size (Dbio.Store.snapshot_path dir) with
    | Some n -> Format.printf "snapshot: %d byte(s)@." n
    | None -> Format.printf "snapshot: missing@.");
    (match file_size (Dbio.Store.wal_path dir) with
    | Some n -> Format.printf "wal:      %d byte(s)@." n
    | None -> Format.printf "wal:      missing@.");
    let pid = read_pid dir in
    let live = Server.ping dir in
    (match (pid, live) with
    | Some p, true -> Format.printf "server:   running (pid %d)@." p
    | None, true -> Format.printf "server:   running (no pid file)@."
    | Some p, false when pid_alive p ->
      Format.printf "server:   pid %d alive but not answering@." p
    | _, false -> Format.printf "server:   not running@.");
    (* a live server also reports its own view: uptime, generation,
       request totals *)
    if live then (
      match Server.request dir "status" with
      | Ok out -> List.iter (Format.printf "  %s@.") (String.split_on_char '\n' out)
      | Error _ -> ());
    if live then 0 else 3
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Report the store's files and whether a server answers on the \
          socket. Exits 0 when a server is live, 3 otherwise.")
    Term.(const (with_jobs run) $ jobs_arg $ dir_arg)

let serve_call_cmd =
  let cmd_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"CMD"
           ~doc:"Command words, joined with spaces (shell session language).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Use the JSON framing and print the raw response object.")
  in
  let run dir json words =
    let cmd = String.concat " " words in
    if json then (
      match Server.request_json dir cmd with
      | Ok resp ->
        print_endline (Obs.Json.to_string resp);
        (match Obs.Json.member "ok" resp with
        | Some (Obs.Json.Bool true) -> 0
        | _ -> 1)
      | Error e ->
        Format.eprintf "error: %s@." e;
        1)
    else
      match Server.request dir cmd with
      | Ok out ->
        if out <> "" then print_endline out;
        0
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send one command to a running server and print its output \
          (exit 1 when the server reports an error).")
    Term.(const (with_jobs run) $ jobs_arg $ dir_arg $ json_arg $ cmd_arg)

let serve_cmd =
  let doc =
    "Run or manage a store server: a long-running process owning one warm \
     session (conflict graph, priority and repair caches stay live across \
     requests) behind a unix socket, with every mutation journaled to the \
     write-ahead log before it is acknowledged."
  in
  Cmd.group ~default:(
    let run dir timeout slow_ms slow_log trace_out =
      with_trace trace_out @@ fun () ->
      match Server.serve ~config:(serve_config timeout slow_ms slow_log) dir with
      | Ok () -> 0
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
    in
    Term.(
      const (with_jobs run) $ jobs_arg $ dir_arg $ request_timeout_arg
      $ slow_query_ms_arg $ slow_log_arg $ trace_out_arg))
    (Cmd.info "serve" ~doc)
    [ serve_start_cmd; serve_stop_cmd; serve_status_cmd; serve_call_cmd ]

(* --- metrics / validate-slowlog ------------------------------------------------ *)

let metrics_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the structured JSON form instead of the exposition.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Lint the exposition instead of printing it: every sample \
                preceded by its TYPE line, parsable non-NaN values, no \
                duplicate series, cumulative histogram buckets. Exits \
                non-zero on violation.")
  in
  let run dir json check =
    if check then (
      match Server.request dir "metrics" with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok text -> (
        match Obs.Registry.lint text with
        | Ok n ->
          Format.printf "valid Prometheus exposition (%d sample(s))@." n;
          0
        | Error e ->
          Format.eprintf "INVALID exposition: %s@." e;
          1))
    else if json then (
      match Server.request_json dir "metrics" with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok resp -> (
        match Obs.Json.member "metrics" resp with
        | Some j ->
          print_endline (Obs.Json.to_string j);
          0
        | None ->
          Format.eprintf "error: response carried no metrics field@.";
          1))
    else
      match Server.request dir "metrics" with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok text ->
        print_string text;
        if String.length text > 0 && text.[String.length text - 1] <> '\n' then
          print_newline ();
        0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running server's process metrics: request counts and \
          latency histograms by command, WAL/snapshot/store health, \
          planner fallbacks and cardinality q-error, pool utilization — \
          as Prometheus text exposition (default), structured JSON \
          (--json), or a lint verdict (--check).")
    Term.(const (with_jobs run) $ jobs_arg $ dir_arg $ json_arg $ check_arg)

let validate_slowlog_cmd =
  let log_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"LOG"
             ~doc:"Slow-query log written by --slow-query-ms (slow.jsonl).")
  in
  let run path =
    match Shell.Slowlog.validate_file path with
    | Ok n ->
      Format.printf "%s: valid (%d record(s))@." path n;
      0
    | Error e ->
      Format.eprintf "%s: INVALID: %s@." path e;
      1
  in
  Cmd.v
    (Cmd.info "validate-slowlog"
       ~doc:
         "Check a slow-query log's invariants: one JSON object per line \
          carrying the query, verdict, finite wall time and phase spans, \
          with the planner report and its text rendering present \
          together or not at all. Exits non-zero on violation.")
    Term.(const (with_jobs run) $ jobs_arg $ log_file_arg)

(* --- hyper: denial-constraint CQA over the hyperedge substrate ----------------- *)

module Hfamily = Core.Hfamily

(* The denial constraints in force: declared [denial] lines, or — when
   none are declared — the FDs compiled to denial form, so the hyper
   commands answer on any instance file. *)
let denials_of spec =
  match spec.IF.denials with
  | [] ->
    let schema = Relational.Relation.schema spec.IF.relation in
    List.concat_map (Constraints.Denial.of_fd schema) spec.IF.fds
  | dcs -> dcs

let hyper_context spec =
  match Core.Hyper.build (denials_of spec) spec.IF.relation with
  | exception Invalid_argument m -> Error m
  | h -> (
    match IF.to_rule spec with
    | Error e -> Error e
    | Ok rule -> (
      match Core.Hpriority.of_rule h rule with
      | Error e -> Error e
      | Ok p -> Ok (h, p)))

let with_hyper path f =
  match load path with
  | Error e ->
    Format.eprintf "error: %s@." e;
    1
  | Ok spec -> (
    match hyper_context spec with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok (h, p) -> f spec h p)

let hfamily_arg =
  let parse s =
    match Hfamily.name_of_string s with
    | Some f -> Ok f
    | None ->
      Error (`Msg (Printf.sprintf "unknown family %S (use rep|pareto|global)" s))
  in
  Arg.(value & opt (conv (parse, Hfamily.pp_name)) Hfamily.Rep
       & info [ "f"; "family" ] ~docv:"FAMILY"
           ~doc:
             "Preferred-repair family on the hyperedge substrate: rep, \
              pareto or global (default rep).")

let hyper_info_cmd =
  let run path =
    with_hyper path (fun spec h p ->
        let dcs = denials_of spec in
        Format.printf "denials:    %d%s@." (List.length dcs)
          (if spec.IF.denials = [] && dcs <> [] then " (compiled from the fds)"
           else "");
        List.iter
          (fun dc -> Format.printf "  %s@." (Constraints.Denial.to_string dc))
          dcs;
        let d = Core.Hdecompose.make h p in
        Format.printf "facts:      %d live@."
          (Graphs.Vset.cardinal (Core.Hyper.live h));
        Format.printf "hyperedges: %d@."
          (Graphs.Hypergraph.edge_count (Core.Hyper.hypergraph h));
        Format.printf "oriented:   %d arc(s)@." (Core.Hpriority.arc_count p);
        Format.printf "components: %d (largest %d)@."
          (Core.Hdecompose.component_count d)
          (Core.Hdecompose.max_component d);
        Format.printf "consistent: %b@." (Core.Hyper.is_consistent h);
        0)
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Show the denial constraints in force and the conflict \
          hypergraph they induce: hyperedges, oriented pairs, components.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg)

let hyper_count_cmd =
  let run path family trace_out =
    with_trace trace_out @@ fun () ->
    with_hyper path (fun _spec h p ->
        let d = Core.Hdecompose.make h p in
        Format.printf "%s: %d preferred repair(s) across %d component(s)@."
          (Hfamily.name_to_string family)
          (Core.Hdecompose.count family d)
          (Core.Hdecompose.component_count d);
        0)
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:
         "Count the preferred repairs of the denial-constraint instance \
          (component-factorized on the hypergraph).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ hfamily_arg $ trace_out_arg)

let hyper_repairs_cmd =
  let run path family limit =
    with_hyper path (fun _spec h p ->
        let repairs = Hfamily.repairs family h p in
        Format.printf "%s: %d preferred repair(s)@."
          (Hfamily.name_to_string family)
          (List.length repairs);
        List.iteri
          (fun i s ->
            if i < limit then begin
              Format.printf "--- repair %d ---@." (i + 1);
              Relational.Relation.iter
                (fun t -> Format.printf "  %a@." Relational.Tuple.pp t)
                (Core.Hyper.to_relation h s)
            end)
          repairs;
        if List.length repairs > limit then
          Format.printf "... (%d more; raise --limit)@."
            (List.length repairs - limit);
        0)
  in
  Cmd.v
    (Cmd.info "repairs"
       ~doc:
         "Enumerate the preferred repairs (maximal independent sets of \
          the conflict hypergraph surviving the family's filter).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ hfamily_arg $ limit_arg)

let hyper_check_cmd =
  let candidate_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CANDIDATE"
             ~doc:"Instance file holding the candidate repair (same schema).")
  in
  let run path candidate family =
    with_hyper path (fun _spec h p ->
        match load candidate with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok cand -> (
          match Hfamily.check_relation family h p cand.IF.relation with
          | exception Invalid_argument m ->
            Format.eprintf "error: %s@." m;
            1
          | ok ->
            Format.printf "%s-repair check: %s@."
              (Hfamily.name_to_string family)
              (if ok then "YES" else "NO");
            if ok then 0 else 2))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Is the candidate a preferred repair of the denial-constraint \
          instance? Exits 0 for yes, 2 for no.")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ candidate_arg $ hfamily_arg)

let hyper_query_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"A closed query (shell query language).")
  in
  let run path family text trace_out =
    with_trace trace_out @@ fun () ->
    with_hyper path (fun _spec h p ->
        match Query.Parser.parse text with
        | Error e ->
          Format.eprintf "error: %s@." e;
          1
        | Ok q ->
          if not (Query.Ast.is_closed q) then begin
            Format.eprintf "error: hyper query requires a closed query@.";
            1
          end
          else begin
            let d = Core.Hdecompose.make h p in
            Format.printf "%s-consistent answer: %s@."
              (Hfamily.name_to_string family)
              (Core.Cqa.certainty_to_string (Core.Hdecompose.certainty family d q));
            0
          end)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Compute the preferred consistent answer to a closed query under \
          denial constraints (true in every preferred repair, false in \
          every one, or ambiguous).")
    Term.(const (with_jobs run) $ jobs_arg $ file_arg $ hfamily_arg $ query_arg
          $ trace_out_arg)

let hyper_cmd =
  Cmd.group
    (Cmd.info "hyper"
       ~doc:
         "Denial-constraint CQA: the conflict hypergraph substrate (§6), \
          with Pareto- and globally-optimal repair families.")
    [ hyper_info_cmd; hyper_count_cmd; hyper_repairs_cmd; hyper_check_cmd;
      hyper_query_cmd ]

(* --- main --------------------------------------------------------------------- *)

let () =
  (* a typo'd PREFDB_JOBS would otherwise be silently ignored and the
     run would proceed on the default domain count *)
  (match Core.Pool.env_jobs_error () with
  | Some msg ->
    Format.eprintf "prefdb: %s@." msg;
    exit 124
  | None -> ());
  (match Server.env_request_timeout_error () with
  | Some msg ->
    Format.eprintf "prefdb: %s@." msg;
    exit 124
  | None -> ());
  let doc = "preference-driven querying of inconsistent relational databases" in
  let info = Cmd.info "prefdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            info_cmd; stats_cmd; repairs_cmd; check_cmd; count_cmd; clean_cmd;
            query_cmd; explain_cmd; plan_cmd; status_cmd; facts_cmd; aggregate_cmd;
            update_cmd; shell_cmd; profile_cmd; validate_trace_cmd;
            validate_slowlog_cmd; init_cmd; serve_cmd; metrics_cmd; hyper_cmd;
          ]))
