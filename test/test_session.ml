(* Tests for the interactive session interpreter. *)

module Session = Shell.Session
module Family = Core.Family

let check = Alcotest.check

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let mgr_file () =
  let path = Filename.temp_file "prefdb" ".pdb" in
  let spec =
    let rel, fds, prov = Testlib.mgr () in
    {
      Dbio.Instance_format.relation = rel;
      fds;
      denials = [];
      provenance = prov;
      prefs =
        [
          Dbio.Instance_format.Source_pair ("s1", "s3");
          Dbio.Instance_format.Source_pair ("s2", "s3");
        ];
    }
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Dbio.Instance_format.print spec));
  path

let load () =
  let st, msg = Session.exec Session.initial ("load " ^ mgr_file ()) in
  Alcotest.(check bool) "load succeeded" true (contains ~needle:"4 tuples" msg);
  st

let test_initial_state () =
  Alcotest.(check bool) "starts with C-Rep" true
    (Session.family Session.initial = Family.C);
  Alcotest.(check bool) "nothing loaded" true (Session.loaded Session.initial = None);
  let _, msg = Session.exec Session.initial "info" in
  Alcotest.(check bool) "needs a load" true (contains ~needle:"no instance" msg)

let test_load_and_info () =
  let st = load () in
  let _, info = Session.exec st "info" in
  Alcotest.(check bool) "mentions conflicts" true (contains ~needle:"conflicts: 3" info);
  Alcotest.(check bool) "mentions schema" true (contains ~needle:"Mgr" info);
  Alcotest.(check bool) "reports the intern dictionary" true
    (contains ~needle:"interned: " info)

let test_family_switch () =
  let st = load () in
  let st, msg = Session.exec st "family g" in
  Alcotest.(check bool) "switched" true (contains ~needle:"G-Rep" msg);
  Alcotest.(check bool) "state updated" true (Session.family st = Family.G);
  let _, err = Session.exec st "family bogus" in
  Alcotest.(check bool) "bad family" true (contains ~needle:"unknown family" err)

let test_repairs_and_count () =
  let st = load () in
  let _, out = Session.exec st "repairs" in
  Alcotest.(check bool) "two C-repairs" true
    (contains ~needle:"2 preferred repair(s)" out);
  let _, out = Session.exec st "count" in
  Alcotest.(check bool) "count agrees" true
    (contains ~needle:"2 preferred repair(s)" out)

let test_query_commands () =
  let st = load () in
  let _, out =
    Session.exec st
      "query Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  Alcotest.(check bool) "certain disjunction" true
    (contains ~needle:"certainly true" out);
  let _, out = Session.exec st "query exists d, s, r. Mgr('Mary', d, s, r)" in
  Alcotest.(check bool) "quantified query" true
    (contains ~needle:"certainly true" out);
  let _, out = Session.exec st "query Mgr(n, 'R&D', s, r)" in
  Alcotest.(check bool) "open query" true (contains ~needle:"certain answer" out);
  let _, out = Session.exec st "query Mgr(" in
  Alcotest.(check bool) "parse error surfaces" true (contains ~needle:"error" out)

let test_qtrace () =
  let st = load () in
  let _, out =
    Session.exec st
      "qtrace Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  Alcotest.(check bool) "verdict reported" true
    (contains ~needle:"certainly true" out);
  Alcotest.(check bool) "component breakdown" true
    (contains ~needle:"components:" out);
  Alcotest.(check bool) "cache counters" true
    (contains ~needle:"component cache" out);
  let _, err = Session.exec st "qtrace Mgr(n, 'R&D', s, r)" in
  Alcotest.(check bool) "open query rejected" true
    (contains ~needle:"closed query" err);
  let _, usage = Session.exec st "qtrace" in
  Alcotest.(check bool) "bare qtrace prints usage" true
    (contains ~needle:"usage" usage)

let test_explain_and_status () =
  let st = load () in
  let _, out = Session.exec st "explain Mgr('Mary', 'IT', 20000, 1)" in
  Alcotest.(check bool) "ambiguous with witnesses" true
    (contains ~needle:"holds in" out && contains ~needle:"fails in" out);
  let _, out = Session.exec st "status 'Mary' 'R&D' 40000 3" in
  Alcotest.(check bool) "status renders" true (contains ~needle:"conflicts with" out);
  let _, out = Session.exec st "status 'Ghost' 'X' 1 1" in
  Alcotest.(check bool) "unknown tuple" true (contains ~needle:"error" out)

let test_facts_and_aggregate () =
  let st = load () in
  let _, out = Session.exec st "facts" in
  Alcotest.(check bool) "all disputed" true (contains ~needle:"disputed (4)" out);
  let _, out = Session.exec st "aggregate sum:Salary" in
  Alcotest.(check bool) "range" true (contains ~needle:"SUM(Salary)" out);
  let _, out = Session.exec st "aggregate bogus" in
  Alcotest.(check bool) "bad aggregate" true (contains ~needle:"error" out)

let test_clean () =
  let st = load () in
  let _, out = Session.exec st "clean" in
  Alcotest.(check bool) "reports kept tuples" true
    (contains ~needle:"keeps 2 tuples" out);
  let _, out = Session.exec st "trace" in
  Alcotest.(check bool) "trace shows steps" true (contains ~needle:"step 1" out);
  let _, out = Session.exec st "stats" in
  Alcotest.(check bool) "stats summarize" true
    (contains ~needle:"preferred repairs:      2" out)

let test_prefer_and_save () =
  let st = load () in
  (* before: the s1-vs-s2 conflict is unresolved; Q2 disjunction already
     certain, but the single fact Mary-R&D is ambiguous *)
  let _, before = Session.exec st "query Mgr('Mary', 'R&D', 40000, 3)" in
  Alcotest.(check bool) "ambiguous before" true (contains ~needle:"ambiguous" before);
  (* adding s1 > s2 orients the remaining conflict *)
  let st, msg = Session.exec st "prefer source s1 > s2" in
  Alcotest.(check bool) "3 oriented now" true (contains ~needle:"3 conflict" msg);
  let _, after = Session.exec st "query Mgr('Mary', 'R&D', 40000, 3)" in
  Alcotest.(check bool) "certain after" true (contains ~needle:"certainly true" after);
  (* bad preferences are rejected and do not corrupt the state *)
  let st, err = Session.exec st "prefer source s2 > s1" in
  Alcotest.(check bool) "cyclic source order rejected" true
    (contains ~needle:"error" err);
  let _, still = Session.exec st "query Mgr('Mary', 'R&D', 40000, 3)" in
  Alcotest.(check bool) "state intact" true (contains ~needle:"certainly true" still);
  (* save and reload *)
  let path = Filename.temp_file "prefdb" ".pdb" in
  let st, msg = Session.exec st ("save " ^ path) in
  Alcotest.(check bool) "saved" true (contains ~needle:"saved" msg);
  let st2, _ = Session.exec st ("load " ^ path) in
  let _, reloaded = Session.exec st2 "query Mgr('Mary', 'R&D', 40000, 3)" in
  Alcotest.(check bool) "preferences survive the round-trip" true
    (contains ~needle:"certainly true" reloaded)

let test_insert_delete_undo () =
  let st = load () in
  let _, count0 = Session.exec st "count" in
  (* a fifth Mary violates the key FD against both existing Mary tuples *)
  let st, out = Session.exec st "insert 'Mary' 'HR' 1 1" in
  Alcotest.(check bool) "insert reports the batch" true
    (contains ~needle:"+1 tuple(s)" out);
  Alcotest.(check bool) "insert creates conflict edges" true
    (not (contains ~needle:"(0 conflict edge(s) added" out));
  let _, info = Session.exec st "info" in
  Alcotest.(check bool) "info sees 5 tuples" true (contains ~needle:"tuples:   5" info);
  (* inserting the same tuple again is rejected, state intact *)
  let st, err = Session.exec st "insert 'Mary' 'HR' 1 1" in
  Alcotest.(check bool) "duplicate insert rejected" true
    (Session.is_error_output err);
  (* deleting an absent tuple is rejected too *)
  let st, err = Session.exec st "delete 'Ghost' 'X' 1 1" in
  Alcotest.(check bool) "absent delete rejected" true (Session.is_error_output err);
  (* delete the insertion, then undo both batches: back to the start *)
  let st, out = Session.exec st "delete 'Mary' 'HR' 1 1" in
  Alcotest.(check bool) "delete reports the batch" true
    (contains ~needle:"-1 tuple(s)" out);
  let st, _ = Session.exec st "undo" in
  let _, info = Session.exec st "info" in
  Alcotest.(check bool) "undo restores the insertion" true
    (contains ~needle:"tuples:   5" info);
  let st, _ = Session.exec st "undo" in
  let _, count1 = Session.exec st "count" in
  check Alcotest.string "counts restored after full rewind" count0 count1;
  let _, err = Session.exec st "undo" in
  Alcotest.(check bool) "undo past the beginning errors" true
    (Session.is_error_output err)

let test_save_load_round_trip () =
  (* property: save → load → save is a fixed point of the instance
     format, and the reloaded session answers exactly like the session
     that saved — including after incremental updates *)
  let st = load () in
  let st, _ = Session.exec st "insert 'Zoe' 'HR' 1 1" in
  let st, _ = Session.exec st "delete 'John' 'PR' 30000 4" in
  let p1 = Filename.temp_file "prefdb" ".pdb" in
  let st, msg = Session.exec st ("save " ^ p1) in
  Alcotest.(check bool) "saved" true (contains ~needle:"saved" msg);
  let st2, msg = Session.exec Session.initial ("load " ^ p1) in
  Alcotest.(check bool) "reloaded" true (contains ~needle:"4 tuples" msg);
  let p2 = Filename.temp_file "prefdb" ".pdb" in
  let _, _ = Session.exec st2 ("save " ^ p2) in
  let slurp p = In_channel.with_open_text p In_channel.input_all in
  check Alcotest.string "save -> load -> save is a fixed point" (slurp p1)
    (slurp p2);
  List.iter
    (fun cmd ->
      let _, a = Session.exec st cmd in
      let _, b = Session.exec st2 cmd in
      check Alcotest.string ("round-trip preserves '" ^ cmd ^ "'") a b)
    [
      "info"; "count"; "facts"; "repairs";
      "query Mgr('Zoe', 'HR', 1, 1)";
      "query exists d, s, r. Mgr('Mary', d, s, r)";
    ]

let test_unknown_and_help () =
  let st = load () in
  let _, out = Session.exec st "frobnicate" in
  Alcotest.(check bool) "unknown command" true (contains ~needle:"unknown command" out);
  let _, out = Session.exec st "help" in
  Alcotest.(check bool) "help lists commands" true (contains ~needle:"aggregate" out);
  let _, out = Session.exec st "" in
  Alcotest.(check bool) "empty line" true (out = "")

let test_profile_and_telemetry () =
  let st = load () in
  (* profile: verdict plus a span tree, no session sink required *)
  let _, out =
    Session.exec st
      "profile Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  Alcotest.(check bool) "verdict reported" true
    (contains ~needle:"certainly true" out);
  Alcotest.(check bool) "profile tree rendered" true
    (contains ~needle:"cqa.certainty" out);
  Alcotest.(check bool) "route recorded" true
    (contains ~needle:"route=" out);
  let _, err = Session.exec st "profile Mgr(n, 'R&D', s, r)" in
  Alcotest.(check bool) "open query rejected" true
    (contains ~needle:"closed query" err);
  let _, usage = Session.exec st "profile" in
  Alcotest.(check bool) "bare profile prints usage" true
    (contains ~needle:"usage" usage);
  (* with a session-wide sink installed (the shell's --trace-out path),
     every command runs inside a shell.<cmd> span and the commands that
     build their own local trees tee rather than steal the stream *)
  let buf = Obs.Sink.Memory.create () in
  Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
  let st, _ = Session.exec st "stats" in
  let st, _ =
    Session.exec st "qtrace Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  let _, out =
    Session.exec st
      "profile Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  Obs.Span.set_sink None;
  Alcotest.(check bool) "profile output intact under tee" true
    (contains ~needle:"cqa.certainty" out);
  let names =
    List.filter_map
      (fun (e : Obs.Event.t) ->
        match e.phase with Obs.Event.Begin -> Some e.name | _ -> None)
      (Obs.Sink.Memory.events buf)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " captured") true
        (List.mem needle names))
    [ "shell.stats"; "shell.qtrace"; "shell.profile"; "cqa.certainty" ];
  match Obs.Export.validate_jsonl (Obs.Export.jsonl_string (Obs.Sink.Memory.events buf)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("session trace invalid: " ^ e)

let suite =
  [
    ("initial state", `Quick, test_initial_state);
    ("load and info", `Quick, test_load_and_info);
    ("family switching", `Quick, test_family_switch);
    ("repairs and count", `Quick, test_repairs_and_count);
    ("query command", `Quick, test_query_commands);
    ("qtrace command", `Quick, test_qtrace);
    ("explain and status", `Quick, test_explain_and_status);
    ("facts and aggregate", `Quick, test_facts_and_aggregate);
    ("clean", `Quick, test_clean);
    ("prefer and save", `Quick, test_prefer_and_save);
    ("insert, delete, undo", `Quick, test_insert_delete_undo);
    ("save/load round-trip", `Quick, test_save_load_round_trip);
    ("unknown commands and help", `Quick, test_unknown_and_help);
    ("profile command and session telemetry", `Quick, test_profile_and_telemetry);
  ]
