(* Parallel ≡ sequential equivalence for the domain-pool paths.

   The pool's contract is that a parallel evaluation is bit-identical to
   the sequential one — same verdicts, same counts, same bindings, and
   (for the warm/count paths, whose counter semantics are deterministic)
   the same observability counters after merging the per-lane shards.
   Each property draws a random instance and a random pool width in
   1..4, computes the reference answer on a fresh decomposition at one
   domain, recomputes on another fresh decomposition at the drawn width,
   and demands equality. The width is restored after every case, so
   these tests compose with the rest of the suite under any
   [PREFDB_JOBS] setting. *)

module Conflict = Core.Conflict
module Family = Core.Family
module Decompose = Core.Decompose
module Pool = Core.Pool

type case = {
  seed : int;
  n : int;
  shape : int;  (* 0: one key; 1: two FDs; 2: disjoint chains *)
  density_pct : int;
  jobs : int;  (* pool width for the parallel side *)
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 2 12 in
    let* shape = int_bound 2 in
    let* density_pct = int_bound 100 in
    let* jobs = int_range 1 4 in
    return { seed; n; shape; density_pct; jobs })

let case_print c =
  Printf.sprintf "{seed=%d; n=%d; shape=%d; density=%d%%; jobs=%d}" c.seed c.n
    c.shape c.density_pct c.jobs

let build_case c =
  let rng = Workload.Prng.create c.seed in
  let rel, fds =
    match c.shape with
    | 0 ->
      Workload.Generator.random_instance rng ~n:c.n ~key_values:3
        ~payload_values:2
    | 1 ->
      Workload.Generator.random_two_fd_instance rng ~n:c.n ~a_values:3
        ~c_values:3 ~v_values:2
    | _ ->
      Workload.Generator.chain_components ~components:(max 1 (c.n / 3)) ~size:3
  in
  let conflict = Conflict.build fds rel in
  let p =
    Workload.Generator.random_priority rng
      ~density:(float_of_int c.density_pct /. 100.)
      conflict
  in
  (conflict, p)

let with_jobs k f =
  let saved = Pool.jobs () in
  Pool.set_jobs k;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let prop name ?(count = 40) f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:case_print case_gen f)

(* --- queries -------------------------------------------------------------- *)

let atom_of c v =
  Query.Ast.Atom
    ( Relational.Schema.name (Conflict.schema c),
      List.map
        (fun x -> Query.Ast.Const x)
        (Relational.Tuple.values (Conflict.tuple c v)) )

let ground_query c =
  if Conflict.size c >= 2 then
    Query.Ast.Or (atom_of c 0, Query.Ast.Not (atom_of c 1))
  else atom_of c 0

(* first column existentially quantified away: the two-pass
   deviation-scan route, whose first pass is the parallel one *)
let quantified_query c =
  match Relational.Tuple.values (Conflict.tuple c 0) with
  | _ :: rest ->
    Query.Ast.Exists
      ( [ "x" ],
        Query.Ast.Atom
          ( Relational.Schema.name (Conflict.schema c),
            Query.Ast.Var "x"
            :: List.map (fun v -> Query.Ast.Const v) rest ) )
  | [] -> assert false

(* the fully open identity query: bindings = tuples in every repair *)
let open_query c =
  let arity = List.length (Relational.Tuple.values (Conflict.tuple c 0)) in
  Query.Ast.Atom
    ( Relational.Schema.name (Conflict.schema c),
      List.init arity (fun i -> Query.Ast.Var (Printf.sprintf "x%d" i)) )

(* --- properties ------------------------------------------------------------ *)

let certainty_equiv =
  prop "certainty: parallel verdict = sequential verdict" (fun c ->
      let conflict, p = build_case c in
      List.for_all
        (fun family ->
          List.for_all
            (fun q ->
              let reference =
                with_jobs 1 (fun () ->
                    Decompose.certainty family (Decompose.make conflict p) q)
              in
              let parallel =
                with_jobs c.jobs (fun () ->
                    Decompose.certainty family (Decompose.make conflict p) q)
              in
              reference = parallel)
            [ ground_query conflict; quantified_query conflict ])
        [ Family.Rep; Family.C ])

let count_equiv =
  prop "count: parallel product = sequential product" (fun c ->
      let conflict, p = build_case c in
      List.for_all
        (fun family ->
          let reference =
            with_jobs 1 (fun () ->
                Decompose.count family (Decompose.make conflict p))
          in
          let parallel =
            with_jobs c.jobs (fun () ->
                Decompose.count family (Decompose.make conflict p))
          in
          reference = parallel)
        Family.all_names)

let open_answers_equiv =
  prop "consistent_answers_open: parallel = sequential" (fun c ->
      let conflict, p = build_case c in
      let q = open_query conflict in
      let reference =
        with_jobs 1 (fun () ->
            Decompose.consistent_answers_open Family.Rep
              (Decompose.make conflict p) q)
      in
      let parallel =
        with_jobs c.jobs (fun () ->
            Decompose.consistent_answers_open Family.Rep
              (Decompose.make conflict p) q)
      in
      reference = parallel)

(* The warm/count counter contract is deterministic (unlike the
   early-exit scan counters, which may legitimately examine more
   components before a parallel stop flag propagates): after a cold
   [warm] + [count] the merged per-lane shards must equal the
   sequential run's counters field for field. *)
let counter_hygiene =
  prop "warm+count counters: merged shards = sequential" (fun c ->
      let conflict, p = build_case c in
      let run k =
        with_jobs k (fun () ->
            let d = Decompose.make conflict p in
            Decompose.warm Family.Rep d;
            let n = Decompose.count Family.Rep d in
            (* a second count replays purely from cache *)
            let n' = Decompose.count Family.Rep d in
            let z = Decompose.counters d in
            ( n,
              n',
              z.Decompose.cache_hits,
              z.Decompose.cache_misses,
              z.Decompose.component_repairs ))
      in
      run 1 = run c.jobs)

let suite =
  [ certainty_equiv; count_equiv; open_answers_equiv; counter_hygiene ]
