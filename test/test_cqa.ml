(* Tests for (preferred) consistent query answers, Definition 3 and §4. *)

module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family
module Cqa = Core.Cqa

let check = Alcotest.check
let parse = Query.Parser.parse_exn

let certainty =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Cqa.certainty_to_string c))
    (fun a b -> a = b)

let q1 =
  "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and Mgr('John',x2,y2,z2) \
   and y1 < y2"

let q2 =
  "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and Mgr('John',x2,y2,z2) \
   and y1 > y2 and z1 < z2"

let mgr_with_priority () =
  let rel, fds, prov = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  (c, Core.Pref_rules.apply_exn c rule)

let test_example2_q1 () =
  (* true is NOT a consistent answer to Q1 (it fails in r1, r2). *)
  let c, _ = mgr_with_priority () in
  let p = Priority.empty c in
  Alcotest.(check bool) "Q1 not certain" false
    (Cqa.consistent_answer Family.Rep c p (parse q1));
  check certainty "Q1 ambiguous across repairs" Cqa.Ambiguous
    (Cqa.certainty Family.Rep c p (parse q1))

let test_example3_q2 () =
  let c, p = mgr_with_priority () in
  (* without preferences, Q2 is ambiguous *)
  Alcotest.(check bool) "Q2 not Rep-certain" false
    (Cqa.consistent_answer Family.Rep c (Priority.empty c) (parse q2));
  (* with the reliability priority, every preferred family answers true *)
  List.iter
    (fun family ->
      Alcotest.(check bool)
        (Family.name_to_string family ^ " answers true")
        true
        (Cqa.consistent_answer family c p (parse q2)))
    [ Family.L; Family.S; Family.G; Family.C ]

let test_certainty_three_values () =
  let c, p = mgr_with_priority () in
  check certainty "tautology" Cqa.Certainly_true
    (Cqa.certainty Family.Rep c p (parse "true"));
  check certainty "contradiction" Cqa.Certainly_false
    (Cqa.certainty Family.Rep c p (parse "false"));
  check certainty "preferred Q2 true" Cqa.Certainly_true
    (Cqa.certainty Family.C c p (parse q2))

let test_open_queries () =
  let c, p = mgr_with_priority () in
  (* who manages which department, in every preferred repair? *)
  let free, rows = Cqa.consistent_answers_open Family.C c p (parse "exists y, z. Mgr(n, d, y, z)") in
  check Alcotest.(list string) "free vars" [ "d"; "n" ] free;
  (* r1: Mary/R&D, John/PR. r2: John/R&D, Mary/IT. No common pair. *)
  check Alcotest.int "no certain manager-department pair" 0 (List.length rows);
  (* but both repairs agree Mary and John are managers *)
  let _, names =
    Cqa.consistent_answers_open Family.C c p (parse "exists d, y, z. Mgr(n, d, y, z)")
  in
  check Alcotest.int "two certain names" 2 (List.length names)

let test_open_queries_rep_family () =
  let rel, fds = Workload.Generator.ladder 2 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  ignore rel;
  (* R(A,B): key values 0 and 1 each have two variants; A values certain *)
  let _, rows = Cqa.consistent_answers_open Family.Rep c p (parse "exists b. R(a, b)") in
  check Alcotest.int "both keys certain" 2 (List.length rows)

(* --- the polynomial ground algorithm ------------------------------------- *)

let test_ground_matches_naive () =
  (* cross-validate the PTIME algorithm against repair enumeration on
     random instances and random ground queries *)
  let rng = Workload.Prng.create 101 in
  let random_fact rng =
    Printf.sprintf "R(%d, %d, %d)" (Workload.Prng.int rng 3)
      (Workload.Prng.int rng 2) (Workload.Prng.int rng 2)
  in
  let rec random_query rng depth =
    if depth = 0 || Workload.Prng.int rng 3 = 0 then random_fact rng
    else
      match Workload.Prng.int rng 3 with
      | 0 -> Printf.sprintf "(%s and %s)" (random_query rng (depth - 1)) (random_query rng (depth - 1))
      | 1 -> Printf.sprintf "(%s or %s)" (random_query rng (depth - 1)) (random_query rng (depth - 1))
      | _ -> Printf.sprintf "(not %s)" (random_query rng (depth - 1))
  in
  for _ = 1 to 60 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:8 ~key_values:3 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let q = parse (random_query rng 3) in
    let naive = Cqa.certainty Family.Rep c (Priority.empty c) q in
    match Cqa.ground_certainty c q with
    | Error e -> Alcotest.fail e
    | Ok fast -> check certainty "PTIME = naive" naive fast
  done

let test_ground_simple_cases () =
  let rel, fds = Workload.Generator.ladder 2 in
  let c = Conflict.build fds rel in
  (* every repair keeps exactly one of R(0,0), R(0,1) *)
  let cert q = Result.get_ok (Cqa.ground_certainty c (parse q)) in
  check certainty "disjunction certain" Cqa.Certainly_true
    (cert "R(0, 0) or R(0, 1)");
  check certainty "single fact ambiguous" Cqa.Ambiguous (cert "R(0, 0)");
  check certainty "conjunction impossible" Cqa.Certainly_false
    (cert "R(0, 0) and R(0, 1)");
  check certainty "fact not in instance" Cqa.Certainly_false (cert "R(7, 7)");
  check certainty "negated absent fact" Cqa.Certainly_true (cert "not R(7, 7)");
  check certainty "cross-pair ambiguous" Cqa.Ambiguous
    (cert "R(0, 0) and R(1, 1)")

let test_ground_rejects_non_ground () =
  let rel, fds = Workload.Generator.ladder 1 in
  let c = Conflict.build fds rel in
  Alcotest.(check bool) "variable rejected" true
    (Result.is_error (Cqa.ground_certainty c (parse "R(x, 0)")));
  Alcotest.(check bool) "quantifier rejected" true
    (Result.is_error (Cqa.ground_certainty c (parse "exists x. R(x, 0)")));
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (Cqa.ground_certainty c (parse "S(1, 2)")))

let test_ground_consistent_answer () =
  let rel, fds = Workload.Generator.ladder 2 in
  let c = Conflict.build fds rel in
  Alcotest.(check bool) "certain disjunction" true
    (Result.get_ok (Cqa.ground_consistent_answer c (parse "R(0, 0) or R(0, 1)")));
  Alcotest.(check bool) "ambiguous fact" false
    (Result.get_ok (Cqa.ground_consistent_answer c (parse "R(0, 0)")))

let test_theorem3_shape () =
  (* The quantifier-free single-atom query of Theorems 3-5: preferred CQA
     can flip a ground fact from ambiguous to certain. *)
  let c, p = mgr_with_priority () in
  let q = parse "Mgr('Mary', 'IT', 20000, 1)" in
  check certainty "ambiguous under Rep" Cqa.Ambiguous
    (Cqa.certainty Family.Rep c (Priority.empty c) q);
  check certainty "still ambiguous under C (r2 keeps Mary-IT)" Cqa.Ambiguous
    (Cqa.certainty Family.C c p q);
  (* The flip: preferences exclude the s3-only repair r3, so the
     disjunction "Mary manages R&D or John manages R&D" — false in r3,
     true in r1 and r2 — becomes certain. *)
  let q_or = parse "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)" in
  check certainty "disjunction ambiguous under Rep" Cqa.Ambiguous
    (Cqa.certainty Family.Rep c (Priority.empty c) q_or);
  check certainty "certain under preferences" Cqa.Certainly_true
    (Cqa.certainty Family.C c p q_or)

(* --- empty-family semantics (P1) ------------------------------------------ *)

(* The ISSUE's foregrounded bugfix: certainty used to degenerate to a
   vacuous Certainly_true when the enumeration yielded no repair. The fix
   makes that case an explicit Cqa.Empty_family. P1 says the case is
   unreachable for well-formed instances — each family always selects at
   least one repair — so these tests lock BOTH sides of the contract:
   (a) on a spread of instances, including the degenerate empty one, every
   family is non-empty and its verdicts are genuine, not vacuous;
   (b) the verdict on "false" is Certainly_false, which a vacuous
   universal quantification would report as Certainly_true. *)

let p1_instances () =
  let conflict_of (rel, fds) = Conflict.build fds rel in
  let mgr, mgr_p = mgr_with_priority () in
  let empty_rel =
    let rel, fds = Workload.Generator.ladder 0 in
    Conflict.build fds rel
  in
  let one_tuple =
    let schema =
      Relational.Schema.make "R" [ ("A", Relational.Schema.TInt) ]
    in
    Conflict.build [] (Relational.Relation.of_rows schema [ [ Relational.Value.Int 7 ] ])
  in
  let clique = conflict_of (Workload.Generator.key_clusters ~groups:2 ~width:3) in
  let cycle = conflict_of (Workload.Generator.mutual_cycle 2) in
  let lad = conflict_of (Workload.Generator.ladder 3) in
  [
    ("mgr+priority", mgr, mgr_p);
    ("empty instance", empty_rel, Priority.empty empty_rel);
    ("single tuple", one_tuple, Priority.empty one_tuple);
    ("two 3-cliques", clique, Priority.empty clique);
    ("cycle C4", cycle, Priority.empty cycle);
    ("ladder 3", lad, Priority.empty lad);
  ]

let test_p1_no_vacuous_verdicts () =
  List.iter
    (fun (name, c, p) ->
      List.iter
        (fun family ->
          let label s = name ^ "/" ^ Family.name_to_string family ^ ": " ^ s in
          (* P1: the family is non-empty... *)
          Alcotest.(check bool)
            (label "one finds a repair")
            true
            (Cqa.certainty family c p (parse "true") = Cqa.Certainly_true);
          Alcotest.(check bool)
            (label "family enumerates non-empty")
            true
            (Family.repairs family c p <> []);
          Alcotest.(check bool) (label "one is Some") true (Family.one family c p <> None);
          (* ...so verdicts are never the vacuous degenerate ones *)
          check certainty (label "false is certainly false") Cqa.Certainly_false
            (Cqa.certainty family c p (parse "false"));
          Alcotest.(check bool)
            (label "false is not a consistent answer")
            false
            (Cqa.consistent_answer family c p (parse "false")))
        Family.all_names)
    (p1_instances ())

let test_empty_instance_semantics () =
  (* 0 tuples: the single repair is the empty relation, not "no repairs".
     Certainty must reflect evaluation in that empty repair. *)
  let rel, fds = Workload.Generator.ladder 0 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  List.iter
    (fun family ->
      check certainty
        (Family.name_to_string family ^ ": no fact holds in the empty repair")
        Cqa.Certainly_false
        (Cqa.certainty family c p (parse "R(0, 0)"));
      check certainty
        (Family.name_to_string family ^ ": its negation is certain")
        Cqa.Certainly_true
        (Cqa.certainty family c p (parse "not R(0, 0)"));
      let free, rows =
        Cqa.consistent_answers_open family c p (parse "R(a, b)")
      in
      check Alcotest.(list string) "free vars survive" [ "a"; "b" ] free;
      check Alcotest.int
        (Family.name_to_string family ^ ": no certain bindings")
        0 (List.length rows))
    Family.all_names

let test_empty_family_exception_exists () =
  (* the exception carries the family so a violation is diagnosable *)
  match raise (Cqa.Empty_family Family.G) with
  | exception Cqa.Empty_family f ->
    check Alcotest.string "family preserved" "G-Rep" (Family.name_to_string f)
  | _ -> Alcotest.fail "Empty_family did not raise"

let suite =
  [
    ("Example 2: Q1 has no consistent answer", `Quick, test_example2_q1);
    ("Example 3: preferences make Q2 certain", `Quick, test_example3_q2);
    ("three-valued certainty", `Quick, test_certainty_three_values);
    ("open queries: certain bindings", `Quick, test_open_queries);
    ("open queries under Rep", `Quick, test_open_queries_rep_family);
    ("PTIME ground CQA = naive enumeration", `Quick, test_ground_matches_naive);
    ("ground CQA basics", `Quick, test_ground_simple_cases);
    ("ground CQA rejects non-ground input", `Quick, test_ground_rejects_non_ground);
    ("ground consistent answers", `Quick, test_ground_consistent_answer);
    ("preferences flip ground certainty", `Quick, test_theorem3_shape);
    ("P1: no family ever yields a vacuous verdict", `Quick, test_p1_no_vacuous_verdicts);
    ("empty instance has one (empty) repair, not zero", `Quick, test_empty_instance_semantics);
    ("Empty_family carries the offending family", `Quick, test_empty_family_exception_exists);
  ]
