(* Tests for the telemetry engine: span bracketing (also under
   exceptions), annotation plumbing, sink bounding, export round-trips
   and the profile aggregation. A QCheck property locks the stream
   invariants — monotone timestamps, balanced brackets — over random
   span programs. *)

let check = Alcotest.check

(* Run [f] under a fresh in-memory sink and hand back the recorded
   events; the previous sink is restored even if [f] raises. *)
let record ?capacity f =
  let buf = Obs.Sink.Memory.create ?capacity () in
  let prev = Obs.Span.sink () in
  Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
  (match f () with
  | _ -> Obs.Span.set_sink prev
  | exception e ->
    Obs.Span.set_sink prev;
    raise e);
  (Obs.Sink.Memory.events buf, buf)

let shape events =
  List.map
    (fun (e : Obs.Event.t) ->
      let ph =
        match e.phase with
        | Obs.Event.Begin -> "B"
        | Obs.Event.End -> "E"
        | Obs.Event.Instant -> "i"
      in
      ph ^ ":" ^ e.name)
    events

let test_nesting () =
  let events, _ =
    record (fun () ->
        Obs.Span.with_span "outer" (fun () ->
            Obs.Span.with_span "inner" (fun () -> ());
            Obs.Span.instant "mark"))
  in
  check (Alcotest.list Alcotest.string) "bracketing"
    [ "B:outer"; "B:inner"; "E:inner"; "i:mark"; "E:outer" ]
    (shape events);
  check Alcotest.int "quiescent" 0 (Obs.Span.depth ())

let test_disabled_noop () =
  Obs.Span.set_sink None;
  check Alcotest.bool "disabled" false (Obs.Span.enabled ());
  (* all entry points must be inert without a sink *)
  let r = Obs.Span.with_span "x" (fun () -> 41 + 1) in
  Obs.Span.annotate [ ("k", Obs.Event.Int 1) ];
  Obs.Span.instant "i";
  check Alcotest.int "value through" 42 r;
  check Alcotest.int "no open spans" 0 (Obs.Span.depth ())

exception Boom

let test_exception_balance () =
  let events, _ =
    record (fun () ->
        try
          Obs.Span.with_span "outer" (fun () ->
              Obs.Span.with_span "inner" (fun () -> raise Boom))
        with Boom -> ())
  in
  check (Alcotest.list Alcotest.string) "closed on the way out"
    [ "B:outer"; "B:inner"; "E:inner"; "E:outer" ]
    (shape events);
  check Alcotest.int "stack unwound" 0 (Obs.Span.depth ());
  (* the exception itself must escape with_span *)
  let escaped = ref false in
  let events, _ =
    record (fun () ->
        (try Obs.Span.with_span "s" (fun () -> raise Boom)
         with Boom -> escaped := true))
  in
  check Alcotest.bool "re-raised" true !escaped;
  check (Alcotest.list Alcotest.string) "still balanced" [ "B:s"; "E:s" ]
    (shape events)

let test_annotate () =
  let events, _ =
    record (fun () ->
        Obs.Span.with_span "s" (fun () ->
            Obs.Span.annotate [ ("route", Obs.Event.Str "ground") ];
            (* same key again: replaced, not duplicated *)
            Obs.Span.annotate
              [ ("route", Obs.Event.Str "full-product");
                ("n", Obs.Event.Int 7) ]))
  in
  match List.rev events with
  | ({ phase = Obs.Event.End; args; _ } : Obs.Event.t) :: _ ->
    check Alcotest.string "last write wins" "full-product"
      (Obs.Event.arg_to_string (List.assoc "route" args));
    check Alcotest.string "int arg" "7"
      (Obs.Event.arg_to_string (List.assoc "n" args));
    check Alcotest.int "no duplicate keys" 2 (List.length args)
  | _ -> Alcotest.fail "expected a trailing End event"

let test_memory_bound () =
  let events, buf =
    record ~capacity:4 (fun () ->
        for _ = 1 to 10 do
          Obs.Span.with_span "s" (fun () -> ())
        done)
  in
  check Alcotest.bool "dropped some" true (Obs.Sink.Memory.dropped buf > 0);
  (* whatever is kept must still bracket: validate the chrome export *)
  (match Obs.Export.validate (Obs.Export.chrome events) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("truncated log unbalanced: " ^ e));
  check Alcotest.int "length matches" (List.length events)
    (Obs.Sink.Memory.length buf)

let test_jsonl_round_trip () =
  let events, _ =
    record (fun () ->
        Obs.Span.with_span "outer"
          ~args:[ ("family", Obs.Event.Str "rep") ]
          (fun () ->
            Obs.Span.annotate
              [ ("hits", Obs.Event.Int 3);
                ("share", Obs.Event.Float 0.5);
                ("ok", Obs.Event.Bool true) ];
            Obs.Span.instant "tick"))
  in
  let text = Obs.Export.jsonl_string events in
  (match Obs.Export.validate_jsonl text with
  | Ok n -> check Alcotest.int "validated all lines" (List.length events) n
  | Error e -> Alcotest.fail e);
  match Obs.Export.events_of_jsonl text with
  | Error e -> Alcotest.fail e
  | Ok back ->
    check Alcotest.int "same cardinality" (List.length events)
      (List.length back);
    List.iter2
      (fun (a : Obs.Event.t) (b : Obs.Event.t) ->
        check Alcotest.bool "phase" true (a.phase = b.phase);
        check Alcotest.string "name" a.name b.name;
        check Alcotest.bool "args" true (a.args = b.args);
        check (Alcotest.float 1e-6) "ts" a.ts b.ts)
      events back

let test_chrome_export () =
  let events, _ =
    record (fun () ->
        Obs.Span.with_span "a" (fun () -> Obs.Span.with_span "b" (fun () -> ())))
  in
  let json = Obs.Export.chrome events in
  (match Obs.Export.validate json with
  | Ok n -> check Alcotest.int "all events present" 4 n
  | Error e -> Alcotest.fail e);
  (* a reparse of the rendered string validates identically *)
  match Obs.Json.of_string (Obs.Export.chrome_string events) with
  | Error e -> Alcotest.fail e
  | Ok reparsed -> (
    match Obs.Export.validate reparsed with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("rendered trace invalid: " ^ e))

let test_profile_merge () =
  let events, _ =
    record (fun () ->
        Obs.Span.with_span "root" (fun () ->
            for _ = 1 to 3 do
              Obs.Span.with_span "leaf" (fun () ->
                  Obs.Span.annotate [ ("n", Obs.Event.Int 2) ])
            done))
  in
  match Obs.Profile.tree events with
  | [ root ] -> (
    check Alcotest.string "root name" "root" root.Obs.Profile.name;
    match root.Obs.Profile.children with
    | [ leaf ] ->
      check Alcotest.int "siblings merged" 3 leaf.Obs.Profile.count;
      check Alcotest.string "int args summed" "6"
        (Obs.Event.arg_to_string (List.assoc "n" leaf.Obs.Profile.args))
    | cs -> Alcotest.fail (Printf.sprintf "expected 1 child, got %d" (List.length cs)))
  | ts -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length ts))

(* --- property: stream invariants over random span programs ------------------ *)

(* A random program is a forest of nested spans described by a seed;
   some leaves raise (caught at the top), some annotate, some emit
   instants. Whatever the program does, the recorded stream must keep
   monotone timestamps and balanced name-matched brackets — exactly what
   [Export.validate] checks. *)
let run_program seed =
  let rng = Workload.Prng.create seed in
  let rec go depth budget =
    if budget <= 0 then budget
    else
      match Workload.Prng.int rng 5 with
      | 0 when depth < 4 ->
        Obs.Span.with_span
          (Printf.sprintf "s%d" (Workload.Prng.int rng 3))
          (fun () -> go (depth + 1) (budget - 1))
      | 1 ->
        Obs.Span.instant "i";
        budget - 1
      | 2 ->
        Obs.Span.annotate [ ("c", Obs.Event.Int (Workload.Prng.int rng 10)) ];
        budget - 1
      | 3 -> (
        try
          Obs.Span.with_span "raiser" (fun () ->
              if Workload.Prng.int rng 2 = 0 then raise Boom;
              go (depth + 1) (budget - 1))
        with Boom -> budget - 1)
      | _ -> budget - 1
  in
  let budget = ref 40 in
  while !budget > 0 do
    budget := go 0 !budget
  done

let prop_stream_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random span programs emit valid streams"
       ~count:100
       ~print:string_of_int
       QCheck2.Gen.(int_bound 1_000_000)
       (fun seed ->
         let events, _ = record (fun () -> run_program seed) in
         (* timestamps non-decreasing: the monotone-counter half *)
         let rec monotone = function
           | (a : Obs.Event.t) :: (b : Obs.Event.t) :: rest ->
             a.ts <= b.ts && monotone (b :: rest)
           | _ -> true
         in
         monotone events
         && (match Obs.Export.validate (Obs.Export.chrome events) with
            | Ok _ -> true
            | Error _ -> false)
         &&
         match Obs.Export.validate_jsonl (Obs.Export.jsonl_string events) with
         | Ok _ -> true
         | Error _ -> false))

let suite =
  [
    ("span nesting", `Quick, test_nesting);
    ("disabled engine is inert", `Quick, test_disabled_noop);
    ("balance under exceptions", `Quick, test_exception_balance);
    ("annotate merges into End", `Quick, test_annotate);
    ("memory sink stays balanced when full", `Quick, test_memory_bound);
    ("jsonl round-trip", `Quick, test_jsonl_round_trip);
    ("chrome export validates", `Quick, test_chrome_export);
    ("profile merges siblings", `Quick, test_profile_merge);
    prop_stream_invariants;
  ]
