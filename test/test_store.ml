(* The durable store: binary snapshots, the write-ahead log, crash
   recovery and the serve loop.

   The recovery tests exercise the bit-identity contract: after a
   simulated kill -9 (the log truncated at arbitrary byte boundaries),
   reopening the store must reproduce the pre-crash state exactly —
   slot counter, fact-id → tuple mapping, live set and repair counts —
   for the longest fully-fsynced prefix of the log. *)

open Relational
module IF = Dbio.Instance_format
module Store = Dbio.Store
module Wal = Dbio.Wal
module Snapshot = Dbio.Snapshot
module Delta = Core.Delta

let check = Alcotest.check
let family = Core.Family.C

let mgr_text =
  {|relation Mgr(Name:name, Dept:name, Salary:int)
fd Dept -> Name Salary
tuple 'Mary' 'R&D' 40000  source=s1
tuple 'John' 'R&D' 10000  source=s2
tuple 'Mary' 'IT' 20000  source=s3
prefer source s1 > s3
|}

let mgr_spec () = Result.get_ok (IF.parse mgr_text)

let tuple name dept salary =
  Tuple.make [ Value.Name name; Value.Name dept; Value.Int salary ]

let temp_dir () =
  let path = Filename.temp_file "prefdb_store" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Everything observable about an instance's identity layer. *)
let state_fingerprint rel =
  let slots =
    List.init (Relation.slot_count rel) (fun i ->
        (Tuple.to_string (Relation.fact rel i), Graphs.Vset.mem i (Relation.live_ids rel)))
  in
  (Relation.slot_count rel, slots)

let check_same_state msg expected rel =
  let en, eslots = expected in
  let n, slots = state_fingerprint rel in
  check Alcotest.int (msg ^ ": slot counter") en n;
  List.iteri
    (fun i (et, elive) ->
      let t, live = List.nth slots i in
      check Alcotest.string (Printf.sprintf "%s: fact %d" msg i) et t;
      check Alcotest.bool (Printf.sprintf "%s: live %d" msg i) elive live)
    eslots

(* --- snapshots ---------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let spec = mgr_spec () in
  let spec2 = fst (Result.get_ok (Snapshot.decode (Snapshot.encode ~generation:0 spec))) in
  check Alcotest.bool "relation equal" true
    (Relation.equal spec.IF.relation spec2.IF.relation);
  check Alcotest.int "fds" 1 (List.length spec2.IF.fds);
  check Alcotest.int "prefs" 1 (List.length spec2.IF.prefs);
  check Alcotest.bool "provenance equal" true
    (Provenance.bindings spec.IF.provenance
    = Provenance.bindings spec2.IF.provenance)

let test_snapshot_preserves_tombstones () =
  let spec = mgr_spec () in
  (* tombstone one slot, append another: ids must survive the disk trip *)
  let rel =
    Relation.add
      (Relation.remove spec.IF.relation (tuple "John" "R&D" 10000))
      (tuple "Zed" "PR" 7)
  in
  let spec = { spec with IF.relation = rel } in
  let spec2 = fst (Result.get_ok (Snapshot.decode (Snapshot.encode ~generation:0 spec))) in
  check_same_state "reload" (state_fingerprint rel) spec2.IF.relation;
  check Alcotest.bool "live ids equal" true
    (Graphs.Vset.equal (Relation.live_ids rel)
       (Relation.live_ids spec2.IF.relation))

let test_snapshot_rejects_corruption () =
  let image = Snapshot.encode ~generation:0 (mgr_spec ()) in
  let expect_error what image =
    match Snapshot.decode image with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt snapshot decoded" what
  in
  expect_error "truncated header" (String.sub image 0 10);
  expect_error "truncated body" (String.sub image 0 (String.length image - 3));
  expect_error "bad magic" ("XREFDBS1" ^ String.sub image 8 (String.length image - 8));
  let flipped = Bytes.of_string image in
  let mid = String.length image - 10 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  expect_error "flipped body byte" (Bytes.to_string flipped);
  expect_error "trailing garbage" (image ^ "x")

let test_snapshot_load_keeps_intern_coherent () =
  (* loading must remap file-local dictionary ids to the process
     dictionary: a value looked up by string afterwards must hit the
     loaded tuples *)
  let spec2 = fst (Result.get_ok (Snapshot.decode (Snapshot.encode ~generation:0 (mgr_spec ())))) in
  check Alcotest.bool "membership by fresh tuple" true
    (Relation.mem spec2.IF.relation (tuple "Mary" "R&D" 40000))

(* A crafted image must be rejected before its declared counts force
   multi-gigabyte allocations: both counts are bounded by the bytes
   that could actually back them, so a CRC-valid body with an absurd
   count fails as corrupt instead of raising [Out_of_memory]. *)
let test_snapshot_rejects_oversized_counts () =
  let schema = Relation.schema (mgr_spec ()).IF.relation in
  let mk_image body =
    let out = Buffer.create 64 in
    Buffer.add_string out Snapshot.magic;
    Dbio.Binio.w_u32 out Snapshot.version;
    Dbio.Binio.w_i64 out 0 (* generation *);
    Dbio.Binio.w_i64 out (String.length body);
    Dbio.Binio.w_u32 out
      (Dbio.Binio.crc32 body ~pos:0 ~len:(String.length body));
    Buffer.add_string out body;
    Buffer.contents out
  in
  let expect_error what body =
    match Snapshot.decode (mk_image body) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt snapshot decoded" what
  in
  (* dictionary count far beyond the two bytes that follow it *)
  let b = Buffer.create 64 in
  Dbio.Codec.w_schema b schema;
  Dbio.Binio.w_u32 b 0xFFFF_FFF0;
  Buffer.add_string b "\x00\x00";
  expect_error "oversized dictionary count" (Buffer.contents b);
  (* slot count no 4-byte fact section can hold *)
  let b = Buffer.create 64 in
  Dbio.Codec.w_schema b schema;
  Dbio.Binio.w_u32 b 0 (* empty dictionary *);
  Dbio.Binio.w_u32 b 0xFFFF_FFF0 (* slots *);
  Dbio.Binio.w_u32 b 4 (* section length *);
  Buffer.add_string b "\x00\x00\x00\x00";
  expect_error "oversized slot count" (Buffer.contents b)

(* --- denial constraints through the binary layer ------------------------- *)

let denial_text =
  {|relation Emp(Name:name, Dept:name, Cap:int)
denial 'no-dup' forall 2 : t1.Name = t2.Name and t1.Dept != t2.Dept
denial 'cap' forall 1 : t1.Cap > 100
tuple 'Mary' 'R&D' 10
tuple 'Mary' 'IT' 20
tuple 'John' 'PR' 30
|}

let denial_spec () = Result.get_ok (IF.parse denial_text)
let denial_strings spec = List.map Constraints.Denial.to_string spec.IF.denials

let test_snapshot_denials_roundtrip () =
  let spec = denial_spec () in
  let spec2 =
    fst (Result.get_ok (Snapshot.decode (Snapshot.encode ~generation:0 spec)))
  in
  check
    Alcotest.(list string)
    "denials survive the binary trip" (denial_strings spec)
    (denial_strings spec2);
  check Alcotest.bool "relation equal" true
    (Relation.equal spec.IF.relation spec2.IF.relation)

(* Kill -9 over a denial-constrained store: the recovered spec must carry
   the denial list, and the hyperedge substrate rebuilt from it must
   match the pre-crash one at every fsync point. *)
let test_kill9_denial_recovery () =
  let dir = temp_dir () in
  let spec = denial_spec () in
  Result.get_ok (Store.init dir spec);
  let store = Result.get_ok (Store.open_ dir) in
  let engine = Store.engine store in
  let etuple name dept cap =
    Tuple.make [ Value.Name name; Value.Name dept; Value.Int cap ]
  in
  let hyper_fingerprint rel =
    let h = Core.Hyper.build spec.IF.denials rel in
    ( Graphs.Hypergraph.edge_count (Core.Hyper.hypergraph h),
      Core.Hdecompose.count Core.Hfamily.Rep
        (Core.Hdecompose.make h (Core.Hpriority.empty h)) )
  in
  let mutations =
    [
      (* a second John: trips 'no-dup' *)
      Wal.Batch [ Delta.Insert (etuple "John" "IT" 5) ];
      (* trips the unary 'cap' constraint *)
      Wal.Batch [ Delta.Insert (etuple "Ann" "HQ" 500) ];
      Wal.Batch [ Delta.Delete (etuple "Mary" "IT" 20) ];
      Wal.Undo;
    ]
  in
  let observe () =
    ( (Unix.stat (Store.wal_path dir)).Unix.st_size,
      state_fingerprint (Delta.relation engine),
      hyper_fingerprint (Delta.relation engine) )
  in
  let checkpoints = ref [ observe () ] in
  List.iter
    (fun entry ->
      (match entry with
      | Wal.Batch ops -> ignore (Result.get_ok (Delta.apply engine ops))
      | Wal.Undo -> ignore (Result.get_ok (Delta.undo engine))
      | Wal.Prefer _ -> assert false);
      Result.get_ok (Store.log store entry);
      checkpoints := observe () :: !checkpoints)
    mutations;
  Store.close store;
  let checkpoints = List.rev !checkpoints in
  let wal_image =
    In_channel.with_open_bin (Store.wal_path dir) In_channel.input_all
  in
  let reopen_at msg cut expected_state (expected_edges, expected_count) =
    let crash_dir = temp_dir () in
    Unix.mkdir crash_dir 0o755;
    let copy src dst =
      Out_channel.with_open_bin dst (fun oc ->
          Out_channel.output_string oc
            (In_channel.with_open_bin src In_channel.input_all))
    in
    copy (Store.snapshot_path dir) (Store.snapshot_path crash_dir);
    Out_channel.with_open_bin (Store.wal_path crash_dir) (fun oc ->
        Out_channel.output_string oc (String.sub wal_image 0 cut));
    let recovered = Result.get_ok (Store.open_ crash_dir) in
    check
      Alcotest.(list string)
      (msg ^ ": denials recovered") (denial_strings spec)
      (denial_strings (Store.spec recovered));
    let rel = Delta.relation (Store.engine recovered) in
    check_same_state msg expected_state rel;
    let edges, count = hyper_fingerprint rel in
    check Alcotest.int (msg ^ ": hyperedges") expected_edges edges;
    check Alcotest.int (msg ^ ": repair count") expected_count count;
    Store.close recovered;
    rm_rf crash_dir
  in
  List.iteri
    (fun i (size, state, hfp) ->
      reopen_at (Printf.sprintf "denial clean cut %d" i) size state hfp;
      if size + 5 <= String.length wal_image then
        reopen_at (Printf.sprintf "denial torn cut %d" i) (size + 5) state hfp)
    checkpoints;
  rm_rf dir

let test_snapshot_generation_roundtrip () =
  let _, gen =
    Result.get_ok (Snapshot.decode (Snapshot.encode ~generation:7 (mgr_spec ())))
  in
  check Alcotest.int "generation survives the trip" 7 gen

(* --- the write-ahead log ------------------------------------------------ *)

let entry_equal a b =
  match (a, b) with
  | Wal.Undo, Wal.Undo -> true
  | Wal.Prefer p, Wal.Prefer q -> p = q
  | Wal.Batch xs, Wal.Batch ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun x y ->
           match (x, y) with
           | Delta.Insert s, Delta.Insert t | Delta.Delete s, Delta.Delete t ->
             Tuple.equal s t
           | _ -> false)
         xs ys
  | _ -> false

let sample_entries () =
  [
    Wal.Batch [ Delta.Insert (tuple "Zed" "PR" 7) ];
    Wal.Batch
      [ Delta.Delete (tuple "Zed" "PR" 7); Delta.Insert (tuple "Ann" "IT" 9) ];
    Wal.Undo;
    Wal.Prefer IF.Newest;
    Wal.Prefer (IF.Source_pair ("s1", "s2"));
    Wal.Prefer (IF.Attribute ("Salary", `Larger));
  ]

let test_wal_roundtrip () =
  let path = Filename.temp_file "prefdb_wal" ".log" in
  let wal = Result.get_ok (Wal.open_append path) in
  List.iter (fun e -> Result.get_ok (Wal.append wal ~gen:3 e)) (sample_entries ());
  Wal.close wal;
  let entries, _, torn = Result.get_ok (Wal.replay path) in
  Sys.remove path;
  check Alcotest.int "no torn bytes" 0 torn;
  check Alcotest.int "all entries" (List.length (sample_entries ()))
    (List.length entries);
  List.iter2
    (fun e (g, f) ->
      check Alcotest.int "generation round-trips" 3 g;
      check Alcotest.bool "entry round-trips" true (entry_equal e f))
    (sample_entries ()) entries

let test_wal_detects_torn_tail () =
  let path = Filename.temp_file "prefdb_wal" ".log" in
  let wal = Result.get_ok (Wal.open_append path) in
  Result.get_ok (Wal.append wal ~gen:0 (Wal.Batch [ Delta.Insert (tuple "A" "B" 1) ]));
  let clean = Wal.size wal in
  Result.get_ok (Wal.append wal ~gen:0 Wal.Undo);
  Wal.close wal;
  (* overwrite one byte of the second record's payload *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let bytes = Bytes.of_string data in
  Bytes.set bytes (clean + 9) 'z';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let entries, clean_len, torn = Result.get_ok (Wal.replay path) in
  Sys.remove path;
  check Alcotest.int "one clean record" 1 (List.length entries);
  check Alcotest.int "clean prefix ends before the torn record" clean clean_len;
  check Alcotest.bool "torn bytes reported" true (torn > 0)

(* --- crash recovery ----------------------------------------------------- *)

(* Drive a store through a mutation history, remembering the log size
   and expected state after every fsync point; then simulate kill -9 at
   every byte boundary of interest — clean record boundaries and
   mid-record cuts — and assert the reopened store matches the state of
   the longest fully-written prefix. *)
let test_kill9_recovery () =
  let dir = temp_dir () in
  let spec = mgr_spec () in
  Result.get_ok (Store.init dir spec);
  let store = Result.get_ok (Store.open_ dir) in
  let engine = Store.engine store in
  let mutations =
    [
      Wal.Batch [ Delta.Insert (tuple "Zed" "PR" 7) ];
      Wal.Batch
        [ Delta.Delete (tuple "John" "R&D" 10000) ];
      Wal.Undo;
      Wal.Prefer (IF.Source_pair ("s2", "s3"));
      Wal.Batch [ Delta.Insert (tuple "Ann" "R&D" 50000) ];
    ]
  in
  (* expected state + wal size after each fsync point; index 0 = fresh *)
  let engine_ref = ref engine in
  let spec_ref = ref (Store.spec store) in
  let observe () =
    ( (Unix.stat (Store.wal_path dir)).Unix.st_size,
      state_fingerprint (Delta.relation !engine_ref),
      Core.Decompose.count family (Delta.decompose !engine_ref) )
  in
  let checkpoints = ref [ observe () ] in
  List.iter
    (fun entry ->
      (match entry with
      | Wal.Batch ops -> ignore (Result.get_ok (Delta.apply !engine_ref ops))
      | Wal.Undo -> ignore (Result.get_ok (Delta.undo !engine_ref))
      | Wal.Prefer p ->
        let spec' =
          {
            !spec_ref with
            IF.prefs = !spec_ref.IF.prefs @ [ p ];
            IF.relation = Delta.relation !engine_ref;
          }
        in
        spec_ref := spec';
        engine_ref :=
          Result.get_ok
            (Core.Delta.create
               ~rule:(Result.get_ok (IF.to_rule spec'))
               spec'.IF.fds spec'.IF.relation));
      Result.get_ok (Store.log store entry);
      checkpoints := observe () :: !checkpoints)
    mutations;
  Store.close store;
  let checkpoints = List.rev !checkpoints in
  let wal_image =
    In_channel.with_open_bin (Store.wal_path dir) In_channel.input_all
  in
  let reopen_at msg cut expected_fingerprint expected_count =
    let crash_dir = temp_dir () in
    Unix.mkdir crash_dir 0o755;
    let copy src dst =
      Out_channel.with_open_bin dst (fun oc ->
          Out_channel.output_string oc
            (In_channel.with_open_bin src In_channel.input_all))
    in
    copy (Store.snapshot_path dir) (Store.snapshot_path crash_dir);
    Out_channel.with_open_bin (Store.wal_path crash_dir) (fun oc ->
        Out_channel.output_string oc (String.sub wal_image 0 cut));
    let recovered = Result.get_ok (Store.open_ crash_dir) in
    check_same_state msg expected_fingerprint
      (Delta.relation (Store.engine recovered));
    check Alcotest.int (msg ^ ": repair count") expected_count
      (Core.Decompose.count family (Delta.decompose (Store.engine recovered)));
    Store.close recovered;
    rm_rf crash_dir
  in
  List.iteri
    (fun i (size, fingerprint, count) ->
      (* a clean cut exactly at this fsync point *)
      reopen_at (Printf.sprintf "clean cut %d" i) size fingerprint count;
      (* a torn cut a few bytes into the next record recovers to the
         same state *)
      if size + 5 <= String.length wal_image then
        reopen_at (Printf.sprintf "torn cut %d" i) (size + 5) fingerprint count)
    checkpoints;
  rm_rf dir

let test_checkpoint_truncates () =
  let dir = temp_dir () in
  Result.get_ok (Store.init dir (mgr_spec ()));
  let store = Result.get_ok (Store.open_ dir) in
  let engine = Store.engine store in
  ignore
    (Result.get_ok (Delta.apply engine [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  Result.get_ok (Store.log store (Wal.Batch [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  check Alcotest.int "one wal record" 1 (Store.wal_records store);
  let spec' =
    { (Store.spec store) with IF.relation = Delta.relation engine }
  in
  Result.get_ok (Store.checkpoint store spec');
  check Alcotest.int "wal empty after checkpoint" 0 (Store.wal_records store);
  Store.close store;
  (* reopening sees the checkpointed state with no replay *)
  let store2 = Result.get_ok (Store.open_ dir) in
  check Alcotest.int "no records replayed" 0 (Store.wal_records store2);
  check_same_state "checkpointed state"
    (state_fingerprint (Delta.relation engine))
    (Delta.relation (Store.engine store2));
  Store.close store2;
  rm_rf dir

(* The regression the review caught: insert -> snapshot -> undo used to
   journal an [Undo] that a reopened store (whose engine starts at the
   snapshot, with empty history) could not replay — bricking the store
   with no crash involved. The snapshot is now the undo horizon: such
   an undo is rejected at append time, and reopening always works. *)
let test_checkpoint_is_undo_horizon () =
  let dir = temp_dir () in
  Result.get_ok (Store.init dir (mgr_spec ()));
  let store = Result.get_ok (Store.open_ dir) in
  let engine = Store.engine store in
  ignore
    (Result.get_ok (Delta.apply engine [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  Result.get_ok
    (Store.log store (Wal.Batch [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  let spec' = { (Store.spec store) with IF.relation = Delta.relation engine } in
  Result.get_ok (Store.checkpoint store spec');
  check Alcotest.int "generation advanced" 1 (Store.generation store);
  (* an undo reverting past the snapshot cannot re-apply on recovery:
     it must be refused here, not explode at the next open *)
  (match Store.log store Wal.Undo with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undo past the checkpoint was journaled");
  (* undo of a post-checkpoint batch is journalable as ever *)
  ignore
    (Result.get_ok (Delta.apply engine [ Delta.Insert (tuple "Ann" "IT" 9) ]));
  Result.get_ok
    (Store.log store (Wal.Batch [ Delta.Insert (tuple "Ann" "IT" 9) ]));
  Result.get_ok (Store.log store Wal.Undo);
  ignore (Result.get_ok (Delta.undo engine));
  let expected = state_fingerprint (Delta.relation engine) in
  Store.close store;
  let store2 = Result.get_ok (Store.open_ dir) in
  check_same_state "reopen after checkpoint + undo" expected
    (Delta.relation (Store.engine store2));
  Store.close store2;
  rm_rf dir

(* The other checkpoint crash window: snapshot renamed into place, but
   the log truncation never hit the disk. The old records' generation
   predates the new snapshot's, so replay skips them instead of
   double-applying. *)
let test_stale_generation_records_skipped () =
  let dir = temp_dir () in
  Result.get_ok (Store.init dir (mgr_spec ()));
  let store = Result.get_ok (Store.open_ dir) in
  let engine = Store.engine store in
  ignore
    (Result.get_ok (Delta.apply engine [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  Result.get_ok
    (Store.log store (Wal.Batch [ Delta.Insert (tuple "Zed" "PR" 7) ]));
  let wal_before =
    In_channel.with_open_bin (Store.wal_path dir) In_channel.input_all
  in
  let spec' = { (Store.spec store) with IF.relation = Delta.relation engine } in
  Result.get_ok (Store.checkpoint store spec');
  let expected = state_fingerprint (Delta.relation engine) in
  Store.close store;
  (* simulate the crash: restore the pre-checkpoint log next to the
     post-checkpoint snapshot *)
  Out_channel.with_open_bin (Store.wal_path dir) (fun oc ->
      Out_channel.output_string oc wal_before);
  let store2 = Result.get_ok (Store.open_ dir) in
  check Alcotest.int "stale record skipped" 1 (Store.stale_records store2);
  check Alcotest.int "nothing replayed" 0 (Store.wal_records store2);
  check_same_state "batch applied exactly once" expected
    (Delta.relation (Store.engine store2));
  Store.close store2;
  rm_rf dir

(* --- the session's journal gate ----------------------------------------- *)

(* A mutation the observer cannot journal must leave the session on the
   state the journal can reproduce: inserts roll back, undos and
   preferences are never applied. *)
let test_session_journal_gate () =
  let spec = mgr_spec () in
  let fail_observer = ref true in
  let journaled = ref 0 in
  let observer _ev =
    if !fail_observer then Error "disk full"
    else begin
      incr journaled;
      Ok ()
    end
  in
  let s = Shell.Session.set_observer (Shell.Session.of_spec spec) observer in
  let card st =
    match Shell.Session.loaded st with
    | Some sp -> Relation.cardinality sp.IF.relation
    | None -> -1
  in
  let prefs st =
    match Shell.Session.loaded st with
    | Some sp -> List.length sp.IF.prefs
    | None -> -1
  in
  let before = card s in
  let s, out = Shell.Session.exec s "insert 'Zed' 'PR' 7" in
  check Alcotest.bool "failed insert reports error" true
    (Shell.Session.is_error_output out);
  check Alcotest.int "failed insert rolled back" before (card s);
  fail_observer := false;
  let s, out = Shell.Session.exec s "insert 'Zed' 'PR' 7" in
  check Alcotest.bool "journaled insert succeeds" false
    (Shell.Session.is_error_output out);
  check Alcotest.int "journaled insert applied" (before + 1) (card s);
  fail_observer := true;
  let s, out = Shell.Session.exec s "undo" in
  check Alcotest.bool "failed undo reports error" true
    (Shell.Session.is_error_output out);
  check Alcotest.int "failed undo not applied" (before + 1) (card s);
  let s, out = Shell.Session.exec s "prefer source s2 > s3" in
  check Alcotest.bool "failed prefer reports error" true
    (Shell.Session.is_error_output out);
  check Alcotest.int "failed prefer dropped" (List.length spec.IF.prefs)
    (prefs s);
  check Alcotest.int "journal saw exactly the good insert" 1 !journaled

(* --- the serve loop (in-process) ---------------------------------------- *)

let test_serve_smoke () =
  let dir = temp_dir () in
  Result.get_ok (Store.init dir (mgr_spec ()));
  let server = Domain.spawn (fun () -> Shell.Server.serve dir) in
  let rec await n =
    if n = 0 then Alcotest.fail "server did not come up"
    else if not (Shell.Server.ping dir) then begin
      Unix.sleepf 0.05;
      await (n - 1)
    end
  in
  await 100;
  (* text framing: a query against the warm session *)
  (match Shell.Server.request dir "query Mgr('Mary', d, s)" with
  | Ok out ->
    check Alcotest.bool "query answered" true
      (String.length out > 0 && not (Shell.Session.is_error_output out))
  | Error e -> Alcotest.failf "query failed: %s" e);
  (* a mutation is journaled before it is acknowledged *)
  (match Shell.Server.request dir "insert 'Zed' 'PR' 7" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert failed: %s" e);
  let entries, _, _ = Result.get_ok (Wal.replay (Store.wal_path dir)) in
  check Alcotest.int "insert journaled" 1 (List.length entries);
  (* json framing *)
  (match Shell.Server.request_json dir "info" with
  | Ok resp -> (
    match Obs.Json.member "ok" resp with
    | Some (Obs.Json.Bool true) -> ()
    | _ -> Alcotest.fail "json response not ok")
  | Error e -> Alcotest.failf "json request failed: %s" e);
  (* load is disabled in serve mode *)
  (match Shell.Server.request dir "load /etc/hostname" with
  | Error _ -> ()
  | Ok out -> Alcotest.failf "load accepted in serve mode: %s" out);
  (* snapshot folds the journal into the snapshot *)
  (match Shell.Server.request dir "snapshot" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot failed: %s" e);
  let entries, _, _ = Result.get_ok (Wal.replay (Store.wal_path dir)) in
  check Alcotest.int "wal truncated by snapshot" 0 (List.length entries);
  (* the snapshot is the undo horizon: the pre-snapshot insert can no
     longer be undone (journaling it would brick the next open) *)
  (match Shell.Server.request dir "undo" with
  | Error _ -> ()
  | Ok out -> Alcotest.failf "undo past the snapshot accepted: %s" out);
  (match Shell.Server.request dir "shutdown" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  (match Domain.join server with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve loop failed: %s" e);
  (* the journaled insert survived into the snapshot *)
  let store = Result.get_ok (Store.open_ dir) in
  check Alcotest.bool "insert persisted" true
    (Relation.mem (Delta.relation (Store.engine store)) (tuple "Zed" "PR" 7));
  Store.close store;
  rm_rf dir

(* --- PREFDB_JOBS validation --------------------------------------------- *)

let test_env_jobs_validation () =
  let original = Sys.getenv_opt "PREFDB_JOBS" in
  let set v = Unix.putenv "PREFDB_JOBS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value original ~default:""))
    (fun () ->
      set "4";
      check Alcotest.bool "positive accepted" true
        (Core.Pool.env_jobs_error () = None);
      set "0";
      check Alcotest.bool "zero rejected" true
        (Core.Pool.env_jobs_error () <> None);
      set "-3";
      check Alcotest.bool "negative rejected" true
        (Core.Pool.env_jobs_error () <> None);
      set "two";
      check Alcotest.bool "non-numeric rejected" true
        (Core.Pool.env_jobs_error () <> None);
      set "  8  ";
      check Alcotest.bool "whitespace-trimmed accepted" true
        (Core.Pool.env_jobs_error () = None))

(* The CRC is sliced-by-8 for throughput; a slicing bug would be
   self-consistent (encode and decode share the function), so pin the
   standard check value and the straddling of the 8-byte fold. *)
let test_crc32_known_answer () =
  check Alcotest.int "CRC-32 of '123456789'" 0xcbf43926
    (Dbio.Binio.crc32 "123456789" ~pos:0 ~len:9);
  check Alcotest.int "empty string" 0 (Dbio.Binio.crc32 "" ~pos:0 ~len:0);
  let s = String.init 100 Char.chr in
  (* substring extraction must agree with hashing the copied slice *)
  check Alcotest.int "substring = sliced copy"
    (Dbio.Binio.crc32 (String.sub s 13 41) ~pos:0 ~len:41)
    (Dbio.Binio.crc32 s ~pos:13 ~len:41)

let test_i64_extremes_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Dbio.Binio.w_i64 buf n;
      let rd = Dbio.Binio.reader (Buffer.contents buf) in
      check Alcotest.int (Printf.sprintf "i64 %d" n) n
        (Result.get_ok (Dbio.Binio.r_i64 rd)))
    [ 0; 1; -1; 255; -256; max_int; min_int; 0x1234_5678_9abc ];
  (* a genuine 64-bit value (not a sign-extended 63-bit one) must be
     rejected, not silently truncated *)
  let too_wide = String.init 8 (fun i -> if i = 7 then '\x80' else '\x00') in
  match Dbio.Binio.r_i64 (Dbio.Binio.reader too_wide) with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "Int64.min_int decoded as %d" v

(* The fact section is zigzag-LEB128 varints; pin known encodings so
   the wire format can't drift silently, and the extremes (63-bit
   min/max need the full 9 bytes) round-trip. *)
let test_varint_roundtrip () =
  let encode n =
    let buf = Buffer.create 9 in
    Dbio.Binio.w_varint buf n;
    Buffer.contents buf
  in
  (* zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
  check Alcotest.string "varint 0" "\x00" (encode 0);
  check Alcotest.string "varint -1" "\x01" (encode (-1));
  check Alcotest.string "varint 1" "\x02" (encode 1);
  check Alcotest.string "varint 63" "\x7e" (encode 63);
  check Alcotest.string "varint 64 spills" "\x80\x01" (encode 64);
  List.iter
    (fun n ->
      let s = encode n in
      check Alcotest.bool
        (Printf.sprintf "varint %d fits 9 bytes" n)
        true
        (String.length s <= 9);
      let rd = Dbio.Binio.reader s in
      check Alcotest.int (Printf.sprintf "varint %d" n) n
        (Dbio.Binio.r_varint_exn rd))
    [ 0; 1; -1; 63; 64; -65; 255; -256; max_int; min_int; 0x1234_5678_9abc ]

let test_varint_rejects_overlong () =
  (* ten continuation bytes: more than 63 bits of payload *)
  let overlong = String.make 9 '\x80' ^ "\x01" in
  (match Dbio.Binio.r_varint_exn (Dbio.Binio.reader overlong) with
  | exception Dbio.Binio.Corrupt _ -> ()
  | v -> Alcotest.failf "overlong varint decoded as %d" v);
  (* truncated: continuation bit set but the stream ends *)
  match Dbio.Binio.r_varint_exn (Dbio.Binio.reader "\x80") with
  | exception Dbio.Binio.Corrupt _ -> ()
  | v -> Alcotest.failf "truncated varint decoded as %d" v

let suite =
  [
    ("binio CRC-32 known answers", `Quick, test_crc32_known_answer);
    ("binio i64 extremes round-trip", `Quick, test_i64_extremes_roundtrip);
    ("binio varint round-trip", `Quick, test_varint_roundtrip);
    ("binio varint rejects overlong/truncated", `Quick, test_varint_rejects_overlong);
    ("snapshot round-trip", `Quick, test_snapshot_roundtrip);
    ("snapshot preserves tombstoned slots", `Quick, test_snapshot_preserves_tombstones);
    ("snapshot rejects corruption", `Quick, test_snapshot_rejects_corruption);
    ("snapshot rejects oversized counts", `Quick, test_snapshot_rejects_oversized_counts);
    ("snapshot generation round-trip", `Quick, test_snapshot_generation_roundtrip);
    ("snapshot load re-interns names", `Quick, test_snapshot_load_keeps_intern_coherent);
    ("wal round-trip", `Quick, test_wal_roundtrip);
    ("wal detects a torn tail", `Quick, test_wal_detects_torn_tail);
    ("kill -9 recovery is bit-identical", `Quick, test_kill9_recovery);
    ("snapshot round-trips denial constraints", `Quick, test_snapshot_denials_roundtrip);
    ("kill -9 recovery preserves the denial substrate", `Quick, test_kill9_denial_recovery);
    ("checkpoint truncates the wal", `Quick, test_checkpoint_truncates);
    ("checkpoint is the undo horizon", `Quick, test_checkpoint_is_undo_horizon);
    ("stale-generation wal records are skipped", `Quick, test_stale_generation_records_skipped);
    ("session mutations gate on the journal", `Quick, test_session_journal_gate);
    ("serve loop end to end", `Quick, test_serve_smoke);
    ("PREFDB_JOBS validation", `Quick, test_env_jobs_validation);
  ]
