let () =
  Alcotest.run "prefrepair"
    [
      ("graphs", Test_graphs.suite);
      ("relational", Test_relational.suite);
      ("constraints", Test_constraints.suite);
      ("query", Test_query.suite);
      ("conflict", Test_conflict.suite);
      ("priority", Test_priority.suite);
      ("repair", Test_repair.suite);
      ("optimality", Test_optimality.suite);
      ("cqa", Test_cqa.suite);
      ("aggregate", Test_aggregate.suite);
      ("properties", Test_properties.suite);
      ("pref_rules", Test_pref_rules.suite);
      ("hyper", Test_hyper.suite);
      ("hyper_props", Test_hyper_props.suite);
      ("dbio", Test_dbio.suite);
      ("store", Test_store.suite);
      ("pref_formula", Test_pref_formula.suite);
      ("multi", Test_multi.suite);
      ("algebra", Test_algebra.suite);
      ("planner", Test_planner.suite);
      ("explain", Test_explain.suite);
      ("session", Test_session.suite);
      ("stats_trace", Test_stats_trace.suite);
      ("edge_cases", Test_edge_cases.suite);
      ("decompose", Test_decompose.suite);
      ("delta", Test_delta.suite);
      ("vset_model", Test_vset_model.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("qcheck", Test_qcheck.suite);
      ("parallel", Test_parallel.suite);
    ]
