(* Unit tests for the relational substrate. *)

open Relational

let check = Alcotest.check
let value = Testlib.value
let tuple = Testlib.tuple
let relation = Testlib.relation

(* --- Value --------------------------------------------------------------- *)

let test_value_equal_compare () =
  Alcotest.(check bool) "names equal" true (Value.equal (Value.name "a") (Value.name "a"));
  Alcotest.(check bool) "cross-domain" false (Value.equal (Value.name "1") (Value.int 1));
  Alcotest.(check bool) "name < int by convention" true
    (Value.compare (Value.name "z") (Value.int 0) < 0);
  Alcotest.(check bool) "ints ordered" true (Value.compare (Value.int 2) (Value.int 10) < 0)

let test_value_lt () =
  Alcotest.(check (option bool)) "ints" (Some true) (Value.lt (Value.int 1) (Value.int 2));
  Alcotest.(check (option bool)) "names unordered" None
    (Value.lt (Value.name "a") (Value.name "b"));
  Alcotest.(check (option bool)) "mixed unordered" None
    (Value.lt (Value.name "a") (Value.int 2))

let test_value_of_string () =
  (match Value.of_string `Int "42" with
  | Ok v -> check value "parsed int" (Value.int 42) v
  | Error e -> Alcotest.fail e);
  (match Value.of_string `Name "R&D" with
  | Ok v -> check value "parsed name" (Value.name "R&D") v
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad int is an error" true
    (Result.is_error (Value.of_string `Int "abc"))

let test_value_packed () =
  let vs =
    [ Value.name "a"; Value.name "b"; Value.name "R&D"; Value.int 0; Value.int (-3); Value.int 41 ]
  in
  List.iter
    (fun v -> check value "pack/unpack round-trip" v (Value.unpack (Value.pack v)))
    vs;
  Alcotest.(check bool) "interning is canonical" true
    (Value.pack (Value.name "dept") = Value.pack (Value.name "dept"));
  Alcotest.(check bool) "distinct names pack apart" true
    (Value.pack (Value.name "a") <> Value.pack (Value.name "b"));
  Alcotest.(check bool) "cross-domain never collides" true
    (Value.pack (Value.name "1") <> Value.pack (Value.int 1));
  let sign c = Stdlib.compare c 0 in
  Alcotest.(check bool) "packed order = boxed order" true
    (List.for_all
       (fun a ->
         List.for_all
           (fun b ->
             sign (Value.compare a b)
             = sign (Value.compare_packed (Value.pack a) (Value.pack b)))
           vs)
       vs);
  Alcotest.(check bool) "hash via packed form" true
    (Value.hash (Value.int 5) = Value.hash_packed (Value.pack (Value.int 5)));
  Alcotest.(check bool) "dictionary membership" true (Intern.mem "R&D");
  check Alcotest.string "dictionary round-trip" "R&D"
    (Intern.string_of_id (Intern.id_of_string "R&D"));
  Alcotest.(check bool) "unknown id rejected" true
    (try
       ignore (Intern.string_of_id max_int);
       false
     with Invalid_argument _ -> true)

(* --- Schema --------------------------------------------------------------- *)

let mgr_schema () =
  Schema.make "Mgr"
    [
      ("Name", Schema.TName); ("Dept", Schema.TName);
      ("Salary", Schema.TInt); ("Reports", Schema.TInt);
    ]

let test_schema_positions () =
  let s = mgr_schema () in
  check Alcotest.int "arity" 4 (Schema.arity s);
  Alcotest.(check (option int)) "Salary at 2" (Some 2) (Schema.position s "Salary");
  Alcotest.(check (option int)) "missing" None (Schema.position s "Phone");
  check Alcotest.(list int) "positions" [ 1; 2 ]
    (Schema.positions_exn s [ "Dept"; "Salary" ]);
  Alcotest.(check bool) "ty_at" true (Schema.ty_at s 0 = Schema.TName)

let test_schema_errors () =
  Alcotest.(check bool) "duplicate attrs rejected" true
    (try
       ignore (Schema.make "R" [ ("A", Schema.TInt); ("A", Schema.TInt) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Schema.make "R" []);
       false
     with Invalid_argument _ -> true)

(* --- Tuple ----------------------------------------------------------------- *)

let test_tuple_ops () =
  let t = Tuple.make [ Value.name "Mary"; Value.name "R&D"; Value.int 40000; Value.int 3 ] in
  check Alcotest.int "arity" 4 (Tuple.arity t);
  check value "get" (Value.int 40000) (Tuple.get t 2);
  check (Alcotest.list value) "project"
    [ Value.name "R&D"; Value.int 3 ]
    (Tuple.project t [ 1; 3 ]);
  let t2 = Tuple.make [ Value.name "Mary"; Value.name "IT"; Value.int 40000; Value.int 3 ] in
  Alcotest.(check bool) "agree on 0,2" true (Tuple.agree_on t t2 [ 0; 2 ]);
  Alcotest.(check bool) "differ on 1" false (Tuple.agree_on t t2 [ 1 ]);
  Alcotest.(check bool) "conforms" true (Tuple.conforms (mgr_schema ()) t);
  let bad = Tuple.make [ Value.int 1; Value.name "x"; Value.int 1; Value.int 1 ] in
  Alcotest.(check bool) "wrong type rejected" false (Tuple.conforms (mgr_schema ()) bad)

let test_tuple_order () =
  let a = Tuple.make [ Value.int 1; Value.int 2 ] in
  let b = Tuple.make [ Value.int 1; Value.int 3 ] in
  Alcotest.(check bool) "lexicographic" true (Tuple.compare a b < 0);
  Alcotest.(check bool) "equal" true (Tuple.compare a a = 0);
  Alcotest.(check bool) "hash consistent" true (Tuple.hash a = Tuple.hash (Tuple.make [ Value.int 1; Value.int 2 ]))

(* --- Relation --------------------------------------------------------------- *)

let small_rel () =
  let s = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  Relation.of_rows s
    [ [ Value.int 0; Value.int 0 ]; [ Value.int 0; Value.int 1 ]; [ Value.int 1; Value.int 0 ] ]

let test_relation_set_semantics () =
  let s = Schema.make "R" [ ("A", Schema.TInt) ] in
  let r = Relation.of_rows s [ [ Value.int 1 ]; [ Value.int 1 ]; [ Value.int 2 ] ] in
  check Alcotest.int "duplicates collapse" 2 (Relation.cardinality r)

let test_relation_union_example1 () =
  (* r = s1 ∪ s2 ∪ s3 of Example 1. *)
  let rel, _, _ = Testlib.mgr () in
  check Alcotest.int "4 integrated tuples" 4 (Relation.cardinality rel)

let test_relation_ops () =
  let r = small_rel () in
  let s = Relation.schema r in
  let t = Tuple.make [ Value.int 0; Value.int 0 ] in
  Alcotest.(check bool) "mem" true (Relation.mem r t);
  let r' = Relation.remove r t in
  Alcotest.(check bool) "removed" false (Relation.mem r' t);
  check Alcotest.int "cardinality drops" 2 (Relation.cardinality r');
  Alcotest.(check bool) "subset" true (Relation.subset r' r);
  check relation "union restores" r (Relation.union r' (Relation.of_tuples s [ t ]));
  check relation "diff" (Relation.of_tuples s [ t ]) (Relation.diff r r');
  check Alcotest.int "filter" 2
    (Relation.cardinality
       (Relation.filter (fun t -> Value.equal (Tuple.get t 0) (Value.int 0)) r))

let test_relation_schema_mismatch () =
  let s1 = Schema.make "R" [ ("A", Schema.TInt) ] in
  let s2 = Schema.make "S" [ ("A", Schema.TInt) ] in
  let r1 = Relation.of_rows s1 [ [ Value.int 1 ] ] in
  let r2 = Relation.of_rows s2 [ [ Value.int 2 ] ] in
  Alcotest.(check bool) "union rejects" true
    (try
       ignore (Relation.union r1 r2);
       false
     with Invalid_argument _ -> true)

let test_relation_typing () =
  let s = Schema.make "R" [ ("A", Schema.TInt) ] in
  Alcotest.(check bool) "ill-typed tuple rejected" true
    (try
       ignore (Relation.of_rows s [ [ Value.name "x" ] ]);
       false
     with Invalid_argument _ -> true)

let test_relation_active_domain () =
  let r = small_rel () in
  check Alcotest.int "active domain size" 2 (List.length (Relation.active_domain r))

let test_relation_tuple_array_fact_ids () =
  (* rows deliberately NOT in canonical order: fact ids follow insertion *)
  let s = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rows =
    [ [ Value.int 1; Value.int 0 ]; [ Value.int 0; Value.int 1 ]; [ Value.int 0; Value.int 0 ] ]
  in
  let r = Relation.of_rows s rows in
  let arr = Relation.tuple_array r in
  check (Alcotest.list tuple) "insertion order" (List.map Tuple.make rows)
    (Array.to_list arr);
  Array.iteri
    (fun i t ->
      Alcotest.(check (option int)) "find = position" (Some i) (Relation.find r t);
      check tuple "fact round-trip" t (Relation.fact r i))
    arr;
  Alcotest.(check bool) "tuples stays canonical" true
    (List.equal Tuple.equal (Relation.tuples r)
       (List.sort Tuple.compare (Relation.tuples r)))

let test_relation_fact_id_stability () =
  let s = Schema.make "R" [ ("A", Schema.TInt) ] in
  let row n = [ Value.int n ] in
  let r = Relation.of_rows s [ row 0; row 1; row 2 ] in
  (* tombstoning keeps the other ids; re-adding allocates a fresh slot *)
  let r' = Relation.remove r (Tuple.make (row 1)) in
  check Alcotest.int "slots survive removal" 3 (Relation.slot_count r');
  Alcotest.(check (option int)) "id 0 stable" (Some 0)
    (Relation.find r' (Tuple.make (row 0)));
  Alcotest.(check (option int)) "id 2 stable" (Some 2)
    (Relation.find r' (Tuple.make (row 2)));
  Alcotest.(check (option int)) "removed gone" None
    (Relation.find r' (Tuple.make (row 1)));
  check tuple "tombstoned slot remembers its tuple" (Tuple.make (row 1))
    (Relation.fact r' 1);
  let r'', deleted, inserted =
    Relation.patch r' ~delete:[ Tuple.make (row 0) ] ~insert:[ Tuple.make (row 9) ]
  in
  check Alcotest.(list int) "patch deletes by id" [ 0 ] deleted;
  check Alcotest.(list int) "patch appends fresh ids" [ 3 ] inserted;
  Alcotest.(check (option int)) "id 2 still stable" (Some 2)
    (Relation.find r'' (Tuple.make (row 2)));
  Alcotest.(check bool) "patch rejects absent delete" true
    (try
       ignore (Relation.patch r'' ~delete:[ Tuple.make (row 0) ] ~insert:[]);
       false
     with Invalid_argument _ -> true)

let test_relation_postings () =
  let s = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let r =
    Relation.of_rows s
      [ [ Value.int 0; Value.int 0 ]; [ Value.int 0; Value.int 1 ]; [ Value.int 1; Value.int 0 ] ]
  in
  let ids col v = Graphs.Vset.elements (Relation.matching r col (Value.pack (Value.int v))) in
  check Alcotest.(list int) "column 0 group" [ 0; 1 ] (ids 0 0);
  check Alcotest.(list int) "column 1 group" [ 0; 2 ] (ids 1 0);
  check Alcotest.(list int) "missing key" [] (ids 0 7);
  (* postings follow a patch incrementally *)
  let r', _, _ =
    Relation.patch r
      ~delete:[ Tuple.make [ Value.int 0; Value.int 1 ] ]
      ~insert:[ Tuple.make [ Value.int 0; Value.int 5 ] ]
  in
  let ids' col v = Graphs.Vset.elements (Relation.matching r' col (Value.pack (Value.int v))) in
  check Alcotest.(list int) "group after patch" [ 0; 3 ] (ids' 0 0);
  check Alcotest.(list int) "deleted left its group" [] (ids' 1 1);
  let groups = ref [] in
  Relation.iter_groups r' 0 (fun key ids -> groups := (Value.unpack key, Graphs.Vset.cardinal ids) :: !groups);
  check Alcotest.(list (pair value int)) "iter_groups"
    [ (Value.int 0, 2); (Value.int 1, 1) ]
    (List.sort compare !groups)

let test_relation_builder () =
  let s = Schema.make "R" [ ("A", Schema.TInt) ] in
  let b = Relation.Builder.create s in
  for i = 0 to 9 do
    Relation.Builder.add_row b [ Value.int (i mod 4) ]
  done;
  check Alcotest.int "deduplicated size" 4 (Relation.Builder.size b);
  Alcotest.(check bool) "mem" true
    (Relation.Builder.mem b (Tuple.make [ Value.int 3 ]));
  let r = Relation.Builder.finish b in
  check Alcotest.int "cardinality" 4 (Relation.cardinality r);
  Alcotest.(check (option int)) "first-insertion ids" (Some 2)
    (Relation.find r (Tuple.make [ Value.int 2 ]))

(* --- Database --------------------------------------------------------------- *)

let test_database () =
  let r = small_rel () in
  let rel2 =
    Relation.of_rows (Schema.make "S" [ ("X", Schema.TName) ]) [ [ Value.name "a" ] ]
  in
  let db = Database.of_relations [ r; rel2 ] in
  check Alcotest.(list string) "names" [ "R"; "S" ] (Database.names db);
  check Alcotest.int "total" 4 (Database.total_tuples db);
  Alcotest.(check bool) "find" true (Database.find db "R" <> None);
  Alcotest.(check bool) "dup add rejected" true
    (try
       ignore (Database.add db r);
       false
     with Invalid_argument _ -> true);
  let db' = Database.replace db (Relation.empty (Relation.schema r)) in
  check Alcotest.int "replace works" 1 (Database.total_tuples db')

(* --- Provenance ------------------------------------------------------------- *)

let test_provenance () =
  let t = Tuple.make [ Value.int 1 ] in
  let p = Provenance.of_list [ (t, Provenance.info ~source:"s1" ~timestamp:7 ()) ] in
  Alcotest.(check (option string)) "source" (Some "s1") (Provenance.source p t);
  Alcotest.(check (option int)) "timestamp" (Some 7) (Provenance.timestamp p t);
  let unknown = Tuple.make [ Value.int 2 ] in
  Alcotest.(check (option string)) "missing" None (Provenance.source p unknown);
  let s = Schema.make "R" [ ("A", Schema.TInt) ] in
  let r = Relation.of_rows s [ [ Value.int 1 ]; [ Value.int 2 ] ] in
  let p' = Provenance.tag_source "s9" r p in
  Alcotest.(check (option string)) "tagged" (Some "s9") (Provenance.source p' unknown);
  Alcotest.(check (option int)) "timestamp preserved by tagging" (Some 7)
    (Provenance.timestamp p' t)

let suite =
  [
    ("value: equality and order", `Quick, test_value_equal_compare);
    ("value: natural order on N only", `Quick, test_value_lt);
    ("value: of_string", `Quick, test_value_of_string);
    ("value: packed form and interning", `Quick, test_value_packed);
    ("schema: positions", `Quick, test_schema_positions);
    ("schema: validation errors", `Quick, test_schema_errors);
    ("tuple: projections and conformance", `Quick, test_tuple_ops);
    ("tuple: ordering and hash", `Quick, test_tuple_order);
    ("relation: set semantics", `Quick, test_relation_set_semantics);
    ("relation: Example 1 integration", `Quick, test_relation_union_example1);
    ("relation: set operations", `Quick, test_relation_ops);
    ("relation: schema mismatch", `Quick, test_relation_schema_mismatch);
    ("relation: typing enforced", `Quick, test_relation_typing);
    ("relation: active domain", `Quick, test_relation_active_domain);
    ("relation: fact-id order and lookup", `Quick, test_relation_tuple_array_fact_ids);
    ("relation: fact ids stable under updates", `Quick, test_relation_fact_id_stability);
    ("relation: per-column postings", `Quick, test_relation_postings);
    ("relation: bulk builder", `Quick, test_relation_builder);
    ("database: multi-relation container", `Quick, test_database);
    ("provenance: annotations", `Quick, test_provenance);
  ]
