(* Tests for the incremental update engine (Core.Delta): after any
   sequence of update batches, the incrementally maintained state must be
   indistinguishable from a from-scratch rebuild of the live instance —
   same components, same preferred-repair counts for every family, same
   certain/possible tuples, same certain answers. *)

open Relational
open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family
module Decompose = Core.Decompose
module Delta = Core.Delta
module Pref_rules = Core.Pref_rules
module Cqa = Core.Cqa
module Generator = Workload.Generator
module Prng = Workload.Prng

let check = Alcotest.check

let certainty =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Cqa.certainty_to_string c))
    (fun a b -> a = b)

let ok_exn = function Ok x -> x | Error e -> Alcotest.fail e

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Score by the B attribute: acyclic for every instance. *)
let score_rule =
  Pref_rules.by_score (fun t ->
      match Value.as_int (Tuple.get t 1) with Some v -> v | None -> 0)

let tuples_of c s =
  List.sort Tuple.compare (List.map (Conflict.tuple c) (Vset.elements s))

(* Components as sorted tuple lists — comparable across engines whose
   vertex numberings differ. *)
let component_profile d =
  let c = Decompose.conflict d in
  List.sort
    (List.compare Tuple.compare)
    (List.map (tuples_of c) (Decompose.components d))

let rebuild fds rule t =
  let c = Conflict.build fds (Delta.relation t) in
  let p = Pref_rules.apply_exn c rule in
  Decompose.make c p

let ground_atom c v =
  Query.Ast.Atom
    ( Schema.name (Conflict.schema c),
      List.map (fun x -> Query.Ast.Const x) (Tuple.values (Conflict.tuple c v))
    )

let check_agrees ?(msg = "") fds rule t =
  let d = Delta.decompose t in
  let d0 = rebuild fds rule t in
  Alcotest.(check bool)
    (msg ^ "components agree")
    true
    (List.equal
       (List.equal Tuple.equal)
       (component_profile d0) (component_profile d));
  List.iter
    (fun family ->
      let name = Family.name_to_string family in
      check Alcotest.int
        (msg ^ name ^ " count agrees")
        (Decompose.count family d0)
        (Decompose.count family d);
      Alcotest.(check bool)
        (msg ^ name ^ " certain tuples agree")
        true
        (List.equal Tuple.equal
           (tuples_of (Decompose.conflict d0)
              (Decompose.certain_tuples family d0))
           (tuples_of (Decompose.conflict d)
              (Decompose.certain_tuples family d)));
      Alcotest.(check bool)
        (msg ^ name ^ " possible tuples agree")
        true
        (List.equal Tuple.equal
           (tuples_of (Decompose.conflict d0)
              (Decompose.possible_tuples family d0))
           (tuples_of (Decompose.conflict d)
              (Decompose.possible_tuples family d)));
      (* ground certainty, queried on both engines' own numbering *)
      let c = Decompose.conflict d and c0 = Decompose.conflict d0 in
      Vset.iter
        (fun v ->
          let q = ground_atom c v in
          let v0 = Conflict.index_exn c0 (Conflict.tuple c v) in
          let q0 = ground_atom c0 v0 in
          check certainty
            (msg ^ name ^ " certainty agrees")
            (Decompose.certainty family d0 q0)
            (Decompose.certainty family d q))
        (Conflict.live c))
    Family.all_names

(* --- random update sequences vs from-scratch rebuild -------------------- *)

let random_batch rng t =
  let rel = Delta.relation t in
  let arr = Relation.tuple_array rel in
  let n_ops = 1 + Prng.int rng 3 in
  let rec build k acc dels =
    if k = 0 then List.rev acc
    else if Array.length arr > 1 && Prng.int rng 2 = 0 then begin
      let x = arr.(Prng.int rng (Array.length arr)) in
      if List.exists (Tuple.equal x) dels then build (k - 1) acc dels
      else build (k - 1) (Delta.Delete x :: acc) (x :: dels)
    end
    else begin
      let x =
        Tuple.make
          [
            Value.Int (Prng.int rng 4);
            Value.Int (Prng.int rng 2);
            Value.Int (Prng.int rng 2);
          ]
      in
      let dup =
        List.exists
          (function Delta.Insert y -> Tuple.equal x y | Delta.Delete _ -> false)
          acc
      in
      (* live tuples may be inserted only when the same batch deletes
         them (delete + re-insert); fresh values always qualify *)
      if dup || (Relation.mem rel x && not (List.exists (Tuple.equal x) dels))
      then build (k - 1) acc dels
      else build (k - 1) (Delta.Insert x :: acc) dels
    end
  in
  build n_ops [] []

let test_random_equivalence () =
  let rng = Prng.create 811 in
  for _ = 1 to 10 do
    let rel, fds =
      Generator.random_instance rng ~n:10 ~key_values:4 ~payload_values:2
    in
    let t = ok_exn (Delta.create ~rule:score_rule fds rel) in
    for step = 1 to 6 do
      let batch = random_batch rng t in
      (match Delta.apply t batch with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      check_agrees ~msg:(Printf.sprintf "step %d: " step) fds score_rule t
    done
  done

let test_random_undo_equivalence () =
  let rng = Prng.create 813 in
  for _ = 1 to 8 do
    let rel, fds =
      Generator.random_instance rng ~n:8 ~key_values:3 ~payload_values:2
    in
    let t = ok_exn (Delta.create ~rule:score_rule fds rel) in
    let depth = 1 + Prng.int rng 3 in
    for _ = 1 to depth do
      match Delta.apply t (random_batch rng t) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e
    done;
    for _ = 1 to depth do
      match Delta.undo t with Ok _ -> () | Error e -> Alcotest.fail e
    done;
    check Alcotest.int "history drained" 0 (Delta.history_depth t);
    Alcotest.(check bool)
      "undone instance equals the original" true
      (Relation.equal rel (Delta.relation t));
    check_agrees ~msg:"after undo: " fds score_rule t
  done

(* --- directed unit tests ------------------------------------------------ *)

let clusters () =
  let rel, fds = Generator.key_clusters ~groups:2 ~width:2 in
  (rel, fds, ok_exn (Delta.create fds rel))

let row a b c = Tuple.make [ Value.Int a; Value.Int b; Value.Int c ]

let test_insert_creates_conflicts () =
  let _, _, t = clusters () in
  (* each cluster is a 2-clique: 2 * 2 preferred repairs *)
  check Alcotest.int "initial count" 4 (Decompose.count Family.Rep (Delta.decompose t));
  let r = ok_exn (Delta.apply t [ Delta.Insert (row 0 9 9) ]) in
  check Alcotest.int "one tuple in" 1 r.Delta.inserted;
  check Alcotest.int "two new edges" 2 r.Delta.edges_added;
  check Alcotest.int "one component dirtied" 1 r.Delta.components_dirtied;
  check Alcotest.int "count grows" 6 (Decompose.count Family.Rep (Delta.decompose t));
  (* a conflict-free insert forms its own singleton component *)
  let r = ok_exn (Delta.apply t [ Delta.Insert (row 7 0 0) ]) in
  check Alcotest.int "no new edges" 0 r.Delta.edges_added;
  check Alcotest.int "nothing dirtied" 0 r.Delta.components_dirtied;
  check Alcotest.int "singleton multiplies the count by 1" 6
    (Decompose.count Family.Rep (Delta.decompose t))

let test_delete_splits_component () =
  let rel, fds = Generator.chain 5 in
  let t = ok_exn (Delta.create fds rel) in
  let d = Delta.decompose t in
  check Alcotest.int "one path component" 1 (List.length (Decompose.components d));
  (* any interior vertex of the 5-path: deleting it leaves two pieces *)
  let c = Delta.conflict t in
  let g = Conflict.graph c in
  let mid =
    Vset.min_elt
      (Vset.filter
         (fun v -> Vset.cardinal (Graphs.Undirected.neighbors g v) = 2)
         (Conflict.live c))
  in
  let r = ok_exn (Delta.apply t [ Delta.Delete (Conflict.tuple c mid) ]) in
  check Alcotest.int "edges fell" 2 r.Delta.edges_removed;
  let d = Delta.decompose t in
  check Alcotest.int "path split in two" 2 (List.length (Decompose.components d))

let test_rejected_batch_leaves_no_trace () =
  let rel, _fds, t = clusters () in
  let before = component_profile (Delta.decompose t) in
  (* deleting an absent tuple *)
  (match Delta.apply t [ Delta.Delete (row 9 9 9) ] with
  | Ok _ -> Alcotest.fail "deleting an absent tuple must fail"
  | Error _ -> ());
  (* inserting a live tuple *)
  let live = (Relation.tuple_array rel).(0) in
  (match Delta.apply t [ Delta.Insert live ] with
  | Ok _ -> Alcotest.fail "inserting a live tuple must fail"
  | Error _ -> ());
  (* schema mismatch *)
  (match Delta.apply t [ Delta.Insert (Tuple.make [ Value.Int 1 ]) ] with
  | Ok _ -> Alcotest.fail "arity mismatch must fail"
  | Error _ -> ());
  check Alcotest.int "no history" 0 (Delta.history_depth t);
  Alcotest.(check bool)
    "state unchanged" true
    (Relation.equal rel (Delta.relation t)
    && List.equal
         (List.equal Tuple.equal)
         before
         (component_profile (Delta.decompose t)))

let test_cyclic_rule_rejected () =
  (* rock-paper-scissors on B: fine on two tuples, cyclic on three *)
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let tup b = Tuple.make [ Value.Int 0; Value.Int b ] in
  let rel = Relation.of_tuples schema [ tup 0; tup 1 ] in
  let fds = [ Constraints.Fd.make [ "A" ] [ "B" ] ] in
  let beats x y =
    match (Value.as_int (Tuple.get x 1), Value.as_int (Tuple.get y 1)) with
    | Some bx, Some by -> (bx + 1) mod 3 = by
    | _, _ -> false
  in
  let t = ok_exn (Delta.create ~rule:beats fds rel) in
  let before = component_profile (Delta.decompose t) in
  (match Delta.apply t [ Delta.Insert (tup 2) ] with
  | Ok _ -> Alcotest.fail "cycle-inducing insert must fail"
  | Error e ->
    Alcotest.(check bool)
      "error mentions the cycle" true
      (contains ~needle:"cyclic" e));
  check Alcotest.int "no history" 0 (Delta.history_depth t);
  Alcotest.(check bool)
    "state unchanged" true
    (List.equal
       (List.equal Tuple.equal)
       before
       (component_profile (Delta.decompose t)))

let test_cache_retention () =
  let rel, fds = Generator.chain_components ~components:3 ~size:4 in
  let t = ok_exn (Delta.create fds rel) in
  let d = Delta.decompose t in
  (* warm the cache for one family across all three components *)
  let _ = Decompose.count Family.Rep d in
  let victim = Conflict.tuple (Delta.conflict t) 0 in
  let r = ok_exn (Delta.apply t [ Delta.Delete victim ]) in
  check Alcotest.int "one component dirtied" 1 r.Delta.components_dirtied;
  check Alcotest.int "one cache entry evicted" 1 r.Delta.cache_evicted;
  check Alcotest.int "two cache entries retained" 2 r.Delta.cache_retained;
  (* recount: only the dirtied component misses *)
  let d = Delta.decompose t in
  let before = Decompose.counters d in
  let _ = Decompose.count Family.Rep d in
  let after = Decompose.counters d in
  check Alcotest.int "two hits on retained entries" 2
    (after.Decompose.cache_hits - before.Decompose.cache_hits);
  check Alcotest.int "one miss on the dirtied component" 1
    (after.Decompose.cache_misses - before.Decompose.cache_misses)

let test_empty_batch_and_reinsert () =
  let rel, fds, t = clusters () in
  let r = ok_exn (Delta.apply t []) in
  check Alcotest.int "empty batch: nothing in" 0 r.Delta.inserted;
  check Alcotest.int "empty batch: nothing dirtied" 0 r.Delta.components_dirtied;
  (* delete + re-insert the same tuple value in one batch *)
  let x = (Relation.tuple_array rel).(0) in
  let r = ok_exn (Delta.apply t [ Delta.Delete x; Delta.Insert x ]) in
  check Alcotest.int "reinsert: one in, one out" 2 (r.Delta.inserted + r.Delta.deleted);
  Alcotest.(check bool)
    "instance unchanged by delete+reinsert" true
    (Relation.equal rel (Delta.relation t));
  check_agrees ~msg:"after reinsert: " fds (fun _ _ -> false) t

let test_undo_restores_counts () =
  let rel, _fds, t = clusters () in
  let count () = Decompose.count Family.Rep (Delta.decompose t) in
  let c0 = count () in
  let _ = ok_exn (Delta.apply t [ Delta.Insert (row 0 9 9) ]) in
  let _ = ok_exn (Delta.apply t [ Delta.Delete (row 0 9 9); Delta.Insert (row 5 5 5) ]) in
  check Alcotest.int "two batches recorded" 2 (Delta.history_depth t);
  let _ = ok_exn (Delta.undo t) in
  let _ = ok_exn (Delta.undo t) in
  check Alcotest.int "count restored" c0 (count ());
  Alcotest.(check bool)
    "relation restored" true
    (Relation.equal rel (Delta.relation t));
  match Delta.undo t with
  | Ok _ -> Alcotest.fail "undo past the beginning must fail"
  | Error _ -> ()

let test_index_total_and_stable () =
  (* vertex ids ARE the relation's fact ids: Conflict.index must be total
     on the live instance, agree with Relation.find, survive
     insert/delete/undo round-trips for untouched tuples, and a rebuild
     from the delta'd relation must reproduce the numbering exactly *)
  let rng = Prng.create 977 in
  for _ = 1 to 6 do
    let rel, fds =
      Generator.random_instance rng ~n:10 ~key_values:4 ~payload_values:2
    in
    let t = ok_exn (Delta.create ~rule:score_rule fds rel) in
    let snapshot () =
      let c = Delta.conflict t in
      Vset.fold
        (fun v acc -> (Conflict.tuple c v, v) :: acc)
        (Conflict.live c) []
    in
    let check_total msg =
      let c = Delta.conflict t in
      Vset.iter
        (fun v ->
          check
            Alcotest.(option int)
            (msg ^ ": index total on live vertices")
            (Some v)
            (Conflict.index c (Conflict.tuple c v)))
        (Conflict.live c);
      Relation.iter
        (fun tu ->
          check
            Alcotest.(option int)
            (msg ^ ": index = Relation.find")
            (Relation.find (Conflict.relation c) tu)
            (Conflict.index c tu))
        (Delta.relation t);
      (* a from-scratch rebuild numbers the same tuples identically *)
      let c0 = Conflict.build fds (Delta.relation t) in
      Vset.iter
        (fun v ->
          check
            Alcotest.(option int)
            (msg ^ ": rebuild keeps ids")
            (Some v)
            (Conflict.index c0 (Conflict.tuple c v)))
        (Conflict.live c)
    in
    check_total "initial";
    for step = 1 to 4 do
      let before = snapshot () in
      let batch = random_batch rng t in
      (match Delta.apply t batch with Ok _ -> () | Error e -> Alcotest.fail e);
      let c = Delta.conflict t in
      let msg = Printf.sprintf "step %d" step in
      check_total msg;
      List.iter
        (fun (tu, v) ->
          let touched =
            List.exists
              (function
                | Delta.Delete x | Delta.Insert x -> Tuple.equal x tu)
              batch
          in
          if not touched then
            check
              Alcotest.(option int)
              (msg ^ ": untouched tuple keeps its id")
              (Some v) (Conflict.index c tu))
        before
    done;
    while Delta.history_depth t > 0 do
      match Delta.undo t with Ok _ -> () | Error e -> Alcotest.fail e
    done;
    check_total "after undo"
  done

let suite =
  [
    ("random updates: incremental = rebuild", `Quick, test_random_equivalence);
    ("random updates: undo = rewind", `Quick, test_random_undo_equivalence);
    ("insert creates conflicts", `Quick, test_insert_creates_conflicts);
    ("delete splits a component", `Quick, test_delete_splits_component);
    ("rejected batch leaves no trace", `Quick, test_rejected_batch_leaves_no_trace);
    ("cyclic rule rejected at update time", `Quick, test_cyclic_rule_rejected);
    ("cache survives for untouched components", `Quick, test_cache_retention);
    ("empty batch and delete+reinsert", `Quick, test_empty_batch_and_reinsert);
    ("undo restores counts and instance", `Quick, test_undo_restores_counts);
    ("index total and id-stable under updates", `Quick, test_index_total_and_stable);
  ]
