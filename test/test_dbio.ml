(* Tests for the instance file format and the workload generators. *)

open Relational
module IF = Dbio.Instance_format

let check = Alcotest.check

let mgr_text =
  "# the paper's running example\n\
   relation Mgr(Name:name, Dept:name, Salary:int, Reports:int)\n\
   fd Dept -> Name Salary Reports\n\
   fd Name -> Dept Salary Reports\n\
   tuple 'Mary' 'R&D' 40000 3  source=s1\n\
   tuple 'John' 'R&D' 10000 2  source=s2\n\
   tuple 'Mary' 'IT'  20000 1  source=s3\n\
   tuple 'John' 'PR'  30000 4  source=s3\n\
   prefer source s1 > s3\n\
   prefer source s2 > s3\n"

let test_parse_mgr () =
  match IF.parse mgr_text with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    check Alcotest.int "4 tuples" 4 (Relation.cardinality spec.IF.relation);
    check Alcotest.int "2 fds" 2 (List.length spec.IF.fds);
    check Alcotest.int "2 prefs" 2 (List.length spec.IF.prefs);
    let t = Tuple.make [ Value.name "Mary"; Value.name "R&D"; Value.int 40000; Value.int 3 ] in
    Alcotest.(check (option string)) "provenance" (Some "s1")
      (Provenance.source spec.IF.provenance t)

let test_parse_matches_generator () =
  let spec = Result.get_ok (IF.parse mgr_text) in
  let rel, fds, _ = Testlib.mgr () in
  Alcotest.(check bool) "same relation" true (Relation.equal rel spec.IF.relation);
  Alcotest.(check bool) "same fds" true
    (List.equal Constraints.Fd.equal fds spec.IF.fds)

let test_end_to_end_preferred_answer () =
  (* parse → rule → priority → preferred CQA reproduces Example 3 *)
  let spec = Result.get_ok (IF.parse mgr_text) in
  let c = Core.Conflict.build spec.IF.fds spec.IF.relation in
  let rule = Result.get_ok (IF.to_rule spec) in
  let p = Core.Pref_rules.apply_exn c rule in
  let q2 =
    Query.Parser.parse_exn
      "exists x1,y1,z1,x2,y2,z2. Mgr('Mary',x1,y1,z1) and Mgr('John',x2,y2,z2) \
       and y1 > y2 and z1 < z2"
  in
  Alcotest.(check bool) "Q2 preferred-certain" true
    (Core.Cqa.consistent_answer Core.Family.C c p q2)

let test_roundtrip () =
  let spec = Result.get_ok (IF.parse mgr_text) in
  let spec' = Result.get_ok (IF.parse (IF.print spec)) in
  Alcotest.(check bool) "relation" true (Relation.equal spec.IF.relation spec'.IF.relation);
  Alcotest.(check bool) "fds" true (List.equal Constraints.Fd.equal spec.IF.fds spec'.IF.fds);
  Alcotest.(check bool) "prefs" true (spec.IF.prefs = spec'.IF.prefs)

let test_annotations () =
  let text =
    "relation R(A:int, B:int)\n\
     tuple 1 2 source=s1 timestamp=99\n\
     prefer newest\n"
  in
  let spec = Result.get_ok (IF.parse text) in
  let t = Tuple.make [ Value.int 1; Value.int 2 ] in
  Alcotest.(check (option int)) "timestamp" (Some 99)
    (Provenance.timestamp spec.IF.provenance t);
  Alcotest.(check bool) "newest pref" true (spec.IF.prefs = [ IF.Newest ])

let test_parse_errors () =
  let expect_error text =
    match IF.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "tuple 1 2\n";
  expect_error "relation R(A:int)\ntuple x\n";
  expect_error "relation R(A:int)\ntuple 1 extra_token\n";
  expect_error "relation R(A:int)\nfd B -> A\n";
  expect_error "relation R(A:int)\nprefer loudest\n";
  expect_error "relation R(A:int)\nrelation S(B:int)\n";
  expect_error "relation R(A:bogus)\n";
  expect_error "nonsense here\n";
  expect_error ""

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_error_line_numbers () =
  match IF.parse "relation R(A:int)\n# fine\ntuple nope\n" with
  | Error e ->
    Alcotest.(check bool) "mentions line 3" true (contains ~needle:"line 3" e)
  | Ok _ -> Alcotest.fail "accepted bad tuple"

(* --- workload generators --------------------------------------------------- *)

let test_generator_determinism () =
  let run seed =
    let rng = Workload.Prng.create seed in
    let rel, _ =
      Workload.Generator.random_instance rng ~n:20 ~key_values:5 ~payload_values:3
    in
    rel
  in
  Alcotest.(check bool) "same seed, same instance" true
    (Relation.equal (run 7) (run 7));
  Alcotest.(check bool) "different seeds differ" false
    (Relation.equal (run 7) (run 8))

let test_scenario_integration () =
  let rng = Workload.Prng.create 13 in
  let s =
    Workload.Scenario.integration rng ~employees:30 ~sources_per_tier:[ 2; 1 ]
      ~overlap:0.7
  in
  check Alcotest.int "three sources" 3 (List.length s.Workload.Scenario.sources);
  (* tier spans: both top-tier sources above the single bottom one *)
  check Alcotest.int "two reliability pairs" 2
    (List.length s.Workload.Scenario.reliability);
  Alcotest.(check bool) "has tuples" true
    (Relation.cardinality s.Workload.Scenario.relation >= 30);
  Alcotest.(check bool) "some conflicts" true
    (Workload.Scenario.conflicting_tuples s > 0);
  (* the reliability rule yields a valid (acyclic) priority *)
  let c = Core.Conflict.build s.Workload.Scenario.fds s.Workload.Scenario.relation in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability s.Workload.Scenario.provenance
         ~more_reliable_than:s.Workload.Scenario.reliability)
  in
  Alcotest.(check bool) "priority builds" true
    (Result.is_ok (Core.Pref_rules.apply c rule))

let test_random_repair_is_repair () =
  let rng = Workload.Prng.create 91 in
  for _ = 1 to 15 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:15 ~key_values:4 ~payload_values:2
    in
    let c = Core.Conflict.build fds rel in
    Alcotest.(check bool) "random repair valid" true
      (Core.Repair.is_repair c (Workload.Generator.random_repair rng c))
  done

(* --- denial lines ---------------------------------------------------------- *)

let denial_text =
  "relation Emp(Name:name, Dept:name, Cap:int)\n\
   denial 'no-dup' forall 2 : t1.Name = t2.Name and t1.Dept != t2.Dept\n\
   denial 'cap' forall 1 : t1.Cap > 100\n\
   tuple 'Mary' 'R&D' 10\n\
   tuple 'Mary' 'IT' 20\n\
   tuple 'John' 'PR' 200\n"

let test_denial_parse_and_roundtrip () =
  let spec = Result.get_ok (IF.parse denial_text) in
  let strings dcs = List.map Constraints.Denial.to_string dcs in
  check
    Alcotest.(list string)
    "two denials parsed"
    [
      "'no-dup' forall 2 : t1.Name = t2.Name and t1.Dept != t2.Dept";
      "'cap' forall 1 : t1.Cap > 100";
    ]
    (strings spec.IF.denials);
  (* print → parse preserves them verbatim *)
  let spec' = Result.get_ok (IF.parse (IF.print spec)) in
  check
    Alcotest.(list string)
    "denials survive the round-trip" (strings spec.IF.denials)
    (strings spec'.IF.denials);
  (* and the parsed denials drive the hypergraph: Mary's two rows
     conflict, John's capacity violation is a singleton edge *)
  let h = Core.Hyper.build spec.IF.denials spec.IF.relation in
  check Alcotest.int "two hyperedges" 2
    (Graphs.Hypergraph.edge_count (Core.Hyper.hypergraph h))

let test_denial_parse_errors () =
  List.iter
    (fun line ->
      match IF.parse ("relation R(A:int)\n" ^ line ^ "\n") with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed denial: %s" line)
    [
      "denial forall 0 : t1.A = t1.A";
      "denial forall 2 : t1.A = t3.A";
      "denial forall 2 : t1.B = t2.B";
      "denial nonsense";
    ]

(* --- quoting, escaping and the save/load/save fixpoint ------------------- *)

let name_spec names =
  let schema = Schema.make "R" [ ("A", Schema.TName); ("B", Schema.TInt) ] in
  {
    IF.relation =
      Relation.of_rows schema
        (List.mapi (fun i n -> [ Value.Name n; Value.Int i ]) names);
    fds = [];
    denials = [];
    provenance = Provenance.empty;
    prefs = [];
  }

let test_escaped_names_roundtrip () =
  let adversarial =
    [ "it's"; "back\\slash"; "'"; "\\"; "\\'"; "a b"; "#comment"; ""; "x=y"; "''" ]
  in
  let spec = name_spec adversarial in
  match IF.render spec with
  | Error e -> Alcotest.fail e
  | Ok text -> (
    match IF.parse text with
    | Error e -> Alcotest.failf "reparse failed on:\n%s\n%s" text e
    | Ok spec2 ->
      Alcotest.(check bool) "relation survives quoting" true
        (Relation.equal spec.IF.relation spec2.IF.relation))

let test_unprintable_names_rejected () =
  List.iter
    (fun bad ->
      match IF.render (name_spec [ bad ]) with
      | Error _ -> ()
      | Ok text ->
        Alcotest.failf "unprintable name %S rendered as:\n%s" bad text)
    [ "new\nline"; "tab\there"; "nul\000"; "del\127" ];
  (* and save refuses to write the file at all *)
  let path = Filename.temp_file "prefdb_reject" ".txt" in
  Sys.remove path;
  (match IF.save path (name_spec [ "torn\nname" ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "save wrote an unloadable file");
  Alcotest.(check bool) "no file written" false (Sys.file_exists path)

let test_tokenizer_escapes () =
  (* unknown escapes and dangling escapes are errors, not silent
     re-tokenizations *)
  List.iter
    (fun line ->
      match IF.parse ("relation R(A:name)\ntuple " ^ line ^ "\n") with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed quoting: %s" line)
    [ "'\\n'"; "'dangling\\"; "'unterminated" ]

let test_truncated_tuple_is_positioned_error () =
  match IF.parse "relation R(A:name, B:int)\ntuple 'x'\n" with
  | Ok _ -> Alcotest.fail "truncated tuple accepted"
  | Error e ->
    Alcotest.(check bool) "carries the line number" true
      (String.length e >= 6 && String.sub e 0 6 = "line 2")

(* The qcheck fixpoint: for any names drawn from an adversarial
   alphabet (quotes, backslashes, whitespace, comment and annotation
   metacharacters, empty strings), save → load → save is a fixpoint
   and load reproduces the instance exactly. *)
let name_gen =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ '\''; '\\'; ' '; '#'; '='; 'a'; 'b'; '0' ])
      (int_bound 8))

let test_save_load_save_fixpoint =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"save→load→save fixpoint over adversarial names"
       ~count:300
       ~print:(fun names ->
         String.concat ", " (List.map (Printf.sprintf "%S") names))
       QCheck2.Gen.(list_size (int_range 1 6) name_gen)
       (fun names ->
         let spec = name_spec names in
         match IF.render spec with
         | Error e -> QCheck2.Test.fail_reportf "render failed: %s" e
         | Ok text -> (
           match IF.parse text with
           | Error e ->
             QCheck2.Test.fail_reportf "reparse failed: %s\non:\n%s" e text
           | Ok spec2 ->
             Relation.equal spec.IF.relation spec2.IF.relation
             && IF.render spec2 = Ok text)))

let suite =
  [
    ("parse the Mgr instance file", `Quick, test_parse_mgr);
    ("parsed instance matches the generator", `Quick, test_parse_matches_generator);
    ("file → preferences → certain answer (Example 3)", `Quick, test_end_to_end_preferred_answer);
    ("print/parse roundtrip", `Quick, test_roundtrip);
    ("tuple annotations", `Quick, test_annotations);
    ("parse errors", `Quick, test_parse_errors);
    ("errors carry line numbers", `Quick, test_error_line_numbers);
    ("generators are deterministic", `Quick, test_generator_determinism);
    ("integration scenario", `Quick, test_scenario_integration);
    ("random repairs are repairs", `Quick, test_random_repair_is_repair);
    ("denial lines parse and round-trip", `Quick, test_denial_parse_and_roundtrip);
    ("malformed denial lines rejected", `Quick, test_denial_parse_errors);
    ("escaped names roundtrip", `Quick, test_escaped_names_roundtrip);
    ("unprintable names rejected", `Quick, test_unprintable_names_rejected);
    ("tokenizer rejects bad escapes", `Quick, test_tokenizer_escapes);
    ("truncated tuple is a positioned error", `Quick, test_truncated_tuple_is_positioned_error);
    test_save_load_save_fixpoint;
  ]
