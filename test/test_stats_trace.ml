(* Tests for instance statistics and Algorithm 1 traces. *)

open Graphs
module Stats = Core.Stats
module Trace = Core.Trace
module Family = Core.Family
module Conflict = Core.Conflict
module Priority = Core.Priority

let check = Alcotest.check

let mgr_with_priority () =
  let rel, fds, prov = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  (c, Core.Pref_rules.apply_exn c rule)

let test_stats_mgr () =
  let c, p = mgr_with_priority () in
  let s = Stats.compute Family.C c p in
  check Alcotest.int "tuples" 4 s.Stats.tuples;
  check Alcotest.int "edges" 3 s.Stats.conflict_edges;
  check Alcotest.int "conflicting tuples" 4 s.Stats.conflicting_tuples;
  check Alcotest.int "one component" 1 s.Stats.components;
  check Alcotest.int "largest" 4 s.Stats.largest_component;
  check Alcotest.int "oriented" 2 s.Stats.oriented_edges;
  Alcotest.(check bool) "partial" false s.Stats.total_priority;
  check Alcotest.int "3 repairs" 3 s.Stats.repair_count;
  check Alcotest.int "2 preferred" 2 s.Stats.preferred_count;
  check Alcotest.int "no certain" 0 s.Stats.certain;
  check Alcotest.int "all disputed" 4 s.Stats.disputed;
  check Alcotest.int "none excluded" 0 s.Stats.excluded

let test_stats_consistent () =
  let rel, fds =
    ( Relational.Relation.of_rows
        (Relational.Schema.make "R"
           [ ("A", Relational.Schema.TInt); ("B", Relational.Schema.TInt) ])
        [ [ Relational.Value.int 1; Relational.Value.int 1 ] ],
      [ Constraints.Fd.make [ "A" ] [ "B" ] ] )
  in
  let c = Conflict.build fds rel in
  let s = Stats.compute Family.Rep c (Priority.empty c) in
  check Alcotest.int "no conflicts" 0 s.Stats.conflict_edges;
  check Alcotest.int "one repair" 1 s.Stats.repair_count;
  check Alcotest.int "everything certain" 1 s.Stats.certain;
  Alcotest.(check bool) "empty priority is total here" true s.Stats.total_priority

let test_stats_counts_consistent_with_decompose () =
  let rng = Workload.Prng.create 601 in
  for _ = 1 to 10 do
    let rel, fds =
      Workload.Generator.random_two_fd_instance rng ~n:10 ~a_values:3 ~c_values:3
        ~v_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.5 c in
    let s = Stats.compute Family.G c p in
    check Alcotest.int "preferred = enumeration"
      (List.length (Family.repairs Family.G c p))
      s.Stats.preferred_count;
    check Alcotest.int "certain+disputed+excluded = tuples" s.Stats.tuples
      (s.Stats.certain + s.Stats.disputed + s.Stats.excluded)
  done

let test_stats_compute_with_reuses_cache () =
  let c, p = mgr_with_priority () in
  let d = Core.Decompose.make c p in
  let cold = Stats.compute_with Family.C d in
  check Alcotest.int "cold run misses once per component" 1 cold.Stats.cache_misses;
  check Alcotest.int "cold run caches the preferred repairs" 2
    cold.Stats.cached_repairs;
  let warm = Stats.compute_with Family.C d in
  check Alcotest.int "warm run never misses" 0 warm.Stats.cache_misses;
  Alcotest.(check bool) "warm run hits the cache" true (warm.Stats.cache_hits > 0);
  check Alcotest.int "verdicts unchanged" cold.Stats.preferred_count
    warm.Stats.preferred_count

let test_trace_result_matches_clean () =
  let rng = Workload.Prng.create 603 in
  for _ = 1 to 15 do
    let rel, fds =
      Workload.Generator.random_instance rng ~n:12 ~key_values:4 ~payload_values:2
    in
    let c = Conflict.build fds rel in
    let p = Workload.Generator.random_priority rng ~density:0.6 c in
    let t = Trace.clean c p in
    check Testlib.vset "trace result = clean" (Core.Winnow.clean c p) t.Trace.result
  done

let test_trace_structure () =
  let c, p = mgr_with_priority () in
  let t = Trace.clean c p in
  (* each step's pick is in its winnow set, and the steps partition the
     instance into picks and removals *)
  List.iter
    (fun step ->
      Alcotest.(check bool) "pick in winnow" true
        (Vset.mem step.Trace.picked step.Trace.winnow))
    t.Trace.steps;
  let covered =
    List.fold_left
      (fun acc step -> Vset.union acc (Vset.add step.Trace.picked step.Trace.removed))
      Vset.empty t.Trace.steps
  in
  check Testlib.vset "steps cover the instance"
    (Vset.of_range (Conflict.size c))
    covered;
  check Alcotest.int "picks = result size"
    (Vset.cardinal t.Trace.result)
    (List.length t.Trace.steps)

let test_pp_smoke () =
  let c, p = mgr_with_priority () in
  Alcotest.(check bool) "stats render" true
    (String.length (Format.asprintf "%a" Stats.pp (Stats.compute Family.C c p)) > 20);
  Alcotest.(check bool) "trace renders" true
    (String.length (Format.asprintf "%a" (Trace.pp c) (Trace.clean c p)) > 20)

let suite =
  [
    ("stats on the Mgr instance", `Quick, test_stats_mgr);
    ("stats on a consistent instance", `Quick, test_stats_consistent);
    ("stats agree with decompose", `Quick, test_stats_counts_consistent_with_decompose);
    ("compute_with reuses the component cache", `Quick, test_stats_compute_with_reuses_cache);
    ("trace result = clean", `Quick, test_trace_result_matches_clean);
    ("trace structure", `Quick, test_trace_structure);
    ("printers render", `Quick, test_pp_smoke);
  ]
