(* Property-based tests (QCheck, registered as alcotest cases).

   Random instances are drawn through the deterministic workload
   generators: the QCheck generator produces (seed, size parameters) and
   the property derives the instance, so failures print a reproducible
   configuration. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Repair = Core.Repair
module Family = Core.Family
module Optimality = Core.Optimality
module Winnow = Core.Winnow

type case = {
  seed : int;
  n : int;
  shape : int;  (* 0: one key; 1: two FDs; 2: ladder; 3: cycle *)
  density_pct : int;
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 2 10 in
    let* shape = int_bound 3 in
    let* density_pct = int_bound 100 in
    return { seed; n; shape; density_pct })

let case_print c =
  Printf.sprintf "{seed=%d; n=%d; shape=%d; density=%d%%}" c.seed c.n c.shape
    c.density_pct

let build_case c =
  let rng = Workload.Prng.create c.seed in
  let rel, fds =
    match c.shape with
    | 0 -> Workload.Generator.random_instance rng ~n:c.n ~key_values:3 ~payload_values:2
    | 1 ->
      Workload.Generator.random_two_fd_instance rng ~n:c.n ~a_values:3 ~c_values:3
        ~v_values:2
    | 2 -> Workload.Generator.ladder (max 1 (c.n / 2))
    | _ -> Workload.Generator.mutual_cycle (max 2 (c.n / 2))
  in
  let conflict = Conflict.build fds rel in
  let p =
    Workload.Generator.random_priority rng
      ~density:(float_of_int c.density_pct /. 100.)
      conflict
  in
  (conflict, p)

let prop name ?(count = 60) f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:case_print case_gen f)

let subset l1 l2 = List.for_all (fun s -> List.exists (Vset.equal s) l2) l1
let set_equal l1 l2 = subset l1 l2 && subset l2 l1

(* --- properties ------------------------------------------------------------ *)

let repairs_are_maximal =
  prop "every enumerated repair is a maximal independent set" (fun c ->
      let conflict, _ = build_case c in
      List.for_all (Repair.is_repair conflict) (Repair.all conflict))

let containment_chain =
  prop "C ⊆ G ⊆ S ⊆ L ⊆ Rep" (fun c ->
      let conflict, p = build_case c in
      let rep = Family.repairs Family.Rep conflict p in
      let l = Family.repairs Family.L conflict p in
      let s = Family.repairs Family.S conflict p in
      let g = Family.repairs Family.G conflict p in
      let cr = Family.repairs Family.C conflict p in
      subset cr g && subset g s && subset s l && subset l rep)

let p1_nonempty =
  prop "P1: every family selects at least one repair" (fun c ->
      let conflict, p = build_case c in
      List.for_all
        (fun f -> Family.repairs f conflict p <> [])
        Family.all_names)

let p2_one_step =
  prop ~count:40 "P2: one-step extensions only narrow the selection" (fun c ->
      let conflict, p = build_case c in
      List.for_all
        (fun f ->
          let before = Family.repairs f conflict p in
          List.for_all
            (fun p' -> subset (Family.repairs f conflict p') before)
            (Priority.one_step_extensions conflict p))
        [ Family.L; Family.S; Family.G; Family.C ])

let p4_total =
  prop "P4: G and C are singletons under the totalized priority" (fun c ->
      let conflict, p = build_case c in
      let total = Priority.totalize conflict p in
      List.length (Family.repairs Family.G conflict total) = 1
      && List.length (Family.repairs Family.C conflict total) = 1)

let prop1_confluence =
  prop "Prop 1: Algorithm 1 is choice-independent for total priorities"
    (fun c ->
      let conflict, p = build_case c in
      let total = Priority.totalize conflict p in
      Vset.equal
        (Winnow.clean ~choose:Vset.min_elt conflict total)
        (Winnow.clean ~choose:Vset.max_elt conflict total))

let prop5_equivalence =
  prop ~count:30 "Prop 5: ≪-maximality = the replacement definition" (fun c ->
      let conflict, p = build_case c in
      Conflict.size conflict > 9
      || List.for_all
           (fun r' ->
             Optimality.is_globally_optimal conflict p r'
             = Optimality.is_globally_optimal_by_replacement conflict p r')
           (Repair.all conflict))

let prop7_c_membership =
  prop "Prop 7: PTIME C-check = Algorithm 1 enumeration" (fun c ->
      let conflict, p = build_case c in
      let c_rep = Winnow.all_results conflict p in
      List.for_all
        (fun r' ->
          Winnow.is_result conflict p r' = List.exists (Vset.equal r') c_rep)
        (Repair.all conflict))

let clean_in_c_rep =
  prop "every Algorithm 1 run lands in C-Rep (hence in G-Rep)" (fun c ->
      let conflict, p = build_case c in
      let r' = Winnow.clean conflict p in
      Winnow.is_result conflict p r'
      && Optimality.is_globally_optimal conflict p r')

(* Theorem 2: if the priority cannot be extended to a cyclic orientation
   of the conflict graph, C-Rep and G-Rep coincide. Tested by brute force
   over all orientations of the unoriented edges. *)
let theorem2 =
  prop ~count:40 "Theorem 2: no cyclic extension ⇒ C-Rep = G-Rep" (fun c ->
      let conflict, p = build_case c in
      let unoriented = Priority.unoriented conflict p in
      if List.length unoriented > 8 then true
      else begin
        let base_arcs = Priority.arcs p in
        let extendable_to_cycle = ref false in
        let k = List.length unoriented in
        for mask = 0 to (1 lsl k) - 1 do
          let arcs =
            base_arcs
            @ List.mapi
                (fun i (u, v) ->
                  if mask land (1 lsl i) <> 0 then (u, v) else (v, u))
                unoriented
          in
          if Digraph.has_cycle (Digraph.create (Conflict.size conflict) arcs)
          then extendable_to_cycle := true
        done;
        !extendable_to_cycle
        || set_equal
             (Family.repairs Family.C conflict p)
             (Family.repairs Family.G conflict p)
      end)

let ground_cqa_agreement =
  prop ~count:40 "PTIME ground CQA = enumeration-based certainty" (fun c ->
      let conflict, _ = build_case c in
      let rng = Workload.Prng.create (c.seed + 7919) in
      let tuples = Conflict.tuples conflict in
      if Array.length tuples = 0 then true
      else begin
        let fact () =
          let t = tuples.(Workload.Prng.int rng (Array.length tuples)) in
          Query.Ast.Atom
            ( Relational.Schema.name (Conflict.schema conflict),
              List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
        in
        let lit () =
          if Workload.Prng.bool rng then fact () else Query.Ast.Not (fact ())
        in
        let q =
          Query.Ast.Or (Query.Ast.And (lit (), lit ()), Query.Ast.And (lit (), lit ()))
        in
        let naive =
          Core.Cqa.certainty Family.Rep conflict (Priority.empty conflict) q
        in
        match Core.Cqa.ground_certainty conflict q with
        | Error _ -> false
        | Ok fast -> naive = fast
      end)

let one_key_l_equals_s =
  (* Prop. 3: for one key dependency L-Rep coincides with S-Rep. *)
  prop ~count:50 "Prop 3: one key ⇒ L-Rep = S-Rep" (fun c ->
      let rng = Workload.Prng.create c.seed in
      let rel, fds =
        Workload.Generator.random_instance rng ~n:c.n ~key_values:3
          ~payload_values:2
      in
      let conflict = Conflict.build fds rel in
      let p =
        Workload.Generator.random_priority rng
          ~density:(float_of_int c.density_pct /. 100.)
          conflict
      in
      set_equal (Family.repairs Family.L conflict p) (Family.repairs Family.S conflict p))

let cluster_s_equals_g =
  (* The tenable version of Prop. 4's coincidence claim: on cluster
     conflict graphs (one KEY dependency) L = S = G. The literal "one FD"
     version is refuted by a duplicate-regime counterexample — see
     test_optimality and EXPERIMENTS.md erratum 3. *)
  prop ~count:50 "one key ⇒ L-Rep = S-Rep = G-Rep" (fun c ->
      let rng = Workload.Prng.create c.seed in
      let rel, fds =
        Workload.Generator.random_instance rng ~n:c.n ~key_values:3
          ~payload_values:3
      in
      let conflict = Conflict.build fds rel in
      let p =
        Workload.Generator.random_priority rng
          ~density:(float_of_int c.density_pct /. 100.)
          conflict
      in
      let s = Family.repairs Family.S conflict p in
      set_equal (Family.repairs Family.L conflict p) s
      && set_equal s (Family.repairs Family.G conflict p))

let totalize_preserves_c_result =
  prop "C-Rep of a total extension refines C-Rep (P2 along totalize)" (fun c ->
      let conflict, p = build_case c in
      let total = Priority.totalize conflict p in
      subset (Family.repairs Family.C conflict total) (Family.repairs Family.C conflict p))

let aggregates_within_bounds =
  prop ~count:40 "preferred aggregate ranges nest inside Rep ranges" (fun c ->
      let conflict, p = build_case c in
      match
        ( Core.Aggregate.range_preferred Family.G conflict p Core.Aggregate.Count_all,
          Core.Aggregate.range_preferred Family.Rep conflict p Core.Aggregate.Count_all )
      with
      | Ok pref, Ok full -> (
        match (pref.Core.Aggregate.glb, pref.Core.Aggregate.lub,
               full.Core.Aggregate.glb, full.Core.Aggregate.lub) with
        | Some pg, Some pl, Some fg, Some fl -> fg <= pg && pl <= fl
        | _ -> true)
      | _ -> false)

let planner_matches_evaluator =
  (* random conjunctive queries over the case's instance: the algebraic
     planner and the active-domain evaluator must agree *)
  prop ~count:60 "query planner = active-domain evaluator" (fun c ->
      let conflict, _ = build_case c in
      let rel = Conflict.relation conflict in
      let db = Relational.Database.of_relations [ rel ] in
      let rng = Workload.Prng.create (c.seed + 104729) in
      let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
      let rel_name = Relational.Schema.name (Relational.Relation.schema rel) in
      let vars = [ "v0"; "v1"; "v2"; "v3" ] in
      let term () =
        if Workload.Prng.int rng 4 = 0 then
          Query.Ast.Const (Relational.Value.Int (Workload.Prng.int rng 3))
        else Query.Ast.Var (Workload.Prng.pick rng vars)
      in
      let atom () =
        Query.Ast.Atom (rel_name, List.init arity (fun _ -> term ()))
      in
      let n_atoms = 1 + Workload.Prng.int rng 2 in
      let conjuncts = List.init n_atoms (fun _ -> atom ()) in
      let body = Query.Ast.conj conjuncts in
      let used = Query.Ast.free_vars body in
      let body =
        (* a comparison between variables already bound by atoms *)
        if List.length used >= 2 && Workload.Prng.bool rng then
          let x = Workload.Prng.pick rng used in
          let y = Workload.Prng.pick rng used in
          Query.Ast.And
            (body, Query.Ast.Cmp (Query.Ast.Leq, Query.Ast.Var x, Query.Ast.Var y))
        else body
      in
      let q = Query.Ast.exists used body in
      Query.Eval.holds db q = Query.Engine.holds db q
      && Query.Plan.holds db q <> None)

let planner_answers_match_evaluator =
  (* random OPEN existential-conjunctive queries over a two-relation
     database (one name-typed column in play): the compiled Plan/Algebra
     route must return exactly the evaluator's answer set — free
     variables, rows, order and all. Comparisons include the degenerate
     name-order cases, so this locks the aligned semantics end to end. *)
  prop ~count:60 "planner open answers = evaluator answers" (fun c ->
      let conflict, _ = build_case c in
      let rel = Conflict.relation conflict in
      let rng = Workload.Prng.create (c.seed + 65537) in
      let schema_s =
        Relational.Schema.make "S"
          [ ("X", Relational.Schema.TInt); ("L", Relational.Schema.TName) ]
      in
      let rel_s =
        Relational.Relation.of_rows schema_s
          (List.init 4 (fun i ->
               [
                 Relational.Value.Int i;
                 Relational.Value.Name (Printf.sprintf "n%d" (i mod 3));
               ]))
      in
      let db = Relational.Database.of_relations [ rel; rel_s ] in
      let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
      let rel_name = Relational.Schema.name (Relational.Relation.schema rel) in
      let vars = [ "v0"; "v1"; "v2"; "v3"; "v4" ] in
      let term () =
        if Workload.Prng.int rng 5 = 0 then
          Query.Ast.Const (Relational.Value.Int (Workload.Prng.int rng 3))
        else Query.Ast.Var (Workload.Prng.pick rng vars)
      in
      let r_atom () =
        Query.Ast.Atom (rel_name, List.init arity (fun _ -> term ()))
      in
      let s_atom () =
        Query.Ast.Atom
          ( "S",
            [
              term ();
              (if Workload.Prng.int rng 3 = 0 then
                 Query.Ast.Const
                   (Relational.Value.Name
                      (Printf.sprintf "n%d" (Workload.Prng.int rng 3)))
               else Query.Ast.Var (Workload.Prng.pick rng [ "w0"; "w1" ]));
            ] )
      in
      let atoms =
        List.init (1 + Workload.Prng.int rng 2) (fun _ -> r_atom ())
        @ (if Workload.Prng.bool rng then [ s_atom () ] else [])
      in
      let body = Query.Ast.conj atoms in
      let used = Query.Ast.free_vars body in
      let body =
        if List.length used >= 2 && Workload.Prng.bool rng then
          let x = Workload.Prng.pick rng used in
          let y = Workload.Prng.pick rng used in
          let op =
            Workload.Prng.pick rng
              [
                Query.Ast.Lt; Query.Ast.Leq; Query.Ast.Geq; Query.Ast.Gt;
                Query.Ast.Eq; Query.Ast.Neq;
              ]
          in
          Query.Ast.And
            (body, Query.Ast.Cmp (op, Query.Ast.Var x, Query.Ast.Var y))
        else body
      in
      (* quantify a random subset of the variables; the rest stay free *)
      let bound = List.filter (fun _ -> Workload.Prng.bool rng) used in
      let q = Query.Ast.exists bound body in
      match Query.Plan.answers db q with
      | None -> false (* the whole fragment must be plannable *)
      | Some (pfree, prows) ->
        let efree, erows = Query.Eval.answers db q in
        List.equal String.equal pfree efree
        && List.equal (List.equal Relational.Value.equal) prows erows)

let cost_planner_widened_matches_evaluator =
  (* random queries over the WIDENED fragment — disjunction, negated
     atoms, bounded universals, int range comparisons against constants
     and variables — the cost-based planner must agree with the
     active-domain evaluator whenever it plans, and its evaluator
     fallback keeps the unsafe shapes agreeing trivially. Runs under
     whatever PREFDB_JOBS the suite was launched with (the CI matrix
     covers 1/2/4). *)
  prop ~count:80 "cost-based planner = evaluator on the widened fragment"
    (fun c ->
      let conflict, _ = build_case c in
      let rel = Conflict.relation conflict in
      let db = Relational.Database.of_relations [ rel ] in
      let rng = Workload.Prng.create (c.seed + 2468) in
      let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
      let rel_name = Relational.Schema.name (Relational.Relation.schema rel) in
      let vars = [ "v0"; "v1"; "v2"; "v3" ] in
      let term () =
        if Workload.Prng.int rng 4 = 0 then
          Query.Ast.Const (Relational.Value.Int (Workload.Prng.int rng 4))
        else Query.Ast.Var (Workload.Prng.pick rng vars)
      in
      let atom () =
        Query.Ast.Atom (rel_name, List.init arity (fun _ -> term ()))
      in
      let cmp_over used =
        let x = Workload.Prng.pick rng used in
        let op =
          Workload.Prng.pick rng
            [
              Query.Ast.Lt; Query.Ast.Leq; Query.Ast.Geq; Query.Ast.Gt;
              Query.Ast.Eq; Query.Ast.Neq;
            ]
        in
        let rhs =
          if Workload.Prng.bool rng then
            Query.Ast.Const (Relational.Value.Int (Workload.Prng.int rng 5))
          else Query.Ast.Var (Workload.Prng.pick rng used)
        in
        Query.Ast.Cmp (op, Query.Ast.Var x, rhs)
      in
      let block () =
        let atoms = List.init (1 + Workload.Prng.int rng 2) (fun _ -> atom ()) in
        let body = Query.Ast.conj atoms in
        let used = Query.Ast.free_vars body in
        let body =
          if used <> [] && Workload.Prng.bool rng then
            Query.Ast.And (body, cmp_over used)
          else body
        in
        if Workload.Prng.int rng 3 = 0 then
          Query.Ast.And (body, Query.Ast.Not (atom ()))
        else body
      in
      let q =
        if Workload.Prng.int rng 4 = 0 then begin
          (* bounded universal: forall x̄. R(x̄) implies (cmp | atom) *)
          let vs = List.init arity (Printf.sprintf "u%d") in
          let head =
            Query.Ast.Atom (rel_name, List.map (fun v -> Query.Ast.Var v) vs)
          in
          let concl =
            if Workload.Prng.bool rng then cmp_over vs else atom ()
          in
          Query.Ast.Forall (vs, Query.Ast.Implies (head, concl))
        end
        else begin
          let body =
            if Workload.Prng.bool rng then
              Query.Ast.Or (block (), block ())
            else block ()
          in
          let used = Query.Ast.free_vars body in
          let bound =
            List.filter (fun _ -> Workload.Prng.bool rng) used
          in
          Query.Ast.exists bound body
        end
      in
      if Query.Ast.is_closed q then
        Query.Eval.holds db q = Planner.Engine.holds db q
      else begin
        let efree, erows = Query.Eval.answers db q in
        let pfree, prows = Planner.Engine.answers db q in
        List.equal String.equal efree pfree
        && List.equal (List.equal Relational.Value.equal) erows prows
      end)

let multi_factorized_matches_product =
  (* two random inconsistent relations; the factorized multi-relation
     ground engine must agree with product enumeration for every family *)
  prop ~count:30 "multi-relation factorized CQA = product enumeration" (fun c ->
      let rng = Workload.Prng.create (c.seed + 31337) in
      let rel_r, fds_r =
        Workload.Generator.random_instance rng ~n:(2 + (c.n / 2)) ~key_values:2
          ~payload_values:2
      in
      let schema_s =
        Relational.Schema.make "S"
          [ ("X", Relational.Schema.TInt); ("Y", Relational.Schema.TInt) ]
      in
      let rel_s =
        Relational.Relation.of_rows schema_s
          (List.init
             (2 + (c.n / 2))
             (fun _ ->
               [
                 Relational.Value.Int (Workload.Prng.int rng 2);
                 Relational.Value.Int (Workload.Prng.int rng 2);
               ]))
      in
      let fds_s = [ Constraints.Fd.make [ "X" ] [ "Y" ] ] in
      let db = Relational.Database.of_relations [ rel_r; rel_s ] in
      let m = Core.Multi.build ~fds:[ ("R", fds_r); ("S", fds_s) ] db in
      let fact rel_name rel =
        let tuples = Relational.Relation.tuple_array rel in
        let t = tuples.(Workload.Prng.int rng (Array.length tuples)) in
        Query.Ast.Atom
          ( rel_name,
            List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
      in
      let q =
        Query.Ast.Or
          ( Query.Ast.And (fact "R" rel_r, Query.Ast.Not (fact "S" rel_s)),
            fact "S" rel_s )
      in
      List.for_all
        (fun family ->
          match Core.Multi.certainty_ground family m q with
          | Error _ -> false
          | Ok fast -> fast = Core.Multi.certainty family m q)
        Family.all_names)

let winnow_choose_crosscheck =
  (* the ISSUE's dominator-count-drift check: the incremental winnow
     (Winnow.pick maintains per-vertex dominator counts) must agree with
     the literal Algorithm 1 under ARBITRARY choice functions, not just
     the min_elt default, and its result must pass is_result and appear
     in the memoized all_results enumeration. The choice function is a
     deterministic hash of the winnow set, so both runs see the same
     picks without shared mutable state. *)
  prop ~count:60 "incremental winnow = literal Algorithm 1 under arbitrary choice"
    (fun c ->
      let conflict, p = build_case c in
      let choose s =
        let els = Vset.elements s in
        List.nth els (abs (Vset.hash s + c.seed) mod List.length els)
      in
      let inc = Winnow.clean ~choose conflict p in
      let naive = Winnow.clean_naive ~choose conflict p in
      Vset.equal inc naive
      && Winnow.is_result conflict p inc
      && List.exists (Vset.equal inc) (Winnow.all_results conflict p))

let sharded_certainty_matches_whole =
  (* decomposition equivalence across all families, on a ground query
     and on quantified queries (which take the deviation-scan path) *)
  prop ~count:40 "sharded streaming certainty = whole-graph certainty" (fun c ->
      let conflict, p = build_case c in
      let tuples = Conflict.tuples conflict in
      Array.length tuples = 0
      ||
      let d = Core.Decompose.make conflict p in
      let rng = Workload.Prng.create (c.seed + 271) in
      let rel_name = Relational.Schema.name (Conflict.schema conflict) in
      let fact () =
        let t = tuples.(Workload.Prng.int rng (Array.length tuples)) in
        Query.Ast.Atom
          ( rel_name,
            List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
      in
      let lit () =
        if Workload.Prng.bool rng then fact () else Query.Ast.Not (fact ())
      in
      let ground =
        Query.Ast.Or (Query.Ast.And (lit (), lit ()), lit ())
      in
      let arity =
        Relational.Schema.arity (Conflict.schema conflict)
      in
      let vars = List.init arity (Printf.sprintf "x%d") in
      let q_ex =
        Query.Ast.Exists
          (vars, Query.Ast.Atom (rel_name, List.map (fun v -> Query.Ast.Var v) vars))
      in
      List.for_all
        (fun family ->
          List.for_all
            (fun q ->
              Core.Cqa.certainty family conflict p q
              = Core.Decompose.certainty family d q)
            [ ground; q_ex; Query.Ast.Not q_ex ])
        Family.all_names)

let suite =
  [
    planner_matches_evaluator;
    planner_answers_match_evaluator;
    cost_planner_widened_matches_evaluator;
    multi_factorized_matches_product;
    repairs_are_maximal;
    containment_chain;
    p1_nonempty;
    p2_one_step;
    p4_total;
    prop1_confluence;
    prop5_equivalence;
    prop7_c_membership;
    clean_in_c_rep;
    theorem2;
    ground_cqa_agreement;
    one_key_l_equals_s;
    cluster_s_equals_g;
    totalize_preserves_c_result;
    aggregates_within_bounds;
    winnow_choose_crosscheck;
    sharded_certainty_matches_whole;
  ]
