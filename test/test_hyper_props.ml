(* Property tests for the hypergraph substrate: the denial-constraint
   pipeline must agree with every independent route to the same answer.

   - Hypergraph canonicalization (dedup + subset-minimality + canonical
     order) against a brute-force model, and [patch] against a full
     rebuild.
   - [Hyper.of_fds] against [Conflict.build]: same conflicts, same
     repairs, same verdicts — the binary path is the k = 2 special case
     and must stay bit-identical.
   - The postings join ([violation_sets], including the FD-shaped
     bucketing fast path) against the naive O(n^k) scan, and the pinned
     join against filtering the full join.
   - [Hdecompose] (sharded, cached, Pool-parallel under PREFDB_JOBS)
     against monolithic [Hfamily] enumeration, across component widths
     1-8.
   - [Hyper.apply_delta] / [Hdelta] against rebuilding from scratch.

   Random instances are drawn through the deterministic workload
   generators: QCheck generates (seed, sizes), the property derives the
   instance, so failures print a reproducible configuration. *)

open Relational
open Graphs
module Denial = Constraints.Denial
module Hyper = Core.Hyper
module Hpriority = Core.Hpriority
module Hfamily = Core.Hfamily
module Hdecompose = Core.Hdecompose
module Hdelta = Core.Hdelta
module Prng = Workload.Prng
module Generator = Workload.Generator

let check = Alcotest.check

let prop name ?(count = 60) gen print f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen f)

let vsets_equal = List.equal Vset.equal

(* --- Hypergraph canonicalization vs the brute-force model ------------------ *)

type hg_case = { seed : int; n : int; m : int }

let hg_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 12 in
    let* m = int_bound 20 in
    return { seed; n; m })

let hg_print c = Printf.sprintf "{seed=%d; n=%d; m=%d}" c.seed c.n c.m

let hg_edges c =
  let rng = Prng.create c.seed in
  List.init c.m (fun _ ->
      let card = 1 + Prng.int rng 3 in
      Vset.of_list (List.init card (fun _ -> Prng.int rng c.n)))

(* the quadratic all-pairs filter the packed builder replaces *)
let model_minimal edges =
  let distinct = List.sort_uniq Vset.compare edges in
  List.filter
    (fun e ->
      not
        (List.exists
           (fun e' -> (not (Vset.equal e' e)) && Vset.subset e' e)
           distinct))
    distinct

let hypergraph_canonical =
  prop "Hypergraph.create = dedup + subset-minimal + canonical order" hg_gen
    hg_print (fun c ->
      let edges = hg_edges c in
      vsets_equal
        (Hypergraph.edges (Hypergraph.create c.n edges))
        (model_minimal edges))

let hypergraph_patch_is_rebuild =
  prop "Hypergraph.patch = rebuild over survivors + additions" hg_gen hg_print
    (fun c ->
      let rng = Prng.create (c.seed + 1) in
      let edges = hg_edges c in
      let h = Hypergraph.create c.n edges in
      let drop =
        Vset.of_list
          (List.filter (fun _ -> Prng.int rng 4 = 0) (List.init c.n Fun.id))
      in
      let keep = Vset.diff (Vset.of_range c.n) drop in
      let add =
        List.filter_map
          (fun _ ->
            let card = 1 + Prng.int rng 2 in
            let e =
              Vset.inter
                (Vset.of_list (List.init card (fun _ -> Prng.int rng c.n)))
                keep
            in
            if Vset.is_empty e then None else Some e)
          (List.init 4 Fun.id)
      in
      let survivors =
        List.filter (fun e -> Vset.disjoint e drop) (Hypergraph.edges h)
      in
      vsets_equal
        (Hypergraph.edges (Hypergraph.patch h ~n:c.n ~drop ~add))
        (Hypergraph.edges (Hypergraph.create c.n (survivors @ add))))

(* --- random denial instances ----------------------------------------------- *)

type dn_case = { seed : int; n : int; a_values : int; skew : bool }

let dn_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 10 in
    let* a_values = int_range 1 4 in
    let* skew = bool in
    return { seed; n; a_values; skew })

let dn_print c =
  Printf.sprintf "{seed=%d; n=%d; a_values=%d; skew=%b}" c.seed c.n c.a_values
    c.skew

let dn_instance c =
  let rng = Prng.create c.seed in
  Generator.random_denial_instance rng ~n:c.n ~a_values:c.a_values
    ~payload_values:3 ~cap_chance:0.15 ~skew:c.skew

(* Acyclic by construction: orient each chosen conflicting pair from the
   lower to the higher position of a random vertex permutation. *)
let random_hpriority rng ~density h =
  let n = Hyper.size h in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) perm;
  let arcs =
    List.filter_map
      (fun (u, v) ->
        if Prng.int rng 100 < density then
          Some (if rank.(u) < rank.(v) then (u, v) else (v, u))
        else None)
      (Hpriority.conflicting_pairs h)
  in
  Hpriority.of_arcs_exn h arcs

(* --- violation detection: join = scan, pinned = filter --------------------- *)

let join_matches_scan =
  prop "violation_sets = naive O(n^k) scan (as tuple sets)" dn_gen dn_print
    (fun c ->
      let rel, denials = dn_instance c in
      let schema = Relation.schema rel in
      List.for_all
        (fun dc ->
          let as_tuples vs =
            List.sort_uniq Tuple.compare
              (List.map (Relation.fact rel) (Vset.elements vs))
          in
          List.equal
            (List.equal Tuple.equal)
            (Denial.violations schema dc rel)
            (List.sort_uniq
               (List.compare Tuple.compare)
               (List.map as_tuples (Denial.violation_sets schema dc rel))))
        denials)

let pinned_is_filter =
  prop "violation_sets_pinned id = witnesses containing id" dn_gen dn_print
    (fun c ->
      let rel, denials = dn_instance c in
      let schema = Relation.schema rel in
      List.for_all
        (fun dc ->
          let all = Denial.violation_sets schema dc rel in
          Vset.for_all
            (fun id ->
              vsets_equal
                (Denial.violation_sets_pinned schema dc rel id)
                (List.filter (Vset.mem id) all))
            (Relation.live_ids rel))
        denials)

(* --- of_fds vs the binary Conflict path ------------------------------------ *)

type fd_case = { seed : int; n : int; shape : int }

let fd_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 2 10 in
    let* shape = int_bound 3 in
    return { seed; n; shape })

let fd_print c = Printf.sprintf "{seed=%d; n=%d; shape=%d}" c.seed c.n c.shape

let fd_instance c =
  let rng = Prng.create c.seed in
  match c.shape with
  | 0 -> Generator.random_instance rng ~n:c.n ~key_values:3 ~payload_values:2
  | 1 ->
    Generator.random_two_fd_instance rng ~n:c.n ~a_values:3 ~c_values:3
      ~v_values:2
  | 2 -> Generator.ladder (max 1 (c.n / 2))
  | _ -> Generator.mutual_cycle (max 2 (c.n / 2))

let of_fds_matches_conflict_edges =
  prop "of_fds hyperedges = conflict-graph edges" fd_gen fd_print (fun c ->
      let rel, fds = fd_instance c in
      let h = Hyper.of_fds fds rel in
      let cg = Core.Conflict.build fds rel in
      let pairs =
        List.sort_uniq compare
          (List.map
             (fun (u, v) -> (min u v, max u v))
             (Undirected.edges (Core.Conflict.graph cg)))
      in
      let hedges = Hypergraph.edges (Hyper.hypergraph h) in
      List.length hedges = List.length pairs
      && List.for_all2
           (fun e (u, v) -> Vset.equal e (Vset.of_list [ u; v ]))
           hedges pairs)

let of_fds_matches_conflict_repairs =
  prop ~count:40 "of_fds repairs = binary-path repairs" fd_gen fd_print
    (fun c ->
      let rel, fds = fd_instance c in
      let h = Hyper.of_fds fds rel in
      let cg = Core.Conflict.build fds rel in
      vsets_equal (Hyper.repairs h) (Core.Repair.all cg))

let ground_query rng rel =
  let ids = Vset.elements (Relation.live_ids rel) in
  let t = Relation.fact rel (List.nth ids (Prng.int rng (List.length ids))) in
  let vals = Tuple.values t in
  let vals =
    (* sometimes perturb one position so false/ambiguous verdicts occur *)
    if Prng.int rng 2 = 0 then vals
    else
      List.mapi
        (fun i v ->
          if i = 0 then
            match v with Value.Int k -> Value.Int (k + 1) | v -> v
          else v)
        vals
  in
  Query.Ast.Atom
    (Relational.Schema.name (Relation.schema rel),
     List.map (fun v -> Query.Ast.Const v) vals)

let of_fds_certainty_matches_binary =
  prop ~count:40 "hyper ground certainty = binary ground certainty" fd_gen
    fd_print (fun c ->
      let rng = Prng.create (c.seed + 7) in
      let rel, fds = fd_instance c in
      let h = Hyper.of_fds fds rel in
      let cg = Core.Conflict.build fds rel in
      let d = Core.Decompose.make cg (Core.Priority.empty cg) in
      let q = ground_query rng rel in
      Result.get_ok (Hyper.ground_certainty h q)
      = Core.Decompose.certainty Core.Family.Rep d q)

(* --- Hdecompose vs monolithic Hfamily -------------------------------------- *)

type w_case = { seed : int; width : int; groups : int; tail : int }

let w_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* width = int_range 1 8 in
    let* groups = int_range 1 2 in
    let* tail = int_bound 3 in
    return { seed; width; groups; tail })

let w_print c =
  Printf.sprintf "{seed=%d; width=%d; groups=%d; tail=%d}" c.seed c.width
    c.groups c.tail

let w_instance c =
  let rel, denials =
    Generator.denial_clusters
      ~facts:((c.groups * c.width) + c.tail)
      ~groups:c.groups ~width:c.width
  in
  let h = Hyper.build denials rel in
  let rng = Prng.create c.seed in
  let p = random_hpriority rng ~density:60 h in
  (h, p)

let naive_certainty fam h p q =
  let truths =
    List.map
      (fun s -> Query.Eval.holds_relation (Hyper.to_relation h s) q)
      (Hfamily.repairs fam h p)
  in
  if List.for_all Fun.id truths then Core.Cqa.Certainly_true
  else if List.for_all not truths then Core.Cqa.Certainly_false
  else Core.Cqa.Ambiguous

let sharded_matches_monolithic =
  prop ~count:40 "Hdecompose count/repairs/certainty = monolithic Hfamily"
    w_gen w_print (fun c ->
      let h, p = w_instance c in
      let d = Hdecompose.make h p in
      let rng = Prng.create (c.seed + 11) in
      let q = ground_query rng (Hyper.relation h) in
      List.for_all
        (fun fam ->
          let mono = Hfamily.repairs fam h p in
          let sharded = ref [] in
          Hdecompose.iter fam d (fun s -> sharded := s :: !sharded);
          vsets_equal (List.sort Vset.compare !sharded) mono
          && Hdecompose.count fam d = List.length mono
          && Hdecompose.certainty fam d q = naive_certainty fam h p q
          && List.for_all (Hdecompose.member fam d) mono)
        Hfamily.all_names)

let families_nest =
  prop ~count:40 "Global ⊆ Pareto ⊆ Rep, all non-empty" w_gen w_print (fun c ->
      let h, p = w_instance c in
      let subset l1 l2 =
        List.for_all (fun s -> List.exists (Vset.equal s) l2) l1
      in
      let rep = Hfamily.repairs Hfamily.Rep h p in
      let pareto = Hfamily.repairs Hfamily.Pareto h p in
      let glob = Hfamily.repairs Hfamily.Global h p in
      rep <> [] && pareto <> [] && glob <> []
      && subset glob pareto && subset pareto rep
      && List.for_all (Hyper.is_repair h) rep)

let test_pareto_hand_example () =
  (* one conflict {a, b}, priority b ≻ a: Pareto = Global = [{b}],
     Rep keeps both singletons (Staworko-Chomicki, Example 1 shape) *)
  let schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let rel =
    Relation.of_rows schema
      [ [ Value.int 1; Value.int 0 ]; [ Value.int 1; Value.int 1 ] ]
  in
  let h = Hyper.of_fds [ Constraints.Fd.make [ "A" ] [ "B" ] ] rel in
  let p = Hpriority.of_arcs_exn h [ (1, 0) ] in
  let vs l = Vset.of_list l in
  Testlib.check_vsets "Rep keeps both" [ vs [ 0 ]; vs [ 1 ] ]
    (Hfamily.repairs Hfamily.Rep h p);
  Testlib.check_vsets "Pareto selects the dominator" [ vs [ 1 ] ]
    (Hfamily.repairs Hfamily.Pareto h p);
  Testlib.check_vsets "Global selects the dominator" [ vs [ 1 ] ]
    (Hfamily.repairs Hfamily.Global h p);
  check Alcotest.bool "member agrees" true
    (Hfamily.member Hfamily.Pareto h p (vs [ 1 ]));
  check Alcotest.bool "loser not Pareto" false
    (Hfamily.check Hfamily.Pareto h p (vs [ 0 ]))

(* --- deltas: incremental = rebuild ----------------------------------------- *)

let fresh_rows c k =
  (* rows guaranteed distinct from the generator's (C < n) output *)
  List.init k (fun i ->
      Tuple.make
        [ Value.int (i mod c.a_values); Value.int 0; Value.int (c.n + i);
          Value.int 1 ])

let apply_delta_is_rebuild =
  prop ~count:40 "Hyper.apply_delta = rebuild on the patched relation" dn_gen
    dn_print (fun c ->
      let rel, denials = dn_instance c in
      let h = Hyper.build denials rel in
      let rng = Prng.create (c.seed + 3) in
      let insert = fresh_rows c (1 + Prng.int rng 2) in
      let delete =
        List.filter_map
          (fun id ->
            if Prng.int rng 3 = 0 then Some (Hyper.tuple h id) else None)
          (Vset.elements (Relation.live_ids rel))
      in
      match Hyper.apply_delta h ~insert ~delete with
      | Error e -> QCheck2.Test.fail_reportf "delta rejected: %s" e
      | Ok (h', delta) ->
        let rebuilt = Hyper.build denials (Hyper.relation h') in
        vsets_equal
          (Hypergraph.edges (Hyper.hypergraph h'))
          (Hypergraph.edges (Hyper.hypergraph rebuilt))
        && List.length delta.Hyper.inserted = List.length insert
        && List.length delta.Hyper.deleted = List.length delete)

let hdelta_undo_restores =
  prop ~count:30 "Hdelta apply + undo restores edges, live set and counts"
    dn_gen dn_print (fun c ->
      let rel, denials = dn_instance c in
      let engine = Result.get_ok (Hdelta.create denials rel) in
      (* undo restores content, not fact ids (the inverse batch
         re-inserts under fresh ids, as in the binary [Delta]), so the
         fingerprint is id-independent *)
      let fingerprint () =
        ( List.sort compare
            (List.map Tuple.to_string
               (Relation.tuples (Hdelta.relation engine))),
          Hypergraph.edge_count (Hyper.hypergraph (Hdelta.hyper engine)),
          Hdecompose.count Hfamily.Rep (Hdelta.decompose engine) )
      in
      let before = fingerprint () in
      let before_live = Relation.live_ids (Hdelta.relation engine) in
      let rng = Prng.create (c.seed + 5) in
      let ops =
        List.map (fun t -> Hdelta.Insert t) (fresh_rows c 2)
        @ List.filter_map
            (fun id ->
              if Prng.int rng 3 = 0 then
                Some (Hdelta.Delete (Hyper.tuple (Hdelta.hyper engine) id))
              else None)
            (Vset.elements before_live)
      in
      match Hdelta.apply engine ops with
      | Error e -> QCheck2.Test.fail_reportf "apply rejected: %s" e
      | Ok _ -> (
        (* incremental state = rebuild on the mutated relation *)
        let fresh =
          Result.get_ok (Hdelta.create denials (Hdelta.relation engine))
        in
        let same_as_fresh =
          vsets_equal
            (Hypergraph.edges (Hyper.hypergraph (Hdelta.hyper engine)))
            (Hypergraph.edges (Hyper.hypergraph (Hdelta.hyper fresh)))
          && Hdecompose.count Hfamily.Rep (Hdelta.decompose engine)
             = Hdecompose.count Hfamily.Rep (Hdelta.decompose fresh)
        in
        match Hdelta.undo engine with
        | Error e -> QCheck2.Test.fail_reportf "undo rejected: %s" e
        | Ok _ -> same_as_fresh && fingerprint () = before))

(* --- denial text round-trip ------------------------------------------------ *)

let test_denial_text_roundtrip () =
  List.iter
    (fun dc ->
      let s = Denial.to_string dc in
      match Denial.of_string s with
      | Error e -> Alcotest.failf "reparse of %S failed: %s" s e
      | Ok dc' ->
        check Alcotest.string ("fixpoint of " ^ s) s (Denial.to_string dc'))
    (Generator.mixed_denials ~cap:Generator.denial_cap
    @ Denial.of_fd
        (Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ])
        (Constraints.Fd.make [ "A" ] [ "B" ])
    @ [
        Denial.make ~label:"it's quoted" ~nvars:1
          [
            {
              Denial.left = Denial.Attr (0, "A");
              op = Denial.Leq;
              right = Denial.Const (Value.name "o'brien");
            };
          ];
      ])

let suite =
  [
    hypergraph_canonical;
    hypergraph_patch_is_rebuild;
    join_matches_scan;
    pinned_is_filter;
    of_fds_matches_conflict_edges;
    of_fds_matches_conflict_repairs;
    of_fds_certainty_matches_binary;
    sharded_matches_monolithic;
    families_nest;
    ("Pareto/Global hand example", `Quick, test_pareto_hand_example);
    apply_delta_is_rebuild;
    hdelta_undo_restores;
    ("denial text round-trip", `Quick, test_denial_text_roundtrip);
  ]
