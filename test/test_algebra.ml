(* Tests for the relational algebra and the conjunctive-query planner. *)

open Relational
module A = Algebra
module Plan = Query.Plan
module Engine = Query.Engine

let check = Alcotest.check
let parse = Query.Parser.parse_exn

let r_schema = Schema.make "R" [ ("A", Schema.TInt); ("B", Schema.TInt) ]
let s_schema = Schema.make "S" [ ("B", Schema.TInt); ("C", Schema.TName) ]

let r () =
  Relation.of_rows r_schema
    [
      [ Value.int 1; Value.int 10 ];
      [ Value.int 2; Value.int 20 ];
      [ Value.int 3; Value.int 20 ];
    ]

let s () =
  Relation.of_rows s_schema
    [
      [ Value.int 10; Value.name "x" ];
      [ Value.int 20; Value.name "y" ];
      [ Value.int 30; Value.name "z" ];
    ]

(* --- algebra --------------------------------------------------------------- *)

let test_select () =
  let e = A.Select (A.Const_cmp (A.Gt, 1, Value.int 10), A.Rel (r ())) in
  check Alcotest.int "two rows" 2 (A.cardinality e);
  let e2 = A.Select (A.Attr_cmp (A.Lt, 0, 1), A.Rel (r ())) in
  check Alcotest.int "all rows (A < B)" 3 (A.cardinality e2);
  let e3 = A.Select (A.Conj [], A.Rel (r ())) in
  check Alcotest.int "empty conj = true" 3 (A.cardinality e3)

let test_project () =
  let e = A.Project ([ 1 ], A.Rel (r ())) in
  (* B values 10, 20, 20 -> dedup to 2 *)
  check Alcotest.int "set semantics" 2 (A.cardinality e);
  let dup = A.Project ([ 0; 0 ], A.Rel (r ())) in
  check Alcotest.int "duplicated column" 3 (A.cardinality dup);
  check Alcotest.int "arity" 2 (A.arity dup)

let test_join () =
  let e = A.Join ([ (1, 0) ], A.Rel (r ()), A.Rel (s ())) in
  (* R.B = S.B: (1,10)-(10,x), (2,20)-(20,y), (3,20)-(20,y) *)
  check Alcotest.int "join rows" 3 (A.cardinality e);
  check Alcotest.int "join arity" 4 (A.arity e);
  (* product *)
  let prod = A.Join ([], A.Rel (r ()), A.Rel (s ())) in
  check Alcotest.int "product" 9 (A.cardinality prod);
  (* join = select over product *)
  let via_product =
    A.Select (A.Attr_cmp (A.Eq, 1, 2), A.Join ([], A.Rel (r ()), A.Rel (s ())))
  in
  Alcotest.(check bool) "hash join = filtered product" true
    (Relation.equal
       (Relation.of_tuples (Relation.schema (A.eval e)) (Relation.tuples (A.eval e)))
       (Relation.of_tuples
          (Relation.schema (A.eval e))
          (Relation.tuples (A.eval via_product))))

let test_union_diff () =
  let top = A.Select (A.Const_cmp (A.Geq, 1, Value.int 20), A.Rel (r ())) in
  let bottom = A.Select (A.Const_cmp (A.Leq, 1, Value.int 10), A.Rel (r ())) in
  check Alcotest.int "union" 3 (A.cardinality (A.Union (top, bottom)));
  check Alcotest.int "diff" 1 (A.cardinality (A.Diff (A.Rel (r ()), top)));
  check Alcotest.int "self diff" 0 (A.cardinality (A.Diff (top, top)))

let test_check_errors () =
  let expect_error e =
    Alcotest.(check bool) "rejected" true (Result.is_error (A.check e))
  in
  expect_error (A.Project ([ 5 ], A.Rel (r ())));
  expect_error (A.Select (A.Attr_cmp (A.Eq, 0, 9), A.Rel (r ())));
  expect_error (A.Union (A.Rel (r ()), A.Rel (s ())));
  (* cross-type comparison and cross-type join stay errors *)
  expect_error (A.Select (A.Const_cmp (A.Lt, 1, Value.int 3), A.Rel (s ())));
  expect_error (A.Join ([ (0, 1) ], A.Rel (r ()), A.Rel (s ())));
  Alcotest.(check bool) "valid plan accepted" true
    (Result.is_ok (A.check (A.Join ([ (1, 0) ], A.Rel (r ()), A.Rel (s ())))))

(* Order comparisons on name-typed columns are accepted with degenerate
   semantics — names are unordered, so [<]/[>] never hold and [<=]/[>=]
   mean [=] — in lockstep with [Query.Eval.holds] and the planner's
   static rewrite. *)
let test_name_order_semantics () =
  let sel op v = A.Select (A.Const_cmp (op, 1, Value.name v), A.Rel (s ())) in
  Alcotest.(check bool) "accepted by check" true (Result.is_ok (A.check (sel A.Lt "y")));
  check Alcotest.int "names: < never holds" 0 (A.cardinality (sel A.Lt "y"));
  check Alcotest.int "names: > never holds" 0 (A.cardinality (sel A.Gt "y"));
  check Alcotest.int "names: <= means =" 1 (A.cardinality (sel A.Leq "y"));
  check Alcotest.int "names: >= means =" 1 (A.cardinality (sel A.Geq "y"));
  check Alcotest.int "names: = unaffected" 1 (A.cardinality (sel A.Eq "y"));
  check Alcotest.int "names: != unaffected" 2 (A.cardinality (sel A.Neq "y"));
  let attr op = A.Select (A.Attr_cmp (op, 1, 1), A.Rel (s ())) in
  check Alcotest.int "attr <= on same column = all" 3 (A.cardinality (attr A.Leq));
  check Alcotest.int "attr < on same column = none" 0 (A.cardinality (attr A.Lt));
  (* the evaluator agrees on the same comparisons *)
  let db = Database.of_relations [ s () ] in
  let holds q = Query.Eval.holds db (parse q) in
  Alcotest.(check bool) "eval: < never holds" false
    (holds "exists b, c. S(b, c) and c < 'y'");
  Alcotest.(check bool) "eval: <= means =" true
    (holds "exists b. S(b, 'y') and 'y' <= 'y'");
  (* and the planner routes them to the same answers *)
  let q = parse "exists b, c. S(b, c) and c <= 'y'" in
  (match (Plan.holds db q, Query.Eval.holds db q) with
  | Some p, e -> Alcotest.(check bool) "plan = eval on name <=" e p
  | None, _ -> Alcotest.fail "planner refused a name-order query")

(* --- planner ----------------------------------------------------------------- *)

let db () = Database.of_relations [ r (); s () ]

let test_plan_simple () =
  let q = parse "exists a, b. R(a, b) and b > 10" in
  Alcotest.(check (option bool)) "holds" (Some true) (Plan.holds (db ()) q);
  let q2 = parse "exists a. R(a, 99)" in
  Alcotest.(check (option bool)) "no match" (Some false) (Plan.holds (db ()) q2)

let test_plan_join_query () =
  let q = parse "exists a, b, c. R(a, b) and S(b, c) and c = 'y'" in
  Alcotest.(check (option bool)) "join via planner" (Some true)
    (Plan.holds (db ()) q);
  let q2 = parse "exists a, b, c. R(a, b) and S(b, c) and c = 'z'" in
  Alcotest.(check (option bool)) "S(30,z) unreachable" (Some false)
    (Plan.holds (db ()) q2)

let test_plan_open_query () =
  match Plan.answers (db ()) (parse "exists b. R(a, b) and S(b, c)") with
  | None -> Alcotest.fail "expected planner support"
  | Some (free, rows) ->
    check Alcotest.(list string) "free" [ "a"; "c" ] free;
    check Alcotest.int "rows" 3 (List.length rows)

let test_plan_static_simplification () =
  (* cross-domain equality and name ordering decide statically *)
  let q = parse "exists a, b. R(a, b) and a = 'nope'" in
  Alcotest.(check (option bool)) "cross-type constant" (Some false)
    (Plan.holds (db ()) q);
  let q2 = parse "exists b, c. S(b, c) and c < 'z'" in
  Alcotest.(check (option bool)) "name order unsatisfiable" (Some false)
    (Plan.holds (db ()) q2);
  let q3 = parse "exists b, c. S(b, c) and c <= 'y' and b = 20" in
  Alcotest.(check (option bool)) "name <= collapses to equality" (Some true)
    (Plan.holds (db ()) q3);
  let q4 = parse "exists a, b. R(a, b) and a != 'name'" in
  Alcotest.(check (option bool)) "cross-type inequality vacuous" (Some true)
    (Plan.holds (db ()) q4)

let test_plan_unsupported () =
  let unsupported q = Plan.holds (db ()) (parse q) = None in
  Alcotest.(check bool) "disjunction" true (unsupported "R(1, 10) or R(2, 20)");
  Alcotest.(check bool) "negation" true (unsupported "not R(1, 10)");
  Alcotest.(check bool) "universal" true (unsupported "forall a, b. R(a, b)");
  Alcotest.(check bool) "unsafe comparison" true
    (unsupported "exists a, b, x. R(a, b) and x > 3");
  Alcotest.(check bool) "no atoms" true (unsupported "1 < 2")

let test_plan_repeated_vars () =
  let schema = Schema.make "T" [ ("A", Schema.TInt); ("B", Schema.TInt) ] in
  let t =
    Relation.of_rows schema
      [ [ Value.int 1; Value.int 1 ]; [ Value.int 1; Value.int 2 ] ]
  in
  let db = Database.of_relations [ t ] in
  Alcotest.(check (option bool)) "diagonal atom" (Some true)
    (Plan.holds db (parse "exists x. T(x, x)"));
  match Plan.answers db (parse "T(x, x)") with
  | Some (_, rows) -> check Alcotest.int "one diagonal row" 1 (List.length rows)
  | None -> Alcotest.fail "expected support"

(* --- engine = eval cross-validation -------------------------------------------- *)

let test_engine_matches_eval_random () =
  let rng = Workload.Prng.create 503 in
  for _ = 1 to 40 do
    let n_r = 1 + Workload.Prng.int rng 8 in
    let rel =
      Relation.of_rows r_schema
        (List.init n_r (fun _ ->
             [
               Value.int (Workload.Prng.int rng 3);
               Value.int (10 * (1 + Workload.Prng.int rng 3));
             ]))
    in
    let srel =
      Relation.of_rows s_schema
        (List.init n_r (fun _ ->
             [
               Value.int (10 * (1 + Workload.Prng.int rng 3));
               Value.name (String.make 1 (Char.chr (Char.code 'x' + Workload.Prng.int rng 3)));
             ]))
    in
    let db = Database.of_relations [ rel; srel ] in
    let queries =
      [
        "exists a, b. R(a, b)";
        "exists a, b, c. R(a, b) and S(b, c)";
        "exists a, b. R(a, b) and b >= 20 and a != 1";
        "exists a, b, c. R(a, b) and S(b, c) and c = 'x'";
        "exists a. R(a, 10) and R(a, 20)";
        "exists x. R(x, x)";
      ]
    in
    List.iter
      (fun qs ->
        let q = parse qs in
        Alcotest.(check bool)
          (Printf.sprintf "planner = eval on %s" qs)
          (Query.Eval.holds db q) (Engine.holds db q);
        Alcotest.(check bool)
          (Printf.sprintf "planned: %s" qs)
          true
          (Engine.planned db q))
      queries;
    (* open query comparison *)
    let open_q = parse "exists b. R(a, b) and S(b, c)" in
    let free_e, rows_e = Query.Eval.answers db open_q in
    let free_p, rows_p = Engine.answers db open_q in
    check Alcotest.(list string) "free vars agree" free_e free_p;
    Alcotest.(check bool) "rows agree" true (rows_e = rows_p)
  done

let suite =
  [
    ("algebra: selection", `Quick, test_select);
    ("algebra: projection with set semantics", `Quick, test_project);
    ("algebra: hash join = filtered product", `Quick, test_join);
    ("algebra: union and difference", `Quick, test_union_diff);
    ("algebra: static validation", `Quick, test_check_errors);
    ("algebra: name-order degenerate semantics", `Quick, test_name_order_semantics);
    ("plan: simple selections", `Quick, test_plan_simple);
    ("plan: join queries", `Quick, test_plan_join_query);
    ("plan: open queries", `Quick, test_plan_open_query);
    ("plan: static simplification of comparisons", `Quick, test_plan_static_simplification);
    ("plan: unsupported fragment falls back", `Quick, test_plan_unsupported);
    ("plan: repeated variables in atoms", `Quick, test_plan_repeated_vars);
    ("engine: planner = evaluator on random databases", `Quick, test_engine_matches_eval_random);
  ]
