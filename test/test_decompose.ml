(* Tests for component-wise evaluation (Core.Decompose): the factorized
   engines must agree with the monolithic ones on every family. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Family = Core.Family
module Decompose = Core.Decompose
module Cqa = Core.Cqa

let check = Alcotest.check

let certainty =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Cqa.certainty_to_string c))
    (fun a b -> a = b)

let random_case rng =
  let rel, fds =
    Workload.Generator.random_instance rng ~n:10 ~key_values:4 ~payload_values:2
  in
  let c = Conflict.build fds rel in
  let p = Workload.Generator.random_priority rng ~density:0.5 c in
  (c, p)

let test_count_matches_enumeration () =
  let rng = Workload.Prng.create 401 in
  for _ = 1 to 20 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        check Alcotest.int
          (Family.name_to_string family)
          (List.length (Family.repairs family c p))
          (Decompose.count family d))
      Family.all_names
  done

let test_preferred_within_union () =
  (* stitching one preferred repair per component yields a preferred
     repair of the whole instance *)
  let rng = Workload.Prng.create 403 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        let stitched =
          List.fold_left
            (fun acc comp ->
              match Decompose.preferred_within family d comp with
              | first :: _ -> Vset.union first acc
              | [] -> Alcotest.fail "component family empty")
            Vset.empty (Decompose.components d)
        in
        Alcotest.(check bool)
          (Family.name_to_string family ^ " stitched is preferred")
          true
          (Family.check family c p stitched))
      Family.all_names
  done

let test_certainty_matches_naive () =
  let rng = Workload.Prng.create 405 in
  for _ = 1 to 25 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    let tuples = Conflict.tuples c in
    if Array.length tuples >= 2 then begin
      let atom i =
        Query.Ast.Atom
          ( Relational.Schema.name (Conflict.schema c),
            List.map
              (fun v -> Query.Ast.Const v)
              (Relational.Tuple.values tuples.(i)) )
      in
      let pick () = Workload.Prng.int rng (Array.length tuples) in
      let q =
        Query.Ast.Or
          ( Query.Ast.And (atom (pick ()), Query.Ast.Not (atom (pick ()))),
            atom (pick ()) )
      in
      List.iter
        (fun family ->
          let naive = Cqa.certainty family c p q in
          match Decompose.certainty_ground family d q with
          | Error e -> Alcotest.fail e
          | Ok fast ->
            check certainty (Family.name_to_string family) naive fast)
        Family.all_names
    end
  done

let test_certainty_example3 () =
  (* the Mgr disjunction certified by preferences, through the factorized
     engine this time *)
  let rel, fds, prov = Testlib.mgr () in
  let c = Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let p = Core.Pref_rules.apply_exn c rule in
  let d = Decompose.make c p in
  let q =
    Query.Parser.parse_exn
      "Mgr('Mary', 'R&D', 40000, 3) or Mgr('John', 'R&D', 10000, 2)"
  in
  check certainty "certain under C" Cqa.Certainly_true
    (Result.get_ok (Decompose.certainty_ground Family.C d q))

let test_aggregate_matches_enumeration () =
  let rng = Workload.Prng.create 407 in
  let range =
    Alcotest.testable Core.Aggregate.pp_range (fun a b ->
        a.Core.Aggregate.glb = b.Core.Aggregate.glb
        && a.Core.Aggregate.lub = b.Core.Aggregate.lub)
  in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        List.iter
          (fun agg ->
            let naive =
              Result.get_ok (Core.Aggregate.range_preferred family c p agg)
            in
            let fast = Result.get_ok (Decompose.aggregate_range family d agg) in
            check range
              (Family.name_to_string family ^ "/" ^ Core.Aggregate.agg_to_string agg)
              naive fast)
          [
            Core.Aggregate.Count_all;
            Core.Aggregate.Sum "B";
            Core.Aggregate.Min "B";
            Core.Aggregate.Max "C";
          ])
      Family.all_names
  done

let test_scales_beyond_enumeration () =
  (* 120 tuples in 30 clusters: 4^30 ≈ 10^18 repairs globally — far past
     enumeration — yet counting and ground certainty stay immediate *)
  let rel, fds = Workload.Generator.key_clusters ~groups:30 ~width:4 in
  let c = Conflict.build fds rel in
  let rng = Workload.Prng.create 409 in
  let p = Workload.Generator.random_priority rng ~density:0.7 c in
  let d = Decompose.make c p in
  check Alcotest.int "30 components" 30 (List.length (Decompose.components d));
  let pow b e = List.fold_left (fun a _ -> a * b) 1 (List.init e Fun.id) in
  check Alcotest.int "Rep count = 4^30" (pow 4 30) (Decompose.count Family.Rep d);
  let g_count = Decompose.count Family.G d in
  Alcotest.(check bool) "G count positive and below Rep" true
    (g_count > 0 && g_count <= pow 4 30);
  let t = Conflict.tuple c 0 in
  let q =
    Query.Ast.Atom
      ( "R",
        List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
  in
  match Decompose.certainty_ground Family.G d q with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_certain_possible_tuples () =
  let rng = Workload.Prng.create 411 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        let repairs = Family.repairs family c p in
        let expected_certain =
          match repairs with
          | [] -> Vset.empty
          | first :: rest -> List.fold_left Vset.inter first rest
        in
        let expected_possible = List.fold_left Vset.union Vset.empty repairs in
        check Testlib.vset
          (Family.name_to_string family ^ " certain")
          expected_certain
          (Decompose.certain_tuples family d);
        check Testlib.vset
          (Family.name_to_string family ^ " possible")
          expected_possible
          (Decompose.possible_tuples family d))
      Family.all_names
  done

let test_certain_tuples_mgr () =
  (* with Example 3's preferences, no Mgr tuple is certain (r1 and r2 are
     disjoint) but the s3-only combination is excluded: John-PR and
     Mary-IT remain possible, all four tuples remain possible, none
     certain *)
  let rel, fds, prov = Testlib.mgr () in
  let c = Core.Conflict.build fds rel in
  let rule =
    Result.get_ok
      (Core.Pref_rules.source_reliability prov
         ~more_reliable_than:[ ("s1", "s3"); ("s2", "s3") ])
  in
  let p = Core.Pref_rules.apply_exn c rule in
  let d = Decompose.make c p in
  check Alcotest.int "no certain tuples" 0
    (Vset.cardinal (Decompose.certain_tuples Family.C d));
  check Alcotest.int "all four possible" 4
    (Vset.cardinal (Decompose.possible_tuples Family.C d))

(* --- the streaming sharded variants ------------------------------------- *)

let ground_atom c i =
  Query.Ast.Atom
    ( Relational.Schema.name (Conflict.schema c),
      List.map
        (fun v -> Query.Ast.Const v)
        (Relational.Tuple.values (Conflict.tuple c i)) )

let test_streaming_iter_equals_family () =
  let rng = Workload.Prng.create 501 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        let whole = List.sort Vset.compare (Family.repairs family c p) in
        let acc = ref [] in
        Decompose.iter family d (fun r -> acc := r :: !acc);
        let sharded = List.sort Vset.compare !acc in
        check
          (Alcotest.list Testlib.vset)
          (Family.name_to_string family ^ " iter = repairs")
          whole sharded;
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (Family.name_to_string family ^ " member accepts its repairs")
              true
              (Decompose.member family d r))
          whole;
        match Decompose.one family d with
        | None -> Alcotest.fail "Decompose.one returned None"
        | Some r ->
          Alcotest.(check bool)
            (Family.name_to_string family ^ " one is preferred")
            true
            (Family.check family c p r))
      Family.all_names
  done

let test_member_matches_check () =
  let rng = Workload.Prng.create 503 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    for _ = 1 to 5 do
      let cand = Workload.Generator.random_repair rng c in
      List.iter
        (fun family ->
          Alcotest.(check bool)
            (Family.name_to_string family ^ " member = check")
            (Family.check family c p cand)
            (Decompose.member family d cand))
        Family.all_names
    done
  done

(* the ISSUE's headline equivalence: sharded certainty / consistent
   answers agree with the whole-graph path for every family, on ground
   and quantified queries alike *)
let test_sharded_certainty_equivalence () =
  let rng = Workload.Prng.create 505 in
  for _ = 1 to 12 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    let n = Conflict.size c in
    if n >= 2 then begin
      let pick () = Workload.Prng.int rng n in
      let queries =
        [
          Query.Ast.Or (ground_atom c (pick ()), Query.Ast.Not (ground_atom c (pick ())));
          Query.Ast.And (ground_atom c (pick ()), ground_atom c (pick ()));
          Query.Parser.parse_exn "exists x, y. R(x, y, 0)";
          Query.Parser.parse_exn "exists x. R(x, 0, 0)";
          Query.Parser.parse_exn "not (exists x, y. R(x, 0, y) and R(x, 1, y))";
        ]
      in
      List.iter
        (fun family ->
          List.iter
            (fun q ->
              check certainty
                (Family.name_to_string family ^ " certainty")
                (Cqa.certainty family c p q)
                (Decompose.certainty family d q);
              Alcotest.(check bool)
                (Family.name_to_string family ^ " consistent_answer")
                (Cqa.consistent_answer family c p q)
                (Decompose.consistent_answer family d q))
            queries)
        Family.all_names
    end
  done

let test_sharded_open_answers_equivalence () =
  let rng = Workload.Prng.create 507 in
  for _ = 1 to 10 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        List.iter
          (fun qtext ->
            let q = Query.Parser.parse_exn qtext in
            let free_w, rows_w = Cqa.consistent_answers_open family c p q in
            let free_s, rows_s = Decompose.consistent_answers_open family d q in
            check
              Alcotest.(list string)
              (Family.name_to_string family ^ " free vars of " ^ qtext)
              free_w free_s;
            Alcotest.(check bool)
              (Family.name_to_string family ^ " certain rows of " ^ qtext)
              true
              (List.sort compare rows_w = List.sort compare rows_s))
          [ "R(x, y, 0)"; "R(x, 0, y)"; "exists y. R(x, y, 0)" ])
      Family.all_names
  done

let test_counters_and_trace () =
  let rel, fds = Workload.Generator.chain_components ~components:5 ~size:3 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  let d = Decompose.make c p in
  let q = Query.Ast.Or (ground_atom c 0, ground_atom c 1) in
  let tr = Core.Trace.certainty Family.Rep d q in
  check certainty "trace verdict = whole graph" (Cqa.certainty Family.Rep c p q)
    tr.Core.Trace.verdict;
  check Alcotest.int "components" 5 tr.Core.Trace.components;
  check Alcotest.int "max component" 3 tr.Core.Trace.max_component;
  (* the ground query touches only component 0, so at most that one
     component's repairs get materialized during the query itself *)
  Alcotest.(check bool) "untouched components not materialized" true
    (tr.Core.Trace.counters.Decompose.cache_misses <= 1);
  let product =
    List.fold_left (fun a n -> a * n) 1 tr.Core.Trace.per_component_repairs
  in
  check Alcotest.int "per-component product = count"
    (Decompose.count Family.Rep d)
    product;
  Decompose.reset_counters d;
  check Alcotest.int "reset zeroes hits" 0 (Decompose.counters d).Decompose.cache_hits;
  check Alcotest.int "reset zeroes combos" 0
    (Decompose.counters d).Decompose.combos_streamed;
  Decompose.iter Family.Rep d (fun _ -> ());
  check Alcotest.int "iter streams exactly the family"
    (Decompose.count Family.Rep d)
    (Decompose.counters d).Decompose.combos_streamed;
  (* a replay after reset is served entirely from the warm cache *)
  Decompose.reset_counters d;
  ignore (Decompose.certainty Family.Rep d q);
  check Alcotest.int "warm replay misses nothing" 0
    (Decompose.counters d).Decompose.cache_misses

let test_counter_hygiene () =
  (* counters returns a snapshot: later work must not mutate it; reset
     zeroes every field (including the delta telemetry); distinct
     decompositions keep distinct counter records *)
  let rel, fds = Workload.Generator.chain_components ~components:3 ~size:3 in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  let d = Decompose.make c p in
  let before = Decompose.counters d in
  ignore (Decompose.count Family.Rep d);
  check Alcotest.int "snapshot untouched by later work" 0
    before.Decompose.cache_misses;
  Alcotest.(check bool) "the work itself was counted" true
    ((Decompose.counters d).Decompose.cache_misses > 0);
  (* fold one delta in: the returned t shares d's counter record *)
  let tup = Conflict.tuple c (Conflict.size c - 1) in
  let c', delta =
    Result.get_ok (Conflict.apply_delta c ~insert:[] ~delete:[ tup ])
  in
  let p' =
    Result.get_ok
      (Priority.update c' p
         ~dropped:(Vset.of_list delta.Conflict.deleted)
         ~oriented:[])
  in
  let d' = Decompose.apply_delta d c' p' delta in
  check Alcotest.int "delta counted" 1
    (Decompose.counters d').Decompose.deltas_applied;
  check Alcotest.int "shared record: the old handle sees the delta" 1
    (Decompose.counters d).Decompose.deltas_applied;
  (* reset returns every field to zero *)
  Decompose.reset_counters d';
  let z = Decompose.counters d' in
  List.iter
    (fun (label, v) -> check Alcotest.int ("reset zeroes " ^ label) 0 v)
    [
      ("hits", z.Decompose.cache_hits);
      ("misses", z.Decompose.cache_misses);
      ("component repairs", z.Decompose.component_repairs);
      ("combos", z.Decompose.combos_streamed);
      ("examined", z.Decompose.components_examined);
      ("early exits", z.Decompose.early_exits);
      ("deltas", z.Decompose.deltas_applied);
      ("edges added", z.Decompose.edges_added);
      ("edges removed", z.Decompose.edges_removed);
      ("dirtied", z.Decompose.components_dirtied);
      ("evicted", z.Decompose.cache_evicted);
      ("retained", z.Decompose.cache_retained);
    ];
  (* a second decomposition of the same instance counts independently *)
  let e = Decompose.make c p in
  ignore (Decompose.count Family.Rep e);
  check Alcotest.int "d' unaffected by e's work" 0
    (Decompose.counters d').Decompose.cache_misses;
  Alcotest.(check bool) "e counted its own work" true
    ((Decompose.counters e).Decompose.cache_misses > 0)

let test_component_of () =
  let rel, fds = Workload.Generator.ladder 3 in
  let c = Conflict.build fds rel in
  let d = Decompose.make c (Priority.empty c) in
  check Alcotest.int "3 components" 3 (List.length (Decompose.components d));
  let comp0 = Decompose.component_of d 0 in
  Alcotest.(check bool) "vertex in its component" true (Vset.mem 0 comp0);
  check Alcotest.int "ladder components are edges" 2 (Vset.cardinal comp0)

let test_count_within () =
  let rng = Workload.Prng.create 409 in
  for _ = 1 to 15 do
    let c, p = random_case rng in
    let d = Decompose.make c p in
    List.iter
      (fun family ->
        List.iter
          (fun comp ->
            let expected = List.length (Decompose.preferred_within family d comp) in
            (* warm path: the preferred_within call above populated the
               cache, so count_within answers from it *)
            let hits0 = (Decompose.counters d).cache_hits in
            check Alcotest.int "count_within (cached)" expected
              (Decompose.count_within family d comp);
            check Alcotest.bool "cache served the warm count" true
              ((Decompose.counters d).cache_hits > hits0);
            (* cold path: a fresh context has no cache, and counting must
               not create one *)
            let d' = Decompose.make c p in
            let before = (Decompose.counters d').component_repairs in
            check Alcotest.int "count_within (cold)" expected
              (Decompose.count_within family d' comp);
            check Alcotest.int "cold count materialized nothing" before
              ((Decompose.counters d').component_repairs))
          (Decompose.components d))
      Family.all_names
  done

let test_count_saturates () =
  (* 40 chain components with several repairs each: the true product
     overflows 63-bit ints, so [count] must clamp at [max_int] rather
     than wrap to garbage (possibly negative) *)
  let rel, fds = Workload.Generator.chain_components ~components:40 ~size:8 in
  let c = Conflict.build fds rel in
  let d = Decompose.make c (Priority.empty c) in
  let per_component =
    Decompose.count_within Family.Rep d (Decompose.component_of d 0)
  in
  check Alcotest.bool "instance actually overflows" true
    (float_of_int per_component ** 40. > float_of_int max_int);
  check Alcotest.int "saturated" max_int (Decompose.count Family.Rep d)

let suite =
  [
    ("preferred-repair counts match enumeration", `Quick, test_count_matches_enumeration);
    ("stitched component repairs are preferred", `Quick, test_preferred_within_union);
    ("factorized ground certainty = naive", `Quick, test_certainty_matches_naive);
    ("Example 3 through the factorized engine", `Quick, test_certainty_example3);
    ("factorized aggregates = enumeration", `Quick, test_aggregate_matches_enumeration);
    ("scales where enumeration cannot", `Quick, test_scales_beyond_enumeration);
    ("certain/possible tuples = repair intersection/union", `Quick, test_certain_possible_tuples);
    ("certain tuples on the Mgr instance", `Quick, test_certain_tuples_mgr);
    ("component lookup", `Quick, test_component_of);
    ("sharded iter/member/one = whole-graph family", `Quick, test_streaming_iter_equals_family);
    ("sharded member = whole-graph check on random repairs", `Quick, test_member_matches_check);
    ("sharded certainty = whole-graph certainty (all families)", `Quick, test_sharded_certainty_equivalence);
    ("sharded open answers = whole-graph open answers", `Quick, test_sharded_open_answers_equivalence);
    ("observability counters and qtrace evidence", `Quick, test_counters_and_trace);
    ("counter hygiene: snapshot, reset, independence", `Quick, test_counter_hygiene);
    ("count_within = length of preferred_within", `Quick, test_count_within);
    ("count saturates instead of wrapping", `Quick, test_count_saturates);
  ]
