(* The metrics subsystem: histogram bucket/quantile pins, the
   shard-merge property under the domain pool, registry rendering and
   linting, and a serve end-to-end scrape after a scripted request mix
   (including the slow-query log and the configurable request
   timeout). *)

module Metric = Obs.Metric
module Registry = Obs.Registry
module IF = Dbio.Instance_format

let check = Alcotest.check

(* --- bucket boundaries --------------------------------------------------- *)

let test_bucket_index () =
  let lat = Metric.latency_buckets in
  (* Prometheus le semantics: v lands in the first bucket with
     v <= bound *)
  check Alcotest.int "1us on the first bound" 0 (Metric.bucket_index lat 1e-6);
  check Alcotest.int "1.5us spills to the second bucket" 1
    (Metric.bucket_index lat 1.5e-6);
  check Alcotest.int "2us on the second bound" 1 (Metric.bucket_index lat 2e-6);
  check Alcotest.int "0 in the first bucket" 0 (Metric.bucket_index lat 0.0);
  check Alcotest.int "beyond the last bound overflows" (Array.length lat)
    (Metric.bucket_index lat 1e9);
  let size = Metric.size_buckets in
  check Alcotest.int "1 on the first size bound" 0 (Metric.bucket_index size 1.0);
  check Alcotest.int "4 on the second size bound" 1
    (Metric.bucket_index size 4.0);
  check Alcotest.int "5 in the third size bucket" 2
    (Metric.bucket_index size 5.0);
  let qe = Metric.qerror_buckets in
  check Alcotest.int "q-error 0 in the first bucket" 0
    (Metric.bucket_index qe 0.0);
  check Alcotest.int "q-error 0.3 in the second bucket" 1
    (Metric.bucket_index qe 0.3);
  check Alcotest.int "q-error 20 overflows" (Array.length qe)
    (Metric.bucket_index qe 20.0);
  (* the bounds arrays themselves must be strictly increasing, or le
     semantics silently misroute *)
  List.iter
    (fun (name, bounds) ->
      Array.iteri
        (fun i b ->
          if i > 0 then
            check Alcotest.bool
              (Printf.sprintf "%s strictly increasing at %d" name i)
              true
              (b > bounds.(i - 1)))
        bounds)
    [ ("latency", lat); ("size", size); ("qerror", qe) ]

(* --- quantile estimates -------------------------------------------------- *)

let test_quantile_pins () =
  let h = Metric.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] () in
  check Alcotest.bool "empty snapshot has nan quantile" true
    (Float.is_nan (Metric.quantile (Metric.snapshot h) 0.5));
  (* one observation per bucket: ranks are unambiguous *)
  List.iter (Metric.observe h) [ 0.5; 1.5; 3.0; 6.0 ];
  let snap = Metric.snapshot h in
  check Alcotest.int "count" 4 snap.Metric.count;
  check (Alcotest.float 1e-9) "sum" 11.0 snap.Metric.sum;
  check (Alcotest.float 1e-9) "max" 6.0 snap.Metric.max;
  (* rank 2 of 4 falls on the second bucket's upper bound *)
  check (Alcotest.float 1e-9) "median interpolates to the bucket bound" 2.0
    (Metric.quantile snap 0.5);
  (* the top quantile interpolates inside the last occupied bucket but
     never beyond the recorded maximum *)
  let q99 = Metric.quantile snap 0.99 in
  check Alcotest.bool "p99 within (4, max]" true (q99 > 4.0 && q99 <= 6.0);
  check (Alcotest.float 1e-9) "p100 is the recorded max" 6.0
    (Metric.quantile snap 1.0);
  (* a histogram holding a single repeated value must report that value
     for every quantile, not invent mass inside the bucket *)
  let h1 = Metric.histogram ~buckets:[| 1.0; 2.0 |] () in
  for _ = 1 to 10 do
    Metric.observe h1 0.0
  done;
  let s1 = Metric.snapshot h1 in
  check (Alcotest.float 1e-9) "all-zero median clamps to max" 0.0
    (Metric.quantile s1 0.5);
  (* overflow observations interpolate toward the recorded max *)
  let h2 = Metric.histogram ~buckets:[| 1.0 |] () in
  List.iter (Metric.observe h2) [ 5.0; 5.0 ];
  let s2 = Metric.snapshot h2 in
  check Alcotest.int "overflow bucket holds both" 2 s2.Metric.counts.(1);
  check (Alcotest.float 1e-9) "overflow p100 is the max" 5.0
    (Metric.quantile s2 1.0);
  (* NaN observations are dropped, not recorded *)
  Metric.observe h2 Float.nan;
  check Alcotest.int "nan dropped" 2 (Metric.snapshot h2).Metric.count

(* --- counters, gauges, the global switch --------------------------------- *)

let test_counter_gauge_switch () =
  let c = Metric.counter () in
  Metric.incr c;
  Metric.incr ~by:41 c;
  check Alcotest.int "counter accumulates" 42 (Metric.counter_value c);
  (match Metric.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  let g = Metric.gauge () in
  Metric.set_gauge g 7.5;
  Metric.add_gauge g (-2.5);
  check (Alcotest.float 1e-9) "gauge set+add" 5.0 (Metric.gauge_value g);
  let h = Metric.histogram () in
  Metric.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metric.set_enabled true)
    (fun () ->
      Metric.incr c;
      Metric.set_gauge g 100.0;
      Metric.observe h 1.0;
      check Alcotest.int "disabled counter frozen" 42 (Metric.counter_value c);
      check (Alcotest.float 1e-9) "disabled gauge frozen" 5.0
        (Metric.gauge_value g);
      check Alcotest.int "disabled histogram frozen" 0
        (Metric.snapshot h).Metric.count);
  Metric.incr c;
  check Alcotest.int "re-enabled counter records" 43 (Metric.counter_value c)

(* --- registry rendering and linting -------------------------------------- *)

let test_registry_render () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r ~help:"Requests served" "t_requests" in
  Metric.incr ~by:3 c;
  let cl =
    Registry.counter ~registry:r
      ~labels:[ ("cmd", "query"); ("ok", "true") ]
      ~help:"Requests served" "t_requests"
  in
  Metric.incr cl;
  let g = Registry.gauge ~registry:r ~help:"In flight" "t_in_flight" in
  Metric.set_gauge g 2.0;
  Registry.gauge_fn ~registry:r ~help:"Computed" "t_uptime" (fun () -> 1.5);
  let h =
    Registry.histogram ~registry:r ~buckets:[| 0.1; 1.0 |]
      ~help:"Latency" "t_seconds"
  in
  List.iter (Metric.observe h) [ 0.05; 0.5; 5.0 ];
  let text = Registry.render ~registry:r () in
  let has needle =
    let lines = String.split_on_char '\n' text in
    List.exists (fun l -> l = needle) lines
  in
  List.iter
    (fun line -> check Alcotest.bool line true (has line))
    [
      "# TYPE t_requests counter";
      "# HELP t_requests Requests served";
      "t_requests 3";
      "t_requests{cmd=\"query\",ok=\"true\"} 1";
      "# TYPE t_in_flight gauge";
      "t_in_flight 2";
      "t_uptime 1.5";
      "# TYPE t_seconds histogram";
      "t_seconds_bucket{le=\"0.1\"} 1";
      "t_seconds_bucket{le=\"1\"} 2";
      "t_seconds_bucket{le=\"+Inf\"} 3";
      "t_seconds_count 3";
    ];
  (* the renderer's output must pass its own lint *)
  (match Registry.lint text with
  | Ok n -> check Alcotest.bool "lint counts samples" true (n >= 8)
  | Error e -> Alcotest.failf "self-lint failed: %s" e);
  (* label values are escaped, get-or-create returns the same cell *)
  let c2 =
    Registry.counter ~registry:r
      ~labels:[ ("ok", "true"); ("cmd", "query") ]
      ~help:"Requests served" "t_requests"
  in
  Metric.incr c2;
  check Alcotest.int "label order canonicalized" 2 (Metric.counter_value cl);
  (match
     Registry.gauge ~registry:r ~help:"clash" "t_requests"
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash accepted");
  (* the linter rejects what the renderer never emits *)
  let bad_lint text =
    match Registry.lint text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "lint accepted: %s" text
  in
  bad_lint "untyped_sample 1\n";
  bad_lint "# TYPE x counter\nx NaN\n";
  bad_lint "# TYPE x counter\nx 1\nx 2\n";
  bad_lint
    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
     h_sum 1\nh_count 3\n"

(* --- shard merge = single-threaded recording (qcheck) --------------------- *)

(* Recording the same multiset of observations from many domains and
   merging must equal recording them in one: the merge only ever sums
   shard-local state. Exercised across pool widths by the CI matrix
   (PREFDB_JOBS=1/2/4/8). *)
let prop_shard_merge =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sharded recording merges to sequential"
       ~count:30
       ~print:QCheck2.Print.(list int)
       QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 40))
       (fun values ->
         let buckets = [| 1.0; 4.0; 16.0 |] in
         let seq = Metric.histogram ~buckets () in
         List.iter (fun v -> Metric.observe seq (Float.of_int v)) values;
         let par = Metric.histogram ~buckets () in
         let arr = Array.of_list values in
         Core.Pool.parallel_for ~n:(Array.length arr) (fun ~worker:_ i ->
             Metric.observe par (Float.of_int arr.(i)));
         let a = Metric.snapshot seq and b = Metric.snapshot par in
         a.Metric.count = b.Metric.count
         && a.Metric.counts = b.Metric.counts
         && Float.equal a.Metric.sum b.Metric.sum
         && Float.equal a.Metric.max b.Metric.max))

let prop_counter_merge =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sharded counter merges to the exact total"
       ~count:30
       ~print:QCheck2.Print.(list int)
       QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 5))
       (fun incrs ->
         let c = Metric.counter () in
         let arr = Array.of_list incrs in
         Core.Pool.parallel_for ~n:(Array.length arr) (fun ~worker:_ i ->
             Metric.incr ~by:arr.(i) c);
         Metric.counter_value c = List.fold_left ( + ) 0 incrs))

(* --- serve end-to-end: scrape after a scripted mix ------------------------ *)

let mgr_text =
  {|relation Mgr(Name:name, Dept:name, Salary:int)
fd Dept -> Name Salary
tuple 'Mary' 'R&D' 40000  source=s1
tuple 'John' 'R&D' 10000  source=s2
tuple 'Mary' 'IT' 20000  source=s3
prefer source s1 > s3
|}

let temp_dir () =
  let path = Filename.temp_file "prefdb_metrics" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let counter_total ?labels name =
  match Registry.find_counter ?labels name with
  | Some c -> Metric.counter_value c
  | None -> 0

let hist_count ?labels name =
  match Registry.find_histogram ?labels name with
  | Some h -> (Metric.snapshot h).Metric.count
  | None -> 0

let test_serve_metrics_e2e () =
  let dir = temp_dir () in
  Result.get_ok (Dbio.Store.init dir (Result.get_ok (IF.parse mgr_text)));
  let config =
    {
      Shell.Server.request_timeout = 0.5;
      slow_query_ms = Some 0.0;
      slow_log = None;
    }
  in
  let server = Domain.spawn (fun () -> Shell.Server.serve ~config dir) in
  let rec await n =
    if n = 0 then Alcotest.fail "server did not come up"
    else if not (Shell.Server.ping dir) then begin
      Unix.sleepf 0.05;
      await (n - 1)
    end
  in
  await 100;
  (* the registry is process-global and the server runs in-process, so
     totals are asserted as before/after differences *)
  let queries0 = counter_total ~labels:[ ("cmd", "query") ]
      "prefdb_serve_requests_total"
  and appends0 = counter_total "prefdb_wal_appends_total"
  and lat0 =
    hist_count ~labels:[ ("cmd", "query") ] "prefdb_serve_request_seconds"
  and timeouts0 = counter_total "prefdb_serve_connection_timeouts_total" in
  let request cmd =
    match Shell.Server.request dir cmd with
    | Ok out -> out
    | Error e -> Alcotest.failf "%s failed: %s" cmd e
  in
  ignore (request "query Mgr('Mary', d, s)");
  ignore (request "query Mgr('Mary', d, s)");
  ignore (request "plan Mgr(n, d, s)");
  ignore (request "insert 'Zed' 'PR' 7");
  (* the scrape itself: valid Prometheus exposition v0 *)
  let text = request "metrics" in
  (match Registry.lint text with
  | Ok n -> check Alcotest.bool "scrape lints" true (n > 50)
  | Error e -> Alcotest.failf "scrape failed lint: %s" e);
  List.iter
    (fun family ->
      check Alcotest.bool (family ^ " present in the exposition") true
        (let mem sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         mem ("# TYPE " ^ family) text))
    [
      "prefdb_serve_requests_total";
      "prefdb_serve_request_seconds";
      "prefdb_serve_connections_total";
      "prefdb_wal_appends_total";
      "prefdb_wal_append_seconds";
      "prefdb_snapshot_save_seconds";
      "prefdb_store_generation";
      "prefdb_planner_plan_seconds";
      "prefdb_planner_qerror_log2";
      "prefdb_planner_fallback_total";
      "prefdb_pool_tasks_total";
      "prefdb_pool_domains";
      "prefdb_delta_batch_ops";
    ];
  check Alcotest.int "two query requests counted" (queries0 + 2)
    (counter_total ~labels:[ ("cmd", "query") ] "prefdb_serve_requests_total");
  check Alcotest.bool "insert journaled one WAL append" true
    (counter_total "prefdb_wal_appends_total" = appends0 + 1);
  check Alcotest.bool "request latency observed" true
    (hist_count ~labels:[ ("cmd", "query") ] "prefdb_serve_request_seconds"
     >= lat0 + 2);
  check Alcotest.bool "planner histograms fed" true
    (hist_count "prefdb_planner_plan_seconds" > 0);
  (* json framing carries the structured form *)
  (match Shell.Server.request_json dir "metrics" with
  | Ok resp -> (
    match Obs.Json.member "metrics" resp with
    | Some (Obs.Json.Obj _) -> ()
    | _ -> Alcotest.fail "json metrics field missing")
  | Error e -> Alcotest.failf "json metrics failed: %s" e);
  (* the slow-query log captured the over-threshold (0ms) queries,
     with the planner report embedded *)
  let slow = Shell.Server.slow_log_path dir in
  (match Shell.Slowlog.validate_file slow with
  | Ok n -> check Alcotest.bool "slow log has records" true (n >= 3)
  | Error e -> Alcotest.failf "slow log invalid: %s" e);
  let first_record =
    let data = In_channel.with_open_text slow In_channel.input_all in
    match String.split_on_char '\n' data with
    | line :: _ -> Result.get_ok (Obs.Json.of_string line)
    | [] -> Alcotest.fail "slow log empty"
  in
  (match Obs.Json.member "explain" first_record with
  | Some (Obs.Json.Obj _) -> ()
  | _ -> Alcotest.fail "slow record carries no explain report");
  (match Obs.Json.member "wall_ms" first_record with
  | Some _ -> ()
  | None -> Alcotest.fail "slow record carries no wall_ms");
  (* an abrupt disconnect mid-conversation must not kill the server *)
  let rude = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect rude (Unix.ADDR_UNIX (Shell.Server.socket_path dir));
  let line = "query Mgr('Mary', d, s)\n" in
  ignore (Unix.write_substring rude line 0 (String.length line));
  Unix.close rude;
  check Alcotest.bool "server survives a rude client" true
    (Shell.Server.ping dir);
  (* a silent connection is dropped at the configured timeout and
     counted, without blocking later clients *)
  let quiet = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect quiet (Unix.ADDR_UNIX (Shell.Server.socket_path dir));
  Unix.sleepf (config.Shell.Server.request_timeout +. 0.4);
  check Alcotest.bool "server answers after a quiet client" true
    (Shell.Server.ping dir);
  Unix.close quiet;
  check Alcotest.bool "quiet connection counted as timeout" true
    (counter_total "prefdb_serve_connection_timeouts_total" > timeouts0);
  (* enriched status: uptime, generation and request totals *)
  let status = request "status" in
  List.iter
    (fun needle ->
      let mem sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check Alcotest.bool ("status mentions " ^ needle) true (mem needle status))
    [ "up "; "generation"; "requests" ];
  ignore (request "shutdown");
  (match Domain.join server with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve loop failed: %s" e);
  rm_rf dir

(* --- PREFDB_REQUEST_TIMEOUT validation ----------------------------------- *)

let test_env_request_timeout_validation () =
  let original = Sys.getenv_opt "PREFDB_REQUEST_TIMEOUT" in
  let set v = Unix.putenv "PREFDB_REQUEST_TIMEOUT" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value original ~default:""))
    (fun () ->
      set "2.5";
      check Alcotest.bool "positive accepted" true
        (Shell.Server.env_request_timeout_error () = None);
      check Alcotest.bool "positive parsed" true
        (Shell.Server.env_request_timeout () = Some 2.5);
      set "0";
      check Alcotest.bool "zero rejected" true
        (Shell.Server.env_request_timeout_error () <> None);
      set "-1";
      check Alcotest.bool "negative rejected" true
        (Shell.Server.env_request_timeout_error () <> None);
      set "inf";
      check Alcotest.bool "infinite rejected" true
        (Shell.Server.env_request_timeout_error () <> None);
      set "soon";
      check Alcotest.bool "non-numeric rejected" true
        (Shell.Server.env_request_timeout_error () <> None);
      set "";
      check Alcotest.bool "unset/empty accepted" true
        (Shell.Server.env_request_timeout_error () = None))

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_index;
    Alcotest.test_case "histogram quantile pins" `Quick test_quantile_pins;
    Alcotest.test_case "counters, gauges, global switch" `Quick
      test_counter_gauge_switch;
    Alcotest.test_case "registry render + lint" `Quick test_registry_render;
    prop_shard_merge;
    prop_counter_merge;
    Alcotest.test_case "serve scrape end-to-end" `Quick test_serve_metrics_e2e;
    Alcotest.test_case "PREFDB_REQUEST_TIMEOUT validation" `Quick
      test_env_request_timeout_validation;
  ]
