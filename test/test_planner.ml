(* The cost-based query planner: column statistics (scan / quick /
   patch), the widened compilable fragment — disjunction, negated atoms,
   bounded universals, int range scans — checked against the
   active-domain evaluator, cost-based join ordering, merge joins, and
   the EXPLAIN report. *)

open Relational
module Ast = Query.Ast
module Eval = Query.Eval
module Stats = Planner.Stats
module Compile = Planner.Compile
module Phys = Planner.Phys
module Engine = Planner.Engine
module Explain = Planner.Explain

let value = Alcotest.testable Value.pp Value.equal
let v_int n = Value.Int n
let v_name s = Value.Name s

(* R(A:int, B:name, C:int), 12 rows: A cycles 0..3, B cycles b0..b2,
   C = 10·i is distinct per row. *)
let rel_r () =
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TName); ("C", Schema.TInt) ]
  in
  Relation.of_rows schema
    (List.init 12 (fun i ->
         [ v_int (i mod 4); v_name (Printf.sprintf "b%d" (i mod 3)); v_int (10 * i) ]))

let rel_s () =
  let schema = Schema.make "S" [ ("A", Schema.TInt); ("D", Schema.TName) ] in
  Relation.of_rows schema
    [ [ v_int 1; v_name "x" ]; [ v_int 2; v_name "y" ]; [ v_int 2; v_name "x" ] ]

let db () = Database.of_relations [ rel_r (); rel_s () ]

let parse s =
  match Query.Parser.parse s with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* The planner and the evaluator must agree; [planned] additionally
   pins whether the query is inside the compilable fragment. *)
let check_agree ?stats ~planned db text =
  let q = parse text in
  Alcotest.(check bool)
    (text ^ " planned") planned
    (Engine.planned ?stats db q);
  if Ast.is_closed q then
    Alcotest.(check bool)
      (text ^ " holds")
      (Eval.holds db q)
      (Engine.holds ?stats db q)
  else begin
    let efree, erows = Eval.answers db q in
    let pfree, prows = Engine.answers ?stats db q in
    Alcotest.(check (list string)) (text ^ " free") efree pfree;
    Alcotest.(check (list (list value))) (text ^ " rows") erows prows
  end

(* --- statistics ------------------------------------------------------------ *)

let scan_is_exact () =
  let s = Stats.scan (rel_r ()) in
  Alcotest.(check bool) "exact" true (Stats.exact s);
  Alcotest.(check int) "rows" 12 (Stats.rows s);
  Alcotest.(check (option int)) "distinct A" (Some 4) (Stats.distinct s 0);
  Alcotest.(check (option int)) "distinct B" (Some 3) (Stats.distinct s 1);
  Alcotest.(check (option int)) "distinct C" (Some 12) (Stats.distinct s 2);
  Alcotest.(check (option (pair int int)))
    "bounds A"
    (Some (Value.pack_int 0, Value.pack_int 3))
    (Stats.bounds s 0);
  Alcotest.(check (option (pair int int)))
    "bounds C"
    (Some (Value.pack_int 0, Value.pack_int 110))
    (Stats.bounds s 2);
  Alcotest.(check (option (pair int int))) "no bounds on names" None
    (Stats.bounds s 1)

let quick_never_indexes () =
  let r = rel_r () in
  let s = Stats.quick r in
  Alcotest.(check bool) "not exact" false (Stats.exact s);
  Alcotest.(check int) "rows" 12 (Stats.rows s);
  Alcotest.(check (option int)) "unknown distinct" None (Stats.distinct s 0);
  (* a column whose postings exist is picked up for free *)
  Relation.prepare_column r 0;
  let s' = Stats.quick r in
  Alcotest.(check (option int)) "ready column" (Some 4) (Stats.distinct s' 0);
  Alcotest.(check (option int)) "others still unknown" None (Stats.distinct s' 2);
  (match Stats.patch s ~delete:[] ~insert:[] with
  | () -> Alcotest.fail "patching quick stats must be rejected"
  | exception Invalid_argument _ -> ())

(* [Stats.patch] driven through the incremental engine: after inserts,
   deletes and undos the patched statistics must equal a fresh scan. *)
let same_as_rescan msg patched rel =
  let fresh = Stats.scan rel in
  Alcotest.(check int) (msg ^ ": rows") (Stats.rows fresh) (Stats.rows patched);
  for i = 0 to Stats.arity fresh - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "%s: distinct #%d" msg i)
      (Stats.distinct fresh i) (Stats.distinct patched i);
    Alcotest.(check (option (pair int int)))
      (Printf.sprintf "%s: bounds #%d" msg i)
      (Stats.bounds fresh i) (Stats.bounds patched i)
  done

let one_tuple values =
  let schema =
    Schema.make "R"
      [ ("A", Schema.TInt); ("B", Schema.TName); ("C", Schema.TInt) ]
  in
  match Relation.tuples (Relation.of_rows schema [ values ]) with
  | [ t ] -> t
  | _ -> assert false

let patch_tracks_engine () =
  let eng =
    match Core.Delta.create [] (rel_r ()) with
    | Ok e -> e
    | Error e -> Alcotest.failf "engine: %s" e
  in
  let s = Core.Delta.column_stats eng in
  Alcotest.(check int) "one scan" 1 (Stats.rebuilt s);
  let fresh = one_tuple [ v_int 9; v_name "zz"; v_int 999 ] in
  let gone = List.hd (Relation.tuples (Core.Delta.relation eng)) in
  (match Core.Delta.apply eng [ Core.Delta.Delete gone; Core.Delta.Insert fresh ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "apply: %s" e);
  Alcotest.(check int) "patched once" 1 (Stats.patched s);
  same_as_rescan "after batch" s (Core.Delta.relation eng);
  (* the new max (999) must be visible, and the undo must retract it *)
  (match Stats.bounds s 2 with
  | Some (_, hi) -> Alcotest.(check int) "bounds stretched" (Value.pack_int 999) hi
  | None -> Alcotest.fail "bounds lost");
  (match Core.Delta.undo eng with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "undo: %s" e);
  Alcotest.(check int) "patched again by undo" 2 (Stats.patched s);
  Alcotest.(check int) "never rescanned" 1 (Stats.rebuilt s);
  same_as_rescan "after undo" s (Core.Delta.relation eng)

(* --- the widened fragment vs. the evaluator -------------------------------- *)

let planned_shapes_agree () =
  let db = db () in
  List.iter
    (check_agree ~planned:true db)
    [
      (* conjunctive baseline with probes and joins *)
      "exists a, c. R(a, 'b1', c)";
      "exists a, b, c, d. R(a, b, c) and S(a, d)";
      "R(x, y, z) and S(x, w)";
      (* disjunction: closed (boolean or) and open (union) *)
      "(exists a, b. R(a, 'b1', b)) or (exists a. S(a, 'zzz'))";
      "R(x, 'b0', y) or R(x, 'b1', y)";
      "(exists b. R(x, b, y)) or (exists d. S(x, d) and S(y, d))";
      (* negated atoms: anti-join *)
      "exists a, b, c. R(a, b, c) and not S(a, b)";
      "R(x, y, z) and not S(x, 'x')";
      "not (exists a, b, c. R(a, b, c) and a > 100)";
      (* bounded universals: difference against the restriction *)
      "forall a, b, c. R(a, b, c) implies a < 4";
      "forall a, b, c. R(a, b, c) implies a < 3";
      "forall a, d. S(a, d) implies (exists b, c. R(a, b, c))";
      (* int ranges, both open and closed queries *)
      "exists b. R(2, b, x) and x >= 30";
      "R(x, y, z) and z > 20 and z <= 70";
      "exists a, b, c. R(a, b, c) and a > 1 and c < 50";
      "exists a, b, c. R(a, b, c) and c > 30 and c > 50";
      (* name comparisons under the locked semantics *)
      "exists a. S(a, x) and x <= 'x'";
      "exists a, c. R(a, x, c) and x != 'b0'";
      (* cross-domain comparisons are decided, not miscompiled *)
      "exists a, b, c. R(a, b, c) and b = 1";
      (* repeated variable inside one atom *)
      "exists b. R(x, b, x)";
      (* ground comparisons fold away *)
      "(exists a, d. S(a, d)) and 1 < 2";
      "exists a, d. S(a, d) and 2 < 1";
    ]

let unsafe_shapes_fall_back () =
  let db = db () in
  List.iter
    (check_agree ~planned:false db)
    [
      (* a variable bound only by a comparison *)
      "exists x. x < 5";
      "exists a, d. S(a, d) and x < a";
      (* free variable missing from one disjunct *)
      "R(x, y, z) or S(x, w)";
      (* binder not positively bound in every disjunct *)
      "exists a. (S(a, 'x') or 1 < 2)";
      (* negation over a variable no positive atom binds *)
      "exists a, b. S(a, b) and not R(a, b, c)";
    ]

(* --- plan shapes ----------------------------------------------------------- *)

(* JR has 40 rows, JS has 3: the cost-based join order must start from
   JS even though the query names JR first. *)
let join_db () =
  let jr =
    Relation.of_rows
      (Schema.make "JR" [ ("A", Schema.TInt); ("B", Schema.TInt) ])
      (List.init 40 (fun i -> [ v_int (i mod 10); v_int i ]))
  in
  let js =
    Relation.of_rows
      (Schema.make "JS" [ ("A", Schema.TInt); ("C", Schema.TInt) ])
      [ [ v_int 1; v_int 7 ]; [ v_int 4; v_int 8 ]; [ v_int 200; v_int 9 ] ]
  in
  Database.of_relations [ jr; js ]

let compile_ok db text =
  match Compile.compile db (parse text) with
  | Ok plan -> plan
  | Error e -> Alcotest.failf "compile %S: %s" text e

let rec block_of b =
  match b.Phys.bshape with
  | Phys.B_block n -> n
  | Phys.B_not b -> block_of b
  | Phys.B_and (b :: _) | Phys.B_or (b :: _) -> block_of b
  | _ -> Alcotest.fail "no block in boolean plan"

let root_of = function
  | Phys.Rows { root; _ } -> root
  | Phys.Bool b -> block_of b

let rec leftmost_atom node =
  match node.Phys.shape with
  | Phys.Scan { aidx; _ } -> aidx
  | Phys.Hash_join { left; _ } | Phys.Merge_join { left; _ } ->
    leftmost_atom left
  | Phys.Filter (_, n) | Phys.Project (_, n) | Phys.Diff (n, _) ->
    leftmost_atom n
  | Phys.Union (n :: _) -> leftmost_atom n
  | Phys.Union [] | Phys.Empty -> -1

let render plan = Format.asprintf "%a" Phys.pp_plan plan

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let cost_based_join_order () =
  let db = join_db () in
  (* both sides are unrestricted scans joined on one column: a merge
     join, started from the small side despite its second position *)
  let plan = compile_ok db "exists a, b, c. JR(a, b) and JS(a, c)" in
  let root = root_of plan in
  Alcotest.(check int) "small side first" 1 (leftmost_atom root);
  Alcotest.(check bool) "merge join" true (contains (render plan) "merge join");
  (* a probe on JR makes that side cheap and non-plain: hash join,
     started from the probed side *)
  let plan2 = compile_ok db "exists b, c. JR(4, b) and JS(4, c)" in
  Alcotest.(check bool)
    "probed plan uses index scans" true
    (contains (render plan2) "index scan");
  (* est vs. actual: executing the open join records actuals *)
  let plan3 = compile_ok db "JR(a, b) and JS(a, c)" in
  (match plan3 with
  | Phys.Rows { root; _ } ->
    let rel = Phys.exec root in
    Alcotest.(check int) "actual recorded" (Relation.cardinality rel) root.Phys.actual
  | Phys.Bool _ -> Alcotest.fail "open query must compile to rows");
  Alcotest.(check bool)
    "explain renders actuals" true
    (contains (render plan3) "actual")

let explain_reports () =
  let db = db () in
  let planned =
    Explain.run db (parse "(exists a, b. R(a, 'b1', b)) or (exists a. S(a, 'zzz'))")
  in
  let text = Format.asprintf "%a" Explain.pp planned in
  Alcotest.(check bool) "plan header" true (contains text "plan:");
  Alcotest.(check bool) "verdict" true (contains text "result: holds");
  (match Explain.to_json planned with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "json mode" true (List.mem_assoc "mode" fields)
  | _ -> Alcotest.fail "explain json must be an object");
  (* over the active domain 0,1,2,... are all < 5, so the fallback's
     evaluator verdict is "holds" *)
  let fallback = Explain.run db (parse "exists x. x < 5") in
  let text = Format.asprintf "%a" Explain.pp fallback in
  Alcotest.(check bool) "fallback reason" true (contains text "fallback");
  Alcotest.(check bool) "fallback still answers" true
    (contains text "result: holds")

(* the engine consumes externally supplied statistics without changing
   answers (the cost model may reorder, the semantics must not move) *)
let external_stats_agree () =
  let r = rel_r () in
  let s = Stats.scan r in
  let stats name = if String.equal name "R" then Some s else None in
  let db = db () in
  List.iter
    (fun (planned, text) -> check_agree ~stats ~planned db text)
    [
      (true, "exists b. R(2, b, x) and x >= 30");
      (true, "R(x, 'b0', y) or R(x, 'b1', y)");
      (true, "forall a, b, c. R(a, b, c) implies a < 3");
    ]

let suite =
  [
    Alcotest.test_case "scan statistics are exact" `Quick scan_is_exact;
    Alcotest.test_case "quick statistics never build indexes" `Quick
      quick_never_indexes;
    Alcotest.test_case "patched statistics track the engine" `Quick
      patch_tracks_engine;
    Alcotest.test_case "widened fragment agrees with the evaluator" `Quick
      planned_shapes_agree;
    Alcotest.test_case "unsafe shapes fall back to the evaluator" `Quick
      unsafe_shapes_fall_back;
    Alcotest.test_case "join order is cost-based, not syntactic" `Quick
      cost_based_join_order;
    Alcotest.test_case "explain reports plans and fallbacks" `Quick
      explain_reports;
    Alcotest.test_case "external statistics leave answers unchanged" `Quick
      external_stats_agree;
  ]
