(* Boxed-value reference kernels for the INTERN before/after benchmark.

   These preserve the seed's tuple-identity layer — values as a boxed
   Name/Int variant, tuples as boxed value arrays, tuple identity
   resolved through comparison-ordered maps — exactly the representation
   [Conflict.build] and the ground-CQA route used before values were
   interned and relations became id-addressed fact stores:

   - conflict-graph construction grouped tuples per FD by a *boxed*
     lhs-projection key (a fresh tuple allocated per member, hashed
     structurally) and resolved every violating pair back to vertex ids
     through a [Map.Make]-style tuple map;
   - the ground route resolved each query fact to its vertex id through
     the same comparison-based map, paying a boxed value comparison per
     tree level.

   Measuring these in the same run, on the same instances, and against
   the same downstream kernels (the bitset graph constructor, the live
   [Cqa.demand_satisfiable]) makes BENCH_intern.json an apples-to-apples
   before/after of the identity layer alone. *)

open Graphs

(* the seed value representation: a boxed variant compared structurally *)
type bvalue = Bname of string | Bint of int

let bvalue_compare a b =
  match (a, b) with
  | Bname x, Bname y -> String.compare x y
  | Bint x, Bint y -> Int.compare x y
  | Bname _, Bint _ -> -1
  | Bint _, Bname _ -> 1

(* the seed tuple representation: an array of boxed values, compared
   lexicographically *)
type btuple = bvalue array

let btuple_compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  let rec go i =
    if i >= n1 || i >= n2 then Int.compare n1 n2
    else
      let c = bvalue_compare t1.(i) t2.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* tuple -> vertex id: the seed Conflict index, a persistent map ordered
   by boxed-tuple comparison *)
module Btmap = Map.Make (struct
  type t = btuple

  let compare = btuple_compare
end)

(* lhs-projection -> member vertices: the seed's per-FD group index *)
module Bkmap = Map.Make (struct
  type t = bvalue list

  let compare = List.compare bvalue_compare
end)

let box_value = function
  | Relational.Value.Name s -> Bname s
  | Relational.Value.Int n -> Bint n

let box_tuple t = Array.of_list (List.map box_value (Relational.Tuple.values t))

(* canonical fact enumeration of [rel] as boxed tuples, in the same
   vertex order the live side uses *)
let box_relation rel =
  Array.map box_tuple (Relational.Relation.tuple_array rel)

type group_index = {
  lpos : int list;
  members : Vset.t Bkmap.t;
}

type t = {
  graph : Undirected.t;
  index : int Btmap.t;
  groups : group_index list;
}

let agree_on t1 t2 pos =
  List.for_all (fun i -> bvalue_compare t1.(i) t2.(i) = 0) pos

(* The seed conflict-graph build over boxed tuples. [fd_positions] is
   the (lhs, rhs) schema positions of each FD — position lookup is
   identical on both sides and stays outside the comparison. *)
let build ~fd_positions tuples =
  let n = Array.length tuples in
  let index = ref Btmap.empty in
  Array.iteri (fun i t -> index := Btmap.add t i !index) tuples;
  let index = !index in
  let edges =
    List.concat_map
      (fun (lpos, rpos) ->
        (* group by a freshly allocated boxed projection key, compare
           pairwise within groups, then resolve each violating pair
           through the tuple map — the seed Fd.violations + edge_of_pair
           pipeline *)
        let groups = Hashtbl.create n in
        Array.iter
          (fun t ->
            let k = Array.of_list (List.map (fun i -> t.(i)) lpos) in
            let existing =
              Option.value (Hashtbl.find_opt groups k) ~default:[]
            in
            Hashtbl.replace groups k (t :: existing))
          tuples;
        let pairs = ref [] in
        Hashtbl.iter
          (fun _ group ->
            let g = Array.of_list group in
            let m = Array.length g in
            for i = 0 to m - 2 do
              for j = i + 1 to m - 1 do
                if not (agree_on g.(i) g.(j) rpos) then
                  pairs :=
                    (Btmap.find g.(i) index, Btmap.find g.(j) index) :: !pairs
              done
            done)
          groups;
        !pairs)
      fd_positions
  in
  (* the per-FD group re-projection the seed kept for delta probes *)
  let groups =
    List.map
      (fun (lpos, _) ->
        let members = ref Bkmap.empty in
        Array.iteri
          (fun i t ->
            let key = List.map (fun p -> t.(p)) lpos in
            members :=
              Bkmap.update key
                (fun s -> Some (Vset.add i (Option.value s ~default:Vset.empty)))
                !members)
          tuples;
        { lpos; members = !members })
      fd_positions
  in
  { graph = Undirected.create n edges; index; groups }

(* Resolve one ground clause through the boxed tuple map, mirroring
   Ground.of_clause: a positive fact missing from the instance makes the
   clause unsatisfiable, a missing negative fact is vacuous. Returns the
   Vset demand for the shared downstream kernel, or None. *)
let resolve_clause index ~required ~forbidden =
  let rec pos acc = function
    | [] -> Some acc
    | t :: rest -> (
      match Btmap.find_opt t index with
      | None -> None
      | Some v -> pos (v :: acc) rest)
  in
  match pos [] required with
  | None -> None
  | Some req ->
    let forb =
      List.filter_map (fun t -> Btmap.find_opt t index) forbidden
    in
    Some
      { Core.Ground.required = Vset.of_list req; forbidden = Vset.of_list forb }
