(* Timing and reporting utilities for the experiment harness.

   The paper has no empirical section; what we regenerate is the
   complexity landscape of Figure 5 plus the combinatorial facts behind
   Figures 1-4, so the harness reports (a) series of measured runtimes
   against instance size and (b) empirical growth diagnostics: a log-log
   slope for polynomial algorithms and a size-doubling ratio for
   exponential ones. *)

let now () = Unix.gettimeofday ()

(* Smoke mode (--quick): tiny calibration budget and fewer samples, so a
   full harness pass fits inside `dune runtest`. *)
let quick = ref false

(* Median seconds per run; each sample runs [f] enough times to dominate
   timer noise. *)
let measure ?min_time ?samples f =
  let min_time =
    match min_time with
    | Some t -> t
    | None -> if !quick then 0.0005 else 0.02
  in
  let samples =
    match samples with Some s -> s | None -> if !quick then 3 else 5
  in
  ignore (f ());
  (* warm-up *)
  let timed_batch () =
    let reps = ref 1 in
    let rec calibrate () =
      let t0 = now () in
      for _ = 1 to !reps do
        ignore (f ())
      done;
      let dt = now () -. t0 in
      if dt < min_time && !reps < 1_000_000 then begin
        reps := !reps * 4;
        calibrate ()
      end
      else dt /. float_of_int !reps
    in
    calibrate ()
  in
  let xs = List.init samples (fun _ -> timed_batch ()) in
  let sorted = List.sort compare xs in
  List.nth sorted (samples / 2)

(* Cold-start median: one run per sample, each from a compacted heap.
   [measure] reports steady-state throughput — right for operations
   that repeat in a loop — but a bulk load happens once, at process
   start, on a quiet heap; measured back-to-back each run also pays
   the collection of its predecessor's hundred-megabyte result, which
   no real load ever does. Compaction runs between the samples,
   outside the timed window. The warm-up run plus one discarded
   compacted run drain allocation debt predating the first sample. *)
let measure_cold ?samples f =
  let samples =
    match samples with Some s -> s | None -> if !quick then 3 else 5
  in
  ignore (f ());
  Gc.compact ();
  ignore (f ());
  let sample () =
    Gc.compact ();
    let t0 = now () in
    ignore (f ());
    now () -. t0
  in
  let xs = List.init samples (fun _ -> sample ()) in
  let sorted = List.sort compare xs in
  List.nth sorted (samples / 2)

(* Least-squares slope of log t against log n: the empirical polynomial
   degree. *)
let loglog_slope points =
  let logs =
    List.filter_map
      (fun (n, t) ->
        if n > 0 && t > 0. then Some (log (float_of_int n), log t) else None)
      points
  in
  let k = float_of_int (List.length logs) in
  if List.length logs < 2 then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
    ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx))
  end

(* Geometric-mean ratio t(n_{i+1}) / t(n_i): ~2 per unit step signals 2^n
   growth when sizes step by 1. *)
let step_ratio points =
  let rec ratios = function
    | (_, t1) :: ((_, t2) :: _ as rest) when t1 > 0. ->
      (t2 /. t1) :: ratios rest
    | _ :: rest -> ratios rest
    | [] -> []
  in
  match ratios points with
  | [] -> nan
  | rs ->
    exp (List.fold_left (fun a r -> a +. log r) 0. rs /. float_of_int (List.length rs))

let pp_time ppf seconds =
  if seconds < 1e-6 then Format.fprintf ppf "%8.1f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%8.2f us" (seconds *. 1e6)
  else if seconds < 1. then Format.fprintf ppf "%8.2f ms" (seconds *. 1e3)
  else Format.fprintf ppf "%8.3f s " seconds

let section id title =
  Format.printf "@.============================================================@.";
  Format.printf "[%s] %s@." id title;
  Format.printf "============================================================@."

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* A simple aligned table printer. *)
let table ~header rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Format.printf "  ";
    List.iter2 (fun w cell -> Format.printf "%-*s  " w cell) widths row;
    Format.printf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let time_cell t = Format.asprintf "%a" pp_time t

(* --- telemetry integration ----------------------------------------------- *)

(* JSON string literal (with quotes). Not OCaml's [%S]: that escapes
   non-ASCII bytes as decimal [\226]-style sequences, which JSON
   rejects — an em-dash in a note would corrupt the whole file. JSON
   wants UTF-8 passed through raw, with only the quote, backslash and
   control characters escaped. *)
let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Per-span wall-clock breakdown of ONE run of [f] under a private
   in-memory sink: (span name, inclusive seconds, outermost occurrence
   count), decreasing time. The previous sink (if any) is restored
   afterwards, also when [f] raises. Runs outside the timing loops —
   the breakdown annotates a bench row, it never contaminates the
   measured medians. *)
let phase_breakdown f =
  let buf = Obs.Sink.Memory.create () in
  let prev = Obs.Span.sink () in
  Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
  (match f () with
  | _ -> Obs.Span.set_sink prev
  | exception e ->
    Obs.Span.set_sink prev;
    raise e);
  Obs.Profile.flat (Obs.Profile.tree (Obs.Sink.Memory.events buf))

let phases_field = function
  | [] -> ""
  | ps ->
    let one (name, seconds, count) =
      Printf.sprintf "{\"name\": %s, \"seconds\": %.9f, \"count\": %d}"
        (json_str name) seconds count
    in
    Printf.sprintf ", \"phases\": [%s]" (String.concat ", " (List.map one ps))

(* Medians recorded in the committed copy of [path] before this run
   overwrites it, keyed by row name — so every row carries its own
   before/after pair and a regression is visible in the diff of a single
   file. Missing/unparseable files (first run, format changes) degrade
   to no [previous_median_s] fields, not an error. *)
let previous_medians path field =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> []
  | text -> (
    match Obs.Json.of_string text with
    | Error _ -> []
    | Ok json -> (
      match Obs.Json.member "benchmarks" json with
      | Some (Obs.Json.List rows) ->
        List.filter_map
          (fun row ->
            match
              ( Obs.Json.member "name" row,
                Option.bind (Obs.Json.member field row) Obs.Json.to_float_opt
              )
            with
            | Some (Obs.Json.Str n), Some v -> Some (n, v)
            | _ -> None)
          rows
      | _ -> []))

let previous_field prev name =
  match List.assoc_opt name prev with
  | Some v -> Printf.sprintf ", \"previous_median_s\": %.9f" v
  | None -> ""

(* --- machine-readable output -------------------------------------------- *)

(* Host/runtime provenance appended to EVERY benchmark row: a scaling or
   speedup claim is meaningless without the core count and domain count
   it was measured under, and a single-core CI box must be legible as
   such in the committed JSON. [domains] defaults to the pool width
   active when the row is written; the PAR section passes each row's
   width explicitly since it sweeps the pool size mid-run. *)
let env_fields ?domains () =
  let domains =
    match domains with Some d -> d | None -> Core.Pool.jobs ()
  in
  (* estimate quality rides along with every row: the planner's q-error
     histogram summarizes |log2(est/actual)| over every plan operator
     executed so far in this process, so BENCH_plan.json (and any other
     section that ran planned queries) tracks misestimates over time,
     not just wall time. Empty until a planned query ran. *)
  let qerror =
    match Planner.Metrics.qerror_summary () with
    | None -> ""
    | Some (median, max, count) ->
      Printf.sprintf
        ", \"qerror_median_log2\": %.3f, \"qerror_max_log2\": %.3f, \
         \"qerror_operators\": %d"
        median max count
  in
  Printf.sprintf ", \"host_cores\": %d, \"domains\": %d, \"ocaml\": %s%s"
    (Domain.recommended_domain_count ())
    domains
    (json_str Sys.ocaml_version)
    qerror

(* Before/after records accumulated by the VSET section and dumped as
   BENCH_vset.json, so the perf trajectory across PRs is diffable. *)
let comparisons : (string * float * float) list ref = ref []

let record_comparison ~name ~baseline ~bitset =
  comparisons := (name, baseline, bitset) :: !comparisons

let write_comparisons_json path =
  let prev = previous_medians path "bitset_median_s" in
  let oc = open_out path in
  let entry (name, baseline, bitset) =
    Printf.sprintf
      "    {\"name\": %s, \"baseline_median_s\": %.9f, \
       \"bitset_median_s\": %.9f, \"speedup\": %.2f%s%s}"
      (json_str name) baseline bitset (baseline /. bitset)
      (previous_field prev name) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"representation\": \"bitset-vset\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !comparisons)));
  close_out oc

(* Boxed-seed vs interned-substrate records for BENCH_intern.json: each
   entry times the same kernel over the seed identity layer (boxed
   values, comparison-ordered tuple maps; [Baseline_intern]) and over
   the interned fact-id substrate, on the same instance. *)
let intern_entries : (string * float * float * string) list ref = ref []

let record_intern ~name ~baseline ~interned ~note =
  intern_entries := (name, baseline, interned, note) :: !intern_entries

let write_intern_json path =
  let prev = previous_medians path "interned_median_s" in
  let oc = open_out path in
  let entry (name, baseline, interned, note) =
    Printf.sprintf
      "    {\"name\": %s, \"baseline_median_s\": %.9f, \
       \"interned_median_s\": %.9f, \"speedup\": %.2f, \"note\": %s%s%s}"
      (json_str name) baseline interned (baseline /. interned) (json_str note)
      (previous_field prev name) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"interned-fact-id-substrate\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !intern_entries)));
  close_out oc

(* Whole-graph vs component-sharded records for BENCH_decompose.json.
   [whole = None] marks a frontier workload the whole-graph path cannot
   finish in reasonable time: the sharded number stands alone and the
   entry carries a note instead of a speedup. [phases] is the per-span
   time breakdown of one sharded run (from {!phase_breakdown}). *)
let decompose_entries :
  (string * float option * float * string * (string * float * int) list)
  list
  ref =
  ref []

let record_decompose ~name ?whole ~sharded ?(note = "") ?(phases = []) () =
  decompose_entries := (name, whole, sharded, note, phases) :: !decompose_entries

(* Incremental-maintenance vs full-rebuild records for BENCH_delta.json:
   each entry times the same update-then-answer cycle through the
   [Core.Delta] engine and through a from-scratch rebuild. *)
let delta_entries :
  (string * float * float * string * (string * float * int) list) list ref =
  ref []

let record_delta ~name ~full ~incremental ~note ?(phases = []) () =
  delta_entries := (name, full, incremental, note, phases) :: !delta_entries

let write_delta_json path =
  let prev = previous_medians path "incremental_median_s" in
  let oc = open_out path in
  let entry (name, full, incremental, note, phases) =
    Printf.sprintf
      "    {\"name\": %s, \"full_rebuild_median_s\": %.9f, \
       \"incremental_median_s\": %.9f, \"speedup\": %.2f, \"note\": %s%s%s%s}"
      (json_str name) full incremental (full /. incremental) (json_str note)
      (previous_field prev name) (phases_field phases) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"incremental-delta-maintenance\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !delta_entries)));
  close_out oc

let write_decompose_json path =
  let prev = previous_medians path "sharded_median_s" in
  let oc = open_out path in
  let entry (name, whole, sharded, note, phases) =
    let whole_field, speedup_field =
      match whole with
      | Some w ->
        ( Printf.sprintf "%.9f" w,
          Printf.sprintf "%.2f" (w /. sharded) )
      | None -> ("null", "null")
    in
    Printf.sprintf
      "    {\"name\": %s, \"whole_graph_median_s\": %s, \
       \"sharded_median_s\": %.9f, \"speedup\": %s, \"note\": %s%s%s%s}"
      (json_str name) whole_field sharded speedup_field (json_str note)
      (previous_field prev name) (phases_field phases) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"component-sharded-cqa\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !decompose_entries)));
  close_out oc

(* Span-engine overhead for BENCH_obs.json: the same workload timed with
   telemetry disabled (the shipping default), with the null sink (engine
   cost alone) and with an in-memory sink (full recording cost). The
   acceptance bar lives on the DISABLED column: it must track the
   pre-instrumentation medians of the other BENCH files. *)
let obs_entries : (string * float * float * float * string) list ref = ref []

let record_obs ~name ~disabled ~null_sink ~memory_sink ~note =
  obs_entries := (name, disabled, null_sink, memory_sink, note) :: !obs_entries

(* Metrics-registry overhead rows, also in BENCH_obs.json: the same
   serve-path workload with Obs.Metric recording on (the shipping
   default) and off. The acceptance bar is the [metrics_overhead]
   ratio: on/off must stay <= 1.03. *)
let metrics_entries : (string * float * float * string) list ref = ref []

let record_metrics ~name ~off ~on ~note =
  metrics_entries := (name, off, on, note) :: !metrics_entries

let write_obs_json path =
  let prev = previous_medians path "disabled_median_s" in
  let prev_m = previous_medians path "metrics_on_median_s" in
  let oc = open_out path in
  let entry (name, disabled, null_sink, memory_sink, note) =
    Printf.sprintf
      "    {\"name\": %s, \"disabled_median_s\": %.9f, \
       \"null_sink_median_s\": %.9f, \"memory_sink_median_s\": %.9f, \
       \"null_overhead\": %.3f, \"memory_overhead\": %.3f, \"note\": %s%s%s}"
      (json_str name) disabled null_sink memory_sink
      (null_sink /. disabled)
      (memory_sink /. disabled)
      (json_str note) (previous_field prev name) (env_fields ())
  in
  let metrics_entry (name, off, on, note) =
    Printf.sprintf
      "    {\"name\": %s, \"metrics_off_median_s\": %.9f, \
       \"metrics_on_median_s\": %.9f, \"metrics_overhead\": %.3f, \
       \"note\": %s%s%s}"
      (json_str name) off on (on /. off) (json_str note)
      (previous_field prev_m name) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"telemetry-overhead\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map entry (List.rev !obs_entries)
       @ List.map metrics_entry (List.rev !metrics_entries)));
  close_out oc

(* Pool-width scaling records for BENCH_parallel.json: the same kernel
   measured at 1, 2, 4, ... domains. [sequential] is the 1-domain median
   of the same sweep, so every row carries its own speedup; on a
   single-core host ([host_cores] = 1 in the row) the curve is expected
   flat-to-negative and the JSON says so honestly. *)
let parallel_entries : (string * int * float * float * string) list ref =
  ref []

let record_parallel ~name ~domains ~median ~sequential ~note =
  parallel_entries :=
    (name, domains, median, sequential, note) :: !parallel_entries

let write_parallel_json path =
  let prev = previous_medians path "median_s" in
  let oc = open_out path in
  let entry (name, domains, median, sequential, note) =
    Printf.sprintf
      "    {\"name\": %s, \"median_s\": %.9f, \
       \"sequential_median_s\": %.9f, \"speedup\": %.2f, \"note\": %s%s%s}"
      (json_str name) median sequential (sequential /. median) (json_str note)
      (previous_field prev name)
      (env_fields ~domains ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"domain-parallel-cqa\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !parallel_entries)));
  close_out oc

(* STORE rows: the durable-store section. Each row is one timed
   operation; a row with a [baseline] (the text-parse median it is
   measured against) also carries its speedup, and a row with [bytes]
   records the on-disk size of the artifact involved — a load-speed
   claim without the file size it was amortized over is not
   reproducible. Dumped as BENCH_store.json. *)
let store_entries :
    (string * float * float option * int option * string) list ref =
  ref []

let record_store ~name ~median ?baseline ?bytes ~note () =
  store_entries := (name, median, baseline, bytes, note) :: !store_entries

let write_store_json path =
  let prev = previous_medians path "median_s" in
  let oc = open_out path in
  let entry (name, median, baseline, bytes, note) =
    let vs_text =
      match baseline with
      | Some b ->
        Printf.sprintf ", \"baseline_s\": %.9f, \"speedup\": %.2f" b
          (b /. median)
      | None -> ""
    in
    let size_field =
      match bytes with
      | Some n -> Printf.sprintf ", \"bytes\": %d" n
      | None -> ""
    in
    Printf.sprintf
      "    {\"name\": %s, \"median_s\": %.9f%s%s, \"note\": %s%s%s}"
      (json_str name) median vs_text size_field (json_str note)
      (previous_field prev name) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"binary-store\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !store_entries)));
  close_out oc

(* PLAN rows: the cost-based planner section. Each row times one query
   three ways — the compiled physical plan, the active-domain evaluator,
   and the prior (syntactic-order, conjunctive-only) planner route —
   whichever of the latter two are feasible on the workload. [phases] is
   the planner.plan/planner.execute span breakdown of one spanned run.
   Dumped as BENCH_plan.json. *)
let plan_entries :
    (string * float * float option * float option * string
    * (string * float * int) list)
    list
    ref =
  ref []

let record_plan ~name ~planned ?eval ?prior ~note ?(phases = []) () =
  plan_entries := (name, planned, eval, prior, note, phases) :: !plan_entries

let write_plan_json path =
  let prev = previous_medians path "planned_median_s" in
  let oc = open_out path in
  let entry (name, planned, eval, prior, note, phases) =
    let opt field = function
      | Some v ->
        Printf.sprintf ", \"%s_median_s\": %.9f, \"speedup_vs_%s\": %.2f"
          field v field (v /. planned)
      | None -> ""
    in
    Printf.sprintf
      "    {\"name\": %s, \"planned_median_s\": %.9f%s%s, \"note\": %s%s%s%s}"
      (json_str name) planned (opt "eval" eval) (opt "prior_plan" prior)
      (json_str note) (previous_field prev name) (phases_field phases)
      (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"cost-based-planner\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !plan_entries)));
  close_out oc

(* HYPER rows: the denial-constraint hypergraph section. Each row is one
   timed operation on the hyperedge substrate; a row with a [baseline]
   (the naive O(n^k) scan or the binary Conflict-path median it is
   measured against) also carries its speedup, and a row with [edges]
   records the hyperedge count of the instance involved — the workload
   scale a timing claim rests on. Dumped as BENCH_hyper.json. *)
let hyper_entries :
    (string * float * float option * int option * string) list ref =
  ref []

let record_hyper ~name ~median ?baseline ?edges ~note () =
  hyper_entries := (name, median, baseline, edges, note) :: !hyper_entries

let write_hyper_json path =
  let prev = previous_medians path "median_s" in
  let oc = open_out path in
  let entry (name, median, baseline, edges, note) =
    let vs_base =
      match baseline with
      | Some b ->
        Printf.sprintf ", \"baseline_s\": %.9f, \"speedup\": %.2f" b
          (b /. median)
      | None -> ""
    in
    let edge_field =
      match edges with
      | Some n -> Printf.sprintf ", \"edges\": %d" n
      | None -> ""
    in
    Printf.sprintf
      "    {\"name\": %s, \"median_s\": %.9f%s%s, \"note\": %s%s%s}"
      (json_str name) median vs_base edge_field (json_str note)
      (previous_field prev name) (env_fields ())
  in
  Printf.fprintf oc "{\n  \"experiment\": \"hypergraph-cqa\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !hyper_entries)));
  close_out oc
