(* The experiment harness: regenerates every figure of the paper.

   Run with:  dune exec bench/main.exe

   FIG1   - Example 4 / Figure 1: 2^n repairs on the ladder instance.
   FIG2-4 - Figures 2-4: the worked examples and what each family selects
            (including the corrected mutual-conflict instance; see
            EXPERIMENTS.md).
   FIG5   - the complexity summary table, measured: repair checking and
            consistent query answering per family, with empirical growth
            diagnostics (log-log slope for the PTIME entries, doubling
            ratio for the enumerative ones).
   EXT    - the §6 extensions: aggregation ranges and conflict
            hypergraphs.

   A Bechamel microbenchmark table (one Test.make per experiment) closes
   the run. *)

open Graphs
module Conflict = Core.Conflict
module Priority = Core.Priority
module Repair = Core.Repair
module Family = Core.Family
module Cqa = Core.Cqa
module Winnow = Core.Winnow
module Generator = Workload.Generator
module Prng = Workload.Prng

let parse = Query.Parser.parse_exn

(* Size ladders shrink under --quick so `dune runtest` can afford a full
   end-to-end pass of the harness. *)
let sz full quick = if !Harness.quick then quick else full

(* --- workload builders ---------------------------------------------------- *)

let cluster_case n =
  (* one key dependency, clusters of width 4 *)
  let rel, fds = Generator.key_clusters ~groups:(max 1 (n / 4)) ~width:4 in
  let c = Conflict.build fds rel in
  let rng = Prng.create (n + 17) in
  let p = Generator.random_priority rng ~density:1.0 c in
  (c, p)

let ladder_case rungs =
  let rel, fds = Generator.ladder rungs in
  let c = Conflict.build fds rel in
  (c, Priority.empty c)

(* a ground query over the first cluster of a cluster instance *)
let cluster_ground_query c =
  let t0 = Conflict.tuple c 0 and t1 = Conflict.tuple c 1 in
  let atom t =
    Query.Ast.Atom
      ( Relational.Schema.name (Conflict.schema c),
        List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
  in
  Query.Ast.Or (atom t0, Query.Ast.Not (atom t1))

let ladder_ground_query c =
  let t0 = Conflict.tuple c 0 and t1 = Conflict.tuple c 1 in
  let atom t =
    Query.Ast.Atom
      ( Relational.Schema.name (Conflict.schema c),
        List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
  in
  Query.Ast.Or (atom t0, atom t1)

(* --- FIG1 ------------------------------------------------------------------ *)

let fig1 () =
  Harness.section "FIG1" "Example 4 / Figure 1: the ladder r_n has 2^n repairs";
  let sizes = sz [ 2; 4; 6; 8; 10; 12; 14; 16 ] [ 2; 4; 6; 8 ] in
  let rows =
    List.map
      (fun n ->
        let c, _ = ladder_case n in
        let count = ref 0 in
        let t = Harness.measure (fun () -> count := Repair.count c) in
        [
          string_of_int n;
          string_of_int !count;
          string_of_int (1 lsl n);
          Harness.time_cell t;
        ])
      sizes
  in
  Harness.table
    ~header:[ "n (conflicts)"; "repairs"; "2^n"; "enumeration time" ]
    rows;
  let points =
    List.map
      (fun n ->
        let c, _ = ladder_case n in
        (n, Harness.measure (fun () -> Repair.count c)))
      (sz [ 10; 12; 14; 16 ] [ 6; 8 ])
  in
  Harness.note "growth ratio per +2 conflicts: %.2f (4.0 = clean 2^n)"
    (Harness.step_ratio points)

(* --- FIG2-4 ----------------------------------------------------------------- *)

let show_selection c p =
  List.iter
    (fun f ->
      let repairs = Family.repairs f c p in
      Format.printf "    %-6s" (Family.name_to_string f);
      List.iter (fun s -> Format.printf " %s" (Vset.to_string s)) repairs;
      Format.printf "@.")
    Family.all_names

let fig234 () =
  Harness.section "FIG2-4" "Figures 2-4: family selections on the worked examples";
  Harness.note "Example 7 (Figure 2): one key, priority ta > tb, ta > tc";
  let c7, p7 = Workload.Paper.example7 () in
  show_selection c7 p7;
  Harness.note "Example 8 (Figure 3): duplicates; total priority tc > ta, tc > tb";
  let c8, p8 = Workload.Paper.example8 () in
  show_selection c8 p8;
  Harness.note "Example 9 (Figure 4) as printed: total chain priority";
  let c9, p9 = Workload.Paper.example9 () in
  show_selection c9 p9;
  Harness.note
    "(the paper lists 2 repairs and claims S-Rep = both; the instance has 4";
  Harness.note
    " repairs and S-Rep is a singleton - see EXPERIMENTS.md, erratum 2)";
  Harness.note "mutual-conflict cycle C4 (corrected §3.3 scenario):";
  let rel, fds = Generator.mutual_cycle 2 in
  let cc = Conflict.build fds rel in
  let pc = Generator.mutual_cycle_priority cc in
  show_selection cc pc;
  Harness.note "one non-key FD, K_{2,2} duplicates (erratum 3): S keeps 2, G keeps 1";
  let ck, pk = Workload.Paper.s_vs_g_counterexample () in
  show_selection ck pk

(* --- FIG5: repair checking --------------------------------------------------- *)

let fig5_check () =
  Harness.section "FIG5-CHECK"
    "Figure 5, column 'repair check': PTIME families vs co-NP-complete G";
  let sizes = sz [ 200; 400; 800; 1600 ] [ 100; 200 ] in
  let families = [ Family.Rep; Family.L; Family.S; Family.C ] in
  let series =
    List.map
      (fun family ->
        let points =
          List.map
            (fun n ->
              let c, p = cluster_case n in
              let candidate = Winnow.clean c p in
              (n, Harness.measure (fun () -> Family.check family c p candidate)))
            sizes
        in
        (family, points))
      families
  in
  let rows =
    List.map
      (fun (family, points) ->
        Family.name_to_string family
        :: (List.map (fun (_, t) -> Harness.time_cell t) points
           @ [ Printf.sprintf "%.2f" (Harness.loglog_slope points) ]))
      series
  in
  Harness.table
    ~header:
      ("family"
      :: (List.map (fun n -> Printf.sprintf "n=%d" n) sizes @ [ "poly degree" ]))
    rows;
  Harness.note
    "all four run in polynomial time (log-log slope ~ 1-2, dominated by";
  Harness.note "set operations), as Figure 5 claims.";
  Format.printf "@.";
  (* G: witness search over the repair space *)
  let rungs = sz [ 8; 10; 12; 14; 16 ] [ 6; 8 ] in
  let points =
    List.map
      (fun r ->
        let c, p = ladder_case r in
        let candidate = Winnow.clean c p in
        (r, Harness.measure (fun () -> Family.check Family.G c p candidate)))
      rungs
  in
  Harness.table
    ~header:[ "G-Rep check"; "time" ]
    (List.map
       (fun (r, t) -> [ Printf.sprintf "ladder n=%d" r; Harness.time_cell t ])
       points);
  Harness.note
    "G-repair checking explodes with the repair space: x%.1f per +2 conflicts"
    (Harness.step_ratio points);
  Harness.note "(co-NP-complete, Theorem 5; the checker searches for a";
  Harness.note " dominating-repair witness)."

(* --- FIG5: consistent query answers ------------------------------------------- *)

let fig5_cqa () =
  Harness.section "FIG5-CQA"
    "Figure 5, columns 'consistent answers': ground PTIME vs enumeration";
  (* Rep + ground queries: the PTIME algorithm *)
  let sizes = sz [ 200; 400; 800; 1600; 3200 ] [ 100; 200 ] in
  let points =
    List.map
      (fun n ->
        let c, _ = cluster_case n in
        let q = cluster_ground_query c in
        (n, Harness.measure (fun () -> Result.get_ok (Cqa.ground_certainty c q))))
      sizes
  in
  Harness.table
    ~header:[ "Rep, ground query (PTIME algorithm)"; "time" ]
    (List.map (fun (n, t) -> [ Printf.sprintf "n=%d" n; Harness.time_cell t ]) points);
  Harness.note "log-log slope %.2f: polynomial, as claimed for {∀,∃}-free"
    (Harness.loglog_slope points);
  Format.printf "@.";
  (* naive enumeration for the same query *)
  let rungs = sz [ 6; 8; 10; 12; 14 ] [ 4; 6 ] in
  let points =
    List.map
      (fun r ->
        let c, p = ladder_case r in
        let q = ladder_ground_query c in
        (r, Harness.measure (fun () -> Cqa.certainty Family.Rep c p q)))
      rungs
  in
  Harness.table
    ~header:[ "Rep, same query by enumeration"; "time" ]
    (List.map
       (fun (r, t) -> [ Printf.sprintf "ladder n=%d" r; Harness.time_cell t ])
       points);
  Harness.note "x%.1f per +2 conflicts: the brute-force baseline is exponential"
    (Harness.step_ratio points);
  Format.printf "@.";
  (* preferred CQA per family (co-NP-complete / Pi^p_2-complete rows) *)
  let rungs = sz [ 4; 6; 8; 10 ] [ 4; 6 ] in
  let rows =
    List.map
      (fun family ->
        let points =
          List.map
            (fun r ->
              let c, _ = ladder_case r in
              let rng = Prng.create (r + 5) in
              let p = Generator.random_priority rng ~density:0.5 c in
              let q = ladder_ground_query c in
              (r, Harness.measure (fun () -> Cqa.certainty family c p q)))
            rungs
        in
        Family.name_to_string family
        :: (List.map (fun (_, t) -> Harness.time_cell t) points
           @ [ Printf.sprintf "x%.1f" (Harness.step_ratio points) ]))
      [ Family.L; Family.S; Family.G; Family.C ]
  in
  Harness.table
    ~header:
      ("preferred CQA"
      :: (List.map (fun r -> Printf.sprintf "n=%d" r) rungs @ [ "per +2" ]))
    rows;
  Harness.note
    "all preferred families pay the repair-enumeration price (co-NP-hard,";
  Harness.note "Theorem 3; Pi^p_2-complete for G, Theorem 5).";
  Format.printf "@.";
  (* conjunctive (quantified) queries: co-NP-complete already for Rep *)
  let rungs = sz [ 2; 4; 6 ] [ 2; 4 ] in
  let points =
    List.map
      (fun r ->
        let c, p = ladder_case r in
        let q = parse "exists a. R(a, 0) and R(a, 1)" in
        (r, Harness.measure (fun () -> Cqa.certainty Family.Rep c p q)))
      rungs
  in
  Harness.table
    ~header:[ "Rep, conjunctive query (enumeration)"; "time" ]
    (List.map
       (fun (r, t) -> [ Printf.sprintf "ladder n=%d" r; Harness.time_cell t ])
       points);
  Harness.note "x%.1f per +2 conflicts (co-NP-complete, Figure 5 row 1)"
    (Harness.step_ratio points)

(* --- component factorization (the practical algorithm) --------------------------- *)

let factorized () =
  Harness.section "FACTOR"
    "Ablation: component-factorized preferred CQA and counting (Decompose)";
  (* preferred CQA for EVERY family, at sizes far beyond enumeration:
     components stay bounded (clusters of 4), so the per-component
     exponential never bites *)
  let sizes = sz [ 400; 800; 1600; 3200 ] [ 200; 400 ] in
  let rows =
    List.map
      (fun family ->
        let points =
          List.map
            (fun n ->
              let c, p = cluster_case n in
              let d = Core.Decompose.make c p in
              let q = cluster_ground_query c in
              (* include Decompose.make in the first-call cost? build once,
                 query repeatedly: the steady-state regime *)
              ( n,
                Harness.measure (fun () ->
                    Result.get_ok (Core.Decompose.certainty_ground family d q))
              ))
            sizes
        in
        Family.name_to_string family
        :: (List.map (fun (_, t) -> Harness.time_cell t) points
           @ [ Printf.sprintf "%.2f" (Harness.loglog_slope points) ]))
      Family.all_names
  in
  Harness.table
    ~header:
      ("factorized CQA"
      :: (List.map (fun n -> Printf.sprintf "n=%d" n) sizes @ [ "slope" ]))
    rows;
  Harness.note
    "with bounded components, preferred CQA for every family — including";
  Harness.note
    "G-Rep, whose monolithic problem is Pi^p_2-complete — runs in";
  Harness.note "microseconds at sizes where enumeration needed minutes.";
  Format.printf "@.";
  let count_points =
    List.map
      (fun n ->
        let c, p = cluster_case n in
        let d = Core.Decompose.make c p in
        (n, Harness.measure (fun () -> Core.Decompose.count Family.G d)))
      sizes
  in
  Harness.table
    ~header:[ "count G-Rep (factorized)"; "time" ]
    (List.map
       (fun (n, t) -> [ Printf.sprintf "n=%d" n; Harness.time_cell t ])
       count_points);
  Harness.note "log-log slope %.2f" (Harness.loglog_slope count_points)

(* --- DECOMP: component-sharded streaming CQA vs whole-graph enumeration --------- *)

(* Before/after for the sharded certainty paths of this PR: the baseline
   is [Cqa.certainty] (streams the whole conflict graph's repair space),
   the after side [Decompose.certainty] on the same instance and query.
   Both sides are cross-checked for equality before timing. Written to
   BENCH_decompose.json. *)
let decomp_bench () =
  Harness.section "DECOMP"
    "component-sharded streaming CQA vs whole-graph enumeration";
  let ground_atom c v =
    Query.Ast.Atom
      ( Relational.Schema.name (Conflict.schema c),
        List.map
          (fun x -> Query.Ast.Const x)
          (Relational.Tuple.values (Conflict.tuple c v)) )
  in
  let rows = ref [] in
  let bench ~name ~note whole sharded =
    let vw = whole () and vs = sharded () in
    if vw <> vs then
      failwith
        (Printf.sprintf "DECOMP %s: whole-graph %s <> sharded %s" name
           (Cqa.certainty_to_string vw)
           (Cqa.certainty_to_string vs));
    let tw = Harness.measure whole in
    let ts = Harness.measure sharded in
    (* one instrumented run of the sharded side, outside the clock *)
    let phases = Harness.phase_breakdown (fun () -> ignore (sharded ())) in
    Harness.record_decompose ~name ~whole:tw ~sharded:ts ~note ~phases ();
    rows :=
      [ name; Cqa.certainty_to_string vw; Harness.time_cell tw;
        Harness.time_cell ts; Printf.sprintf "x%.1f" (tw /. ts) ]
      :: !rows
  in
  (* many small components: disjoint chains *)
  let comps = sz 8 4 and size = sz 4 3 in
  let rel, fds = Generator.chain_components ~components:comps ~size in
  let c = Conflict.build fds rel in
  let p = Priority.empty c in
  let d = Core.Decompose.make c p in
  let shape = Printf.sprintf "chains-%dx%d" comps size in
  (* tuples 0 and 1 conflict, so every maximal independent set keeps one
     of them: certainly true, and certainty must exhaust the space *)
  let q_certain = Query.Ast.Or (ground_atom c 0, ground_atom c 1) in
  List.iter
    (fun family ->
      bench
        ~name:
          (Printf.sprintf "certainty-ground-certain/%s/%s" shape
             (Family.name_to_string family))
        ~note:"ground certain query; whole graph exhausts the cross product"
        (fun () -> Cqa.certainty family c p q_certain)
        (fun () -> Core.Decompose.certainty family d q_certain))
    [ Family.Rep; Family.C ];
  (* a quantified query deciding on the FIRST component: matches tuple 0
     and nothing else, so it is ambiguous; the sharded side settles it by
     the deviation scan, the whole-graph side has to reach an enumeration
     leaf flipping that component's choice *)
  let q_amb =
    let values = Relational.Tuple.values (Conflict.tuple c 0) in
    match values with
    | [ a; b; _; dd ] ->
      Query.Ast.Exists
        ( [ "x" ],
          Query.Ast.Atom
            ( "R",
              [
                Query.Ast.Const a; Query.Ast.Const b; Query.Ast.Var "x";
                Query.Ast.Const dd;
              ] ) )
    | _ -> assert false
  in
  bench
    ~name:(Printf.sprintf "certainty-quantified-ambiguous/%s/rep" shape)
    ~note:"quantified query on the first component; sharded deviation scan"
    (fun () -> Cqa.certainty Family.Rep c p q_amb)
    (fun () -> Core.Decompose.certainty Family.Rep d q_amb);
  (* one giant component: the honest contrast — sharding cannot help when
     the graph does not decompose *)
  let k = sz 7 4 in
  let relg, fdsg = Generator.mutual_cycle k in
  let cg = Conflict.build fdsg relg in
  let pg = Priority.empty cg in
  let dg = Core.Decompose.make cg pg in
  let qg = Query.Ast.Or (ground_atom cg 0, ground_atom cg 1) in
  bench
    ~name:(Printf.sprintf "certainty-ground/giant-cycle-C%d/rep" (2 * k))
    ~note:
      "single giant component: no decomposition win; the residual gain is \
       the cached clause engine vs re-enumeration per call"
    (fun () -> Cqa.certainty Family.Rep cg pg qg)
    (fun () -> Core.Decompose.certainty Family.Rep dg qg);
  Harness.table
    ~header:[ "scenario"; "verdict"; "whole graph"; "sharded"; "speedup" ]
    (List.rev !rows);
  Format.printf "@.";
  (* frontier: far beyond what the whole-graph path can enumerate *)
  let fcomps = sz 32 6 and fsize = sz 8 4 in
  let relf, fdsf = Generator.chain_components ~components:fcomps ~size:fsize in
  let cf = Conflict.build fdsf relf in
  let df = Core.Decompose.make cf (Priority.empty cf) in
  let qf = Query.Ast.Or (ground_atom cf 0, ground_atom cf 1) in
  let vf = Core.Decompose.certainty Family.Rep df qf in
  let tf =
    Harness.measure (fun () -> Core.Decompose.certainty Family.Rep df qf)
  in
  let fname =
    Printf.sprintf "certainty-ground-certain/chains-%dx%d/rep" fcomps fsize
  in
  let per_component =
    List.length
      (Core.Decompose.preferred_within Family.Rep df
         (Core.Decompose.component_of df 0))
  in
  let fphases =
    Harness.phase_breakdown (fun () ->
        ignore (Core.Decompose.certainty Family.Rep df qf))
  in
  Harness.record_decompose ~name:fname ~sharded:tf
    ~note:
      (Printf.sprintf
         "frontier: %d components x %d repairs each (~%d^%d total), \
          whole-graph enumeration infeasible"
         fcomps per_component per_component fcomps)
    ~phases:fphases ();
  Harness.note "frontier %s: %s in %s (whole-graph enumeration infeasible)"
    fname
    (Cqa.certainty_to_string vf)
    (Harness.time_cell tf);
  (* surface the observability counters for the frontier decomposition *)
  Format.printf "  counters after the frontier query:@.";
  Format.printf "  %a@." Core.Decompose.pp_counters
    (Core.Decompose.counters df)

(* --- DELTA: incremental update engine vs full rebuild ---------------------------- *)

(* Before/after for the Core.Delta engine. The measured unit of work on
   both sides is one symmetric update-and-requery cycle — delete a
   tuple, answer a ground query, re-insert the tuple, answer again — so
   the instance returns to its starting state and iterations compose.
   The full-rebuild side pays Conflict.build + Decompose.make with a
   cold cache on every answer (the only way to answer after an update
   without the delta paths); the incremental side pays
   Delta.apply + a warm-cache Decompose query. Verdicts are
   cross-checked for equality before timing. Written to
   BENCH_delta.json. *)
let delta_bench () =
  Harness.section "DELTA"
    "incremental update engine (Core.Delta) vs full rebuild per update";
  let ground_atom c v =
    Query.Ast.Atom
      ( Relational.Schema.name (Conflict.schema c),
        List.map
          (fun x -> Query.Ast.Const x)
          (Relational.Tuple.values (Conflict.tuple c v)) )
  in
  let comps = sz 32 6 and size = sz 8 4 in
  let rel, fds = Generator.chain_components ~components:comps ~size in
  let shape = Printf.sprintf "chains-%dx%d" comps size in
  let mk_engine () = Result.get_ok (Core.Delta.create fds rel) in
  let eng = mk_engine () in
  let c0 = Core.Delta.conflict eng in
  (* ground query on the first component's chain head *)
  let q = Query.Ast.Or (ground_atom c0 0, ground_atom c0 1) in
  (* victims: a tuple in the LAST component (the update dirties one
     component far from the queried one — the headline regime) and a
     tuple inside the queried component (worst case: the update
     invalidates exactly the cache entry the query needs) *)
  let victim_far = Conflict.tuple c0 (Conflict.size c0 - 1) in
  let victim_near =
    let comp0 = Core.Decompose.component_of (Core.Delta.decompose eng) 0 in
    Conflict.tuple c0 (Vset.fold (fun v acc -> max v acc) comp0 0)
  in
  let incremental_cycle victim eng () =
    ignore (Result.get_ok (Core.Delta.apply eng [ Core.Delta.Delete victim ]));
    let v1 = Core.Decompose.certainty Family.Rep (Core.Delta.decompose eng) q in
    ignore (Result.get_ok (Core.Delta.apply eng [ Core.Delta.Insert victim ]));
    let v2 = Core.Decompose.certainty Family.Rep (Core.Delta.decompose eng) q in
    (v1, v2)
  in
  let full_cycle victim () =
    let answer r =
      let c = Conflict.build fds r in
      let d = Core.Decompose.make c (Priority.empty c) in
      Core.Decompose.certainty Family.Rep d q
    in
    let rel_del = Relational.Relation.remove rel victim in
    let v1 = answer rel_del in
    let v2 = answer (Relational.Relation.add rel_del victim) in
    (v1, v2)
  in
  (* counting across ALL components after an update: every component's
     cached repair list is consulted, only the dirtied one recounted *)
  let incremental_count victim eng () =
    ignore (Result.get_ok (Core.Delta.apply eng [ Core.Delta.Delete victim ]));
    let n1 = Core.Decompose.count Family.Rep (Core.Delta.decompose eng) in
    ignore (Result.get_ok (Core.Delta.apply eng [ Core.Delta.Insert victim ]));
    let n2 = Core.Decompose.count Family.Rep (Core.Delta.decompose eng) in
    (n1, n2)
  in
  let full_count victim () =
    let count r =
      let c = Conflict.build fds r in
      Core.Decompose.count Family.Rep (Core.Decompose.make c (Priority.empty c))
    in
    let rel_del = Relational.Relation.remove rel victim in
    let n1 = count rel_del in
    let n2 = count (Relational.Relation.add rel_del victim) in
    (n1, n2)
  in
  (* the delete+reinsert cycle allocates a fresh id per reinsertion
     (append/tombstone discipline), so an engine driven through many
     thousands of timing iterations grows its id space and the later
     iterations pay for the earlier ones. Time a FIXED number of cycles
     per sample on a fresh engine — construction outside the clock — so
     the measured regime is a realistic bounded update history. *)
  let measure_cycles cycle =
    let samples = if !Harness.quick then 3 else 5 in
    let n = if !Harness.quick then 8 else 64 in
    let one () =
      let eng = mk_engine () in
      ignore (cycle eng ());
      (* warm the cache *)
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        ignore (cycle eng ())
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int n
    in
    let xs = List.sort compare (List.init samples (fun _ -> one ())) in
    List.nth xs (samples / 2)
  in
  let rows = ref [] in
  let bench ~name ~note incr full =
    if incr eng () <> full () then
      failwith (Printf.sprintf "DELTA %s: incremental and rebuild disagree" name);
    let tf = Harness.measure full in
    let ti = measure_cycles incr in
    (* one instrumented cycle on a fresh warm engine, outside the clock *)
    let phases =
      let eng = mk_engine () in
      ignore (incr eng ());
      Harness.phase_breakdown (fun () -> ignore (incr eng ()))
    in
    Harness.record_delta ~name ~full:tf ~incremental:ti ~note ~phases ();
    rows :=
      [ name; Harness.time_cell tf; Harness.time_cell ti;
        Printf.sprintf "x%.1f" (tf /. ti) ]
      :: !rows
  in
  bench
    ~name:(Printf.sprintf "requery-untouched-component/%s/rep" shape)
    ~note:
      "delete+reinsert in the last component, ground query on the first: \
       the incremental side retains every untouched component's cache"
    (incremental_cycle victim_far) (full_cycle victim_far);
  bench
    ~name:(Printf.sprintf "requery-dirtied-component/%s/rep" shape)
    ~note:
      "delete+reinsert inside the queried component: the incremental side \
       still rebuilds only that one component"
    (incremental_cycle victim_near) (full_cycle victim_near);
  bench
    ~name:(Printf.sprintf "recount-all-components/%s/rep" shape)
    ~note:
      "count preferred repairs across all components after each update; \
       untouched components answer from cache"
    (incremental_count victim_far) (full_count victim_far);
  Harness.table
    ~header:[ "scenario"; "full rebuild"; "incremental"; "speedup" ]
    (List.rev !rows);
  Harness.note
    "full rebuild = Conflict.build + Decompose.make (cold cache) per";
  Harness.note
    "update; incremental = Delta.apply re-decomposing only the dirtied";
  Harness.note "component. Written to BENCH_delta.json.";
  Format.printf "  counters after the delta benchmark:@.";
  Format.printf "  %a@." Core.Decompose.pp_counters
    (Core.Decompose.counters (Core.Delta.decompose eng))

(* --- OBS: span-engine overhead --------------------------------------------------- *)

(* The telemetry acceptance bar: with no sink installed (the shipping
   default) an instrumented kernel must cost what it did before
   instrumentation — every span site is one predicted branch. Each
   workload is timed three ways: telemetry disabled, null sink (engine
   bookkeeping alone, events discarded) and in-memory sink (full
   recording). Written to BENCH_obs.json; the disabled column carries a
   [previous_median_s] across runs so regressions show in the diff. *)
let obs_bench () =
  Harness.section "OBS"
    "telemetry overhead: disabled vs null sink vs memory sink";
  let rows = ref [] in
  let with_sink sink f =
    let prev = Obs.Span.sink () in
    Obs.Span.set_sink sink;
    let t = Harness.measure f in
    Obs.Span.set_sink prev;
    t
  in
  let bench ~name ~note f =
    let disabled = with_sink None f in
    let null_sink = with_sink (Some Obs.Sink.null) f in
    let buf = Obs.Sink.Memory.create () in
    (* clear per call so the bounded buffer never saturates mid-sample *)
    let memory_sink =
      with_sink
        (Some (Obs.Sink.Memory.sink buf))
        (fun () ->
          Obs.Sink.Memory.clear buf;
          f ())
    in
    Harness.record_obs ~name ~disabled ~null_sink ~memory_sink ~note;
    rows :=
      [ name; Harness.time_cell disabled; Harness.time_cell null_sink;
        Harness.time_cell memory_sink;
        Printf.sprintf "x%.2f" (null_sink /. disabled);
        Printf.sprintf "x%.2f" (memory_sink /. disabled) ]
      :: !rows
  in
  (* micro: the raw per-span-site cost, nothing else in the loop *)
  bench ~name:"span-noop/x1000"
    ~note:"1000 empty with_span calls; isolates the per-span engine cost"
    (fun () ->
      for _ = 1 to 1000 do
        Obs.Span.with_span "noop" ignore
      done);
  (* macro: a cold build+decompose+certainty pass across the instrumented
     kernels — the number the <5% disabled-overhead criterion reads *)
  let comps = sz 16 4 and size = sz 6 3 in
  let rel, fds = Generator.chain_components ~components:comps ~size in
  let c0 = Conflict.build fds rel in
  let ground_atom v =
    Query.Ast.Atom
      ( Relational.Schema.name (Conflict.schema c0),
        List.map
          (fun x -> Query.Ast.Const x)
          (Relational.Tuple.values (Conflict.tuple c0 v)) )
  in
  let q = Query.Ast.Or (ground_atom 0, ground_atom 1) in
  bench
    ~name:(Printf.sprintf "build+decompose+certainty/chains-%dx%d/rep" comps size)
    ~note:
      "cold Conflict.build + Decompose.make + certainty per run; macro \
       regression bar for disabled telemetry"
    (fun () ->
      let c = Conflict.build fds rel in
      let d = Core.Decompose.make c (Priority.empty c) in
      ignore (Core.Decompose.certainty Family.Rep d q));
  (* the identity-layer spans added with the interned substrate:
     intern.parse around instance parsing and relation.index around
     postings construction — text synthesized in memory so the workload
     is self-contained *)
  let parse_text =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "relation R(A:name, B:int)\nfd A -> B\n";
    let groups = sz 64 16 in
    for g = 0 to groups - 1 do
      for k = 0 to 3 do
        Buffer.add_string buf (Printf.sprintf "tuple 'employee-%d' %d\n" g k)
      done
    done;
    Buffer.contents buf
  in
  bench
    ~name:(Printf.sprintf "parse+index/names-%d" (4 * sz 64 16))
    ~note:
      "Instance_format.parse (intern.parse span) + per-column postings \
       build (relation.index span) per run"
    (fun () ->
      match Dbio.Instance_format.parse parse_text with
      | Error e -> failwith e
      | Ok spec -> Relational.Relation.prepare_index spec.relation);
  Harness.table
    ~header:
      [ "workload"; "disabled"; "null sink"; "memory sink"; "null ovh";
        "mem ovh" ]
    (List.rev !rows);
  Harness.note
    "disabled = no sink installed (shipping default); overhead columns are";
  Harness.note "ratios against it. Written to BENCH_obs.json.";
  (* the metrics registry's own bar: the serve loop's per-request hot
     path (Session.exec, no socket) with Obs.Metric recording on — the
     shipping default — vs off. Acceptance: on/off <= 1.03. *)
  let session_text =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "relation R(A:name, B:int)\nfd A -> B\n";
    for g = 0 to sz 32 8 - 1 do
      for k = 0 to 2 do
        Buffer.add_string buf (Printf.sprintf "tuple 'employee-%d' %d\n" g k)
      done
    done;
    Buffer.contents buf
  in
  let spec =
    match Dbio.Instance_format.parse session_text with
    | Ok spec -> spec
    | Error e -> failwith e
  in
  let st = ref (Shell.Session.of_spec spec) in
  let mix =
    (* query + plan feed the CQA and planner kernels; insert/undo pay
       the incremental engine and leave the state where it started *)
    [ "query R('employee-0', 0)"; "plan R('employee-0', b)";
      "insert 'visitor' 7"; "undo" ]
  in
  let request_mix () =
    List.iter (fun cmd -> st := fst (Shell.Session.exec !st cmd)) mix
  in
  (* the mix's insert/undo cycle is GC-bound and bimodal run to run —
     far above the 3% bar under test — so neither a sequential A/B nor
     medians of batches separate signal from mode flips. Strictly
     alternating fixed-rep batches and taking each column's minimum
     does: the minimum is the GC-quiet cost, and any real per-request
     metrics overhead survives in it. *)
  let reps = if !Harness.quick then 20 else 200 in
  let rounds = if !Harness.quick then 5 else 21 in
  let batch on =
    (* identical starting state per batch: repeated insert/undo cycles
       leave the engine's vertex-id space (and heap) monotonically
       larger, so a batch's cost depends on how many batches ran before
       it — resetting the session makes the two columns comparable by
       construction *)
    st := Shell.Session.of_spec spec;
    Obs.Metric.set_enabled on;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      request_mix ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Obs.Metric.set_enabled true;
    dt /. float_of_int reps
  in
  ignore (batch true);
  (* warm-up *)
  let offs = ref [] and ons = ref [] in
  for _ = 1 to rounds do
    offs := batch false :: !offs;
    ons := batch true :: !ons
  done;
  let best xs = List.fold_left Float.min infinity xs in
  let off = best !offs and on = best !ons in
  let name = Printf.sprintf "session-exec-mix/names-%d" (3 * sz 32 8) in
  Harness.record_metrics ~name ~off ~on
    ~note:
      "query + plan + insert + undo per run through Session.exec (the \
       serve loop's per-request path, no socket); metrics recording on \
       vs off";
  Harness.table
    ~header:[ "workload"; "metrics off"; "metrics on"; "overhead" ]
    [
      [ name; Harness.time_cell off; Harness.time_cell on;
        Printf.sprintf "x%.3f" (on /. off) ];
    ];
  Harness.note
    "metrics on is the shipping default; the bar is on/off <= 1.03."

(* --- PAR: domain-parallel scaling across pool widths ------------------------------ *)

(* The scaling curve of the work-stealing component scheduler: the same
   kernel measured at 1, 2, 4, 8 domains ([Core.Pool.set_jobs]), with
   the 1-domain median as each row's baseline. Every row also records
   the host core count — on a single-core box the curve is expected
   flat-to-negative (domains time-slice one core and pay the fences)
   and the committed JSON must be legible as such rather than fake a
   win. Results are cross-checked against the 1-domain run before any
   timing. Written to BENCH_parallel.json. *)
let par_bench () =
  Harness.section "PAR"
    "domain-parallel CQA: work-stealing pool scaling at 1/2/4/8 domains";
  let saved = Core.Pool.jobs () in
  let host = Domain.recommended_domain_count () in
  let widths = if !Harness.quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Harness.note
    "host cores: %d — speedup needs host_cores > domains in flight" host;
  let rows = ref [] in
  let sweep ~name ~note f =
    Core.Pool.set_jobs 1;
    let expected = f () in
    let sequential = ref nan in
    List.iter
      (fun k ->
        Core.Pool.set_jobs k;
        if f () <> expected then
          failwith
            (Printf.sprintf "PAR %s: %d-domain result diverges from sequential"
               name k);
        let t = Harness.measure (fun () -> ignore (f ())) in
        if k = 1 then sequential := t;
        Harness.record_parallel
          ~name:(Printf.sprintf "%s/j%d" name k)
          ~domains:k ~median:t ~sequential:!sequential ~note;
        rows :=
          [ name; string_of_int k; Harness.time_cell t;
            Printf.sprintf "x%.2f" (!sequential /. t) ]
          :: !rows)
      widths;
    Core.Pool.set_jobs saved
  in
  (* many equal components: disjoint chains, the cache fill + count path *)
  let comps = sz 32 8 and size = sz 8 4 in
  let rel, fds = Generator.chain_components ~components:comps ~size in
  let c = Conflict.build fds rel in
  let d = Core.Decompose.make c (Priority.empty c) in
  let shape = Printf.sprintf "chains-%dx%d" comps size in
  sweep
    ~name:(Printf.sprintf "count-G/%s" shape)
    ~note:
      "cold cache fill (parallel component solves) + saturating count; \
       G-Rep pays a domination search per component"
    (fun () ->
      Core.Decompose.reset_cache d;
      Core.Decompose.count Family.G d);
  (* quantified ambiguous query: pass 1 of certainty_streaming is the
     parallel per-component deviation scan with the shared stop flag *)
  let q_amb =
    match Relational.Tuple.values (Conflict.tuple c 0) with
    | [ a; b; _; dd ] ->
      Query.Ast.Exists
        ( [ "x" ],
          Query.Ast.Atom
            ( "R",
              [
                Query.Ast.Const a; Query.Ast.Const b; Query.Ast.Var "x";
                Query.Ast.Const dd;
              ] ) )
    | _ -> assert false
  in
  sweep
    ~name:(Printf.sprintf "certainty-quantified/%s/rep" shape)
    ~note:
      "cold warm + parallel deviation scan with early-exit stop flag; \
       verdict is ambiguous, settled without the cross product"
    (fun () ->
      Core.Decompose.reset_cache d;
      Core.Decompose.certainty Family.Rep d q_amb);
  (* the scale workload: a million facts, controlled conflict density —
     2048 cliques of 8 up front, then one huge consistent group *)
  let facts = sz 1_000_000 20_000
  and groups = sz 2048 64
  and width = 8 in
  let relm, fdsm = Generator.clustered_conflicts ~facts ~groups ~width in
  let cm = Conflict.build fdsm relm in
  let dm = Core.Decompose.make cm (Priority.empty cm) in
  sweep
    ~name:(Printf.sprintf "count-rep/clustered-%dx%dx%d" facts groups width)
    ~note:
      "million-fact instance (quick mode shrinks it): conflict cliques \
       solved on the pool, the clean tail rides the free set"
    (fun () ->
      Core.Decompose.reset_cache dm;
      Core.Decompose.count Family.Rep dm);
  Harness.table
    ~header:[ "kernel"; "domains"; "median"; "speedup" ]
    (List.rev !rows);
  (* per-domain span attribution: one instrumented run at the widest
     setting; worker-lane spans in the stitched trace carry a "domain"
     argument (Export validates monotonicity per lane) *)
  Core.Pool.set_jobs (List.fold_left max 1 widths);
  let buf = Obs.Sink.Memory.create () in
  let prev_sink = Obs.Span.sink () in
  Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf));
  Core.Decompose.reset_cache d;
  ignore (Core.Decompose.count Family.G d);
  Obs.Span.set_sink prev_sink;
  Core.Pool.set_jobs saved;
  let events = Obs.Sink.Memory.events buf in
  let worker_lanes =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Obs.Event.t) ->
           match List.assoc_opt "domain" e.args with
           | Some (Obs.Event.Int k) -> Some k
           | _ -> None)
         events)
  in
  (match Obs.Export.validate (Obs.Export.chrome events) with
  | Ok _ -> ()
  | Error e -> failwith ("PAR: stitched trace fails validation: " ^ e));
  Harness.note
    "stitched trace: %d events, worker lanes {%s} (lane 0 = caller, \
     unannotated); per-lane validation passes"
    (List.length events)
    (String.concat ", " (List.map string_of_int worker_lanes));
  Harness.note "Written to BENCH_parallel.json."

(* --- Algorithm 1 scaling -------------------------------------------------------- *)

let alg1 () =
  Harness.section "ALG1" "Algorithm 1: cleaning scales polynomially";
  let sizes = sz [ 500; 1000; 2000; 4000; 8000 ] [ 250; 500 ] in
  let points =
    List.map
      (fun n ->
        let c, p = cluster_case n in
        (n, Harness.measure (fun () -> Winnow.clean c p)))
      sizes
  in
  Harness.table
    ~header:[ "clean (total priority)"; "time" ]
    (List.map (fun (n, t) -> [ Printf.sprintf "n=%d" n; Harness.time_cell t ]) points);
  Harness.note "log-log slope %.2f" (Harness.loglog_slope points);
  let build_points =
    List.map
      (fun n ->
        let rel, fds = Generator.key_clusters ~groups:(n / 4) ~width:4 in
        (n, Harness.measure (fun () -> Conflict.build fds rel)))
      sizes
  in
  Harness.table
    ~header:[ "conflict graph construction"; "time" ]
    (List.map
       (fun (n, t) -> [ Printf.sprintf "n=%d" n; Harness.time_cell t ])
       build_points);
  Harness.note "log-log slope %.2f" (Harness.loglog_slope build_points);
  Format.printf "@.";
  (* ablation: incremental winnow maintenance vs the literal Algorithm 1 *)
  let ablation_sizes = sz [ 500; 1000; 2000; 4000 ] [ 250; 500 ] in
  let rows =
    List.map
      (fun n ->
        let c, p = cluster_case n in
        let inc = Harness.measure (fun () -> Winnow.clean c p) in
        let naive = Harness.measure (fun () -> Winnow.clean_naive c p) in
        [
          Printf.sprintf "n=%d" n;
          Harness.time_cell inc;
          Harness.time_cell naive;
          Printf.sprintf "x%.0f" (naive /. inc);
        ])
      ablation_sizes
  in
  Harness.table
    ~header:[ "Algorithm 1 ablation"; "incremental"; "literal (naive)"; "speedup" ]
    rows;
  Harness.note
    "maintaining the winnow set incrementally turns the quadratic literal";
  Harness.note "algorithm into a near-linear one."

(* --- answer quality vs preference completeness -------------------------------------- *)

let quality () =
  Harness.section "QUALITY"
    "How much certainty do preferences buy? (monotonicity P2 in action)";
  Harness.note
    "2000 tuples, key clusters of width 4; priority density swept 0 -> 1.";
  Harness.note
    "'decided' = conflicting tuples that are in every / in no preferred repair.";
  let rel, fds =
    Generator.key_clusters ~groups:(sz 500 100) ~width:4
  in
  let c = Conflict.build fds rel in
  let conflicted =
    Vset.filter
      (fun v -> not (Vset.is_empty (Conflict.neighbors c v)))
      (Vset.of_range (Conflict.size c))
  in
  let rows =
    List.map
      (fun density_pct ->
        let rng = Prng.create (1000 + density_pct) in
        let p =
          Generator.random_priority rng
            ~density:(float_of_int density_pct /. 100.)
            c
        in
        let d = Core.Decompose.make c p in
        let decided family =
          Vset.fold
            (fun v acc ->
              let comp = Core.Decompose.component_of d v in
              let repairs = Core.Decompose.preferred_within family d comp in
              let in_all = List.for_all (fun r -> Vset.mem v r) repairs in
              let in_none = List.for_all (fun r -> not (Vset.mem v r)) repairs in
              if in_all || in_none then acc + 1 else acc)
            conflicted 0
        in
        (* geometric mean of per-component preferred counts: the repair
           space shrinks multiplicatively as the priority grows *)
        let avg_repairs family =
          let comps = Core.Decompose.components d in
          let log_sum =
            List.fold_left
              (fun acc comp ->
                acc
                +. log
                     (float_of_int
                        (List.length (Core.Decompose.preferred_within family d comp))))
              0. comps
          in
          exp (log_sum /. float_of_int (List.length comps))
        in
        [
          Printf.sprintf "%d%%" density_pct;
          Printf.sprintf "%.2f" (avg_repairs Family.Rep);
          Printf.sprintf "%.2f" (avg_repairs Family.G);
          Printf.sprintf "%.2f" (avg_repairs Family.C);
          Printf.sprintf "%d / %d" (decided Family.G) (Vset.cardinal conflicted);
          Printf.sprintf "%d / %d" (decided Family.C) (Vset.cardinal conflicted);
        ])
      (sz [ 0; 25; 50; 75; 100 ] [ 0; 50; 100 ])
  in
  Harness.table
    ~header:
      [
        "priority density"; "repairs/cluster (Rep)"; "(G)"; "(C)";
        "decided tuples (G)"; "decided (C)";
      ]
    rows;
  Harness.note
    "the repair space narrows monotonically with added preferences (P2)";
  Harness.note
    "and at total priority every tuple's fate is decided (P4: one repair).";
  Harness.note "C decides at least as much as G (C-Rep ⊆ G-Rep)."

(* --- extensions ------------------------------------------------------------------- *)

let ext_aggregate () =
  Harness.section "EXT-AGG"
    "§6 extension: aggregation ranges — closed form vs enumeration";
  let closed_sizes = sz [ 1000; 4000; 16000; 64000 ] [ 500; 1000 ] in
  let points =
    List.map
      (fun n ->
        let rel, fds = Generator.key_clusters ~groups:(n / 4) ~width:4 in
        let c = Conflict.build fds rel in
        (n, Harness.measure (fun () ->
               Result.get_ok (Core.Aggregate.range c (Core.Aggregate.Sum "B")))))
      closed_sizes
  in
  Harness.table
    ~header:[ "closed form SUM (cluster graph)"; "time" ]
    (List.map (fun (n, t) -> [ Printf.sprintf "n=%d" n; Harness.time_cell t ]) points);
  Harness.note "log-log slope %.2f" (Harness.loglog_slope points);
  let enum_groups = sz [ 4; 8; 12; 16 ] [ 4; 8 ] in
  let points =
    List.map
      (fun g ->
        let rel, fds = Generator.key_clusters ~groups:g ~width:2 in
        let c = Conflict.build fds rel in
        ( g,
          Harness.measure (fun () ->
              Result.get_ok
                (Core.Aggregate.range_preferred Family.Rep c (Priority.empty c)
                   (Core.Aggregate.Sum "B"))) ))
      enum_groups
  in
  Harness.table
    ~header:[ "enumeration SUM"; "time" ]
    (List.map
       (fun (g, t) -> [ Printf.sprintf "groups=%d" g; Harness.time_cell t ])
       points);
  Harness.note "x%.1f per +4 groups: enumeration pays 2^groups"
    (Harness.step_ratio points)

let hyper_instance n =
  let rng = Prng.create (n + 3) in
  let schema =
    Relational.Schema.make "R"
      [ ("A", Relational.Schema.TInt); ("B", Relational.Schema.TInt) ]
  in
  let rows =
    List.init n (fun _ ->
        [
          Relational.Value.Int (Prng.int rng (max 1 (n / 4)));
          Relational.Value.Int (Prng.int rng 1000);
        ])
  in
  let rel = Relational.Relation.of_rows schema rows in
  let atom l op r = { Constraints.Denial.left = l; op; right = r } in
  let no_triple =
    Constraints.Denial.make ~label:"no-triple" ~nvars:3
      [
        atom (Constraints.Denial.Attr (0, "A")) Constraints.Denial.Eq
          (Constraints.Denial.Attr (1, "A"));
        atom (Constraints.Denial.Attr (1, "A")) Constraints.Denial.Eq
          (Constraints.Denial.Attr (2, "A"));
        atom (Constraints.Denial.Attr (0, "B")) Constraints.Denial.Lt
          (Constraints.Denial.Attr (1, "B"));
        atom (Constraints.Denial.Attr (1, "B")) Constraints.Denial.Lt
          (Constraints.Denial.Attr (2, "B"));
      ]
  in
  Core.Hyper.build [ no_triple ] rel

let ext_hyper () =
  Harness.section "EXT-HYPER"
    "§6 extension: denial constraints via conflict hypergraphs";
  let sizes = sz [ 20; 40; 80; 160 ] [ 20; 40 ] in
  let rows =
    List.map
      (fun n ->
        let h = hyper_instance n in
        let edges = List.length (Graphs.Hypergraph.edges (Core.Hyper.hypergraph h)) in
        let q =
          let t = Core.Hyper.tuple h 0 in
          Query.Ast.Atom
            ( "R",
              List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t) )
        in
        let t_cqa =
          Harness.measure (fun () ->
              Result.get_ok (Core.Hyper.ground_certainty h q))
        in
        [ string_of_int n; string_of_int edges; Harness.time_cell t_cqa ])
      sizes
  in
  Harness.table ~header:[ "n"; "hyperedges"; "ground CQA time" ] rows;
  Harness.note "ground CQA stays polynomial on 3-ary conflicts";
  let small = hyper_instance 14 in
  Harness.note "repairs of the n=14 instance: %d"
    (List.length (Core.Hyper.repairs small))

(* --- HYPER: denial constraints on the hypergraph substrate ------------------------- *)

(* The substrate claims, measured (dumped as BENCH_hyper.json):

   1. violation detection: the postings-driven join (violation_sets)
      against the seed's naive O(n^k) nested scan (violations) on the
      same mixed-arity denial set — the >= 10x claim.
   2. binary parity: a pure-FD workload through Hyper.of_fds +
      Hdecompose must return the verdicts of Conflict.build + Decompose
      at comparable cost — generalizing must not tax the common case.
   3. scale: the clustered million-fact scenario (20k under --quick):
      build, decompose and ground certainty, with the unflagged
      consistent tail kept out of every join by the flag-gate probe. *)
let hyper_bench () =
  Harness.section "HYPER" "denial constraints on the hypergraph substrate";
  let ground_q h i =
    let t = Core.Hyper.tuple h i in
    Query.Ast.Atom
      ("R", List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t))
  in
  (* -- 1. violation detection: postings join vs the naive scan -- *)
  let n_scan = sz 240 100 in
  let rng = Prng.create 41 in
  let rel, denials =
    Generator.random_denial_instance rng ~n:n_scan
      ~a_values:(max 1 (n_scan / 8)) ~payload_values:16 ~cap_chance:0.01
      ~skew:false
  in
  let schema = Relational.Relation.schema rel in
  (* Same witnesses first: the naive scan reports witness sets as
     value-deduplicated tuple lists, so fold the join's fact-id sets
     down to the same shape before comparing. *)
  let arr = Relational.Relation.tuple_array rel in
  let as_tuples vs =
    List.sort_uniq Relational.Tuple.compare
      (List.map (fun i -> arr.(i)) (Vset.elements vs))
  in
  List.iter
    (fun dc ->
      let naive = Constraints.Denial.violations schema dc rel in
      let join =
        List.sort_uniq
          (List.compare Relational.Tuple.compare)
          (List.map as_tuples (Constraints.Denial.violation_sets schema dc rel))
      in
      if naive <> join then
        failwith
          (Printf.sprintf "HYPER: scan and join disagree on %S"
             (Constraints.Denial.label dc)))
    denials;
  let detect_naive () =
    List.fold_left
      (fun acc dc ->
        acc + List.length (Constraints.Denial.violations schema dc rel))
      0 denials
  in
  let detect_join () =
    List.fold_left
      (fun acc dc ->
        acc + List.length (Constraints.Denial.violation_sets schema dc rel))
      0 denials
  in
  let witnesses = detect_join () in
  let t_naive = Harness.measure ~samples:3 detect_naive in
  let t_join = Harness.measure detect_join in
  Harness.table
    ~header:
      [
        Printf.sprintf "violation detection (n=%d, %d witnesses)" n_scan
          witnesses;
        "time";
      ]
    [
      [ "naive O(n^k) scan"; Harness.time_cell t_naive ];
      [ "postings join"; Harness.time_cell t_join ];
      [ "speedup"; Printf.sprintf "%.0fx" (t_naive /. t_join) ];
    ];
  Harness.record_hyper
    ~name:(Printf.sprintf "violations/n=%d" n_scan)
    ~median:t_join ~baseline:t_naive ~edges:witnesses
    ~note:"mixed arity-1/2/3 denial set; baseline = seed O(n^k) nested scan"
    ();
  (* -- 2. binary parity: of_fds + Hdecompose vs Conflict + Decompose -- *)
  let pfacts = sz 20_000 2_000 and pgroups = sz 512 64 in
  let prel, pfds = Generator.clustered_conflicts ~facts:pfacts ~groups:pgroups ~width:4 in
  let h0 = Core.Hyper.of_fds pfds prel in
  let qp = ground_q h0 0 in
  let conflict_path () =
    let c = Conflict.build pfds prel in
    let d = Core.Decompose.make c (Priority.empty c) in
    Core.Decompose.certainty Family.Rep d qp
  in
  let hyper_path () =
    let h = Core.Hyper.of_fds pfds prel in
    let hd = Core.Hdecompose.make h (Core.Hpriority.empty h) in
    Core.Hdecompose.certainty Core.Hfamily.Rep hd qp
  in
  let vc = conflict_path () and vh = hyper_path () in
  if vc <> vh then failwith "HYPER: parity verdict mismatch vs Conflict path";
  let t_conflict = Harness.measure conflict_path in
  let t_hyper = Harness.measure hyper_path in
  Harness.table
    ~header:[ Printf.sprintf "FD parity (n=%d)" pfacts; "build+decompose+CQA" ]
    [
      [ "Conflict + Decompose (binary)"; Harness.time_cell t_conflict ];
      [ "of_fds + Hdecompose"; Harness.time_cell t_hyper ];
      [ "ratio (binary/hyper)"; Printf.sprintf "%.2fx" (t_conflict /. t_hyper) ];
    ];
  Harness.record_hyper
    ~name:(Printf.sprintf "fd-parity/n=%d" pfacts)
    ~median:t_hyper ~baseline:t_conflict
    ~edges:(Hypergraph.edge_count (Core.Hyper.hypergraph h0))
    ~note:
      "pure-FD workload, end-to-end build+decompose+ground CQA; baseline = \
       binary Conflict/Decompose path"
    ();
  (* -- 3. scale: the clustered (million-fact) scenario -- *)
  let sfacts = sz 1_000_000 20_000 and sgroups = sz 2048 256 in
  let srel, sdenials =
    Generator.denial_clusters ~facts:sfacts ~groups:sgroups ~width:6
  in
  let t_build =
    Harness.measure_cold ~samples:3 (fun () -> Core.Hyper.build sdenials srel)
  in
  let h = Core.Hyper.build sdenials srel in
  let edges = Hypergraph.edge_count (Core.Hyper.hypergraph h) in
  let p = Core.Hpriority.empty h in
  let t_dec =
    Harness.measure_cold ~samples:3 (fun () -> Core.Hdecompose.make h p)
  in
  let hd = Core.Hdecompose.make h p in
  let qt = ground_q h (sfacts - 1) in
  if Core.Hdecompose.certainty Core.Hfamily.Rep hd qt <> Core.Cqa.Certainly_true
  then failwith "HYPER: consistent tail fact not certainly true";
  let t_cqa =
    Harness.measure (fun () -> Core.Hdecompose.certainty Core.Hfamily.Rep hd qt)
  in
  Harness.table
    ~header:
      [
        Printf.sprintf "scale (n=%d, %d hyperedges, %d components)" sfacts
          edges
          (Core.Hdecompose.component_count hd);
        "time";
      ]
    [
      [ "Hyper.build"; Harness.time_cell t_build ];
      [ "Hdecompose.make"; Harness.time_cell t_dec ];
      [ "ground certainty (tail fact)"; Harness.time_cell t_cqa ];
    ];
  Harness.note
    "the unflagged tail never enters a violation join: the constant F=1 \
     probe gates every multi-tuple denial";
  Harness.record_hyper
    ~name:(Printf.sprintf "build/n=%d" sfacts)
    ~median:t_build ~edges
    ~note:"clustered mixed-arity build; flag-gated postings probes" ();
  Harness.record_hyper
    ~name:(Printf.sprintf "decompose/n=%d" sfacts)
    ~median:t_dec ~edges
    ~note:
      (Printf.sprintf "%d components; tail lands in the free set"
         (Core.Hdecompose.component_count hd))
    ();
  Harness.record_hyper
    ~name:(Printf.sprintf "certainty/n=%d" sfacts)
    ~median:t_cqa ~edges
    ~note:"ground tail fact, Rep family, after decomposition" ()

(* --- VSET: bitset representation vs the tree-backed seed ---------------------------- *)

(* --- STORE: the durable store's snapshot and log --------------------------------- *)

(* The durable-store claim, measured: loading the clustered million-fact
   instance from the binary snapshot must beat re-parsing its text form
   by >= 10x (the snapshot decodes in O(file size): no tokenizing, no
   per-occurrence hashing, one intern probe per distinct name), and a
   WAL append must sit in fsync territory — the append latency IS the
   per-mutation durability cost the serve loop pays before every ack.
   Both sides of the load comparison are cross-checked for equality
   before any timing. Written to BENCH_store.json. *)
let store_bench () =
  Harness.section "STORE"
    "durable store: binary snapshot load vs text parse, WAL append/replay";
  let module IF = Dbio.Instance_format in
  let read_all path = In_channel.with_open_bin path In_channel.input_all in
  let with_temp suffix k =
    let path = Filename.temp_file "prefdb_bench" suffix in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> k path)
  in
  let load_pair ~shape spec =
    let text = match IF.render spec with Ok t -> t | Error e -> failwith e in
    let text_bytes = String.length text in
    with_temp ".txt" @@ fun text_path ->
    with_temp ".snap" @@ fun snap_path ->
    Out_channel.with_open_bin text_path (fun oc -> output_string oc text);
    (match Dbio.Snapshot.save snap_path ~generation:0 spec with
    | Ok () -> ()
    | Error e -> failwith e);
    let parsed = Result.get_ok (IF.parse (read_all text_path)) in
    let loaded = fst (Result.get_ok (Dbio.Snapshot.load snap_path)) in
    if not (Relational.Relation.equal parsed.IF.relation loaded.IF.relation)
    then failwith (Printf.sprintf "STORE %s: parse and load disagree" shape);
    (* both sides timed cold-start (see [Harness.measure_cold]): a load
       happens once at process start, so neither side should also pay
       for collecting a predecessor's result — nor carry the source
       relation above as live ballast (dead here: no later use). *)
    let parse_t =
      Harness.measure_cold (fun () ->
          Result.is_ok (IF.parse (read_all text_path)))
    in
    let load_t =
      Harness.measure_cold (fun () ->
          Result.is_ok (Dbio.Snapshot.load snap_path))
    in
    let snap_bytes = (Unix.stat snap_path).Unix.st_size in
    Harness.record_store
      ~name:(Printf.sprintf "parse-text/%s" shape)
      ~median:parse_t ~bytes:text_bytes
      ~note:"cold-start; read + tokenize + re-intern every occurrence" ();
    Harness.record_store
      ~name:(Printf.sprintf "load-snapshot/%s" shape)
      ~median:load_t ~baseline:parse_t ~bytes:snap_bytes
      ~note:
        "cold-start; read + CRC + dense varint decode in fact-id order; \
         one intern probe per distinct name" ();
    Harness.note
      "%s: parse %s (%d bytes) vs snapshot load %s (%d bytes) — x%.1f \
       (acceptance: >=10x on the full-size run)"
      shape (Harness.time_cell parse_t) text_bytes
      (Harness.time_cell load_t) snap_bytes (parse_t /. load_t)
  in
  (* headline row: the PAR section's million-fact clustered scenario *)
  let facts = sz 1_000_000 20_000 and groups = sz 2048 64 and width = 8 in
  let rel, fds = Generator.clustered_conflicts ~facts ~groups ~width in
  load_pair
    ~shape:(Printf.sprintf "clustered-%dx%dx%d" facts groups width)
    { IF.relation = rel; fds; denials = []; provenance = Relational.Provenance.empty;
      prefs = [] };
  (* name-heavy variant: every row carries a fresh string, so this one
     actually exercises the dictionary remap path *)
  let names = sz 200_000 5_000 in
  let nrel =
    let schema =
      Relational.Schema.make "S"
        [ ("K", Relational.Schema.TName); ("V", Relational.Schema.TName) ]
    in
    let b = Relational.Relation.Builder.create ~size_hint:names schema in
    for i = 0 to names - 1 do
      Relational.Relation.Builder.add_row b
        [ Relational.Value.name (Printf.sprintf "k%d" (i mod 1000));
          Relational.Value.name (Printf.sprintf "v%d" i) ]
    done;
    Relational.Relation.Builder.finish b
  in
  load_pair
    ~shape:(Printf.sprintf "names-%d" names)
    { IF.relation = nrel; fds = []; denials = []; provenance = Relational.Provenance.empty;
      prefs = [] };
  (* WAL: append latency (write + fsync, the ack point) on one file,
     replay throughput over a fixed record count on another *)
  let batch =
    Dbio.Wal.Batch
      [ Core.Delta.Insert
          (Relational.Tuple.make
             [ Relational.Value.int 0; Relational.Value.int 1;
               Relational.Value.int 2 ]) ]
  in
  with_temp ".wal" (fun wal_file ->
      Sys.remove wal_file;
      let wal = Result.get_ok (Dbio.Wal.open_append wal_file) in
      Fun.protect
        ~finally:(fun () -> Dbio.Wal.close wal)
        (fun () ->
          let append_t =
            Harness.measure ~samples:3 (fun () ->
                match Dbio.Wal.append wal ~gen:0 batch with
                | Ok () -> true
                | Error e -> failwith e)
          in
          Harness.record_store ~name:"wal-append-fsync" ~median:append_t
            ~note:
              "one mutation journaled: single write + fsync before the \
               ack — the serve loop's per-update durability floor" ();
          Harness.note "wal append+fsync: %s per record"
            (Harness.time_cell append_t)));
  let nrec = sz 5_000 200 in
  with_temp ".wal" (fun wal_file ->
      Sys.remove wal_file;
      let wal = Result.get_ok (Dbio.Wal.open_append wal_file) in
      for _ = 1 to nrec do
        match Dbio.Wal.append wal ~gen:0 batch with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let wal_bytes = Dbio.Wal.size wal in
      Dbio.Wal.close wal;
      (match Dbio.Wal.replay wal_file with
      | Ok (entries, _, torn) when List.length entries = nrec && torn = 0 ->
        ()
      | Ok (entries, _, torn) ->
        failwith
          (Printf.sprintf "STORE wal: replay saw %d/%d records, %d torn"
             (List.length entries) nrec torn)
      | Error e -> failwith e);
      let replay_t =
        Harness.measure ~samples:3 (fun () ->
            Result.is_ok (Dbio.Wal.replay wal_file))
      in
      Harness.record_store
        ~name:(Printf.sprintf "wal-replay-%d" nrec)
        ~median:replay_t ~bytes:wal_bytes
        ~note:"decode + CRC-check every record of a clean log" ();
      Harness.note "wal replay: %d records in %s (%.0f records/s)" nrec
        (Harness.time_cell replay_t)
        (float_of_int nrec /. replay_t));
  Harness.note "Written to BENCH_store.json."

(* --- PLAN: the cost-based query planner ------------------------------------------ *)

(* Before/after for the planner: each row times one query through the
   compiled physical plan ([Planner.Engine]), the active-domain
   evaluator ([Query.Eval]) and the prior route ([Query.Engine]:
   syntactic-order conjunctive plans, everything else falling back to
   the evaluator) — whichever of the latter two are feasible on the
   workload. The headline rows are the widened fragment — disjunction
   and bounded universal quantification — which the prior route could
   not compile at all. Every row cross-checks result equality before
   timing. Written to BENCH_plan.json. *)
let plan_bench () =
  Harness.section "PLAN"
    "cost-based planner: join reordering, range scans and the widened fragment";
  let rows = ref [] in
  let cell = function Some t -> Harness.time_cell t | None -> "-" in
  let add ~name ?eval ?prior ~planned ~note ~phases () =
    Harness.record_plan ~name ~planned ?eval ?prior ~note ~phases ();
    let best = match eval with Some _ -> eval | None -> prior in
    rows :=
      [
        name; cell eval; cell prior; Harness.time_cell planned;
        (match best with
        | Some t -> Printf.sprintf "x%.1f" (t /. planned)
        | None -> "-");
      ]
      :: !rows
  in
  let const v = Query.Ast.Const v in
  (* chains: many small components, int-heavy columns *)
  let comps = sz 64 8 and size = sz 8 4 in
  let rel, _ = Generator.chain_components ~components:comps ~size in
  let db = Relational.Database.of_relations [ rel ] in
  (* exact column statistics, scanned once up front: the serving path
     maintains these incrementally under Delta batches, so plan-time
     never rescans the instance *)
  let lookup_of s =
    let name = Planner.Stats.relation_name s in
    fun r -> if String.equal r name then Some s else None
  in
  let stats = lookup_of (Planner.Stats.scan rel) in
  let shape = Printf.sprintf "chains-%dx%d" comps size in
  let tuples = Relational.Relation.tuple_array rel in
  let vals i = Relational.Tuple.values tuples.(i) in
  (* disjunction of two doubly-quantified blocks: the prior planner
     rejects the [or] and pays the evaluator's adom^2 scan; the compiled
     plan is a boolean or over two index probes *)
  let disj =
    let block i =
      match vals i with
      | [ a; _; _; d ] ->
        Query.Ast.Exists
          ( [ "x"; "y" ],
            Query.Ast.Atom
              ("R", [ const a; Query.Ast.Var "x"; Query.Ast.Var "y"; const d ])
          )
      | _ -> assert false
    in
    Query.Ast.Or (block 0, block (Array.length tuples - 1))
  in
  if not (Planner.Engine.planned ~stats db disj) then
    failwith "PLAN: disjunction must be inside the widened fragment";
  if Query.Plan.holds db disj <> None then
    failwith "PLAN: disjunction unexpectedly supported by the prior planner";
  if Query.Eval.holds db disj <> Planner.Engine.holds ~stats db disj then
    failwith "PLAN disjunction: planner diverges from the evaluator";
  add
    ~name:("disjunction-closed/" ^ shape)
    ~eval:(Harness.measure (fun () -> Query.Eval.holds db disj))
    ~prior:(Harness.measure (fun () -> Query.Engine.holds db disj))
    ~planned:(Harness.measure (fun () -> Planner.Engine.holds ~stats db disj))
    ~note:
      "closed disjunction of two 2-quantifier blocks: the prior route is \
       unsupported (falls back to the adom^2 evaluator), the compiled plan \
       unions two index probes"
    ~phases:
      (Harness.phase_breakdown (fun () ->
           ignore (Planner.Engine.holds_spanned ~stats db disj)))
    ();
  (* bounded universal: forall x. R(a,b,x,d) implies x >= 0 — compiled
     as a difference of two probe blocks, previously an adom-wide scan *)
  let univ =
    match vals 0 with
    | [ a; b; _; d ] ->
      Query.Ast.Forall
        ( [ "x" ],
          Query.Ast.Implies
            ( Query.Ast.Atom
                ("R", [ const a; const b; Query.Ast.Var "x"; const d ]),
              Query.Ast.Cmp
                (Query.Ast.Geq, Query.Ast.Var "x", const (Relational.Value.Int 0))
            ) )
    | _ -> assert false
  in
  if not (Planner.Engine.planned ~stats db univ) then
    failwith "PLAN: bounded universal must be inside the widened fragment";
  if Query.Eval.holds db univ <> Planner.Engine.holds ~stats db univ then
    failwith "PLAN universal: planner diverges from the evaluator";
  add
    ~name:("bounded-universal/" ^ shape)
    ~eval:(Harness.measure (fun () -> Query.Eval.holds db univ))
    ~prior:(Harness.measure (fun () -> Query.Engine.holds db univ))
    ~planned:(Harness.measure (fun () -> Planner.Engine.holds ~stats db univ))
    ~note:
      "forall x. R(a,b,x,d) implies x >= 0: anti-join of two index probes \
       vs the evaluator's active-domain sweep (the prior route falls back)"
    ~phases:
      (Harness.phase_breakdown (fun () ->
           ignore (Planner.Engine.holds_spanned ~stats db univ)))
    ();
  (* conjunctive join with the selective const-probed atom written
     SECOND: the prior planner joins in syntactic order, the cost-based
     one starts from the cheap side *)
  let reorder =
    match vals 1 with
    | [ a; b; _; d ] ->
      Query.Ast.Exists
        ( [ "x"; "y" ],
          Query.Ast.And
            ( Query.Ast.Atom
                ("R", [ Query.Ast.Var "x"; const b; Query.Ast.Var "y"; const d ]),
              Query.Ast.Atom
                ("R", [ const a; const b; Query.Ast.Var "x"; const d ]) ) )
    | _ -> assert false
  in
  if not (Planner.Engine.planned ~stats db reorder) then
    failwith "PLAN: conjunctive join must be plannable";
  if Query.Eval.holds db reorder <> Planner.Engine.holds ~stats db reorder then
    failwith "PLAN reorder: planner diverges from the evaluator";
  add
    ~name:("join-reorder/" ^ shape)
    ~eval:(Harness.measure (fun () -> Query.Eval.holds db reorder))
    ~prior:(Harness.measure (fun () -> Query.Engine.holds db reorder))
    ~planned:(Harness.measure (fun () -> Planner.Engine.holds ~stats db reorder))
    ~note:
      "two-atom join with the selective probe listed second: the prior \
       plan joins syntactically, the cost-based plan starts from the \
       probed side"
    ~phases:
      (Harness.phase_breakdown (fun () ->
           ignore (Planner.Engine.holds_spanned ~stats db reorder)))
    ();
  (* the scale workload: R(A,B,C) with a million facts *)
  let facts = sz 1_000_000 20_000 and groups = sz 2048 64 and width = 8 in
  let relm, _ = Generator.clustered_conflicts ~facts ~groups ~width in
  let dbm = Relational.Database.of_relations [ relm ] in
  let mstats = lookup_of (Planner.Stats.scan relm) in
  let mshape = Printf.sprintf "clustered-%dx%dx%d" facts groups width in
  (* open range query over the top slice of C: a sorted-postings range
     scan vs the prior plan's full scan + selection (the evaluator's
     adom-sized sweep is not feasible at this scale and is omitted) *)
  let range_q =
    Query.Ast.Exists
      ( [ "a"; "b" ],
        Query.Ast.And
          ( Query.Ast.Atom
              ("R", [ Query.Ast.Var "a"; Query.Ast.Var "b"; Query.Ast.Var "x" ]),
            Query.Ast.Cmp
              ( Query.Ast.Geq, Query.Ast.Var "x",
                const (Relational.Value.Int (facts - 8)) ) ) )
  in
  if not (Planner.Engine.planned ~stats:mstats dbm range_q) then
    failwith "PLAN: range query must be plannable";
  let planned_rows = snd (Planner.Engine.answers ~stats:mstats dbm range_q) in
  (match Query.Plan.answers dbm range_q with
  | Some (_, prior_rows) when prior_rows = planned_rows -> ()
  | Some _ -> failwith "PLAN range: planner diverges from the prior plan"
  | None -> failwith "PLAN: range query must be inside the prior fragment too");
  add
    ~name:("range-scan/" ^ mshape)
    ~prior:(Harness.measure (fun () -> Query.Engine.answers dbm range_q))
    ~planned:(Harness.measure (fun () -> Planner.Engine.answers ~stats:mstats dbm range_q))
    ~note:
      "x >= facts-8 over the int column: sorted-postings range scan vs \
       the prior plan's full scan + selection; evaluator omitted (adom \
       sweep infeasible at this scale)"
    ~phases:
      (Harness.phase_breakdown (fun () ->
           ignore (Planner.Engine.answers_spanned ~stats:mstats dbm range_q)))
    ();
  (* open union: two conflict cliques by probe — the prior route would
     fall back to the evaluator, infeasible here, so the compiled plan
     stands alone (cross-checked by cardinality: 2 cliques of [width]) *)
  let union_q =
    let probe g =
      Query.Ast.Atom
        ( "R",
          [ const (Relational.Value.Int g); Query.Ast.Var "x"; Query.Ast.Var "y" ]
        )
    in
    Query.Ast.Or (probe 5, probe 6)
  in
  if not (Planner.Engine.planned ~stats:mstats dbm union_q) then
    failwith "PLAN: open union must be inside the widened fragment";
  if List.length (snd (Planner.Engine.answers ~stats:mstats dbm union_q)) <> 2 * width then
    failwith "PLAN union: wrong cardinality";
  add
    ~name:("union-open/" ^ mshape)
    ~planned:(Harness.measure (fun () -> Planner.Engine.answers ~stats:mstats dbm union_q))
    ~note:
      "open disjunction answered as a union of two index probes; both \
       prior routes (syntactic plan, evaluator) are unsupported or \
       infeasible at this scale"
    ~phases:
      (Harness.phase_breakdown (fun () ->
           ignore (Planner.Engine.answers_spanned ~stats:mstats dbm union_q)))
    ();
  Harness.table
    ~header:[ "query"; "evaluator"; "prior plan"; "planned"; "speedup" ]
    (List.rev !rows);
  Harness.note
    "speedup = best available baseline / compiled plan; '-' marks routes";
  Harness.note
    "that cannot run the query (outside their fragment or infeasible).";
  Harness.note "Written to BENCH_plan.json."

(* Before/after microbenchmarks for the packed-bitset Vset. The "before"
   side is [Baseline]: the seed's kernels kept verbatim over
   [Set.Make (Int)], measured in the same run and on the same instances,
   so BENCH_vset.json records an honest speedup. Each pair also
   cross-checks that both sides compute the same result. *)
let vset_bench () =
  Harness.section "VSET"
    "bitset-backed Vset vs the tree-backed (Set.Make(Int)) seed kernels";
  let rows = ref [] in
  let bench ~name ~check baseline bitset =
    if not (check ()) then
      failwith (Printf.sprintf "VSET %s: baseline and bitset disagree" name);
    let tb = Harness.measure baseline in
    let ta = Harness.measure bitset in
    Harness.record_comparison ~name ~baseline:tb ~bitset:ta;
    rows :=
      [ name; Harness.time_cell tb; Harness.time_cell ta;
        Printf.sprintf "x%.1f" (tb /. ta) ]
      :: !rows
  in
  (* 1. MIS enumeration on the n=16 ladder (2^16 repairs, 32 vertices). *)
  let lad16, _ = ladder_case 16 in
  let g16 = Conflict.graph lad16 in
  let b16 = Baseline.of_undirected g16 in
  bench ~name:"mis/ladder-n16"
    ~check:(fun () -> Baseline.mis_count b16 = Graphs.Mis.count g16)
    (fun () -> Baseline.mis_count b16)
    (fun () -> Graphs.Mis.count g16);
  (* 2. MIS enumeration on a clustered instance: k disjoint 4-cliques
     have 4^k repairs, so the size is kept small enough to enumerate
     (n=32 tuples -> 65536 repairs). *)
  let n_clu = sz 32 16 in
  let cclu, _ = cluster_case n_clu in
  let gclu = Conflict.graph cclu in
  let bclu = Baseline.of_undirected gclu in
  bench ~name:(Printf.sprintf "mis/cluster-n%d" n_clu)
    ~check:(fun () -> Baseline.mis_count bclu = Graphs.Mis.count gclu)
    (fun () -> Baseline.mis_count bclu)
    (fun () -> Graphs.Mis.count gclu);
  (* 3. G-Rep filtering on the ladder: enumerate 2^n repairs and keep
     the ≪-maximal ones (pairwise domination tests). *)
  let n_grep = sz 10 8 in
  let ladg, _ = ladder_case n_grep in
  let rng = Prng.create 42 in
  let pg = Generator.random_priority rng ~density:0.5 ladg in
  let gg = Conflict.graph ladg in
  let bg = Baseline.of_undirected gg in
  let dominates y x = Priority.dominates pg y x in
  bench ~name:(Printf.sprintf "grep-filter/ladder-n%d" n_grep)
    ~check:(fun () ->
      List.length (Baseline.g_rep dominates bg)
      = List.length (Family.repairs Family.G ladg pg))
    (fun () -> ignore (Baseline.g_rep dominates bg))
    (fun () -> ignore (Family.repairs Family.G ladg pg));
  (* 4. Ground CQA on the 256-tuple cluster instance: the clause kernel
     (demand satisfiability over the conflict graph) on a demand touching
     every cluster — one fact required in each even cluster, the whole of
     each odd cluster forbidden except one escape tuple. *)
  let c256, _ = cluster_case 256 in
  let g256 = Conflict.graph c256 in
  let b256 = Baseline.of_undirected g256 in
  let required = ref Vset.empty and forbidden = ref Vset.empty in
  for k = 0 to 31 do
    required := Vset.add (8 * k) !required;
    (* odd cluster at 8k+4..8k+7: forbid three, leave 8k+7 as blocker *)
    for j = 4 to 6 do
      forbidden := Vset.add ((8 * k) + j) !forbidden
    done
  done;
  let demand =
    { Core.Ground.required = !required; forbidden = !forbidden }
  in
  let req_t = Baseline.of_vset !required
  and forb_t = Baseline.of_vset !forbidden in
  bench ~name:"ground-cqa/cluster-n256"
    ~check:(fun () ->
      Baseline.demand_satisfiable b256 ~required:req_t ~forbidden:forb_t
      = Cqa.demand_satisfiable c256 demand)
    (fun () ->
      ignore
        (Baseline.demand_satisfiable b256 ~required:req_t ~forbidden:forb_t))
    (fun () -> ignore (Cqa.demand_satisfiable c256 demand));
  Harness.table
    ~header:[ "kernel"; "tree (seed)"; "bitset"; "speedup" ]
    (List.rev !rows);
  Harness.note
    "tree = the seed's Set.Make(Int) kernels, re-measured in this run;";
  Harness.note
    "bitset = the live Vset. Written to BENCH_vset.json."

(* --- INTERN: interned fact-id substrate vs the boxed-value seed --------------------- *)

(* Before/after for this PR's tuple-identity layer. The "before" side is
   [Baseline_intern]: the seed's boxed values, boxed tuple arrays and
   comparison-ordered tuple maps, driving the same downstream kernels
   (the bitset graph constructor, the live [Cqa.demand_satisfiable]) —
   so the measured difference is the identity layer alone, not PR 1's
   bitset win. Two kernels per workload:

   - conflict-build: the full conflict-graph construction. Baseline =
     tuple-map index build + per-FD boxed-key grouping + group index
     re-projection (the seed pipeline). Interned = [Conflict.build],
     whose relation owns its hash index and per-column postings (built
     once per relation — sharing the index with the store IS the
     refactor, so the interned side is measured in that steady state).

   - ground-route: CQA clause certainty with the clause structures
     prepared outside the timers on both sides. Each run resolves every
     clause's facts to vertex ids (boxed map lookups vs interned hash
     index) and calls the shared demand kernel, with no early exit —
     the regime of a Certainly_true verdict, where the CNF sweep must
     exhaust every clause.

   Workloads are the paper's two instance shapes: the running example's
   key-violated employee table (name-heavy, Figure 2's Mgr scaled up)
   and the Figure 1 ladder over named keys; an integer-valued cluster
   instance rides along to show the win without string comparisons.
   Written to BENCH_intern.json. *)

(* the running example's shape at scale: a name-keyed employee table
   where every key group of [width] disagrees on the dependent columns *)
let mgr_clusters ~groups ~width =
  let schema =
    Relational.Schema.make "Mgr"
      [
        ("Name", Relational.Schema.TName);
        ("Dept", Relational.Schema.TName);
        ("Salary", Relational.Schema.TInt);
        ("Reports", Relational.Schema.TInt);
      ]
  in
  let rows =
    List.concat
      (List.init groups (fun g ->
           List.init width (fun k ->
               [
                 Relational.Value.Name (Printf.sprintf "employee-%d" g);
                 Relational.Value.Name (Printf.sprintf "dept-%d" k);
                 Relational.Value.Int (10000 * (k + 1));
                 Relational.Value.Int k;
               ])))
  in
  ( Relational.Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "Name" ] [ "Dept"; "Salary"; "Reports" ] ] )

(* Figure 1's ladder r_n with named rungs: R('rung-i', 0) / R('rung-i', 1)
   conflict under A -> B *)
let name_ladder rungs =
  let schema =
    Relational.Schema.make "R"
      [ ("A", Relational.Schema.TName); ("B", Relational.Schema.TInt) ]
  in
  let rows =
    List.concat
      (List.init rungs (fun i ->
           [
             [
               Relational.Value.Name (Printf.sprintf "rung-%d" i);
               Relational.Value.Int 0;
             ];
             [
               Relational.Value.Name (Printf.sprintf "rung-%d" i);
               Relational.Value.Int 1;
             ];
           ]))
  in
  ( Relational.Relation.of_rows schema rows,
    [ Constraints.Fd.make [ "A" ] [ "B" ] ] )

let intern_bench () =
  Harness.section "INTERN"
    "interned fact-id substrate vs the boxed-value seed identity layer";
  let rows = ref [] in
  (* a single-core VM's scheduling noise swamps 5-sample medians at these
     sizes, so give each side a longer budget and more samples *)
  let min_time = if !Harness.quick then None else Some 0.08 in
  let samples = if !Harness.quick then None else Some 9 in
  let bench ~name ~note ~check baseline interned =
    if not (check ()) then
      failwith (Printf.sprintf "INTERN %s: baseline and interned disagree" name);
    let tb = Harness.measure ?min_time ?samples baseline in
    let ta = Harness.measure ?min_time ?samples interned in
    Harness.record_intern ~name ~baseline:tb ~interned:ta ~note;
    rows :=
      [ name; Harness.time_cell tb; Harness.time_cell ta;
        Printf.sprintf "x%.1f" (tb /. ta) ]
      :: !rows
  in
  let fd_positions rel fds =
    let schema = Relational.Relation.schema rel in
    List.map
      (fun fd ->
        ( Relational.Schema.positions_exn schema (Constraints.Fd.lhs fd),
          Relational.Schema.positions_exn schema (Constraints.Fd.rhs fd) ))
      fds
  in
  (* ground clauses off the conflict structure: each clause is a
     positive conjunctive demand — "are these 32 stride-separated facts
     jointly in some repair" — the canonical ground-CQA clause shape.
     The facts come from distinct conflict groups, so the shared demand
     kernel does a genuine 32-vertex independence check while per-fact
     vertex resolution stays the dominant per-clause work *)
  let clauses_of c ~stride =
    let n = Conflict.size c in
    let singles = ref [] in
    let v = ref 0 in
    while !v < n do
      if not (Vset.is_empty (Conflict.neighbors c !v)) then
        singles := Conflict.tuple c !v :: !singles;
      v := !v + stride
    done;
    let rec chunk = function
      | [] -> []
      | xs ->
        let rec take k = function
          | x :: rest when k > 0 ->
            let taken, dropped = take (k - 1) rest in
            (x :: taken, dropped)
          | rest -> ([], rest)
        in
        let req, rest = take 32 xs in
        (req, []) :: chunk rest
    in
    chunk (List.rev !singles)
  in
  (* live-side clause resolution, mirroring Ground.of_clause over the
     interned index *)
  let live_clause_sat c (required, forbidden) =
    let rec pos acc = function
      | [] -> Some acc
      | t :: rest -> (
        match Conflict.index c t with
        | None -> None
        | Some v -> pos (v :: acc) rest)
    in
    match pos [] required with
    | None -> false
    | Some req ->
      let forb = List.filter_map (Conflict.index c) forbidden in
      Cqa.demand_satisfiable c
        {
          Core.Ground.required = Vset.of_list req;
          forbidden = Vset.of_list forb;
        }
  in
  let baseline_clause_sat c index clause =
    let breq, bforb = clause in
    match Baseline_intern.resolve_clause index ~required:breq ~forbidden:bforb with
    | None -> false
    | Some d -> Cqa.demand_satisfiable c d
  in
  let workload ~shape c rel fds ~stride =
    let pos = fd_positions rel fds in
    let boxed = Baseline_intern.box_relation rel in
    bench
      ~name:(Printf.sprintf "conflict-build/%s" shape)
      ~note:
        "full conflict-graph construction: boxed tuple-map index + per-FD \
         boxed-key grouping vs the relation-owned interned index"
      ~check:(fun () ->
        let b = Baseline_intern.build ~fd_positions:pos boxed in
        Graphs.Undirected.edge_count b.Baseline_intern.graph
        = Graphs.Undirected.edge_count (Conflict.graph c)
        && Graphs.Undirected.size b.Baseline_intern.graph = Conflict.size c)
      (fun () -> ignore (Baseline_intern.build ~fd_positions:pos boxed))
      (fun () -> ignore (Conflict.build fds rel));
    let clauses = clauses_of c ~stride in
    let boxed_clauses =
      List.map
        (fun (req, forb) ->
          ( List.map Baseline_intern.box_tuple req,
            List.map Baseline_intern.box_tuple forb ))
        clauses
    in
    let bidx = (Baseline_intern.build ~fd_positions:pos boxed).Baseline_intern.index in
    let count_live () =
      List.fold_left
        (fun acc cl -> if live_clause_sat c cl then acc + 1 else acc)
        0 clauses
    in
    let count_baseline () =
      List.fold_left
        (fun acc cl -> if baseline_clause_sat c bidx cl then acc + 1 else acc)
        0 boxed_clauses
    in
    bench
      ~name:(Printf.sprintf "ground-route/%s/%d-clauses" shape (List.length clauses))
      ~note:
        "exhaustive CNF clause sweep: per-fact vertex resolution through the \
         boxed tuple map vs the interned hash index; demand kernel shared"
      ~check:(fun () -> count_baseline () = count_live ())
      count_baseline count_live
  in
  (* workload A: the running example's employee table, scaled *)
  let g_mgr = sz 512 16 in
  let rel_m, fds_m = mgr_clusters ~groups:g_mgr ~width:4 in
  let c_mgr = Conflict.build fds_m rel_m in
  workload
    ~shape:(Printf.sprintf "mgr-clusters-n%d" (4 * g_mgr))
    c_mgr rel_m fds_m ~stride:4;
  (* workload B: the Figure 1 ladder over named rungs *)
  let rungs = sz 512 32 in
  let rel_l, fds_l = name_ladder rungs in
  let c_lad = Conflict.build fds_l rel_l in
  workload
    ~shape:(Printf.sprintf "name-ladder-n%d" (2 * rungs))
    c_lad rel_l fds_l ~stride:2;
  (* workload C: integer-valued key clusters — the win without strings *)
  let n_clu = sz 2048 64 in
  let rel_c, fds_c = Generator.key_clusters ~groups:(n_clu / 4) ~width:4 in
  let c_clu = Conflict.build fds_c rel_c in
  workload ~shape:(Printf.sprintf "int-clusters-n%d" n_clu) c_clu rel_c fds_c
    ~stride:4;
  Harness.table
    ~header:[ "kernel"; "boxed (seed)"; "interned"; "speedup" ]
    (List.rev !rows);
  Harness.note
    "boxed = the seed identity layer (variant values, tuple-ordered maps),";
  Harness.note
    "re-measured in this run against the same downstream kernels. Written";
  Harness.note "to BENCH_intern.json."

(* --- Bechamel microbenchmarks ------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let c800, p800 = cluster_case 800 in
  let cand800 = Winnow.clean c800 p800 in
  let lad12, pl12 = ladder_case 12 in
  let cand12 = Winnow.clean lad12 pl12 in
  let q800 = cluster_ground_query c800 in
  let q12 = ladder_ground_query lad12 in
  let lad10, pl10 = ladder_case 10 in
  let q10 = ladder_ground_query lad10 in
  let rel800, fds800 = Generator.key_clusters ~groups:200 ~width:4 in
  let h100 = hyper_instance 100 in
  let qh =
    let t = Core.Hyper.tuple h100 0 in
    Query.Ast.Atom
      ("R", List.map (fun v -> Query.Ast.Const v) (Relational.Tuple.values t))
  in
  let stage = Staged.stage in
  [
    Test.make ~name:"fig1/enumerate-ladder-n12" (stage (fun () -> Repair.count lad12));
    Test.make ~name:"fig5/check-Rep-n800"
      (stage (fun () -> Family.check Family.Rep c800 p800 cand800));
    Test.make ~name:"fig5/check-L-n800"
      (stage (fun () -> Family.check Family.L c800 p800 cand800));
    Test.make ~name:"fig5/check-S-n800"
      (stage (fun () -> Family.check Family.S c800 p800 cand800));
    Test.make ~name:"fig5/check-C-n800"
      (stage (fun () -> Family.check Family.C c800 p800 cand800));
    Test.make ~name:"fig5/check-G-ladder-n12"
      (stage (fun () -> Family.check Family.G lad12 pl12 cand12));
    Test.make ~name:"fig5/ground-cqa-n800"
      (stage (fun () -> Result.get_ok (Cqa.ground_certainty c800 q800)));
    Test.make ~name:"fig5/naive-cqa-ladder-n12"
      (stage (fun () -> Cqa.certainty Family.Rep lad12 pl12 q12));
    Test.make ~name:"fig5/preferred-cqa-C-ladder-n10"
      (stage (fun () -> Cqa.certainty Family.C lad10 pl10 q10));
    Test.make ~name:"alg1/clean-n800" (stage (fun () -> Winnow.clean c800 p800));
    Test.make ~name:"substrate/conflict-build-n800"
      (stage (fun () -> Conflict.build fds800 rel800));
    Test.make ~name:"ext/aggregate-closed-n800"
      (stage (fun () ->
           Result.get_ok (Core.Aggregate.range c800 (Core.Aggregate.Sum "B"))));
    Test.make ~name:"ext/hyper-cqa-n100"
      (stage (fun () -> Result.get_ok (Core.Hyper.ground_certainty h100 qh)));
    (* the query engine ablation: active-domain evaluation vs the
       algebraic planner on one conjunctive self-join that is false for
       data reasons (no two tuples share A and B), so neither engine can
       short-circuit. The evaluator is quartic in the active domain; only
       the planner is usable at n=800. *)
    (let rel, _ = Generator.key_clusters ~groups:6 ~width:4 in
     let db = Relational.Database.of_relations [ rel ] in
     let qj = parse "exists a, b, v, w. R(a, b, v) and R(a, b, w) and v < w" in
     Test.make ~name:"engine/conjunctive-eval-n24"
       (stage (fun () -> Query.Eval.holds db qj)));
    (let rel, _ = Generator.key_clusters ~groups:6 ~width:4 in
     let db = Relational.Database.of_relations [ rel ] in
     let qj = parse "exists a, b, v, w. R(a, b, v) and R(a, b, w) and v < w" in
     Test.make ~name:"engine/conjunctive-planned-n24"
       (stage (fun () -> Query.Engine.holds db qj)));
    (let rel = Conflict.relation c800 in
     let db = Relational.Database.of_relations [ rel ] in
     let qj = parse "exists a, b, v, w. R(a, b, v) and R(a, b, w) and v < w" in
     Test.make ~name:"engine/conjunctive-planned-n800"
       (stage (fun () -> Query.Engine.holds db qj)));
    Test.make ~name:"factor/ground-cqa-G-n800"
      (let d = Core.Decompose.make c800 p800 in
       stage (fun () ->
           Result.get_ok (Core.Decompose.certainty_ground Family.G d q800)));
  ]

let run_bechamel () =
  let open Bechamel in
  Harness.section "MICRO" "Bechamel microbenchmarks (one per experiment)";
  let tests =
    Test.make_grouped ~name:"prefrepair" ~fmt:"%s/%s" (bechamel_suite ())
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Toolkit.Instance.[ monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Bechamel.Measure.run merged
  in
  Notty_unix.output_image Notty_unix.(eol img)

let () =
  let only = ref "" in
  Arg.parse
    [
      ( "--quick",
        Arg.Set Harness.quick,
        " smoke mode: small sizes, minimal calibration, no Bechamel \
         (wired into `dune runtest`)" );
      ( "--only",
        Arg.Set_string only,
        " run a single section by name (e.g. STORE) and write only the \
         JSON that section feeds — useful for re-measuring one section \
         without a full run" );
    ]
    (fun a -> raise (Arg.Bad ("unknown argument: " ^ a)))
    "main.exe [--quick] [--only SECTION]";
  let want name = !only = "" || String.uppercase_ascii !only = name in
  Format.printf
    "prefrepair experiment harness — regenerates the paper's figures%s@."
    (if !Harness.quick then " (--quick smoke mode)" else "");
  if want "FIG1" then fig1 ();
  if want "FIG2-4" then fig234 ();
  if want "FIG5-CHECK" then fig5_check ();
  if want "FIG5-CQA" then fig5_cqa ();
  if want "FACTOR" then factorized ();
  if want "DECOMP" then decomp_bench ();
  if want "DELTA" then delta_bench ();
  if want "ALG1" then alg1 ();
  if want "QUALITY" then quality ();
  if want "EXT-AGG" then ext_aggregate ();
  if want "EXT-HYPER" then ext_hyper ();
  if want "HYPER" then hyper_bench ();
  if want "OBS" then obs_bench ();
  if want "PAR" then par_bench ();
  if want "STORE" then store_bench ();
  if want "PLAN" then plan_bench ();
  if want "VSET" then vset_bench ();
  if want "INTERN" then intern_bench ();
  if want "VSET" then begin
    Harness.write_comparisons_json "BENCH_vset.json";
    Format.printf "@.  BENCH_vset.json written.@."
  end;
  if want "INTERN" then begin
    Harness.write_intern_json "BENCH_intern.json";
    Format.printf "  BENCH_intern.json written.@."
  end;
  if want "DECOMP" then begin
    Harness.write_decompose_json "BENCH_decompose.json";
    Format.printf "  BENCH_decompose.json written.@."
  end;
  if want "DELTA" then begin
    Harness.write_delta_json "BENCH_delta.json";
    Format.printf "  BENCH_delta.json written.@."
  end;
  if want "OBS" then begin
    Harness.write_obs_json "BENCH_obs.json";
    Format.printf "  BENCH_obs.json written.@."
  end;
  if want "PAR" then begin
    Harness.write_parallel_json "BENCH_parallel.json";
    Format.printf "  BENCH_parallel.json written.@."
  end;
  if want "STORE" then begin
    Harness.write_store_json "BENCH_store.json";
    Format.printf "  BENCH_store.json written.@."
  end;
  if want "PLAN" then begin
    Harness.write_plan_json "BENCH_plan.json";
    Format.printf "  BENCH_plan.json written.@."
  end;
  if want "HYPER" then begin
    Harness.write_hyper_json "BENCH_hyper.json";
    Format.printf "  BENCH_hyper.json written.@."
  end;
  if (not !Harness.quick) && !only = "" then run_bechamel ();
  Format.printf "@.done.@."
