(** Formula transformations.

    The PTIME consistent-answer algorithm for quantifier-free ground
    queries (paper Figure 5, first row, via [6, 7]) works on the DNF of
    the {e negated} query: each disjunct is a demand "these facts in, those
    facts out" to be satisfied by some repair. This module supplies
    negation normal form and ground DNF. *)

open Relational

val nnf : Ast.t -> Ast.t
(** Eliminates [Implies], pushes [Not] down to atoms and flips
    comparisons; on literals, [Not (Atom _)] remains as the negative
    literal form. Logically equivalent to the input. *)

val standardize_apart : Ast.t -> Ast.t
(** Renames bound variables so that no two binders share a name and no
    bound name collides with a free one. Alpha-equivalent to the input;
    free variables are untouched. The cost-based planner's normalization
    (scope extrusion, DNF splitting) requires this form. *)

type ground_clause = {
  positive : (string * Tuple.t) list;  (** facts required present *)
  negative : (string * Tuple.t) list;  (** facts required absent *)
}
(** One DNF disjunct over ground facts, comparisons already decided.
    Fact lists are sorted and duplicate-free. *)

val ground_dnf : Ast.t -> (ground_clause list, string) result
(** DNF of a {e ground} formula (no variables, no quantifiers):
    the formula holds in an instance iff some clause does, where a clause
    holds iff all [positive] facts are in and all [negative] facts out.
    Contradictory clauses (same fact both polarities) are dropped; a
    tautologous formula yields the single empty clause. [Error] when the
    formula is not ground. *)

val pp_ground_clause : Format.formatter -> ground_clause -> unit
