open Relational

let rec nnf = function
  | (Ast.True | Ast.False | Ast.Atom _ | Ast.Cmp _) as f -> f
  | Ast.And (f, g) -> Ast.And (nnf f, nnf g)
  | Ast.Or (f, g) -> Ast.Or (nnf f, nnf g)
  | Ast.Implies (f, g) -> Ast.Or (nnf (Ast.Not f), nnf g)
  | Ast.Exists (xs, f) -> Ast.Exists (xs, nnf f)
  | Ast.Forall (xs, f) -> Ast.Forall (xs, nnf f)
  | Ast.Not f -> (
    match f with
    | Ast.True -> Ast.False
    | Ast.False -> Ast.True
    | Ast.Atom _ -> Ast.Not f
    | Ast.Cmp (op, a, b) -> Ast.Cmp (Ast.negate_cmp op, a, b)
    | Ast.Not g -> nnf g
    | Ast.And (g, h) -> Ast.Or (nnf (Ast.Not g), nnf (Ast.Not h))
    | Ast.Or (g, h) -> Ast.And (nnf (Ast.Not g), nnf (Ast.Not h))
    | Ast.Implies (g, h) -> Ast.And (nnf g, nnf (Ast.Not h))
    | Ast.Exists (xs, g) -> Ast.Forall (xs, nnf (Ast.Not g))
    | Ast.Forall (xs, g) -> Ast.Exists (xs, nnf (Ast.Not g)))

(* Rename every bound variable to a name unused anywhere else in the
   formula, so distinct binders never share a name and existential scopes
   can be flattened without capture — the cost-based planner's
   normalization relies on this. Free variables keep their names. *)
let standardize_apart f =
  let used = Hashtbl.create 16 in
  List.iter
    (fun x -> Hashtbl.replace used x ())
    (let rec all = function
       | Ast.True | Ast.False -> []
       | Ast.Atom (_, ts) ->
         List.filter_map (function Ast.Var x -> Some x | Ast.Const _ -> None) ts
       | Ast.Cmp (_, a, b) ->
         List.filter_map
           (function Ast.Var x -> Some x | Ast.Const _ -> None)
           [ a; b ]
       | Ast.Not g -> all g
       | Ast.And (g, h) | Ast.Or (g, h) | Ast.Implies (g, h) -> all g @ all h
       | Ast.Exists (xs, g) | Ast.Forall (xs, g) -> xs @ all g
     in
     all f);
  let counter = ref 0 in
  let fresh x =
    let rec pick () =
      incr counter;
      let y = Printf.sprintf "%s#%d" x !counter in
      if Hashtbl.mem used y then pick ()
      else begin
        Hashtbl.replace used y ();
        y
      end
    in
    pick ()
  in
  let ren env = function
    | Ast.Const _ as t -> t
    | Ast.Var x as t -> (
      match List.assoc_opt x env with Some y -> Ast.Var y | None -> t)
  in
  let rec go env = function
    | (Ast.True | Ast.False) as g -> g
    | Ast.Atom (r, ts) -> Ast.Atom (r, List.map (ren env) ts)
    | Ast.Cmp (op, a, b) -> Ast.Cmp (op, ren env a, ren env b)
    | Ast.Not g -> Ast.Not (go env g)
    | Ast.And (g, h) -> Ast.And (go env g, go env h)
    | Ast.Or (g, h) -> Ast.Or (go env g, go env h)
    | Ast.Implies (g, h) -> Ast.Implies (go env g, go env h)
    | Ast.Exists (xs, g) ->
      let xs' = List.map fresh xs in
      Ast.Exists (xs', go (List.combine xs xs' @ env) g)
    | Ast.Forall (xs, g) ->
      let xs' = List.map fresh xs in
      Ast.Forall (xs', go (List.combine xs xs' @ env) g)
  in
  go [] f

type ground_clause = {
  positive : (string * Tuple.t) list;
  negative : (string * Tuple.t) list;
}

let fact_compare (r1, t1) (r2, t2) =
  let c = String.compare r1 r2 in
  if c <> 0 then c else Tuple.compare t1 t2

(* Explicit lift of [fact_compare]: tuples carry cached hashes, so the
   polymorphic order would not be the semantic one. *)
let clause_compare c1 c2 =
  let c = List.compare fact_compare c1.positive c2.positive in
  if c <> 0 then c else List.compare fact_compare c1.negative c2.negative

let clause_make positive negative =
  let positive = List.sort_uniq fact_compare positive in
  let negative = List.sort_uniq fact_compare negative in
  let contradictory =
    List.exists (fun f -> List.exists (fun g -> fact_compare f g = 0) negative)
      positive
  in
  if contradictory then None else Some { positive; negative }

let term_value = function
  | Ast.Const v -> Some v
  | Ast.Var _ -> None

(* Decide a ground comparison using the evaluator's semantics. *)
let decide_cmp op a b =
  match (term_value a, term_value b) with
  | Some l, Some r ->
    let both_ints =
      match (l, r) with Value.Int _, Value.Int _ -> true | _, _ -> false
    in
    let truth =
      match op with
      | Ast.Eq -> Value.equal l r
      | Ast.Neq -> not (Value.equal l r)
      | Ast.Lt -> both_ints && Value.compare l r < 0
      | Ast.Gt -> both_ints && Value.compare l r > 0
      | Ast.Leq -> Value.equal l r || (both_ints && Value.compare l r < 0)
      | Ast.Geq -> Value.equal l r || (both_ints && Value.compare l r > 0)
    in
    Some truth
  | _, _ -> None

let ground_atom r ts =
  let values = List.map term_value ts in
  if List.for_all Option.is_some values then
    Some (r, Tuple.make (List.map Option.get values))
  else None

exception Not_ground

(* DNF of an NNF ground formula; clauses are (positive, negative) fact
   lists. Distribution is exponential in the formula size, which is a
   constant in the data-complexity setting. *)
let rec dnf = function
  | Ast.True -> [ ([], []) ]
  | Ast.False -> []
  | Ast.Atom (r, ts) -> (
    match ground_atom r ts with
    | Some fact -> [ ([ fact ], []) ]
    | None -> raise Not_ground)
  | Ast.Not (Ast.Atom (r, ts)) -> (
    match ground_atom r ts with
    | Some fact -> [ ([], [ fact ]) ]
    | None -> raise Not_ground)
  | Ast.Cmp (op, a, b) -> (
    match decide_cmp op a b with
    | Some true -> [ ([], []) ]
    | Some false -> []
    | None -> raise Not_ground)
  | Ast.Or (f, g) -> dnf f @ dnf g
  | Ast.And (f, g) ->
    let left = dnf f and right = dnf g in
    List.concat_map
      (fun (p1, n1) -> List.map (fun (p2, n2) -> (p1 @ p2, n1 @ n2)) right)
      left
  | Ast.Not _ | Ast.Implies _ | Ast.Exists _ | Ast.Forall _ ->
    (* nnf leaves none of these except Not over an atom. *)
    raise Not_ground

let ground_dnf f =
  if not (Ast.is_ground f) then
    Error "ground_dnf: formula has variables or quantifiers"
  else
    try
      let clauses = List.filter_map (fun (p, n) -> clause_make p n) (dnf (nnf f)) in
      Ok (List.sort_uniq clause_compare clauses)
    with Not_ground -> Error "ground_dnf: formula has variables or quantifiers"

let pp_ground_clause ppf c =
  let pp_fact ppf (r, t) = Format.fprintf ppf "%s%a" r Tuple.pp t in
  let pp_neg ppf f = Format.fprintf ppf "not %a" pp_fact f in
  let pp_list pp_item =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
      pp_item
  in
  match (c.positive, c.negative) with
  | [], [] -> Format.pp_print_string ppf "true"
  | pos, [] -> pp_list pp_fact ppf pos
  | [], neg -> pp_list pp_neg ppf neg
  | pos, neg ->
    Format.fprintf ppf "%a and %a" (pp_list pp_fact) pos (pp_list pp_neg) neg
