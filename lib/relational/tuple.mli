(** Tuples.

    A tuple is an immutable vector of values, stored {e packed} (see
    {!Value.pack}) with a hash precomputed at construction: equality is
    an integer-array sweep, hashing is O(1), and projections used as FD
    group keys or join keys can stay in packed form. Tuples are compared
    structurally; the order is the lexicographic lift of
    {!Value.compare}, used for canonical enumeration. *)

type t

val make : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied. *)

val arity : t -> int

val get : t -> int -> Value.t
(** [get t i] is the value of the [i]-th attribute (0-based).
    Raises [Invalid_argument] when out of range. *)

val values : t -> Value.t list

val project : t -> int list -> Value.t list
(** [project t [i; j]] is [[get t i; get t j]] — the paper's t[X]. *)

val agree_on : t -> t -> int list -> bool
(** Whether two tuples coincide on every listed position. *)

val conforms : Schema.t -> t -> bool
(** Arity matches and every value has the attribute's type. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** O(1): cached at construction, consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Prints as [('Mary', 'R&D', 40000, 3)]. *)

(** {2 Packed access}

    The identity currency of {!Relation} and the conflict-graph layer:
    positions read as packed ints (see {!Value.pack}), so group keys and
    join keys are compared and hashed without re-boxing. *)

val packed_get : t -> int -> int
(** [Value.pack (get t i)], without boxing. Raises [Invalid_argument]
    when out of range. *)

val of_packed : int array -> t
(** Builds a tuple directly from packed values (each produced by
    {!Value.pack} in this process — packed name ids are process-local).
    The payloads are blitted into the tuple's single flat block, so the
    argument can be caller-owned scratch. This is the binary snapshot
    loader's constructor: one hash computation, no boxing, no per-value
    dictionary probe. *)

val project_packed : t -> int list -> int list
(** Packed counterpart of {!project}. *)

val sub : t -> int list -> t
(** The projection as a tuple: [sub t [i; j]] has arity 2. *)

val concat : t -> t -> t
(** Concatenation (join output row), entirely in packed form. *)
