module Tmap = Map.Make (Tuple)

type info = { source : string option; timestamp : int option }

type t = info Tmap.t

let empty = Tmap.empty
let info ?source ?timestamp () = { source; timestamp }
let no_info = { source = None; timestamp = None }
let set m t i = Tmap.add t i m
let get m t = Option.value (Tmap.find_opt t m) ~default:no_info
let source m t = (get m t).source
let timestamp m t = (get m t).timestamp
let of_list l = List.fold_left (fun m (t, i) -> set m t i) empty l
let bindings m = Tmap.bindings m

let tag_source src r m =
  Relation.fold
    (fun t m ->
      let existing = get m t in
      set m t { existing with source = Some src })
    r m

let pp_info ppf i =
  let pp_opt name pp ppf = function
    | None -> ()
    | Some v -> Format.fprintf ppf "%s=%a " name pp v
  in
  Format.fprintf ppf "@[%a%a@]"
    (pp_opt "source" Format.pp_print_string)
    i.source
    (pp_opt "timestamp" Format.pp_print_int)
    i.timestamp
