(** Relation instances.

    An instance is a finite set of tuples over a schema (set semantics, as
    in the paper). Insertion validates tuples against the schema, so a
    well-typed instance is an invariant of the type.

    The representation is an id-addressed fact store: tuples live in an
    insertion-ordered array, and a tuple's slot in that array is its
    {e fact id} — the identity the rest of the repository speaks. Vertex
    ids of the conflict graph built from an instance are exactly its fact
    ids. Deleting a tuple tombstones its slot (the id is never reused),
    which is what keeps ids stable under the incremental-update path
    ({!patch}). Membership is a hash-index probe, and per-column postings
    (packed value -> fact ids, see {!matching}) answer FD grouping and
    selection queries without scanning. *)

type t

val empty : Schema.t -> t

val of_tuples : Schema.t -> Tuple.t list -> t
(** Duplicates are collapsed (first occurrence wins the fact id). Raises
    [Invalid_argument] when a tuple does not conform to the schema. *)

val of_rows : Schema.t -> Value.t list list -> t
(** Convenience: each row becomes a tuple. *)

val schema : t -> Schema.t

val cardinality : t -> int
(** Number of live tuples. O(1). *)

val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> t
(** Appends a fresh fact id when the tuple is new; no-op otherwise. *)

val remove : t -> Tuple.t -> t
(** Tombstones the tuple's slot; the fact array is shared, not copied. *)

val tuples : t -> Tuple.t list
(** In increasing {!Tuple.compare} order (canonical). *)

val tuple_array : t -> Tuple.t array
(** The live tuples in fact-id order: the index of a tuple in this array
    is its conflict-graph vertex id {e when the instance is dense} (no
    tuple was ever removed), which holds for every freshly built
    instance. On a dense instance this is the internal fact array, O(1) —
    treat it as read-only. On a tombstoned instance a fresh compacted
    array is returned and positions are {e not} fact ids; use {!fact} and
    {!live_ids} there. *)

val union : t -> t -> t
(** Set union; schemas must be equal ([Invalid_argument] otherwise).
    Models the source integration of Example 1, r = s1 ∪ s2 ∪ s3.
    Fact ids are renumbered: left operand first, then new right tuples. *)

val inter : t -> t -> t
(** Keeps the left operand's fact ids (a live-set restriction). *)

val diff : t -> t -> t
(** Keeps the left operand's fact ids (a live-set restriction). *)

val subset : t -> t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Order on the canonical tuple enumeration, independent of fact ids. *)

val filter : (Tuple.t -> bool) -> t -> t
(** Live-set restriction: surviving tuples keep their fact ids. *)

val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** In fact-id order, like {!iter}. *)

val iter : (Tuple.t -> unit) -> t -> unit

val restrict : t -> Tuple.t list -> t
(** Keep only the listed tuples (used to materialize a repair). Builds a
    fresh dense instance; ids are renumbered in list order. *)

val active_domain : t -> Value.t list
(** All values occurring in the instance, de-duplicated and sorted. *)

val pp : Format.formatter -> t -> unit

(** {2 Fact ids}

    The tuple-identity substrate: stable small ints shared with the
    conflict graph, ground demands, and the incremental-update engine. *)

val slot_count : t -> int
(** Number of slots ever allocated (live + tombstoned). Fact ids range
    over [0, slot_count); {!cardinality} of them are live. *)

val live_ids : t -> Graphs.Vset.t
(** The set of live fact ids. *)

val fact : t -> int -> Tuple.t
(** The tuple at a fact id, whether live or tombstoned (a tombstoned
    slot remembers its tuple, which the undo path relies on). Raises
    [Invalid_argument] on an unallocated id. *)

val find : t -> Tuple.t -> int option
(** The live fact id of a tuple, if present. O(1) expected. *)

val find_exn : t -> Tuple.t -> int
(** Like {!find}; raises [Invalid_argument] with context otherwise. *)

val restrict_ids : t -> Graphs.Vset.t -> t
(** Live-set restriction by fact ids; must be a subset of {!live_ids}. *)

val slots : t -> (Tuple.t * bool) array
(** Every slot ever allocated, in fact-id order, live-flagged: the full
    serialization view of the store (tombstoned slots included, so a
    reload reproduces fact ids {e and} the slot counter exactly). The
    array is fresh; mutating it does not affect the relation. *)

val of_slots : ?checked:bool -> Schema.t -> (Tuple.t * bool) array -> t
(** Inverse of {!slots}: rebuilds the instance with slot [i] holding the
    [i]-th tuple, live iff flagged. Sugar over {!of_facts}. *)

val of_facts : ?checked:bool -> Schema.t -> Tuple.t array -> Graphs.Vset.t -> t
(** The bulk-load constructor: slot [i] holds [facts.(i)], live iff
    [i ∈ live]. The membership index is built lazily on the first
    {!find} from the tuples' cached hashes (no value re-hashing) and
    postings stay lazy, so construction is O(slots). With [checked]
    (the default) raises [Invalid_argument] on a tuple that does not
    conform to the schema or on two live slots holding equal tuples;
    [~checked:false] skips both scans and is reserved for input whose
    invariants are already attested — the CRC-verified snapshot path,
    where they held at encode time and the checksum rules out change
    since. Always raises on a live id with no slot. The caller must
    not mutate [facts] afterwards. *)

val prepare_index : t -> unit
(** Force the postings of {e every} column now (one ["relation.index"]
    span per column built). Once built they are maintained incrementally
    by {!patch}. Prefer {!prepare_column} when only some columns are
    grouped on: a postings map over a high-cardinality column that is
    never probed (unique ids, payload attributes) costs more to build
    than all the useful maps together. *)

val prepare_column : t -> int -> unit
(** Force the postings of one column (span ["relation.index"] with a
    ["column"] argument). The delta path ({!Conflict.build}) forces
    exactly the FD lhs columns it groups on. Forcing mutates the lazy
    memo in place, so do it on the submitting domain before sharing the
    relation with parallel workers. *)

val matching : t -> int -> int -> Graphs.Vset.t
(** [matching r col packed] is the set of live fact ids whose tuple has
    packed value [packed] (see {!Value.pack}) in column [col]: a postings
    probe, no scan. The column's postings are built lazily on first use
    (span ["relation.index"]) and maintained incrementally by {!patch}. *)

val iter_groups : t -> int -> (int -> Graphs.Vset.t -> unit) -> unit
(** Iterate the postings of one column: [f packed ids] for every distinct
    packed value. This is the FD group-by kernel — for a single-attribute
    FD lhs the groups are exactly the postings entries. *)

val postings_ready : t -> int -> bool
(** Whether the column's postings are already materialized. The planner's
    quick statistics consult only ready columns — probing this never
    forces a build. Out-of-range columns are simply [false]. *)

val groups : t -> int -> (int * Graphs.Vset.t) Seq.t
(** The postings of one column as a sequence of [(packed, ids)] groups in
    increasing packed order. Packing is strictly monotone on ints, so on
    an int-typed column this is the numeric order — the sorted-posting
    merge join walks two of these sequences in lockstep. Forces the
    column (span ["relation.index"]). *)

val group_count : t -> int -> int
(** Number of distinct live values in the column (the exact per-column
    distinct count). Forces the column's postings; O(distinct) on a
    built column. *)

val group_bounds : t -> int -> (int * int) option
(** Smallest and largest packed value in the column, [None] when empty.
    On an int-typed column these are the numeric min and max (packed).
    Forces the column's postings; O(log distinct) on a built column. *)

val matching_range : t -> int -> lo:(int * bool) option -> hi:(int * bool) option -> Graphs.Vset.t
(** [matching_range r col ~lo ~hi] is the set of live fact ids whose
    packed value in [col] lies between the bounds — each bound a packed
    value plus an inclusive flag, [None] for unbounded. Only meaningful
    on int-typed columns (packed order = numeric order there); a range
    scan, O(selected + groups in range), never a full-instance pass once
    the postings exist. *)

val patch :
  t -> delete:Tuple.t list -> insert:Tuple.t list -> t * int list * int list
(** [patch r ~delete ~insert] applies a batched update and returns
    [(r', deleted_ids, inserted_ids)] with ids in the order of the input
    lists. Deleted slots are tombstoned (ids never reused); inserted
    tuples get fresh ids [slot_count r + k] in list order — the contract
    {!Conflict.apply_delta} builds on. Raises [Invalid_argument] when a
    deleted tuple is absent, an inserted tuple is already present (after
    deletions) or does not conform, or either list repeats a tuple;
    validation happens before any change is visible. *)

(** {2 Bulk construction}

    Deduplicating accumulator used by [of_tuples], [union] and the
    algebra evaluator: amortized O(1) insertion against a hash table,
    turning what would be quadratic repeated-[add] loops into linear
    builds. *)
module Builder : sig
  type relation := t
  type t

  val create : ?size_hint:int -> Schema.t -> t

  val add : t -> Tuple.t -> unit
  (** Deduplicating; validates against the schema. *)

  val add_row : t -> Value.t list -> unit
  val mem : t -> Tuple.t -> bool

  val size : t -> int
  (** Number of distinct tuples added so far. *)

  val finish : t -> relation
  (** Fact ids are assigned in first-insertion order. *)
end
