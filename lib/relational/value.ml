type t = Name of string | Int of int

let equal a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Name _, Int _ | Int _, Name _ -> false

let compare a b =
  match (a, b) with
  | Name x, Name y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Name _, Int _ -> -1
  | Int _, Name _ -> 1

let lt a b =
  match (a, b) with
  | Int x, Int y -> Some (x < y)
  | Name _, _ | _, Name _ -> None

let ty_matches ty v =
  match (ty, v) with
  | `Name, Name _ | `Int, Int _ -> true
  | `Name, Int _ | `Int, Name _ -> false

let name s = Name s
let int n = Int n
let as_int = function Int n -> Some n | Name _ -> None
let as_name = function Name s -> Some s | Int _ -> None

let pp ppf = function
  | Name s -> Format.fprintf ppf "'%s'" s
  | Int n -> Format.pp_print_int ppf n

let to_string = function Name s -> s | Int n -> string_of_int n

let of_string ty s =
  match ty with
  | `Name -> Ok (Name s)
  | `Int -> (
    match int_of_string_opt s with
    | Some n -> Ok (Int n)
    | None -> Error (Printf.sprintf "expected an integer, got %S" s))

(* --- packed immediate form ---------------------------------------------- *)

(* One tagged OCaml int: bit 0 distinguishes the domains, the payload is
   either the interned name id or the number itself. Packing is the only
   place strings are touched; equality and hashing on the packed form are
   plain integer operations. *)

let pack = function
  | Int n -> (n lsl 1) lor 1
  | Name s -> Intern.id_of_string s lsl 1

let pack_int n = (n lsl 1) lor 1

let unpack p =
  if p land 1 = 1 then Int (p asr 1) else Name (Intern.string_of_id (p lsr 1))

let packed_is_int p = p land 1 = 1

let packed_ty p : [ `Name | `Int ] = if p land 1 = 1 then `Int else `Name

let equal_packed (a : int) (b : int) = a = b

(* Same total order as {!compare}: names by their string contents (ids
   are assigned in interning order, not alphabetically), Name < Int. *)
let compare_packed a b =
  if a = b then 0
  else
    match (a land 1, b land 1) with
    | 1, 1 -> Int.compare (a asr 1) (b asr 1)
    | 0, 0 -> String.compare (Intern.string_of_id (a lsr 1)) (Intern.string_of_id (b lsr 1))
    | 0, _ -> -1
    | _ -> 1

(* Fibonacci-style multiplicative mix: packed payloads are small dense
   ints, so spread them before they key a hash table. *)
let hash_packed p = p * 0x2545F4914F6CDD1D land max_int

let hash v = hash_packed (pack v)
