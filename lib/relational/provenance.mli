(** Tuple provenance.

    Data-cleaning systems expose, per tuple, the source it came from and a
    creation/modification timestamp (paper, §1); preference rules such as
    "source s1 is more reliable than s3" (Example 3) or "newer data wins"
    are phrased over this metadata. Provenance lives alongside the relation
    rather than inside tuples, so the relational core stays purely
    set-based. *)

type info = { source : string option; timestamp : int option }

type t
(** A provenance map for one relation instance. *)

val empty : t
val info : ?source:string -> ?timestamp:int -> unit -> info
val no_info : info

val set : t -> Tuple.t -> info -> t
(** Later calls overwrite earlier ones for the same tuple — matching the
    set semantics of instances, where a tuple contributed by two sources is
    stored once. *)

val get : t -> Tuple.t -> info
(** [no_info] when the tuple was never annotated. *)

val source : t -> Tuple.t -> string option
val timestamp : t -> Tuple.t -> int option

val of_list : (Tuple.t * info) list -> t

val bindings : t -> (Tuple.t * info) list
(** Every annotated tuple with its info, in increasing {!Tuple.compare}
    order (canonical — the serialization view of the map). *)

val tag_source : string -> Relation.t -> t -> t
(** Annotate every tuple of the relation with the given source name. *)

val pp_info : Format.formatter -> info -> unit
