(** Relational algebra over positional schemas.

    The evaluation substrate beneath the query planner: selection,
    projection, equi-join (hash join), product, union and difference over
    {!Relation} values. Columns are addressed by position; output schemas
    are synthesized with fresh column names, so expressions compose freely
    regardless of the input relations' attribute names.

    Set semantics throughout (projection de-duplicates), matching the
    paper's instances. *)

type cmp = Eq | Neq | Lt | Gt | Leq | Geq

(** Selection predicates, structured so plans can be printed and
    inspected. *)
type selection =
  | Attr_cmp of cmp * int * int  (** column [i] op column [j] *)
  | Const_cmp of cmp * int * Value.t  (** column [i] op constant *)
  | Conj of selection list  (** all of them; [Conj []] is true *)

(** Algebra expressions. *)
type t =
  | Rel of Relation.t  (** leaf *)
  | Select of selection * t
  | Project of int list * t
      (** keep the listed columns, in the listed order (duplicates
          allowed: [Project [0;0]] duplicates a column) *)
  | Join of (int * int) list * t * t
      (** equi-join: pairs [(i, j)] equate column [i] of the left input
          with column [j] of the right; output = left columns then right
          columns. [Join [] _ _] is the cartesian product. *)
  | Union of t * t
  | Diff of t * t

val arity : t -> int
(** Output arity. Raises [Invalid_argument] on ill-formed expressions
    (column indices out of range, arity mismatches in union/difference). *)

val check : t -> (unit, string) result
(** Full static validation: column ranges, selection typing against the
    synthesized column types, union/difference compatibility. Order
    comparisons on name-typed columns are {e accepted}: names are
    unordered, so the comparison is degenerate but well-defined —
    [<]/[>] never hold, [<=]/[>=] collapse to [=] — exactly the query
    evaluator's semantics ({!selection_holds}) and the planner's static
    rewrite of name-typed comparisons. Only genuine type clashes (name
    against number) are errors. *)

val eval : t -> Relation.t
(** Evaluate. Joins build a hash table on the smaller input, keyed on
    packed projections; equality-with-constant selections probe the
    input's per-column postings ({!Relation.matching}) instead of
    scanning. The output schema has fresh positional column names. Raises
    [Invalid_argument] on expressions rejected by {!check}. *)

val cardinality : t -> int
(** [Relation.cardinality (eval e)] without keeping the result. *)

val is_empty : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints an indented operator tree. *)

val pp_selection : Format.formatter -> selection -> unit

val selection_holds : selection -> Tuple.t -> bool
(** The predicate itself, for reuse and tests. Order comparisons hold
    only between numbers, as in the query evaluator. *)

val eval_cmp : cmp -> Value.t -> Value.t -> bool
(** One comparison under the locked semantics shared by the evaluator,
    the planner and this algebra: order predicates hold only between
    numbers ([<]/[>] never hold on names, [<=]/[>=] collapse to [=]
    there), [=]-family comparisons across domains are false and [!=]
    across domains true. The planners' static rewrites and the physical
    operators both defer to this single definition. *)
