(* A tuple is one flat int array: slot 0 caches the hash, slots 1..n
   hold the packed values (see {!Value.pack}). One heap block per
   tuple — not a record pointing at a payload array — matters because
   bulk paths (snapshot load, parsing) materialize millions of live
   tuples, and the GC marks and promotes per block. Equality is one
   int-array sweep, hashing is a read of slot 0, and the FD-grouping
   and join kernels project packed ints directly without touching
   boxed values. *)

type t = int array

let hash t = Array.unsafe_get t 0
let arity t = Array.length t - 1

(* A short polynomial accumulation over the packed (already mixed-ready)
   payloads, finalized with the value mixer so nearby tuples spread.
   [rehash] fills slot 0 of a flat array whose payloads are in place. *)
let rehash t =
  let n = Array.length t - 1 in
  let h = ref n in
  for i = 1 to n do
    h := (!h * 1000003) + Array.unsafe_get t i
  done;
  Array.unsafe_set t 0 (Value.hash_packed !h);
  t

let of_packed packed =
  let n = Array.length packed in
  let t = Array.make (n + 1) 0 in
  Array.blit packed 0 t 1 n;
  rehash t

let make values =
  of_packed (Array.of_list (List.map Value.pack values))

let of_array a = of_packed (Array.map Value.pack a)

let get t i =
  if i < 0 || i >= arity t then invalid_arg "Tuple.get: out of range";
  Value.unpack t.(i + 1)

let packed_get t i =
  if i < 0 || i >= arity t then invalid_arg "Tuple.packed_get: out of range";
  t.(i + 1)

let values t = List.init (arity t) (fun i -> Value.unpack t.(i + 1))
let project t positions = List.map (get t) positions
let project_packed t positions = List.map (packed_get t) positions

let sub t positions = of_packed (Array.of_list (project_packed t positions))

let concat t1 t2 =
  let n1 = arity t1 and n2 = arity t2 in
  let t = Array.make (n1 + n2 + 1) 0 in
  Array.blit t1 1 t 1 n1;
  Array.blit t2 1 t (1 + n1) n2;
  rehash t

let agree_on t1 t2 positions =
  List.for_all (fun i -> packed_get t1 i = packed_get t2 i) positions

let conforms schema t =
  arity t = Schema.arity schema
  && begin
       let ok = ref true in
       for i = 0 to arity t - 1 do
         if Value.packed_ty t.(i + 1) <> Schema.ty_to_poly (Schema.ty_at schema i)
         then ok := false
       done;
       !ok
     end

(* slot 0 first: a hash mismatch settles almost every unequal pair in
   one compare *)
let equal t1 t2 =
  t1 == t2
  || (Array.length t1 = Array.length t2
     && begin
          let n = Array.length t1 in
          let rec loop i =
            i >= n || (Array.unsafe_get t1 i = Array.unsafe_get t2 i && loop (i + 1))
          in
          loop 0
        end)

(* Lexicographic lift of {!Value.compare} (names by string contents,
   Name < Int), kept identical to the boxed representation so canonical
   enumeration order survives the packing. Equal packed entries short-
   circuit without consulting the dictionary. *)
let compare t1 t2 =
  let c = Int.compare (Array.length t1) (Array.length t2) in
  if c <> 0 then c
  else
    let n = Array.length t1 in
    let rec loop i =
      if i >= n then 0
      else
        let a = t1.(i) and b = t2.(i) in
        if a = b then loop (i + 1)
        else
          let c = Value.compare_packed a b in
          if c <> 0 then c else loop (i + 1)
    in
    loop 1

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (values t)

let to_string t = Format.asprintf "%a" pp t
