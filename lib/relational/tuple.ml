(* A tuple is an immutable vector of packed values (see {!Value.pack})
   with its hash precomputed at construction: equality is one int-array
   sweep, hashing is a field read, and the FD-grouping and join kernels
   project packed ints directly without touching boxed values. *)

type t = { packed : int array; hash : int }

(* A short polynomial accumulation over the packed (already mixed-ready)
   payloads, finalized with the value mixer so nearby tuples spread. *)
let hash_packed_array a =
  let h = ref (Array.length a) in
  for i = 0 to Array.length a - 1 do
    h := (!h * 1000003) + a.(i)
  done;
  Value.hash_packed !h

let of_packed_array packed = { packed; hash = hash_packed_array packed }

let make values =
  of_packed_array (Array.of_list (List.map Value.pack values))

let of_array a = of_packed_array (Array.map Value.pack a)

let arity t = Array.length t.packed

let get t i =
  if i < 0 || i >= Array.length t.packed then
    invalid_arg "Tuple.get: out of range";
  Value.unpack t.packed.(i)

let packed_get t i =
  if i < 0 || i >= Array.length t.packed then
    invalid_arg "Tuple.packed_get: out of range";
  t.packed.(i)

let values t = Array.to_list (Array.map Value.unpack t.packed)
let project t positions = List.map (get t) positions
let project_packed t positions = List.map (packed_get t) positions

let sub t positions =
  of_packed_array (Array.of_list (project_packed t positions))

let concat t1 t2 = of_packed_array (Array.append t1.packed t2.packed)

let agree_on t1 t2 positions =
  List.for_all (fun i -> packed_get t1 i = packed_get t2 i) positions

let conforms schema t =
  Array.length t.packed = Schema.arity schema
  && begin
       let ok = ref true in
       Array.iteri
         (fun i p ->
           if Value.packed_ty p <> Schema.ty_to_poly (Schema.ty_at schema i)
           then ok := false)
         t.packed;
       !ok
     end

let equal t1 t2 =
  t1.hash = t2.hash
  && Array.length t1.packed = Array.length t2.packed
  && begin
       let n = Array.length t1.packed in
       let rec loop i = i >= n || (t1.packed.(i) = t2.packed.(i) && loop (i + 1)) in
       loop 0
     end

(* Lexicographic lift of {!Value.compare} (names by string contents,
   Name < Int), kept identical to the boxed representation so canonical
   enumeration order survives the packing. Equal packed entries short-
   circuit without consulting the dictionary. *)
let compare t1 t2 =
  let c = Int.compare (Array.length t1.packed) (Array.length t2.packed) in
  if c <> 0 then c
  else
    let n = Array.length t1.packed in
    let rec loop i =
      if i >= n then 0
      else
        let a = t1.packed.(i) and b = t2.packed.(i) in
        if a = b then loop (i + 1)
        else
          let c = Value.compare_packed a b in
          if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = t.hash

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (values t)

let to_string t = Format.asprintf "%a" pp t
