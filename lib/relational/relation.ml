(* Id-addressed tuple store.

   An instance is a set of tuples, but the representation is an
   insertion-ordered fact array: the index of a tuple in [facts] is its
   {e fact id}, the identity every downstream layer speaks — in
   particular, conflict-graph vertex ids ARE fact ids, with no second
   index in between. Deletion tombstones a slot (the id stays allocated,
   the slot leaves [live]) so ids survive incremental updates; insertion
   appends fresh slots. Membership goes through a hash index over the
   tuples' cached hashes, and per-column postings (packed value -> live
   fact ids) serve FD grouping and algebra selections. The value is
   persistent: every operation returns a new record, sharing the fact
   array and index wherever slots did not change.

   The hash index is one append-only hashtable SHARED by every relation
   derived from the same root (patch/add/remove/filter all inherit it):
   appending a slot adds its (hash, id) entry in place, nothing is ever
   removed. That makes [find] O(1) and [patch] O(batch) with no copying,
   and it is safe because a bucket hit only counts after three
   per-relation filters — the id must be within this relation's fact
   array, live in it, and hold a tuple equal to the probe. Entries
   appended by a sibling branch of the history (or after this snapshot
   was taken) fail the bounds or equality check and are ignored. *)

module Imap = Map.Make (Int)
module Vset = Graphs.Vset

type postings = Vset.t Imap.t option array
(* one lazily materialized map per column: [None] = never probed.
   Columns are independent — an FD stack only ever groups by its lhs
   columns, and a posting map over a unique-valued column (think a
   million distinct C values, each a singleton id set) costs far more
   than every map that is actually used, so forcing all columns eagerly
   is the wrong default at scale. *)

type t = {
  schema : Schema.t;
  facts : Tuple.t array; (* slot = fact id; tombstoned slots keep their tuple *)
  live : Vset.t;
  lookup : (int, int list) Hashtbl.t Lazy.t;
      (* Tuple.hash -> candidate slots, shared across derived relations.
         Lazy so that a bulk load ([of_slots]) pays for the table on the
         first [find], not on construction — a loaded instance that is
         only ever scanned never hashes a tuple at all. *)
  mutable postings : postings option; (* lazy memo, maintained by [patch] *)
}

let empty schema =
  {
    schema;
    facts = [||];
    live = Vset.empty;
    lookup = Lazy.from_val (Hashtbl.create 16);
    postings = None;
  }

let schema r = r.schema
let slot_count r = Array.length r.facts
let live_ids r = r.live
let cardinality r = Vset.cardinal r.live
let is_empty r = Vset.is_empty r.live
let is_dense r = cardinality r = slot_count r

let fact r i =
  if i < 0 || i >= Array.length r.facts then
    invalid_arg "Relation.fact: no such fact id";
  r.facts.(i)

let check_tuple schema t =
  if not (Tuple.conforms schema t) then
    invalid_arg
      (Printf.sprintf "tuple %s does not conform to schema %s"
         (Tuple.to_string t) (Schema.name schema))

let find r t =
  match Hashtbl.find_opt (Lazy.force r.lookup) (Tuple.hash t) with
  | None -> None
  | Some bucket ->
    let len = Array.length r.facts in
    List.find_opt
      (fun i -> i < len && Vset.mem i r.live && Tuple.equal r.facts.(i) t)
      bucket

let find_exn r t =
  match find r t with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "tuple %s is not part of the instance" (Tuple.to_string t))

let mem r t = find r t <> None

let lookup_add lookup t i =
  Hashtbl.replace lookup (Tuple.hash t)
    (i :: Option.value (Hashtbl.find_opt lookup (Tuple.hash t)) ~default:[])

(* --- per-column postings -------------------------------------------------- *)

let build_column r col =
  Obs.Span.with_span "relation.index"
    ~args:
      [
        ("relation", Obs.Event.Str (Schema.name r.schema));
        ("column", Obs.Event.Int col);
        ("tuples", Obs.Event.Int (cardinality r));
      ]
  @@ fun () ->
  let acc = Hashtbl.create 64 in
  Vset.iter
    (fun i ->
      let key = Tuple.packed_get r.facts.(i) col in
      Hashtbl.replace acc key
        (i :: Option.value (Hashtbl.find_opt acc key) ~default:[]))
    r.live;
  Hashtbl.fold (fun key ids m -> Imap.add key (Vset.of_list ids) m) acc
    Imap.empty

(* The lazy memo mutates in place, so forcing a column must happen on
   the submitting domain, before any parallel job reads the relation.
   Compact per-component relations built inside a job are task-local
   and may force freely. *)
let column r col =
  let p =
    match r.postings with
    | Some p -> p
    | None ->
      let p = Array.make (Schema.arity r.schema) None in
      r.postings <- Some p;
      p
  in
  match p.(col) with
  | Some m -> m
  | None ->
    let m = build_column r col in
    p.(col) <- Some m;
    m

let posting_add p t i =
  Array.mapi
    (fun col m ->
      Option.map
        (Imap.update (Tuple.packed_get t col) (fun s ->
             Some (Vset.add i (Option.value s ~default:Vset.empty))))
        m)
    p

let posting_remove p t i =
  Array.mapi
    (fun col m ->
      Option.map
        (Imap.update (Tuple.packed_get t col) (function
          | None -> None
          | Some s ->
            let s = Vset.remove i s in
            if Vset.is_empty s then None else Some s))
        m)
    p

let prepare_column r col =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg "Relation.prepare_column: column out of range";
  ignore (column r col)

let prepare_index r =
  for col = 0 to Schema.arity r.schema - 1 do
    ignore (column r col)
  done

let matching r col packed_value =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg "Relation.matching: column out of range";
  match Imap.find_opt packed_value (column r col) with
  | Some s -> s
  | None -> Vset.empty

let iter_groups r col f =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg "Relation.iter_groups: column out of range";
  Imap.iter f (column r col)

let postings_ready r col =
  col >= 0
  && col < Schema.arity r.schema
  && match r.postings with None -> false | Some p -> p.(col) <> None

let check_col fn r col =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg ("Relation." ^ fn ^ ": column out of range")

let groups r col =
  check_col "groups" r col;
  Imap.to_seq (column r col)

let group_count r col =
  check_col "group_count" r col;
  Imap.cardinal (column r col)

let group_bounds r col =
  check_col "group_bounds" r col;
  let m = column r col in
  match (Imap.min_binding_opt m, Imap.max_binding_opt m) with
  | Some (lo, _), Some (hi, _) -> Some (lo, hi)
  | _, _ -> None

(* Range probe: walk the ordered postings between the packed bounds.
   Packing is strictly monotone on ints ([2n+1]), so the map's
   [Int.compare] key order IS the numeric order on an int-typed column,
   and [to_seq_from] starts at the first group >= the lower bound.
   Groups are disjoint id sets, so collecting their elements into one
   list and rebuilding a Vset is O(selected), never O(universe) per
   group the way repeated set unions would be. *)
let matching_range r col ~lo ~hi =
  check_col "matching_range" r col;
  let m = column r col in
  let seq =
    match lo with
    | None -> Imap.to_seq m
    | Some (v, incl) ->
      let s = Imap.to_seq_from v m in
      if incl then s
      else Seq.drop_while (fun (k, _) -> k = v) s
  in
  let below k =
    match hi with
    | None -> true
    | Some (v, incl) -> if incl then k <= v else k < v
  in
  let ids = ref [] in
  Seq.iter
    (fun (_, s) -> Vset.iter (fun i -> ids := i :: !ids) s)
    (Seq.take_while (fun (k, _) -> below k) seq);
  Vset.of_list !ids

(* --- pointwise updates ---------------------------------------------------- *)

let append_slot r t =
  let n = Array.length r.facts in
  let facts = Array.make (n + 1) t in
  Array.blit r.facts 0 facts 0 n;
  lookup_add (Lazy.force r.lookup) t n;
  {
    r with
    facts;
    live = Vset.add n r.live;
    postings = Option.map (fun p -> posting_add p t n) r.postings;
  }

let add r t =
  check_tuple r.schema t;
  if mem r t then r else append_slot r t

let remove r t =
  match find r t with
  | None -> r
  | Some i ->
    {
      r with
      live = Vset.remove i r.live;
      postings = Option.map (fun p -> posting_remove p t i) r.postings;
    }

let filter p r =
  { r with live = Vset.filter (fun i -> p r.facts.(i)) r.live; postings = None }

let restrict_ids r ids =
  if not (Vset.subset ids r.live) then
    invalid_arg "Relation.restrict_ids: not a subset of the live fact ids";
  { r with live = ids; postings = None }

(* --- bulk construction ---------------------------------------------------- *)

module Builder = struct
  type relation = t

  type t = {
    b_schema : Schema.t;
    mutable items : Tuple.t array;
    mutable len : int;
    seen : (int, int list) Hashtbl.t; (* hash -> slots *)
  }

  let create ?(size_hint = 16) schema =
    {
      b_schema = schema;
      items = [||];
      len = 0;
      seen = Hashtbl.create (max 16 size_hint);
    }

  let mem b t =
    match Hashtbl.find_opt b.seen (Tuple.hash t) with
    | None -> false
    | Some slots -> List.exists (fun i -> Tuple.equal b.items.(i) t) slots

  let add b t =
    check_tuple b.b_schema t;
    if not (mem b t) then begin
      let cap = Array.length b.items in
      if b.len = cap then begin
        let grown = Array.make (max 16 (2 * cap)) t in
        Array.blit b.items 0 grown 0 cap;
        b.items <- grown
      end;
      b.items.(b.len) <- t;
      Hashtbl.replace b.seen (Tuple.hash t)
        (b.len :: Option.value (Hashtbl.find_opt b.seen (Tuple.hash t)) ~default:[]);
      b.len <- b.len + 1
    end

  let add_row b row = add b (Tuple.make row)
  let size b = b.len

  let finish b : relation =
    let facts = Array.sub b.items 0 b.len in
    (* [seen] has exactly the lookup-table shape; copy it so later use
       of the builder cannot reach into the relation's index *)
    {
      schema = b.b_schema;
      facts;
      live = Vset.of_range b.len;
      lookup = Lazy.from_val (Hashtbl.copy b.seen);
      postings = None;
    }
end

let of_tuples schema ts =
  let b = Builder.create ~size_hint:(List.length ts) schema in
  List.iter (Builder.add b) ts;
  Builder.finish b

let of_rows schema rows = of_tuples schema (List.map Tuple.make rows)

(* --- traversal ------------------------------------------------------------ *)

let iter f r = Vset.iter (fun i -> f r.facts.(i)) r.live
let fold f r acc = Vset.fold (fun i acc -> f r.facts.(i) acc) r.live acc
let for_all p r = Vset.for_all (fun i -> p r.facts.(i)) r.live
let exists p r = Vset.exists (fun i -> p r.facts.(i)) r.live

let tuples r =
  List.sort Tuple.compare (fold (fun t acc -> t :: acc) r [])

let tuple_array r =
  if is_dense r then r.facts
  else begin
    let out = Array.make (cardinality r) (Tuple.make []) in
    let j = ref 0 in
    Vset.iter
      (fun i ->
        out.(!j) <- r.facts.(i);
        incr j)
      r.live;
    out
  end

(* --- serialization view ----------------------------------------------------- *)

let slots r =
  Array.mapi (fun i t -> (t, Vset.mem i r.live)) r.facts

let of_facts ?(checked = true) schema facts live =
  let n = Array.length facts in
  (match Vset.max_elt_opt live with
  | Some m when m >= n ->
    invalid_arg "Relation.of_facts: live fact id beyond the slot array"
  | _ -> ());
  if checked then begin
    Array.iter (check_tuple schema) facts;
    (* the duplicate-live check probes an open-addressed table of slot
       indices keyed by the tuples' cached hashes — no per-slot heap
       allocation; the shared lookup table itself is deferred to the
       first [find] *)
    let cap =
      let rec pow2 c = if c >= 2 * (n + 1) then c else pow2 (2 * c) in
      pow2 16
    in
    let mask = cap - 1 in
    let table = Array.make cap (-1) in
    Vset.iter
      (fun i ->
        let t = facts.(i) in
        let j = ref (Tuple.hash t land mask) in
        while
          match table.(!j) with
          | -1 -> false
          | k ->
            if Tuple.equal facts.(k) t then
              invalid_arg
                (Printf.sprintf "Relation.of_facts: duplicate live tuple %s"
                   (Tuple.to_string t));
            true
        do
          j := (!j + 1) land mask
        done;
        table.(!j) <- i)
      live
  end;
  let lookup =
    lazy
      (let lookup = Hashtbl.create (max 16 n) in
       Array.iteri (fun i t -> lookup_add lookup t i) facts;
       lookup)
  in
  { schema; facts; live; lookup; postings = None }

let of_slots ?checked schema entries =
  let n = Array.length entries in
  let facts = Array.map fst entries in
  (* the live set is assembled word-at-a-time: a persistent [Vset.add]
     per slot copies the whole bitset each iteration — quadratic in the
     slot count, which is exactly what a bulk load must not be *)
  let ws = Vset.word_size in
  let words = Array.make (if n = 0 then 0 else ((n - 1) / ws) + 1) 0 in
  for i = 0 to n - 1 do
    if snd entries.(i) then
      words.(i / ws) <- words.(i / ws) lor (1 lsl (i mod ws))
  done;
  of_facts ?checked schema facts (Vset.of_words words)

(* --- set operations -------------------------------------------------------- *)

let check_same_schema r1 r2 =
  if not (Schema.equal r1.schema r2.schema) then
    invalid_arg "Relation: schema mismatch"

let union r1 r2 =
  check_same_schema r1 r2;
  if is_empty r2 then r1
  else begin
    let b = Builder.create ~size_hint:(cardinality r1 + cardinality r2) r1.schema in
    iter (Builder.add b) r1;
    iter (Builder.add b) r2;
    Builder.finish b
  end

let inter r1 r2 =
  check_same_schema r1 r2;
  filter (mem r2) r1

let diff r1 r2 =
  check_same_schema r1 r2;
  filter (fun t -> not (mem r2 t)) r1

let subset r1 r2 =
  check_same_schema r1 r2;
  for_all (mem r2) r1

let equal r1 r2 =
  Schema.equal r1.schema r2.schema
  && cardinality r1 = cardinality r2
  && for_all (mem r2) r1

let compare r1 r2 = List.compare Tuple.compare (tuples r1) (tuples r2)

let restrict r ts = of_tuples r.schema ts

let active_domain r =
  let values = fold (fun t acc -> List.rev_append (Tuple.values t) acc) r [] in
  List.sort_uniq Value.compare values

(* --- the batched delta path ------------------------------------------------ *)

let patch r ~delete ~insert =
  (* resolve deletions against the pre-patch instance *)
  let deleted = List.map (find_exn r) delete in
  let deleted_set = Vset.of_list deleted in
  if Vset.cardinal deleted_set <> List.length delete then
    invalid_arg "Relation.patch: a tuple is deleted twice";
  let live_after_del = Vset.diff r.live deleted_set in
  let shadow = { r with live = live_after_del; postings = None } in
  List.iter
    (fun t ->
      check_tuple r.schema t;
      if mem shadow t then
        invalid_arg
          (Printf.sprintf "Relation.patch: tuple %s is already in the instance"
             (Tuple.to_string t)))
    insert;
  let rec check_dups = function
    | [] -> ()
    | t :: rest ->
      if List.exists (Tuple.equal t) rest then
        invalid_arg "Relation.patch: a tuple is inserted twice";
      check_dups rest
  in
  check_dups insert;
  (* tombstone, then append under fresh ids *)
  let n = Array.length r.facts in
  let facts = Array.append r.facts (Array.of_list insert) in
  let inserted = List.mapi (fun k _ -> n + k) insert in
  let live =
    List.fold_left (fun s i -> Vset.add i s) live_after_del inserted
  in
  List.iter2 (fun i t -> lookup_add (Lazy.force r.lookup) t i) inserted insert;
  let postings =
    match r.postings with
    | None -> None
    | Some p ->
      let p =
        List.fold_left2
          (fun p i t -> posting_remove p t i)
          p deleted delete
      in
      Some
        (List.fold_left2 (fun p i t -> posting_add p t i) p inserted insert)
  in
  ({ r with facts; live; postings }, deleted, inserted)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a = {@," Schema.pp r.schema;
  iter (fun t -> Format.fprintf ppf "  %a@," Tuple.pp t) r;
  Format.fprintf ppf "}@]"
