(** Attribute values.

    The paper works with two disjoint domains (§2): uninterpreted names D
    and natural numbers N. Constants with different names are different;
    [=], [≠], [<], [>] have their natural interpretation over N only. *)

type t =
  | Name of string  (** a constant from the uninterpreted domain D *)
  | Int of int  (** a natural number from N *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** A total order used for canonical storage; [Name _ < Int _] by
    convention. This is *not* the query-language [<], which is defined on
    numbers only — see {!lt}. *)

val lt : t -> t -> bool option
(** The query-language strict order: defined on numbers, undefined
    ([None]) when either side is a name. *)

val ty_matches : [ `Name | `Int ] -> t -> bool
val name : string -> t
val int : int -> t
val as_int : t -> int option
val as_name : t -> string option
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : [ `Name | `Int ] -> string -> (t, string) result
(** Parses according to the expected type; [Error] explains a mismatch
    (e.g. non-numeric text for [`Int]). *)

val hash : t -> int
(** [hash v] = {!hash_packed} of {!pack}[ v]; consistent with {!equal}. *)

(** {2 Packed immediate form}

    [pack] folds a value into a single unboxed OCaml integer: bit 0 is
    the domain tag (1 = number, 0 = name), the remaining bits carry the
    number itself or the {!Intern} id of the name. Two values are equal
    iff their packed forms are equal, so packed equality and hashing are
    O(1) integer operations — the identity currency of {!Tuple},
    {!Relation} and the conflict-graph layer. Numbers lose one bit of
    range to the tag (|n| < 2^61 on 64-bit platforms), far beyond the
    paper's natural-number domains. *)

val pack : t -> int
(** Interns the name if necessary (the only non-O(1) step, amortized). *)

val pack_int : int -> int
(** [pack_int n] = [pack (Int n)] without boxing the value — the
    hot-path constructor of the binary snapshot loader. *)

val unpack : int -> t
(** Inverse of {!pack}. Raises [Invalid_argument] on an int that no
    {!pack} call produced (unknown intern id). *)

val packed_is_int : int -> bool
val packed_ty : int -> [ `Name | `Int ]

val equal_packed : int -> int -> bool
(** Integer equality; sound because interning is canonical. *)

val compare_packed : int -> int -> int
(** The same total order as {!compare} (names by string contents,
    [Name _ < Int _]) — intern ids are assigned in first-seen order, so
    this consults the dictionary when the packed forms differ. *)

val hash_packed : int -> int
(** O(1) multiplicative mix of the packed form; consistent with
    {!equal_packed}. *)
