(** Process-wide string interning.

    The dictionary behind {!Value.pack}: every distinct name constant is
    assigned a small dense integer id the first time it is seen, and two
    strings are equal iff their ids are equal. Ids are never reused or
    invalidated, so a packed value remains meaningful for the lifetime
    of the process.

    Interning is {e load-time only}: nothing about the dictionary is
    persisted — the on-disk instance format stores plain strings, and a
    fresh process rebuilds the dictionary while parsing.

    All operations are thread-safe: the dictionary is one per process,
    shared by every domain, and guarded by a mutex so concurrent
    interning (e.g. tuple packing on pool workers) cannot corrupt the
    table or hand out duplicate ids. *)

val id_of_string : string -> int
(** The id of [s], interning it first if it has never been seen.
    O(1) amortized (one hash table probe). *)

val string_of_id : int -> string
(** Inverse of {!id_of_string}. Raises [Invalid_argument] on an id that
    was never handed out. *)

val mem : string -> bool
(** Whether the string has already been interned (no side effect). *)

val count : unit -> int
(** Number of distinct strings interned so far — the dictionary size
    reported by telemetry. *)
