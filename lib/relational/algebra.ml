type cmp = Eq | Neq | Lt | Gt | Leq | Geq

type selection =
  | Attr_cmp of cmp * int * int
  | Const_cmp of cmp * int * Value.t
  | Conj of selection list

type t =
  | Rel of Relation.t
  | Select of selection * t
  | Project of int list * t
  | Join of (int * int) list * t * t
  | Union of t * t
  | Diff of t * t

(* --- static structure ---------------------------------------------------- *)

(* Column types of the output, synthesized bottom-up. *)
let rec column_types = function
  | Rel r ->
    List.map (fun a -> a.Schema.attr_ty) (Schema.attributes (Relation.schema r))
  | Select (_, e) -> column_types e
  | Project (cols, e) ->
    let tys = Array.of_list (column_types e) in
    List.map
      (fun i ->
        if i < 0 || i >= Array.length tys then
          invalid_arg "Algebra: projection column out of range"
        else tys.(i))
      cols
  | Join (_, l, r) -> column_types l @ column_types r
  | Union (l, r) | Diff (l, r) ->
    let tl = column_types l and tr = column_types r in
    if tl <> tr then invalid_arg "Algebra: incompatible column types"
    else tl

let arity e = List.length (column_types e)

(* Order comparisons on name-typed columns are well-defined but
   degenerate — names are unordered, so [<]/[>] never hold and [<=]/[>=]
   collapse to [=] (see [eval_cmp]) — matching the query evaluator and
   the planner's static rewrite. Only genuine type clashes are errors. *)
let rec check_selection tys = function
  | Conj sels ->
    List.fold_left
      (fun acc s -> match acc with Ok () -> check_selection tys s | e -> e)
      (Ok ()) sels
  | Attr_cmp (_, i, j) ->
    let n = Array.length tys in
    if i < 0 || i >= n || j < 0 || j >= n then
      Error "selection column out of range"
    else if tys.(i) <> tys.(j) then
      Error "selection compares columns of different types"
    else Ok ()
  | Const_cmp (_, i, v) ->
    let n = Array.length tys in
    if i < 0 || i >= n then Error "selection column out of range"
    else
      let v_ty =
        match v with Value.Name _ -> Schema.TName | Value.Int _ -> Schema.TInt
      in
      if tys.(i) <> v_ty then
        Error "selection compares a column with a constant of another type"
      else Ok ()

let rec check e =
  match e with
  | Rel _ -> Ok ()
  | Select (sel, inner) -> (
    match check inner with
    | Error _ as err -> err
    | Ok () -> check_selection (Array.of_list (column_types inner)) sel)
  | Project (cols, inner) -> (
    match check inner with
    | Error _ as err -> err
    | Ok () ->
      let n = arity inner in
      if List.for_all (fun i -> i >= 0 && i < n) cols then Ok ()
      else Error "projection column out of range")
  | Join (pairs, l, r) -> (
    match (check l, check r) with
    | (Error _ as err), _ | _, (Error _ as err) -> err
    | Ok (), Ok () ->
      let tl = Array.of_list (column_types l)
      and tr = Array.of_list (column_types r) in
      let ok (i, j) =
        i >= 0 && i < Array.length tl && j >= 0 && j < Array.length tr
        && tl.(i) = tr.(j)
      in
      if List.for_all ok pairs then Ok ()
      else Error "join columns out of range or of different types")
  | Union (l, r) | Diff (l, r) -> (
    match (check l, check r) with
    | (Error _ as err), _ | _, (Error _ as err) -> err
    | Ok (), Ok () ->
      if column_types l = column_types r then Ok ()
      else Error "union/difference of incompatible arities or types")

(* --- evaluation ------------------------------------------------------------ *)

let eval_cmp op l r =
  let both_ints =
    match (l, r) with Value.Int _, Value.Int _ -> true | _, _ -> false
  in
  match op with
  | Eq -> Value.equal l r
  | Neq -> not (Value.equal l r)
  | Lt -> both_ints && Value.compare l r < 0
  | Gt -> both_ints && Value.compare l r > 0
  | Leq -> Value.equal l r || (both_ints && Value.compare l r < 0)
  | Geq -> Value.equal l r || (both_ints && Value.compare l r > 0)

let rec selection_holds sel t =
  match sel with
  | Conj sels -> List.for_all (fun s -> selection_holds s t) sels
  | Attr_cmp (op, i, j) -> eval_cmp op (Tuple.get t i) (Tuple.get t j)
  | Const_cmp (op, i, v) -> eval_cmp op (Tuple.get t i) v

let fresh_schema tys =
  Schema.make "q" (List.mapi (fun i ty -> (Printf.sprintf "c%d" i, ty)) tys)

let rec conjuncts = function
  | Conj sels -> List.concat_map conjuncts sels
  | s -> [ s ]

(* Selection: equality-with-constant conjuncts are postings probes on the
   input (one [Relation.matching] lookup each, intersected), and only the
   remaining conjuncts scan — on a base-relation leaf this skips the
   whole-instance pass entirely once the postings exist. *)
let select sel input =
  let probes, rest =
    List.partition
      (function Const_cmp (Eq, _, _) -> true | _ -> false)
      (conjuncts sel)
  in
  match probes with
  | [] -> Relation.filter (selection_holds sel) input
  | _ ->
    let ids =
      List.fold_left
        (fun acc p ->
          match p with
          | Const_cmp (Eq, i, v) ->
            Graphs.Vset.inter acc (Relation.matching input i (Value.pack v))
          | _ -> acc)
        (Relation.live_ids input) probes
    in
    let out = Relation.restrict_ids input ids in
    if rest = [] then out else Relation.filter (selection_holds (Conj rest)) out

(* Hash join: index the smaller side on its join key. Keys are packed
   projections (int lists), rows are concatenated in packed form. *)
let hash_join pairs left right out_schema =
  let lkeys = List.map fst pairs and rkeys = List.map snd pairs in
  let swap = Relation.cardinality right < Relation.cardinality left in
  let build, probe, build_keys, probe_keys, combine =
    if swap then
      (right, left, rkeys, lkeys, fun probe_t build_t -> Tuple.concat probe_t build_t)
    else
      (left, right, lkeys, rkeys, fun probe_t build_t -> Tuple.concat build_t probe_t)
  in
  let index = Hashtbl.create (max 16 (Relation.cardinality build)) in
  Relation.iter
    (fun t ->
      let key = Tuple.project_packed t build_keys in
      let existing = Option.value (Hashtbl.find_opt index key) ~default:[] in
      Hashtbl.replace index key (t :: existing))
    build;
  let out = Relation.Builder.create ~size_hint:(Relation.cardinality probe) out_schema in
  Relation.iter
    (fun t ->
      List.iter
        (fun bt -> Relation.Builder.add out (combine t bt))
        (Option.value
           (Hashtbl.find_opt index (Tuple.project_packed t probe_keys))
           ~default:[]))
    probe;
  Relation.Builder.finish out

let rec eval e =
  (match check e with Ok () -> () | Error m -> invalid_arg ("Algebra: " ^ m));
  eval_unchecked e

and eval_unchecked e =
  match e with
  | Rel r -> r
  | Select (sel, inner) -> select sel (eval_unchecked inner)
  | Project (cols, inner) ->
    let input = eval_unchecked inner in
    let out_schema =
      fresh_schema
        (List.map
           (fun i -> Schema.ty_at (Relation.schema input) i)
           cols)
    in
    let b = Relation.Builder.create ~size_hint:(Relation.cardinality input) out_schema in
    Relation.iter (fun t -> Relation.Builder.add b (Tuple.sub t cols)) input;
    Relation.Builder.finish b
  | Join (pairs, l, r) ->
    let left = eval_unchecked l and right = eval_unchecked r in
    let out_schema = fresh_schema (column_types e) in
    if pairs = [] then begin
      (* cartesian product *)
      let b =
        Relation.Builder.create
          ~size_hint:(Relation.cardinality left * Relation.cardinality right)
          out_schema
      in
      Relation.iter
        (fun lt -> Relation.iter (fun rt -> Relation.Builder.add b (Tuple.concat lt rt)) right)
        left;
      Relation.Builder.finish b
    end
    else hash_join pairs left right out_schema
  | Union (l, r) ->
    let left = eval_unchecked l and right = eval_unchecked r in
    let out_schema = fresh_schema (column_types e) in
    let b =
      Relation.Builder.create
        ~size_hint:(Relation.cardinality left + Relation.cardinality right)
        out_schema
    in
    Relation.iter (Relation.Builder.add b) left;
    Relation.iter (Relation.Builder.add b) right;
    Relation.Builder.finish b
  | Diff (l, r) ->
    let left = eval_unchecked l and right = eval_unchecked r in
    let out_schema = fresh_schema (column_types e) in
    let b = Relation.Builder.create ~size_hint:(Relation.cardinality left) out_schema in
    Relation.iter
      (fun t -> if not (Relation.mem right t) then Relation.Builder.add b t)
      left;
    Relation.Builder.finish b

let cardinality e = Relation.cardinality (eval e)
let is_empty e = Relation.is_empty (eval e)

(* --- printing ----------------------------------------------------------------- *)

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Gt -> ">"
    | Leq -> "<="
    | Geq -> ">=")

let rec pp_selection ppf = function
  | Conj [] -> Format.pp_print_string ppf "true"
  | Conj sels ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
      pp_selection ppf sels
  | Attr_cmp (op, i, j) -> Format.fprintf ppf "#%d %a #%d" i pp_cmp op j
  | Const_cmp (op, i, v) -> Format.fprintf ppf "#%d %a %a" i pp_cmp op Value.pp v

let rec pp ppf = function
  | Rel r -> Format.fprintf ppf "rel %s[%d]" (Schema.name (Relation.schema r))
               (Relation.cardinality r)
  | Select (sel, e) ->
    Format.fprintf ppf "@[<v 2>select %a@,%a@]" pp_selection sel pp e
  | Project (cols, e) ->
    Format.fprintf ppf "@[<v 2>project [%s]@,%a@]"
      (String.concat "; " (List.map string_of_int cols))
      pp e
  | Join (pairs, l, r) ->
    Format.fprintf ppf "@[<v 2>join {%s}@,%a@,%a@]"
      (String.concat "; "
         (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs))
      pp l pp r
  | Union (l, r) -> Format.fprintf ppf "@[<v 2>union@,%a@,%a@]" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "@[<v 2>diff@,%a@,%a@]" pp l pp r
