(* Process-wide string dictionary.

   Interning maps every distinct name constant to a small dense integer
   once, at construction time; everything downstream (tuples, relations,
   conflict graphs, query plans) then compares identities with one
   integer comparison instead of re-walking string contents. The
   dictionary only ever grows — ids stay valid for the lifetime of the
   process — and is deliberately global: two equal strings interned from
   different call sites must receive the same id, or packed equality
   would be unsound.

   The dictionary is shared by every domain (packed equality must hold
   across domains too), so all access goes through one mutex. Interning
   is a construction-time cost — the hot comparison paths never touch
   this module except through [string_of_id] on the rare
   interned-vs-interned tie in [Value.compare_packed] — and the critical
   sections are a handful of instructions, so one lock is cheaper than
   any lock-free scheme would be to verify. *)

let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let strings = ref (Array.make 1024 "")
let next = ref 0

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let id_of_string s =
  with_lock (fun () ->
      match Hashtbl.find_opt table s with
      | Some id -> id
      | None ->
        let id = !next in
        let cap = Array.length !strings in
        if id = cap then begin
          let grown = Array.make (2 * cap) "" in
          Array.blit !strings 0 grown 0 cap;
          strings := grown
        end;
        !strings.(id) <- s;
        Hashtbl.add table s id;
        incr next;
        id)

let string_of_id id =
  with_lock (fun () ->
      if id < 0 || id >= !next then
        invalid_arg (Printf.sprintf "Intern.string_of_id: unknown id %d" id)
      else !strings.(id))

let mem s = with_lock (fun () -> Hashtbl.mem table s)
let count () = with_lock (fun () -> !next)
