(* Process-wide string dictionary.

   Interning maps every distinct name constant to a small dense integer
   once, at construction time; everything downstream (tuples, relations,
   conflict graphs, query plans) then compares identities with one
   integer comparison instead of re-walking string contents. The
   dictionary only ever grows — ids stay valid for the lifetime of the
   process — and is deliberately global: two equal strings interned from
   different call sites must receive the same id, or packed equality
   would be unsound. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let strings = ref (Array.make 1024 "")
let next = ref 0

let id_of_string s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = !next in
    let cap = Array.length !strings in
    if id = cap then begin
      let grown = Array.make (2 * cap) "" in
      Array.blit !strings 0 grown 0 cap;
      strings := grown
    end;
    !strings.(id) <- s;
    Hashtbl.add table s id;
    incr next;
    id

let string_of_id id =
  if id < 0 || id >= !next then
    invalid_arg (Printf.sprintf "Intern.string_of_id: unknown id %d" id)
  else !strings.(id)

let mem s = Hashtbl.mem table s
let count () = !next
