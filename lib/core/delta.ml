open Relational
open Graphs

type op = Insert of Tuple.t | Delete of Tuple.t

type report = {
  inserted : int;
  deleted : int;
  edges_added : int;
  edges_removed : int;
  components_dirtied : int;
  cache_evicted : int;
  cache_retained : int;
}

type t = {
  rule : Pref_rules.rule;
  mutable conflict : Conflict.t;
  mutable priority : Priority.t;
  mutable decompose : Decompose.t;
  mutable history : op list list;  (* inverse batches, most recent first *)
  mutable colstats : Planner.Stats.t option;
      (* exact column statistics, built on first demand and patched in
         place by every subsequent batch (undo included) *)
}

let create ?(rule = fun _ _ -> false) fds relation =
  match Conflict.build fds relation with
  | exception Invalid_argument e -> Error e
  | conflict -> (
    match Pref_rules.apply conflict rule with
    | Error e -> Error e
    | Ok priority ->
      Ok
        {
          rule;
          conflict;
          priority;
          decompose = Decompose.make conflict priority;
          history = [];
          colstats = None;
        })

let m_batch_ops =
  Obs.Registry.histogram ~buckets:Obs.Metric.size_buckets
    ~help:"Operations per accepted Delta batch" "prefdb_delta_batch_ops"

let m_evicted =
  Obs.Registry.counter
    ~help:"Decompose component caches evicted by Delta batches"
    "prefdb_decompose_cache_evictions_total"

let split ops =
  let ins, del =
    List.fold_left
      (fun (ins, del) -> function
        | Insert x -> (x :: ins, del)
        | Delete x -> (ins, x :: del))
      ([], []) ops
  in
  (List.rev ins, List.rev del)

(* One batch through every layer; caller handles history. All layers
   validate before mutating anything, so an [Error] leaves [t] as it
   was. *)
let apply_batch t ops =
  Obs.Span.with_span "delta.apply"
    ~args:[ ("ops", Obs.Event.Int (List.length ops)) ]
  @@ fun () ->
  let insert, delete = split ops in
  match Conflict.apply_delta t.conflict ~insert ~delete with
  | Error e -> Error e
  | Ok (conflict, delta) -> (
    let oriented =
      Pref_rules.orient conflict t.rule delta.Conflict.edges_added
    in
    let dropped = Vset.of_list delta.Conflict.deleted in
    match Priority.update conflict t.priority ~dropped ~oriented with
    | Error e -> Error (Priority.error_to_string e)
    | Ok priority ->
      let before = Decompose.counters t.decompose in
      let decompose =
        Decompose.apply_delta t.decompose conflict priority delta
      in
      let after = Decompose.counters decompose in
      t.conflict <- conflict;
      t.priority <- priority;
      t.decompose <- decompose;
      (* the batch was accepted in full, so the statistics patch sees
         exactly the tuples the relation applied *)
      Option.iter
        (fun s -> Planner.Stats.patch s ~delete ~insert)
        t.colstats;
      let evicted =
        after.Decompose.cache_evicted - before.Decompose.cache_evicted
      in
      Obs.Metric.observe m_batch_ops (Float.of_int (List.length ops));
      Obs.Metric.incr ~by:evicted m_evicted;
      Ok
        {
          inserted = List.length delta.Conflict.inserted;
          deleted = List.length delta.Conflict.deleted;
          edges_added = List.length delta.Conflict.edges_added;
          edges_removed = List.length delta.Conflict.edges_removed;
          components_dirtied =
            after.Decompose.components_dirtied
            - before.Decompose.components_dirtied;
          cache_evicted = evicted;
          cache_retained =
            after.Decompose.cache_retained - before.Decompose.cache_retained;
        })

let apply t ops =
  (* capture before the batch mutates [t] *)
  let insert, delete = split ops in
  match apply_batch t ops with
  | Error e -> Error e
  | Ok report ->
    let inverse =
      List.map (fun x -> Delete x) insert @ List.map (fun x -> Insert x) delete
    in
    t.history <- inverse :: t.history;
    Ok report

let undo t =
  match t.history with
  | [] -> Error "nothing to undo"
  | inverse :: rest -> (
    match apply_batch t inverse with
    | Error e -> Error e (* unreachable for inverses of accepted batches *)
    | Ok report ->
      t.history <- rest;
      Ok report)

let history_depth t = List.length t.history
let drop_history t = t.history <- []
let conflict t = t.conflict
let priority t = t.priority
let decompose t = t.decompose
let relation t = Conflict.relation t.conflict

let column_stats t =
  match t.colstats with
  | Some s -> s
  | None ->
    let s = Planner.Stats.scan (relation t) in
    t.colstats <- Some s;
    s

let stats_lookup t =
  let name = Schema.name (Relation.schema (relation t)) in
  fun r -> if String.equal r name then Some (column_stats t) else None

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>applied:                +%d tuple(s), -%d tuple(s) (%d conflict \
     edge(s) added, %d removed)@,\
     invalidation:           %d component(s) dirtied; cache %d evicted, %d \
     retained@]"
    r.inserted r.deleted r.edges_added r.edges_removed r.components_dirtied
    r.cache_evicted r.cache_retained
