open Graphs

type step = { picked : int; winnow : Vset.t; removed : Vset.t }

type t = { steps : step list; result : Vset.t }

let clean ?(choose = Vset.min_elt) c p =
  let rec loop remaining steps acc =
    if Vset.is_empty remaining then
      { steps = List.rev steps; result = acc }
    else begin
      let w = Priority.winnow p remaining in
      let x = choose w in
      let removed =
        Vset.inter (Conflict.neighbors c x) remaining
      in
      loop
        (Vset.diff remaining (Conflict.vicinity c x))
        ({ picked = x; winnow = w; removed } :: steps)
        (Vset.add x acc)
    end
  in
  loop (Vset.of_range (Conflict.size c)) [] Vset.empty

(* --- sharded-CQA traces -------------------------------------------------- *)

type cqa = {
  family : Family.name;
  verdict : Cqa.certainty;
  components : int;
  max_component : int;
  per_component_repairs : int list;
  counters : Decompose.counters;
}

let diff_counters (a : Decompose.counters) (b : Decompose.counters) :
    Decompose.counters =
  {
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    component_repairs = a.component_repairs - b.component_repairs;
    combos_streamed = a.combos_streamed - b.combos_streamed;
    components_examined = a.components_examined - b.components_examined;
    early_exits = a.early_exits - b.early_exits;
  }

let certainty family d q =
  let before = Decompose.counters d in
  let verdict = Decompose.certainty family d q in
  let counters = diff_counters (Decompose.counters d) before in
  (* warm by construction after the query ran, so this only reads the
     cache (and its hits are not part of [counters]) *)
  let per_component_repairs =
    List.map
      (fun comp -> List.length (Decompose.preferred_within family d comp))
      (Decompose.components d)
  in
  {
    family;
    verdict;
    components = List.length per_component_repairs;
    max_component = Decompose.max_component d;
    per_component_repairs;
    counters;
  }

let pp_cqa ppf t =
  let product =
    List.fold_left (fun acc n -> acc * n) 1 t.per_component_repairs
  in
  Format.fprintf ppf
    "@[<v>verdict:                %s (%a)@,\
     components:             %d (largest %d)@,\
     preferred repairs:      %d total, per component [%a]@,%a@]"
    (Cqa.certainty_to_string t.verdict)
    Family.pp_name t.family t.components t.max_component product
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    t.per_component_repairs Decompose.pp_counters t.counters

let pp c ppf t =
  let pp_tuple ppf v = Relational.Tuple.pp ppf (Conflict.tuple c v) in
  let pp_set ppf s =
    if Vset.is_empty s then Format.pp_print_string ppf "(none)"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_tuple ppf (Vset.elements s)
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i step ->
      Format.fprintf ppf "step %d: keep %a@," (i + 1) pp_tuple step.picked;
      if Vset.cardinal step.winnow > 1 then
        Format.fprintf ppf "        (also undominated: %a)@," pp_set
          (Vset.remove step.picked step.winnow);
      if not (Vset.is_empty step.removed) then
        Format.fprintf ppf "        discards %a@," pp_set step.removed)
    t.steps;
  Format.fprintf ppf "kept %d tuple(s)@]" (Vset.cardinal t.result)
