open Graphs

type step = { picked : int; winnow : Vset.t; removed : Vset.t }

type t = { steps : step list; result : Vset.t }

let clean ?(choose = Vset.min_elt) c p =
  let rec loop remaining steps acc =
    if Vset.is_empty remaining then
      { steps = List.rev steps; result = acc }
    else begin
      let w = Priority.winnow p remaining in
      let x = choose w in
      let removed =
        Vset.inter (Conflict.neighbors c x) remaining
      in
      loop
        (Vset.diff remaining (Conflict.vicinity c x))
        ({ picked = x; winnow = w; removed } :: steps)
        (Vset.add x acc)
    end
  in
  loop (Conflict.live c) [] Vset.empty

(* --- sharded-CQA traces -------------------------------------------------- *)

type cqa = {
  family : Family.name;
  verdict : Cqa.certainty;
  components : int;
  max_component : int;
  per_component_repairs : int list;
  counters : Decompose.counters;
  maintenance : Decompose.counters;
}

let diff_counters (a : Decompose.counters) (b : Decompose.counters) :
    Decompose.counters =
  {
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    component_repairs = a.component_repairs - b.component_repairs;
    combos_streamed = a.combos_streamed - b.combos_streamed;
    components_examined = a.components_examined - b.components_examined;
    early_exits = a.early_exits - b.early_exits;
    deltas_applied = a.deltas_applied - b.deltas_applied;
    edges_added = a.edges_added - b.edges_added;
    edges_removed = a.edges_removed - b.edges_removed;
    components_dirtied = a.components_dirtied - b.components_dirtied;
    cache_evicted = a.cache_evicted - b.cache_evicted;
    cache_retained = a.cache_retained - b.cache_retained;
  }

let certainty family d q =
  let before = Decompose.counters d in
  let verdict = Decompose.certainty family d q in
  let counters = diff_counters (Decompose.counters d) before in
  let maintenance = Decompose.counters d in
  (* components the query warmed are read off the cache; the rest are
     counted streamingly, never materializing repair lists the query
     itself did not need *)
  let per_component_repairs =
    List.map
      (fun comp -> Decompose.count_within family d comp)
      (Decompose.components d)
  in
  {
    family;
    verdict;
    components = List.length per_component_repairs;
    max_component = Decompose.max_component d;
    per_component_repairs;
    counters;
    maintenance;
  }

(* repair counts multiply across components: 2^63 arrives around 63
   binary components, far within reach of real instances, so the product
   must saturate rather than wrap *)
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let pp_product ppf counts =
  let product = List.fold_left sat_mul 1 counts in
  if product = max_int then
    (* overflowed: report the magnitude in floating point instead of a
       wrapped (possibly negative) integer *)
    let approx =
      List.fold_left (fun acc n -> acc *. float_of_int n) 1. counts
    in
    Format.fprintf ppf ">= max_int (~%.3e)" approx
  else Format.pp_print_int ppf product

let pp_cqa ppf t =
  Format.fprintf ppf
    "@[<v>verdict:                %s (%a)@,\
     components:             %d (largest %d)@,\
     preferred repairs:      %a total, per component [%a]@,%a"
    (Cqa.certainty_to_string t.verdict)
    Family.pp_name t.family t.components t.max_component
    pp_product t.per_component_repairs
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    t.per_component_repairs Decompose.pp_counters t.counters;
  (* cumulative maintenance telemetry, shown only once deltas flowed *)
  let m = t.maintenance in
  if m.Decompose.deltas_applied > 0 then
    Format.fprintf ppf
      "@,\
       maintenance (lifetime): %d delta(s), +%d/-%d edge(s), %d \
       component(s) dirtied, cache %d evicted / %d retained"
      m.Decompose.deltas_applied m.Decompose.edges_added
      m.Decompose.edges_removed m.Decompose.components_dirtied
      m.Decompose.cache_evicted m.Decompose.cache_retained;
  Format.fprintf ppf "@]"

let pp c ppf t =
  let pp_tuple ppf v = Relational.Tuple.pp ppf (Conflict.tuple c v) in
  let pp_set ppf s =
    if Vset.is_empty s then Format.pp_print_string ppf "(none)"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_tuple ppf (Vset.elements s)
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i step ->
      Format.fprintf ppf "step %d: keep %a@," (i + 1) pp_tuple step.picked;
      if Vset.cardinal step.winnow > 1 then
        Format.fprintf ppf "        (also undominated: %a)@," pp_set
          (Vset.remove step.picked step.winnow);
      if not (Vset.is_empty step.removed) then
        Format.fprintf ppf "        discards %a@," pp_set step.removed)
    t.steps;
  Format.fprintf ppf "kept %d tuple(s)@]" (Vset.cardinal t.result)
