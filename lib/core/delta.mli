(** The incremental update engine.

    Ties the delta paths of the individual layers into one stateful
    value: a batch of tuple insertions and deletions flows through
    {!Conflict.apply_delta} (append/tombstone graph maintenance),
    {!Pref_rules.orient} + {!Priority.update} (re-orient only the new
    edges, drop arcs of tombstoned tuples, re-validate acyclicity) and
    {!Decompose.apply_delta} (re-decompose only the touched components,
    keep every untouched component's cached repair lists live).

    The headline property: answering a query after an update costs
    recomputation only for the components the update actually dirtied.
    On an instance of many small components this beats the rebuild
    ([Conflict.build] + [Decompose.make] + cold cache) by orders of
    magnitude — see the DELTA section of the benchmark suite.

    Every successful batch records its inverse, so {!undo} is an
    ordinary incremental update replayed backwards (and therefore
    exactly as cheap). A failed batch — schema mismatch, deleting an
    absent tuple, a preference rule turning cyclic on the new instance —
    leaves the engine observably unchanged. *)

open Relational

type t
(** Mutable: {!apply} and {!undo} advance the engine in place. The
    underlying [Conflict.t]/[Priority.t]/[Decompose.t] values remain
    persistent — snapshots taken via the accessors stay valid. *)

type op = Insert of Tuple.t | Delete of Tuple.t

type report = {
  inserted : int;
  deleted : int;
  edges_added : int;  (** conflict edges the batch created *)
  edges_removed : int;  (** conflict edges the batch destroyed *)
  components_dirtied : int;  (** components re-decomposed *)
  cache_evicted : int;  (** cached repair lists invalidated *)
  cache_retained : int;  (** cached repair lists carried over live *)
}
(** What one batch did — the per-batch view of the cumulative
    {!Decompose.counters} telemetry. *)

val create :
  ?rule:Pref_rules.rule ->
  Constraints.Fd.t list ->
  Relation.t ->
  (t, string) result
(** Builds the initial conflict graph, priority and decomposition from
    scratch. [rule] orients conflict edges as in {!Pref_rules.apply}
    (default: no preferences, i.e. the empty priority); fails when the
    rule is cyclic on the instance or an FD does not fit the schema. *)

val apply : t -> op list -> (report, string) result
(** Applies one batch atomically: on [Error] nothing changed — not the
    instance, not the priority, not the cache. Deletions are applied
    before insertions ({!Conflict.apply_delta}'s convention), so a batch
    may delete and re-insert the same tuple value. An empty batch is a
    valid no-op. *)

val undo : t -> (report, string) result
(** Reverts the most recent not-yet-undone batch by applying its
    inverse (inserted tuples deleted, deleted tuples re-inserted — under
    fresh ids, as any insertion). Errors when there is nothing to
    undo. *)

val history_depth : t -> int
(** Number of batches available to {!undo}. *)

val drop_history : t -> unit
(** Empties the undo history without touching the instance: subsequent
    {!undo}s report nothing to undo. Used when an external durability
    boundary (a store checkpoint) makes states older than the current
    one unreachable — a reopened store cannot replay past its snapshot,
    so the live engine must not undo past it either. *)

val conflict : t -> Conflict.t
val priority : t -> Priority.t

val decompose : t -> Decompose.t
(** The live decomposition — query through this to benefit from the
    retained component caches; its {!Decompose.counters} accumulate over
    the engine's whole history. *)

val relation : t -> Relation.t
(** The current live instance. *)

val column_stats : t -> Planner.Stats.t
(** Exact per-column statistics over the live instance, built by one
    full scan on first demand and thereafter patched in place by every
    accepted batch — {!apply} and {!undo} alike — so they never go
    stale and never rescan. The value's [patched]/[rebuilt] counters
    expose the maintenance history (surfaced by the shell's [stats]
    command). *)

val stats_lookup : t -> string -> Planner.Stats.t option
(** The {!column_stats} as the by-name lookup the planner consumes
    ([Planner.Engine]'s [?stats]): [Some] for the engine's own relation,
    [None] for anything else. Forces the first scan. *)

val pp_report : Format.formatter -> report -> unit
