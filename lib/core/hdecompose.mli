(** Component decomposition of the conflict hypergraph — {!Decompose}
    generalized to denial constraints.

    Hyperedges connect their vertices, so the hypergraph splits into
    connected components and every preferred-repair family of
    {!Hfamily} factorizes as a cross product of per-component repairs:
    priorities connect only co-edge facts, and Pareto/global
    improvements act within components. Free vertices (covered by no
    edge) are aggregated into one set — they belong to every preferred
    repair — and a vertex carrying a singleton edge forms a one-vertex
    component whose only repair is the empty set. Slots, the
    preferred-repair cache, the Pool-parallel warm/count/certainty
    machinery and the counter discipline mirror {!Decompose}. *)

open Graphs

type t

type counters = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable component_repairs : int;
  mutable combos_streamed : int;
  mutable components_examined : int;
  mutable early_exits : int;
  mutable deltas_applied : int;
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable components_dirtied : int;
  mutable cache_evicted : int;
  mutable cache_retained : int;
}

exception Empty_family of Hfamily.name
(** Raised by the streaming paths when a component contributes no
    preferred repair — which non-emptiness of all three families rules
    out; the exception exists for the same defensive reason as
    {!Cqa.Empty_family}. *)

val make : Hyper.t -> Hpriority.t -> t

val hyper : t -> Hyper.t
val priority : t -> Hpriority.t

val components : t -> Vset.t list
(** Logical components in canonical order (increasing smallest vertex),
    free vertices as synthesized singletons — reporting only. *)

val component_of : t -> int -> Vset.t
val component_count : t -> int
(** [List.length (components d)] without synthesizing the free
    singletons (each would be a dense [Vset] sized by its fact id —
    gigabytes on a million-fact instance). *)

val max_component : t -> int

val apply_delta : t -> Hyper.t -> Hpriority.t -> Hyper.delta -> t
(** Carry the decomposition across {!Hyper.apply_delta}: [hyper] and
    [priority] are the updated structures. Only components reached by
    the delta are recomputed; untouched slots keep their cache
    entries. *)

val preferred_within : Hfamily.name -> t -> Vset.t -> Vset.t list
(** The component's preferred repairs (original vertex ids), cached. *)

val count_within : Hfamily.name -> t -> Vset.t -> int
(** Cardinality only; streams without populating the cache on a miss. *)

val warm : Hfamily.name -> t -> unit
(** Fill the cache for every live component — in parallel across pool
    domains when available. *)

val count : Hfamily.name -> t -> int
(** Number of preferred repairs of the whole instance (product of
    per-component counts, saturating at [max_int]). *)

val iter : Hfamily.name -> t -> (Vset.t -> unit) -> unit
(** Stream the full preferred-repair set as the cross product of
    per-component repairs seeded with the free vertices. *)

val exists : Hfamily.name -> t -> (Vset.t -> bool) -> bool
val for_all : Hfamily.name -> t -> (Vset.t -> bool) -> bool
val member : Hfamily.name -> t -> Vset.t -> bool
val one : Hfamily.name -> t -> Vset.t option

val certainty_ground :
  Hfamily.name -> t -> Query.Ast.t -> (Cqa.certainty, string) result
(** Polynomial ground certainty through per-component demand checks. *)

val certainty : Hfamily.name -> t -> Query.Ast.t -> Cqa.certainty
(** Ground route when possible, deviation-scan + cross-product streaming
    otherwise. Raises [Invalid_argument] on an open query. *)

val consistent_answer : Hfamily.name -> t -> Query.Ast.t -> bool

val certain_tuples : Hfamily.name -> t -> Vset.t
val possible_tuples : Hfamily.name -> t -> Vset.t

val evaluate_in_repair : t -> Vset.t -> Query.Ast.t -> bool

(** {2 Telemetry} *)

val counters : t -> counters
val reset_counters : t -> unit
val reset_cache : t -> unit
val pp_counters : Format.formatter -> counters -> unit
