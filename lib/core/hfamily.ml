open Graphs

type name = Rep | Pareto | Global

let all_names = [ Rep; Pareto; Global ]

let name_to_string = function
  | Rep -> "Rep"
  | Pareto -> "Pareto"
  | Global -> "Global"

let name_of_string s =
  match String.lowercase_ascii s with
  | "rep" -> Some Rep
  | "pareto" | "p-rep" | "prep" -> Some Pareto
  | "global" | "g-rep" | "grep" -> Some Global
  | _ -> None

(* [s] has a Pareto improvement iff some live b ∉ s can buy its way in:
   every blocking hyperedge (e ∋ b with e \ {b} ⊆ s) contains a fact
   dominated by b. Then {b} ∪ (s minus the facts b dominates) is
   consistent and a Pareto improvement; conversely any Pareto witness b
   must unblock every blocking edge through a dominated fact. A
   singleton edge {b} blocks with no fact to dominate, so such b never
   witnesses. Polynomial — no repair enumeration. *)
let pareto_improvable h p s =
  Vset.exists
    (fun b ->
      List.for_all
        (fun e ->
          let blockers = Vset.remove b e in
          (not (Vset.subset blockers s))
          || Vset.exists (fun a -> Hpriority.dominates p b a) blockers)
        (Hyper.edges_containing h b))
    (Vset.diff (Hyper.live h) s)

let is_pareto_optimal h p s = not (pareto_improvable h p s)

(* r'' globally improves r: r'' ≠ r and every fact lost from r is
   answered by a gained fact dominating it (arXiv:0908.0464, Def. 4). *)
let global_improves p ~over:r r'' =
  (not (Vset.equal r r''))
  &&
  let gained = Vset.diff r'' r in
  Vset.for_all
    (fun a -> Vset.exists (fun b -> Hpriority.dominates p b a) gained)
    (Vset.diff r r'')

(* If any consistent set globally improves r, so does its maximal
   extension (gained facts only grow, lost facts only shrink), so the
   witness search ranges over repairs only — still the co-NP witness
   search, but on the sharded path it runs per component. *)
let globally_optimal_among all p r =
  not (List.exists (fun r'' -> global_improves p ~over:r r'') all)

let repairs family h p =
  match family with
  | Rep -> Hyper.repairs h
  | Pareto -> List.filter (is_pareto_optimal h p) (Hyper.repairs h)
  | Global ->
    let all = Hyper.repairs h in
    List.filter (globally_optimal_among all p) all

let repairs_relations family h p =
  List.map (Hyper.to_relation h) (repairs family h p)

(* Membership of one already-enumerated repair; skips the maximality
   test. Global needs the repair space for its witness search. *)
let member family h p r' =
  match family with
  | Rep -> true
  | Pareto -> is_pareto_optimal h p r'
  | Global -> globally_optimal_among (Hyper.repairs h) p r'

let check family h p candidate =
  Hyper.is_repair h candidate && member family h p candidate

let check_relation family h p r =
  check family h p (Hyper.vset_of_relation h r)

let iter family h p f =
  match family with
  | Rep -> List.iter f (Hyper.repairs h)
  | Pareto -> List.iter f (repairs Pareto h p)
  | Global -> List.iter f (repairs Global h p)

let exists family h p pred =
  List.exists pred (repairs family h p)

let for_all family h p pred =
  List.for_all pred (repairs family h p)

let one family h p =
  match repairs family h p with [] -> None | r :: _ -> Some r

let pp_name ppf n = Format.pp_print_string ppf (name_to_string n)
