open Graphs

let outside c r' = Vset.diff (Conflict.live c) r'

let improving_swap c p r' =
  let candidate y acc =
    match acc with
    | Some _ -> acc
    | None ->
      let nb = Conflict.neighbors c y in
      if Vset.inter_cardinal nb r' = 1 then begin
        let x = Vset.min_elt (Vset.inter nb r') in
        if Priority.dominates p y x then Some (y, x) else None
      end
      else None
  in
  Vset.fold candidate (outside c r') None

let is_locally_optimal c p r' = improving_swap c p r' = None

let improving_tuple c p r' =
  let candidate y acc =
    match acc with
    | Some _ -> acc
    | None ->
      let inside = Vset.inter (Conflict.neighbors c y) r' in
      if
        (not (Vset.is_empty inside))
        && Vset.for_all (fun x -> Priority.dominates p y x) inside
      then Some y
      else None
  in
  Vset.fold candidate (outside c r') None

let is_semi_globally_optimal c p r' = improving_tuple c p r' = None

let preferred_to _c p r1 r2 =
  Vset.for_all
    (fun x ->
      Vset.exists (fun y -> Priority.dominates p y x) (Vset.diff r2 r1))
    (Vset.diff r1 r2)

let dominating_witness c p r' =
  let found = ref None in
  (try
     Repair.iter
       (fun r'' ->
         if (not (Vset.equal r' r'')) && preferred_to c p r' r'' then begin
           found := Some r'';
           raise Exit
         end)
       c
   with Exit -> ());
  !found

let is_globally_optimal c p r' = dominating_witness c p r' = None

(* Literal §3.3 definition, by explicit subset search: exponential in the
   number of tuples involved, intended for the small instances of the
   test suite. *)
let is_globally_optimal_by_replacement c p r' =
  let g = Conflict.graph c in
  let subsets s =
    Vset.fold
      (fun v acc -> List.concat_map (fun set -> [ set; Vset.add v set ]) acc)
      s [ Vset.empty ]
  in
  (* Dominators of X are the only useful members of Y: every y ∈ Y must
     dominate some x ∈ X for Y to matter minimally. *)
  let improvable x_set =
    let dominator_pool =
      Vset.fold
        (fun x acc -> Vset.union (Priority.dominators p x) acc)
        x_set Vset.empty
    in
    let kept = Vset.diff r' x_set in
    List.exists
      (fun y_set ->
        let covered =
          Vset.for_all
            (fun x ->
              Vset.exists (fun y -> Priority.dominates p y x) y_set)
            x_set
        in
        covered && Undirected.is_independent g (Vset.union kept y_set))
      (subsets dominator_pool)
  in
  not
    (List.exists
       (fun x_set -> (not (Vset.is_empty x_set)) && improvable x_set)
       (subsets r'))
