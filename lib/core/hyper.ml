open Relational
open Graphs

(* Vertex ids ARE the relation's fact ids, exactly as in {!Conflict}:
   the instance is the id-addressed store of {!Relational.Relation} and
   this module keeps no tuple -> vertex map of its own. Violation
   detection rides the relation's per-column postings through
   {!Constraints.Denial.violation_sets} — the equality atoms of a
   constraint are joined by postings probes instead of the O(n^k) nested
   scan — and the incremental path re-detects only the witnesses
   touching an inserted fact ({!Constraints.Denial.violation_sets_pinned}),
   patching the packed hypergraph in place. *)

type t = {
  denials : Constraints.Denial.t list;
  relation : Relation.t; (* fact id = vertex id; tombstones = dead vertices *)
  hyper : Hypergraph.t;
}

let m_builds =
  Obs.Registry.counter ~help:"Conflict hypergraph builds"
    "prefdb_hyper_builds_total"

let m_build_seconds =
  Obs.Registry.histogram ~help:"Conflict hypergraph build latency"
    "prefdb_hyper_build_seconds"

let m_edges =
  Obs.Registry.gauge ~help:"Hyperedges in the last conflict hypergraph built"
    "prefdb_hyper_edges"

let m_deltas =
  Obs.Registry.counter ~help:"Batched deltas applied to a conflict hypergraph"
    "prefdb_hyper_deltas_total"

(* Columns probed by the equality atoms: force their postings once so
   the joins below never trigger a lazy build mid-flight. *)
let eq_columns schema denials =
  let cols = ref [] in
  List.iter
    (fun dc ->
      List.iter
        (fun { Constraints.Denial.left; op; right } ->
          if op = Constraints.Denial.Eq then
            List.iter
              (function
                | Constraints.Denial.Attr (_, a) -> (
                  match Schema.position schema a with
                  | Some c -> cols := c :: !cols
                  | None -> ())
                | Constraints.Denial.Const _ -> ())
              [ left; right ])
        (Constraints.Denial.body dc))
    denials;
  List.sort_uniq compare !cols

let schema h = Relation.schema h.relation
let denials h = h.denials
let relation h = h.relation
let hypergraph h = h.hyper
let size h = Relation.slot_count h.relation
let live h = Relation.live_ids h.relation
let is_live h v = Vset.mem v (Relation.live_ids h.relation)

let tuple h i =
  if i < 0 || i >= size h then invalid_arg "Hyper.tuple: out of range";
  Relation.fact h.relation i

let index h t = Relation.find h.relation t
let index_exn h t = Relation.find_exn h.relation t

let build denials relation =
  Obs.Span.with_span "hyper.build"
    ~args:
      [
        ("tuples", Obs.Event.Int (Relation.cardinality relation));
        ("denials", Obs.Event.Int (List.length denials));
      ]
  @@ fun () ->
  let t0 = Obs.Span.now () in
  let schema = Relation.schema relation in
  List.iter
    (fun dc ->
      match Constraints.Denial.wf schema dc with
      | Ok () -> ()
      | Error e -> invalid_arg e)
    denials;
  List.iter (Relation.prepare_column relation) (eq_columns schema denials);
  let edges =
    List.concat_map
      (fun dc -> Constraints.Denial.violation_sets schema dc relation)
      denials
  in
  let hyper = Hypergraph.create (Relation.slot_count relation) edges in
  Obs.Metric.incr m_builds;
  Obs.Metric.observe m_build_seconds (Obs.Span.now () -. t0);
  Obs.Metric.set_gauge m_edges (float_of_int (Hypergraph.edge_count hyper));
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [ ("edges", Obs.Event.Int (Hypergraph.edge_count hyper)) ];
  { denials; relation; hyper }

let of_fds fds relation =
  let schema = Relation.schema relation in
  build (List.concat_map (Constraints.Denial.of_fd schema) fds) relation

let is_consistent h = Hypergraph.edge_count h.hyper = 0

let repairs h = Hypergraph.enumerate ~universe:(live h) h.hyper
let is_repair h s = Hypergraph.is_maximal_independent ~universe:(live h) h.hyper s

let neighbors h v = Hypergraph.neighbors h.hyper v
let edges_containing h v = Hypergraph.edges_containing h.hyper v

(* Do [u] and [v] share a hyperedge? The co-conflict test priority arcs
   must pass; binary conflict graphs special-case this to edge lookup. *)
let conflicting h u v =
  u <> v
  && u >= 0 && u < size h && v >= 0 && v < size h
  && (let found = ref false in
      List.iter
        (fun e -> if Vset.mem v e then found := true)
        (Hypergraph.edges_containing h.hyper u);
      !found)

let to_relation h s =
  Relation.of_tuples (schema h) (List.map (tuple h) (Vset.elements s))

let vset_of_relation h r =
  Relation.fold
    (fun t acc ->
      match index h t with
      | Some v -> Vset.add v acc
      | None -> invalid_arg "Hyper.vset_of_relation: tuple not in instance")
    r Vset.empty

(* --- polynomial ground CQA over hyperedges ----------------------------- *)

let demand_of_clause h clause =
  Ground.of_clause ~rel_name:(Schema.name (schema h)) ~index:(index h) clause

(* A repair ⊇ required avoiding forbidden exists iff some independent
   S ⊇ required, S ∩ forbidden = ∅, blocks every forbidden vertex b: a
   hyperedge e ∋ b with e \ {b} ⊆ S (then b can never be added, and a
   maximal extension inside V \ forbidden is maximal overall). *)
let demand_satisfiable h { Ground.required; forbidden } =
  let hg = h.hyper in
  if not (Vset.is_empty (Vset.inter required forbidden)) then false
  else if not (Hypergraph.is_independent hg required) then false
  else begin
    let rec assign s = function
      | [] -> Hypergraph.is_independent hg s
      | b :: rest ->
        List.exists
          (fun e ->
            let blockers = Vset.remove b e in
            Vset.is_empty (Vset.inter blockers forbidden)
            && begin
                 let s' = Vset.union s blockers in
                 Hypergraph.is_independent hg s' && assign s' rest
               end)
          (Hypergraph.edges_containing hg b)
    in
    assign required (Vset.elements forbidden)
  end

let some_repair_satisfies h q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause h clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some d) -> Ok (demand_satisfiable h d)))
      (Ok false) clauses

let ground_certainty h q =
  if not (Query.Ast.is_ground q) then
    Error "ground_certainty: query is not ground"
  else
    match some_repair_satisfies h (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_repair_satisfies h q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

(* --- incremental updates ----------------------------------------------- *)

type delta = {
  inserted : int list;
  deleted : int list;
  edges_added : Vset.t list;
  edges_removed : Vset.t list;
}

let apply_delta h ~insert ~delete =
  Obs.Span.with_span "hyper.apply_delta"
    ~args:
      [
        ("insert", Obs.Event.Int (List.length insert));
        ("delete", Obs.Event.Int (List.length delete));
      ]
  @@ fun () ->
  let schema = schema h in
  (* validate the batch up front, so a rejected delta leaves no trace *)
  let rec validate_deletes seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Relation.mem h.relation t) then
        Error
          (Printf.sprintf "delete: tuple %s is not part of the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "delete: tuple %s listed twice" (Tuple.to_string t))
      else validate_deletes (t :: seen) rest
  in
  let rec validate_inserts seen = function
    | [] -> Ok ()
    | t :: rest ->
      if not (Tuple.conforms schema t) then
        Error
          (Printf.sprintf "insert: tuple %s does not conform to schema %s"
             (Tuple.to_string t) (Schema.name schema))
      else if
        Relation.mem h.relation t && not (List.exists (Tuple.equal t) delete)
      then
        Error
          (Printf.sprintf "insert: tuple %s is already in the instance"
             (Tuple.to_string t))
      else if List.exists (Tuple.equal t) seen then
        Error
          (Printf.sprintf "insert: tuple %s listed twice" (Tuple.to_string t))
      else validate_inserts (t :: seen) rest
  in
  match
    match validate_deletes [] delete with
    | Error _ as e -> e
    | Ok () -> validate_inserts [] insert
  with
  | Error _ as e -> e
  | Ok () ->
    (* the store tombstones deletions and appends insertions under fresh
       ids; its postings move in the same step, so the pinned probes
       below see exactly the post-delta live instance *)
    let relation', deleted, inserted =
      Relation.patch h.relation ~delete ~insert
    in
    let deleted_set = Vset.of_list deleted in
    (* edges that die: every minimal edge meeting a deleted vertex *)
    let edges_removed =
      List.sort_uniq Vset.compare
        (List.concat_map
           (fun v -> Hypergraph.edges_containing h.hyper v)
           deleted)
    in
    (* new witnesses all involve an inserted fact: one pinned join per
       inserted id, never a rescan of the unrelated instance. A witness
       touching two inserted facts is found twice; sort_uniq collapses
       it. Witnesses meeting the deleted set cannot arise (the pinned
       join ranges over live ids only). *)
    let edges_added =
      List.sort_uniq Vset.compare
        (List.concat_map
           (fun (v, dc) ->
             Constraints.Denial.violation_sets_pinned schema dc relation' v)
           (List.concat_map
              (fun v -> List.map (fun dc -> (v, dc)) h.denials)
              inserted))
    in
    (* drop witnesses already present (an inserted fact can re-create a
       surviving edge only if it matches an old id, which fresh ids
       exclude; but a pinned join may also return witnesses made purely
       of other inserted facts, already covered above — sort_uniq has
       collapsed those) *)
    let hyper' =
      Hypergraph.patch h.hyper
        ~n:(Relation.slot_count relation')
        ~drop:deleted_set ~add:edges_added
    in
    Obs.Metric.incr m_deltas;
    Obs.Metric.set_gauge m_edges
      (float_of_int (Hypergraph.edge_count hyper'));
    if Obs.Span.enabled () then
      Obs.Span.annotate
        [
          ("edges_added", Obs.Event.Int (List.length edges_added));
          ("edges_removed", Obs.Event.Int (List.length edges_removed));
        ];
    Ok
      ( { h with relation = relation'; hyper = hyper' },
        { inserted; deleted; edges_added; edges_removed } )

let pp ppf h =
  Format.fprintf ppf "@[<v>hyper-conflict structure of %a with {%a}:@,"
    Schema.pp (schema h)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Constraints.Denial.pp)
    h.denials;
  for i = 0 to size h - 1 do
    if is_live h i then
      Format.fprintf ppf "  t%d = %a@," i Tuple.pp (Relation.fact h.relation i)
  done;
  List.iter
    (fun e -> Format.fprintf ppf "  edge %a@," Vset.pp e)
    (Hypergraph.edges h.hyper);
  Format.fprintf ppf "@]"
