(** Component-wise evaluation of preferred repairs.

    Conflicts never leave a connected component of the conflict graph, and
    every one of the paper's families factorizes over components:

    - repairs of r = unions of one repair per component;
    - an L/S-improving witness y acts inside y's component;
    - ≪-domination pairs each lost tuple with a dominator it conflicts
      with, hence in the same component, so global optimality is
      equivalent to component-wise global optimality;
    - Algorithm 1's winnow is component-local and runs on different
      components interleave freely (Prop. 7 per component).

    The global repair space is the product of the component spaces — often
    astronomically large while every component stays small. This module
    exploits that: counting preferred repairs, deciding ground-query
    certainty and computing aggregate ranges all become tractable whenever
    components are small, even for the families whose global problems are
    co-NP- or Π₂ᵖ-complete (the hardness constructions need components
    that grow with the instance).

    Correctness of the factorization is cross-validated against the
    monolithic engines in the test suite. *)

open Graphs

type t

type counters = {
  mutable cache_hits : int;
      (** [preferred_within] served from the component cache *)
  mutable cache_misses : int;
      (** component repair lists actually computed *)
  mutable component_repairs : int;
      (** repairs materialized by cache misses, summed over components *)
  mutable combos_streamed : int;
      (** cross-product combinations handed to a consumer ([iter],
          [certainty], ...) *)
  mutable components_examined : int;
      (** per-component checks performed (clause demands, deviation
          scans) *)
  mutable early_exits : int;
      (** evaluations cut short before exhausting their search space *)
  mutable deltas_applied : int;
      (** incremental updates folded in through {!apply_delta} *)
  mutable edges_added : int;
      (** conflict edges created by those deltas *)
  mutable edges_removed : int;
      (** conflict edges destroyed by those deltas *)
  mutable components_dirtied : int;
      (** components invalidated (recomputed) by deltas *)
  mutable cache_evicted : int;
      (** [(family, component)] cache entries dropped by deltas *)
  mutable cache_retained : int;
      (** cache entries of untouched components carried across deltas *)
}
(** Observability counters, accumulated across every query answered
    through one [t]. The fields are mutable only so the implementation
    can bump them in place; treat values returned by {!counters} as a
    snapshot. *)

val make : Conflict.t -> Priority.t -> t
(** Precomputes the components. O(V + E). Conflict-free vertices are not
    given singleton components of their own: they are aggregated into one
    internal {e free set} (a tuple with no conflicts belongs to every
    repair), which keeps decomposition linear even when almost all of a
    huge instance is clean. *)

val conflict : t -> Conflict.t
val priority : t -> Priority.t

val components : t -> Vset.t list
(** The logical components, including one synthesized singleton per
    conflict-free vertex — the historical reporting shape. Evaluation
    paths ([count], [certainty], [iter], ...) never materialize the
    singletons; prefer them on large instances. *)

val component_count : t -> int
(** [List.length (components d)] without synthesizing the free
    singletons (each would be a dense [Vset] sized by its fact id —
    gigabytes on a million-fact instance). *)

val max_component : t -> int
(** Size of the largest connected component — the parameter every
    exponential bound below is measured in. 0 iff there are no
    conflicts. *)

val counters : t -> counters
(** A snapshot of the counters accumulated so far (callers can diff two
    snapshots around a query). *)

val reset_counters : t -> unit
(** Zeroes the live counters. The repair cache itself is kept, so a
    query replayed after a reset reports pure cache hits. *)

val reset_cache : t -> unit
(** Drops every cached [(family, component)] repair list, so the next
    query pays the component solves again. Counters are kept. Meant for
    measurement harnesses that re-run cold evaluations on one
    decomposition. *)

val warm : Family.name -> t -> unit
(** Fills the [(family, component)] cache for every component that is
    not already cached. Counter-equivalent to a sequential
    [preferred_within] sweep: one [cache_hits] per already-cached
    component, one [cache_misses] (plus its [component_repairs]) per
    filled one. When {!Pool.jobs}[ () > 1], the misses are solved on the
    domain pool — components are mutually independent — with per-lane
    counter shards merged after the join and all cache writes published
    by the calling domain in slot order, so the merged counters and the
    cache contents are identical to the sequential fill. [count],
    [certainty] and the streaming consumers call this implicitly; call
    it directly to front-load the solves. *)

val pp_counters : Format.formatter -> counters -> unit

val component_of : t -> int -> Vset.t
(** The component containing the given vertex. Raises [Invalid_argument]
    on tombstoned (deleted) vertices. *)

val apply_delta : t -> Conflict.t -> Priority.t -> Conflict.delta -> t
(** [apply_delta d c' p' delta] carries the decomposition across an
    incremental update: [c'], [p'] and [delta] must come from
    {!Conflict.apply_delta} (and {!Priority.update}) on [d]'s conflict.
    Only components actually reached by the delta — those containing a
    deleted vertex or an endpoint of an added/removed edge, plus the
    inserted vertices — are re-decomposed. Component slots are stable:
    an untouched component is provably unchanged and keeps its slot, its
    vertex-index entries and its cached [(family, component)] repair
    lists verbatim; only the dirtied slots' cache entries are evicted.
    The returned value shares [d]'s counters record, so {!counters}
    reports telemetry accumulated over the whole update history
    ([deltas_applied], [components_dirtied], [cache_evicted],
    [cache_retained], ...). O(touched components + V) per call, never
    proportional to the number of untouched components' repairs. *)

val preferred_within :
  Family.name -> t -> Vset.t -> Vset.t list
(** The family's preferred repairs of one component, as subsets of the
    original vertex ids. Cost is exponential only in the component size. *)

val count_within : Family.name -> t -> Vset.t -> int
(** Number of preferred repairs of one component. Served from the cache
    when the component's repair list is already materialized; otherwise
    streams the family over the component's sub-instance and counts,
    without building the list or populating the cache — counting a huge
    component never allocates its repairs. *)

val count : Family.name -> t -> int
(** Number of preferred repairs of the whole instance — the product of
    the per-component counts. Never materializes the product. The true
    count can exceed [max_int] (Example 4 at n ≥ 62); the product
    saturates at [max_int] instead of wrapping. *)

val certainty_ground :
  Family.name -> t -> Query.Ast.t -> (Cqa.certainty, string) result
(** Certainty of a ground query w.r.t. the family's preferred repairs,
    decided component-wise: a DNF clause is satisfiable by a preferred
    repair iff its per-component demands are each satisfiable by a
    preferred repair of that component (untouched components are free by
    P1). Exponential only in the largest component touched by the
    query. *)

(** {2 Streaming the family through the component decomposition}

    Sharded counterparts of [Family.iter/exists/for_all/member/one] and
    [Cqa.certainty/consistent_answer/consistent_answers_open]. They
    enumerate the global family as the cross product of per-component
    preferred repairs (cached per [(family, component)]), so the
    per-component work is exponential only in the largest component —
    the whole-graph paths in [Family]/[Cqa] pay exponential cost in the
    {e total} number of conflicts for the same answers. Enumeration
    order is unspecified and differs from [Family.iter]. *)

val iter : Family.name -> t -> (Vset.t -> unit) -> unit
(** Streams every preferred repair of the whole instance without
    materializing the product. Raises [Cqa.Empty_family] if some
    component contributes no preferred repair (a P1 violation — see
    [Cqa]); with no conflicts at all, yields the single repair [∅]. *)

val exists : Family.name -> t -> (Vset.t -> bool) -> bool
(** First-witness early exit over {!iter}. *)

val for_all : Family.name -> t -> (Vset.t -> bool) -> bool
(** First-counterexample early exit over {!iter}. Never vacuous:
    {!iter} raises [Cqa.Empty_family] rather than yield nothing. *)

val member : Family.name -> t -> Vset.t -> bool
(** Membership in the global family, decided component-wise: [r] is a
    preferred repair iff its restriction to each component is a
    preferred repair of that component. Exponential only in the largest
    component, even for G (whose whole-graph [Family.check] searches
    the global repair space). *)

val one : Family.name -> t -> Vset.t option
(** Some preferred repair — the union of one preferred repair per
    component. [None] only on a P1 violation. *)

val certainty : Family.name -> t -> Query.Ast.t -> Cqa.certainty
(** Certainty of a closed query. Ground quantifier-free queries route
    through {!certainty_ground} (exponential only in the largest
    component {e touched by the query}). Quantified queries get a
    two-pass evaluation: a deviation scan over all repairs at component
    Hamming distance ≤ 1 from a baseline settles [Ambiguous] verdicts
    after only sum-per-component many evaluations, and only a certain
    verdict (with ≥ 2 multi-repair components) falls back to the full
    cross product. That fallback is unavoidable: certainty of
    quantified queries is co-NP-hard already for instances whose
    components all have ≤ 2 tuples, so no algorithm can be exponential
    in the largest component alone. Raises [Cqa.Empty_family] on a P1
    violation and [Invalid_argument] on open queries. *)

val consistent_answer : Family.name -> t -> Query.Ast.t -> bool
(** [certainty = Certainly_true], with the ground route short-cut to a
    single ¬Q satisfiability check. *)

val consistent_answers_open :
  Family.name -> t -> Query.Ast.t -> string list * Relational.Value.t list list
(** Free variables (sorted) and the bindings answering the query in
    every preferred repair, intersected streamingly over {!iter} with an
    early exit once the running intersection empties. Raises
    [Cqa.Empty_family] on a P1 violation. *)

val certain_tuples : Family.name -> t -> Vset.t
(** Tuples belonging to {e every} preferred repair — the certain answers
    to the identity query, computed per component. A conflict-free tuple
    is always certain. *)

val possible_tuples : Family.name -> t -> Vset.t
(** Tuples belonging to at least one preferred repair. The complement
    consists of tuples the preferences rule out entirely. *)

val aggregate_range :
  Family.name -> t -> Aggregate.agg -> (Aggregate.range, string) result
(** Aggregate ranges over the preferred repairs, summed/combined across
    components: SUM and COUNT ranges add; MIN/MAX combine monotonically.
    Exponential only in component sizes. *)
