open Relational
open Graphs

(* {!Decompose} lifted to the hyperedge substrate: component sharding,
   free-vertex aggregation, the slot-stable component array, the
   per-slot preferred-repair cache and the Pool-parallel warm / count /
   certainty paths all carry over — with two hypergraph-specific
   differences. (1) "Conflict-free" means covered by NO hyperedge, not
   "has no neighbors": a vertex in a singleton edge {v} has no
   neighbors yet is inconsistent alone, forms its own one-vertex
   component and contributes the empty repair. (2) The per-component
   sub-instances rebuild through {!Hyper.build}, whose violation
   re-detection on the induced tuples reproduces exactly the
   component's edges (witnesses are hereditary under restriction). *)

type counters = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable component_repairs : int;
  mutable combos_streamed : int;
  mutable components_examined : int;
  mutable early_exits : int;
  mutable deltas_applied : int;
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable components_dirtied : int;
  mutable cache_evicted : int;
  mutable cache_retained : int;
}

let fresh_counters () =
  {
    cache_hits = 0;
    cache_misses = 0;
    component_repairs = 0;
    combos_streamed = 0;
    components_examined = 0;
    early_exits = 0;
    deltas_applied = 0;
    edges_added = 0;
    edges_removed = 0;
    components_dirtied = 0;
    cache_evicted = 0;
    cache_retained = 0;
  }

(* Parallel jobs shard their counting into per-lane records and the
   submitting domain folds the shards back in after the join (integer
   addition commutes, so totals are schedule-independent). *)
let merge_counters dst z =
  dst.cache_hits <- dst.cache_hits + z.cache_hits;
  dst.cache_misses <- dst.cache_misses + z.cache_misses;
  dst.component_repairs <- dst.component_repairs + z.component_repairs;
  dst.combos_streamed <- dst.combos_streamed + z.combos_streamed;
  dst.components_examined <- dst.components_examined + z.components_examined;
  dst.early_exits <- dst.early_exits + z.early_exits;
  dst.deltas_applied <- dst.deltas_applied + z.deltas_applied;
  dst.edges_added <- dst.edges_added + z.edges_added;
  dst.edges_removed <- dst.edges_removed + z.edges_removed;
  dst.components_dirtied <- dst.components_dirtied + z.components_dirtied;
  dst.cache_evicted <- dst.cache_evicted + z.cache_evicted;
  dst.cache_retained <- dst.cache_retained + z.cache_retained

type t = {
  hyper : Hyper.t;
  priority : Hpriority.t;
  components : Vset.t array;
      (* multi-vertex (or covered-singleton) components, indexed by
         component SLOT; [Vset.empty] marks a free slot *)
  free : Vset.t;
      (* live vertices covered by no hyperedge, aggregated into ONE set;
         a free vertex belongs to every preferred repair *)
  comp_index : int array;
      (* slot of the vertex's component; -1 = free or tombstoned *)
  cache : (Hfamily.name * int, Vset.t list) Hashtbl.t;
      (* (family, component slot) -> preferred repairs in original ids *)
  counters : counters;
}

let make hyper priority =
  Obs.Span.with_span "hdecompose.make" @@ fun () ->
  let hg = Hyper.hypergraph hyper in
  let covered = Hypergraph.covered hg in
  let live = Hyper.live hyper in
  let n = Hyper.size hyper in
  let comp_index = Array.make (max 1 n) (-1) in
  let comps = ref [] in
  let nslots = ref 0 in
  (* covered vertices only: tombstones and edge-free live tuples never
     allocate a component. A singleton-edge vertex is covered with no
     neighbors and becomes a one-vertex component. *)
  for v = 0 to n - 1 do
    if comp_index.(v) < 0 && Vset.mem v live && Vset.mem v covered then begin
      let rec grow frontier comp =
        if Vset.is_empty frontier then comp
        else begin
          let comp = Vset.union comp frontier in
          let next =
            Vset.fold
              (fun u acc -> Vset.union acc (Hypergraph.neighbors hg u))
              frontier Vset.empty
          in
          grow (Vset.diff next comp) comp
        end
      in
      let comp = grow (Vset.singleton v) Vset.empty in
      Vset.iter (fun u -> comp_index.(u) <- !nslots) comp;
      incr nslots;
      comps := comp :: !comps
    end
  done;
  let components = Array.of_list (List.rev !comps) in
  let free = Vset.diff live covered in
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [
        ( "components",
          Obs.Event.Int (Array.length components + Vset.cardinal free) );
      ];
  {
    hyper;
    priority;
    components;
    free;
    comp_index;
    cache = Hashtbl.create 16;
    counters = fresh_counters ();
  }

let hyper d = d.hyper
let priority d = d.priority

(* logical components in canonical order; free vertices are synthesized
   back into singleton sets — reporting only, never the hot path *)
let components d =
  let multi =
    List.filter
      (fun comp -> not (Vset.is_empty comp))
      (Array.to_list d.components)
  in
  let singles = List.rev_map Vset.singleton (Vset.elements d.free) in
  List.sort
    (fun a b -> compare (Vset.min_elt a) (Vset.min_elt b))
    (List.rev_append singles multi)

(* live slots of the stored components, ascending *)
let live_slots d =
  let acc = ref [] in
  for ci = Array.length d.components - 1 downto 0 do
    if not (Vset.is_empty d.components.(ci)) then acc := ci :: !acc
  done;
  !acc

let fold_components f acc d =
  Array.fold_left
    (fun acc comp -> if Vset.is_empty comp then acc else f acc comp)
    acc d.components

(* [List.length (components d)] without materializing: the synthesized
   free singletons would each be a dense [Vset] sized by the fact id,
   which on a million-fact instance is gigabytes of reporting garbage. *)
let component_count d =
  Array.fold_left
    (fun acc comp -> if Vset.is_empty comp then acc else acc + 1)
    (Vset.cardinal d.free) d.components

let max_component d =
  Array.fold_left
    (fun acc comp -> max acc (Vset.cardinal comp))
    (if Vset.is_empty d.free then 0 else 1)
    d.components

(* an immutable snapshot, so callers can diff across a run *)
let counters d =
  let z = d.counters in
  {
    cache_hits = z.cache_hits;
    cache_misses = z.cache_misses;
    component_repairs = z.component_repairs;
    combos_streamed = z.combos_streamed;
    components_examined = z.components_examined;
    early_exits = z.early_exits;
    deltas_applied = z.deltas_applied;
    edges_added = z.edges_added;
    edges_removed = z.edges_removed;
    components_dirtied = z.components_dirtied;
    cache_evicted = z.cache_evicted;
    cache_retained = z.cache_retained;
  }

let reset_counters d =
  let z = d.counters in
  z.cache_hits <- 0;
  z.cache_misses <- 0;
  z.component_repairs <- 0;
  z.combos_streamed <- 0;
  z.components_examined <- 0;
  z.early_exits <- 0;
  z.deltas_applied <- 0;
  z.edges_added <- 0;
  z.edges_removed <- 0;
  z.components_dirtied <- 0;
  z.cache_evicted <- 0;
  z.cache_retained <- 0

let reset_cache d = Hashtbl.reset d.cache

let pp_counters ppf z =
  Format.fprintf ppf
    "@[<v>component cache:        %d hit(s), %d miss(es), %d repair(s) \
     materialized@,\
     streamed:               %d repair combination(s)@,\
     components examined:    %d (%d early exit(s))"
    z.cache_hits z.cache_misses z.component_repairs z.combos_streamed
    z.components_examined z.early_exits;
  if z.deltas_applied > 0 then
    Format.fprintf ppf
      "@,\
       deltas applied:         %d (%d edge(s) added, %d removed)@,\
       delta invalidation:     %d component(s) dirtied, %d cache \
       entr(ies) evicted, %d retained"
      z.deltas_applied z.edges_added z.edges_removed z.components_dirtied
      z.cache_evicted z.cache_retained;
  Format.fprintf ppf "@]"

let component_of d v =
  if v < 0 || v >= Hyper.size d.hyper || not (Hyper.is_live d.hyper v) then
    invalid_arg "Hdecompose.component_of";
  let ci = d.comp_index.(v) in
  if ci < 0 then Vset.singleton v else d.components.(ci)

(* --- incremental maintenance -------------------------------------------- *)

(* Components and cache after a [Hyper.apply_delta]: only components
   actually reached by the delta are recomputed, and only their cache
   entries die — by the delta invariants (added edges touch an inserted
   vertex, removed edges a deleted one) an untouched component's induced
   sub-instance is unchanged. *)
let apply_delta d hyper priority (delta : Hyper.delta) =
  Obs.Span.with_span "hdecompose.apply_delta" @@ fun () ->
  let old_size = Array.length d.comp_index in
  let hg = Hyper.hypergraph hyper in
  let covered' = Hypergraph.covered hg in
  let live' = Hyper.live hyper in
  (* old component slots (and free vertices) reached by the delta *)
  let touched = Hashtbl.create 8 in
  let touched_free = ref Vset.empty in
  let touch v =
    if v < old_size && Hyper.is_live d.hyper v then begin
      let ci = d.comp_index.(v) in
      if ci >= 0 then Hashtbl.replace touched ci ()
      else touched_free := Vset.add v !touched_free
    end
  in
  List.iter touch delta.Hyper.deleted;
  List.iter
    (fun e -> Vset.iter touch e)
    (delta.Hyper.edges_added @ delta.Hyper.edges_removed);
  (* survivors of the touched components, touched free vertices and every
     inserted vertex — closed under shared-edge adjacency in the new
     hypergraph by the delta invariants *)
  let scope =
    Hashtbl.fold
      (fun ci () acc -> Vset.union acc (Vset.inter d.components.(ci) live'))
      touched
      (Vset.union
         (Vset.inter !touched_free live')
         (Vset.of_list delta.Hyper.inserted))
  in
  let recomputed =
    let seen = ref Vset.empty in
    Vset.fold
      (fun v acc ->
        if Vset.mem v !seen then acc
        else begin
          let rec grow frontier comp =
            if Vset.is_empty frontier then comp
            else begin
              let comp = Vset.union comp frontier in
              let next =
                Vset.fold
                  (fun u acc -> Vset.union acc (Hypergraph.neighbors hg u))
                  frontier Vset.empty
              in
              grow (Vset.diff next comp) comp
            end
          in
          let comp = grow (Vset.singleton v) Vset.empty in
          seen := Vset.union !seen comp;
          comp :: acc
        end)
      scope []
  in
  (* a recomputed vertex goes back to the free set only when NO edge
     covers it — a singleton-edge vertex keeps (or gains) a slot *)
  let singles, multi =
    List.partition
      (fun comp ->
        Vset.cardinal comp = 1 && not (Vset.mem (Vset.min_elt comp) covered'))
      recomputed
  in
  let size' = max 1 (Hyper.size hyper) in
  let old_index_len = Array.length d.comp_index in
  let comp_index =
    if size' = old_index_len then Array.copy d.comp_index
    else begin
      let a = Array.make size' (-1) in
      Array.blit d.comp_index 0 a 0 old_index_len;
      a
    end
  in
  let freed = Hashtbl.fold (fun ci () acc -> ci :: acc) touched [] in
  let nslots = Array.length d.components in
  let extra = max 0 (List.length multi - List.length freed) in
  let components = Array.make (nslots + extra) Vset.empty in
  Array.blit d.components 0 components 0 nslots;
  List.iter (fun ci -> components.(ci) <- Vset.empty) freed;
  let free_slots = ref freed and fresh = ref nslots in
  List.iter
    (fun comp ->
      let slot =
        match !free_slots with
        | ci :: rest ->
          free_slots := rest;
          ci
        | [] ->
          let ci = !fresh in
          incr fresh;
          ci
      in
      components.(slot) <- comp;
      Vset.iter (fun v -> comp_index.(v) <- slot) comp)
    multi;
  List.iter
    (fun comp -> Vset.iter (fun v -> comp_index.(v) <- -1) comp)
    singles;
  let free =
    List.fold_left
      (fun acc s -> Vset.union acc s)
      (Vset.diff (Vset.inter d.free live') !touched_free)
      singles
  in
  (* evict the dirtied slots' cache entries; every other entry stays put *)
  let z = d.counters in
  let cache = Hashtbl.copy d.cache in
  Hashtbl.iter
    (fun (family, ci) _ ->
      if Hashtbl.mem touched ci then begin
        Hashtbl.remove cache (family, ci);
        z.cache_evicted <- z.cache_evicted + 1
      end)
    d.cache;
  z.cache_retained <- z.cache_retained + Hashtbl.length cache;
  z.deltas_applied <- z.deltas_applied + 1;
  z.edges_added <- z.edges_added + List.length delta.Hyper.edges_added;
  z.edges_removed <- z.edges_removed + List.length delta.Hyper.edges_removed;
  z.components_dirtied <- z.components_dirtied + Hashtbl.length touched;
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [
        ("dirtied", Obs.Event.Int (Hashtbl.length touched));
        ("recomputed", Obs.Event.Int (List.length recomputed));
      ];
  { hyper; priority; components; free; comp_index; cache; counters = z }

(* The sub-instance of one component. Tuples keep their relative order
   under restriction, so new vertex i is the i-th smallest original id.
   [Hyper.build] re-detects the violations of the induced tuples, which
   are exactly the component's edges: a witness among component tuples
   is a witness of the full instance contained in the component, and
   minimality is hereditary (any smaller witness is a subset, hence
   also inside the component). *)
let sub_context d comp =
  let rel = Hyper.to_relation d.hyper comp in
  let sub = Hyper.build (Hyper.denials d.hyper) rel in
  let mapping = Array.of_list (Vset.elements comp) in
  let back = Hashtbl.create (Array.length mapping) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) mapping;
  (* priority arcs connect co-edge facts, and every edge through a
     component vertex lies inside the component, so probing the
     successor sets of the component's vertices finds every arc *)
  let arcs =
    Vset.fold
      (fun u acc ->
        let u' = Hashtbl.find back u in
        Vset.fold
          (fun v acc ->
            match Hashtbl.find_opt back v with
            | Some v' -> (u', v') :: acc
            | None -> acc)
          (Hpriority.dominated d.priority u)
          acc)
      comp []
  in
  (sub, Hpriority.of_arcs_exn sub arcs, mapping)

(* Solve one component: pure with respect to [d] except the counter
   bumps, which go to the caller-chosen shard [z] — what lets
   [parallel_warm] run this on worker domains. *)
let solve_component z d family comp =
  Obs.Span.with_span "hdecompose.component"
    ~args:
      [
        ("family", Obs.Event.Str (Hfamily.name_to_string family));
        ("size", Obs.Event.Int (Vset.cardinal comp));
      ]
  @@ fun () ->
  z.cache_misses <- z.cache_misses + 1;
  let sub, p, mapping = sub_context d comp in
  let repairs =
    List.map
      (fun s -> Vset.map (fun v -> mapping.(v)) s)
      (Hfamily.repairs family sub p)
  in
  z.component_repairs <- z.component_repairs + List.length repairs;
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("repairs", Obs.Event.Int (List.length repairs)) ];
  repairs

(* A synthesized singleton of a free vertex? Free vertices are covered
   by no edge, so their only preferred repair (every family) is the
   tuple itself; serving it from the free set keeps clean tuples out of
   the cache. *)
let free_singleton d comp =
  Vset.cardinal comp = 1 && d.comp_index.(Vset.min_elt comp) < 0

let preferred_within family d comp =
  if free_singleton d comp then begin
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    [ comp ]
  end
  else begin
    let key = (family, d.comp_index.(Vset.min_elt comp)) in
    match Hashtbl.find_opt d.cache key with
    | Some repairs ->
      d.counters.cache_hits <- d.counters.cache_hits + 1;
      repairs
    | None ->
      let repairs = solve_component d.counters d family comp in
      Hashtbl.replace d.cache key repairs;
      repairs
  end

(* --- the parallel cache fill --------------------------------------------- *)

let parallel_warm family d todo =
  (* [todo]: (slot, component) pairs, ascending slot order. Counters
     shard per worker lane; the submitting domain publishes the cache
     writes in slot order after the join — workers never touch
     [d.cache]. *)
  let todo = Array.of_list todo in
  let n = Array.length todo in
  let results = Array.make n [] in
  let shards = Array.init (Pool.jobs ()) (fun _ -> fresh_counters ()) in
  Pool.parallel_for ~n (fun ~worker i ->
      let _, comp = todo.(i) in
      results.(i) <- solve_component shards.(worker) d family comp);
  Array.iteri
    (fun i (ci, _) -> Hashtbl.replace d.cache (family, ci) results.(i))
    todo;
  Array.iter (fun z -> merge_counters d.counters z) shards

let warm_slots family d slots =
  let todo =
    List.filter_map
      (fun ci ->
        if Hashtbl.mem d.cache (family, ci) then begin
          d.counters.cache_hits <- d.counters.cache_hits + 1;
          None
        end
        else Some (ci, d.components.(ci)))
      slots
  in
  match todo with
  | [] -> ()
  | [ (ci, comp) ] ->
    Hashtbl.replace d.cache (family, ci)
      (solve_component d.counters d family comp)
  | todo ->
    if Pool.jobs () <= 1 || Pool.in_parallel_region () then
      List.iter
        (fun (ci, comp) ->
          Hashtbl.replace d.cache (family, ci)
            (solve_component d.counters d family comp))
        todo
    else parallel_warm family d todo

let warm family d = warm_slots family d (live_slots d)

let count_within family d comp =
  if free_singleton d comp then begin
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    1
  end
  else begin
    let key = (family, d.comp_index.(Vset.min_elt comp)) in
    match Hashtbl.find_opt d.cache key with
    | Some repairs ->
      d.counters.cache_hits <- d.counters.cache_hits + 1;
      List.length repairs
    | None ->
      Obs.Span.with_span "hdecompose.count"
        ~args:
          [
            ("family", Obs.Event.Str (Hfamily.name_to_string family));
            ("size", Obs.Event.Int (Vset.cardinal comp));
          ]
      @@ fun () ->
      d.counters.cache_misses <- d.counters.cache_misses + 1;
      let sub, p, _mapping = sub_context d comp in
      let n = ref 0 in
      Hfamily.iter family sub p (fun _ -> incr n);
      !n
  end

(* repair counts multiply across components: saturate, don't wrap *)
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let count family d =
  warm family d;
  List.fold_left
    (fun acc ci ->
      sat_mul acc (List.length (Hashtbl.find d.cache (family, ci))))
    1 (live_slots d)

(* --- ground certainty --------------------------------------------------- *)

let demand_of_clause d clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Hyper.schema d.hyper))
    ~index:(Hyper.index d.hyper) clause

(* A clause is satisfiable by a preferred repair iff each touched
   component has a preferred repair meeting the clause's demands there:
   the families factorize componentwise (priorities connect co-edge
   facts, improvements act within components) and are non-empty on
   untouched components. *)
exception Stop

let clause_satisfiable family d { Ground.required; forbidden } =
  (* a free vertex belongs to every preferred repair: forbidding one
     kills the clause outright, requiring one costs nothing *)
  if not (Vset.is_empty (Vset.inter forbidden d.free)) then false
  else begin
    let touched =
      Vset.fold
        (fun v acc ->
          let ci = d.comp_index.(v) in
          if ci >= 0 then Vset.add ci acc else acc)
        (Vset.union required forbidden)
        Vset.empty
    in
    if
      Pool.jobs () > 1
      && (not (Pool.in_parallel_region ()))
      && Vset.cardinal touched > 1
    then warm_slots family d (Vset.elements touched);
    let remaining = ref (Vset.cardinal touched) in
    try
      Vset.iter
        (fun ci ->
          d.counters.components_examined <- d.counters.components_examined + 1;
          decr remaining;
          let comp = d.components.(ci) in
          let req = Vset.inter required comp
          and forb = Vset.inter forbidden comp in
          let ok =
            List.exists
              (fun r -> Vset.subset req r && Vset.is_empty (Vset.inter forb r))
              (preferred_within family d comp)
          in
          if not ok then begin
            if !remaining > 0 then
              d.counters.early_exits <- d.counters.early_exits + 1;
            raise Stop
          end)
        touched;
      true
    with Stop -> false
  end

let some_preferred_satisfies family d q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause d clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some demand) -> Ok (clause_satisfiable family d demand)))
      (Ok false) clauses

let certainty_ground family d q =
  if not (Query.Ast.is_ground q) then
    Error "certainty_ground: query is not ground"
  else
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_preferred_satisfies family d q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

(* --- streaming over the cross product ----------------------------------- *)

exception Empty_family of Hfamily.name

let repair_matrix family d =
  warm family d;
  let lists =
    Array.of_list
      (List.map
         (fun ci -> Array.of_list (Hashtbl.find d.cache (family, ci)))
         (live_slots d))
  in
  Array.iter
    (fun l -> if Array.length l = 0 then raise (Empty_family family))
    lists;
  lists

let iter family d f =
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if k = 0 then begin
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    f d.free
  end
  else begin
    let rec go i acc =
      if i = k then begin
        d.counters.combos_streamed <- d.counters.combos_streamed + 1;
        f acc
      end
      else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
    in
    go 0 d.free
  end

let exists family d pred =
  try
    iter family d (fun r -> if pred r then raise Stop);
    false
  with Stop -> true

let for_all family d pred = not (exists family d (fun r -> not (pred r)))

let member family d r =
  Vset.subset r (Hyper.live d.hyper)
  && Vset.subset d.free r
  && Array.for_all
       (fun comp ->
         Vset.is_empty comp
         ||
         let local = Vset.inter r comp in
         List.exists (Vset.equal local) (preferred_within family d comp))
       d.components

let one family d =
  match repair_matrix family d with
  | exception Empty_family _ -> None
  | lists ->
    Some (Array.fold_left (fun acc l -> Vset.union acc l.(0)) d.free lists)

let evaluate_in_repair d r q =
  Planner.Engine.holds_relation (Hyper.to_relation d.hyper r) q

(* Certainty of a quantified query by deviation scan + product fallback —
   the same two-pass structure, stop flags and counter sharding as
   [Decompose.certainty_streaming]. *)
let certainty_streaming family d q =
  let eval r = evaluate_in_repair d r q in
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("route", Obs.Event.Str "deviation-scan") ];
  if k = 0 then begin
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    if eval d.free then Cqa.Certainly_true else Cqa.Certainly_false
  end
  else begin
    let base = Array.map (fun l -> l.(0)) lists in
    let pre = Array.make (k + 1) d.free in
    for i = 0 to k - 1 do
      pre.(i + 1) <- Vset.union pre.(i) base.(i)
    done;
    let suf = Array.make (k + 1) Vset.empty in
    for i = k - 1 downto 0 do
      suf.(i) <- Vset.union suf.(i + 1) base.(i)
    done;
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    let v0 = eval pre.(k) in
    let parallel = Pool.jobs () > 1 && not (Pool.in_parallel_region ()) in
    (* pass 1: single-component deviations from the baseline *)
    let deviation_found =
      if not parallel then begin
        try
          for i = 0 to k - 1 do
            d.counters.components_examined <-
              d.counters.components_examined + 1;
            for j = 1 to Array.length lists.(i) - 1 do
              d.counters.combos_streamed <- d.counters.combos_streamed + 1;
              let r =
                Vset.union (Vset.union pre.(i) lists.(i).(j)) suf.(i + 1)
              in
              if eval r <> v0 then begin
                d.counters.early_exits <- d.counters.early_exits + 1;
                raise Stop
              end
            done
          done;
          false
        with Stop -> true
      end
      else begin
        let shards = Array.init (Pool.jobs ()) (fun _ -> fresh_counters ()) in
        let stop = Atomic.make false in
        let found = Atomic.make false in
        Pool.parallel_for ~stop ~n:k (fun ~worker i ->
            let z = shards.(worker) in
            z.components_examined <- z.components_examined + 1;
            let len = Array.length lists.(i) in
            let j = ref 1 in
            while !j < len && not (Atomic.get stop) do
              z.combos_streamed <- z.combos_streamed + 1;
              let r =
                Vset.union (Vset.union pre.(i) lists.(i).(!j)) suf.(i + 1)
              in
              if eval r <> v0 then begin
                z.early_exits <- z.early_exits + 1;
                Atomic.set found true;
                Atomic.set stop true
              end;
              incr j
            done);
        Array.iter (fun z -> merge_counters d.counters z) shards;
        Atomic.get found
      end
    in
    if deviation_found then Cqa.Ambiguous
    else begin
      (* pass 2: a certain verdict needs the full product whenever two
         or more components can deviate simultaneously *)
      let multi =
        Array.fold_left
          (fun acc l -> if Array.length l > 1 then acc + 1 else acc)
          0 lists
      in
      if multi < 2 then
        if v0 then Cqa.Certainly_true else Cqa.Certainly_false
      else begin
        if Obs.Span.enabled () then
          Obs.Span.annotate [ ("route", Obs.Event.Str "full-product") ];
        let disagreed =
          if not parallel then begin
            let rec go i acc =
              if i = k then begin
                d.counters.combos_streamed <- d.counters.combos_streamed + 1;
                if eval acc <> v0 then begin
                  d.counters.early_exits <- d.counters.early_exits + 1;
                  raise Stop
                end
              end
              else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
            in
            try
              go 0 d.free;
              false
            with Stop -> true
          end
          else begin
            let shards =
              Array.init (Pool.jobs ()) (fun _ -> fresh_counters ())
            in
            let stop = Atomic.make false in
            let found = Atomic.make false in
            Pool.parallel_for ~stop ~n:(Array.length lists.(0))
              (fun ~worker i0 ->
                let z = shards.(worker) in
                let rec go i acc =
                  if Atomic.get stop then ()
                  else if i = k then begin
                    z.combos_streamed <- z.combos_streamed + 1;
                    if eval acc <> v0 then begin
                      z.early_exits <- z.early_exits + 1;
                      Atomic.set found true;
                      Atomic.set stop true
                    end
                  end
                  else
                    Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
                in
                go 1 (Vset.union d.free lists.(0).(i0)));
            Array.iter (fun z -> merge_counters d.counters z) shards;
            Atomic.get found
          end
        in
        if disagreed then Cqa.Ambiguous
        else if v0 then Cqa.Certainly_true
        else Cqa.Certainly_false
      end
    end
  end

let certainty family d q =
  if not (Query.Ast.is_closed q) then
    invalid_arg "Hdecompose.certainty: open query";
  Obs.Span.with_span "hcqa.certainty"
    ~args:[ ("family", Obs.Event.Str (Hfamily.name_to_string family)) ]
  @@ fun () ->
  let before = if Obs.Span.enabled () then Some (counters d) else None in
  let verdict =
    if Query.Ast.is_ground q then
      match certainty_ground family d q with
      | Ok cert ->
        Obs.Span.annotate [ ("route", Obs.Event.Str "ground") ];
        cert
      | Error _ -> certainty_streaming family d q
    else certainty_streaming family d q
  in
  (match before with
  | None -> ()
  | Some b ->
    let z = d.counters in
    Obs.Span.annotate
      [
        ("verdict", Obs.Event.Str (Cqa.certainty_to_string verdict));
        ("cache_hits", Obs.Event.Int (z.cache_hits - b.cache_hits));
        ("cache_misses", Obs.Event.Int (z.cache_misses - b.cache_misses));
        ("combos_streamed", Obs.Event.Int (z.combos_streamed - b.combos_streamed));
        ( "components_examined",
          Obs.Event.Int (z.components_examined - b.components_examined) );
        ("early_exits", Obs.Event.Int (z.early_exits - b.early_exits));
      ]);
  verdict

let consistent_answer family d q =
  if Query.Ast.is_ground q then
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Ok sat -> not sat
    | Error _ -> for_all family d (fun r -> evaluate_in_repair d r q)
  else begin
    if not (Query.Ast.is_closed q) then
      invalid_arg "Hdecompose.consistent_answer: open query";
    for_all family d (fun r -> evaluate_in_repair d r q)
  end

let certain_tuples family d =
  (* edge-free tuples are in every preferred repair *)
  fold_components
    (fun acc comp ->
      match preferred_within family d comp with
      | [] -> acc
      | first :: rest -> Vset.union acc (List.fold_left Vset.inter first rest))
    d.free d

let possible_tuples family d =
  fold_components
    (fun acc comp ->
      List.fold_left Vset.union acc (preferred_within family d comp))
    d.free d
