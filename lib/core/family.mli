(** The families of preferred repairs studied in the paper, under one
    interface: Rep (no preferences), L-Rep, S-Rep, G-Rep and C-Rep.

    For each family [X] the module exposes the paper's two decision
    problems (§4.1): [repairs] materializes X-Rep≻F(r), and [check] is
    X-repair checking, the membership test B^X_F. Repair checking is
    polynomial for Rep, L, S and C and co-NP-complete for G (Figure 5). *)

open Relational
open Graphs

type name = Rep | L | S | G | C

val all_names : name list
(** In decreasing size of the selected set: [Rep; L; S; G; C]
    (C ⊆ G ⊆ S ⊆ L ⊆ Rep). *)

val name_to_string : name -> string
val name_of_string : string -> name option

val repairs : name -> Conflict.t -> Priority.t -> Vset.t list
(** The preferred repairs X-Rep≻F(r), sorted. Enumerative: exponential in
    the number of conflicts, like the repair space. *)

val repairs_relations : name -> Conflict.t -> Priority.t -> Relation.t list

val check : name -> Conflict.t -> Priority.t -> Vset.t -> bool
(** X-repair checking. Polynomial for [Rep], [L], [S], [C]; for [G] a
    witness search over the repair space (co-NP-complete problem). *)

val check_relation : name -> Conflict.t -> Priority.t -> Relation.t -> bool

val iter : name -> Conflict.t -> Priority.t -> (Vset.t -> unit) -> unit
(** Streams the family's preferred repairs without materializing the
    list: the repair enumerator feeds a per-candidate membership test
    (for C the PTIME re-run of Algorithm 1, avoiding the exponential
    memoized enumeration). Order unspecified.

    Cost is exponential in the {e total} number of conflicts, because
    the enumerator walks the whole conflict graph's repair space. When
    the conflict graph splits into components, the [Decompose]-backed
    streaming variants ([Decompose.iter] and friends) enumerate the same
    family as a cross product of per-component preferred repairs —
    exponential only in the largest component — and should be preferred
    for anything beyond one-component instances. *)

val exists : name -> Conflict.t -> Priority.t -> (Vset.t -> bool) -> bool
(** [exists family c p pred]: does some preferred repair satisfy [pred]?
    Stops the enumeration at the first witness. *)

val for_all : name -> Conflict.t -> Priority.t -> (Vset.t -> bool) -> bool
(** Stops at the first counterexample repair. Vacuously [true] when the
    enumeration yields no repair at all — a situation P1 rules out for
    every family of the paper, so callers that must distinguish "all
    repairs satisfy" from "no repairs at all" (notably [Cqa], which
    raises [Cqa.Empty_family] rather than report a vacuous certainty)
    have to track emptiness themselves. *)

val one : name -> Conflict.t -> Priority.t -> Vset.t option
(** Some preferred repair of the family, if any. For [C] this is a single
    deterministic run of Algorithm 1 (always succeeds); for the other
    families it searches the repair space. [Rep], [L], [S], [C] are never
    empty (P1); for [G] non-emptiness follows from C ⊆ G and P1 for C. *)

val pp_name : Format.formatter -> name -> unit
