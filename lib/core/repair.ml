open Graphs

let all c = Mis.enumerate ~universe:(Conflict.live c) (Conflict.graph c)
let iter f c = Mis.iter ~universe:(Conflict.live c) f (Conflict.graph c)

let fold f c acc =
  Mis.fold ~universe:(Conflict.live c) f (Conflict.graph c) acc

let exists p c = Mis.exists ~universe:(Conflict.live c) p (Conflict.graph c)

let for_all p c =
  Mis.for_all ~universe:(Conflict.live c) p (Conflict.graph c)

let count c = Mis.count ~universe:(Conflict.live c) (Conflict.graph c)
let one c = Mis.first ~universe:(Conflict.live c) (Conflict.graph c)

(* Maximality is judged inside the live universe: tombstoned vertices of an
   incrementally updated conflict are isolated in the graph but must neither
   belong to a repair nor count as uncovered outsiders. *)
let is_repair c s =
  let g = Conflict.graph c in
  let live = Conflict.live c in
  Vset.subset s live
  && Undirected.is_independent g s
  && Vset.for_all
       (fun v ->
         Vset.mem v s || not (Vset.disjoint (Undirected.neighbors g v) s))
       live

let is_repair_relation c r = is_repair c (Conflict.vset_of_relation c r)

let to_relation c s = Conflict.relation_of_vset c s

let all_relations c = List.map (to_relation c) (all c)
