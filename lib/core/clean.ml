open Relational
open Graphs

type report = {
  cleaned : Relation.t;
  removed : Tuple.t list;
  conflicts : int;
  oriented : int;
  deterministic : bool;
}

let run_with_priority c p =
  Obs.Span.with_span "clean" @@ fun () ->
  let result = Obs.Span.with_span "clean.winnow" (fun () -> Winnow.clean c p) in
  let cleaned = Repair.to_relation c result in
  let removed =
    Vset.elements (Vset.diff (Conflict.live c) result)
    |> List.map (Conflict.tuple c)
  in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("removed", Obs.Event.Int (List.length removed)) ];
  {
    cleaned;
    removed;
    conflicts = Undirected.edge_count (Conflict.graph c);
    oriented = Priority.arc_count p;
    deterministic = Priority.is_total c p;
  }

let run fds relation rule =
  let c = Conflict.build fds relation in
  match Pref_rules.apply c rule with
  | Error e -> Error e
  | Ok p -> Ok (run_with_priority c p)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>cleaned instance keeps %d tuples (%d removed);@ %d conflicts, %d \
     oriented by the rule;@ %s@]"
    (Relation.cardinality r.cleaned)
    (List.length r.removed) r.conflicts r.oriented
    (if r.deterministic then
       "total priority: result independent of tie-breaking (Prop. 1)"
     else "partial priority: result is one of the common repairs (C-Rep)")
