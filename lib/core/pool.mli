(** A small work-stealing domain pool for component-parallel evaluation.

    The repair/CQA stack factorizes over conflict-graph components whose
    repair spaces are mutually independent — the natural unit of
    parallelism for OCaml 5 domains. This module owns the session's
    worker domains: they are spawned once, on the first parallel call
    that needs them, and reused for every subsequent job until process
    exit (an [at_exit] hook joins them).

    Scheduling is work-stealing over an index space: [parallel_for ~n f]
    partitions [0, n) into one contiguous range per participating lane,
    each with an atomic claim cursor. A lane drains its own range first
    and then steals from the other lanes' cursors, so skewed per-index
    costs (one huge component among many small ones) still balance. Every
    index is executed exactly once, by exactly one lane.

    The calling domain participates as lane 0 and blocks until the job
    completes, so jobs nest safely with the rest of the engine: no work
    escapes the bracketing caller. Calls from inside a running job (or
    with [jobs () = 1], or with [n < 2]) degrade to a plain sequential
    loop on the caller — the parallel and sequential paths execute the
    same body, in the same index order when sequential.

    {2 Telemetry}

    {!Obs.Span} state is domain-local. When the submitting domain has a
    sink installed, each worker lane records its spans into a private
    in-memory buffer for the duration of the job; after the join the
    caller stitches the buffers into its own sink, lane by lane, with a
    ["domain"] argument added to every event. Worker streams are
    internally balanced, so the stitched stream still brackets correctly;
    timestamps are monotone per domain lane (see {!Obs.Export}).

    {2 Error handling}

    If the body raises, the first exception (by completion order) is
    captured, remaining indices are abandoned co-operatively, and the
    exception is re-raised on the caller after the join. *)

val default_jobs : unit -> int
(** The domain count used when {!set_jobs} was never called: the
    [PREFDB_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val env_jobs_error : unit -> string option
(** A usage-style diagnostic when [PREFDB_JOBS] is set but not a
    positive integer (in which case {!default_jobs} silently ignores
    it). Entry points check this at startup so a typo'd environment
    fails loudly instead of silently running on the default count. *)

val jobs : unit -> int
(** The active domain count (≥ 1). [1] means strictly sequential
    evaluation: no worker domain is ever spawned and every [parallel_*]
    call runs inline on the caller. *)

val set_jobs : int -> unit
(** Fixes the domain count for subsequent jobs. Raises
    [Invalid_argument] on [n < 1]. Lowering the count after workers were
    spawned parks the excess workers; they are only joined at exit. *)

val parallel_for :
  ?stop:bool Atomic.t -> n:int -> (worker:int -> int -> unit) -> unit
(** [parallel_for ~n body] runs [body ~worker i] for every [i] in
    [0, n), distributing indices over [min (jobs ()) n] lanes.
    [worker] is the lane index in [0, jobs ()) — use it to shard
    mutable accumulators (counters, span-free scratch) without locks;
    two invocations with the same [worker] value never overlap.

    [stop] is an early-exit flag shared with the body: once it becomes
    [true] (set by the body, e.g. on finding a counterexample) no {e
    new} index is started — indices already running complete normally.
    The flag is also set when any body invocation raises, to drain the
    job quickly before re-raising. With no flag and no exception, all
    [n] indices complete before the call returns. *)

val parallel_reduce :
  n:int -> (worker:int -> int -> 'a) -> ('a -> 'a -> 'a) -> 'a -> 'a
(** [parallel_reduce ~n leaf combine init] computes
    [combine (... (combine init (leaf 0)) ...) (leaf (n-1))]: leaves are
    evaluated in parallel, then folded {e in index order} on the caller,
    so the result is deterministic whenever [combine] is — regardless of
    scheduling. *)

val in_parallel_region : unit -> bool
(** True while called from inside a [parallel_*] body (on any lane).
    Code that must not re-enter the pool — or that wants a cheap
    "am I a worker?" test — can branch on this. *)
