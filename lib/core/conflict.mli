(** Conflict graphs (paper, §2.1).

    Given an instance r and a set F of functional dependencies, the
    conflict graph has the tuples of r as vertices and an edge between
    every pair of tuples conflicting w.r.t. some FD in F. It is the compact
    representation of the repair space: repairs are exactly the maximal
    independent sets.

    A value of type [t] packages the instance, the constraints and the
    graph. Vertex ids are the instance's {e fact ids}
    ({!Relational.Relation.find}): there is one tuple-identity layer from
    storage to CQA, and this module keeps no tuple -> vertex map of its
    own — lookups delegate to the relation's hash index, FD grouping to
    its per-column postings. All core algorithms speak vertex ids;
    conversion to and from relations lives here. *)

open Relational
open Graphs

type t

val build : Constraints.Fd.t list -> Relation.t -> t
(** Raises [Invalid_argument] when an FD mentions attributes absent from
    the relation's schema. Cost: pairwise comparison inside groups sharing
    an FD's left-hand-side projection. *)

val schema : t -> Schema.t
val fds : t -> Constraints.Fd.t list

val relation : t -> Relation.t
(** The live instance (excludes tombstoned tuples after {!apply_delta}). *)

val graph : t -> Undirected.t
val size : t -> int
(** Number of allocated vertex ids ([Relation.slot_count]). After
    {!apply_delta} this includes tombstoned slots; the set of vertices
    actually part of the instance is {!live}. For a value built from a
    dense instance, [live c] = [0 .. size c - 1]. *)

val live : t -> Vset.t
(** The vertex ids carrying live tuples ([Relation.live_ids]) — the
    universe every algorithm over this conflict graph must work in.
    Equals [Vset.of_range (size c)] until something is tombstoned.
    Because vertex ids are fact ids, rebuilding from the delta'd relation
    yields the {e same} numbering as the incremental path. *)

val is_live : t -> int -> bool

val tuple : t -> int -> Tuple.t
val tuples : t -> Tuple.t array
(** A fresh copy of the vertex-indexed tuple array. *)

val index : t -> Tuple.t -> int option
(** The vertex (= fact) id of a live tuple: a [Relation.find] probe. *)

val index_exn : t -> Tuple.t -> int

val vset_of_relation : t -> Relation.t -> Vset.t
(** Vertex set of a sub-instance. Raises [Invalid_argument] when some
    tuple does not belong to the original instance. *)

val relation_of_vset : t -> Vset.t -> Relation.t

val is_consistent : t -> bool
(** No conflicts at all: the instance satisfies F. *)

val conflicting_fds : t -> int -> int -> Constraints.Fd.t list
(** The FDs witnessing the conflict on an edge (empty if not adjacent). *)

val neighbors : t -> int -> Vset.t
(** The paper's n(t), by vertex id. *)

val vicinity : t -> int -> Vset.t
(** The paper's v(t) = {t} ∪ n(t). *)

val conflict_pairs : t -> (Tuple.t * Tuple.t) list
(** All conflicting pairs as tuples, smaller first. *)

(** {2 Incremental maintenance}

    The delta path applies a batch of insertions and deletions without
    renumbering: deleted tuples are {e tombstoned} (their vertex id stays
    allocated but leaves {!live}, and their edges fall away), inserted
    tuples are {e appended} under fresh ids ([Relation.patch] does both).
    New conflict edges are found by probing the relation's per-column
    postings for the live tuples sharing the delta tuple's left-hand-side
    projection — the delta tuples are compared against their groups only,
    never pairwise against the instance — so the cost is linear in the
    perturbed region plus the (unavoidable) O(V + E) graph rebuild, with
    no FD re-scan of untouched tuples.

    Stable ids are the point: downstream structures keyed by vertex id
    (priorities, component repair caches) survive a delta untouched
    wherever the graph did not change. *)

type delta = {
  inserted : int list;  (** fresh vertex ids, in insertion order *)
  deleted : int list;  (** tombstoned vertex ids *)
  edges_added : (int * int) list;
      (** new conflict edges, [(u, v)] with [u < v]; every edge touches
          an inserted vertex (conflicts never appear between unchanged
          tuples) *)
  edges_removed : (int * int) list;
      (** edges that fell away; every edge touches a deleted vertex *)
}

val apply_delta :
  t -> insert:Tuple.t list -> delete:Tuple.t list -> (t * delta, string) result
(** Deletions are applied before insertions, so a tuple listed in both is
    removed and re-inserted (under a fresh id). Errors — without touching
    anything — when a deleted tuple is not live, an inserted tuple is
    already live (and not also deleted), a tuple is listed twice on one
    side, or an inserted tuple does not conform to the schema. The input
    value is unchanged either way (the structure is persistent). *)

val pp : Format.formatter -> t -> unit
(** Lists vertices with their tuples and the conflict edges — a textual
    rendering of the paper's Figures 1–4. *)
