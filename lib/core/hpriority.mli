(** Priorities over conflict hypergraphs.

    The Staworko–Chomicki prioritized-repairing framework
    (arXiv:0908.0464) defines a priority as an acyclic binary relation
    on {e conflicting} facts; under denial constraints two facts
    conflict when they share a hyperedge. This is {!Priority} with the
    adjacency test generalized — and one genuinely new wrinkle in
    {!update}: a hyperedge can die through a third vertex, leaving both
    endpoints of an arc alive but the arc invalid, so surviving arcs
    are revalidated against the updated hypergraph. *)

open Graphs

type t

type error =
  | Not_conflicting of int * int
      (** arc between vertices sharing no hyperedge *)
  | Cyclic  (** the relation's transitive closure is not irreflexive *)

val error_to_string : error -> string

val empty : Hyper.t -> t

val of_arcs : Hyper.t -> (int * int) list -> (t, error) result
(** [(u, v)] meaning u ≻ v. Both endpoints must share a hyperedge. *)

val of_arcs_exn : Hyper.t -> (int * int) list -> t

val of_tuple_pairs :
  Hyper.t -> (Relational.Tuple.t * Relational.Tuple.t) list -> (t, error) result

val arcs : t -> (int * int) list
val arc_count : t -> int

val dominates : t -> int -> int -> bool
(** [dominates p x y] is x ≻ y. *)

val dominators : t -> int -> Vset.t
val dominated : t -> int -> Vset.t

val conflicting_pairs : Hyper.t -> (int * int) list
(** The unordered pairs inside some hyperedge, as [(u, v)] with u < v —
    the pairs a priority may orient. *)

val unoriented : Hyper.t -> t -> (int * int) list
(** Conflicting pairs (unordered pairs inside some hyperedge, as
    [(u, v)] with u < v) carrying no orientation. *)

val of_rule :
  Hyper.t -> (Relational.Tuple.t -> Relational.Tuple.t -> bool) -> (t, string) result
(** Orient every conflicting pair by a tuple-level preference rule
    (an arc only where the rule holds one way and not the other) and
    validate the result — the hyperedge counterpart of
    {!Pref_rules.apply}. *)

val is_total : Hyper.t -> t -> bool

val extend : Hyper.t -> t -> (int * int) list -> (t, error) result

val totalize : Hyper.t -> t -> t
(** A canonical total extension along a topological order of the
    existing arcs. Deterministic. *)

val update :
  Hyper.t -> t -> dropped:Vset.t -> oriented:(int * int) list ->
  (t, error) result
(** Carry a priority across {!Hyper.apply_delta}: [h] is the {e updated}
    structure, [p] the priority over the previous one. Arcs touching
    [dropped] are discarded, survivors are re-checked for co-conflict
    (their edge may have died through a third vertex), [oriented] arcs
    are added and the result re-validated. *)

val winnow : t -> Vset.t -> Vset.t
(** ω≻(S) = {t ∈ S | ¬∃t' ∈ S. t' ≻ t}; never empty on a non-empty set,
    by acyclicity. *)

val restrict : t -> Vset.t -> t
(** Keep arcs inside the given vertex set (identifiers unchanged). *)

val pp : Format.formatter -> t -> unit
