open Relational

type rule = Tuple.t -> Tuple.t -> bool

let orient c rule edges =
  Obs.Span.with_span "priority.orient"
    ~args:[ ("edges", Obs.Event.Int (List.length edges)) ]
  @@ fun () ->
  let arcs =
    List.concat_map
      (fun (u, v) ->
        let x = Conflict.tuple c u and y = Conflict.tuple c v in
        let xy = rule x y and yx = rule y x in
        if xy && not yx then [ (u, v) ]
        else if yx && not xy then [ (v, u) ]
        else [])
      edges
  in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("oriented", Obs.Event.Int (List.length arcs)) ];
  arcs

let apply c rule =
  let arcs = orient c rule (Graphs.Undirected.edges (Conflict.graph c)) in
  match Priority.of_arcs c arcs with
  | Ok p -> Ok p
  | Error e -> Error (Priority.error_to_string e)

let apply_exn c rule =
  match apply c rule with Ok p -> p | Error e -> invalid_arg e

let by_score score x y = score x > score y

let newest_first prov x y =
  match (Provenance.timestamp prov x, Provenance.timestamp prov y) with
  | Some tx, Some ty -> tx > ty
  | None, _ | _, None -> false

let oldest_first prov x y =
  match (Provenance.timestamp prov x, Provenance.timestamp prov y) with
  | Some tx, Some ty -> tx < ty
  | None, _ | _, None -> false

module Smap = Map.Make (String)

let source_reliability prov ~more_reliable_than =
  let sources =
    List.sort_uniq String.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) more_reliable_than)
  in
  let id_of = List.mapi (fun i s -> (s, i)) sources |> List.to_seq |> Smap.of_seq in
  let arcs =
    List.map
      (fun (a, b) -> (Smap.find a id_of, Smap.find b id_of))
      more_reliable_than
  in
  let g = Graphs.Digraph.create (List.length sources) arcs in
  if Graphs.Digraph.has_cycle g then
    Error "source reliability order is cyclic"
  else begin
    let closure = Graphs.Digraph.transitive_closure g in
    let rule x y =
      match (Provenance.source prov x, Provenance.source prov y) with
      | Some sx, Some sy -> (
        match (Smap.find_opt sx id_of, Smap.find_opt sy id_of) with
        | Some ix, Some iy -> Graphs.Digraph.mem_arc closure ix iy
        | None, _ | _, None -> false)
      | None, _ | _, None -> false
    in
    Ok rule
  end

let on_attribute schema attr ~prefer =
  match Schema.position schema attr with
  | None ->
    Error (Printf.sprintf "schema %s has no attribute %S" (Schema.name schema) attr)
  | Some i ->
    if Schema.ty_at schema i <> Schema.TInt then
      Error (Printf.sprintf "attribute %S is not numeric" attr)
    else
      let rule x y =
        match (Value.as_int (Tuple.get x i), Value.as_int (Tuple.get y i)) with
        | Some a, Some b -> (
          match prefer with `Larger -> a > b | `Smaller -> a < b)
        | None, _ | _, None -> false
      in
      Ok rule

let lexicographic rules x y =
  let rec loop = function
    | [] -> false
    | r :: rest ->
      if r x y then true else if r y x then false else loop rest
  in
  loop rules
