open Relational
open Graphs

type op = Delta.op = Insert of Tuple.t | Delete of Tuple.t

type report = {
  inserted : int;
  deleted : int;
  edges_added : int;
  edges_removed : int;
  components_dirtied : int;
  cache_evicted : int;
  cache_retained : int;
}

type t = {
  mutable hyper : Hyper.t;
  mutable priority : Hpriority.t;
  mutable decompose : Hdecompose.t;
  mutable history : op list list;  (* inverse batches, most recent first *)
}

let create ?(arcs = []) denials relation =
  match Hyper.build denials relation with
  | exception Invalid_argument e -> Error e
  | hyper -> (
    match Hpriority.of_arcs hyper arcs with
    | Error e -> Error (Hpriority.error_to_string e)
    | Ok priority ->
      Ok
        {
          hyper;
          priority;
          decompose = Hdecompose.make hyper priority;
          history = [];
        })

let m_batch_ops =
  Obs.Registry.histogram ~buckets:Obs.Metric.size_buckets
    ~help:"Operations per accepted hyper Delta batch"
    "prefdb_hyper_delta_batch_ops"

let split ops =
  let ins, del =
    List.fold_left
      (fun (ins, del) -> function
        | Insert x -> (x :: ins, del)
        | Delete x -> (ins, x :: del))
      ([], []) ops
  in
  (List.rev ins, List.rev del)

(* One batch through every layer; caller handles history. All layers
   validate before mutating anything, so an [Error] leaves [t] as it
   was. *)
let apply_batch t ops =
  Obs.Span.with_span "hdelta.apply"
    ~args:[ ("ops", Obs.Event.Int (List.length ops)) ]
  @@ fun () ->
  let insert, delete = split ops in
  match Hyper.apply_delta t.hyper ~insert ~delete with
  | Error e -> Error e
  | Ok (hyper, delta) -> (
    let dropped = Vset.of_list delta.Hyper.deleted in
    match Hpriority.update hyper t.priority ~dropped ~oriented:[] with
    | Error e -> Error (Hpriority.error_to_string e)
    | Ok priority ->
      let before = Hdecompose.counters t.decompose in
      let decompose =
        Hdecompose.apply_delta t.decompose hyper priority delta
      in
      let after = Hdecompose.counters decompose in
      t.hyper <- hyper;
      t.priority <- priority;
      t.decompose <- decompose;
      Obs.Metric.observe m_batch_ops (Float.of_int (List.length ops));
      Ok
        {
          inserted = List.length delta.Hyper.inserted;
          deleted = List.length delta.Hyper.deleted;
          edges_added = List.length delta.Hyper.edges_added;
          edges_removed = List.length delta.Hyper.edges_removed;
          components_dirtied =
            after.Hdecompose.components_dirtied
            - before.Hdecompose.components_dirtied;
          cache_evicted =
            after.Hdecompose.cache_evicted - before.Hdecompose.cache_evicted;
          cache_retained =
            after.Hdecompose.cache_retained - before.Hdecompose.cache_retained;
        })

let apply t ops =
  (* capture before the batch mutates [t] *)
  let insert, delete = split ops in
  match apply_batch t ops with
  | Error e -> Error e
  | Ok report ->
    let inverse =
      List.map (fun x -> Delete x) insert @ List.map (fun x -> Insert x) delete
    in
    t.history <- inverse :: t.history;
    Ok report

let undo t =
  match t.history with
  | [] -> Error "nothing to undo"
  | inverse :: rest -> (
    match apply_batch t inverse with
    | Error e -> Error e (* unreachable for inverses of accepted batches *)
    | Ok report ->
      t.history <- rest;
      Ok report)

let history_depth t = List.length t.history
let drop_history t = t.history <- []
let hyper t = t.hyper
let priority t = t.priority
let decompose t = t.decompose
let relation t = Hyper.relation t.hyper

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>applied:                +%d tuple(s), -%d tuple(s) (%d hyperedge(s) \
     added, %d removed)@,\
     invalidation:           %d component(s) dirtied; cache %d evicted, %d \
     retained@]"
    r.inserted r.deleted r.edges_added r.edges_removed r.components_dirtied
    r.cache_evicted r.cache_retained
