(** Step-by-step traces of Algorithm 1.

    For auditing a cleaning decision: which tuple was kept at each step,
    what the winnow set offered at that moment (every other choice would
    have been legitimate — the other common repairs), and which
    conflicting tuples the choice discarded. Traces exist for human
    consumption; the plain {!Winnow.clean} is the fast path. *)

open Graphs

type step = {
  picked : int;  (** the tuple kept at this step *)
  winnow : Vset.t;  (** the undominated choices available (ω≻) *)
  removed : Vset.t;  (** conflict neighbours discarded with the pick *)
}

type t = { steps : step list; result : Vset.t }

val clean : ?choose:(Vset.t -> int) -> Conflict.t -> Priority.t -> t
(** Same semantics as {!Winnow.clean} (and the same default tie-break);
    the [result] equals [Winnow.clean ~choose c p]. *)

val pp : Conflict.t -> Format.formatter -> t -> unit
(** Renders each step with actual tuples. *)

(** {2 Sharded-CQA traces}

    What the component decomposition did while answering one certainty
    query: the verdict plus the observability counters accumulated
    during that query (diffed, so a warm cache shows up as hits), and
    the shape of the search space — per-component preferred repair
    counts whose product is the global family size the whole-graph path
    would have walked. *)

type cqa = {
  family : Family.name;
  verdict : Cqa.certainty;
  components : int;
  max_component : int;
  per_component_repairs : int list;
      (** |X-Rep| of each component, in [Decompose.components] order *)
  counters : Decompose.counters;  (** counters spent on this query alone *)
  maintenance : Decompose.counters;
      (** lifetime snapshot — its delta fields ([deltas_applied],
          [components_dirtied], [cache_evicted], ...) describe every
          incremental update folded into the decomposition so far *)
}

val certainty : Family.name -> Decompose.t -> Query.Ast.t -> cqa
(** Runs [Decompose.certainty] and packages the evidence. Same
    exceptions as the underlying query ([Cqa.Empty_family],
    [Invalid_argument] on open queries). *)

val pp_cqa : Format.formatter -> cqa -> unit
