open Graphs

type t = {
  tuples : int;
  conflict_edges : int;
  conflicting_tuples : int;
  components : int;
  nontrivial_components : int;
  largest_component : int;
  oriented_edges : int;
  total_priority : bool;
  repair_count : int;
  preferred_count : int;
  certain : int;
  disputed : int;
  excluded : int;
  cache_hits : int;
  cache_misses : int;
  cached_repairs : int;
  deltas_applied : int;
  components_dirtied : int;
  cache_evicted : int;
  cache_retained : int;
}

let compute_with family d =
  let c = Decompose.conflict d in
  let p = Decompose.priority d in
  let g = Conflict.graph c in
  let n = Vset.cardinal (Conflict.live c) in
  let before = Decompose.counters d in
  let comps = Decompose.components d in
  let certain = Decompose.certain_tuples family d in
  let possible = Decompose.possible_tuples family d in
  let conflicting =
    Vset.filter
      (fun v -> not (Vset.is_empty (Undirected.neighbors g v)))
      (Conflict.live c)
  in
  {
    tuples = n;
    conflict_edges = Undirected.edge_count g;
    conflicting_tuples = Vset.cardinal conflicting;
    components = List.length comps;
    nontrivial_components =
      List.length (List.filter (fun comp -> Vset.cardinal comp > 1) comps);
    largest_component =
      List.fold_left (fun acc comp -> max acc (Vset.cardinal comp)) 0 comps;
    oriented_edges = Priority.arc_count p;
    total_priority = Priority.is_total c p;
    repair_count = Decompose.count Family.Rep d;
    preferred_count = Decompose.count family d;
    certain = Vset.cardinal certain;
    disputed = Vset.cardinal (Vset.diff possible certain);
    excluded = n - Vset.cardinal possible;
    cache_hits = (Decompose.counters d).cache_hits - before.cache_hits;
    cache_misses = (Decompose.counters d).cache_misses - before.cache_misses;
    cached_repairs =
      (Decompose.counters d).component_repairs - before.component_repairs;
    (* lifetime values, not diffed: updates happened before this summary *)
    deltas_applied = (Decompose.counters d).deltas_applied;
    components_dirtied = (Decompose.counters d).components_dirtied;
    cache_evicted = (Decompose.counters d).cache_evicted;
    cache_retained = (Decompose.counters d).cache_retained;
  }

let compute family c p = compute_with family (Decompose.make c p)

(* [Decompose.count] saturates at [max_int] rather than wrapping; say so
   instead of printing a huge number that looks exact *)
let pp_count ppf n =
  if n = max_int then Format.pp_print_string ppf ">= max_int (saturated)"
  else Format.pp_print_int ppf n

let pp ppf s =
  Format.fprintf ppf
    "@[<v>tuples:                 %d@,\
     conflict edges:         %d (%d tuples involved)@,\
     components:             %d (%d non-trivial, largest %d)@,\
     priority:               %d/%d edges oriented%s@,\
     repairs:                %a@,\
     preferred repairs:      %a@,\
     tuple fates:            %d certain, %d disputed, %d excluded@,\
     component cache:        %d hit(s), %d miss(es), %d repair(s) cached"
    s.tuples s.conflict_edges s.conflicting_tuples s.components
    s.nontrivial_components s.largest_component s.oriented_edges
    s.conflict_edges
    (if s.total_priority then " (total)" else "")
    pp_count s.repair_count pp_count s.preferred_count s.certain s.disputed
    s.excluded s.cache_hits s.cache_misses s.cached_repairs;
  if s.deltas_applied > 0 then
    Format.fprintf ppf
      "@,\
       incremental updates:    %d delta(s); %d component(s) dirtied; \
       cache %d evicted, %d retained"
      s.deltas_applied s.components_dirtied s.cache_evicted s.cache_retained;
  Format.fprintf ppf "@]"
