open Graphs

type t = Digraph.t

type error = Not_conflicting of int * int | Cyclic

let error_to_string = function
  | Not_conflicting (u, v) ->
    Printf.sprintf
      "priority arc %d > %d does not connect conflicting tuples" u v
  | Cyclic -> "priority relation is cyclic"

let empty c = Digraph.create (Conflict.size c) []

let validate c g =
  let bad =
    List.find_opt
      (fun (u, v) -> not (Undirected.mem_edge (Conflict.graph c) u v))
      (Digraph.arcs g)
  in
  match bad with
  | Some (u, v) -> Error (Not_conflicting (u, v))
  | None -> if Digraph.has_cycle g then Error Cyclic else Ok g

let of_arcs c arcs = validate c (Digraph.create (Conflict.size c) arcs)

let of_arcs_exn c arcs =
  match of_arcs c arcs with
  | Ok p -> p
  | Error e -> invalid_arg (error_to_string e)

let of_tuple_pairs c pairs =
  of_arcs c
    (List.map
       (fun (x, y) -> (Conflict.index_exn c x, Conflict.index_exn c y))
       pairs)

let arcs = Digraph.arcs
let arc_count = Digraph.arc_count
let dominates p x y = Digraph.mem_arc p x y
let dominators p y = Digraph.pred p y
let dominated p x = Digraph.succ p x

let oriented p u v = dominates p u v || dominates p v u

let unoriented c p =
  List.filter (fun (u, v) -> not (oriented p u v))
    (Undirected.edges (Conflict.graph c))

let is_total c p = unoriented c p = []

let extend c p new_arcs =
  of_arcs c (new_arcs @ Digraph.arcs p)

let is_extension_of p q =
  let arcs_p = Digraph.arcs p in
  List.for_all (fun a -> List.mem a arcs_p) (Digraph.arcs q)

let one_step_extensions c p =
  List.concat_map
    (fun (u, v) ->
      List.filter_map
        (fun arc -> match extend c p [ arc ] with Ok p' -> Some p' | Error _ -> None)
        [ (u, v); (v, u) ])
    (unoriented c p)

let totalize c p =
  let order =
    match Digraph.topological_order p with
    | Some order -> order
    | None -> assert false (* valid priorities are acyclic *)
  in
  let rank = Array.make (Conflict.size c) 0 in
  List.iteri (fun i v -> rank.(v) <- i) order;
  let new_arcs =
    List.map
      (fun (u, v) -> if rank.(u) < rank.(v) then (u, v) else (v, u))
      (unoriented c p)
  in
  match extend c p new_arcs with
  | Ok p' -> p'
  | Error _ -> assert false (* arcs follow a linear order: acyclic *)

let update c p ~dropped ~oriented =
  Obs.Span.with_span "priority.update"
    ~args:
      [
        ("dropped", Obs.Event.Int (Vset.cardinal dropped));
        ("oriented", Obs.Event.Int (List.length oriented));
      ]
  @@ fun () ->
  match oriented with
  | [] ->
    (* a subgraph of an acyclic graph is acyclic, and every kept arc's
       conflict edge survives the delta (removed edges always touch a
       deleted vertex) — no revalidation needed, and [Digraph.patch]
       shares every untouched vertex's arc sets *)
    Ok (Digraph.patch p ~n:(Conflict.size c) ~drop:dropped)
  | _ :: _ ->
    let kept =
      List.filter
        (fun (u, v) -> not (Vset.mem u dropped || Vset.mem v dropped))
        (Digraph.arcs p)
    in
    of_arcs c (oriented @ kept)

let winnow p s =
  Vset.filter (fun v -> Vset.is_empty (Vset.inter (dominators p v) s)) s

let restrict p s = Digraph.restrict p s

let pp ppf p =
  Format.fprintf ppf "@[{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (u, v) -> Format.fprintf ppf "t%d > t%d" u v))
    (Digraph.arcs p)
