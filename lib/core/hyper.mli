(** Conflict hypergraphs for denial constraints — the paper's §6
    generalization, after [6].

    Under denial constraints a conflict may involve any number of tuples,
    so the conflict graph becomes a hypergraph whose hyperedges are the
    minimal violation sets; repairs are the maximal subsets containing no
    hyperedge. This module is {!Conflict} one level up: vertex ids are
    the relation's fact ids (no private tuple map), violation detection
    joins the equality atoms through the relation's per-column postings,
    and {!apply_delta} patches the packed hypergraph incrementally
    instead of rebuilding. Priorities over hyperedges live in
    {!Hpriority}; the preferred-repair families in {!Hfamily}. *)

open Relational
open Graphs

type t

val build : Constraints.Denial.t list -> Relation.t -> t
(** Raises [Invalid_argument] on ill-typed constraints. Violations of
    the equality-atom fragment are found by postings joins; atoms
    outside it filter candidate assignments as soon as their variables
    are bound (see {!Constraints.Denial.violation_sets}). *)

val of_fds : Constraints.Fd.t list -> Relation.t -> t
(** FDs encoded as denial constraints; the resulting hypergraph has the
    conflict graph's edges (as 2-element hyperedges). *)

val schema : t -> Schema.t
val relation : t -> Relation.t
val denials : t -> Constraints.Denial.t list
val hypergraph : t -> Hypergraph.t

val size : t -> int
(** Number of vertex slots = [Relation.slot_count] (live + tombstoned). *)

val live : t -> Vset.t
val is_live : t -> int -> bool

val tuple : t -> int -> Tuple.t
(** The tuple at a fact id, live or tombstoned. *)

val index : t -> Tuple.t -> int option
val index_exn : t -> Tuple.t -> int

val is_consistent : t -> bool

val repairs : t -> Vset.t list
(** All repairs: maximal independent subsets of the {e live} vertices,
    sorted by [Vset.compare]. *)

val is_repair : t -> Vset.t -> bool

val neighbors : t -> int -> Vset.t
(** Vertices sharing a hyperedge with [v]. *)

val edges_containing : t -> int -> Vset.t list

val conflicting : t -> int -> int -> bool
(** Do the two (distinct, in-range) vertices share a hyperedge? The
    validity test for priority arcs ({!Hpriority}). *)

val to_relation : t -> Vset.t -> Relation.t
val vset_of_relation : t -> Relation.t -> Vset.t

val ground_certainty : t -> Query.Ast.t -> (Cqa.certainty, string) result
(** The polynomial ground-query algorithm of {!Cqa.ground_certainty}
    generalized to hyperedges: a forbidden fact b is blocked by choosing
    a hyperedge e ∋ b and placing e \ {b} into the repair. *)

(** {2 Incremental updates}

    Mirror of {!Conflict.apply_delta} on the hyperedge substrate. *)

type delta = {
  inserted : int list;  (** fresh fact ids, in input order *)
  deleted : int list;  (** tombstoned fact ids, in input order *)
  edges_added : Vset.t list;
      (** every added edge touches an inserted vertex; sorted *)
  edges_removed : Vset.t list;
      (** every removed edge touches a deleted vertex; sorted *)
}

val apply_delta :
  t -> insert:Tuple.t list -> delete:Tuple.t list -> (t * delta, string) result
(** Deletions are applied before insertions (deleting and re-inserting a
    tuple in one batch is allowed and yields a fresh id). New witnesses
    are re-detected only around the inserted facts
    ({!Constraints.Denial.violation_sets_pinned}); dead edges are read
    off the deleted vertices' incidence lists. A rejected delta (same
    error messages as {!Conflict.apply_delta}) touches nothing. *)

val pp : Format.formatter -> t -> unit
