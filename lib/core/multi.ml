open Relational
open Graphs

module Smap = Map.Make (String)

type entry = {
  ctx : Conflict.t;
  prio : Priority.t;
  decomposed : Decompose.t Lazy.t;
}

type t = { database : Database.t; entries : entry Smap.t }

let entry_of ctx prio =
  { ctx; prio; decomposed = lazy (Decompose.make ctx prio) }

let build ~fds database =
  List.iter
    (fun (name, _) ->
      if not (Database.mem database name) then
        invalid_arg (Printf.sprintf "Multi.build: no relation named %S" name))
    fds;
  let entries =
    List.fold_left
      (fun acc rel ->
        let name = Schema.name (Relation.schema rel) in
        let rel_fds = Option.value (List.assoc_opt name fds) ~default:[] in
        let ctx = Conflict.build rel_fds rel in
        Smap.add name (entry_of ctx (Priority.empty ctx)) acc)
      Smap.empty (Database.relations database)
  in
  { database; entries }

let database m = m.database
let relation_names m = List.map fst (Smap.bindings m.entries)

let entry m name =
  match Smap.find_opt name m.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Multi: no relation named %S" name)

let conflict m name = (entry m name).ctx
let priority m name = (entry m name).prio

let set_priority m name p =
  let e = entry m name in
  { m with entries = Smap.add name (entry_of e.ctx p) m.entries }

let set_rule m name rule =
  let e = entry m name in
  match Pref_rules.apply e.ctx rule with
  | Error msg -> Error msg
  | Ok p -> Ok (set_priority m name p)

let repair_count family m =
  Smap.fold
    (fun _ e acc -> acc * Decompose.count family (Lazy.force e.decomposed))
    m.entries 1

(* All combinations of one preferred repair per relation. *)
let repairs family m =
  let per_relation =
    Smap.bindings m.entries
    |> List.map (fun (_, e) ->
           List.map
             (fun s -> Repair.to_relation e.ctx s)
             (Family.repairs family e.ctx e.prio))
  in
  List.fold_left
    (fun acc choices ->
      List.concat_map
        (fun db -> List.map (fun rel -> Database.replace db rel) choices)
        acc)
    [ Database.empty ] per_relation

let certainty family m q =
  let truths = List.map (fun db -> Planner.Engine.holds db q) (repairs family m) in
  if List.for_all Fun.id truths then Cqa.Certainly_true
  else if List.for_all not truths then Cqa.Certainly_false
  else Cqa.Ambiguous

let consistent_answer family m q = certainty family m q = Cqa.Certainly_true

(* --- factorized ground engine ------------------------------------------- *)

(* Split a DNF clause's demands per relation; a positive fact of an
   unknown relation is an error, a positive fact absent from its relation
   kills the clause, absent negative facts are vacuous. *)
let demands_of_clause m (clause : Query.Transform.ground_clause) =
  let resolve (r, t) =
    match Smap.find_opt r m.entries with
    | None -> Error (Printf.sprintf "query mentions unknown relation %S" r)
    | Some e -> Ok (r, Conflict.index e.ctx t)
  in
  let add_to name v which acc =
    let req, forb = Option.value (Smap.find_opt name acc) ~default:(Vset.empty, Vset.empty) in
    let entry =
      match which with
      | `Pos -> (Vset.add v req, forb)
      | `Neg -> (req, Vset.add v forb)
    in
    Smap.add name entry acc
  in
  let rec build acc = function
    | [] -> Ok (Some acc)
    | (which, f) :: rest -> (
      match resolve f with
      | Error e -> Error e
      | Ok (_, None) when which = `Pos -> Ok None
      | Ok (_, None) -> build acc rest
      | Ok (name, Some v) -> build (add_to name v which acc) rest)
  in
  build Smap.empty
    (List.map (fun f -> (`Pos, f)) clause.Query.Transform.positive
    @ List.map (fun f -> (`Neg, f)) clause.Query.Transform.negative)

let clause_satisfiable family m demands =
  Smap.for_all
    (fun name (required, forbidden) ->
      let e = entry m name in
      let d = Lazy.force e.decomposed in
      let touched =
        Vset.fold
          (fun v acc -> Vset.add (Vset.min_elt (Decompose.component_of d v)) acc)
          (Vset.union required forbidden)
          Vset.empty
      in
      Vset.for_all
        (fun rep_v ->
          let comp = Decompose.component_of d rep_v in
          let req = Vset.inter required comp
          and forb = Vset.inter forbidden comp in
          List.exists
            (fun r -> Vset.subset req r && Vset.is_empty (Vset.inter forb r))
            (Decompose.preferred_within family d comp))
        touched)
    demands

let some_preferred_satisfies family m q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demands_of_clause m clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some demands) -> Ok (clause_satisfiable family m demands)))
      (Ok false) clauses

let certainty_ground family m q =
  if not (Query.Ast.is_ground q) then
    Error "certainty_ground: query is not ground"
  else
    match some_preferred_satisfies family m (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_preferred_satisfies family m q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

let vset_of m name rel = Conflict.vset_of_relation (conflict m name) rel
