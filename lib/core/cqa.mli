(** (Preferred) consistent query answers.

    [true] is the X-consistent answer to a closed query Q iff Q holds in
    {e every} repair of the family X (Definition 3); with X = Rep this is
    the classical notion of [1]. Open queries are handled along the lines
    of [1, 7]: a binding is a consistent answer iff it is an answer in
    every preferred repair.

    Two engines:
    - a generic one that enumerates the preferred repairs and evaluates the
      query in each (exponential — it decides the co-NP- and Π₂ᵖ-complete
      entries of Figure 5 by brute force);
    - the polynomial algorithm for {e quantifier-free ground} queries
      w.r.t. Rep (Figure 5, first row, after [6, 7]), working on the DNF
      of the negated query over the conflict graph. *)

open Relational
open Graphs

type certainty =
  | Certainly_true  (** true in every preferred repair *)
  | Certainly_false  (** false in every preferred repair *)
  | Ambiguous  (** differs between preferred repairs *)

val certainty_to_string : certainty -> string

exception Empty_family of Family.name
(** Raised when a certainty computation enumerates {e no} repairs at all,
    instead of letting the universally-quantified definitions degenerate
    to vacuous verdicts ([Certainly_true] for certainty, [true] for
    consistent answers, every binding for open queries).

    By P1 this is an invariant violation, never a legitimate outcome:
    each of the paper's families selects at least one repair of every
    instance — Rep because maximal independent sets always exist (the
    empty instance has the single repair ∅), C because Algorithm 1 always
    terminates with a result (Prop. 6), L and S because C ⊆ S ⊆ L, and G
    because C ⊆ G. An empty enumeration therefore means a broken
    [Conflict]/[Priority] pair or a bug in the enumerator, and silently
    answering [Certainly_true] would launder that bug into a confident
    query answer. Locked by the empty-family tests in [test_cqa]. *)

val consistent_answer :
  Family.name -> Conflict.t -> Priority.t -> Query.Ast.t -> bool
(** [true] iff the closed query holds in every X-preferred repair. Raises
    [Invalid_argument] on open queries or ill-formed atoms, and
    {!Empty_family} if the enumeration yields no repair (see above).
    Streaming: the repair enumeration stops at the first repair
    falsifying the query. *)

val certainty : Family.name -> Conflict.t -> Priority.t -> Query.Ast.t -> certainty
(** Streaming like {!consistent_answer}: returns [Ambiguous] as soon as
    two repairs disagree, without enumerating the rest. Raises
    {!Empty_family} instead of a vacuous [Certainly_true] when the
    enumeration yields no repair. *)

val consistent_answers_open :
  Family.name ->
  Conflict.t ->
  Priority.t ->
  Query.Ast.t ->
  string list * Value.t list list
(** Free variables (sorted) and the bindings answering the query in every
    X-preferred repair. Raises {!Empty_family} when the family
    materializes no repairs (P1 violation; see above). *)

val evaluate_in_repair : Conflict.t -> Vset.t -> Query.Ast.t -> bool
(** [r' ⊨ Q] for one repair given as a vertex set. *)

val demand_satisfiable : Conflict.t -> Ground.demand -> bool
(** The inner kernel of {!ground_certainty}: is there a repair containing
    [required] and avoiding [forbidden]? Exposed for the benchmark
    harness and for cross-validation against reference implementations. *)

val ground_certainty : Conflict.t -> Query.Ast.t -> (certainty, string) result
(** Polynomial-time certainty w.r.t. the full repair family Rep, for
    quantifier-free ground queries. [Error] when the query is not ground
    or mentions a relation other than the instance's.

    Method: [Certainly_true] iff no repair satisfies ¬Q. The DNF of ¬Q
    reduces this to clause satisfiability: a clause demanding facts A
    present and facts B absent is satisfiable by some repair iff there is
    an independent S ⊇ A, disjoint from B, in which every b ∈ B has a
    conflict-neighbour (such an S extends greedily to a repair avoiding
    B). Blockers are searched per-b with backtracking — at most n^|B|
    combinations, polynomial in the data for a fixed query. *)

val ground_consistent_answer : Conflict.t -> Query.Ast.t -> (bool, string) result
(** [Ok true] iff [true] is the consistent answer to the ground query
    w.r.t. Rep — i.e. {!ground_certainty} returns [Certainly_true]. *)
