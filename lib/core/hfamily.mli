(** Families of preferred repairs on the hyperedge substrate.

    The Staworko–Chomicki framework (arXiv:0908.0464) orders repairs of
    a denial-constraint instance by how well they respect a priority:
    Rep (all repairs), Pareto-optimal repairs (no Pareto improvement —
    one new fact dominating every fact it displaces) and globally
    optimal repairs (no global improvement — every displaced fact
    answered by {e some} dominating new fact). Pareto improvements are
    global improvements, so Global ⊆ Pareto ⊆ Rep; all three are
    non-empty on every instance. Pareto checking is polynomial; global
    checking is a witness search over the repair space
    (co-NP-complete). The interface mirrors {!Family}. *)

open Relational
open Graphs

type name = Rep | Pareto | Global

val all_names : name list
(** In decreasing size of the selected set: [Rep; Pareto; Global]. *)

val name_to_string : name -> string
val name_of_string : string -> name option

val repairs : name -> Hyper.t -> Hpriority.t -> Vset.t list
(** The preferred repairs, sorted (a filter of {!Hyper.repairs}). *)

val repairs_relations : name -> Hyper.t -> Hpriority.t -> Relation.t list

val check : name -> Hyper.t -> Hpriority.t -> Vset.t -> bool
(** Membership test. Polynomial for [Rep] and [Pareto]; for [Global] a
    witness search over the repair space. *)

val check_relation : name -> Hyper.t -> Hpriority.t -> Relation.t -> bool

val member : name -> Hyper.t -> Hpriority.t -> Vset.t -> bool
(** Like {!check} for a set already known to be a repair (skips the
    maximality test) — the per-candidate test behind the sharded
    enumeration in {!Hdecompose}. *)

val is_pareto_optimal : Hyper.t -> Hpriority.t -> Vset.t -> bool
val global_improves : Hpriority.t -> over:Vset.t -> Vset.t -> bool

val iter : name -> Hyper.t -> Hpriority.t -> (Vset.t -> unit) -> unit
val exists : name -> Hyper.t -> Hpriority.t -> (Vset.t -> bool) -> bool
val for_all : name -> Hyper.t -> Hpriority.t -> (Vset.t -> bool) -> bool
val one : name -> Hyper.t -> Hpriority.t -> Vset.t option

val pp_name : Format.formatter -> name -> unit
