(** Priorities (paper, Definition 2).

    A priority ≻ is a binary relation defined only on conflicting tuples
    that is acyclic: no tuple dominates itself through the transitive
    closure. [x ≻ y] reads "x dominates y" — an instruction that, in the
    conflict between x and y, x is to be kept.

    A priority is {e total} when every conflict edge is oriented. Extending
    a priority means orienting further conflict edges (§2.2); the result
    must again be acyclic. Values of this type are immutable and always
    valid — smart constructors reject arcs off the conflict graph and
    cycles. *)

open Graphs

type t

type error =
  | Not_conflicting of int * int
      (** arc between non-adjacent vertices of the conflict graph *)
  | Cyclic  (** the relation's transitive closure is not irreflexive *)

val error_to_string : error -> string

val empty : Conflict.t -> t
(** The priority with no information (used by P3: Rep∅ = Rep). *)

val of_arcs : Conflict.t -> (int * int) list -> (t, error) result
(** [(u, v)] meaning u ≻ v. Both endpoints must be adjacent in the
    conflict graph. *)

val of_arcs_exn : Conflict.t -> (int * int) list -> t

val of_tuple_pairs :
  Conflict.t -> (Relational.Tuple.t * Relational.Tuple.t) list -> (t, error) result
(** Pairs [(x, y)] meaning x ≻ y, by tuple value. *)

val arcs : t -> (int * int) list
val arc_count : t -> int
val dominates : t -> int -> int -> bool
(** [dominates p x y] is x ≻ y. *)

val dominators : t -> int -> Vset.t
(** [dominators p y] = {x | x ≻ y}. *)

val dominated : t -> int -> Vset.t
(** [dominated p x] = {y | x ≻ y}. *)

val is_total : Conflict.t -> t -> bool
(** Every conflict edge is oriented. *)

val unoriented : Conflict.t -> t -> (int * int) list
(** Conflict edges carrying no orientation, as [(u, v)] with u < v. *)

val extend : Conflict.t -> t -> (int * int) list -> (t, error) result
(** Add orientations; fails if the addition leaves the conflict graph or
    creates a cycle. The result is an extension (⊇) of the input. *)

val is_extension_of : t -> t -> bool
(** [is_extension_of p q] iff p ⊇ q as arc sets. *)

val one_step_extensions : Conflict.t -> t -> t list
(** All priorities obtained by orienting exactly one further conflict
    edge (both directions, keeping only the acyclic ones). Used to test
    monotonicity (P2). *)

val totalize : Conflict.t -> t -> t
(** A canonical total extension: unoriented edges are oriented along a
    topological order of the existing arcs, so the result is acyclic.
    Deterministic. Implements the "choose one total extension" step of
    Example 10's T-Rep. *)

val update :
  Conflict.t -> t -> dropped:Vset.t -> oriented:(int * int) list ->
  (t, error) result
(** Carry a priority across an incremental conflict update: [c] is the
    {e updated} conflict, [p] the priority over the previous one. Arcs
    touching a vertex in [dropped] (the delta's deleted ids) are
    discarded, [oriented] (arcs on the delta's new edges, e.g. from
    {!Pref_rules.orient}) are added, and the result is re-validated
    against [c] — so a rule that turns cyclic on the new instance is
    caught here, exactly as {!Pref_rules.apply} would on a rebuild. *)

val winnow : t -> Vset.t -> Vset.t
(** ω≻(S) = {t ∈ S | ¬∃t' ∈ S. t' ≻ t} — the winnow operator of [5]
    restricted to a vertex set. Never empty on a non-empty set, by
    acyclicity. *)

val restrict : t -> Vset.t -> t
(** Keep arcs inside the given vertex set (identifiers unchanged). *)

val pp : Format.formatter -> t -> unit
