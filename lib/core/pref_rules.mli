(** Building priorities from user-level preference information.

    Data-cleaning systems expose per-tuple metadata — creation timestamps
    and data sources (paper, §1) — and the user states preferences such as
    "source s1 and s2 are more reliable than s3" (Example 3) or "newer
    data wins". A {e rule} orders two tuples; restricted to the
    conflicting pairs of a concrete instance it induces a priority.

    Rules are arbitrary and may induce cycles when combined; {!apply}
    therefore re-validates acyclicity. Rules built with {!by_score} alone
    are always acyclic (scores strictly decrease along ≻ paths). *)

open Relational

type rule = Tuple.t -> Tuple.t -> bool
(** [rule x y] = "x is preferred to y". Must be irreflexive in spirit;
    [apply] only ever calls it on distinct conflicting tuples. *)

val apply : Conflict.t -> rule -> (Priority.t, string) result
(** Orient each conflict edge by the rule ([x ≻ y] iff [rule x y] and not
    [rule y x]); fails when the induced relation is cyclic. *)

val orient : Conflict.t -> rule -> (int * int) list -> (int * int) list
(** The per-edge kernel of {!apply}: orient exactly the given conflict
    edges by the rule, returning arcs [(u, v)] meaning u ≻ v. Because a
    rule is a pure function of the two tuples, orienting only the edges a
    delta added and keeping the surviving old arcs reproduces [apply] on
    the updated conflict — the basis of incremental priority maintenance
    (no validation here; feed the arcs to {!Priority.update}). *)

val apply_exn : Conflict.t -> rule -> Priority.t

val by_score : (Tuple.t -> int) -> rule
(** Prefer the tuple with the strictly higher score. Acyclic for any
    scoring function. *)

val newest_first : Provenance.t -> rule
(** Prefer the tuple with the strictly greater timestamp; tuples without
    timestamps are incomparable. Acyclic. *)

val oldest_first : Provenance.t -> rule

val source_reliability :
  Provenance.t -> more_reliable_than:(string * string) list -> (rule, string) result
(** [(s, s')] states source s is more reliable than s'. The transitive
    closure of this source order gives the rule: x ≻ y iff source(x)
    reaches source(y). Fails if the source order is cyclic. Tuples with
    unknown sources are incomparable. Example 3 uses
    [[("s1", "s3"); ("s2", "s3")]]. *)

val on_attribute :
  Schema.t -> string -> prefer:[ `Larger | `Smaller ] -> (rule, string) result
(** Prefer the tuple whose value at the named numeric attribute is larger
    (or smaller); name-typed attributes are rejected. Acyclic. *)

val lexicographic : rule list -> rule
(** The first rule with an opinion (in either direction) decides.
    Combinations may be cyclic on some instances — {!apply} will say. *)
