open Graphs

(* The naive restatement of Algorithm 1 recomputes ω≻ on every iteration,
   which is quadratic. [clean] and [is_result] instead maintain the
   winnow set incrementally: for every tuple, count its dominators still
   present; a tuple enters the winnow set when the count reaches zero.
   Every vertex is removed once and every conflict edge and priority arc
   is processed once, so a run costs O((V + E + A) log V). *)

type state = {
  c : Conflict.t;
  p : Priority.t;
  mutable remaining : Vset.t;
  dom_count : int array;  (* remaining dominators per vertex *)
  mutable winnow : Vset.t;  (* ω≻(remaining) *)
}

let init c p =
  let n = Conflict.size c in
  let dom_count =
    Array.init n (fun v -> Vset.cardinal (Priority.dominators p v))
  in
  let winnow = ref Vset.empty in
  Array.iteri
    (fun v k -> if k = 0 && Conflict.is_live c v then winnow := Vset.add v !winnow)
    dom_count;
  { c; p; remaining = Conflict.live c; dom_count; winnow = !winnow }

(* Remove the picked vertex and its conflict neighbourhood, updating
   dominator counts of the survivors. *)
let pick st x =
  let gone = Vset.inter (Conflict.vicinity st.c x) st.remaining in
  st.remaining <- Vset.diff st.remaining gone;
  st.winnow <- Vset.diff st.winnow gone;
  Vset.iter
    (fun w ->
      Vset.iter
        (fun y ->
          if Vset.mem y st.remaining then begin
            st.dom_count.(y) <- st.dom_count.(y) - 1;
            if st.dom_count.(y) = 0 then st.winnow <- Vset.add y st.winnow
          end)
        (Priority.dominated st.p w))
    gone

let clean ?(choose = Vset.min_elt) c p =
  let st = init c p in
  let rec loop acc =
    if Vset.is_empty st.remaining then acc
    else begin
      assert (not (Vset.is_empty st.winnow));
      let x = choose st.winnow in
      pick st x;
      loop (Vset.add x acc)
    end
  in
  loop Vset.empty

let clean_naive ?(choose = Vset.min_elt) c p =
  let rec loop remaining acc =
    if Vset.is_empty remaining then acc
    else begin
      let w = Priority.winnow p remaining in
      assert (not (Vset.is_empty w));
      let x = choose w in
      loop (Vset.diff remaining (Conflict.vicinity c x)) (Vset.add x acc)
    end
  in
  loop (Conflict.live c) Vset.empty

(* All runs of Algorithm 1 (exponentially many states in the worst case,
   like the repair space itself). Distinct choice sequences frequently
   reach the same set of remaining tuples, so results are memoized per
   state. *)
let all_results c p =
  let module H = Hashtbl in
  let memo : (Vset.t, Vset.t list) H.t = H.create 64 in
  let rec results remaining =
    if Vset.is_empty remaining then [ Vset.empty ]
    else
      match H.find_opt memo remaining with
      | Some rs -> rs
      | None ->
        let w = Priority.winnow p remaining in
        let step x acc =
          let rest = results (Vset.diff remaining (Conflict.vicinity c x)) in
          List.fold_left (fun acc s -> Vset.add x s :: acc) acc rest
        in
        let rs = List.sort_uniq Vset.compare (Vset.fold step w []) in
        H.replace memo remaining rs;
        rs
  in
  results (Conflict.live c)

let is_result c p candidate =
  Undirected.is_independent (Conflict.graph c) candidate
  && begin
       let st = init c p in
       let rec loop () =
         if Vset.is_empty st.remaining then true
         else
           match Vset.min_elt_opt (Vset.inter st.winnow candidate) with
           | None -> false
           | Some x ->
             pick st x;
             loop ()
       in
       loop ()
     end
