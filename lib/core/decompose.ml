open Relational
open Graphs

type counters = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable component_repairs : int;
  mutable combos_streamed : int;
  mutable components_examined : int;
  mutable early_exits : int;
  mutable deltas_applied : int;
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable components_dirtied : int;
  mutable cache_evicted : int;
  mutable cache_retained : int;
}

let fresh_counters () =
  {
    cache_hits = 0;
    cache_misses = 0;
    component_repairs = 0;
    combos_streamed = 0;
    components_examined = 0;
    early_exits = 0;
    deltas_applied = 0;
    edges_added = 0;
    edges_removed = 0;
    components_dirtied = 0;
    cache_evicted = 0;
    cache_retained = 0;
  }

type t = {
  conflict : Conflict.t;
  priority : Priority.t;
  components : Vset.t array;
      (* indexed by component SLOT, so [component_of] is O(1). Slots are
         stable across [apply_delta]: an untouched component keeps its
         slot (and so its [comp_index] entries and cache keys), a dirtied
         one frees it for reuse. [Vset.empty] marks a free slot — every
         consumer iterating this array skips empties. *)
  comp_index : int array;
  cache : (Family.name * int, Vset.t list) Hashtbl.t;
      (* (family, component slot) -> preferred repairs in original ids *)
  counters : counters;
}

let make conflict priority =
  Obs.Span.with_span "decompose.make" @@ fun () ->
  (* tombstoned vertices of an incrementally updated conflict show up as
     isolated singletons in the graph — they are not part of the instance *)
  let components =
    Array.of_list
      (List.filter
         (fun comp -> Conflict.is_live conflict (Vset.min_elt comp))
         (Undirected.connected_components (Conflict.graph conflict)))
  in
  let comp_index = Array.make (max 1 (Conflict.size conflict)) 0 in
  Array.iteri
    (fun i comp -> Vset.iter (fun v -> comp_index.(v) <- i) comp)
    components;
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [ ("components", Obs.Event.Int (Array.length components)) ];
  {
    conflict;
    priority;
    components;
    comp_index;
    cache = Hashtbl.create 16;
    counters = fresh_counters ();
  }

let conflict d = d.conflict
let priority d = d.priority

(* live slots, in the canonical order (increasing smallest vertex) *)
let components d =
  List.sort
    (fun a b -> compare (Vset.min_elt a) (Vset.min_elt b))
    (List.filter
       (fun comp -> not (Vset.is_empty comp))
       (Array.to_list d.components))

let fold_components f acc d =
  Array.fold_left
    (fun acc comp -> if Vset.is_empty comp then acc else f acc comp)
    acc d.components

let max_component d =
  Array.fold_left (fun acc comp -> max acc (Vset.cardinal comp)) 0 d.components

(* an immutable snapshot, so callers can diff across a run *)
let counters d =
  let z = d.counters in
  {
    cache_hits = z.cache_hits;
    cache_misses = z.cache_misses;
    component_repairs = z.component_repairs;
    combos_streamed = z.combos_streamed;
    components_examined = z.components_examined;
    early_exits = z.early_exits;
    deltas_applied = z.deltas_applied;
    edges_added = z.edges_added;
    edges_removed = z.edges_removed;
    components_dirtied = z.components_dirtied;
    cache_evicted = z.cache_evicted;
    cache_retained = z.cache_retained;
  }

let reset_counters d =
  let z = d.counters in
  z.cache_hits <- 0;
  z.cache_misses <- 0;
  z.component_repairs <- 0;
  z.combos_streamed <- 0;
  z.components_examined <- 0;
  z.early_exits <- 0;
  z.deltas_applied <- 0;
  z.edges_added <- 0;
  z.edges_removed <- 0;
  z.components_dirtied <- 0;
  z.cache_evicted <- 0;
  z.cache_retained <- 0

let pp_counters ppf z =
  Format.fprintf ppf
    "@[<v>component cache:        %d hit(s), %d miss(es), %d repair(s) \
     materialized@,\
     streamed:               %d repair combination(s)@,\
     components examined:    %d (%d early exit(s))"
    z.cache_hits z.cache_misses z.component_repairs z.combos_streamed
    z.components_examined z.early_exits;
  (* the delta lines appear only once updates have actually flowed, so
     output for the static pipeline is unchanged *)
  if z.deltas_applied > 0 then
    Format.fprintf ppf
      "@,\
       deltas applied:         %d (%d edge(s) added, %d removed)@,\
       delta invalidation:     %d component(s) dirtied, %d cache \
       entr(ies) evicted, %d retained"
      z.deltas_applied z.edges_added z.edges_removed z.components_dirtied
      z.cache_evicted z.cache_retained;
  Format.fprintf ppf "@]"

let component_of d v =
  if v < 0 || v >= Conflict.size d.conflict || not (Conflict.is_live d.conflict v)
  then invalid_arg "Decompose.component_of";
  d.components.(d.comp_index.(v))

(* --- incremental maintenance -------------------------------------------- *)

(* Components and cache after a [Conflict.apply_delta]: only components
   actually reached by the delta are recomputed, and only their cache
   entries die. By the delta invariants (added edges touch an inserted
   vertex, removed edges a deleted one), a component none of whose
   vertices was deleted or gained an edge is bit-for-bit unchanged in the
   new graph — its repair lists, computed from the induced sub-instance,
   stay valid and are rekeyed to the component's new position. *)
let apply_delta d conflict priority (delta : Conflict.delta) =
  Obs.Span.with_span "decompose.apply_delta" @@ fun () ->
  let old_size = Array.length d.comp_index in
  let g = Conflict.graph conflict in
  let live' = Conflict.live conflict in
  (* old component ids reached by the delta *)
  let touched = Hashtbl.create 8 in
  let touch v =
    (* only vertices of the old instance carry a current slot: inserted ids
       lie past [old_size], and a tombstone's entry is stale *)
    if v < old_size && Conflict.is_live d.conflict v then
      Hashtbl.replace touched d.comp_index.(v) ()
  in
  List.iter touch delta.Conflict.deleted;
  List.iter
    (fun (u, v) -> touch u; touch v)
    (delta.Conflict.edges_added @ delta.Conflict.edges_removed);
  (* survivors of the touched components, plus every inserted vertex —
     closed under adjacency in the new graph by the delta invariants *)
  let scope =
    Hashtbl.fold
      (fun ci () acc -> Vset.union acc (Vset.inter d.components.(ci) live'))
      touched
      (Vset.of_list delta.Conflict.inserted)
  in
  let recomputed =
    let seen = ref Vset.empty in
    Vset.fold
      (fun v acc ->
        if Vset.mem v !seen then acc
        else begin
          let rec grow frontier comp =
            if Vset.is_empty frontier then comp
            else begin
              let comp = Vset.union comp frontier in
              let next =
                Vset.fold
                  (fun u acc -> Vset.union acc (Undirected.neighbors g u))
                  frontier Vset.empty
              in
              grow (Vset.diff next comp) comp
            end
          in
          let comp = grow (Vset.singleton v) Vset.empty in
          seen := Vset.union !seen comp;
          comp :: acc
        end)
      scope []
  in
  (* slots of untouched components (and their comp_index entries and
     cache keys) carry over verbatim; dirtied slots are freed and reused
     for the recomputed components, growing the array only when a split
     produces more components than were dirtied *)
  let size' = max 1 (Conflict.size conflict) in
  let old_index_len = Array.length d.comp_index in
  let comp_index =
    if size' = old_index_len then Array.copy d.comp_index
    else begin
      let a = Array.make size' 0 in
      Array.blit d.comp_index 0 a 0 old_index_len;
      a
    end
  in
  let freed = Hashtbl.fold (fun ci () acc -> ci :: acc) touched [] in
  let nslots = Array.length d.components in
  let extra = max 0 (List.length recomputed - List.length freed) in
  let components = Array.make (nslots + extra) Vset.empty in
  Array.blit d.components 0 components 0 nslots;
  List.iter (fun ci -> components.(ci) <- Vset.empty) freed;
  let free = ref freed and fresh = ref nslots in
  List.iter
    (fun comp ->
      let slot =
        match !free with
        | ci :: rest ->
          free := rest;
          ci
        | [] ->
          let ci = !fresh in
          incr fresh;
          ci
      in
      components.(slot) <- comp;
      Vset.iter (fun v -> comp_index.(v) <- slot) comp)
    recomputed;
  (* evict the dirtied slots' cache entries; every other entry stays put *)
  let z = d.counters in
  let cache = Hashtbl.copy d.cache in
  Hashtbl.iter
    (fun (family, ci) _ ->
      if Hashtbl.mem touched ci then begin
        Hashtbl.remove cache (family, ci);
        z.cache_evicted <- z.cache_evicted + 1
      end)
    d.cache;
  z.cache_retained <- z.cache_retained + Hashtbl.length cache;
  z.deltas_applied <- z.deltas_applied + 1;
  z.edges_added <- z.edges_added + List.length delta.Conflict.edges_added;
  z.edges_removed <- z.edges_removed + List.length delta.Conflict.edges_removed;
  z.components_dirtied <- z.components_dirtied + Hashtbl.length touched;
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [
        ("dirtied", Obs.Event.Int (Hashtbl.length touched));
        ("recomputed", Obs.Event.Int (List.length recomputed));
      ];
  (* the same mutable record carries over: telemetry accumulates across
     the whole update history of the decomposition *)
  { conflict; priority; components; comp_index; cache; counters = z }

(* The sub-instance of one component. Tuples keep their relative order
   under restriction, so new vertex i is the i-th smallest original id. *)
let sub_context d comp =
  let rel = Conflict.relation_of_vset d.conflict comp in
  let sub = Conflict.build (Conflict.fds d.conflict) rel in
  let mapping = Array.of_list (Vset.elements comp) in
  let back = Hashtbl.create (Array.length mapping) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) mapping;
  let arcs =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt back u, Hashtbl.find_opt back v) with
        | Some u', Some v' -> Some (u', v')
        | _, _ -> None)
      (Priority.arcs d.priority)
  in
  (sub, Priority.of_arcs_exn sub arcs, mapping)

let preferred_within family d comp =
  let key = (family, d.comp_index.(Vset.min_elt comp)) in
  match Hashtbl.find_opt d.cache key with
  | Some repairs ->
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    repairs
  | None ->
    Obs.Span.with_span "decompose.component"
      ~args:
        [
          ("family", Obs.Event.Str (Family.name_to_string family));
          ("size", Obs.Event.Int (Vset.cardinal comp));
        ]
    @@ fun () ->
    d.counters.cache_misses <- d.counters.cache_misses + 1;
    let sub, p, mapping = sub_context d comp in
    let repairs =
      List.map
        (fun s -> Vset.map (fun v -> mapping.(v)) s)
        (Family.repairs family sub p)
    in
    d.counters.component_repairs <-
      d.counters.component_repairs + List.length repairs;
    if Obs.Span.enabled () then
      Obs.Span.annotate [ ("repairs", Obs.Event.Int (List.length repairs)) ];
    Hashtbl.replace d.cache key repairs;
    repairs

let count_within family d comp =
  let key = (family, d.comp_index.(Vset.min_elt comp)) in
  match Hashtbl.find_opt d.cache key with
  | Some repairs ->
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    List.length repairs
  | None ->
    (* counting path: stream the family over the sub-instance without
       materializing the repair lists (and without populating the cache —
       a later [preferred_within] still owns that) *)
    Obs.Span.with_span "decompose.count"
      ~args:
        [
          ("family", Obs.Event.Str (Family.name_to_string family));
          ("size", Obs.Event.Int (Vset.cardinal comp));
        ]
    @@ fun () ->
    d.counters.cache_misses <- d.counters.cache_misses + 1;
    let sub, p, _mapping = sub_context d comp in
    let n = ref 0 in
    Family.iter family sub p (fun _ -> incr n);
    !n

(* repair counts multiply across components and overflow [int] long before
   they overflow anyone's patience: saturate instead of wrapping *)
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let count family d =
  fold_components
    (fun acc comp -> sat_mul acc (List.length (preferred_within family d comp)))
    1 d

(* --- ground certainty --------------------------------------------------- *)

let demand_of_clause d clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Conflict.schema d.conflict))
    ~index:(Conflict.index d.conflict) clause

(* A clause is satisfiable by a preferred repair iff each touched
   component has a preferred repair meeting the clause's demands there
   (P1 supplies arbitrary preferred repairs for untouched components, and
   the family factorizes). *)
exception Stop

let clause_satisfiable family d { Ground.required; forbidden } =
  let touched =
    Vset.fold
      (fun v acc -> Vset.add d.comp_index.(v) acc)
      (Vset.union required forbidden)
      Vset.empty
  in
  let remaining = ref (Vset.cardinal touched) in
  try
    Vset.iter
      (fun ci ->
        d.counters.components_examined <- d.counters.components_examined + 1;
        decr remaining;
        let comp = d.components.(ci) in
        let req = Vset.inter required comp
        and forb = Vset.inter forbidden comp in
        let ok =
          List.exists
            (fun r -> Vset.subset req r && Vset.is_empty (Vset.inter forb r))
            (preferred_within family d comp)
        in
        if not ok then begin
          if !remaining > 0 then
            d.counters.early_exits <- d.counters.early_exits + 1;
          raise Stop
        end)
      touched;
    true
  with Stop -> false

let some_preferred_satisfies family d q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause d clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some demand) -> Ok (clause_satisfiable family d demand)))
      (Ok false) clauses

let certainty_ground family d q =
  if not (Query.Ast.is_ground q) then
    Error "certainty_ground: query is not ground"
  else
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_preferred_satisfies family d q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

(* --- streaming over the cross product ----------------------------------- *)

(* The per-component preferred repairs, as arrays for cheap indexing.
   Raises [Cqa.Empty_family] if any component contributes nothing: the
   cross product would be empty, which P1 rules out (see [Cqa]). *)
let repair_matrix family d =
  let lists =
    Array.of_list
      (List.rev
         (fold_components
            (fun acc comp ->
              Array.of_list (preferred_within family d comp) :: acc)
            [] d))
  in
  Array.iter
    (fun l -> if Array.length l = 0 then raise (Cqa.Empty_family family))
    lists;
  lists

let iter family d f =
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if k = 0 then begin
    (* no conflicts at all: the single repair is the empty vertex set
       (every tuple survives) — mirrors [Mis.iter] on the empty graph *)
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    f Vset.empty
  end
  else begin
    let rec go i acc =
      if i = k then begin
        d.counters.combos_streamed <- d.counters.combos_streamed + 1;
        f acc
      end
      else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
    in
    go 0 Vset.empty
  end

let exists family d pred =
  try
    iter family d (fun r -> if pred r then raise Stop);
    false
  with Stop -> true

let for_all family d pred = not (exists family d (fun r -> not (pred r)))

let member family d r =
  Vset.subset r (Conflict.live d.conflict)
  && Array.for_all
       (fun comp ->
         Vset.is_empty comp
         ||
         let local = Vset.inter r comp in
         List.exists (Vset.equal local) (preferred_within family d comp))
       d.components

let one family d =
  match repair_matrix family d with
  | exception Cqa.Empty_family _ -> None
  | lists -> Some (Array.fold_left (fun acc l -> Vset.union acc l.(0)) Vset.empty lists)

(* Certainty of a quantified query by deviation scan + product fallback.

   General (non-ground) queries do not reduce to per-component verdicts:
   certainty is about the *combinations*, and a query can hold in every
   single-deviation neighbour of a baseline repair yet fail in a repair
   differing in two components at once. So:
   - pass 1 scans all repairs at Hamming component-distance <= 1 from a
     baseline; any disagreement settles [Ambiguous] early, after
     enumerating only sum-per-component many repairs (exp in the largest
     component, not the total);
   - pass 2, needed only for a certain verdict when >= 2 components have
     more than one preferred repair, walks the full cross product. *)
let certainty_streaming family d q =
  let eval r = Cqa.evaluate_in_repair d.conflict r q in
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("route", Obs.Event.Str "deviation-scan") ];
  if k = 0 then begin
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    if eval Vset.empty then Cqa.Certainly_true else Cqa.Certainly_false
  end
  else begin
    let base = Array.map (fun l -> l.(0)) lists in
    (* pre.(i) = union of base.(0..i-1); suf.(i) = union of base.(i..k-1) *)
    let pre = Array.make (k + 1) Vset.empty in
    for i = 0 to k - 1 do
      pre.(i + 1) <- Vset.union pre.(i) base.(i)
    done;
    let suf = Array.make (k + 1) Vset.empty in
    for i = k - 1 downto 0 do
      suf.(i) <- Vset.union suf.(i + 1) base.(i)
    done;
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    let v0 = eval pre.(k) in
    try
      (* pass 1: single-component deviations from the baseline *)
      for i = 0 to k - 1 do
        d.counters.components_examined <- d.counters.components_examined + 1;
        for j = 1 to Array.length lists.(i) - 1 do
          d.counters.combos_streamed <- d.counters.combos_streamed + 1;
          let r = Vset.union (Vset.union pre.(i) lists.(i).(j)) suf.(i + 1) in
          if eval r <> v0 then begin
            d.counters.early_exits <- d.counters.early_exits + 1;
            raise Stop
          end
        done
      done;
      (* pass 2: a certain verdict needs the full product whenever two or
         more components can deviate simultaneously *)
      let multi =
        Array.fold_left
          (fun acc l -> if Array.length l > 1 then acc + 1 else acc)
          0 lists
      in
      if multi >= 2 then begin
        if Obs.Span.enabled () then
          Obs.Span.annotate [ ("route", Obs.Event.Str "full-product") ];
        let rec go i acc =
          if i = k then begin
            d.counters.combos_streamed <- d.counters.combos_streamed + 1;
            if eval acc <> v0 then begin
              d.counters.early_exits <- d.counters.early_exits + 1;
              raise Stop
            end
          end
          else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
        in
        go 0 Vset.empty
      end;
      if v0 then Cqa.Certainly_true else Cqa.Certainly_false
    with Stop -> Cqa.Ambiguous
  end

let certainty family d q =
  if not (Query.Ast.is_closed q) then
    invalid_arg "Decompose.certainty: open query";
  Obs.Span.with_span "cqa.certainty"
    ~args:[ ("family", Obs.Event.Str (Family.name_to_string family)) ]
  @@ fun () ->
  let before = if Obs.Span.enabled () then Some (counters d) else None in
  let verdict =
    if Query.Ast.is_ground q then
      match certainty_ground family d q with
      | Ok cert ->
        Obs.Span.annotate [ ("route", Obs.Event.Str "ground") ];
        cert
      | Error _ ->
        (* unknown relation, arity mismatch, ...: fall back to the generic
           evaluator so the verdict matches the whole-graph path *)
        certainty_streaming family d q
    else certainty_streaming family d q
  in
  (match before with
  | None -> ()
  | Some b ->
    let z = d.counters in
    Obs.Span.annotate
      [
        ("verdict", Obs.Event.Str (Cqa.certainty_to_string verdict));
        ("cache_hits", Obs.Event.Int (z.cache_hits - b.cache_hits));
        ("cache_misses", Obs.Event.Int (z.cache_misses - b.cache_misses));
        ("combos_streamed", Obs.Event.Int (z.combos_streamed - b.combos_streamed));
        ( "components_examined",
          Obs.Event.Int (z.components_examined - b.components_examined) );
        ("early_exits", Obs.Event.Int (z.early_exits - b.early_exits));
      ]);
  verdict

let consistent_answer family d q =
  if Query.Ast.is_ground q then
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Ok sat -> not sat
    | Error _ ->
      for_all family d (fun r -> Cqa.evaluate_in_repair d.conflict r q)
  else begin
    if not (Query.Ast.is_closed q) then
      invalid_arg "Decompose.consistent_answer: open query";
    for_all family d (fun r -> Cqa.evaluate_in_repair d.conflict r q)
  end

let consistent_answers_open family d q =
  Obs.Span.with_span "cqa.open"
    ~args:[ ("family", Obs.Event.Str (Family.name_to_string family)) ]
  @@ fun () ->
  let result = ref None in
  (try
     iter family d (fun r ->
         let free, rows =
           Query.Engine.answers_relation (Repair.to_relation d.conflict r) q
         in
         match !result with
         | None -> result := Some (free, rows)
         | Some (free0, rows0) ->
           let present = Hashtbl.create (List.length rows) in
           List.iter (fun row -> Hashtbl.replace present row ()) rows;
           let rows0 = List.filter (fun row -> Hashtbl.mem present row) rows0 in
           result := Some (free0, rows0);
           if rows0 = [] then begin
             d.counters.early_exits <- d.counters.early_exits + 1;
             raise Stop
           end)
   with Stop -> ());
  match !result with
  | Some answer -> answer
  | None -> assert false (* iter raises Empty_family before this *)

let certain_tuples family d =
  fold_components
    (fun acc comp ->
      match preferred_within family d comp with
      | [] -> acc
      | first :: rest ->
        Vset.union acc (List.fold_left Vset.inter first rest))
    Vset.empty d

let possible_tuples family d =
  fold_components
    (fun acc comp ->
      List.fold_left Vset.union acc (preferred_within family d comp))
    Vset.empty d

(* --- aggregates ----------------------------------------------------------- *)

let attr_position d attr =
  let schema = Conflict.schema d.conflict in
  match Schema.position schema attr with
  | None ->
    Error
      (Printf.sprintf "schema %s has no attribute %S" (Schema.name schema) attr)
  | Some i ->
    if Schema.ty_at schema i <> Schema.TInt then
      Error (Printf.sprintf "attribute %S is not numeric" attr)
    else Ok i

let aggregate_range family d agg =
  let pos =
    match agg with
    | Aggregate.Count_all -> Ok (-1)
    | Aggregate.Sum a | Aggregate.Min a | Aggregate.Max a -> attr_position d a
  in
  match pos with
  | Error e -> Error e
  | Ok pos ->
    let value_of v =
      match Value.as_int (Tuple.get (Conflict.tuple d.conflict v) pos) with
      | Some n -> n
      | None -> assert false
    in
    (* the aggregate's value inside one component repair *)
    let local s =
      match agg with
      | Aggregate.Count_all -> Some (Vset.cardinal s)
      | Aggregate.Sum _ ->
        Some (Vset.fold (fun v acc -> acc + value_of v) s 0)
      | Aggregate.Min _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> min m (value_of v)))
          s None
      | Aggregate.Max _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> max m (value_of v)))
          s None
    in
    (* per-component extremes of the local value *)
    let extremes comp =
      let values =
        List.filter_map local (preferred_within family d comp)
      in
      match values with
      | [] -> None
      | v :: vs -> Some (List.fold_left min v vs, List.fold_left max v vs)
    in
    let per_component =
      List.rev
        (fold_components
           (fun acc comp ->
             match extremes comp with None -> acc | Some e -> e :: acc)
           [] d)
    in
    let range =
      match agg with
      | Aggregate.Count_all | Aggregate.Sum _ ->
        (* additive across components *)
        let glb = List.fold_left (fun a (lo, _) -> a + lo) 0 per_component in
        let lub = List.fold_left (fun a (_, hi) -> a + hi) 0 per_component in
        Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Min _ ->
        (* global MIN = min over components of the chosen local MIN *)
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> min a lo) max_int in
        let lub = fold (fun a (_, hi) -> min a hi) max_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Max _ ->
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> max a lo) min_int in
        let lub = fold (fun a (_, hi) -> max a hi) min_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
    in
    Ok range
