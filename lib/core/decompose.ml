open Relational
open Graphs

type counters = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable component_repairs : int;
  mutable combos_streamed : int;
  mutable components_examined : int;
  mutable early_exits : int;
  mutable deltas_applied : int;
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable components_dirtied : int;
  mutable cache_evicted : int;
  mutable cache_retained : int;
}

let fresh_counters () =
  {
    cache_hits = 0;
    cache_misses = 0;
    component_repairs = 0;
    combos_streamed = 0;
    components_examined = 0;
    early_exits = 0;
    deltas_applied = 0;
    edges_added = 0;
    edges_removed = 0;
    components_dirtied = 0;
    cache_evicted = 0;
    cache_retained = 0;
  }

(* Parallel jobs shard their counting into per-lane records and the
   submitting domain folds the shards back in after the join, so the
   shared record is only ever mutated by one domain. Integer addition
   commutes, so the merged totals are independent of scheduling. *)
let merge_counters dst z =
  dst.cache_hits <- dst.cache_hits + z.cache_hits;
  dst.cache_misses <- dst.cache_misses + z.cache_misses;
  dst.component_repairs <- dst.component_repairs + z.component_repairs;
  dst.combos_streamed <- dst.combos_streamed + z.combos_streamed;
  dst.components_examined <- dst.components_examined + z.components_examined;
  dst.early_exits <- dst.early_exits + z.early_exits;
  dst.deltas_applied <- dst.deltas_applied + z.deltas_applied;
  dst.edges_added <- dst.edges_added + z.edges_added;
  dst.edges_removed <- dst.edges_removed + z.edges_removed;
  dst.components_dirtied <- dst.components_dirtied + z.components_dirtied;
  dst.cache_evicted <- dst.cache_evicted + z.cache_evicted;
  dst.cache_retained <- dst.cache_retained + z.cache_retained

type t = {
  conflict : Conflict.t;
  priority : Priority.t;
  components : Vset.t array;
      (* multi-vertex components only, indexed by component SLOT, so
         [component_of] is O(1). Slots are stable across [apply_delta]:
         an untouched component keeps its slot (and so its [comp_index]
         entries and cache keys), a dirtied one frees it for reuse.
         [Vset.empty] marks a free slot — every consumer iterating this
         array skips empties. *)
  free : Vset.t;
      (* live conflict-free vertices, aggregated into ONE set instead of
         one singleton component each. A dense [Vset.singleton v] costs
         O(v) words, so materializing a million singleton components
         would be quadratic in the instance; the free set makes clean
         tuples O(1) amortized everywhere. A free vertex belongs to
         every repair, so it contributes factor 1 to every product and a
         fixed summand to every aggregate. *)
  comp_index : int array;
      (* slot of the vertex's component; -1 = free or tombstoned *)
  cache : (Family.name * int, Vset.t list) Hashtbl.t;
      (* (family, component slot) -> preferred repairs in original ids *)
  counters : counters;
}

let make conflict priority =
  Obs.Span.with_span "decompose.make" @@ fun () ->
  let g = Conflict.graph conflict in
  let live = Conflict.live conflict in
  let n = Conflict.size conflict in
  let comp_index = Array.make (max 1 n) (-1) in
  let comps = ref [] in
  let nslots = ref 0 in
  (* discover the multi-vertex components only: tombstoned vertices of an
     incrementally updated conflict and conflict-free live tuples are
     both isolated in the graph and never allocate a component *)
  for v = 0 to n - 1 do
    if
      comp_index.(v) < 0
      && Vset.mem v live
      && not (Vset.is_empty (Undirected.neighbors g v))
    then begin
      let rec grow frontier comp =
        if Vset.is_empty frontier then comp
        else begin
          let comp = Vset.union comp frontier in
          let next =
            Vset.fold
              (fun u acc -> Vset.union acc (Undirected.neighbors g u))
              frontier Vset.empty
          in
          grow (Vset.diff next comp) comp
        end
      in
      let comp = grow (Vset.singleton v) Vset.empty in
      Vset.iter (fun u -> comp_index.(u) <- !nslots) comp;
      incr nslots;
      comps := comp :: !comps
    end
  done;
  let components = Array.of_list (List.rev !comps) in
  let free = Vset.inter live (Undirected.isolated g) in
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [
        ( "components",
          Obs.Event.Int (Array.length components + Vset.cardinal free) );
      ];
  {
    conflict;
    priority;
    components;
    free;
    comp_index;
    cache = Hashtbl.create 16;
    counters = fresh_counters ();
  }

let conflict d = d.conflict
let priority d = d.priority

(* logical components, in the canonical order (increasing smallest
   vertex); free vertices are synthesized back into singleton sets here,
   so the list is O(free · V/word) — fine for reporting, avoided by the
   evaluation paths below *)
let components d =
  let multi =
    List.filter
      (fun comp -> not (Vset.is_empty comp))
      (Array.to_list d.components)
  in
  let singles = List.rev_map Vset.singleton (Vset.elements d.free) in
  List.sort
    (fun a b -> compare (Vset.min_elt a) (Vset.min_elt b))
    (List.rev_append singles multi)

(* live slots of the multi-vertex components, ascending *)
let live_slots d =
  let acc = ref [] in
  for ci = Array.length d.components - 1 downto 0 do
    if not (Vset.is_empty d.components.(ci)) then acc := ci :: !acc
  done;
  !acc

let fold_components f acc d =
  Array.fold_left
    (fun acc comp -> if Vset.is_empty comp then acc else f acc comp)
    acc d.components

let max_component d =
  Array.fold_left
    (fun acc comp -> max acc (Vset.cardinal comp))
    (if Vset.is_empty d.free then 0 else 1)
    d.components

(* an immutable snapshot, so callers can diff across a run *)
let counters d =
  let z = d.counters in
  {
    cache_hits = z.cache_hits;
    cache_misses = z.cache_misses;
    component_repairs = z.component_repairs;
    combos_streamed = z.combos_streamed;
    components_examined = z.components_examined;
    early_exits = z.early_exits;
    deltas_applied = z.deltas_applied;
    edges_added = z.edges_added;
    edges_removed = z.edges_removed;
    components_dirtied = z.components_dirtied;
    cache_evicted = z.cache_evicted;
    cache_retained = z.cache_retained;
  }

let reset_counters d =
  let z = d.counters in
  z.cache_hits <- 0;
  z.cache_misses <- 0;
  z.component_repairs <- 0;
  z.combos_streamed <- 0;
  z.components_examined <- 0;
  z.early_exits <- 0;
  z.deltas_applied <- 0;
  z.edges_added <- 0;
  z.edges_removed <- 0;
  z.components_dirtied <- 0;
  z.cache_evicted <- 0;
  z.cache_retained <- 0

let reset_cache d = Hashtbl.reset d.cache

let pp_counters ppf z =
  Format.fprintf ppf
    "@[<v>component cache:        %d hit(s), %d miss(es), %d repair(s) \
     materialized@,\
     streamed:               %d repair combination(s)@,\
     components examined:    %d (%d early exit(s))"
    z.cache_hits z.cache_misses z.component_repairs z.combos_streamed
    z.components_examined z.early_exits;
  (* the delta lines appear only once updates have actually flowed, so
     output for the static pipeline is unchanged *)
  if z.deltas_applied > 0 then
    Format.fprintf ppf
      "@,\
       deltas applied:         %d (%d edge(s) added, %d removed)@,\
       delta invalidation:     %d component(s) dirtied, %d cache \
       entr(ies) evicted, %d retained"
      z.deltas_applied z.edges_added z.edges_removed z.components_dirtied
      z.cache_evicted z.cache_retained;
  Format.fprintf ppf "@]"

let component_of d v =
  if v < 0 || v >= Conflict.size d.conflict || not (Conflict.is_live d.conflict v)
  then invalid_arg "Decompose.component_of";
  let ci = d.comp_index.(v) in
  if ci < 0 then Vset.singleton v else d.components.(ci)

(* --- incremental maintenance -------------------------------------------- *)

(* Components and cache after a [Conflict.apply_delta]: only components
   actually reached by the delta are recomputed, and only their cache
   entries die. By the delta invariants (added edges touch an inserted
   vertex, removed edges a deleted one), a component none of whose
   vertices was deleted or gained an edge is bit-for-bit unchanged in the
   new graph — its repair lists, computed from the induced sub-instance,
   stay valid and are rekeyed to the component's new position. Free
   vertices reached by the delta re-enter the recomputation scope; any
   recomputed component that comes out isolated lands back in the free
   set rather than a slot. *)
let apply_delta d conflict priority (delta : Conflict.delta) =
  Obs.Span.with_span "decompose.apply_delta" @@ fun () ->
  let old_size = Array.length d.comp_index in
  let g = Conflict.graph conflict in
  let live' = Conflict.live conflict in
  (* old component slots (and free vertices) reached by the delta *)
  let touched = Hashtbl.create 8 in
  let touched_free = ref Vset.empty in
  let touch v =
    (* only vertices of the old instance carry a current slot: inserted ids
       lie past [old_size], and a tombstone's entry is stale *)
    if v < old_size && Conflict.is_live d.conflict v then begin
      let ci = d.comp_index.(v) in
      if ci >= 0 then Hashtbl.replace touched ci ()
      else touched_free := Vset.add v !touched_free
    end
  in
  List.iter touch delta.Conflict.deleted;
  List.iter
    (fun (u, v) -> touch u; touch v)
    (delta.Conflict.edges_added @ delta.Conflict.edges_removed);
  (* survivors of the touched components, touched free vertices and every
     inserted vertex — closed under adjacency in the new graph by the
     delta invariants *)
  let scope =
    Hashtbl.fold
      (fun ci () acc -> Vset.union acc (Vset.inter d.components.(ci) live'))
      touched
      (Vset.union
         (Vset.inter !touched_free live')
         (Vset.of_list delta.Conflict.inserted))
  in
  let recomputed =
    let seen = ref Vset.empty in
    Vset.fold
      (fun v acc ->
        if Vset.mem v !seen then acc
        else begin
          let rec grow frontier comp =
            if Vset.is_empty frontier then comp
            else begin
              let comp = Vset.union comp frontier in
              let next =
                Vset.fold
                  (fun u acc -> Vset.union acc (Undirected.neighbors g u))
                  frontier Vset.empty
              in
              grow (Vset.diff next comp) comp
            end
          in
          let comp = grow (Vset.singleton v) Vset.empty in
          seen := Vset.union !seen comp;
          comp :: acc
        end)
      scope []
  in
  (* recomputed isolates go back to the free set, not a slot *)
  let singles, multi =
    List.partition (fun comp -> Vset.cardinal comp = 1) recomputed
  in
  (* slots of untouched components (and their comp_index entries and
     cache keys) carry over verbatim; dirtied slots are freed and reused
     for the recomputed components, growing the array only when a split
     produces more components than were dirtied *)
  let size' = max 1 (Conflict.size conflict) in
  let old_index_len = Array.length d.comp_index in
  let comp_index =
    if size' = old_index_len then Array.copy d.comp_index
    else begin
      let a = Array.make size' (-1) in
      Array.blit d.comp_index 0 a 0 old_index_len;
      a
    end
  in
  let freed = Hashtbl.fold (fun ci () acc -> ci :: acc) touched [] in
  let nslots = Array.length d.components in
  let extra = max 0 (List.length multi - List.length freed) in
  let components = Array.make (nslots + extra) Vset.empty in
  Array.blit d.components 0 components 0 nslots;
  List.iter (fun ci -> components.(ci) <- Vset.empty) freed;
  let free_slots = ref freed and fresh = ref nslots in
  List.iter
    (fun comp ->
      let slot =
        match !free_slots with
        | ci :: rest ->
          free_slots := rest;
          ci
        | [] ->
          let ci = !fresh in
          incr fresh;
          ci
      in
      components.(slot) <- comp;
      Vset.iter (fun v -> comp_index.(v) <- slot) comp)
    multi;
  List.iter
    (fun comp -> Vset.iter (fun v -> comp_index.(v) <- -1) comp)
    singles;
  let free =
    List.fold_left
      (fun acc s -> Vset.union acc s)
      (Vset.diff (Vset.inter d.free live') !touched_free)
      singles
  in
  (* evict the dirtied slots' cache entries; every other entry stays put *)
  let z = d.counters in
  let cache = Hashtbl.copy d.cache in
  Hashtbl.iter
    (fun (family, ci) _ ->
      if Hashtbl.mem touched ci then begin
        Hashtbl.remove cache (family, ci);
        z.cache_evicted <- z.cache_evicted + 1
      end)
    d.cache;
  z.cache_retained <- z.cache_retained + Hashtbl.length cache;
  z.deltas_applied <- z.deltas_applied + 1;
  z.edges_added <- z.edges_added + List.length delta.Conflict.edges_added;
  z.edges_removed <- z.edges_removed + List.length delta.Conflict.edges_removed;
  z.components_dirtied <- z.components_dirtied + Hashtbl.length touched;
  if Obs.Span.enabled () then
    Obs.Span.annotate
      [
        ("dirtied", Obs.Event.Int (Hashtbl.length touched));
        ("recomputed", Obs.Event.Int (List.length recomputed));
      ];
  (* the same mutable record carries over: telemetry accumulates across
     the whole update history of the decomposition *)
  { conflict; priority; components; free; comp_index; cache; counters = z }

(* The sub-instance of one component. Tuples keep their relative order
   under restriction, so new vertex i is the i-th smallest original id. *)
let sub_context d comp =
  let rel = Conflict.relation_of_vset d.conflict comp in
  let sub = Conflict.build (Conflict.fds d.conflict) rel in
  let mapping = Array.of_list (Vset.elements comp) in
  let back = Hashtbl.create (Array.length mapping) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) mapping;
  (* priority arcs connect conflicting tuples, so every arc leaving a
     component vertex stays inside the component: probing the successor
     sets of the component's vertices finds them all in O(comp + arcs),
     where walking [Priority.arcs] would cost O(V) per component *)
  let arcs =
    Vset.fold
      (fun u acc ->
        let u' = Hashtbl.find back u in
        Vset.fold
          (fun v acc ->
            match Hashtbl.find_opt back v with
            | Some v' -> (u', v') :: acc
            | None -> acc)
          (Priority.dominated d.priority u)
          acc)
      comp []
  in
  (sub, Priority.of_arcs_exn sub arcs, mapping)

(* Solve one component: everything here is pure with respect to [d] —
   [sub_context] rebuilds a compact task-local instance — except the
   counter bumps, which go to the caller-chosen shard [z]. That is what
   lets [parallel_warm] run this on worker domains. *)
let solve_component z d family comp =
  Obs.Span.with_span "decompose.component"
    ~args:
      [
        ("family", Obs.Event.Str (Family.name_to_string family));
        ("size", Obs.Event.Int (Vset.cardinal comp));
      ]
  @@ fun () ->
  z.cache_misses <- z.cache_misses + 1;
  let sub, p, mapping = sub_context d comp in
  let repairs =
    List.map
      (fun s -> Vset.map (fun v -> mapping.(v)) s)
      (Family.repairs family sub p)
  in
  z.component_repairs <- z.component_repairs + List.length repairs;
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("repairs", Obs.Event.Int (List.length repairs)) ];
  repairs

(* Is this one of the synthesized singleton components of a free vertex?
   Free vertices are conflict-free, so their only preferred repair (for
   every family) is the tuple itself; serving it from the free set keeps
   clean tuples out of the cache. *)
let free_singleton d comp =
  Vset.cardinal comp = 1 && d.comp_index.(Vset.min_elt comp) < 0

let preferred_within family d comp =
  if free_singleton d comp then begin
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    [ comp ]
  end
  else begin
    let key = (family, d.comp_index.(Vset.min_elt comp)) in
    match Hashtbl.find_opt d.cache key with
    | Some repairs ->
      d.counters.cache_hits <- d.counters.cache_hits + 1;
      repairs
    | None ->
      let repairs = solve_component d.counters d family comp in
      Hashtbl.replace d.cache key repairs;
      repairs
  end

(* --- the parallel cache fill --------------------------------------------- *)

let parallel_warm family d todo =
  (* [todo]: (slot, component) pairs, ascending slot order. Each index is
     an independent component solve; counters shard per worker lane and
     the submitting domain publishes the cache writes in slot order after
     the join — workers never touch [d.cache] (sharded ownership: steals
     publish through the owner). *)
  let todo = Array.of_list todo in
  let n = Array.length todo in
  let results = Array.make n [] in
  let shards = Array.init (Pool.jobs ()) (fun _ -> fresh_counters ()) in
  Pool.parallel_for ~n (fun ~worker i ->
      let _, comp = todo.(i) in
      results.(i) <- solve_component shards.(worker) d family comp);
  Array.iteri
    (fun i (ci, _) -> Hashtbl.replace d.cache (family, ci) results.(i))
    todo;
  Array.iter (fun z -> merge_counters d.counters z) shards

let warm_slots family d slots =
  (* equivalent to a sequential [preferred_within] sweep over the slots:
     one cache hit per already-cached component, one miss (plus a
     "decompose.component" span and the repairs count) per filled one *)
  let todo =
    List.filter_map
      (fun ci ->
        if Hashtbl.mem d.cache (family, ci) then begin
          d.counters.cache_hits <- d.counters.cache_hits + 1;
          None
        end
        else Some (ci, d.components.(ci)))
      slots
  in
  match todo with
  | [] -> ()
  | [ (ci, comp) ] ->
    Hashtbl.replace d.cache (family, ci) (solve_component d.counters d family comp)
  | todo ->
    if Pool.jobs () <= 1 || Pool.in_parallel_region () then
      List.iter
        (fun (ci, comp) ->
          Hashtbl.replace d.cache (family, ci)
            (solve_component d.counters d family comp))
        todo
    else parallel_warm family d todo

let warm family d = warm_slots family d (live_slots d)

let count_within family d comp =
  if free_singleton d comp then begin
    d.counters.cache_hits <- d.counters.cache_hits + 1;
    1
  end
  else begin
    let key = (family, d.comp_index.(Vset.min_elt comp)) in
    match Hashtbl.find_opt d.cache key with
    | Some repairs ->
      d.counters.cache_hits <- d.counters.cache_hits + 1;
      List.length repairs
    | None ->
      (* counting path: stream the family over the sub-instance without
         materializing the repair lists (and without populating the cache —
         a later [preferred_within] still owns that) *)
      Obs.Span.with_span "decompose.count"
        ~args:
          [
            ("family", Obs.Event.Str (Family.name_to_string family));
            ("size", Obs.Event.Int (Vset.cardinal comp));
          ]
      @@ fun () ->
      d.counters.cache_misses <- d.counters.cache_misses + 1;
      let sub, p, _mapping = sub_context d comp in
      let n = ref 0 in
      Family.iter family sub p (fun _ -> incr n);
      !n
  end

(* repair counts multiply across components and overflow [int] long before
   they overflow anyone's patience: saturate instead of wrapping. Both
   arguments are >= 0, 0 annihilates and saturation triggers exactly when
   the true product exceeds [max_int], so the fold is order-independent —
   safe to combine in any schedule. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let count family d =
  (* warm the cache (in parallel when the pool has domains), then fold
     the per-slot list lengths; free vertices contribute factor 1 *)
  warm family d;
  List.fold_left
    (fun acc ci ->
      sat_mul acc (List.length (Hashtbl.find d.cache (family, ci))))
    1 (live_slots d)

(* --- ground certainty --------------------------------------------------- *)

let demand_of_clause d clause =
  Ground.of_clause
    ~rel_name:(Schema.name (Conflict.schema d.conflict))
    ~index:(Conflict.index d.conflict) clause

(* A clause is satisfiable by a preferred repair iff each touched
   component has a preferred repair meeting the clause's demands there
   (P1 supplies arbitrary preferred repairs for untouched components, and
   the family factorizes). *)
exception Stop

let clause_satisfiable family d { Ground.required; forbidden } =
  (* a free vertex belongs to every preferred repair: forbidding one
     kills the clause outright, requiring one costs nothing *)
  if not (Vset.is_empty (Vset.inter forbidden d.free)) then false
  else begin
    let touched =
      Vset.fold
        (fun v acc ->
          let ci = d.comp_index.(v) in
          if ci >= 0 then Vset.add ci acc else acc)
        (Vset.union required forbidden)
        Vset.empty
    in
    (* with pool domains available, fill the touched components' repair
       lists in parallel first; the per-component demand checks below are
       then cache hits. (jobs = 1 keeps the lazy sequential sweep with its
       mid-loop early exit.) *)
    if
      Pool.jobs () > 1
      && (not (Pool.in_parallel_region ()))
      && Vset.cardinal touched > 1
    then warm_slots family d (Vset.elements touched);
    let remaining = ref (Vset.cardinal touched) in
    try
      Vset.iter
        (fun ci ->
          d.counters.components_examined <- d.counters.components_examined + 1;
          decr remaining;
          let comp = d.components.(ci) in
          let req = Vset.inter required comp
          and forb = Vset.inter forbidden comp in
          let ok =
            List.exists
              (fun r -> Vset.subset req r && Vset.is_empty (Vset.inter forb r))
              (preferred_within family d comp)
          in
          if not ok then begin
            if !remaining > 0 then
              d.counters.early_exits <- d.counters.early_exits + 1;
            raise Stop
          end)
        touched;
      true
    with Stop -> false
  end

let some_preferred_satisfies family d q =
  match Query.Transform.ground_dnf q with
  | Error e -> Error e
  | Ok clauses ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ | Ok true -> acc
        | Ok false -> (
          match demand_of_clause d clause with
          | Error e -> Error e
          | Ok None -> Ok false
          | Ok (Some demand) -> Ok (clause_satisfiable family d demand)))
      (Ok false) clauses

let certainty_ground family d q =
  if not (Query.Ast.is_ground q) then
    Error "certainty_ground: query is not ground"
  else
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Error e -> Error e
    | Ok false -> Ok Cqa.Certainly_true
    | Ok true -> (
      match some_preferred_satisfies family d q with
      | Error e -> Error e
      | Ok false -> Ok Cqa.Certainly_false
      | Ok true -> Ok Cqa.Ambiguous)

(* --- streaming over the cross product ----------------------------------- *)

(* The per-component preferred repairs, as arrays for cheap indexing.
   Raises [Cqa.Empty_family] if any component contributes nothing: the
   cross product would be empty, which P1 rules out (see [Cqa]). Free
   vertices do not appear here — they belong to every combination and
   are seeded into the accumulators by the consumers below. *)
let repair_matrix family d =
  warm family d;
  let lists =
    Array.of_list
      (List.map
         (fun ci -> Array.of_list (Hashtbl.find d.cache (family, ci)))
         (live_slots d))
  in
  Array.iter
    (fun l -> if Array.length l = 0 then raise (Cqa.Empty_family family))
    lists;
  lists

let iter family d f =
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if k = 0 then begin
    (* no conflicting components: the single repair keeps exactly the
       conflict-free tuples — mirrors [Mis.iter] on the edgeless graph *)
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    f d.free
  end
  else begin
    let rec go i acc =
      if i = k then begin
        d.counters.combos_streamed <- d.counters.combos_streamed + 1;
        f acc
      end
      else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
    in
    go 0 d.free
  end

let exists family d pred =
  try
    iter family d (fun r -> if pred r then raise Stop);
    false
  with Stop -> true

let for_all family d pred = not (exists family d (fun r -> not (pred r)))

let member family d r =
  Vset.subset r (Conflict.live d.conflict)
  && Vset.subset d.free r
  && Array.for_all
       (fun comp ->
         Vset.is_empty comp
         ||
         let local = Vset.inter r comp in
         List.exists (Vset.equal local) (preferred_within family d comp))
       d.components

let one family d =
  match repair_matrix family d with
  | exception Cqa.Empty_family _ -> None
  | lists ->
    Some (Array.fold_left (fun acc l -> Vset.union acc l.(0)) d.free lists)

(* Certainty of a quantified query by deviation scan + product fallback.

   General (non-ground) queries do not reduce to per-component verdicts:
   certainty is about the *combinations*, and a query can hold in every
   single-deviation neighbour of a baseline repair yet fail in a repair
   differing in two components at once. So:
   - pass 1 scans all repairs at Hamming component-distance <= 1 from a
     baseline; any disagreement settles [Ambiguous] early, after
     enumerating only sum-per-component many repairs (exp in the largest
     component, not the total);
   - pass 2, needed only for a certain verdict when >= 2 components have
     more than one preferred repair, walks the full cross product.

   Both passes parallelize over independent slices of their search
   space: pass 1 over components (each lane scans one component's
   deviations), pass 2 over the first component's repair choices (each
   lane owns a sub-product). A shared stop flag cancels the remaining
   work the moment any lane finds a disagreement — the verdict is
   scheduling-independent because every lane looks for the same
   predicate, only how much counting happens before the exit varies. *)
let certainty_streaming family d q =
  let eval r = Cqa.evaluate_in_repair d.conflict r q in
  let lists = repair_matrix family d in
  let k = Array.length lists in
  if Obs.Span.enabled () then
    Obs.Span.annotate [ ("route", Obs.Event.Str "deviation-scan") ];
  if k = 0 then begin
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    if eval d.free then Cqa.Certainly_true else Cqa.Certainly_false
  end
  else begin
    let base = Array.map (fun l -> l.(0)) lists in
    (* pre.(i) = free + union of base.(0..i-1); suf.(i) = union of
       base.(i..k-1) — so pre.(k) is the full baseline repair *)
    let pre = Array.make (k + 1) d.free in
    for i = 0 to k - 1 do
      pre.(i + 1) <- Vset.union pre.(i) base.(i)
    done;
    let suf = Array.make (k + 1) Vset.empty in
    for i = k - 1 downto 0 do
      suf.(i) <- Vset.union suf.(i + 1) base.(i)
    done;
    d.counters.combos_streamed <- d.counters.combos_streamed + 1;
    let v0 = eval pre.(k) in
    let parallel = Pool.jobs () > 1 && not (Pool.in_parallel_region ()) in
    (* pass 1: single-component deviations from the baseline *)
    let deviation_found =
      if not parallel then begin
        try
          for i = 0 to k - 1 do
            d.counters.components_examined <-
              d.counters.components_examined + 1;
            for j = 1 to Array.length lists.(i) - 1 do
              d.counters.combos_streamed <- d.counters.combos_streamed + 1;
              let r =
                Vset.union (Vset.union pre.(i) lists.(i).(j)) suf.(i + 1)
              in
              if eval r <> v0 then begin
                d.counters.early_exits <- d.counters.early_exits + 1;
                raise Stop
              end
            done
          done;
          false
        with Stop -> true
      end
      else begin
        let shards = Array.init (Pool.jobs ()) (fun _ -> fresh_counters ()) in
        let stop = Atomic.make false in
        let found = Atomic.make false in
        Pool.parallel_for ~stop ~n:k (fun ~worker i ->
            let z = shards.(worker) in
            z.components_examined <- z.components_examined + 1;
            let len = Array.length lists.(i) in
            let j = ref 1 in
            while !j < len && not (Atomic.get stop) do
              z.combos_streamed <- z.combos_streamed + 1;
              let r =
                Vset.union (Vset.union pre.(i) lists.(i).(!j)) suf.(i + 1)
              in
              if eval r <> v0 then begin
                z.early_exits <- z.early_exits + 1;
                Atomic.set found true;
                Atomic.set stop true
              end;
              incr j
            done);
        Array.iter (fun z -> merge_counters d.counters z) shards;
        Atomic.get found
      end
    in
    if deviation_found then Cqa.Ambiguous
    else begin
      (* pass 2: a certain verdict needs the full product whenever two or
         more components can deviate simultaneously *)
      let multi =
        Array.fold_left
          (fun acc l -> if Array.length l > 1 then acc + 1 else acc)
          0 lists
      in
      if multi < 2 then
        if v0 then Cqa.Certainly_true else Cqa.Certainly_false
      else begin
        if Obs.Span.enabled () then
          Obs.Span.annotate [ ("route", Obs.Event.Str "full-product") ];
        let disagreed =
          if not parallel then begin
            let rec go i acc =
              if i = k then begin
                d.counters.combos_streamed <- d.counters.combos_streamed + 1;
                if eval acc <> v0 then begin
                  d.counters.early_exits <- d.counters.early_exits + 1;
                  raise Stop
                end
              end
              else Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
            in
            try
              go 0 d.free;
              false
            with Stop -> true
          end
          else begin
            let shards =
              Array.init (Pool.jobs ()) (fun _ -> fresh_counters ())
            in
            let stop = Atomic.make false in
            let found = Atomic.make false in
            Pool.parallel_for ~stop ~n:(Array.length lists.(0))
              (fun ~worker i0 ->
                let z = shards.(worker) in
                let rec go i acc =
                  if Atomic.get stop then ()
                  else if i = k then begin
                    z.combos_streamed <- z.combos_streamed + 1;
                    if eval acc <> v0 then begin
                      z.early_exits <- z.early_exits + 1;
                      Atomic.set found true;
                      Atomic.set stop true
                    end
                  end
                  else
                    Array.iter (fun s -> go (i + 1) (Vset.union acc s)) lists.(i)
                in
                go 1 (Vset.union d.free lists.(0).(i0)));
            Array.iter (fun z -> merge_counters d.counters z) shards;
            Atomic.get found
          end
        in
        if disagreed then Cqa.Ambiguous
        else if v0 then Cqa.Certainly_true
        else Cqa.Certainly_false
      end
    end
  end

let certainty family d q =
  if not (Query.Ast.is_closed q) then
    invalid_arg "Decompose.certainty: open query";
  Obs.Span.with_span "cqa.certainty"
    ~args:[ ("family", Obs.Event.Str (Family.name_to_string family)) ]
  @@ fun () ->
  let before = if Obs.Span.enabled () then Some (counters d) else None in
  let verdict =
    if Query.Ast.is_ground q then
      match certainty_ground family d q with
      | Ok cert ->
        Obs.Span.annotate [ ("route", Obs.Event.Str "ground") ];
        cert
      | Error _ ->
        (* unknown relation, arity mismatch, ...: fall back to the generic
           evaluator so the verdict matches the whole-graph path *)
        certainty_streaming family d q
    else certainty_streaming family d q
  in
  (match before with
  | None -> ()
  | Some b ->
    let z = d.counters in
    Obs.Span.annotate
      [
        ("verdict", Obs.Event.Str (Cqa.certainty_to_string verdict));
        ("cache_hits", Obs.Event.Int (z.cache_hits - b.cache_hits));
        ("cache_misses", Obs.Event.Int (z.cache_misses - b.cache_misses));
        ("combos_streamed", Obs.Event.Int (z.combos_streamed - b.combos_streamed));
        ( "components_examined",
          Obs.Event.Int (z.components_examined - b.components_examined) );
        ("early_exits", Obs.Event.Int (z.early_exits - b.early_exits));
      ]);
  verdict

let consistent_answer family d q =
  if Query.Ast.is_ground q then
    match some_preferred_satisfies family d (Query.Ast.Not q) with
    | Ok sat -> not sat
    | Error _ ->
      for_all family d (fun r -> Cqa.evaluate_in_repair d.conflict r q)
  else begin
    if not (Query.Ast.is_closed q) then
      invalid_arg "Decompose.consistent_answer: open query";
    for_all family d (fun r -> Cqa.evaluate_in_repair d.conflict r q)
  end

let consistent_answers_open family d q =
  Obs.Span.with_span "cqa.open"
    ~args:[ ("family", Obs.Event.Str (Family.name_to_string family)) ]
  @@ fun () ->
  let result = ref None in
  (try
     iter family d (fun r ->
         let free, rows =
           Planner.Engine.answers_relation (Repair.to_relation d.conflict r) q
         in
         match !result with
         | None -> result := Some (free, rows)
         | Some (free0, rows0) ->
           let present = Hashtbl.create (List.length rows) in
           List.iter (fun row -> Hashtbl.replace present row ()) rows;
           let rows0 = List.filter (fun row -> Hashtbl.mem present row) rows0 in
           result := Some (free0, rows0);
           if rows0 = [] then begin
             d.counters.early_exits <- d.counters.early_exits + 1;
             raise Stop
           end)
   with Stop -> ());
  match !result with
  | Some answer -> answer
  | None -> assert false (* iter raises Empty_family before this *)

let certain_tuples family d =
  (* conflict-free tuples are in every preferred repair *)
  fold_components
    (fun acc comp ->
      match preferred_within family d comp with
      | [] -> acc
      | first :: rest ->
        Vset.union acc (List.fold_left Vset.inter first rest))
    d.free d

let possible_tuples family d =
  fold_components
    (fun acc comp ->
      List.fold_left Vset.union acc (preferred_within family d comp))
    d.free d

(* --- aggregates ----------------------------------------------------------- *)

let attr_position d attr =
  let schema = Conflict.schema d.conflict in
  match Schema.position schema attr with
  | None ->
    Error
      (Printf.sprintf "schema %s has no attribute %S" (Schema.name schema) attr)
  | Some i ->
    if Schema.ty_at schema i <> Schema.TInt then
      Error (Printf.sprintf "attribute %S is not numeric" attr)
    else Ok i

let aggregate_range family d agg =
  let pos =
    match agg with
    | Aggregate.Count_all -> Ok (-1)
    | Aggregate.Sum a | Aggregate.Min a | Aggregate.Max a -> attr_position d a
  in
  match pos with
  | Error e -> Error e
  | Ok pos ->
    let value_of v =
      match Value.as_int (Tuple.get (Conflict.tuple d.conflict v) pos) with
      | Some n -> n
      | None -> assert false
    in
    (* the aggregate's value inside one component repair *)
    let local s =
      match agg with
      | Aggregate.Count_all -> Some (Vset.cardinal s)
      | Aggregate.Sum _ ->
        Some (Vset.fold (fun v acc -> acc + value_of v) s 0)
      | Aggregate.Min _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> min m (value_of v)))
          s None
      | Aggregate.Max _ ->
        Vset.fold
          (fun v acc ->
            Some (match acc with None -> value_of v | Some m -> max m (value_of v)))
          s None
    in
    (* per-component extremes of the local value *)
    let extremes comp =
      let values =
        List.filter_map local (preferred_within family d comp)
      in
      match values with
      | [] -> None
      | v :: vs -> Some (List.fold_left min v vs, List.fold_left max v vs)
    in
    (* a free vertex is in every repair, so it contributes one fixed
       value — no singleton component is ever materialized for it *)
    let per_component =
      Vset.fold
        (fun v acc ->
          let e =
            match agg with
            | Aggregate.Count_all -> (1, 1)
            | _ ->
              let x = value_of v in
              (x, x)
          in
          e :: acc)
        d.free
        (List.rev
           (fold_components
              (fun acc comp ->
                match extremes comp with None -> acc | Some e -> e :: acc)
              [] d))
    in
    let range =
      match agg with
      | Aggregate.Count_all | Aggregate.Sum _ ->
        (* additive across components *)
        let glb = List.fold_left (fun a (lo, _) -> a + lo) 0 per_component in
        let lub = List.fold_left (fun a (_, hi) -> a + hi) 0 per_component in
        Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Min _ ->
        (* global MIN = min over components of the chosen local MIN *)
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> min a lo) max_int in
        let lub = fold (fun a (_, hi) -> min a hi) max_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
      | Aggregate.Max _ ->
        let fold f init = List.fold_left f init per_component in
        let glb = fold (fun a (lo, _) -> max a lo) min_int in
        let lub = fold (fun a (_, hi) -> max a hi) min_int in
        if per_component = [] then Aggregate.{ glb = None; lub = None }
        else Aggregate.{ glb = Some glb; lub = Some lub }
    in
    Ok range
