(** Incremental updates for denial-constraint instances — {!Delta} on
    the hyperedge substrate.

    A mutable handle bundling the conflict hypergraph, a priority over
    it and the component decomposition; {!apply} pushes a batch of
    inserts/deletes through all three layers (each validates before
    mutating, so a rejected batch leaves the handle untouched) and
    records the inverse batch for {!undo}. *)

open Relational

type op = Delta.op = Insert of Tuple.t | Delete of Tuple.t

type report = {
  inserted : int;
  deleted : int;
  edges_added : int;
  edges_removed : int;
  components_dirtied : int;
  cache_evicted : int;
  cache_retained : int;
}

type t

val create :
  ?arcs:(int * int) list ->
  Constraints.Denial.t list ->
  Relation.t ->
  (t, string) result
(** Build the hypergraph, validate the priority arcs against it and
    decompose. [arcs] default to none (the Rep setting). *)

val apply : t -> op list -> (report, string) result
(** Deletes are applied before inserts, as in {!Hyper.apply_delta}.
    Priority arcs touching a deleted vertex — or whose hyperedge died
    through a third vertex — are discarded. *)

val undo : t -> (report, string) result
(** Reverse the most recent accepted batch. *)

val history_depth : t -> int
val drop_history : t -> unit

val hyper : t -> Hyper.t
val priority : t -> Hpriority.t
val decompose : t -> Hdecompose.t
val relation : t -> Relation.t

val pp_report : Format.formatter -> report -> unit
