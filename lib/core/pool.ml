(* Work-stealing domain pool.

   One pool per process, spawned lazily and kept for the session: domain
   startup costs ~100µs, far more than a typical component job, so the
   workers park on a condition variable between jobs instead. A job is a
   contiguous index space [0, n) split into one range per lane; each
   range has an atomic claim cursor, and a lane that exhausts its own
   range steals from the others' cursors. [Atomic.fetch_and_add] hands
   out every index exactly once (claims past the fence are discarded),
   so the body needs no further coordination beyond its own sharding.

   The caller is lane 0: it submits the job, works like any other lane,
   and then blocks on [finished] until the last participant checks out.
   Parking/waking goes through one mutex + generation counter; workers
   woken by a stale generation (they slept through a whole job) simply
   re-park. *)

type job = {
  lanes : int; (* participating lanes; caller = lane 0 *)
  cursors : int Atomic.t array; (* next unclaimed index per range *)
  fences : int array; (* exclusive end of each range *)
  body : int -> int -> unit; (* lane -> index -> unit *)
  pending : int Atomic.t; (* lanes still working *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
  halt : bool Atomic.t; (* early exit: user stop flag or failure *)
  buffers : Obs.Sink.Memory.buffer option array;
      (* per-lane span capture, when the submitting domain records *)
}

let mutex = Mutex.create ()
let wake = Condition.create ()
let finished = Condition.create ()
let posted : job option ref = ref None
let generation = ref 0
let quit = ref false
let handles : unit Domain.t list ref = ref []
let spawned = ref 0

(* Lane-local flag: true while executing a job body, on any lane. Used
   to collapse nested parallel calls into sequential loops. *)
let inside : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let in_parallel_region () = !(Domain.DLS.get inside)

let env_jobs () =
  match Sys.getenv_opt "PREFDB_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let env_jobs_error () =
  match Sys.getenv_opt "PREFDB_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> None
    | Some n ->
      Some
        (Printf.sprintf "PREFDB_JOBS=%d: the domain count must be at least 1" n)
    | None ->
      Some (Printf.sprintf "PREFDB_JOBS=%S is not an integer" s))

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let requested = ref None

let jobs () =
  match !requested with Some n -> n | None -> default_jobs ()

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: need at least one domain";
  requested := Some n

(* --- pool metrics --------------------------------------------------------- *)

let m_tasks =
  Obs.Registry.counter ~help:"Work items executed by pool jobs"
    "prefdb_pool_tasks_total"

let m_seq_tasks =
  Obs.Registry.counter
    ~help:"Work items executed on the caller when a job degrades to sequential"
    "prefdb_pool_sequential_tasks_total"

let m_steals =
  Obs.Registry.counter ~help:"Work items claimed from another lane's range"
    "prefdb_pool_steals_total"

let m_jobs =
  Obs.Registry.counter ~help:"Parallel jobs submitted to the domain pool"
    "prefdb_pool_parallel_jobs_total"

let m_lane_tasks lane =
  Obs.Registry.counter
    ~labels:[ ("lane", string_of_int lane) ]
    ~help:"Work items executed per pool lane" "prefdb_pool_lane_tasks_total"

let () =
  Obs.Registry.gauge_fn ~help:"Configured domain count" "prefdb_pool_domains"
    (fun () -> float_of_int (jobs ()))

(* --- running one job ------------------------------------------------------ *)

let run_index job lane i =
  match job.body lane i with
  | () -> ()
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (Atomic.compare_and_set job.failed None (Some (e, bt)));
    Atomic.set job.halt true

(* Drain range [k]: claim indices until the fence (or a halt). Claims
   racing past the fence are harmless — the fence check discards them. *)
let drain job lane k =
  let fence = job.fences.(k) in
  let cursor = job.cursors.(k) in
  let rec go executed =
    if Atomic.get job.halt then executed
    else begin
      let i = Atomic.fetch_and_add cursor 1 in
      if i < fence then begin
        run_index job lane i;
        go (executed + 1)
      end
      else executed
    end
  in
  let executed = go 0 in
  if executed > 0 then begin
    Obs.Metric.incr ~by:executed m_tasks;
    Obs.Metric.incr ~by:executed (m_lane_tasks lane);
    if k <> lane then Obs.Metric.incr ~by:executed m_steals
  end

let participate job lane =
  let flag = Domain.DLS.get inside in
  flag := true;
  (* own range first, then sweep the others in cyclic order *)
  drain job lane lane;
  for off = 1 to job.lanes - 1 do
    drain job lane ((lane + off) mod job.lanes)
  done;
  flag := false;
  if Atomic.fetch_and_add job.pending (-1) = 1 then begin
    Mutex.lock mutex;
    Condition.broadcast finished;
    Mutex.unlock mutex
  end

let worker lane =
  let rec loop last_gen =
    Mutex.lock mutex;
    while !generation = last_gen && not !quit do
      Condition.wait wake mutex
    done;
    let gen = !generation and job = !posted and stopping = !quit in
    Mutex.unlock mutex;
    if not stopping then begin
      (match job with
      | Some job when lane < job.lanes ->
        (* capture this lane's spans for the duration of the job *)
        (match job.buffers.(lane) with
        | Some buf -> Obs.Span.set_sink (Some (Obs.Sink.Memory.sink buf))
        | None -> Obs.Span.set_sink None);
        participate job lane;
        Obs.Span.set_sink None
      | Some _ | None -> ());
      loop gen
    end
  in
  loop 0

let teardown () =
  Mutex.lock mutex;
  quit := true;
  incr generation;
  Condition.broadcast wake;
  Mutex.unlock mutex;
  List.iter Domain.join !handles;
  handles := [];
  spawned := 0;
  quit := false

(* Lanes 1 .. w-1 must exist before a [w]-lane job is posted. Workers
   spawned here outlive the job; [at_exit] reaps them so the runtime
   never waits on a parked domain at shutdown. *)
let ensure_workers w =
  if !spawned = 0 && w > 1 then at_exit teardown;
  while !spawned < w - 1 do
    incr spawned;
    let lane = !spawned in
    handles := Domain.spawn (fun () -> worker lane) :: !handles
  done

let sequential ?stop ~n body =
  let flag = Domain.DLS.get inside in
  let previously = !flag in
  flag := true;
  let halted i =
    match stop with None -> i >= n | Some s -> i >= n || Atomic.get s
  in
  let i = ref 0 in
  (try
     while not (halted !i) do
       body ~worker:0 !i;
       incr i
     done
   with e ->
     flag := previously;
     Obs.Metric.incr ~by:!i m_seq_tasks;
     raise e);
  flag := previously;
  Obs.Metric.incr ~by:!i m_seq_tasks

let parallel_for ?stop ~n body =
  if n < 0 then invalid_arg "Pool.parallel_for: negative size";
  let w = min (jobs ()) n in
  if w <= 1 || in_parallel_region () then sequential ?stop ~n body
  else begin
    ensure_workers w;
    let halt = match stop with Some s -> s | None -> Atomic.make false in
    (* per-lane span buffers only when the caller is recording *)
    let recording = Obs.Span.enabled () in
    let buffers =
      Array.init w (fun lane ->
          if recording && lane > 0 then Some (Obs.Sink.Memory.create ())
          else None)
    in
    let fences = Array.init w (fun k -> (k + 1) * n / w) in
    let cursors = Array.init w (fun k -> Atomic.make (k * n / w)) in
    let job =
      {
        lanes = w;
        cursors;
        fences;
        body = (fun lane i -> body ~worker:lane i);
        pending = Atomic.make w;
        failed = Atomic.make None;
        halt;
        buffers;
      }
    in
    Obs.Metric.incr m_jobs;
    Mutex.lock mutex;
    posted := Some job;
    incr generation;
    Condition.broadcast wake;
    Mutex.unlock mutex;
    participate job 0;
    Mutex.lock mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait finished mutex
    done;
    posted := None;
    Mutex.unlock mutex;
    (* stitch the worker lanes' span streams into the caller's sink, in
       lane order, tagging every event with its domain lane *)
    (match Obs.Span.sink () with
    | Some sink ->
      Array.iteri
        (fun lane buf ->
          match buf with
          | None -> ()
          | Some buf ->
            List.iter
              (fun e ->
                sink.Obs.Sink.emit
                  {
                    e with
                    Obs.Event.args =
                      ("domain", Obs.Event.Int lane)
                      :: List.filter
                           (fun (k, _) -> k <> "domain")
                           e.Obs.Event.args;
                  })
              (Obs.Sink.Memory.events buf))
        job.buffers
    | None -> ());
    match Atomic.get job.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_reduce ~n leaf combine init =
  if n < 0 then invalid_arg "Pool.parallel_reduce: negative size";
  if n = 0 then init
  else begin
    let results = Array.make n init in
    parallel_for ~n (fun ~worker i -> results.(i) <- leaf ~worker i);
    Array.fold_left combine init results
  end
